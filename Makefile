# Tier-1 verification: everything must build, vet clean, pass reuselint (the
# module's own static-analysis suite, see DESIGN.md §5f), pass the full test
# suite under the race detector (the experiment harness runs simulations
# concurrently, so -race is part of the gate, not an extra), emit a valid
# telemetry trace, and serve a lint-clean live observability surface.
.PHONY: check build vet lint lint-stats test race fuzz bench bench-baseline bench-all telemetry-check obs-check ckpt-check dbg-check report-check

check: build vet lint race telemetry-check obs-check ckpt-check dbg-check report-check

build:
	go build ./...

vet:
	go vet ./...

# Static-analysis gate: the six reuseiq analyzers (zerocost, hotalloc,
# exhaustive, metricname, statecov, determinism) over the whole module. The
# same binary also speaks the cmd/go vettool protocol, so a per-package run
# without the module-wide closure is: go build -o bin/reuselint ./cmd/reuselint &&
# go vet -vettool=bin/reuselint ./...
lint:
	go run ./cmd/reuselint ./...

# Same gate plus the per-analyzer finding and waiver counts. The waiver
# counts are the suppressed-finding budget; TestWaiverBudget pins them, so
# waiver creep fails CI rather than accumulating silently.
lint-stats:
	go run ./cmd/reuselint -stats ./...

test:
	go test ./...

race:
	go test -race ./...

# Telemetry gate: run a gating kernel with tracing on and validate the
# emitted Chrome trace JSON (well-formed, monotone timestamps, balanced
# begin/end pairs, RIQ state-machine slices present).
telemetry-check:
	@mkdir -p bench
	go run ./cmd/reusesim -kernel aps -trace bench/telemetry-check.json > /dev/null
	go run ./cmd/tracecheck -require-riq bench/telemetry-check.json
	rm -rf bench/telemetry-rec
	go run ./cmd/reusesim -kernel aps -flightrec bench/telemetry-rec > /dev/null
	go run ./cmd/reusedbg -dir bench/telemetry-rec -e "export bench/telemetry-window.json"
	go run ./cmd/tracecheck -window bench/telemetry-window.json

# Observability gate: spawn reusesim with a live -listen server, then validate
# it end to end with cmd/obscheck — exposition-format lint on /metrics, counter
# monotonicity across two scrapes, well-formed SSE frames from /events, and a
# decodable /status. The -linger window keeps the server up after the run so
# both scrapes land; obscheck kills the child when done.
# -ffwd attaches the fast-forward engine so its reuseiq_ffwd_* counters are
# part of the scraped surface (the live sampler vetoes actual skips, so the
# run itself is unchanged).
obs-check:
	go run -race ./cmd/obscheck -- go run -race ./cmd/reusesim -kernel aps -ffwd -listen 127.0.0.1:0 -linger 30s

# Checkpoint/restore gate: in-process save/restore lockstep smoke (plain and
# chaos), then a scripted kill -9 of a journaled reusebench sweep followed by
# -resume, requiring a byte-identical report and no double-counted cells.
ckpt-check:
	go run ./cmd/ckptcheck -- go run ./cmd/reusebench -figure 5 -sizes 32 -benchjson= -progress=false -ckpt-every 20000

# Run-ledger gate: two scripted runs into a fresh ledger, the regression
# sentinel must pass on identical fingerprints and fail on an injected
# one-count drift, and the /runs + /dashboard wire formats must match the
# golden skeletons (regenerate after intentional schema changes with
# go run ./cmd/reportcheck -update).
report-check:
	go run -race ./cmd/reportcheck

# Time-travel debugger gate: record a chaos run through the flight recorder,
# prove randomized seeks land on byte-identical images vs an uninterrupted
# run, drive every reusedbg command scripted, and validate the exported
# Perfetto window (see cmd/dbgcheck).
dbg-check:
	go run ./cmd/dbgcheck

# Coverage-guided fuzzing of the assembler (see internal/asm/fuzz_test.go)
# and the snapshot decoder (internal/snapshot/fuzz_test.go). Fully offline:
# the module has no dependencies, so no network or vendor directory is
# needed — the corpus seeds live in testdata. Override the budget with
# make fuzz FUZZTIME=2m. The snapshot run caps input minimization: a binary
# format makes nearly every mutation "interesting", and the default
# 60s-per-input minimization would stall the fuzzer.
FUZZTIME ?= 30s
fuzz:
	go test -fuzz=FuzzAssemble -fuzztime=$(FUZZTIME) ./internal/asm/
	go test -fuzz=FuzzSnapshotDecode -fuzztime=$(FUZZTIME) -fuzzminimizetime=1x ./internal/snapshot/

# Perf-regression gate: run the hot-loop and fast-forward benchmarks and
# compare against the checked-in baseline with cmd/benchdiff (a benchstat
# stand-in; no external tools). Fails on a >10% ns/op or allocs/op regression
# of any watched benchmark. Regenerate the baseline with bench-baseline after
# an intentional perf change — on the same machine, so deltas mean something.
# Also refreshes BENCH_ffwd.json, the ffwd-on/off wall-time comparison per
# figure section plus the loop-heavy loopmark sweep.
BENCH_RE    = ^(BenchmarkSimulatorSpeed|BenchmarkFastForward|BenchmarkFlightRecorder)$$
BENCH_WATCH = BenchmarkSimulatorSpeed,BenchmarkFastForward/on,BenchmarkFastForward/off,BenchmarkFlightRecorder/on,BenchmarkFlightRecorder/off
bench:
	@mkdir -p bench
	go test -run '^$$' -bench '$(BENCH_RE)' -benchmem -count 3 . | tee bench/latest.txt
	go run ./cmd/benchdiff -watch '$(BENCH_WATCH)' bench/baseline.txt bench/latest.txt
	go run ./cmd/reusebench -ffwdjson BENCH_ffwd.json -sizes 32,64 -progress=false

bench-baseline:
	@mkdir -p bench
	go test -run '^$$' -bench '$(BENCH_RE)' -benchmem -count 3 . | tee bench/baseline.txt

# The full benchmark suite (tables, figures, ablations), no regression gate.
bench-all:
	go test -bench=. -benchmem

# Tier-1 verification: everything must build, vet clean, and pass the full
# test suite under the race detector (the experiment harness runs
# simulations concurrently, so -race is part of the gate, not an extra).
.PHONY: check build vet test race fuzz bench

check: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Coverage-guided fuzzing of the assembler (see internal/asm/fuzz_test.go).
fuzz:
	go test -fuzz=FuzzAssemble -fuzztime=30s ./internal/asm/

bench:
	go test -bench=. -benchmem

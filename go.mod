module reuseiq

go 1.22

//go:build !race

// testing.AllocsPerRun is noisy under the race detector, so this file is
// excluded from -race runs; plain `go test` exercises it.

package reuseiq

import (
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/pipeline"
)

// TestSteadyStateZeroAllocs pins the tentpole property of the slot-based
// simulator core: once a machine is warmed up (scratch buffers sized, the
// loop captured and the front end gated), stepping it allocates nothing.
// Any regression here — a map in a stage, a slice that escapes, a
// fmt.Sprintf on the hot path — fails the test before it shows up as a
// throughput loss in BenchmarkSimulatorSpeed.
func TestSteadyStateZeroAllocs(t *testing.T) {
	p := asm.MustAssemble(`
	li   $r2, 0
	li   $r3, 2000000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	m := pipeline.New(pipeline.DefaultConfig(), p)
	defer m.Release()
	for i := 0; i < 5000 && !m.Halted(); i++ {
		m.Step()
	}
	if m.Halted() {
		t.Fatal("machine halted during warmup; loop too short for the measurement")
	}
	if m.GatedFraction() == 0 {
		t.Fatal("front end never gated during warmup; reuse did not engage")
	}
	avg := testing.AllocsPerRun(5000, func() { m.Step() })
	if m.Halted() {
		t.Fatal("machine halted during measurement; loop too short")
	}
	if avg != 0 {
		t.Errorf("steady-state Step allocates %.3f objects/cycle, want 0", avg)
	}
}

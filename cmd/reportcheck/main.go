// Command reportcheck is the run-ledger gate in `make check`: it scripts the
// whole ledger pipeline end to end and fails loudly if any stage lies.
//
//	reportcheck            # run the gate (from the repo root)
//	reportcheck -update    # regenerate the golden wire-format files
//
// The gate:
//
//  1. simulates the same kernel twice, recording both runs into a fresh
//     ledger, and requires the regression sentinel to PASS: the runs are
//     fingerprint-identical, so every modeled counter must be bit-identical;
//  2. injects a single +1 drift into one modeled counter of a copied record
//     and requires the sentinel to FAIL naming exactly that counter — proving
//     the oracle actually has teeth, not just a green lamp;
//  3. serves the ledger through internal/obs and validates the /runs and
//     /runs/{id} wire formats golden-file style (the structural skeleton —
//     JSON key paths and value types — is pinned in testdata, so a silent
//     field rename or type change breaks the gate, while values are free to
//     vary run to run), plus the /dashboard page's load-bearing structure.
//
// Exit codes: 0 gate passed, 1 a stage failed, 2 setup error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"reuseiq/internal/compiler"
	"reuseiq/internal/obs"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/runstore"
	"reuseiq/internal/workloads"
)

func main() {
	os.Exit(mainImpl(os.Args[1:], os.Stdout, os.Stderr))
}

func mainImpl(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reportcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	update := fs.Bool("update", false, "rewrite the golden wire-format files instead of comparing")
	golden := fs.String("golden", "cmd/reportcheck/testdata", "directory of golden wire-format files")
	kernel := fs.String("kernel", "aps", "kernel to simulate")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "reportcheck: "+format+"\n", a...)
		return 1
	}

	dir, err := os.MkdirTemp("", "reportcheck-*")
	if err != nil {
		fmt.Fprintln(stderr, "reportcheck:", err)
		return 2
	}
	defer os.RemoveAll(dir)

	// Stage 1: two scripted runs of the same configuration into a fresh
	// ledger; the sentinel must find one comparable group and zero drift.
	led, err := runstore.Open(filepath.Join(dir, "runs.jsonl"))
	if err != nil {
		fmt.Fprintln(stderr, "reportcheck:", err)
		return 2
	}
	defer led.Close()
	for i := 0; i < 2; i++ {
		start := time.Now()
		m, err := simulate(*kernel)
		if err != nil {
			return fail("run %d: %v", i+1, err)
		}
		rec := runstore.FromMachine(m)
		rec.Kind = runstore.KindSim
		rec.Kernel = *kernel
		rec.Host.WallNS = time.Since(start).Nanoseconds()
		if err := led.Append(&rec); err != nil {
			return fail("append run %d: %v", i+1, err)
		}
	}
	recs := led.Records()
	rep := runstore.Sentinel(recs)
	if !rep.Pass() {
		_ = rep.WriteText(stderr)
		return fail("sentinel FAILED on two identical-fingerprint runs: the simulator is not deterministic over its modeled inputs")
	}
	if len(rep.Groups) != 1 || len(rep.Groups[0].RunIDs) != 2 {
		return fail("sentinel grouped %d/%d, want one group of two runs", len(rep.Groups), rep.Singles)
	}
	fmt.Fprintf(stdout, "reportcheck: sentinel PASS on 2 identical runs of %s (%s)\n",
		*kernel, recs[0].Fingerprint)

	// Stage 2: inject a +1 drift into one modeled counter of a copied
	// record; the sentinel must fail and name that counter.
	bad := recs[1]
	bad.ID = "" // Sentinel does not mind, but keep ids unique for the report
	bad.Metrics.Counters = append([]runstore.Counter(nil), bad.Metrics.Counters...)
	driftName := ""
	for i, c := range bad.Metrics.Counters {
		if runstore.Modeled(c.Name) && c.Name != "sim.cycles" && c.Name != "sim.commits" {
			bad.Metrics.Counters[i].Value++
			driftName = c.Name
			break
		}
	}
	if driftName == "" {
		return fail("no modeled counter found to inject drift into")
	}
	drifted := runstore.Sentinel(append(append([]runstore.Record(nil), recs...), bad))
	if drifted.Pass() {
		return fail("sentinel MISSED an injected +1 drift in %s", driftName)
	}
	named := false
	for _, d := range drifted.Drifts() {
		if d.Name == driftName {
			named = true
		}
	}
	if !named {
		return fail("sentinel failed but did not name the drifted counter %s: %v", driftName, drifted.Drifts())
	}
	fmt.Fprintf(stdout, "reportcheck: sentinel caught injected +1 drift in %s\n", driftName)

	// Stage 3: wire formats. Serve the ledger and pin the JSON skeletons.
	srv := obs.NewServer()
	srv.SetRunSource(led.Records)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(stderr, "reportcheck:", err)
		return 2
	}
	defer srv.Close()
	base := "http://" + addr

	listing, err := fetch(base + "/runs")
	if err != nil {
		return fail("/runs: %v", err)
	}
	if err := checkShape(listing, filepath.Join(*golden, "runs_wire.golden"), *update); err != nil {
		return fail("/runs wire format: %v", err)
	}
	record, err := fetch(base + "/runs/" + recs[0].ID)
	if err != nil {
		return fail("/runs/{id}: %v", err)
	}
	if err := checkShape(record, filepath.Join(*golden, "run_wire.golden"), *update); err != nil {
		return fail("/runs/{id} wire format: %v", err)
	}

	resp, err := http.Get(base + "/dashboard")
	if err != nil {
		return fail("/dashboard: %v", err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
		return fail("/dashboard: status %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{"EventSource(\"/events\")", "/runs?last=25", "id=\"bar\""} {
		if !strings.Contains(string(page), want) {
			return fail("/dashboard page lost its %q wiring", want)
		}
	}
	if *update {
		fmt.Fprintln(stdout, "reportcheck: golden wire-format files updated")
		return 0
	}
	fmt.Fprintln(stdout, "reportcheck: /runs, /runs/{id} and /dashboard wire formats ok")
	return 0
}

func simulate(kernel string) (*pipeline.Machine, error) {
	k, ok := workloads.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("unknown kernel %q", kernel)
	}
	p, _, err := compiler.Compile(k.Prog)
	if err != nil {
		return nil, err
	}
	m := pipeline.New(pipeline.DefaultConfig(), p)
	if err := m.Run(); err != nil {
		return nil, err
	}
	return m, nil
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

// checkShape compares the structural skeleton of a JSON payload — sorted
// "path type" lines, with array indices collapsed to [] — against a golden
// file, or rewrites the golden with -update.
func checkShape(data []byte, goldenPath string, update bool) error {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("not JSON: %v", err)
	}
	lines := map[string]bool{}
	walkShape("", v, lines)
	sorted := make([]string, 0, len(lines))
	for l := range lines {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)
	got := strings.Join(sorted, "\n") + "\n"
	if update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			return err
		}
		return os.WriteFile(goldenPath, []byte(got), 0o644)
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("%v (regenerate with reportcheck -update)", err)
	}
	if got != string(want) {
		return fmt.Errorf("skeleton drifted from %s:\n%s", goldenPath, diffLines(string(want), got))
	}
	return nil
}

// walkShape records every key path and scalar type in v. Array elements all
// share one [] path so variable-length lists don't churn the golden.
func walkShape(path string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			p := k
			if path != "" {
				p = path + "." + k
			}
			walkShape(p, e, out)
		}
	case []any:
		if len(x) == 0 {
			out[path+"[] empty"] = true
			return
		}
		for _, e := range x {
			walkShape(path+"[]", e, out)
		}
	case string:
		out[path+" string"] = true
	case float64:
		out[path+" number"] = true
	case bool:
		out[path+" bool"] = true
	case nil:
		out[path+" null"] = true
	}
}

func diffLines(want, got string) string {
	ws := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		ws[l] = true
	}
	gs := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gs[l] = true
	}
	var b strings.Builder
	for l := range gs {
		if !ws[l] {
			fmt.Fprintf(&b, "  + %s\n", l)
		}
	}
	for l := range ws {
		if !gs[l] {
			fmt.Fprintf(&b, "  - %s\n", l)
		}
	}
	return b.String()
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestGatePasses runs the whole gate in-process against the checked-in
// goldens, exactly as `make report-check` does from the repo root (the
// golden path is relative to this package here).
func TestGatePasses(t *testing.T) {
	var out, errb bytes.Buffer
	code := mainImpl([]string{"-golden", "testdata"}, &out, &errb)
	if code != 0 {
		t.Fatalf("reportcheck exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"sentinel PASS", "caught injected +1 drift", "wire formats ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestShapeWalker(t *testing.T) {
	out := map[string]bool{}
	walkShape("", map[string]any{
		"a": 1.0,
		"b": []any{map[string]any{"c": "x"}, map[string]any{"c": "y", "d": true}},
		"e": []any{},
	}, out)
	for _, want := range []string{"a number", "b[].c string", "b[].d bool", "e[] empty"} {
		if !out[want] {
			t.Errorf("missing %q in %v", want, out)
		}
	}
	if len(out) != 4 {
		t.Errorf("got %d lines, want 4: %v", len(out), out)
	}
}

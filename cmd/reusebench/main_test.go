package main

import (
	"encoding/json"
	"testing"
	"time"

	"reuseiq/internal/experiments"
)

func TestMakeProgressRecord(t *testing.T) {
	sp := experiments.Spec{Kernel: "adi", IQSize: 64, Reuse: true}
	rec := makeProgressRecord(3, 12, sp, experiments.RunResult{}, 6*time.Second)
	if rec.Done != 3 || rec.Total != 12 || rec.Kernel != "adi" || rec.IQ != 64 || !rec.Reuse {
		t.Fatalf("record fields wrong: %+v", rec)
	}
	if rec.ElapsedMS != 6000 {
		t.Errorf("ElapsedMS = %d, want 6000", rec.ElapsedMS)
	}
	// 6s for 3 points -> 2s/point -> 9 remaining -> 18s ETA.
	if rec.EtaMS != 18000 {
		t.Errorf("EtaMS = %d, want 18000", rec.EtaMS)
	}
	if got := rec.eta(); got != "18s" {
		t.Errorf("eta() = %q, want \"18s\"", got)
	}
}

func TestProgressRecordUnknownETA(t *testing.T) {
	rec := makeProgressRecord(0, 12, experiments.Spec{Kernel: "lms", IQSize: 32}, experiments.RunResult{}, 0)
	if rec.EtaMS != -1 {
		t.Errorf("EtaMS with no elapsed time = %d, want -1", rec.EtaMS)
	}
	if got := rec.eta(); got != "?" {
		t.Errorf("eta() = %q, want \"?\"", got)
	}
}

func TestProgressRecordJSONShape(t *testing.T) {
	rec := makeProgressRecord(1, 2, experiments.Spec{Kernel: "adi", IQSize: 128}, experiments.RunResult{}, time.Second)
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"done", "total", "kernel", "iq", "reuse", "elapsed_ms", "eta_ms"} {
		if _, ok := m[k]; !ok {
			t.Errorf("progress record missing %q key: %s", k, data)
		}
	}
	// run_id is omitted when no ledger produced one, so pre-ledger consumers
	// see unchanged records.
	if _, ok := m["run_id"]; ok {
		t.Errorf("progress record has run_id key with no ledger: %s", data)
	}
}

// TestProgressRecordRunIDRoundTrip pins the ledger correlation contract: the
// RunID a Suite.Progress callback reports survives the JSON wire format that
// -progress-json lines and SSE "progress" events share, so a consumer can
// join live progress against ledger records by id.
func TestProgressRecordRunIDRoundTrip(t *testing.T) {
	r := experiments.RunResult{RunID: "a1b2c3d4e5f60718"}
	rec := makeProgressRecord(2, 4, experiments.Spec{Kernel: "adi", IQSize: 64}, r, time.Second)
	if rec.RunID != r.RunID {
		t.Fatalf("RunID = %q, want %q", rec.RunID, r.RunID)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back progressRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.RunID != r.RunID {
		t.Errorf("run_id after round trip = %q, want %q", back.RunID, r.RunID)
	}
}

// Command reusebench regenerates every table and figure of the paper's
// evaluation, plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	reusebench                  # everything
//	reusebench -table 1         # one table (1 or 2)
//	reusebench -figure 5        # one figure (5, 6, 7, 8 or 9)
//	reusebench -ablation nblt   # one ablation (nblt or strategy)
//	reusebench -extension frontends  # compare vs filter cache / loop cache
//	reusebench -forcefail adi:64     # sabotage one cell; sweep still completes
//
// A simulation that aborts (watchdog, cycle budget) does not abort the
// sweep: the cell is rendered as "fail" and excluded from averages.
//
// Alongside the text report, a machine-readable throughput summary is
// written to BENCH_simcore.json (disable with -benchjson ""): simulated
// cycles, cycles/sec, ns/cycle, allocs/cycle and per-section wall time.
// CI and the perf-regression harness consume it; the text report stays
// byte-stable across timing jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"reuseiq/internal/experiments"
	"reuseiq/internal/ffwd"
	"reuseiq/internal/obs"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/runstore"
	"reuseiq/internal/telemetry"
)

// Both machine-readable summaries (BENCH_simcore.json, BENCH_ffwd.json) are
// emitted as schema-versioned runstore.BenchRecord envelopes; cmd/benchdiff
// -json validates and diffs them. Cycle totals come from the Suite cache
// (each configuration simulated exactly once), so cycles/sec is true
// simulation throughput, not inflated by cache hits.

func makeFfwdSection(name string, off, on time.Duration) runstore.BenchFfwdSection {
	s := runstore.BenchFfwdSection{
		Name:  name,
		Off:   off.Round(time.Millisecond).String(),
		On:    on.Round(time.Millisecond).String(),
		OffNS: off.Nanoseconds(),
		OnNS:  on.Nanoseconds(),
	}
	if on > 0 {
		s.Speedup = float64(off) / float64(on)
	}
	return s
}

// ffwdCompare times every figure section with the fast-forward engine off
// and on (each mode gets its own suite, so caching behaves as in a normal
// sweep), then a loop-heavy figure5-style sweep of the loopmark kernel where
// the analytic skip dominates. Any difference in rendered output or cycle
// counts between the two modes is an error: the engine's contract is
// byte-identical results.
func ffwdCompare(sizes []int) ([]runstore.BenchFfwdSection, error) {
	figs := []struct {
		name string
		run  func(*experiments.Suite) (string, error)
	}{
		{"figure5", func(s *experiments.Suite) (string, error) {
			f, err := s.Figure5(sizes)
			if err != nil {
				return "", err
			}
			return f.String(), nil
		}},
		{"figure6", func(s *experiments.Suite) (string, error) {
			f, err := s.Figure6(sizes)
			if err != nil {
				return "", err
			}
			return f.String(), nil
		}},
		{"figure7", func(s *experiments.Suite) (string, error) {
			f, err := s.Figure7(sizes)
			if err != nil {
				return "", err
			}
			return f.String(), nil
		}},
		{"figure8", func(s *experiments.Suite) (string, error) {
			f, err := s.Figure8(sizes)
			if err != nil {
				return "", err
			}
			return f.String(), nil
		}},
		{"figure9", func(s *experiments.Suite) (string, error) {
			f, err := s.Figure9()
			if err != nil {
				return "", err
			}
			return f.String(), nil
		}},
	}
	sOff, sOn := experiments.NewSuite(), experiments.NewSuite()
	sOn.FastForward = true
	var out []runstore.BenchFfwdSection
	for _, fig := range figs {
		t0 := time.Now()
		offOut, err := fig.run(sOff)
		if err != nil {
			return nil, err
		}
		off := time.Since(t0)
		t0 = time.Now()
		onOut, err := fig.run(sOn)
		if err != nil {
			return nil, err
		}
		on := time.Since(t0)
		if offOut != onOut {
			return nil, fmt.Errorf("ffwd: %s output differs between engine off and on", fig.name)
		}
		out = append(out, makeFfwdSection(fig.name, off, on))
	}

	// The loopmark sweep: a long affine counted loop per IQ size, the
	// workload shape the engine exists for.
	p := ffwd.LoopmarkProgram(2_000_000)
	var wall [2]time.Duration
	var cycles [2]uint64
	for mode, on := range []bool{false, true} {
		t0 := time.Now()
		for _, iq := range sizes {
			cfg := pipeline.DefaultConfig().WithIQSize(iq)
			cfg.FastForward = on
			m := pipeline.New(cfg, p)
			ffwd.Attach(m)
			if err := m.Run(); err != nil {
				return nil, fmt.Errorf("ffwd: loopmark iq=%d: %w", iq, err)
			}
			cycles[mode] += m.C.Cycles
		}
		wall[mode] = time.Since(t0)
	}
	if cycles[0] != cycles[1] {
		return nil, fmt.Errorf("ffwd: loopmark cycle totals differ: off %d, on %d", cycles[0], cycles[1])
	}
	return append(out, makeFfwdSection("loopmark", wall[0], wall[1])), nil
}

// progressRecord is one machine-readable sweep-progress record, emitted as
// a JSON line by -progress-json and as an SSE "progress" event by -listen.
type progressRecord struct {
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	Kernel    string `json:"kernel"`
	IQ        int    `json:"iq"`
	Reuse     bool   `json:"reuse"`
	ElapsedMS int64  `json:"elapsed_ms"`
	EtaMS     int64  `json:"eta_ms"` // -1 while unknown
	// RunID correlates this progress record with the run-ledger record the
	// cell produced (-ledger). Empty when no ledger is attached or the cell
	// was served from cache/journal replay.
	RunID string `json:"run_id,omitempty"`
}

// makeProgressRecord derives one record from a Suite.Progress callback.
func makeProgressRecord(done, total int, sp experiments.Spec, r experiments.RunResult, elapsed time.Duration) progressRecord {
	rec := progressRecord{
		Done:      done,
		Total:     total,
		Kernel:    sp.Kernel,
		IQ:        sp.IQSize,
		Reuse:     sp.Reuse,
		ElapsedMS: elapsed.Milliseconds(),
		EtaMS:     -1,
		RunID:     r.RunID,
	}
	if done > 0 && elapsed > 0 {
		rec.EtaMS = time.Duration(float64(elapsed) / float64(done) * float64(total-done)).Milliseconds()
	}
	return rec
}

func (r progressRecord) eta() string {
	if r.EtaMS < 0 {
		return "?"
	}
	return (time.Duration(r.EtaMS) * time.Millisecond).Round(time.Second).String()
}

func main() {
	table := flag.Int("table", 0, "regenerate one table (1 or 2)")
	figure := flag.Int("figure", 0, "regenerate one figure (5-9)")
	ablation := flag.String("ablation", "", "run one ablation (nblt, nbltsweep, strategy or unroll)")
	extension := flag.String("extension", "", "run an extension experiment (frontends)")
	csvDir := flag.String("csv", "", "also write each figure's data as CSV into this directory")
	forcefail := flag.String("forcefail", "", "force runs of kernel[:iq] to fail, to demonstrate degraded sweeps")
	benchJSON := flag.String("benchjson", "BENCH_simcore.json", "write the throughput summary to this file (empty disables)")
	ffwdJSON := flag.String("ffwdjson", "", "run the fast-forward on/off comparison (figures + loopmark sweep) and write it to this file, instead of the report")
	ffwdFlag := flag.Bool("ffwd", false, "run every sweep with the analytic fast-forward engine (byte-identical results, less wall time)")
	progress := flag.Bool("progress", true, "report live sweep progress (points done, ETA, current kernel) on stderr")
	progressJSON := flag.String("progress-json", "", "also write JSONL progress records to this file (\"-\" = stderr)")
	listen := flag.String("listen", "", "serve live /metrics, /events, /status and pprof on this address while the sweep runs")
	linger := flag.Duration("linger", 0, "keep the -listen server up this long after the report completes")
	ledgerPath := flag.String("ledger", "", "append a provenance-stamped run-ledger record (JSONL) for every simulated cell to this file; query with reusereport")
	journal := flag.String("journal", "", "journal completed sweep cells (JSONL + per-cell CSV + mid-cell checkpoints) under this path for crash recovery")
	resume := flag.Bool("resume", false, "with -journal, resume a previous (killed) sweep: skip recorded cells, restore in-flight ones from checkpoints")
	ckptEvery := flag.Uint64("ckpt-every", 0, "with -journal, cycles between mid-cell checkpoints (0 = default 2000000)")
	sizesFlag := flag.String("sizes", "", "comma-separated IQ sizes for figures 5-8 (default 32,64,128,256)")
	flag.Parse()

	sizes := experiments.DefaultSizes
	if *sizesFlag != "" {
		sizes = nil
		for _, fld := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(fld))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "reusebench: bad -sizes %q\n", *sizesFlag)
				os.Exit(1)
			}
			sizes = append(sizes, n)
		}
	}

	if *ffwdJSON != "" {
		start := time.Now()
		secs, err := ffwdCompare(sizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reusebench:", err)
			os.Exit(1)
		}
		rec := &runstore.BenchRecord{V: runstore.BenchSchemaVersion, Kind: runstore.BenchFfwd, Ffwd: secs}
		if err := runstore.WriteBenchRecord(*ffwdJSON, rec); err != nil {
			fmt.Fprintln(os.Stderr, "reusebench:", err)
			os.Exit(1)
		}
		for _, sec := range secs {
			fmt.Printf("%-10s off %-10s on %-10s %6.1fx\n", sec.Name, sec.Off, sec.On, sec.Speedup)
		}
		fmt.Printf("(completed in %s)\n", time.Since(start).Round(time.Second))
		return
	}

	s := experiments.NewSuite()
	s.FastForward = *ffwdFlag
	if *resume && *journal == "" {
		fmt.Fprintln(os.Stderr, "reusebench: -resume requires -journal")
		os.Exit(1)
	}
	var led *runstore.Ledger
	if *ledgerPath != "" {
		var err error
		led, err = s.AttachLedger(*ledgerPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reusebench:", err)
			os.Exit(1)
		}
		defer led.Close()
	}
	if *journal != "" {
		j, n, err := s.AttachJournal(*journal, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reusebench:", err)
			os.Exit(1)
		}
		defer j.Close()
		if *ckptEvery > 0 {
			j.CheckpointEvery = *ckptEvery
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "reusebench: journal: recovered %d completed cells from %s\n", n, *journal)
		}
	}

	var srv *obs.Server
	if *listen != "" {
		srv = obs.NewServer()
		addr, err := srv.Start(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reusebench:", err)
			os.Exit(1)
		}
		if led != nil {
			srv.SetRunSource(led.Records)
		}
		fmt.Fprintf(os.Stderr, "reusebench: obs: listening on http://%s (/metrics /events /status /dashboard /debug/pprof)\n", addr)
	}

	var progressOut io.Writer
	if *progressJSON != "" {
		if *progressJSON == "-" {
			progressOut = os.Stderr
		} else {
			f, err := os.Create(*progressJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reusebench:", err)
				os.Exit(1)
			}
			defer f.Close()
			progressOut = f
		}
	}

	if *progress || progressOut != nil || srv != nil {
		human := *progress
		var sweepStart time.Time
		s.Progress = func(done, total int, sp experiments.Spec, r experiments.RunResult) {
			// Serialized by Prewarm; stderr only, so report text stays stable.
			if done == 1 {
				sweepStart = time.Now()
			}
			rec := makeProgressRecord(done, total, sp, r, time.Since(sweepStart))
			if human {
				fmt.Fprintf(os.Stderr, "\rreusebench: %d/%d points, eta %s  (%s iq=%d)\x1b[K",
					done, total, rec.eta(), sp.Kernel, sp.IQSize)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
			if progressOut != nil || srv != nil {
				data, err := json.Marshal(rec)
				if err == nil {
					if progressOut != nil {
						progressOut.Write(append(data, '\n'))
					}
					if srv != nil {
						srv.PublishEvent("progress", data)
					}
				}
			}
		}
	}
	if *forcefail != "" {
		kernel, iqSize := *forcefail, 0
		if i := strings.IndexByte(kernel, ':'); i >= 0 {
			n, err := strconv.Atoi(kernel[i+1:])
			if err != nil {
				fmt.Fprintf(os.Stderr, "reusebench: bad -forcefail %q: %v\n", *forcefail, err)
				os.Exit(1)
			}
			kernel, iqSize = kernel[:i], n
		}
		s.Sabotage = func(sp experiments.Spec) bool {
			return sp.Kernel == kernel && (iqSize == 0 || sp.IQSize == iqSize)
		}
	}
	if srv != nil {
		reg := &telemetry.Registry{}
		s.RegisterMetrics(reg)
		publish := func() {
			srv.Publish(obs.Sample{
				Cycle:   s.TotalCycles(),
				Metrics: reg.TypedSnapshot(),
				Status:  s.Sweep(),
			})
		}
		publish() // readyz goes 200 before the first sweep point lands
		stop := make(chan struct{})
		var tick sync.WaitGroup
		tick.Add(1)
		go func() {
			defer tick.Done()
			t := time.NewTicker(500 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					publish()
				case <-stop:
					return
				}
			}
		}()
		defer func() {
			close(stop)
			tick.Wait()
			publish() // final state for late scrapes
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "reusebench: obs: lingering %s for late scrapes\n", *linger)
				time.Sleep(*linger)
			}
			srv.Close()
		}()
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	all := *table == 0 && *figure == 0 && *ablation == "" && *extension == ""

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "reusebench:", err)
		os.Exit(1)
	}
	writeCSV := func(name string, write func(*os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fail(err)
		}
	}
	var sections []runstore.BenchSection
	timed := func(name string, f func()) {
		t0 := time.Now()
		f()
		d := time.Since(t0)
		sections = append(sections, runstore.BenchSection{
			Name: name, Wall: d.Round(time.Millisecond).String(), WallNS: d.Nanoseconds(),
		})
	}

	if all || *table == 1 {
		timed("table1", func() { fmt.Println(experiments.Table1()) })
	}
	if all || *table == 2 {
		timed("table2", func() { fmt.Println(experiments.Table2()) })
	}
	if all || *figure == 5 {
		timed("figure5", func() {
			f, err := s.Figure5(sizes)
			if err != nil {
				fail(err)
			}
			fmt.Println(f)
			writeCSV("figure5.csv", func(w *os.File) error { return f.WriteCSV(w) })
		})
	}
	if all || *figure == 6 {
		timed("figure6", func() {
			f, err := s.Figure6(sizes)
			if err != nil {
				fail(err)
			}
			fmt.Println(f)
			writeCSV("figure6.csv", func(w *os.File) error { return f.WriteCSV(w) })
		})
	}
	if all || *figure == 7 {
		timed("figure7", func() {
			f, err := s.Figure7(sizes)
			if err != nil {
				fail(err)
			}
			fmt.Println(f)
			writeCSV("figure7.csv", func(w *os.File) error { return f.WriteCSV(w) })
		})
	}
	if all || *figure == 8 {
		timed("figure8", func() {
			f, err := s.Figure8(sizes)
			if err != nil {
				fail(err)
			}
			fmt.Println(f)
			writeCSV("figure8.csv", func(w *os.File) error { return f.WriteCSV(w) })
		})
	}
	if all || *figure == 9 {
		timed("figure9", func() {
			f, err := s.Figure9()
			if err != nil {
				fail(err)
			}
			fmt.Println(f)
			writeCSV("figure9.csv", func(w *os.File) error { return f.WriteCSV(w) })
		})
	}
	if all || *ablation == "nblt" {
		timed("ablation_nblt", func() {
			a, err := s.AblationNBLT()
			if err != nil {
				fail(err)
			}
			fmt.Println(a)
		})
	}
	if all || *ablation == "strategy" {
		timed("ablation_strategy", func() {
			a, err := s.AblationStrategy()
			if err != nil {
				fail(err)
			}
			fmt.Println(a)
		})
	}
	if all || *ablation == "nbltsweep" {
		timed("ablation_nbltsweep", func() {
			sw, err := s.SweepNBLTSizes([]int{0, 2, 4, 8, 16})
			if err != nil {
				fail(err)
			}
			fmt.Println(sw)
		})
	}
	if all || *ablation == "unroll" {
		timed("ablation_unroll", func() {
			a, err := s.AblationUnroll(4)
			if err != nil {
				fail(err)
			}
			fmt.Println(a)
		})
	}
	if all || *extension == "frontends" {
		timed("extension_frontends", func() {
			c, err := s.CompareFrontEnds()
			if err != nil {
				fail(err)
			}
			fmt.Println(c)
		})
	}

	if *benchJSON != "" {
		wall := time.Since(start)
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		th := runstore.BenchThroughput{
			SimulatedCycles: s.TotalCycles(),
			WallNS:          wall.Nanoseconds(),
			Wall:            wall.Round(time.Millisecond).String(),
		}
		if th.SimulatedCycles > 0 {
			th.CyclesPerSec = float64(th.SimulatedCycles) / wall.Seconds()
			th.NSPerCycle = float64(wall.Nanoseconds()) / float64(th.SimulatedCycles)
			th.AllocsPerCycle = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(th.SimulatedCycles)
		}
		rec := &runstore.BenchRecord{
			V: runstore.BenchSchemaVersion, Kind: runstore.BenchSimcore,
			Throughput: &th, Sections: sections,
		}
		if err := runstore.WriteBenchRecord(*benchJSON, rec); err != nil {
			fail(err)
		}
	}
	fmt.Printf("(completed in %s)\n", time.Since(start).Round(time.Second))
}

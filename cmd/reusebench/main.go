// Command reusebench regenerates every table and figure of the paper's
// evaluation, plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	reusebench                  # everything
//	reusebench -table 1         # one table (1 or 2)
//	reusebench -figure 5        # one figure (5, 6, 7, 8 or 9)
//	reusebench -ablation nblt   # one ablation (nblt or strategy)
//	reusebench -extension frontends  # compare vs filter cache / loop cache
//	reusebench -forcefail adi:64     # sabotage one cell; sweep still completes
//
// A simulation that aborts (watchdog, cycle budget) does not abort the
// sweep: the cell is rendered as "fail" and excluded from averages.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"reuseiq/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1 or 2)")
	figure := flag.Int("figure", 0, "regenerate one figure (5-9)")
	ablation := flag.String("ablation", "", "run one ablation (nblt, nbltsweep, strategy or unroll)")
	extension := flag.String("extension", "", "run an extension experiment (frontends)")
	csvDir := flag.String("csv", "", "also write each figure's data as CSV into this directory")
	forcefail := flag.String("forcefail", "", "force runs of kernel[:iq] to fail, to demonstrate degraded sweeps")
	flag.Parse()

	s := experiments.NewSuite()
	if *forcefail != "" {
		kernel, iqSize := *forcefail, 0
		if i := strings.IndexByte(kernel, ':'); i >= 0 {
			n, err := strconv.Atoi(kernel[i+1:])
			if err != nil {
				fmt.Fprintf(os.Stderr, "reusebench: bad -forcefail %q: %v\n", *forcefail, err)
				os.Exit(1)
			}
			kernel, iqSize = kernel[:i], n
		}
		s.Sabotage = func(sp experiments.Spec) bool {
			return sp.Kernel == kernel && (iqSize == 0 || sp.IQSize == iqSize)
		}
	}
	start := time.Now()
	all := *table == 0 && *figure == 0 && *ablation == "" && *extension == ""

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "reusebench:", err)
		os.Exit(1)
	}
	writeCSV := func(name string, write func(*os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fail(err)
		}
	}

	if all || *table == 1 {
		fmt.Println(experiments.Table1())
	}
	if all || *table == 2 {
		fmt.Println(experiments.Table2())
	}
	if all || *figure == 5 {
		f, err := s.Figure5(experiments.DefaultSizes)
		if err != nil {
			fail(err)
		}
		fmt.Println(f)
		writeCSV("figure5.csv", func(w *os.File) error { return f.WriteCSV(w) })
	}
	if all || *figure == 6 {
		f, err := s.Figure6(experiments.DefaultSizes)
		if err != nil {
			fail(err)
		}
		fmt.Println(f)
		writeCSV("figure6.csv", func(w *os.File) error { return f.WriteCSV(w) })
	}
	if all || *figure == 7 {
		f, err := s.Figure7(experiments.DefaultSizes)
		if err != nil {
			fail(err)
		}
		fmt.Println(f)
		writeCSV("figure7.csv", func(w *os.File) error { return f.WriteCSV(w) })
	}
	if all || *figure == 8 {
		f, err := s.Figure8(experiments.DefaultSizes)
		if err != nil {
			fail(err)
		}
		fmt.Println(f)
		writeCSV("figure8.csv", func(w *os.File) error { return f.WriteCSV(w) })
	}
	if all || *figure == 9 {
		f, err := s.Figure9()
		if err != nil {
			fail(err)
		}
		fmt.Println(f)
		writeCSV("figure9.csv", func(w *os.File) error { return f.WriteCSV(w) })
	}
	if all || *ablation == "nblt" {
		a, err := s.AblationNBLT()
		if err != nil {
			fail(err)
		}
		fmt.Println(a)
	}
	if all || *ablation == "strategy" {
		a, err := s.AblationStrategy()
		if err != nil {
			fail(err)
		}
		fmt.Println(a)
	}
	if all || *ablation == "nbltsweep" {
		sw, err := s.SweepNBLTSizes([]int{0, 2, 4, 8, 16})
		if err != nil {
			fail(err)
		}
		fmt.Println(sw)
	}
	if all || *ablation == "unroll" {
		a, err := s.AblationUnroll(4)
		if err != nil {
			fail(err)
		}
		fmt.Println(a)
	}
	if all || *extension == "frontends" {
		c, err := s.CompareFrontEnds()
		if err != nil {
			fail(err)
		}
		fmt.Println(c)
	}
	fmt.Printf("(completed in %s)\n", time.Since(start).Round(time.Second))
}

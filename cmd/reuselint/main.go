// Command reuselint is the reuseiq static-analysis gate: it runs the six
// module analyzers (zerocost, hotalloc, exhaustive, metricname, statecov,
// determinism) and exits non-zero on any finding. Two modes:
//
// Standalone (the Makefile `lint` target):
//
//	reuselint [packages...]     # default ./... from the module root
//
// loads the whole module once, giving every analyzer the cross-package
// view (hotpath closure, module-wide annotation indexes).
//
// Vettool (`go vet` driver):
//
//	go build -o /tmp/reuselint ./cmd/reuselint
//	go vet -vettool=/tmp/reuselint ./...
//
// speaks the cmd/go unitchecker protocol (-V=full handshake, one *.cfg
// JSON per package, facts file output). In this mode each package is
// type-checked in isolation against export data, so module-wide analyses
// degrade to package-local coverage; the standalone mode is the gate of
// record.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"

	"reuseiq/internal/analysis"
	"reuseiq/internal/analysis/determinism"
	"reuseiq/internal/analysis/exhaustive"
	"reuseiq/internal/analysis/hotalloc"
	"reuseiq/internal/analysis/metricname"
	"reuseiq/internal/analysis/statecov"
	"reuseiq/internal/analysis/zerocost"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		exhaustive.Analyzer,
		hotalloc.Analyzer,
		metricname.Analyzer,
		statecov.Analyzer,
		zerocost.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// cmd/go handshakes: version (cache key) and flag discovery. The
	// devel form requires a trailing buildID= field; hashing our own
	// binary makes vet's result cache invalidate when the linter changes.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Printf("reuselint version devel buildID=%s\n", selfID())
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	// A single *.cfg argument means cmd/go is driving us per package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], analyzers()))
	}

	os.Exit(standalone(args))
}

// selfID returns a content hash of the running executable.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:12])
}

func standalone(args []string) int {
	var patterns []string
	stats := false
	for _, a := range args {
		if a == "-stats" || a == "--stats" {
			stats = true
			continue
		}
		patterns = append(patterns, a)
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reuselint:", err)
		return 1
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reuselint:", err)
		return 1
	}
	mod, err := analysis.LoadModule(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reuselint:", err)
		return 1
	}
	findings, err := analysis.Run(mod, analyzers(), mod.Packages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reuselint:", err)
		return 1
	}
	for _, f := range findings {
		pos := mod.Position(f.Diagnostic.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, f.Analyzer.Name, f.Diagnostic.Message)
	}
	if stats {
		printStats(mod, findings)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "reuselint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

package main

import (
	"fmt"
	"sort"
	"strings"

	"reuseiq/internal/analysis"
)

// waiverNames maps each analyzer to the waiver markers it honors. The
// stats output and the waiver-budget test both read this table, so a new
// waiver grammar must be registered here to be visible in `make lint-stats`
// and pinned against creep.
var waiverNames = map[string][]string{
	"determinism": {"allow-nondet"},
	"exhaustive":  {"allow-nonexhaustive"},
	"hotalloc":    {"allow-alloc"},
	"metricname":  {},
	"statecov":    {"transient", "nodigest", "nowire"},
	"zerocost":    {"allow-unguarded"},
}

// countWaivers counts the "//reuse:<name>" comments across the loaded
// module, with the same comment-start rule the analyzers use: the marker
// must begin the comment, so prose that merely mentions a marker does not
// count.
func countWaivers(mod *analysis.Module, name string) int {
	prefix := "//reuse:" + name
	n := 0
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, found := strings.CutPrefix(c.Text, prefix)
					if found && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
						n++
					}
				}
			}
		}
	}
	return n
}

// printStats renders the per-analyzer finding and waiver counts. Findings
// are zero on a clean tree; the waiver counts are the suppressed-finding
// budget, pinned by TestWaiverBudget so silent growth fails CI.
func printStats(mod *analysis.Module, findings []analysis.Finding) {
	byAnalyzer := make(map[string]int)
	for _, f := range findings {
		byAnalyzer[f.Analyzer.Name]++
	}
	var names []string
	for _, a := range analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	fmt.Printf("%-12s %9s  %s\n", "analyzer", "findings", "waivers")
	for _, name := range names {
		var parts []string
		for _, w := range waiverNames[name] {
			parts = append(parts, fmt.Sprintf("%s=%d", w, countWaivers(mod, w)))
		}
		detail := strings.Join(parts, " ")
		if detail == "" {
			detail = "-"
		}
		fmt.Printf("%-12s %9d  %s\n", name, byAnalyzer[name], detail)
	}
}

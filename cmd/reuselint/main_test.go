package main

import (
	"os"
	"testing"

	"reuseiq/internal/analysis"
)

// TestReuselintSelfClean runs every analyzer over the real module and
// requires zero diagnostics: the simulator's own code must satisfy the
// invariants the analyzers enforce (with its waivers justified). The
// analyzers' ability to find violations is proven separately by the
// analysistest golden packages under internal/analysis/*/testdata.
func TestReuselintSelfClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(mod, analyzers(), mod.Packages)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		pos := mod.Position(f.Diagnostic.Pos)
		t.Errorf("%s: %s: %s", pos, f.Analyzer.Name, f.Diagnostic.Message)
	}
}

// TestAnalyzerRoster pins the gate's contents: adding an analyzer without
// updating this list (and the docs) should be a conscious act.
func TestAnalyzerRoster(t *testing.T) {
	want := map[string]bool{
		"zerocost":   true,
		"hotalloc":   true,
		"exhaustive": true,
		"metricname": true,
	}
	got := analyzers()
	if len(got) != len(want) {
		t.Fatalf("analyzer count = %d, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}

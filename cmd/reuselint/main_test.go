package main

import (
	"os"
	"testing"

	"reuseiq/internal/analysis"
)

// TestReuselintSelfClean runs every analyzer over the real module and
// requires zero diagnostics: the simulator's own code must satisfy the
// invariants the analyzers enforce (with its waivers justified). The
// analyzers' ability to find violations is proven separately by the
// analysistest golden packages under internal/analysis/*/testdata.
func TestReuselintSelfClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(mod, analyzers(), mod.Packages)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		pos := mod.Position(f.Diagnostic.Pos)
		t.Errorf("%s: %s: %s", pos, f.Analyzer.Name, f.Diagnostic.Message)
	}
}

// TestAnalyzerRoster pins the gate's contents: adding an analyzer without
// updating this list (and the docs) should be a conscious act.
func TestAnalyzerRoster(t *testing.T) {
	want := map[string]bool{
		"zerocost":    true,
		"hotalloc":    true,
		"exhaustive":  true,
		"metricname":  true,
		"statecov":    true,
		"determinism": true,
	}
	got := analyzers()
	if len(got) != len(want) {
		t.Fatalf("analyzer count = %d, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if _, ok := waiverNames[a.Name]; !ok {
			t.Errorf("analyzer %q missing from the waiverNames stats table", a.Name)
		}
	}
}

// TestWaiverBudget pins the module's waiver counts exactly. A finding
// suppressed by a waiver is debt: adding one must be a conscious act (bump
// the number here, with the new waiver's justification in the diff), and
// removing one should be celebrated by shrinking the budget, not absorbed
// silently.
func TestWaiverBudget(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	budget := map[string]int{
		"allow-alloc":         14,
		"allow-nondet":        0,
		"allow-nonexhaustive": 0,
		"allow-unguarded":     4,
		"nodigest":            37,
		"nowire":              0,
		"transient":           34,
	}
	for name, want := range budget {
		if got := countWaivers(mod, name); got != want {
			t.Errorf("//reuse:%s count = %d, want %d (update the budget deliberately)", name, got, want)
		}
	}
	// Every waiver the stats table knows about must be budgeted.
	for _, names := range waiverNames {
		for _, name := range names {
			if _, ok := budget[name]; !ok {
				t.Errorf("waiver %q has no pinned budget", name)
			}
		}
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"reuseiq/internal/analysis"
)

// vetConfig is the JSON cmd/go writes next to each package's build
// artifacts when a -vettool is installed (the unitchecker.Config schema;
// fields we don't need are ignored by encoding/json).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string // import path -> dependency facts file
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// factsFile is the on-disk shape of a package's facts (.vetx) file: one raw
// JSON fact per analyzer that exported one. cmd/go treats the file as an
// opaque blob (it only hashes it into the build cache key), so the schema is
// ours; an empty object is a valid "no facts" file.
type factsFile map[string]json.RawMessage

// loadDepFacts reads the facts files of every dependency cmd/go listed.
// Unreadable or malformed files degrade to "no facts" rather than failing
// the vet run: facts only widen cross-package coverage, they are never
// required for the package-local checks.
func loadDepFacts(cfg *vetConfig) map[string]factsFile {
	out := make(map[string]factsFile, len(cfg.PackageVetx))
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		var ff factsFile
		if json.Unmarshal(data, &ff) != nil {
			continue
		}
		out[path] = ff
	}
	return out
}

// exportFacts runs every fact-exporting analyzer over the package and
// serializes the result for the package's own facts file.
func exportFacts(analyzers []*analysis.Analyzer, mk func(a *analysis.Analyzer) *analysis.Pass) ([]byte, error) {
	ff := make(factsFile)
	for _, a := range analyzers {
		if a.ExportFacts == nil {
			continue
		}
		fact := a.ExportFacts(mk(a))
		if fact == nil {
			continue
		}
		raw, err := json.Marshal(fact)
		if err != nil {
			return nil, fmt.Errorf("marshaling %s facts: %w", a.Name, err)
		}
		ff[a.Name] = raw
	}
	return json.Marshal(ff)
}

// unitcheck analyzes the single compilation unit described by cfgFile and
// returns the process exit code (0 clean, 1 internal error, 2 findings —
// cmd/go treats any non-zero status as a vet failure).
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reuselint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reuselint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reuselint:", err)
			return 1
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tconf := types.Config{
		Importer: &cfgImporter{cfg: &cfg, fset: fset},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// cmd/go still expects the facts file to exist.
			if cfg.VetxOutput != "" {
				os.WriteFile(cfg.VetxOutput, []byte("{}"), 0o666)
			}
			return 0
		}
		fmt.Fprintf(os.Stderr, "reuselint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	depFacts := loadDepFacts(&cfg)
	mkPass := func(a *analysis.Analyzer) *analysis.Pass {
		pass := analysis.NewPass(a, fset, files, tpkg, info, nil)
		pass.SetDepFacts(func(pkgPath, analyzer string) []byte {
			if mapped, ok := cfg.ImportMap[pkgPath]; ok {
				pkgPath = mapped
			}
			return depFacts[pkgPath][analyzer]
		})
		return pass
	}

	// Facts first: a VetxOnly pass (this package is only a dependency of
	// the vet targets) computes and persists facts but reports nothing.
	if cfg.VetxOutput != "" {
		facts, err := exportFacts(analyzers, mkPass)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reuselint:", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "reuselint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	exit := 0
	for _, a := range analyzers {
		diags, err := analysis.RunPass(mkPass(a))
		if err != nil {
			fmt.Fprintf(os.Stderr, "reuselint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), a.Name, d.Message)
			exit = 2
		}
	}
	return exit
}

// cfgImporter resolves imports from the export-data files cmd/go listed in
// the vet config.
type cfgImporter struct {
	cfg  *vetConfig
	fset *token.FileSet
	gc   types.ImporterFrom
}

func (ci *cfgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := ci.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if ci.gc == nil {
		ci.gc = importer.ForCompiler(ci.fset, "gc", func(p string) (io.ReadCloser, error) {
			file, ok := ci.cfg.PackageFile[p]
			if !ok || file == "" {
				return nil, fmt.Errorf("reuselint: no export data for %q", p)
			}
			return os.Open(file)
		}).(types.ImporterFrom)
	}
	return ci.gc.ImportFrom(path, ci.cfg.Dir, 0)
}

// Command dbgcheck is the tier-1 time-travel gate (make dbg-check). It
// proves the flight-recorder → debugger pipeline end to end, in process:
//
//  1. Record: a chaos-seeded reuse workload runs to completion with the
//     recorder attached, persisting checkpoints and event segments to a
//     scratch directory.
//  2. Seek: the recording is loaded back from disk and a spread of cycles
//     is seeked; every landed state must re-serialize byte-identical to a
//     fresh uninterrupted run of the same configuration (the recorder and
//     the debugger may not perturb the machine).
//  3. Drive: the scripted debugger commands (info, dump, diff, watch, why,
//     events, export) must all succeed and produce the landmarks a human
//     would rely on.
//  4. Export: the written Perfetto window must pass the telemetry trace
//     validator and carry a trace_window record whose bounds and zero
//     cycle offset make Perfetto timestamps seekable back into the
//     debugger.
//
// Usage:
//
//	dbgcheck
//
// Exit status 0 on success, 1 on any failure.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"reuseiq/internal/asm"
	"reuseiq/internal/chaos"
	"reuseiq/internal/ffwd"
	"reuseiq/internal/flightrec"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/prog"
	"reuseiq/internal/snapshot"
	"reuseiq/internal/telemetry"
)

// gateSource is a reuse-heavy loop long enough to cross many checkpoint
// intervals; the chaos seed below makes it suffer mispredicts and revokes so
// the causal commands have incidents to explain.
const gateSource = `
	li   $r2, 0
	li   $r3, 30000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
`

const chaosSeed = 42

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dbgcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	p, err := asm.Assemble(gateSource)
	if err != nil {
		return err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Reuse.Enabled = true
	cfg.Chaos = chaos.DefaultConfig(chaosSeed)

	dir, err := os.MkdirTemp("", "dbgcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. Record.
	m := pipeline.New(cfg, p)
	ffwd.Attach(m)
	rec, err := flightrec.Attach(m, flightrec.Config{
		Interval: 4096,
		Depth:    16,
		Dir:      dir,
		Manifest: flightrec.Manifest{AsmSource: gateSource, ChaosSeed: chaosSeed},
	})
	if err != nil {
		return err
	}
	if err := m.RunBreakable(64, rec.Break); err != nil {
		return fmt.Errorf("recorded run: %w", err)
	}
	if err := rec.Finish(); err != nil {
		return fmt.Errorf("finish recording: %w", err)
	}
	end := m.Cycle()
	m.Release()
	fmt.Printf("dbgcheck: recorded %d cycles to %d checkpoints + %d events\n",
		end, rec.Status().Checkpoints, rec.Status().EventsRetained)

	// 2. Load from disk and seek-verify against an uninterrupted run.
	a, err := flightrec.Load(dir)
	if err != nil {
		return fmt.Errorf("load recording: %w", err)
	}
	if a.End != end {
		return fmt.Errorf("loaded recording ends at cycle %d, live run ended at %d", a.End, end)
	}
	d, err := flightrec.NewDebugger(a, os.Stdout)
	if err != nil {
		return err
	}
	defer d.Close()

	from, to := d.S.Bounds()
	targets := []uint64{from, from + 1, (from + to) / 2, to - 4097, to}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	refs, err := referenceImages(cfg, p, targets)
	if err != nil {
		return err
	}
	for _, n := range targets {
		if err := d.S.Seek(n); err != nil {
			return fmt.Errorf("seek %d: %w", n, err)
		}
		img, err := d.S.Image()
		if err != nil {
			return err
		}
		if !bytes.Equal(img, refs[n]) {
			return fmt.Errorf("seek %d: snapshot image differs from the uninterrupted run", n)
		}
	}
	fmt.Printf("dbgcheck: %d seeks byte-identical to the uninterrupted run (%d restores, %d cycles replayed)\n",
		len(targets), d.S.Restores, d.S.Replayed)

	// 3. Drive the scripted commands; each must succeed and say something.
	trace := filepath.Join(dir, "window.json")
	mid := (from + to) / 2
	script := []struct {
		cmd  string
		want string // substring the output must contain ("" = any)
	}{
		{"info", "seekable"},
		{fmt.Sprintf("seek %d", mid), fmt.Sprintf("at cycle %d", mid)},
		{"dump riq", "[riq]"},
		{"dump all", "[counters]"},
		{fmt.Sprintf("diff %d %d", from, mid), "[counters]"},
		{"watch riq", "RIQ"},
		{"watch commits >= 1000", "commits"},
		{fmt.Sprintf("why %d", mid), "RIQ in"},
		{fmt.Sprintf("events %d %d", mid, mid+2000), "events in"},
		{fmt.Sprintf("export %s %d %d", trace, from, mid), "wrote"},
	}
	for _, s := range script {
		var out strings.Builder
		d.Out = &out
		if err := d.Exec(s.cmd); err != nil {
			return fmt.Errorf("%s: %w", s.cmd, err)
		}
		if out.Len() == 0 {
			return fmt.Errorf("%s: no output", s.cmd)
		}
		if s.want != "" && !strings.Contains(out.String(), s.want) {
			return fmt.Errorf("%s: output lacks %q:\n%s", s.cmd, s.want, out.String())
		}
	}
	fmt.Printf("dbgcheck: %d scripted commands ok (seek/dump/diff/watch/why/events/export)\n", len(script))

	// 4. The exported window must pass the trace validator and pin its
	// bounds for Perfetto-timestamp round trips.
	data, err := os.ReadFile(trace)
	if err != nil {
		return err
	}
	if err := telemetry.ValidateTrace(bytes.NewReader(data)); err != nil {
		return fmt.Errorf("exported window: %w", err)
	}
	if err := telemetry.ValidateTraceWindow(bytes.NewReader(data)); err != nil {
		return fmt.Errorf("exported window: %w", err)
	}
	fmt.Println("dbgcheck: exported Perfetto window validates (monotone, balanced, seekable bounds)")
	return nil
}

// referenceImages captures snapshot images at each (ascending) target cycle
// from one fresh cycle-accurate run — the oracle the debugger's seeks must
// match byte for byte.
func referenceImages(cfg pipeline.Config, p *prog.Program, targets []uint64) (map[uint64][]byte, error) {
	out := make(map[uint64][]byte, len(targets))
	m := pipeline.New(cfg, p)
	defer m.Release()
	for _, n := range targets {
		if _, ok := out[n]; ok {
			continue
		}
		if m.Cycle() < n {
			err := m.RunBreakable(1, func() bool { return m.Cycle() >= n })
			if err != nil && err != pipeline.ErrStopped {
				return nil, fmt.Errorf("reference run to cycle %d: %w", n, err)
			}
		}
		if m.Cycle() != n {
			return nil, fmt.Errorf("reference run stopped at cycle %d, want %d", m.Cycle(), n)
		}
		var buf bytes.Buffer
		if err := snapshot.Save(&buf, m); err != nil {
			return nil, err
		}
		out[n] = buf.Bytes()
	}
	return out, nil
}

// Command obscheck validates a live observability endpoint the way promlint
// and an SSE client would: metric names and types must be legal exposition
// format, counters must be monotone across two scrapes, /events must stream
// well-formed SSE frames carrying valid JSON, and /status must decode.
//
// Two modes:
//
//	obscheck -url http://127.0.0.1:8080          # check a running server
//	obscheck -- go run ./cmd/reusesim -kernel aps -listen 127.0.0.1:0 -linger 30s
//
// In spawn mode everything after "--" is run as a child process; obscheck
// scans its stderr for the "obs: listening on http://..." line, runs the
// checks against that address, then kills the child's process group.
//
// Exit codes: 0 all checks pass, 1 a check failed, 2 usage / spawn error.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"syscall"
	"time"

	"reuseiq/internal/obs"
)

var listenRE = regexp.MustCompile(`obs: listening on (http://\S+)`)

func main() {
	url := flag.String("url", "", "check a server already listening at this base URL")
	gap := flag.Duration("gap", 150*time.Millisecond, "pause between the two monotonicity scrapes")
	minEvents := flag.Int("min-events", 1, "minimum well-formed SSE frames /events must deliver")
	replay := flag.Int("replay", 64, "replay backlog requested from /events")
	timeout := flag.Duration("timeout", 30*time.Second, "overall deadline for the checks (and server readiness)")
	flag.Parse()

	if (*url == "") == (flag.NArg() == 0) {
		fmt.Fprintln(os.Stderr, "obscheck: need exactly one of -url or a command after --")
		flag.Usage()
		os.Exit(2)
	}

	base := *url
	var stopChild func()
	if base == "" {
		var err error
		base, stopChild, err = spawn(flag.Args(), *timeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(2)
		}
		defer stopChild()
	}

	if err := runChecks(base, *gap, *minEvents, *replay, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck: FAIL:", err)
		if stopChild != nil {
			stopChild()
		}
		os.Exit(1)
	}
	fmt.Printf("obscheck: PASS %s (/healthz /readyz /metrics x2 /events /status)\n", base)
}

// spawn starts argv as its own process group, scans its stderr for the obs
// listen line, and returns the base URL plus a kill-the-group cleanup.
func spawn(argv []string, timeout time.Duration) (string, func(), error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdout = io.Discard
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("spawn %v: %w", argv, err)
	}
	stop := func() {
		// Negative pid = the whole process group ("go run" wraps the binary).
		syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		cmd.Wait()
	}

	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "  [child]", line)
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case urlCh <- m[1]:
				default:
				}
			}
		}
	}()

	select {
	case u := <-urlCh:
		return u, stop, nil
	case <-time.After(timeout):
		stop()
		return "", nil, fmt.Errorf("child never printed an obs listen line within %s", timeout)
	}
}

// runChecks runs the full validation suite against base (no trailing slash).
func runChecks(base string, gap time.Duration, minEvents, replay int, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	get := func(path string) (int, []byte, error) {
		req, err := http.NewRequestWithContext(ctx, "GET", base+path, nil)
		if err != nil {
			return 0, nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}

	// Readiness: poll until the first sample has been published.
	for {
		code, _, err := get("/readyz")
		if err == nil && code == http.StatusOK {
			break
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("/readyz still %d", code)
			}
			return fmt.Errorf("server never became ready: %w", err)
		case <-time.After(50 * time.Millisecond):
		}
	}
	if code, _, err := get("/healthz"); err != nil || code != http.StatusOK {
		return fmt.Errorf("/healthz = %d, %v", code, err)
	}

	// Two lint-clean scrapes; counters must not move backwards between them.
	scrape := func() (map[string]obs.ExpoMetric, error) {
		code, body, err := get("/metrics")
		if err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("/metrics = %d, %v", code, err)
		}
		return obs.LintExposition(body)
	}
	first, err := scrape()
	if err != nil {
		return fmt.Errorf("first scrape: %w", err)
	}
	time.Sleep(gap)
	second, err := scrape()
	if err != nil {
		return fmt.Errorf("second scrape: %w", err)
	}
	if err := obs.CheckMonotone(first, second); err != nil {
		return fmt.Errorf("counters not monotone: %w", err)
	}

	// SSE: the replay backlog must deliver at least minEvents valid frames
	// even when the run finished before we connected.
	req, err := http.NewRequestWithContext(ctx, "GET",
		fmt.Sprintf("%s/events?replay=%d", base, replay), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("/events: %w", err)
	}
	frames, ferr := obs.ReadSSE(resp.Body, minEvents)
	resp.Body.Close()
	if len(frames) < minEvents {
		return fmt.Errorf("/events delivered %d well-formed frames, want >= %d (%v)",
			len(frames), minEvents, ferr)
	}

	// /status must be a JSON object mirroring the sample cycle.
	code, body, err := get("/status")
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("/status = %d, %v", code, err)
	}
	var status map[string]json.RawMessage
	if err := json.Unmarshal(body, &status); err != nil {
		return fmt.Errorf("/status is not a JSON object: %w\n%s", err, body)
	}
	for _, k := range []string{"sample_cycle", "subscribers", "events_published"} {
		if _, ok := status[k]; !ok {
			return fmt.Errorf("/status missing %q: %s", k, body)
		}
	}
	return nil
}

package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"reuseiq/internal/obs"
	"reuseiq/internal/telemetry"
)

func TestRunChecksAgainstObsServer(t *testing.T) {
	srv := obs.NewServer()
	r := &telemetry.Registry{}
	var cycles uint64 = 100
	r.Counter("sim.cycles", func() uint64 { return cycles })
	srv.Publish(obs.Sample{Cycle: cycles, Metrics: r.TypedSnapshot(), Status: map[string]any{"state": "normal"}})
	srv.PublishEvent("progress", []byte(`{"done":1,"total":2}`))
	srv.PublishEvent("progress", []byte(`{"done":2,"total":2}`))

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Advance the counter between the two scrapes, like a live run would.
	go func() {
		time.Sleep(20 * time.Millisecond)
		cycles = 200
		srv.Publish(obs.Sample{Cycle: cycles, Metrics: r.TypedSnapshot(), Status: map[string]any{"state": "normal"}})
	}()

	if err := runChecks(ts.URL, 50*time.Millisecond, 2, 16, 10*time.Second); err != nil {
		t.Fatalf("runChecks on a healthy server: %v", err)
	}
}

func TestRunChecksRejectsNonMonotoneCounter(t *testing.T) {
	// A hand-rolled endpoint whose counter goes backwards between scrapes.
	var scrapes int
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		scrapes++
		v := 100 - scrapes*10
		fmt.Fprintf(w, "# TYPE reuseiq_bad_total counter\nreuseiq_bad_total %d\n", v)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	err := runChecks(ts.URL, time.Millisecond, 1, 16, 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "monotone") {
		t.Fatalf("want a monotonicity failure, got %v", err)
	}
}

func TestRunChecksRequiresEvents(t *testing.T) {
	// Healthy metrics but an /events stream that closes without any frames.
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "# TYPE reuseiq_ok_total counter\nreuseiq_ok_total 1\n")
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	err := runChecks(ts.URL, time.Millisecond, 1, 16, 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "/events") {
		t.Fatalf("want an /events failure, got %v", err)
	}
}

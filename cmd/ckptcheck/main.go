// Command ckptcheck is the tier-1 checkpoint/restore gate (make ckpt-check).
// It proves the two load-bearing claims of the snapshot subsystem end to end:
//
//  1. In-process lockstep smoke: a kernel run that is snapshotted mid-flight,
//     restored, and continued must finish in exactly the state of a run that
//     was never stopped — compared by re-serializing both final machines and
//     requiring byte-identical images. Checked with and without chaos
//     injection (the PRNG stream position must survive the round trip).
//
//  2. Crash drill: the reusebench command given after "--" is run three ways:
//     straight (reference stdout); with -journal attached and SIGKILLed as
//     soon as the journal shows progress; then with -journal -resume to
//     completion. The resumed stdout, minus the trailing wall-clock line,
//     must be byte-identical to the reference, and the journal must hold
//     every cell exactly once.
//
// Usage:
//
//	ckptcheck -- go run ./cmd/reusebench -figure 5 -sizes 32 -benchjson= -progress=false
//
// Exit status 0 on success, 1 on any mismatch or harness failure, 2 on usage
// errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"reuseiq/internal/chaos"
	"reuseiq/internal/compiler"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/snapshot"
	"reuseiq/internal/workloads"
)

func main() {
	timeout := flag.Duration("timeout", 5*time.Minute, "overall budget for the subprocess drill")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ckptcheck [-timeout d] -- <reusebench command...>")
		os.Exit(2)
	}
	if err := lockstepSmoke(); err != nil {
		fmt.Fprintln(os.Stderr, "ckptcheck: lockstep smoke:", err)
		os.Exit(1)
	}
	fmt.Println("ckptcheck: save/restore lockstep smoke ok (plain + chaos)")
	if err := crashDrill(flag.Args(), *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "ckptcheck: crash drill:", err)
		os.Exit(1)
	}
	fmt.Println("ckptcheck: kill -9 / -resume drill ok (byte-identical report)")
}

// lockstepSmoke checks save → restore → continue against an uninterrupted
// run of the same configuration, comparing the final machines by their
// serialized images.
func lockstepSmoke() error {
	k, ok := workloads.ByName("aps")
	if !ok {
		return fmt.Errorf("kernel aps missing")
	}
	p, _, err := compiler.Compile(k.Prog)
	if err != nil {
		return err
	}
	for _, withChaos := range []bool{false, true} {
		cfg := pipeline.DefaultConfig().WithIQSize(32)
		cfg.Reuse.Enabled = true
		if withChaos {
			cfg.Chaos = chaos.DefaultConfig(7)
		}

		straight := pipeline.New(cfg, p)
		if err := straight.Run(); err != nil {
			return err
		}
		var want bytes.Buffer
		if err := snapshot.Save(&want, straight); err != nil {
			return err
		}

		m := pipeline.New(cfg, p)
		stopAt := straight.C.Cycles / 2
		err := m.RunBreakable(stopAt, func() bool { return true })
		if err != pipeline.ErrStopped {
			return fmt.Errorf("mid-run stop (chaos=%v): %v", withChaos, err)
		}
		var img bytes.Buffer
		if err := snapshot.Save(&img, m); err != nil {
			return err
		}
		restored, err := snapshot.Restore(bytes.NewReader(img.Bytes()), cfg, p)
		if err != nil {
			return fmt.Errorf("restore at cycle %d (chaos=%v): %w", stopAt, withChaos, err)
		}
		if err := restored.Run(); err != nil {
			return fmt.Errorf("continue after restore (chaos=%v): %w", withChaos, err)
		}
		var got bytes.Buffer
		if err := snapshot.Save(&got, restored); err != nil {
			return err
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			return fmt.Errorf("chaos=%v: restored run's final state differs from the uninterrupted run (%d vs %d bytes)",
				withChaos, got.Len(), want.Len())
		}
	}
	return nil
}

// runOnce runs argv to completion and returns its stdout.
func runOnce(argv []string, extra ...string) ([]byte, []byte, error) {
	cmd := exec.Command(argv[0], append(argv[1:], extra...)...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	return out.Bytes(), errb.Bytes(), err
}

// stripWallClock drops the trailing "(completed in ...)" line, the one
// legitimately non-deterministic part of a reusebench report.
func stripWallClock(out []byte) []byte {
	lines := bytes.Split(out, []byte("\n"))
	kept := lines[:0]
	for _, l := range lines {
		if bytes.HasPrefix(l, []byte("(completed in ")) {
			continue
		}
		kept = append(kept, l)
	}
	return bytes.Join(kept, []byte("\n"))
}

// journalLines counts complete (newline-terminated) lines in the journal.
func journalLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return bytes.Count(data, []byte("\n"))
}

func crashDrill(argv []string, timeout time.Duration) error {
	dir, err := os.MkdirTemp("", "ckptcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	jpath := filepath.Join(dir, "sweep.jsonl")

	refOut, refErr, err := runOnce(argv)
	if err != nil {
		return fmt.Errorf("reference run: %w\n%s", err, refErr)
	}

	// Journaled run, SIGKILLed (whole process group: "go run" wraps the real
	// binary) once the journal holds at least two records.
	kill := exec.Command(argv[0], append(argv[1:], "-journal", jpath)...)
	kill.Stdout = nil
	kill.Stderr = nil
	kill.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := kill.Start(); err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	killed := false
	for time.Now().Before(deadline) {
		if journalLines(jpath) >= 2 {
			syscall.Kill(-kill.Process.Pid, syscall.SIGKILL)
			killed = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	kill.Wait()
	if !killed {
		return fmt.Errorf("journal %s showed no progress within %s", jpath, timeout)
	}
	if journalLines(jpath) == 0 {
		return fmt.Errorf("killed run left no journal records")
	}

	resOut, resErr, err := runOnce(argv, "-journal", jpath, "-resume")
	if err != nil {
		return fmt.Errorf("resumed run: %w\n%s", err, resErr)
	}
	if !strings.Contains(string(resErr), "recovered") {
		return fmt.Errorf("resumed run did not report recovered cells:\n%s", resErr)
	}

	want, got := stripWallClock(refOut), stripWallClock(resOut)
	if !bytes.Equal(want, got) {
		return fmt.Errorf("resumed report differs from uninterrupted report:\n--- straight ---\n%s\n--- resumed ---\n%s", want, got)
	}

	// Every cell exactly once: no key may repeat across the journal.
	data, err := os.ReadFile(jpath)
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Kernel   string `json:"kernel"`
			IQ       int    `json:"iq"`
			Reuse    bool   `json:"reuse"`
			Dist     bool   `json:"dist"`
			Strategy int    `json:"strategy"`
			NBLT     int    `json:"nblt"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("journal holds a malformed complete line: %v", err)
		}
		key := fmt.Sprintf("%s/%d/%v/%v/%d/%d", rec.Kernel, rec.IQ, rec.Reuse, rec.Dist, rec.Strategy, rec.NBLT)
		if seen[key] {
			return fmt.Errorf("cell %s recorded twice: a resumed sweep double-counted", key)
		}
		seen[key] = true
	}
	return nil
}

// Command reusedbg is the time-travel debugger over a flight-recorder
// directory (reusesim -flightrec <dir>). It restores the nearest retained
// checkpoint below a target cycle and replays forward cycle-accurately —
// seeking to ANY cycle inside the recording's seekable window is O(recorder
// interval) work — then exposes the live machine through dump/diff/watch
// commands, and the recorded event timeline through why/events/export.
//
// Usage:
//
//	reusedbg -dir rec/                        # interactive REPL
//	reusedbg -dir rec/ -e 'seek 50000' -e 'dump riq'
//	reusedbg -dir rec/ -e 'why 62000'
//	reusedbg -dir rec/ -no-verify -e 'info'   # skip replay invariant checks
//
// Every -e command runs in order against one shared session; the first
// failure exits nonzero. With no -e flags a prompt loop reads commands from
// stdin (one per line, # comments allowed), so a here-doc scripts it too.
//
// Exit codes: 0 success, 1 a command or the recording failed, 2 flag error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"reuseiq/internal/flightrec"
)

// multiFlag collects repeated -e occurrences in order.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint(*m) }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func main() {
	os.Exit(mainImpl(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func mainImpl(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reusedbg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "flight-recorder directory (required)")
	noVerify := fs.Bool("no-verify", false, "skip the lockstep invariant checker during replays")
	var cmds multiFlag
	fs.Var(&cmds, "e", "command to execute (repeatable; suppresses the REPL)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" || fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: reusedbg -dir <recording> [-no-verify] [-e <cmd>]...")
		return 2
	}

	a, err := flightrec.Load(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "reusedbg:", err)
		return 1
	}
	d, err := flightrec.NewDebugger(a, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "reusedbg:", err)
		return 1
	}
	defer d.Close()
	d.S.Verify = !*noVerify

	if len(cmds) > 0 {
		for _, c := range cmds {
			if err := d.Exec(c); err != nil {
				fmt.Fprintf(stderr, "reusedbg: %s: %v\n", c, err)
				return 1
			}
		}
		return 0
	}

	from, to := d.S.Bounds()
	fmt.Fprintf(stdout, "recording %s: seekable cycles [%d, %d] — try help\n", *dir, from, to)
	sc := bufio.NewScanner(stdin)
	prompt := func() { fmt.Fprintf(stdout, "(reusedbg @%d) ", d.S.Cycle()) }
	for prompt(); sc.Scan(); prompt() {
		line := sc.Text()
		if line == "quit" || line == "exit" || line == "q" {
			return 0
		}
		if err := d.Exec(line); err != nil {
			fmt.Fprintln(stdout, "error:", err)
		}
	}
	fmt.Fprintln(stdout)
	return 0
}

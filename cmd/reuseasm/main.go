// Command reuseasm assembles a source file and prints a listing: address,
// encoded machine word, and disassembly for every instruction, plus the
// symbol table. Useful for inspecting what the reuse mechanism's loop
// detector will see (backward branches and their static distances).
//
// Usage:
//
//	reuseasm prog.s            # listing to stdout
//	reuseasm -loops prog.s     # also report detectable loops per queue size
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"reuseiq/internal/asm"
	"reuseiq/internal/isa"
	"reuseiq/internal/prog"
)

func main() {
	loops := flag.Bool("loops", false, "report backward branches and their capturability")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: reuseasm [-loops] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "reuseasm:", err)
		os.Exit(1)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "reuseasm:", err)
		os.Exit(1)
	}

	// Reverse symbol map for nicer listings.
	labels := map[uint32][]string{}
	for name, addr := range p.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	for _, names := range labels {
		sort.Strings(names)
	}

	for i, in := range p.Text {
		pc := prog.Addr(i)
		for _, l := range labels[pc] {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("  0x%08x  %08x  %s\n", pc, p.Words[i], in.Disasm(pc))
	}

	var dataSyms []string
	for name, addr := range p.Symbols {
		if addr >= prog.DataBase && addr < prog.StackTop {
			dataSyms = append(dataSyms, fmt.Sprintf("  %-16s 0x%08x", name, addr))
		}
	}
	if len(dataSyms) > 0 {
		sort.Strings(dataSyms)
		fmt.Println("\ndata symbols:")
		for _, s := range dataSyms {
			fmt.Println(s)
		}
	}

	if *loops {
		fmt.Println("\nbackward control transfers (loop-detector candidates):")
		found := false
		for i, in := range p.Text {
			pc := prog.Addr(i)
			tgt, ok := in.StaticTarget(pc)
			if !ok || tgt > pc || in.Op.Info().Class == isa.ClassCall {
				continue
			}
			found = true
			size := int(pc-tgt)/4 + 1
			fmt.Printf("  0x%08x  %-24s size %3d:", pc, in.Disasm(pc), size)
			for _, iq := range []int{32, 64, 128, 256} {
				if size <= iq {
					fmt.Printf("  IQ%d:yes", iq)
				} else {
					fmt.Printf("  IQ%d:no ", iq)
				}
			}
			fmt.Println()
		}
		if !found {
			fmt.Println("  (none)")
		}
	}
}

// Command benchdiff compares two `go test -bench` output files and fails on
// performance regressions. It is the repo's stand-in for benchstat, written
// against the same text format so `make bench` needs no external tooling:
//
//	benchdiff old.txt new.txt
//	benchdiff -threshold 10 -watch BenchmarkSimulatorSpeed old.txt new.txt
//	benchdiff -json BENCH_simcore.json new_simcore.json
//
// Every benchmark present in both files is reported; benchmarks present in
// only one file are listed separately so a renamed or deleted benchmark
// cannot silently drop out of the gate. The exit status is 1 when a watched
// benchmark's ns/op or allocs/op regresses by more than the threshold, and 2
// on usage or input errors (including malformed benchmark lines). With
// -count > 1 runs per benchmark, the best (minimum) value of each metric is
// used, which is robust to scheduler noise.
//
// With -json the inputs are the schema-versioned runstore.BenchRecord files
// reusebench writes (BENCH_simcore.json, BENCH_ffwd.json). Both files are
// validated — a malformed or future-version record exits 2, never a silent
// mis-diff — then diffed metric by metric; watched metrics (-watch, default
// ns_per_cycle and allocs_per_cycle) that grow beyond the threshold fail the
// run.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"reuseiq/internal/runstore"
)

// metrics maps unit ("ns/op", "allocs/op", ...) to the best observed value.
type metrics map[string]float64

func parseFile(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f, path)
}

func parse(r io.Reader, path string) (map[string]metrics, error) {
	out := map[string]metrics{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("%s:%d: malformed benchmark line %q", path, line, sc.Text())
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so baselines survive a core-count change.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.ParseUint(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("%s:%d: bad iteration count %q", path, line, fields[1])
		}
		m := out[name]
		if m == nil {
			m = metrics{}
			out[name] = m
		}
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad value %q for unit %q", path, line, fields[i], fields[i+1])
			}
			unit := fields[i+1]
			if old, ok := m[unit]; !ok || v < old {
				m[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// only returns the sorted names present in a but not in b.
func only(a, b map[string]metrics) []string {
	var names []string
	for name := range a {
		if _, ok := b[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func main() {
	os.Exit(mainImpl(os.Args[1:], os.Stdout, os.Stderr))
}

func mainImpl(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10, "maximum allowed regression in percent")
	watch := fs.String("watch", "", "comma-separated benchmarks (or, with -json, metrics) whose regression fails the run")
	jsonMode := fs.Bool("json", false, "inputs are runstore.BenchRecord files (BENCH_simcore.json / BENCH_ffwd.json), validated then diffed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold pct] [-watch names] [-json] old new")
		return 2
	}
	if *jsonMode {
		if *watch == "" {
			*watch = "ns_per_cycle,allocs_per_cycle"
		}
		return jsonImpl(fs.Arg(0), fs.Arg(1), *threshold, *watch, stdout, stderr)
	}
	if *watch == "" {
		*watch = "BenchmarkSimulatorSpeed"
	}
	old, err := parseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v (run `make bench-baseline` to create the baseline)\n", err)
		return 2
	}
	cur, err := parseFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	watched := map[string]bool{}
	for _, w := range strings.Split(*watch, ",") {
		if w = strings.TrimSpace(w); w != "" {
			watched[w] = true
		}
	}

	var names []string
	for name := range cur {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no common benchmarks between the two files")
		return 2
	}

	failed := false
	fmt.Fprintf(stdout, "%-34s %-12s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, name := range names {
		for _, unit := range []string{"ns/op", "B/op", "allocs/op"} {
			ov, ook := old[name][unit]
			nv, nok := cur[name][unit]
			if !ook || !nok {
				continue
			}
			delta := 0.0
			if ov != 0 {
				delta = (nv - ov) / ov * 100
			} else if nv != 0 {
				delta = 100 // from zero: any growth is a full regression
			}
			mark := ""
			if watched[name] && unit != "B/op" && delta > *threshold {
				mark = "  REGRESSION"
				failed = true
			}
			fmt.Fprintf(stdout, "%-34s %-12s %14.1f %14.1f %+8.1f%%%s\n", name, unit, ov, nv, delta, mark)
		}
	}
	for _, name := range only(old, cur) {
		fmt.Fprintf(stdout, "%-34s only in %s\n", name, fs.Arg(0))
		if watched[name] {
			// A watched benchmark that vanished is a gate bypass, not a pass.
			fmt.Fprintf(stderr, "benchdiff: watched benchmark %s missing from %s\n", name, fs.Arg(1))
			failed = true
		}
	}
	for _, name := range only(cur, old) {
		fmt.Fprintf(stdout, "%-34s only in %s\n", name, fs.Arg(1))
	}
	if failed {
		fmt.Fprintf(stderr, "benchdiff: watched benchmark regressed more than %.0f%%\n", *threshold)
		return 1
	}
	fmt.Fprintf(stdout, "ok: no watched benchmark regressed more than %.0f%%\n", *threshold)
	return 0
}

// jsonImpl diffs two validated BenchRecord files. Watched metrics are
// lower-is-better (times, allocs): growth beyond the threshold fails.
func jsonImpl(oldPath, newPath string, threshold float64, watch string, stdout, stderr io.Writer) int {
	old, err := runstore.ReadBenchRecord(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	cur, err := runstore.ReadBenchRecord(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	d, err := runstore.DiffBench(old, cur)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	watched := map[string]bool{}
	for _, w := range strings.Split(watch, ",") {
		if w = strings.TrimSpace(w); w != "" {
			watched[w] = true
		}
	}
	failed := false
	fmt.Fprintf(stdout, "%-34s %18s %18s %9s\n", "metric", "old", "new", "delta")
	for _, row := range d.Rows {
		switch {
		case !row.AOK:
			fmt.Fprintf(stdout, "%-34s only in %s\n", row.Name, newPath)
			continue
		case !row.BOK:
			fmt.Fprintf(stdout, "%-34s only in %s\n", row.Name, oldPath)
			if watched[row.Name] {
				fmt.Fprintf(stderr, "benchdiff: watched metric %s missing from %s\n", row.Name, newPath)
				failed = true
			}
			continue
		}
		delta := 0.0
		if row.A != 0 {
			delta = (row.B - row.A) / row.A * 100
		} else if row.B != 0 {
			delta = 100
		}
		mark := ""
		if watched[row.Name] && delta > threshold {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Fprintf(stdout, "%-34s %18.3f %18.3f %+8.1f%%%s\n", row.Name, row.A, row.B, delta, mark)
	}
	if failed {
		fmt.Fprintf(stderr, "benchdiff: watched metric regressed more than %.0f%%\n", threshold)
		return 1
	}
	fmt.Fprintf(stdout, "ok: no watched metric regressed more than %.0f%%\n", threshold)
	return 0
}

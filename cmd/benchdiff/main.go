// Command benchdiff compares two `go test -bench` output files and fails on
// performance regressions. It is the repo's stand-in for benchstat, written
// against the same text format so `make bench` needs no external tooling:
//
//	benchdiff old.txt new.txt
//	benchdiff -threshold 10 -watch BenchmarkSimulatorSpeed old.txt new.txt
//
// Every benchmark present in both files is reported. The exit status is 1
// when a watched benchmark's ns/op or allocs/op regresses by more than the
// threshold. With -count > 1 runs per benchmark, the best (minimum) value of
// each metric is used, which is robust to scheduler noise.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics maps unit ("ns/op", "allocs/op", ...) to the best observed value.
type metrics map[string]float64

func parseFile(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]metrics{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so baselines survive a core-count change.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		if m == nil {
			m = metrics{}
			out[name] = m
		}
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if old, ok := m[unit]; !ok || v < old {
				m[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

func main() {
	threshold := flag.Float64("threshold", 10, "maximum allowed regression in percent")
	watch := flag.String("watch", "BenchmarkSimulatorSpeed", "comma-separated benchmarks whose regression fails the run")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-watch names] old.txt new.txt")
		os.Exit(2)
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v (run `make bench-baseline` to create the baseline)\n", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	watched := map[string]bool{}
	for _, w := range strings.Split(*watch, ",") {
		if w = strings.TrimSpace(w); w != "" {
			watched[w] = true
		}
	}

	var names []string
	for name := range cur {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no common benchmarks between the two files")
		os.Exit(2)
	}

	failed := false
	fmt.Printf("%-34s %-12s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, name := range names {
		for _, unit := range []string{"ns/op", "B/op", "allocs/op"} {
			ov, ook := old[name][unit]
			nv, nok := cur[name][unit]
			if !ook || !nok {
				continue
			}
			delta := 0.0
			if ov != 0 {
				delta = (nv - ov) / ov * 100
			} else if nv != 0 {
				delta = 100 // from zero: any growth is a full regression
			}
			mark := ""
			if watched[name] && unit != "B/op" && delta > *threshold {
				mark = "  REGRESSION"
				failed = true
			}
			fmt.Printf("%-34s %-12s %14.1f %14.1f %+8.1f%%%s\n", name, unit, ov, nv, delta, mark)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: watched benchmark regressed more than %.0f%%\n", *threshold)
		os.Exit(1)
	}
	fmt.Printf("ok: no watched benchmark regressed more than %.0f%%\n", *threshold)
}

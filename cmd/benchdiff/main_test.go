package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reuseiq/internal/runstore"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = mainImpl(args, &out, &errb)
	return out.String(), errb.String(), code
}

const oldBench = `goos: linux
BenchmarkSimulatorSpeed-8   100   1000000 ns/op   500 B/op   10 allocs/op
BenchmarkOldOnly-8          100    200000 ns/op
PASS
`

const newBench = `goos: linux
BenchmarkSimulatorSpeed-8   100   1050000 ns/op   500 B/op   10 allocs/op
BenchmarkNewOnly-8          100    300000 ns/op
PASS
`

func TestReportsBenchmarksInOnlyOneInput(t *testing.T) {
	oldPath := writeBench(t, "old.txt", oldBench)
	newPath := writeBench(t, "new.txt", newBench)
	out, _, code := runDiff(t, oldPath, newPath)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (5%% < default threshold)", code)
	}
	if !strings.Contains(out, "BenchmarkOldOnly") || !strings.Contains(out, "only in "+oldPath) {
		t.Errorf("old-only benchmark not reported:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkNewOnly") || !strings.Contains(out, "only in "+newPath) {
		t.Errorf("new-only benchmark not reported:\n%s", out)
	}
}

func TestWatchedBenchmarkMissingFails(t *testing.T) {
	oldPath := writeBench(t, "old.txt", oldBench)
	newPath := writeBench(t, "new.txt", `BenchmarkSomethingElse-8 100 5 ns/op
BenchmarkOldOnly-8 100 200000 ns/op
`)
	_, stderr, code := runDiff(t, "-watch", "BenchmarkOldOnly,BenchmarkSimulatorSpeed", oldPath, newPath)
	if code != 1 {
		t.Fatalf("exit %d, want 1 when a watched benchmark vanished", code)
	}
	if !strings.Contains(stderr, "BenchmarkSimulatorSpeed missing") {
		t.Errorf("stderr does not name the vanished watched benchmark: %s", stderr)
	}
}

func TestRegressionFails(t *testing.T) {
	oldPath := writeBench(t, "old.txt", "BenchmarkSimulatorSpeed-8 100 1000000 ns/op\n")
	newPath := writeBench(t, "new.txt", "BenchmarkSimulatorSpeed-8 100 1500000 ns/op\n")
	out, _, code := runDiff(t, oldPath, newPath)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for a 50%% regression", code)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("report missing REGRESSION mark:\n%s", out)
	}
}

func TestMalformedValueExitsNonzero(t *testing.T) {
	oldPath := writeBench(t, "old.txt", oldBench)
	bad := writeBench(t, "bad.txt", "BenchmarkSimulatorSpeed-8 100 garbage ns/op\n")
	_, stderr, code := runDiff(t, oldPath, bad)
	if code != 2 {
		t.Fatalf("exit %d, want 2 for a malformed value", code)
	}
	if !strings.Contains(stderr, "bad value") {
		t.Errorf("stderr: %s", stderr)
	}
}

func TestMalformedIterationCountExitsNonzero(t *testing.T) {
	oldPath := writeBench(t, "old.txt", oldBench)
	bad := writeBench(t, "bad.txt", "BenchmarkSimulatorSpeed-8 nan 5 ns/op\n")
	if _, stderr, code := runDiff(t, oldPath, bad); code != 2 {
		t.Fatalf("exit %d, want 2 for a bad iteration count", code)
	} else if !strings.Contains(stderr, "bad iteration count") {
		t.Errorf("stderr: %s", stderr)
	}
}

func TestTruncatedLineExitsNonzero(t *testing.T) {
	oldPath := writeBench(t, "old.txt", oldBench)
	bad := writeBench(t, "bad.txt", "BenchmarkSimulatorSpeed-8 100\n")
	if _, _, code := runDiff(t, oldPath, bad); code != 2 {
		t.Fatalf("exit %d, want 2 for a truncated benchmark line", code)
	}
}

func TestEmptyInputExitsNonzero(t *testing.T) {
	oldPath := writeBench(t, "old.txt", oldBench)
	empty := writeBench(t, "empty.txt", "goos: linux\nPASS\n")
	if _, _, code := runDiff(t, oldPath, empty); code != 2 {
		t.Fatal("file without benchmark lines accepted")
	}
	if _, _, code := runDiff(t, oldPath); code != 2 {
		t.Fatal("missing argument accepted")
	}
	if _, _, code := runDiff(t, oldPath, filepath.Join(t.TempDir(), "nope.txt")); code != 2 {
		t.Fatal("nonexistent file accepted")
	}
}

func TestMinOfRepeatedRuns(t *testing.T) {
	oldPath := writeBench(t, "old.txt", `BenchmarkSimulatorSpeed-8 100 1000000 ns/op
BenchmarkSimulatorSpeed-8 100 900000 ns/op
BenchmarkSimulatorSpeed-8 100 1100000 ns/op
`)
	newPath := writeBench(t, "new.txt", "BenchmarkSimulatorSpeed-8 100 950000 ns/op\n")
	out, _, code := runDiff(t, oldPath, newPath)
	if code != 0 {
		t.Fatalf("exit %d (950k vs min 900k is +5.6%%, under threshold)", code)
	}
	if !strings.Contains(out, "900000.0") {
		t.Errorf("old column should show the minimum across runs:\n%s", out)
	}
}

// simcoreJSON renders a minimal valid simcore BenchRecord.
func simcoreJSON(nsPerCycle, allocs float64) string {
	return fmt.Sprintf(`{
  "v": 1, "kind": "simcore",
  "throughput": {"simulated_cycles": 1000, "wall_ns": 2000, "wall": "2µs",
    "cycles_per_sec": 5e8, "ns_per_cycle": %g, "allocs_per_cycle": %g},
  "sections": [{"name": "figure5", "wall": "1µs", "wall_ns": 1000}]
}`, nsPerCycle, allocs)
}

func TestJSONModeOKAndRegression(t *testing.T) {
	oldPath := writeBench(t, "old.json", simcoreJSON(2.0, 0.03))
	samePath := writeBench(t, "same.json", simcoreJSON(2.1, 0.03))
	out, _, code := runDiff(t, "-json", oldPath, samePath)
	if code != 0 {
		t.Fatalf("5%% growth under a 10%% threshold: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "ns_per_cycle") || !strings.Contains(out, "ok:") {
		t.Errorf("json diff output:\n%s", out)
	}

	slowPath := writeBench(t, "slow.json", simcoreJSON(3.0, 0.03))
	out, errb, code := runDiff(t, "-json", oldPath, slowPath)
	if code != 1 {
		t.Fatalf("50%% ns_per_cycle growth: exit %d\n%s%s", code, out, errb)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("regression not marked:\n%s", out)
	}
}

// TestJSONModeMalformedExits2 pins the validation gate: a syntactically
// broken file, a future schema version, a wrong kind shape and a kind
// mismatch all exit 2 — never a silent mis-diff.
func TestJSONModeMalformedExits2(t *testing.T) {
	good := writeBench(t, "good.json", simcoreJSON(2.0, 0.03))
	cases := map[string]string{
		"truncated":  `{"v": 1, "kind": "simcore", "throughput": {`,
		"future":     `{"v": 99, "kind": "simcore", "throughput": {"wall_ns": 1}}`,
		"no_payload": `{"v": 1, "kind": "simcore"}`,
		"bad_kind":   `{"v": 1, "kind": "mystery"}`,
		"ffwd_empty": `{"v": 1, "kind": "ffwd", "ffwd": []}`,
	}
	for name, content := range cases {
		bad := writeBench(t, name+".json", content)
		if _, errb, code := runDiff(t, "-json", good, bad); code != 2 {
			t.Errorf("%s: exit %d, want 2 (%s)", name, code, errb)
		}
	}
	// Kind mismatch between two individually valid records.
	ffwd := writeBench(t, "ffwd.json",
		`{"v":1,"kind":"ffwd","ffwd":[{"name":"figure5","off":"1s","on":"1s","off_ns":1,"on_ns":1,"speedup":1}]}`)
	if _, errb, code := runDiff(t, "-json", good, ffwd); code != 2 {
		t.Errorf("kind mismatch: exit %d (%s)", code, errb)
	}
}

// TestCheckedInBenchFilesValidate keeps the repo's own baseline files inside
// the schema the validator enforces.
func TestCheckedInBenchFilesValidate(t *testing.T) {
	for _, name := range []string{"BENCH_simcore.json", "BENCH_ffwd.json"} {
		path := filepath.Join("..", "..", name)
		if _, err := os.Stat(path); err != nil {
			t.Skipf("%s not present", name)
		}
		if _, err := runstore.ReadBenchRecord(path); err != nil {
			t.Errorf("%s does not validate: %v", name, err)
		}
	}
}

package main

import (
	"strings"
	"testing"
)

// Regression tests for the tap call sites the zerocost analyzer flagged:
// every flag combination that reads m.Rec or m.Tel after the run must reach
// its output path with the tap actually attached.

func TestPipetraceFlagRendersRecorder(t *testing.T) {
	stdout, stderr, code := runMain(t, "-kernel", "aps", "-pipetrace", "32")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "recorded") || !strings.Contains(stdout, "committed instructions") {
		t.Errorf("pipetrace summary missing from output:\n%s", stdout)
	}
	if strings.Contains(stderr, "internal error") {
		t.Errorf("recorder tap was not attached: %s", stderr)
	}
}

func TestAttribFlagPrintsEnergyWithTelemetryAttached(t *testing.T) {
	stdout, stderr, code := runMain(t, "-kernel", "aps", "-attrib")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if stdout == "" {
		t.Error("attrib run produced no output")
	}
	if strings.Contains(stderr, "internal error") {
		t.Errorf("telemetry tap was not attached: %s", stderr)
	}
}

func TestSessionsAndAttribCombined(t *testing.T) {
	_, stderr, code := runMain(t, "-kernel", "aps", "-sessions", "-attrib", "-stats")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if strings.Contains(stderr, "internal error") {
		t.Errorf("tap wiring broke under combined flags: %s", stderr)
	}
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reuseiq/internal/telemetry"
)

func runMain(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = mainImpl(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestEventsFlagStreamsJSONL(t *testing.T) {
	out, _, code := runMain(t, "-kernel", "aps", "-events", "-")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, kinds := 0, map[string]int{}
	for sc.Scan() {
		var e struct {
			Cycle uint64 `json:"cycle"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines+1, err, sc.Text())
		}
		if e.Kind == "" {
			t.Fatalf("line %d has no kind: %s", lines+1, sc.Text())
		}
		kinds[e.Kind]++
		lines++
	}
	if lines == 0 {
		t.Fatal("-events - produced no output")
	}
	for _, want := range []string{"buffer", "promote", "reuse-exit"} {
		if kinds[want] == 0 {
			t.Errorf("event stream has no %q events (kinds seen: %v)", want, kinds)
		}
	}
}

func TestEventsFlagToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	stdout, _, code := runMain(t, "-kernel", "aps", "-events", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if strings.Contains(stdout, `"kind"`) {
		t.Error("events leaked to stdout when a file was given")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"promote"`) {
		t.Error("events file missing promote events")
	}
}

func TestTraceFlagWritesValidTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	_, stderr, code := runMain(t, "-kernel", "aps", "-trace", path)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "ui.perfetto.dev") {
		t.Errorf("stderr missing perfetto pointer: %s", stderr)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := telemetry.ValidateTrace(f); err != nil {
		t.Errorf("emitted trace invalid: %v", err)
	}
}

func TestSessionsFlagPrintsAuditTable(t *testing.T) {
	out, _, code := runMain(t, "-kernel", "aps", "-sessions")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "end-reason") || !strings.Contains(out, "reuse-exit") {
		t.Errorf("audit table missing expected columns:\n%s", out)
	}
}

func TestHelpMentionsTelemetryFlags(t *testing.T) {
	_, stderr, code := runMain(t, "-h")
	if code != 2 {
		t.Fatalf("-h exit code %d, want 2", code)
	}
	for _, flagName := range []string{"-events", "-trace", "-sessions", "-attrib"} {
		if !strings.Contains(stderr, flagName) {
			t.Errorf("-help output missing %s", flagName)
		}
	}
}

func TestBadFlagsExitNonzero(t *testing.T) {
	if _, _, code := runMain(t, "-kernel", "nosuch"); code == 0 {
		t.Error("unknown kernel exited 0")
	}
	if _, _, code := runMain(t); code == 0 {
		t.Error("no workload exited 0")
	}
}

// Telemetry must not change simulation results: the default summary is
// byte-identical with and without a trace being recorded.
func TestTelemetryOutputInvariant(t *testing.T) {
	plain, _, code := runMain(t, "-kernel", "aps")
	if code != 0 {
		t.Fatal("plain run failed")
	}
	traced, _, code := runMain(t, "-kernel", "aps", "-trace", filepath.Join(t.TempDir(), "t.json"))
	if code != 0 {
		t.Fatal("traced run failed")
	}
	if plain != traced {
		t.Error("summary output differs between plain and traced runs")
	}
}

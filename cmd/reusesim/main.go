// Command reusesim runs a single workload on the simulated processor and
// prints performance, reuse-mechanism and power statistics.
//
// Usage:
//
//	reusesim -kernel aps                 # one of the Table 2 kernels
//	reusesim -asm prog.s                 # an assembly file
//	reusesim -kernel adi -iq 128         # issue-queue size sweep point
//	reusesim -kernel adi -baseline       # conventional issue queue
//	reusesim -kernel adi -distribute     # apply loop distribution first
//	reusesim -kernel aps -compare        # run baseline + reuse, show savings
//	reusesim -asm prog.s -disasm         # print the loaded program and exit
//	reusesim -kernel aps -pipetrace 40   # pipeline diagram of the first 40 insts
//	reusesim -kernel aps -verify         # cross-check every commit (lockstep)
//	reusesim -kernel aps -chaos 42       # seeded fault injection
//	reusesim -kernel aps -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"reuseiq/internal/asm"
	"reuseiq/internal/chaos"
	"reuseiq/internal/compiler"
	"reuseiq/internal/lockstep"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/prog"
	"reuseiq/internal/trace"
	"reuseiq/internal/workloads"
)

// Set from flags; read by run().
var (
	verifyRuns bool
	chaosSeed  int64 // 0 disables injection
)

func main() {
	kernel := flag.String("kernel", "", "workload kernel name (adi aps btrix eflux tomcat tsf vpenta wss)")
	asmFile := flag.String("asm", "", "assembly source file to run instead of a kernel")
	iq := flag.Int("iq", 64, "issue queue size (ROB = iq, LSQ = iq/2)")
	baseline := flag.Bool("baseline", false, "disable the reuse mechanism")
	distribute := flag.Bool("distribute", false, "apply loop distribution to the kernel")
	compare := flag.Bool("compare", false, "run both configurations and report savings")
	disasm := flag.Bool("disasm", false, "print the program disassembly and exit")
	emitAsm := flag.Bool("S", false, "print the generated assembly for a kernel and exit")
	pipetrace := flag.Int("pipetrace", 0, "record and print a pipeline diagram of the first N instructions")
	statsFlag := flag.Bool("stats", false, "print the full counter set instead of the summary")
	verify := flag.Bool("verify", false, "run under the lockstep oracle and invariant checker")
	chaosFlag := flag.Int64("chaos", 0, "enable seeded fault injection (nonzero seed)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()
	verifyRuns = *verify
	chaosSeed = *chaosFlag

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reusesim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "reusesim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reusesim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // only reachable allocations; the point is what the core retains
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "reusesim:", err)
			}
		}()
	}

	p, src, err := load(*kernel, *asmFile, *distribute)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reusesim:", err)
		os.Exit(1)
	}
	if *emitAsm {
		fmt.Print(src)
		return
	}
	if *disasm {
		fmt.Print(p.Disasm())
		return
	}

	if *compare {
		base := run(p, *iq, false)
		reuse := run(p, *iq, true)
		sv := power.Compare(power.Analyze(base), power.Analyze(reuse))
		fmt.Printf("baseline: %d cycles, IPC %.3f\n", base.C.Cycles, base.IPC())
		fmt.Printf("reuse:    %d cycles, IPC %.3f, gated %.1f%%\n",
			reuse.C.Cycles, reuse.IPC(), 100*reuse.GatedFraction())
		fmt.Printf("power savings: overall %.1f%%  icache %.1f%%  bpred %.1f%%  issueq %.1f%%  (overhead %.2f%% of total)\n",
			100*sv.Overall, 100*sv.Component[power.ICache], 100*sv.Component[power.BPred],
			100*sv.Component[power.IssueQueue], 100*sv.OverheadShare)
		return
	}

	if *pipetrace > 0 {
		cfg := pipeline.DefaultConfig().WithIQSize(*iq)
		cfg.Reuse.Enabled = !*baseline
		if chaosSeed != 0 {
			cfg.Chaos = chaos.DefaultConfig(chaosSeed)
		}
		m := pipeline.New(cfg, p)
		if verifyRuns {
			lockstep.Attach(m, p)
		}
		m.Rec = trace.New(*pipetrace)
		if err := m.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "reusesim:", err)
			os.Exit(1)
		}
		m.Rec.Render(os.Stdout)
		wait, life, n := m.Rec.Stats()
		fmt.Printf("recorded %d committed instructions: avg dispatch-to-issue %.1f cycles, avg lifetime %.1f cycles\n", n, wait, life)
		return
	}

	m := run(p, *iq, !*baseline)
	if *statsFlag {
		fmt.Print(m.StatsSet())
		return
	}
	fmt.Printf("cycles            %12d\n", m.C.Cycles)
	fmt.Printf("commits           %12d\n", m.C.Commits)
	fmt.Printf("IPC               %12.3f\n", m.IPC())
	fmt.Printf("gated cycles      %12d (%.1f%%)\n", m.C.GatedCycles, 100*m.GatedFraction())
	fmt.Printf("mispredicts       %12d\n", m.C.Mispredicts)
	s := m.Ctl.S
	fmt.Printf("loop detections   %12d (NBLT filtered %d)\n", s.Detections, s.NBLTFiltered)
	fmt.Printf("bufferings        %12d (revoked %d: inner %d, exit %d, full %d, recovery %d)\n",
		s.Bufferings, s.Revokes, s.RevokesInner, s.RevokesExit, s.RevokesFull, s.RevokesRecovery)
	fmt.Printf("promotions        %12d (iterations buffered %d)\n", s.Promotions, s.IterationsBuffered)
	fmt.Printf("reuse renames     %12d (exits %d)\n", s.ReuseRenames, s.ReuseExits)
	fmt.Printf("icache accesses   %12d (miss rate %.2f%%)\n", m.Hier.L1I.Accesses, 100*m.Hier.L1I.MissRate())
	fmt.Printf("dcache accesses   %12d (miss rate %.2f%%)\n", m.Hier.L1D.Accesses, 100*m.Hier.L1D.MissRate())
	fmt.Println()
	fmt.Print(power.Analyze(m))
}

func load(kernel, asmFile string, distribute bool) (*prog.Program, string, error) {
	switch {
	case kernel != "" && asmFile != "":
		return nil, "", fmt.Errorf("choose either -kernel or -asm")
	case kernel != "":
		k, ok := workloads.ByName(kernel)
		if !ok {
			return nil, "", fmt.Errorf("unknown kernel %q", kernel)
		}
		ir := k.Prog
		if distribute {
			ir = compiler.Distribute(ir)
		}
		return compiler.Compile(ir)
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, "", err
		}
		p, err := asm.Assemble(string(src))
		return p, string(src), err
	}
	return nil, "", fmt.Errorf("need -kernel or -asm (try -kernel aps)")
}

func run(p *prog.Program, iq int, reuse bool) *pipeline.Machine {
	cfg := pipeline.DefaultConfig().WithIQSize(iq)
	cfg.Reuse.Enabled = reuse
	if chaosSeed != 0 {
		cfg.Chaos = chaos.DefaultConfig(chaosSeed)
	}
	m := pipeline.New(cfg, p)
	var o *lockstep.Oracle
	if verifyRuns {
		o = lockstep.Attach(m, p)
	}
	if err := m.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "reusesim:", err)
		os.Exit(1)
	}
	if o != nil {
		fmt.Printf("verified: %d commits cross-checked against the golden model\n", o.Commits)
	}
	if m.Chaos != nil {
		c := m.Chaos.C
		fmt.Printf("chaos: %d forced revokes, %d flipped predictions, %d fetch stalls, %d jittered issues\n",
			c.ForcedRevokes, c.FlippedPredictions, c.FetchStalls, c.JitteredIssues)
	}
	return m
}

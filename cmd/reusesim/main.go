// Command reusesim runs a single workload on the simulated processor and
// prints performance, reuse-mechanism and power statistics.
//
// Usage:
//
//	reusesim -kernel aps                 # one of the Table 2 kernels
//	reusesim -asm prog.s                 # an assembly file
//	reusesim -kernel adi -iq 128         # issue-queue size sweep point
//	reusesim -kernel adi -baseline       # conventional issue queue
//	reusesim -kernel adi -distribute     # apply loop distribution first
//	reusesim -kernel aps -compare        # run baseline + reuse, show savings
//	reusesim -asm prog.s -disasm         # print the loaded program and exit
//	reusesim -kernel aps -pipetrace 40   # pipeline diagram of the first 40 insts
//	reusesim -kernel aps -verify         # cross-check every commit (lockstep)
//	reusesim -kernel adi -ffwd           # analytic fast-forward (same results)
//	reusesim -kernel aps -chaos 42       # seeded fault injection
//	reusesim -kernel adi -trace adi.json # Chrome/Perfetto trace (ui.perfetto.dev)
//	reusesim -kernel adi -events -       # stream telemetry events as JSONL
//	reusesim -kernel adi -sessions       # reuse-session audit table
//	reusesim -kernel adi -attrib         # per-session energy attribution
//	reusesim -kernel aps -cpuprofile cpu.pprof -memprofile mem.pprof
//	reusesim -kernel adi -listen 127.0.0.1:8080   # live /metrics /events
//	                                              # /status /debug/pprof
//	reusesim -kernel adi -checkpoint s.ckpt -checkpoint-at 50000
//	reusesim -kernel adi -restore s.ckpt          # continue a checkpointed run
//	reusesim -kernel adi -max-wall 30s -checkpoint s.ckpt
//	reusesim -kernel adi -flightrec rec/          # time-travel flight recording;
//	                                              # debug with reusedbg -dir rec/
//
// Exit codes: 0 success, 1 runtime error, 2 flag error, 3 the run was
// checkpointed (by -checkpoint-at or -max-wall) and stopped before
// completion; resume it with -restore under the same configuration flags.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"reuseiq/internal/asm"
	"reuseiq/internal/chaos"
	"reuseiq/internal/compiler"
	"reuseiq/internal/ffwd"
	"reuseiq/internal/flightrec"
	"reuseiq/internal/lockstep"
	"reuseiq/internal/obs"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/prog"
	"reuseiq/internal/runstore"
	"reuseiq/internal/snapshot"
	"reuseiq/internal/telemetry"
	"reuseiq/internal/trace"
	"reuseiq/internal/workloads"
)

func main() {
	os.Exit(mainImpl(os.Args[1:], os.Stdout, os.Stderr))
}

// opts carries the parsed flags into run().
type opts struct {
	verify    bool
	ffwd      bool  // analytic fast-forward engine
	chaosSeed int64 // 0 disables injection
	// telemetry wants a tracer attached: any of -trace/-events/-sessions/
	// -attrib/-listen, or the stats histograms when -stats is combined with
	// them.
	telemetry  bool
	eventsPath string // JSONL stream destination ("-" = stdout, "" = off)
	// srv, non-nil with -listen, receives samples from the machine's
	// sampler tap and telemetry events for SSE fan-out.
	srv         *obs.Server
	sampleEvery uint64
	stdout      io.Writer
	stderr      io.Writer
	// Checkpoint/restore plumbing: restorePath resumes a saved machine,
	// ckptPath receives a snapshot when ckptAt (a cycle) or maxWall (a
	// wall-clock budget) stops the run early.
	restorePath string
	ckptPath    string
	ckptAt      uint64
	maxWall     time.Duration
	// Flight recorder: frDir enables recording, frManifest carries the
	// workload identity reusedbg needs to rebuild the machine.
	frDir      string
	frInterval uint64
	frDepth    int
	frManifest flightrec.Manifest
	// ledger, non-nil with -ledger, receives one provenance-stamped record
	// per completed simulation (both halves of -compare). Checkpoint-stopped
	// runs are not recorded: their counters are mid-flight, not a result.
	ledger     *runstore.Ledger
	kernelName string
}

// simStatus is the /status payload published with each sample.
type simStatus struct {
	Cycle    uint64  `json:"cycle"`
	Commits  uint64  `json:"commits"`
	IPC      float64 `json:"ipc"`
	RIQState string  `json:"riq_state"`
	GatedPct float64 `json:"gated_pct"`
	Sessions int     `json:"sessions"`
	Halted   bool    `json:"halted"`
	// Fast-forward veto tally by reason (present when the engine is
	// attached), and the process-wide snapshot image traffic.
	FfwdVetoes       map[string]uint64 `json:"ffwd_vetoes,omitempty"`
	SnapshotSaves    uint64            `json:"snapshot_saves"`
	SnapshotRestores uint64            `json:"snapshot_restores"`
	// TimeTravel mirrors /debug/timetravel when a flight recorder records.
	TimeTravel *flightrec.Status `json:"timetravel,omitempty"`
}

// publishSample snapshots the machine's registry (on the simulation
// goroutine) and publishes it. The final sample after the run additionally
// carries per-session energy attribution gauges.
func publishSample(srv *obs.Server, m *pipeline.Machine, ff *ffwd.Engine, rec *flightrec.Recorder, final bool) {
	r := &telemetry.Registry{}
	m.RegisterMetrics(r)
	snapshot.RegisterMetrics(r)
	saves, restores := snapshot.Counters()
	st := simStatus{
		Cycle:            m.Cycle(),
		Commits:          m.C.Commits,
		IPC:              m.IPC(),
		RIQState:         m.Ctl.State().String(),
		GatedPct:         100 * m.GatedFraction(),
		Halted:           m.Halted(),
		SnapshotSaves:    saves,
		SnapshotRestores: restores,
	}
	if ff != nil {
		st.FfwdVetoes = make(map[string]uint64, ffwd.NumVetoReasons)
		for v := 0; v < ffwd.NumVetoReasons; v++ {
			st.FfwdVetoes[ffwd.VetoReason(v).String()] = ff.S.Vetoes[v]
		}
	}
	if rec != nil {
		rec.RegisterMetrics(r)
		frs := rec.Status()
		st.TimeTravel = &frs
	}
	if m.Tel != nil {
		st.Sessions = len(m.Tel.Sessions())
		if final {
			power.RegisterSessionMetrics(r, power.AttributeSessions(m, m.Tel.Sessions()))
		}
	}
	srv.Publish(obs.Sample{Cycle: m.Cycle(), Metrics: r.TypedSnapshot(), Status: st})
}

func mainImpl(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reusesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kernel := fs.String("kernel", "", "workload kernel name (adi aps btrix eflux tomcat tsf vpenta wss)")
	asmFile := fs.String("asm", "", "assembly source file to run instead of a kernel")
	iq := fs.Int("iq", 64, "issue queue size (ROB = iq, LSQ = iq/2)")
	baseline := fs.Bool("baseline", false, "disable the reuse mechanism")
	distribute := fs.Bool("distribute", false, "apply loop distribution to the kernel")
	compare := fs.Bool("compare", false, "run both configurations and report savings")
	disasm := fs.Bool("disasm", false, "print the program disassembly and exit")
	emitAsm := fs.Bool("S", false, "print the generated assembly for a kernel and exit")
	pipetrace := fs.Int("pipetrace", 0, "record and print a pipeline diagram of the first N instructions")
	statsFlag := fs.Bool("stats", false, "print the full counter set instead of the summary")
	verify := fs.Bool("verify", false, "run under the lockstep oracle and invariant checker")
	ffwdFlag := fs.Bool("ffwd", false, "enable the analytic fast-forward engine (byte-identical results, skips provably periodic loop spans)")
	chaosFlag := fs.Int64("chaos", 0, "enable seeded fault injection (nonzero seed)")
	traceOut := fs.String("trace", "", "write a Chrome/Perfetto trace-event JSON file (open at ui.perfetto.dev)")
	events := fs.String("events", "", "stream telemetry events as JSON lines to this file (\"-\" for stdout)")
	sessionsFlag := fs.Bool("sessions", false, "print the reuse-session audit table")
	attribFlag := fs.Bool("attrib", false, "print per-session energy attribution")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	listen := fs.String("listen", "", "serve live observability (/metrics /events /status /debug/pprof) on this address (port 0 picks one)")
	linger := fs.Duration("linger", 0, "with -listen, keep serving this long after the run ends")
	sampleEvery := fs.Uint64("sample-every", 0, "with -listen, cycles between metric samples (0 = default 4096)")
	checkpoint := fs.String("checkpoint", "", "write a machine snapshot to this file when -checkpoint-at or -max-wall stops the run")
	checkpointAt := fs.Uint64("checkpoint-at", 0, "stop and checkpoint at this cycle (requires -checkpoint)")
	restoreFlag := fs.String("restore", "", "resume from a snapshot file (pass the same -iq/-baseline/-chaos flags as the original run)")
	maxWall := fs.Duration("max-wall", 0, "wall-clock budget: checkpoint (with -checkpoint) and exit with code 3 when exceeded")
	ledgerPath := fs.String("ledger", "", "append a provenance-stamped run-ledger record (JSONL) for each completed run to this file; query with reusereport")
	flightrecDir := fs.String("flightrec", "", "record a time-travel flight recording into this directory (seek it afterwards with reusedbg -dir)")
	flightrecInterval := fs.Uint64("flightrec-interval", 0, "cycles between flight-recorder checkpoints (0 = default)")
	flightrecDepth := fs.Int("flightrec-depth", 0, "flight-recorder checkpoint ring depth (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *checkpointAt > 0 && *checkpoint == "" {
		fmt.Fprintln(stderr, "reusesim: -checkpoint-at requires -checkpoint")
		return 2
	}
	if *restoreFlag != "" && *verify {
		fmt.Fprintln(stderr, "reusesim: -restore is incompatible with -verify: the lockstep oracle must observe the run from the program entry")
		return 2
	}
	if (*checkpoint != "" || *restoreFlag != "" || *maxWall > 0) && (*compare || *pipetrace > 0) {
		fmt.Fprintln(stderr, "reusesim: checkpoint/restore flags apply to a single plain run, not -compare or -pipetrace")
		return 2
	}
	if *flightrecDir != "" && (*compare || *pipetrace > 0) {
		fmt.Fprintln(stderr, "reusesim: -flightrec records a single plain run, not -compare or -pipetrace")
		return 2
	}
	o := &opts{
		verify:      *verify,
		ffwd:        *ffwdFlag,
		chaosSeed:   *chaosFlag,
		telemetry:   *traceOut != "" || *events != "" || *sessionsFlag || *attribFlag || *listen != "",
		eventsPath:  *events,
		stdout:      stdout,
		stderr:      stderr,
		restorePath: *restoreFlag,
		ckptPath:    *checkpoint,
		ckptAt:      *checkpointAt,
		maxWall:     *maxWall,
		frDir:       *flightrecDir,
		frInterval:  *flightrecInterval,
		frDepth:     *flightrecDepth,
		kernelName:  *kernel,
	}
	if o.kernelName == "" && *asmFile != "" {
		o.kernelName = filepath.Base(*asmFile)
	}
	if *ledgerPath != "" {
		led, err := runstore.Open(*ledgerPath)
		if err != nil {
			fmt.Fprintln(stderr, "reusesim:", err)
			return 1
		}
		o.ledger = led
		defer led.Close()
	}
	if *listen != "" {
		srv := obs.NewServer()
		addr, err := srv.Start(*listen)
		if err != nil {
			fmt.Fprintln(stderr, "reusesim:", err)
			return 1
		}
		o.srv = srv
		o.sampleEvery = *sampleEvery
		if o.ledger != nil {
			srv.SetRunSource(o.ledger.Records)
		}
		fmt.Fprintf(stderr, "reusesim: obs: listening on http://%s (/metrics /events /status /dashboard /debug/pprof)\n", addr)
		defer func() {
			if *linger > 0 {
				time.Sleep(*linger)
			}
			srv.Close()
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "reusesim:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "reusesim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "reusesim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // only reachable allocations; the point is what the core retains
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "reusesim:", err)
			}
		}()
	}

	p, src, err := load(*kernel, *asmFile, *distribute)
	if err != nil {
		fmt.Fprintln(stderr, "reusesim:", err)
		return 1
	}
	if o.frDir != "" {
		// The manifest lets reusedbg rebuild the exact config and program;
		// run() fills Baseline, which is the one knob decided there.
		o.frManifest = flightrec.Manifest{
			Kernel:      *kernel,
			Distribute:  *distribute,
			IQSize:      *iq,
			ChaosSeed:   *chaosFlag,
			FastForward: *ffwdFlag,
		}
		if *kernel == "" {
			o.frManifest.AsmSource = src
		}
	}
	if *emitAsm {
		fmt.Fprint(stdout, src)
		return 0
	}
	if *disasm {
		fmt.Fprint(stdout, p.Disasm())
		return 0
	}

	if *compare {
		base, _, err := run(p, *iq, false, o)
		if err != nil {
			fmt.Fprintln(stderr, "reusesim:", err)
			return 1
		}
		reuse, _, err := run(p, *iq, true, o)
		if err != nil {
			fmt.Fprintln(stderr, "reusesim:", err)
			return 1
		}
		sv := power.Compare(power.Analyze(base), power.Analyze(reuse))
		fmt.Fprintf(stdout, "baseline: %d cycles, IPC %.3f\n", base.C.Cycles, base.IPC())
		fmt.Fprintf(stdout, "reuse:    %d cycles, IPC %.3f, gated %.1f%%\n",
			reuse.C.Cycles, reuse.IPC(), 100*reuse.GatedFraction())
		fmt.Fprintf(stdout, "power savings: overall %.1f%%  icache %.1f%%  bpred %.1f%%  issueq %.1f%%  (overhead %.2f%% of total)\n",
			100*sv.Overall, 100*sv.Component[power.ICache], 100*sv.Component[power.BPred],
			100*sv.Component[power.IssueQueue], 100*sv.OverheadShare)
		return 0
	}

	if *pipetrace > 0 {
		cfg := pipeline.DefaultConfig().WithIQSize(*iq)
		cfg.Reuse.Enabled = !*baseline
		if o.chaosSeed != 0 {
			cfg.Chaos = chaos.DefaultConfig(o.chaosSeed)
		}
		m := pipeline.New(cfg, p)
		if o.verify {
			lockstep.Attach(m, p)
		}
		rec := trace.New(*pipetrace)
		m.Rec = rec
		if err := m.Run(); err != nil {
			fmt.Fprintln(stderr, "reusesim:", err)
			return 1
		}
		rec.Render(stdout)
		wait, life, n := rec.Stats()
		fmt.Fprintf(stdout, "recorded %d committed instructions: avg dispatch-to-issue %.1f cycles, avg lifetime %.1f cycles\n", n, wait, life)
		return 0
	}

	m, stopped, err := run(p, *iq, !*baseline, o)
	if err != nil {
		fmt.Fprintln(stderr, "reusesim:", err)
		return 1
	}
	if stopped {
		fmt.Fprintf(stdout, "checkpointed at cycle %d (%d commits)\n", m.C.Cycles, m.C.Commits)
		return 3
	}

	if *traceOut != "" {
		if m.Tel == nil {
			fmt.Fprintln(stderr, "reusesim: internal error: -trace requires an attached telemetry tracer")
			return 1
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "reusesim:", err)
			return 1
		}
		bw := bufio.NewWriter(f)
		werr := telemetry.WriteTraceJSON(bw, m.Tel, m.Cycle())
		if werr == nil {
			werr = bw.Flush()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "reusesim:", werr)
			return 1
		}
		fmt.Fprintf(stderr, "reusesim: wrote %s (%d events, %d sessions; open at ui.perfetto.dev)\n",
			*traceOut, m.Tel.Total(), len(m.Tel.Sessions()))
	}
	if *sessionsFlag {
		if m.Tel == nil {
			fmt.Fprintln(stderr, "reusesim: internal error: -sessions requires an attached telemetry tracer")
			return 1
		}
		telemetry.WriteSessionTable(stdout, m.Tel.Sessions())
		if !*statsFlag && !*attribFlag {
			return 0
		}
		fmt.Fprintln(stdout)
	}
	if *attribFlag {
		if m.Tel == nil {
			fmt.Fprintln(stderr, "reusesim: internal error: -attrib requires an attached telemetry tracer")
			return 1
		}
		power.WriteSessionEnergy(stdout, power.AttributeSessions(m, m.Tel.Sessions()))
		if !*statsFlag {
			return 0
		}
		fmt.Fprintln(stdout)
	}
	if *statsFlag {
		fmt.Fprint(stdout, m.StatsSet())
		return 0
	}
	if o.telemetry && o.eventsPath != "" && !*sessionsFlag && !*attribFlag && *traceOut == "" {
		// A pure -events run already streamed its output; skip the summary.
		return 0
	}
	fmt.Fprintf(stdout, "cycles            %12d\n", m.C.Cycles)
	fmt.Fprintf(stdout, "commits           %12d\n", m.C.Commits)
	fmt.Fprintf(stdout, "IPC               %12.3f\n", m.IPC())
	fmt.Fprintf(stdout, "gated cycles      %12d (%.1f%%)\n", m.C.GatedCycles, 100*m.GatedFraction())
	fmt.Fprintf(stdout, "mispredicts       %12d\n", m.C.Mispredicts)
	s := m.Ctl.S
	fmt.Fprintf(stdout, "loop detections   %12d (NBLT filtered %d)\n", s.Detections, s.NBLTFiltered)
	fmt.Fprintf(stdout, "bufferings        %12d (revoked %d: inner %d, exit %d, full %d, recovery %d)\n",
		s.Bufferings, s.Revokes, s.RevokesInner, s.RevokesExit, s.RevokesFull, s.RevokesRecovery)
	fmt.Fprintf(stdout, "promotions        %12d (iterations buffered %d)\n", s.Promotions, s.IterationsBuffered)
	fmt.Fprintf(stdout, "reuse renames     %12d (exits %d)\n", s.ReuseRenames, s.ReuseExits)
	fmt.Fprintf(stdout, "icache accesses   %12d (miss rate %.2f%%)\n", m.Hier.L1I.Accesses, 100*m.Hier.L1I.MissRate())
	fmt.Fprintf(stdout, "dcache accesses   %12d (miss rate %.2f%%)\n", m.Hier.L1D.Accesses, 100*m.Hier.L1D.MissRate())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, power.Analyze(m))
	return 0
}

func load(kernel, asmFile string, distribute bool) (*prog.Program, string, error) {
	switch {
	case kernel != "" && asmFile != "":
		return nil, "", fmt.Errorf("choose either -kernel or -asm")
	case kernel != "":
		k, ok := workloads.ByName(kernel)
		if !ok {
			return nil, "", fmt.Errorf("unknown kernel %q", kernel)
		}
		ir := k.Prog
		if distribute {
			ir = compiler.Distribute(ir)
		}
		return compiler.Compile(ir)
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, "", err
		}
		p, err := asm.Assemble(string(src))
		return p, string(src), err
	}
	return nil, "", fmt.Errorf("need -kernel or -asm (try -kernel aps)")
}

// run simulates to completion (or to a checkpoint stop) and returns the
// machine plus whether the run was stopped early by -checkpoint-at/-max-wall.
func run(p *prog.Program, iq int, reuse bool, o *opts) (*pipeline.Machine, bool, error) {
	start := time.Now()
	cfg := pipeline.DefaultConfig().WithIQSize(iq)
	cfg.Reuse.Enabled = reuse
	cfg.FastForward = o.ffwd
	if o.chaosSeed != 0 {
		cfg.Chaos = chaos.DefaultConfig(o.chaosSeed)
	}
	var m *pipeline.Machine
	if o.restorePath != "" {
		f, err := os.Open(o.restorePath)
		if err != nil {
			return nil, false, err
		}
		m, err = snapshot.Restore(bufio.NewReader(f), cfg, p)
		f.Close()
		if err != nil {
			return nil, false, fmt.Errorf("restore %s: %w", o.restorePath, err)
		}
		fmt.Fprintf(o.stderr, "reusesim: restored %s at cycle %d (%d commits)\n", o.restorePath, m.C.Cycles, m.C.Commits)
	} else {
		m = pipeline.New(cfg, p)
	}
	ff := ffwd.Attach(m)

	var flushEvents func() error
	if o.telemetry || o.eventsPath != "" {
		tel := telemetry.New(telemetry.Config{})
		if o.eventsPath != "" {
			w := o.stdout
			if o.eventsPath != "-" {
				f, err := os.Create(o.eventsPath)
				if err != nil {
					return nil, false, err
				}
				bw := bufio.NewWriter(f)
				w = bw
				flushEvents = func() error {
					if err := bw.Flush(); err != nil {
						f.Close()
						return err
					}
					return f.Close()
				}
			}
			tel.Sink = telemetry.JSONLSink(w)
		}
		if o.srv != nil {
			obsSink := o.srv.EventSink()
			if jsonl := tel.Sink; jsonl != nil {
				tel.Sink = func(e telemetry.Event) { jsonl(e); obsSink(e) }
			} else {
				tel.Sink = obsSink
			}
		}
		m.AttachTelemetry(tel)
	}
	var rec *flightrec.Recorder
	if o.frDir != "" {
		man := o.frManifest
		man.Baseline = !reuse
		var err error
		rec, err = flightrec.Attach(m, flightrec.Config{
			Interval: o.frInterval,
			Depth:    o.frDepth,
			Dir:      o.frDir,
			Manifest: man,
		})
		if err != nil {
			return nil, false, err
		}
		if o.srv != nil {
			o.srv.SetTimeTravel(func() any { return rec.Status() })
		}
	}

	if o.srv != nil {
		m.AttachSampler(o.sampleEvery, func() { publishSample(o.srv, m, ff, rec, false) })
		// An immediate sample makes /readyz pass before the first interval
		// elapses.
		publishSample(o.srv, m, ff, rec, false)
	}

	var orc *lockstep.Oracle
	if o.verify {
		orc = lockstep.Attach(m, p)
	}
	// finishRec seals the recording; on a crashed run the directory is the
	// post-mortem artifact, so the run error must not suppress sealing.
	finishRec := func(crashed bool) error {
		if rec == nil {
			return nil
		}
		if err := rec.Finish(); err != nil {
			return fmt.Errorf("flightrec: %w", err)
		}
		st := rec.Status()
		what := "recording"
		if crashed {
			what = "post-mortem recording"
		}
		fmt.Fprintf(o.stderr, "reusesim: flightrec: %s in %s: %d checkpoints (%d evicted), %d events, seekable cycles [%d, %d]; debug with: reusedbg -dir %s\n",
			what, o.frDir, st.Checkpoints, st.CheckpointsEvicted, st.EventsRetained,
			st.SeekableFrom, st.SeekableTo, o.frDir)
		return nil
	}
	stopped := false
	if o.ckptAt > 0 || o.maxWall > 0 {
		var deadline time.Time
		if o.maxWall > 0 {
			deadline = time.Now().Add(o.maxWall)
		}
		// -checkpoint-at wants the exact cycle, so check every cycle; a pure
		// wall-clock budget only needs a coarse check.
		every := uint64(4096)
		if o.ckptAt > 0 {
			every = 1
		}
		err := m.RunBreakable(every, func() bool {
			if rec != nil {
				rec.Poll()
			}
			if o.ckptAt > 0 && m.Cycle() >= o.ckptAt {
				return true
			}
			return !deadline.IsZero() && time.Now().After(deadline)
		})
		switch {
		case errors.Is(err, pipeline.ErrStopped):
			stopped = true
			if o.ckptPath != "" {
				if err := saveCheckpoint(o.ckptPath, m); err != nil {
					return nil, false, err
				}
				fmt.Fprintf(o.stderr, "reusesim: wrote checkpoint %s at cycle %d; resume with -restore\n", o.ckptPath, m.C.Cycles)
			} else {
				fmt.Fprintln(o.stderr, "reusesim: wall-clock budget exceeded; no -checkpoint path given, state discarded")
			}
		case err != nil:
			if ferr := finishRec(true); ferr != nil {
				fmt.Fprintln(o.stderr, "reusesim:", ferr)
			}
			return nil, false, err
		}
	} else if rec != nil {
		if err := m.RunBreakable(64, rec.Break); err != nil {
			if ferr := finishRec(true); ferr != nil {
				fmt.Fprintln(o.stderr, "reusesim:", ferr)
			}
			return nil, false, err
		}
	} else if err := m.Run(); err != nil {
		return nil, false, err
	}
	if err := finishRec(false); err != nil {
		return nil, false, err
	}
	if m.Tel != nil {
		m.Tel.Finalize(m.Cycle())
	}
	if o.srv != nil {
		publishSample(o.srv, m, ff, rec, true)
	}
	if flushEvents != nil {
		if err := flushEvents(); err != nil {
			return nil, false, err
		}
	}
	if orc != nil {
		fmt.Fprintf(o.stdout, "verified: %d commits cross-checked against the golden model\n", orc.Commits)
	}
	if ff != nil {
		fmt.Fprintf(o.stderr, "reusesim: ffwd: %d engagements skipped %d cycles (%d iterations, %d insts); %d idle skips saved %d cycles\n",
			ff.S.Engagements, ff.S.SkippedCycles, ff.S.SkippedIterations, ff.S.SkippedInsts, ff.S.IdleSkips, ff.S.IdleSkippedCycles)
	}
	if m.Chaos != nil && !stopped {
		c := m.Chaos.C
		fmt.Fprintf(o.stdout, "chaos: %d forced revokes, %d flipped predictions, %d fetch stalls, %d jittered issues\n",
			c.ForcedRevokes, c.FlippedPredictions, c.FetchStalls, c.JitteredIssues)
	}
	if o.ledger != nil && !stopped {
		rec := runstore.FromMachine(m)
		rec.Kind = runstore.KindSim
		rec.Kernel = o.kernelName
		rec.FlightRec = o.frDir != ""
		rec.Verified = o.verify
		rec.Host.WallNS = time.Since(start).Nanoseconds()
		if err := o.ledger.Append(&rec); err != nil {
			return nil, false, err
		}
		fmt.Fprintf(o.stderr, "reusesim: ledger: recorded run %s (%s)\n", rec.ID, rec.Fingerprint)
	}
	return m, stopped, nil
}

// saveCheckpoint writes a snapshot atomically next to its final path.
func saveCheckpoint(path string, m *pipeline.Machine) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	if err := snapshot.Save(w, m); err != nil {
		tmp.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Command reusereport queries the run ledger that reusesim -ledger and
// reusebench -ledger append to: listing runs by provenance, diffing any two
// runs or run-sets counter by counter, running the cross-run regression
// sentinel, and rendering a single-file HTML report.
//
// Usage:
//
//	reusereport -ledger runs.jsonl list                 # table of runs
//	reusereport -ledger runs.jsonl list kernel=aps      # filtered
//	reusereport -ledger runs.jsonl show 3fa9            # one full record
//	reusereport -ledger runs.jsonl diff 3fa9 81c2       # run vs run
//	reusereport -ledger runs.jsonl diff reuse=false reuse=true
//	reusereport -ledger runs.jsonl check                # regression sentinel
//	reusereport -ledger runs.jsonl html -o report.html  # HTML report
//
// A selector is a run id (or unique prefix of at least 4 hex digits) naming
// one run, or a comma-separated filter expression naming a set:
//
//	kind=sim|cell kernel=NAME fp=FINGERPRINT iq=N reuse=BOOL ffwd=BOOL last=N
//
// fp matches the full "cfghash:proghash" form or a bare config-hash prefix.
// Diffing sets compares per-metric means, so "diff reuse=false reuse=true"
// reproduces the paper's baseline-versus-reuse comparison over everything
// ever recorded.
//
// Exit codes: 0 success (check: sentinel passed), 1 check found modeled
// drift, 2 usage or ledger error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"reuseiq/internal/runstore"
)

func main() {
	os.Exit(mainImpl(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: reusereport -ledger FILE {list|show|diff|check|html} [args]  (see go doc reuseiq/cmd/reusereport)")
	return 2
}

func mainImpl(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reusereport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledger := fs.String("ledger", "runs.jsonl", "run ledger file to query (written by reusesim/reusebench -ledger)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		return usage(stderr)
	}
	recs, err := runstore.Load(*ledger)
	if err != nil {
		fmt.Fprintln(stderr, "reusereport:", err)
		return 2
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "list":
		return cmdList(recs, rest, stdout, stderr)
	case "show":
		return cmdShow(recs, rest, stdout, stderr)
	case "diff":
		return cmdDiff(recs, rest, stdout, stderr)
	case "check":
		return cmdCheck(recs, rest, stdout, stderr)
	case "html":
		return cmdHTML(recs, rest, stderr)
	}
	fmt.Fprintf(stderr, "reusereport: unknown command %q\n", cmd)
	return usage(stderr)
}

// parseFilter parses a comma-separated key=value filter expression.
func parseFilter(expr string) (runstore.Filter, error) {
	var f runstore.Filter
	if expr == "" {
		return f, nil
	}
	for _, kv := range strings.Split(expr, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return f, fmt.Errorf("bad filter term %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "kind":
			f.Kind = v
		case "kernel":
			f.Kernel = v
		case "fp", "fingerprint":
			f.Fingerprint = v
		case "iq":
			f.IQSize, err = strconv.Atoi(v)
		case "reuse":
			var b bool
			if b, err = strconv.ParseBool(v); err == nil {
				f.Reuse = &b
			}
		case "ffwd":
			var b bool
			if b, err = strconv.ParseBool(v); err == nil {
				f.FastForward = &b
			}
		case "last":
			f.Last, err = strconv.Atoi(v)
		default:
			return f, fmt.Errorf("unknown filter key %q", k)
		}
		if err != nil {
			return f, fmt.Errorf("bad filter term %q: %v", kv, err)
		}
	}
	return f, nil
}

// isRunID reports whether sel looks like a run id or id prefix (>= 4 hex
// digits, no "=" so filter expressions never shadow it).
func isRunID(sel string) bool {
	if len(sel) < 4 || len(sel) > 16 {
		return false
	}
	for _, c := range sel {
		if !strings.ContainsRune("0123456789abcdef", c) {
			return false
		}
	}
	return true
}

// selectRecords resolves a selector — run id/prefix or filter expression —
// against the loaded records.
func selectRecords(recs []runstore.Record, sel string) ([]runstore.Record, error) {
	if isRunID(sel) {
		var hits []runstore.Record
		for _, r := range recs {
			if strings.HasPrefix(r.ID, sel) {
				hits = append(hits, r)
			}
		}
		switch len(hits) {
		case 0:
			return nil, fmt.Errorf("no run with id %s", sel)
		case 1:
			return hits, nil
		}
		return nil, fmt.Errorf("id prefix %s is ambiguous (%d runs)", sel, len(hits))
	}
	f, err := parseFilter(sel)
	if err != nil {
		return nil, err
	}
	out := f.Select(recs)
	if len(out) == 0 {
		return nil, fmt.Errorf("no runs match %q", sel)
	}
	return out, nil
}

func cmdList(recs []runstore.Record, args []string, stdout, stderr io.Writer) int {
	sel := strings.Join(args, ",")
	out := recs
	if sel != "" {
		var err error
		out, err = selectRecords(recs, sel)
		if err != nil {
			fmt.Fprintln(stderr, "reusereport:", err)
			return 2
		}
	}
	tw := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "id\tkind\tstart\tkernel\tiq\treuse\tconfig\tcycles\tIPC\twall\terr\t")
	for _, r := range out {
		reuse := "off"
		if r.Reuse {
			reuse = "on"
		}
		errCol := ""
		if r.Err != "" {
			errCol = "err"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%s\t%s\t%d\t%.3f\t%s\t%s\t\n",
			r.ID[:8], r.Kind, r.Start.Format("01-02 15:04:05"), r.Kernel, r.IQSize,
			reuse, r.ConfigHash()[:8], r.Cycles, r.IPC,
			r.Host.Wall().Round(time.Millisecond), errCol)
	}
	tw.Flush()
	fmt.Fprintf(stdout, "%d run(s)\n", len(out))
	return 0
}

func cmdShow(recs []runstore.Record, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reusereport show", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the raw JSON record")
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: reusereport show [-json] <id>")
		return 2
	}
	hits, err := selectRecords(recs, fs.Arg(0))
	if err != nil || len(hits) != 1 {
		if err == nil {
			err = fmt.Errorf("selector %q names %d runs, show wants one", fs.Arg(0), len(hits))
		}
		fmt.Fprintln(stderr, "reusereport:", err)
		return 2
	}
	r := hits[0]
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r)
		return 0
	}
	fmt.Fprintf(stdout, "run         %s (%s)\n", r.ID, r.Kind)
	fmt.Fprintf(stdout, "start       %s\n", r.Start.Format(time.RFC3339))
	fmt.Fprintf(stdout, "workload    kernel=%s iq=%d reuse=%v dist=%v nblt=%d\n",
		r.Kernel, r.IQSize, r.Reuse, r.Distributed, r.NBLTSize)
	fmt.Fprintf(stdout, "fingerprint %s\n", r.Fingerprint)
	fmt.Fprintf(stdout, "flags       ffwd=%v flightrec=%v verified=%v chaos_seed=%d retried=%v\n",
		r.FastForward, r.FlightRec, r.Verified, r.ChaosSeed, r.Retried)
	fmt.Fprintf(stdout, "result      cycles=%d commits=%d ipc=%.3f gated=%.1f%%\n",
		r.Cycles, r.Commits, r.IPC, 100*r.Gated)
	if r.Err != "" {
		fmt.Fprintf(stdout, "error       %s\n", r.Err)
	}
	fmt.Fprintf(stdout, "host        %s %s/%s go=%s cpus=%d wall=%s\n",
		r.Host.Hostname, r.Host.GoOS, r.Host.GoArch, r.Host.GoVersion,
		r.Host.CPUs, r.Host.Wall().Round(time.Microsecond))
	if len(r.Energy) > 0 {
		names := make([]string, 0, len(r.Energy))
		for n := range r.Energy {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(stdout, "energy     ")
		for _, n := range names {
			fmt.Fprintf(stdout, " %s=%.3f", n, r.Energy[n])
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "\n%d counters, %d gauges, %d histograms:\n",
		len(r.Metrics.Counters), len(r.Metrics.Gauges), len(r.Metrics.Hists))
	tw := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	for _, c := range r.Metrics.Counters {
		fmt.Fprintf(tw, "%s\t%d\t\n", c.Name, c.Value)
	}
	for _, g := range r.Metrics.Gauges {
		fmt.Fprintf(tw, "%s\t%.6g\t\n", g.Name, g.Value)
	}
	tw.Flush()
	return 0
}

func cmdDiff(recs []runstore.Record, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reusereport diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	all := fs.Bool("all", false, "show unchanged metrics too")
	if err := fs.Parse(args); err != nil || fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: reusereport diff [-all] <selector> <selector>")
		return 2
	}
	a, err := selectRecords(recs, fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "reusereport:", err)
		return 2
	}
	b, err := selectRecords(recs, fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "reusereport:", err)
		return 2
	}
	d := runstore.Diff(a, b)
	if err := d.WriteText(stdout, !*all); err != nil {
		fmt.Fprintln(stderr, "reusereport:", err)
		return 2
	}
	return 0
}

func cmdCheck(recs []runstore.Record, args []string, stdout, stderr io.Writer) int {
	sel := strings.Join(args, ",")
	out := recs
	if sel != "" {
		var err error
		out, err = selectRecords(recs, sel)
		if err != nil {
			fmt.Fprintln(stderr, "reusereport:", err)
			return 2
		}
	}
	rep := runstore.Sentinel(out)
	if err := rep.WriteText(stdout); err != nil {
		fmt.Fprintln(stderr, "reusereport:", err)
		return 2
	}
	if !rep.Pass() {
		return 1
	}
	return 0
}

func cmdHTML(recs []runstore.Record, args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("reusereport html", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "report.html", "output file")
	title := fs.String("title", "reuseiq run ledger", "report title")
	diffA := fs.String("a", "", "selector for the diff section's A side (with -b)")
	diffB := fs.String("b", "", "selector for the diff section's B side (with -a)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: reusereport html [-o FILE] [-title T] [-a SEL -b SEL]")
		return 2
	}
	var d *runstore.DiffReport
	if (*diffA == "") != (*diffB == "") {
		fmt.Fprintln(stderr, "reusereport: -a and -b must be given together")
		return 2
	}
	if *diffA != "" {
		a, err := selectRecords(recs, *diffA)
		if err != nil {
			fmt.Fprintln(stderr, "reusereport:", err)
			return 2
		}
		b, err := selectRecords(recs, *diffB)
		if err != nil {
			fmt.Fprintln(stderr, "reusereport:", err)
			return 2
		}
		d = runstore.Diff(a, b)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(stderr, "reusereport:", err)
		return 2
	}
	werr := runstore.WriteHTML(f, *title, recs, runstore.Sentinel(recs), d)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(stderr, "reusereport:", werr)
		return 2
	}
	fmt.Fprintf(stderr, "reusereport: wrote %s (%d run(s))\n", *out, len(recs))
	return 0
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reuseiq/internal/runstore"
)

// writeLedger builds a ledger file with three fingerprint-identical runs of
// one config and one run of another, with a deliberate +1 drift injectable
// into the last record's modeled counter.
func writeLedger(t *testing.T, drift bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	led, err := runstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	mk := func(id, fp string, reuse bool, dispatches uint64, wall int64) runstore.Record {
		return runstore.Record{
			ID: id, Kind: runstore.KindSim, Kernel: "aps", IQSize: 64, Reuse: reuse,
			Fingerprint: fp, Cycles: 1000, Commits: 1500, IPC: 1.5,
			Metrics: runstore.Metrics{Counters: []runstore.Counter{
				{Name: "iq.dispatches", Value: dispatches},
				{Name: "sim.commits", Value: 1500},
				{Name: "sim.cycles", Value: 1000},
			}},
			Energy: map[string]float64{"issueq": 10, "total": 25},
			Host:   runstore.Host{WallNS: wall},
		}
	}
	fpA := "1111111111111111:2222222222222222"
	fpB := "3333333333333333:2222222222222222"
	recs := []runstore.Record{
		mk("aaaa000000000001", fpA, true, 2600, 5_000_000),
		mk("aaaa000000000002", fpA, true, 2600, 5_100_000),
		mk("aaaa000000000003", fpA, true, 2600, 5_050_000),
		mk("bbbb000000000001", fpB, false, 4000, 9_000_000),
	}
	if drift {
		recs[2].Metrics.Counters[0].Value = 2601
	}
	for i := range recs {
		if err := led.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := mainImpl(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListAndShow(t *testing.T) {
	path := writeLedger(t, false)
	code, out, _ := run(t, "-ledger", path, "list")
	if code != 0 {
		t.Fatalf("list exit %d", code)
	}
	if !strings.Contains(out, "4 run(s)") || !strings.Contains(out, "aaaa0000") {
		t.Errorf("list output:\n%s", out)
	}
	code, out, _ = run(t, "-ledger", path, "list", "reuse=false")
	if code != 0 || !strings.Contains(out, "1 run(s)") {
		t.Errorf("filtered list (exit %d):\n%s", code, out)
	}

	code, out, _ = run(t, "-ledger", path, "show", "bbbb0000")
	if code != 0 {
		t.Fatalf("show exit %d", code)
	}
	for _, want := range []string{"bbbb000000000001", "3333333333333333:2222222222222222", "iq.dispatches", "4000"} {
		if !strings.Contains(out, want) {
			t.Errorf("show output missing %q:\n%s", want, out)
		}
	}

	if code, _, _ = run(t, "-ledger", path, "show", "aaaa"); code != 2 {
		t.Errorf("ambiguous show exit %d, want 2", code)
	}
}

// TestDiffTable pins the rendered diff: a baseline-vs-reuse set diff must
// show the changed counter with its true delta and percentage, aligned in
// the header's columns.
func TestDiffTable(t *testing.T) {
	path := writeLedger(t, false)
	code, out, _ := run(t, "-ledger", path, "diff", "reuse=false", "reuse=true")
	if code != 0 {
		t.Fatalf("diff exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "metric") || !strings.Contains(out, "delta") {
		t.Errorf("diff table header missing:\n%s", out)
	}
	// A = 4000 (baseline), B = mean of three identical 2600s; -35%.
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "iq.dispatches") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("iq.dispatches row missing:\n%s", out)
	}
	for _, want := range []string{"4000", "2600", "-1400", "-35.00%"} {
		if !strings.Contains(line, want) {
			t.Errorf("diff row missing %q: %q", want, line)
		}
	}
	// Unchanged-by-default: sim.commits (identical on both sides) is hidden
	// without -all, shown with it.
	if strings.Contains(out, "sim.commits") {
		t.Errorf("unchanged metric shown without -all:\n%s", out)
	}
	_, outAll, _ := run(t, "-ledger", path, "diff", "-all", "reuse=false", "reuse=true")
	if !strings.Contains(outAll, "sim.commits") {
		t.Errorf("-all hides unchanged metric:\n%s", outAll)
	}
}

// TestCheckExitCodes pins the sentinel gate: exit 0 on fingerprint-identical
// repeats, exit 1 when one modeled counter drifts by a single count.
func TestCheckExitCodes(t *testing.T) {
	clean := writeLedger(t, false)
	code, out, _ := run(t, "-ledger", clean, "check")
	if code != 0 || !strings.Contains(out, "PASS") {
		t.Errorf("clean check: exit %d\n%s", code, out)
	}

	drifted := writeLedger(t, true)
	code, out, _ = run(t, "-ledger", drifted, "check")
	if code != 1 || !strings.Contains(out, "FAIL") {
		t.Errorf("drifted check: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "iq.dispatches") || !strings.Contains(out, "2601") {
		t.Errorf("drift detail missing:\n%s", out)
	}
}

func TestHTMLCommand(t *testing.T) {
	path := writeLedger(t, false)
	out := filepath.Join(t.TempDir(), "report.html")
	code, _, errb := run(t, "-ledger", path, "html", "-o", out,
		"-a", "reuse=false", "-b", "reuse=true")
	if code != 0 {
		t.Fatalf("html exit %d: %s", code, errb)
	}
	data, err := readFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!doctype html>", "PASS", "iq.dispatches"} {
		if !strings.Contains(data, want) {
			t.Errorf("html report missing %q", want)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	path := writeLedger(t, false)
	for _, args := range [][]string{
		{"-ledger", path},
		{"-ledger", path, "frobnicate"},
		{"-ledger", path, "diff", "onlyone"},
		{"-ledger", path, "list", "bogus=1"},
		{"-ledger", filepath.Join(t.TempDir(), "missing.jsonl"), "list"},
	} {
		if code, _, _ := run(t, args...); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
}

func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}

// Command tracecheck validates a Chrome trace-event JSON file produced by
// reusesim -trace: well-formed JSON, every event phased and timestamped,
// monotone non-decreasing timestamps, balanced begin/end pairs per track.
// With -require-riq it additionally demands RIQ state-machine activity (at
// least one loop-buffering or code-reuse slice), which proves the traced run
// actually exercised the reuse mechanism. With -window it validates the
// flight recorder's window-export contract: a trace_window metadata record
// with a zero cycle offset (so Perfetto timestamps seek directly back into
// reusedbg) whose bounds contain every timed event. It is the gate behind
// `make telemetry-check`.
//
// Usage:
//
//	tracecheck trace.json
//	tracecheck -require-riq trace.json
//	tracecheck -window window.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"reuseiq/internal/telemetry"
)

func main() {
	os.Exit(mainImpl(os.Args[1:], os.Stdout, os.Stderr))
}

func mainImpl(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	requireRIQ := fs.Bool("require-riq", false, "fail unless the trace contains RIQ state-machine slices")
	window := fs.Bool("window", false, "validate the flight-recorder window-export contract (trace_window bounds, zero cycle offset)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: tracecheck [-require-riq] [-window] trace.json")
		return 2
	}
	path := fs.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "tracecheck:", err)
		return 1
	}
	if err := telemetry.ValidateTrace(bytes.NewReader(data)); err != nil {
		fmt.Fprintf(stderr, "tracecheck: %s: %v\n", path, err)
		return 1
	}
	if *window {
		if err := telemetry.ValidateTraceWindow(bytes.NewReader(data)); err != nil {
			fmt.Fprintf(stderr, "tracecheck: %s: %v\n", path, err)
			return 1
		}
	}

	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		fmt.Fprintln(stderr, "tracecheck:", err)
		return 1
	}
	riq := 0
	for _, e := range f.TraceEvents {
		if e.Ph == "X" && (e.Name == "loop-buffering" || e.Name == "code-reuse") {
			riq++
		}
	}
	if *requireRIQ && riq == 0 {
		fmt.Fprintf(stderr, "tracecheck: %s: no RIQ state-machine slices (loop-buffering/code-reuse)\n", path)
		return 1
	}
	fmt.Fprintf(stdout, "tracecheck: %s ok (%d events, %d riq-state slices)\n",
		path, len(f.TraceEvents), riq)
	return 0
}

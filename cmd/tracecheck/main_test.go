package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCheck(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = mainImpl(args, &out, &errb)
	return out.String(), errb.String(), code
}

func writeTmp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodTrace = `{"traceEvents":[
	{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"riq-state"}},
	{"name":"normal","ph":"X","ts":0,"dur":10,"pid":1,"tid":0},
	{"name":"loop-buffering","ph":"X","ts":10,"dur":5,"pid":1,"tid":0},
	{"name":"code-reuse","ph":"X","ts":15,"dur":20,"pid":1,"tid":0}]}`

func TestAcceptsValidTrace(t *testing.T) {
	path := writeTmp(t, goodTrace)
	out, _, code := runCheck(t, "-require-riq", path)
	if code != 0 {
		t.Fatalf("exit %d for a valid trace", code)
	}
	if !strings.Contains(out, "ok") || !strings.Contains(out, "2 riq-state slices") {
		t.Errorf("unexpected output: %s", out)
	}
}

func TestRejectsMalformedJSON(t *testing.T) {
	path := writeTmp(t, `{"traceEvents": [`)
	_, stderr, code := runCheck(t, path)
	if code == 0 {
		t.Fatal("malformed JSON accepted")
	}
	if !strings.Contains(stderr, "malformed") {
		t.Errorf("stderr: %s", stderr)
	}
}

func TestRejectsNonMonotone(t *testing.T) {
	path := writeTmp(t, `{"traceEvents":[
		{"name":"a","ph":"i","ts":9,"pid":1,"tid":0},
		{"name":"b","ph":"i","ts":3,"pid":1,"tid":0}]}`)
	if _, _, code := runCheck(t, path); code == 0 {
		t.Fatal("non-monotone timestamps accepted")
	}
}

func TestRequireRIQFailsWithoutStateSlices(t *testing.T) {
	path := writeTmp(t, `{"traceEvents":[{"name":"x","ph":"i","ts":1,"pid":1,"tid":5}]}`)
	if _, _, code := runCheck(t, path); code != 0 {
		t.Fatal("valid trace without RIQ slices should pass without -require-riq")
	}
	_, stderr, code := runCheck(t, "-require-riq", path)
	if code == 0 {
		t.Fatal("-require-riq passed with no state slices")
	}
	if !strings.Contains(stderr, "no RIQ state-machine slices") {
		t.Errorf("stderr: %s", stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, _, code := runCheck(t); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if _, _, code := runCheck(t, "/nonexistent/trace.json"); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

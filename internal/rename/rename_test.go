package rename

import (
	"testing"

	"reuseiq/internal/isa"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(32, 64); err == nil {
		t.Error("accepted too few integer physical registers")
	}
	if _, err := New(64, 32); err == nil {
		t.Error("accepted too few FP physical registers")
	}
	if _, err := New(96, 96); err != nil {
		t.Errorf("rejected valid sizes: %v", err)
	}
}

func TestInitialMapping(t *testing.T) {
	r := MustNew(96, 96)
	for i := 0; i < isa.NumIntRegs; i++ {
		p := r.Lookup(isa.IntReg(uint8(i)))
		if p != i {
			t.Errorf("int r%d -> %d", i, p)
		}
		if !r.Ready(isa.KindInt, p) {
			t.Errorf("initial int phys %d not ready", p)
		}
	}
	if r.FreeInt() != 96-32 || r.FreeFP() != 96-32 {
		t.Errorf("free = %d/%d", r.FreeInt(), r.FreeFP())
	}
}

func TestRenameAllocatesAndClearsReady(t *testing.T) {
	r := MustNew(96, 96)
	d := isa.IntReg(5)
	newP, oldP := r.Rename(d)
	if oldP != 5 {
		t.Errorf("old phys = %d", oldP)
	}
	if r.Lookup(d) != newP {
		t.Error("map not updated")
	}
	if r.Ready(isa.KindInt, newP) {
		t.Error("new phys ready before writeback")
	}
	r.WriteInt(newP, 42)
	if !r.Ready(isa.KindInt, newP) || r.ReadInt(newP) != 42 {
		t.Error("writeback failed")
	}
}

func TestRenameRollbackChain(t *testing.T) {
	r := MustNew(96, 96)
	d := isa.IntReg(7)
	p1, o1 := r.Rename(d)
	p2, o2 := r.Rename(d)
	if o2 != p1 {
		t.Fatalf("second rename old = %d, want %d", o2, p1)
	}
	free := r.FreeInt()
	// Roll back youngest first.
	r.Rollback(d, p2, o2)
	if r.Lookup(d) != p1 {
		t.Error("first rollback wrong")
	}
	r.Rollback(d, p1, o1)
	if r.Lookup(d) != 7 {
		t.Error("second rollback wrong")
	}
	if r.FreeInt() != free+2 {
		t.Error("rollback did not return registers to the free list")
	}
}

func TestOutOfOrderRollbackPanics(t *testing.T) {
	r := MustNew(96, 96)
	d := isa.IntReg(7)
	p1, o1 := r.Rename(d)
	r.Rename(d)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order rollback did not panic")
		}
	}()
	r.Rollback(d, p1, o1) // oldest first: wrong
}

func TestReleaseRecycles(t *testing.T) {
	r := MustNew(33, 33) // exactly one spare int register
	d := isa.IntReg(3)
	if !r.CanRename(d) {
		t.Fatal("no free register at start")
	}
	p1, o1 := r.Rename(d)
	if r.CanRename(d) {
		t.Fatal("free list should be empty")
	}
	// Commit: release the old mapping; the single spare cycles.
	r.Release(isa.KindInt, o1)
	if !r.CanRename(d) {
		t.Fatal("release did not free a register")
	}
	p2, o2 := r.Rename(d)
	if o2 != p1 || p2 != o1 {
		t.Errorf("recycling wrong: p1=%d o1=%d p2=%d o2=%d", p1, o1, p2, o2)
	}
}

func TestFPIndependentFromInt(t *testing.T) {
	r := MustNew(96, 96)
	fd := isa.FPReg(4)
	newP, _ := r.Rename(fd)
	r.WriteFP(newP, 2.5)
	if r.ReadFP(newP) != 2.5 {
		t.Error("FP value lost")
	}
	if r.Lookup(isa.IntReg(4)) != 4 {
		t.Error("FP rename disturbed the integer map")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	r := MustNew(96, 96)
	r.WriteInt(0, 99)
	if r.ReadInt(0) != 0 {
		t.Error("physical register 0 was written")
	}
	defer func() {
		if recover() == nil {
			t.Error("renaming $zero did not panic")
		}
	}()
	r.Rename(isa.IntReg(0))
}

func TestArchAccessors(t *testing.T) {
	r := MustNew(96, 96)
	r.SetArchInt(29, 1234)
	if r.ArchInt(29) != 1234 {
		t.Error("SetArchInt/ArchInt broken")
	}
	p, _ := r.Rename(isa.IntReg(29))
	r.WriteInt(p, 999)
	if r.ArchInt(29) != 999 {
		t.Error("ArchInt does not follow the map")
	}
}

func TestActivityCounters(t *testing.T) {
	r := MustNew(96, 96)
	r.Lookup(isa.IntReg(1))
	r.Rename(isa.IntReg(2))
	r.ReadInt(0)
	r.WriteInt(40, 1)
	if r.MapReads != 1 || r.Renames != 1 || r.Reads != 1 || r.Writes != 1 {
		t.Errorf("counters: %d %d %d %d", r.MapReads, r.Renames, r.Reads, r.Writes)
	}
}

// Exhausting and refilling the free list across many rename/release rounds
// keeps the mapping consistent (mini stress test).
func TestRenameStress(t *testing.T) {
	r := MustNew(40, 40)
	type pending struct {
		d    isa.Reg
		newP int
		oldP int
	}
	var inflight []pending
	val := int32(0)
	for round := 0; round < 1000; round++ {
		d := isa.IntReg(uint8(2 + round%8))
		if r.CanRename(d) {
			newP, oldP := r.Rename(d)
			val++
			r.WriteInt(newP, val)
			inflight = append(inflight, pending{d, newP, oldP})
		}
		if len(inflight) > 4 {
			// Commit the oldest.
			p := inflight[0]
			inflight = inflight[1:]
			r.Release(isa.KindInt, p.oldP)
		}
	}
	// Every architectural register must resolve to a ready physical reg.
	for i := 0; i < isa.NumIntRegs; i++ {
		p := r.Lookup(isa.IntReg(uint8(i)))
		if !r.Ready(isa.KindInt, p) {
			t.Errorf("r%d maps to unready phys %d", i, p)
		}
	}
}

// Package rename implements MIPS-R10000-style register renaming: per-kind
// map tables from architectural to physical registers, free lists, the
// physical register files themselves, and per-register ready bits. Recovery
// uses ROB-walk rollback: every rename returns the previous mapping, which
// the pipeline stores in the ROB entry and replays in reverse on a squash.
package rename

import (
	"fmt"

	"reuseiq/internal/isa"
)

// RegFile bundles the rename state for both register kinds.
type RegFile struct {
	intVals  []int32
	fpVals   []float64
	intReady []bool
	fpReady  []bool
	intMap   [isa.NumIntRegs]int
	fpMap    [isa.NumFPRegs]int
	intFree  []int
	fpFree   []int

	// Activity counters for the power model.
	Renames  uint64 // map-table write operations
	MapReads uint64 // map-table read operations
	Reads    uint64 // physical register file reads
	Writes   uint64 // physical register file writes

	// scratch is reused by CheckInvariants, which runs every cycle under
	// the lockstep invariant checker and must not allocate.
	//reuse:transient scratch for CheckInvariants; never live across a cycle boundary
	scratch []bool
}

// New creates a rename unit with the given physical register counts. Each
// kind needs at least NumRegs+1 physical registers to make progress.
func New(intPhys, fpPhys int) (*RegFile, error) {
	if intPhys <= isa.NumIntRegs || fpPhys <= isa.NumFPRegs {
		return nil, fmt.Errorf("rename: need more physical than architectural registers (int %d, fp %d)", intPhys, fpPhys)
	}
	r := &RegFile{
		intVals:  make([]int32, intPhys),
		fpVals:   make([]float64, fpPhys),
		intReady: make([]bool, intPhys),
		fpReady:  make([]bool, fpPhys),
	}
	// Identity-map architectural registers onto the first physical
	// registers; they hold committed state and are ready.
	for i := 0; i < isa.NumIntRegs; i++ {
		r.intMap[i] = i
		r.intReady[i] = true
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		r.fpMap[i] = i
		r.fpReady[i] = true
	}
	for p := isa.NumIntRegs; p < intPhys; p++ {
		r.intFree = append(r.intFree, p)
	}
	for p := isa.NumFPRegs; p < fpPhys; p++ {
		r.fpFree = append(r.fpFree, p)
	}
	return r, nil
}

// MustNew is New that panics on error.
func MustNew(intPhys, fpPhys int) *RegFile {
	r, err := New(intPhys, fpPhys)
	if err != nil {
		panic(err)
	}
	return r
}

// Lookup returns the current physical register of architectural register reg.
func (r *RegFile) Lookup(reg isa.Reg) int {
	r.MapReads++
	if reg.Kind == isa.KindFP {
		return r.fpMap[reg.Num]
	}
	return r.intMap[reg.Num]
}

// FreeInt and FreeFP report free-list occupancy.
func (r *RegFile) FreeInt() int { return len(r.intFree) }
func (r *RegFile) FreeFP() int  { return len(r.fpFree) }

// CanRename reports whether a destination of the given kind can be renamed.
func (r *RegFile) CanRename(reg isa.Reg) bool {
	if reg.Kind == isa.KindFP {
		return len(r.fpFree) > 0
	}
	return len(r.intFree) > 0
}

// Rename allocates a new physical register for destination reg, updates the
// map table, and clears the new register's ready bit. It returns the new and
// previous physical registers. The caller must have checked CanRename.
//
//reuse:hotpath
func (r *RegFile) Rename(reg isa.Reg) (newPhys, oldPhys int) {
	r.Renames++
	if reg.Kind == isa.KindFP {
		newPhys = r.fpFree[len(r.fpFree)-1]
		r.fpFree = r.fpFree[:len(r.fpFree)-1]
		oldPhys = r.fpMap[reg.Num]
		r.fpMap[reg.Num] = newPhys
		r.fpReady[newPhys] = false
		return newPhys, oldPhys
	}
	if reg.IsZero() {
		panic("rename: $zero used as destination")
	}
	newPhys = r.intFree[len(r.intFree)-1]
	r.intFree = r.intFree[:len(r.intFree)-1]
	oldPhys = r.intMap[reg.Num]
	r.intMap[reg.Num] = newPhys
	r.intReady[newPhys] = false
	return newPhys, oldPhys
}

// Rollback undoes one Rename during squash recovery. Calls must occur in
// reverse rename order.
//
//reuse:hotpath
func (r *RegFile) Rollback(reg isa.Reg, newPhys, oldPhys int) {
	if reg.Kind == isa.KindFP {
		if r.fpMap[reg.Num] != newPhys {
			//reuse:allow-alloc invariant-violation panic path, never taken in a correct run
			panic(fmt.Sprintf("rename: out-of-order rollback of %v (map %d, new %d)", reg, r.fpMap[reg.Num], newPhys))
		}
		r.fpMap[reg.Num] = oldPhys
		r.fpFree = append(r.fpFree, newPhys)
		return
	}
	if r.intMap[reg.Num] != newPhys {
		//reuse:allow-alloc invariant-violation panic path, never taken in a correct run
		panic(fmt.Sprintf("rename: out-of-order rollback of %v (map %d, new %d)", reg, r.intMap[reg.Num], newPhys))
	}
	r.intMap[reg.Num] = oldPhys
	r.intFree = append(r.intFree, newPhys)
}

// Release frees the previous physical register when an instruction commits.
//
//reuse:hotpath
func (r *RegFile) Release(kind isa.RegKind, oldPhys int) {
	if kind == isa.KindFP {
		r.fpFree = append(r.fpFree, oldPhys)
		return
	}
	r.intFree = append(r.intFree, oldPhys)
}

// Ready reports whether physical register p of the given kind holds a value.
func (r *RegFile) Ready(kind isa.RegKind, p int) bool {
	if kind == isa.KindFP {
		return r.fpReady[p]
	}
	return r.intReady[p]
}

// ReadInt returns the value of integer physical register p.
func (r *RegFile) ReadInt(p int) int32 {
	r.Reads++
	return r.intVals[p]
}

// ReadFP returns the value of FP physical register p.
func (r *RegFile) ReadFP(p int) float64 {
	r.Reads++
	return r.fpVals[p]
}

// WriteInt writes integer physical register p and marks it ready.
func (r *RegFile) WriteInt(p int, v int32) {
	r.Writes++
	if p == 0 {
		return // the physical home of $zero is immutable
	}
	r.intVals[p] = v
	r.intReady[p] = true
}

// WriteFP writes FP physical register p and marks it ready.
func (r *RegFile) WriteFP(p int, v float64) {
	r.Writes++
	r.fpVals[p] = v
	r.fpReady[p] = true
}

// PeekInt returns the value of integer physical register p without charging
// a register-file read to the power model (verification use only).
func (r *RegFile) PeekInt(p int) int32 { return r.intVals[p] }

// PeekFP returns the value of FP physical register p without charging a
// read to the power model (verification use only).
func (r *RegFile) PeekFP(p int) float64 { return r.fpVals[p] }

// CheckInvariants verifies map-table/free-list consistency for both register
// kinds: a free list must not contain duplicates, and no physical register
// may be simultaneously mapped and free. (Physical registers held by
// in-flight ROB entries as previous mappings are legitimately in neither
// set.) It returns a descriptive error at the first violation.
func (r *RegFile) CheckInvariants() error {
	if n := max(len(r.intVals), len(r.fpVals)); len(r.scratch) < n {
		r.scratch = make([]bool, n)
	}
	check := func(kind string, mapped []int, free []int, phys int) error {
		seen := r.scratch[:phys]
		for i := range seen {
			seen[i] = false
		}
		for _, p := range free {
			if p < 0 || p >= phys {
				return fmt.Errorf("rename: %s free list holds out-of-range p%d", kind, p)
			}
			if seen[p] {
				return fmt.Errorf("rename: %s free list holds p%d twice", kind, p)
			}
			seen[p] = true
		}
		for a, p := range mapped {
			if p < 0 || p >= phys {
				return fmt.Errorf("rename: %s map of a%d holds out-of-range p%d", kind, a, p)
			}
			if seen[p] {
				return fmt.Errorf("rename: %s p%d is both mapped (a%d) and free", kind, p, a)
			}
		}
		return nil
	}
	if err := check("int", r.intMap[:], r.intFree, len(r.intVals)); err != nil {
		return err
	}
	return check("fp", r.fpMap[:], r.fpFree, len(r.fpVals))
}

// ArchInt returns the committed architectural value of integer register n
// (through the current map; call only when the pipeline is drained).
func (r *RegFile) ArchInt(n int) int32 { return r.intVals[r.intMap[n]] }

// ArchFP returns the committed architectural value of FP register n.
func (r *RegFile) ArchFP(n int) float64 { return r.fpVals[r.fpMap[n]] }

// SetArchInt initializes an architectural integer register before a run.
func (r *RegFile) SetArchInt(n int, v int32) { r.intVals[r.intMap[n]] = v }

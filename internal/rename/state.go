// Snapshot support: an exported state image of the rename unit with a
// validating importer. Free-list order is part of the image — Rename pops
// from the stack top, so bit-identical continuation requires the exact stack.
package rename

import (
	"fmt"

	"reuseiq/internal/isa"
)

// State is the serializable image of a RegFile.
type State struct {
	//reuse:nodigest architectural value; the digest hashes microarchitectural structure, values are extrapolated
	IntVals []int32
	//reuse:nodigest architectural value; the digest hashes microarchitectural structure, values are extrapolated
	FPVals   []float64
	IntReady []bool
	FPReady  []bool
	IntMap   []int // len NumIntRegs
	FPMap    []int // len NumFPRegs
	IntFree  []int // stack, bottom first
	FPFree   []int

	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	Renames, MapReads, Reads, Writes uint64
}

// ExportState returns a deep copy of the rename unit's state.
func (r *RegFile) ExportState() State {
	return State{
		IntVals:  append([]int32(nil), r.intVals...),
		FPVals:   append([]float64(nil), r.fpVals...),
		IntReady: append([]bool(nil), r.intReady...),
		FPReady:  append([]bool(nil), r.fpReady...),
		IntMap:   append([]int(nil), r.intMap[:]...),
		FPMap:    append([]int(nil), r.fpMap[:]...),
		IntFree:  append([]int(nil), r.intFree...),
		FPFree:   append([]int(nil), r.fpFree...),
		Renames:  r.Renames, MapReads: r.MapReads, Reads: r.Reads, Writes: r.Writes,
	}
}

// ImportState overwrites the rename unit with st after validating it against
// the unit's physical register counts. Map/free-list consistency is verified
// with CheckInvariants before anything is applied.
func (r *RegFile) ImportState(st State) error {
	intPhys, fpPhys := len(r.intVals), len(r.fpVals)
	if len(st.IntVals) != intPhys || len(st.IntReady) != intPhys ||
		len(st.FPVals) != fpPhys || len(st.FPReady) != fpPhys {
		return fmt.Errorf("rename: state sized %d int / %d fp, unit has %d / %d",
			len(st.IntVals), len(st.FPVals), intPhys, fpPhys)
	}
	if len(st.IntMap) != isa.NumIntRegs || len(st.FPMap) != isa.NumFPRegs {
		return fmt.Errorf("rename: state map tables sized %d / %d", len(st.IntMap), len(st.FPMap))
	}
	if len(st.IntFree) > intPhys || len(st.FPFree) > fpPhys {
		return fmt.Errorf("rename: state free lists sized %d / %d exceed %d / %d",
			len(st.IntFree), len(st.FPFree), intPhys, fpPhys)
	}
	check := func(kind string, vals []int, phys int) error {
		for i, p := range vals {
			if p < 0 || p >= phys {
				return fmt.Errorf("rename: state %s[%d] = p%d, want [0,%d)", kind, i, p, phys)
			}
		}
		return nil
	}
	if err := check("intMap", st.IntMap, intPhys); err != nil {
		return err
	}
	if err := check("fpMap", st.FPMap, fpPhys); err != nil {
		return err
	}
	if err := check("intFree", st.IntFree, intPhys); err != nil {
		return err
	}
	if err := check("fpFree", st.FPFree, fpPhys); err != nil {
		return err
	}
	copy(r.intVals, st.IntVals)
	copy(r.fpVals, st.FPVals)
	copy(r.intReady, st.IntReady)
	copy(r.fpReady, st.FPReady)
	copy(r.intMap[:], st.IntMap)
	copy(r.fpMap[:], st.FPMap)
	r.intFree = append(r.intFree[:0], st.IntFree...)
	r.fpFree = append(r.fpFree[:0], st.FPFree...)
	r.Renames, r.MapReads, r.Reads, r.Writes = st.Renames, st.MapReads, st.Reads, st.Writes
	return r.CheckInvariants()
}

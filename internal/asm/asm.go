// Package asm implements a two-pass assembler for the ISA's textual assembly
// language. It supports labels with forward references, a text and a data
// segment, common data directives, and a small set of pseudo-instructions
// (la, li, move, b, blt/bge/bgt/ble) that expand to real instructions.
//
// Syntax example:
//
//	        .data
//	a:      .space 4000
//	n:      .word 500
//
//	        .text
//	main:   la   $r2, a
//	        lw   $r3, n_abs($zero)    # or: la $r4, n ; lw $r3, 0($r4)
//	loop:   addi $r3, $r3, -1
//	        bne  $r3, $zero, loop
//	        halt
//
// Comments start with '#' or ';' and run to end of line. The assembler
// temporary register $at ($r1) is clobbered by pseudo branch expansions.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"reuseiq/internal/isa"
	"reuseiq/internal/prog"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble translates source into a loaded program image.
func Assemble(source string) (*prog.Program, error) {
	a := &assembler{
		symbols: map[string]uint32{},
		dataPtr: prog.DataBase,
	}
	if err := a.pass1(source); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	p, err := prog.New(a.text)
	if err != nil {
		return nil, err
	}
	p.Data = a.data
	p.Symbols = a.symbols
	if entry, ok := a.symbols["main"]; ok {
		p.Entry = entry
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error, for tests and tables of
// fixed programs.
func MustAssemble(source string) *prog.Program {
	p, err := Assemble(source)
	if err != nil {
		panic(err)
	}
	return p
}

type stmt struct {
	line     int
	mnemonic string
	operands []string
	addr     uint32 // assigned in pass 1
}

type assembler struct {
	symbols map[string]uint32
	stmts   []stmt
	text    []isa.Inst
	data    *prog.Memory
	dataPtr uint32
}

const atReg = 1 // $at, assembler temporary

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// pass1 tokenizes, assigns addresses to labels and statements, and lays out
// the data segment.
func (a *assembler) pass1(source string) error {
	a.data = prog.NewMemory()
	textPtr := uint32(prog.TextBase)
	inText := true
	for lineNo, raw := range strings.Split(source, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for line != "" {
			// Peel off leading labels.
			colon := strings.Index(line, ":")
			if colon >= 0 && !strings.ContainsAny(line[:colon], " \t,$(") {
				name := line[:colon]
				if !validLabel(name) {
					return errf(lineNo+1, "invalid label %q", name)
				}
				if _, dup := a.symbols[name]; dup {
					return errf(lineNo+1, "duplicate label %q", name)
				}
				if inText {
					a.symbols[name] = textPtr
				} else {
					a.symbols[name] = a.dataPtr
				}
				line = strings.TrimSpace(line[colon+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		fields := splitOperands(line)
		mnemonic := strings.ToLower(fields[0])
		operands := fields[1:]

		if strings.HasPrefix(mnemonic, ".") {
			switch mnemonic {
			case ".text":
				inText = true
			case ".data":
				inText = false
			case ".global", ".globl", ".ent", ".end":
				// accepted and ignored
			case ".word":
				for _, op := range operands {
					v, err := parseInt(op, lineNo+1)
					if err != nil {
						return err
					}
					a.data.WriteI32(a.dataPtr, int32(v))
					a.dataPtr += 4
				}
			case ".double":
				for _, op := range operands {
					f, err := strconv.ParseFloat(op, 64)
					if err != nil {
						return errf(lineNo+1, "bad double %q", op)
					}
					a.data.WriteF64(a.dataPtr, f)
					a.dataPtr += 8
				}
			case ".space":
				if len(operands) != 1 {
					return errf(lineNo+1, ".space wants one operand")
				}
				n, err := parseInt(operands[0], lineNo+1)
				if err != nil {
					return err
				}
				if n < 0 {
					return errf(lineNo+1, ".space with negative size %d", n)
				}
				a.dataPtr += uint32(n)
			case ".align":
				if len(operands) != 1 {
					return errf(lineNo+1, ".align wants one operand")
				}
				n, err := parseInt(operands[0], lineNo+1)
				if err != nil {
					return err
				}
				align := uint32(1) << uint(n)
				a.dataPtr = (a.dataPtr + align - 1) &^ (align - 1)
			default:
				return errf(lineNo+1, "unknown directive %s", mnemonic)
			}
			continue
		}

		if !inText {
			return errf(lineNo+1, "instruction %q in data segment", mnemonic)
		}
		n, err := a.expansionSize(mnemonic, operands, lineNo+1)
		if err != nil {
			return err
		}
		a.stmts = append(a.stmts, stmt{line: lineNo + 1, mnemonic: mnemonic, operands: operands, addr: textPtr})
		textPtr += uint32(n) * 4
	}
	return nil
}

// expansionSize returns how many machine instructions a statement assembles
// to (pseudo-instructions may expand to several).
func (a *assembler) expansionSize(mnemonic string, operands []string, line int) (int, error) {
	switch mnemonic {
	case "la":
		return 2, nil
	case "li":
		if len(operands) != 2 {
			return 0, errf(line, "li wants 2 operands")
		}
		v, err := parseInt(operands[1], line)
		if err != nil {
			return 0, err
		}
		if v >= math.MinInt16 && v <= math.MaxInt16 {
			return 1, nil
		}
		return 2, nil
	case "move", "b", "neg":
		return 1, nil
	case "blt", "bge", "bgt", "ble":
		return 2, nil
	}
	if _, ok := isa.OpByName(mnemonic); !ok {
		return 0, errf(line, "unknown mnemonic %q", mnemonic)
	}
	return 1, nil
}

// pass2 assembles every statement into machine instructions.
func (a *assembler) pass2() error {
	for _, s := range a.stmts {
		insts, err := a.assembleStmt(s)
		if err != nil {
			return err
		}
		a.text = append(a.text, insts...)
	}
	return nil
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits "op a, b, c" into ["op","a","b","c"].
func splitOperands(line string) []string {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return []string{line}
	}
	head := line[:i]
	rest := strings.TrimSpace(line[i:])
	if rest == "" {
		return []string{head}
	}
	parts := strings.Split(rest, ",")
	out := make([]string, 0, 1+len(parts))
	out = append(out, head)
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseInt(s string, line int) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, errf(line, "bad integer %q", s)
	}
	return v, nil
}

package asm

import (
	"strings"
	"testing"

	"reuseiq/internal/isa"
	"reuseiq/internal/prog"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		.text
main:	addi $r2, $zero, 5
	add  $r3, $r2, $r2
	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 3 {
		t.Fatalf("got %d instructions", len(p.Text))
	}
	want := []isa.Inst{
		{Op: isa.OpADDI, Rt: 2, Rs: 0, Imm: 5},
		{Op: isa.OpADD, Rd: 3, Rs: 2, Rt: 2},
		{Op: isa.OpHALT},
	}
	for i, w := range want {
		if p.Text[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, p.Text[i], w)
		}
	}
	if p.Entry != prog.TextBase {
		t.Errorf("entry = 0x%x", p.Entry)
	}
	if p.Symbols["main"] != prog.TextBase {
		t.Errorf("main = 0x%x", p.Symbols["main"])
	}
}

func TestAssembleBranchTargets(t *testing.T) {
	p, err := Assemble(`
loop:	addi $r2, $r2, -1
	bne  $r2, $zero, loop
	beq  $r2, $zero, done
	nop
done:	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	// bne at index 1 targeting index 0: offset = (0 - 1 - 1) = -2.
	if p.Text[1].Imm != -2 {
		t.Errorf("backward branch imm = %d, want -2", p.Text[1].Imm)
	}
	// beq at index 2 targeting index 4: offset = 4 - 2 - 1 = 1.
	if p.Text[2].Imm != 1 {
		t.Errorf("forward branch imm = %d, want 1", p.Text[2].Imm)
	}
}

func TestAssembleDataSegment(t *testing.T) {
	p, err := Assemble(`
	.data
a:	.word 1, 2, -3
b:	.double 1.5
c:	.space 16
d:	.word 0x10
	.text
	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	aAddr := p.Symbols["a"]
	if aAddr != prog.DataBase {
		t.Errorf("a = 0x%x", aAddr)
	}
	if got := p.Data.ReadI32(aAddr + 8); got != -3 {
		t.Errorf("a[2] = %d", got)
	}
	bAddr := p.Symbols["b"]
	if bAddr != aAddr+12 {
		t.Errorf("b = 0x%x", bAddr)
	}
	if got := p.Data.ReadF64(bAddr); got != 1.5 {
		t.Errorf("b = %v", got)
	}
	dAddr := p.Symbols["d"]
	if dAddr != bAddr+8+16 {
		t.Errorf("d = 0x%x", dAddr)
	}
	if got := p.Data.ReadI32(dAddr); got != 16 {
		t.Errorf("d = %d", got)
	}
}

func TestAssembleAlign(t *testing.T) {
	p, err := Assemble(`
	.data
	.space 3
	.align 3
x:	.double 2.0
	.text
	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if x := p.Symbols["x"]; x%8 != 0 {
		t.Errorf("x = 0x%x not 8-aligned", x)
	}
}

func TestAssemblePseudoLA(t *testing.T) {
	p, err := Assemble(`
	.data
buf:	.space 64
	.text
	la $r4, buf
	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 3 {
		t.Fatalf("la did not expand to 2: %d total", len(p.Text))
	}
	if p.Text[0].Op != isa.OpLUI || p.Text[1].Op != isa.OpORI {
		t.Fatalf("la expansion = %v, %v", p.Text[0].Op, p.Text[1].Op)
	}
	addr := uint32(p.Text[0].Imm)<<16 | uint32(p.Text[1].Imm)
	if addr != p.Symbols["buf"] {
		t.Errorf("la materializes 0x%x, want 0x%x", addr, p.Symbols["buf"])
	}
}

func TestAssemblePseudoLI(t *testing.T) {
	p := MustAssemble(`
	li $r2, 42
	li $r3, -1
	li $r4, 0x12345678
	halt
	`)
	if len(p.Text) != 5 {
		t.Fatalf("li sizes wrong: %d instructions", len(p.Text))
	}
	if p.Text[0].Op != isa.OpADDI || p.Text[0].Imm != 42 {
		t.Errorf("small li = %+v", p.Text[0])
	}
	if p.Text[2].Op != isa.OpLUI || p.Text[3].Op != isa.OpORI {
		t.Errorf("big li = %v, %v", p.Text[2].Op, p.Text[3].Op)
	}
}

func TestAssemblePseudoCmpBranches(t *testing.T) {
	p := MustAssemble(`
start:	blt $r2, $r3, start
	bge $r2, $r3, start
	bgt $r2, $r3, start
	ble $r2, $r3, start
	halt
	`)
	if len(p.Text) != 9 {
		t.Fatalf("expansion count = %d", len(p.Text))
	}
	// blt: slt $at,r2,r3 ; bne $at,$zero,start
	if p.Text[0].Op != isa.OpSLT || p.Text[0].Rd != 1 {
		t.Errorf("blt slt = %+v", p.Text[0])
	}
	if p.Text[1].Op != isa.OpBNE || p.Text[1].BranchTarget(prog.Addr(1)) != prog.TextBase {
		t.Errorf("blt branch = %+v", p.Text[1])
	}
	// bgt swaps operands.
	if p.Text[4].Rs != 3 || p.Text[4].Rt != 2 {
		t.Errorf("bgt slt operands = %+v", p.Text[4])
	}
	if p.Text[3].Op != isa.OpBEQ || p.Text[7].Op != isa.OpBEQ {
		t.Error("bge/ble must branch on beq")
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p := MustAssemble(`
	.data
v:	.word 9
	.text
	la $r5, v
	lw $r2, 0($r5)
	lw $r3, 4($r5)
	lw $r4, -4($r5)
	sw $r2, ($r5)
	l.d $f2, 8($r5)
	s.d $f2, 16($r5)
	halt
	`)
	lw := p.Text[2]
	if lw.Op != isa.OpLW || lw.Rs != 5 || lw.Rt != 2 || lw.Imm != 0 {
		t.Errorf("lw = %+v", lw)
	}
	if p.Text[4].Imm != -4 {
		t.Errorf("negative offset = %+v", p.Text[4])
	}
	if p.Text[5].Imm != 0 {
		t.Errorf("empty offset = %+v", p.Text[5])
	}
	if p.Text[6].Op != isa.OpLD || p.Text[6].Rt != 2 {
		t.Errorf("l.d = %+v", p.Text[6])
	}
}

func TestAssembleFPOps(t *testing.T) {
	p := MustAssemble(`
	add.d $f1, $f2, $f3
	neg.d $f4, $f5
	cvt.d.w $f6, $r7
	cvt.w.d $r8, $f9
	c.lt.d $r10, $f11, $f12
	halt
	`)
	if in := p.Text[0]; in.Rd != 1 || in.Rs != 2 || in.Rt != 3 {
		t.Errorf("add.d = %+v", in)
	}
	if in := p.Text[2]; in.Op != isa.OpCVTIF || in.Rd != 6 || in.Rs != 7 {
		t.Errorf("cvt.d.w = %+v", in)
	}
	if in := p.Text[3]; in.Op != isa.OpCVTFI || in.Rd != 8 || in.Rs != 9 {
		t.Errorf("cvt.w.d = %+v", in)
	}
	if in := p.Text[4]; in.Op != isa.OpCLTD || in.Rd != 10 || in.Rs != 11 || in.Rt != 12 {
		t.Errorf("c.lt.d = %+v", in)
	}
}

func TestAssembleJumps(t *testing.T) {
	p := MustAssemble(`
main:	jal func
	halt
func:	jr $ra
	`)
	if p.Text[0].Op != isa.OpJAL || p.Text[0].Target != prog.Addr(2) {
		t.Errorf("jal = %+v", p.Text[0])
	}
	if p.Text[2].Op != isa.OpJR || p.Text[2].Rs != isa.RegRA {
		t.Errorf("jr = %+v", p.Text[2])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "frobnicate $r1, $r2"},
		{"undefined label", "j nowhere"},
		{"duplicate label", "x: nop\nx: nop"},
		{"bad register", "add $r99, $r1, $r2"},
		{"bad fp register", "add.d $r1, $f2, $f3"},
		{"wrong operand count", "add $r1, $r2"},
		{"inst in data", ".data\nadd $r1, $r2, $r3"},
		{"bad directive", ".frob 3"},
		{"negative space", ".data\n.space -4"},
		{"imm out of range", "addi $r1, $r2, 40000"},
		{"bad int", "addi $r1, $r2, zork"},
		{"bad double", ".data\n.double zork"},
		{"label char", "1bad: nop"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src); err == nil {
				t.Errorf("assembled %q without error", c.src)
			}
		})
	}
}

func TestAssembleErrorHasLine(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus $r1\n")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q lacks line number", err)
	}
}

func TestAssembleComments(t *testing.T) {
	p := MustAssemble(`
	# full-line comment
	nop        # trailing comment
	nop        ; alt comment
	halt
	`)
	if len(p.Text) != 3 {
		t.Errorf("comments miscounted: %d instructions", len(p.Text))
	}
}

func TestAssembleEncodesEverything(t *testing.T) {
	// prog.New encodes each instruction; a successful Assemble implies all
	// emitted instructions are encodable. Verify words round-trip.
	p := MustAssemble(`
	.data
v:	.space 8
	.text
	la $r5, v
	li $r6, 100000
	move $r7, $r6
	blt $r6, $r7, out
	add.d $f1, $f2, $f3
out:	halt
	`)
	for i, w := range p.Words {
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("word %d: %v", i, err)
		}
		w2, err := isa.Encode(in)
		if err != nil || w2 != w {
			t.Fatalf("word %d does not round-trip: 0x%x -> 0x%x (%v)", i, w, w2, err)
		}
	}
}

package asm

import (
	"fmt"
	"strings"
	"testing"

	"reuseiq/internal/progen"
)

// The disassembler's output must be valid assembler input: for arbitrary
// generated programs, assemble -> disassemble -> re-assemble produces the
// identical machine words. This pins the two syntaxes together.
func TestDisasmReassemblesIdentically(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p, err := Assemble(progen.Generate(seed, progen.DefaultConfig()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var b strings.Builder
		b.WriteString("\t.text\n")
		for i, in := range p.Text {
			fmt.Fprintf(&b, "\t%s\n", in.Disasm(uint32(0x0040_0000+4*i)))
		}
		p2, err := Assemble(b.String())
		if err != nil {
			t.Fatalf("seed %d: disassembly does not re-assemble: %v", seed, err)
		}
		if len(p2.Text) != len(p.Text) {
			t.Fatalf("seed %d: %d instructions round-tripped to %d", seed, len(p.Text), len(p2.Text))
		}
		for i := range p.Words {
			if p.Words[i] != p2.Words[i] {
				t.Fatalf("seed %d inst %d: 0x%08x -> %q -> 0x%08x",
					seed, i, p.Words[i], p.Text[i].Disasm(uint32(0x0040_0000+4*i)), p2.Words[i])
			}
		}
	}
}

// Hand-picked corner cases for the same round trip.
func TestDisasmRoundTripCorners(t *testing.T) {
	src := `
	.text
	add $r3, $r1, $r2
	sll $r2, $r3, 31
	srav $r4, $r5, $r6
	addi $r2, $r3, -32768
	andi $r2, $r3, 65535
	lui $r2, 4096
	lw $r4, -4($r5)
	s.d $f2, 16($r5)
	beq $r1, $r2, main
	blez $r1, main
main:	jal main
	jalr $r31, $r4
	jr $ra
	add.d $f1, $f2, $f3
	neg.d $f4, $f5
	cvt.d.w $f6, $r7
	cvt.w.d $r8, $f9
	c.le.d $r10, $f11, $f12
	nop
	halt
	`
	p := MustAssemble(src)
	var b strings.Builder
	b.WriteString("\t.text\n")
	for i, in := range p.Text {
		fmt.Fprintf(&b, "\t%s\n", in.Disasm(uint32(0x0040_0000+4*i)))
	}
	p2, err := Assemble(b.String())
	if err != nil {
		t.Fatalf("re-assembly failed: %v\n%s", err, b.String())
	}
	for i := range p.Words {
		if p.Words[i] != p2.Words[i] {
			t.Errorf("inst %d: 0x%08x != 0x%08x (%s)", i, p.Words[i], p2.Words[i],
				p.Text[i].Disasm(uint32(0x0040_0000+4*i)))
		}
	}
}

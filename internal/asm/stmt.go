package asm

import (
	"math"
	"strconv"
	"strings"

	"reuseiq/internal/isa"
)

// assembleStmt translates one statement (real or pseudo) into machine
// instructions, resolving symbols.
func (a *assembler) assembleStmt(s stmt) ([]isa.Inst, error) {
	switch s.mnemonic {
	case "la":
		return a.expandLA(s)
	case "li":
		return a.expandLI(s)
	case "move":
		if len(s.operands) != 2 {
			return nil, errf(s.line, "move wants 2 operands")
		}
		rd, err := parseIntReg(s.operands[0], s.line)
		if err != nil {
			return nil, err
		}
		rs, err := parseIntReg(s.operands[1], s.line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpADD, Rd: rd, Rs: rs, Rt: isa.RegZero}}, nil
	case "neg":
		if len(s.operands) != 2 {
			return nil, errf(s.line, "neg wants 2 operands")
		}
		rd, err := parseIntReg(s.operands[0], s.line)
		if err != nil {
			return nil, err
		}
		rs, err := parseIntReg(s.operands[1], s.line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpSUB, Rd: rd, Rs: isa.RegZero, Rt: rs}}, nil
	case "b":
		if len(s.operands) != 1 {
			return nil, errf(s.line, "b wants 1 operand")
		}
		tgt, err := a.resolve(s.operands[0], s.line)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJ, Target: tgt}}, nil
	case "blt", "bge", "bgt", "ble":
		return a.expandCmpBranch(s)
	}

	op, _ := isa.OpByName(s.mnemonic)
	in, err := a.assembleReal(op, s)
	if err != nil {
		return nil, err
	}
	return []isa.Inst{in}, nil
}

// expandLA assembles "la $rd, symbol[+off]" as lui+ori.
func (a *assembler) expandLA(s stmt) ([]isa.Inst, error) {
	if len(s.operands) != 2 {
		return nil, errf(s.line, "la wants 2 operands")
	}
	rd, err := parseIntReg(s.operands[0], s.line)
	if err != nil {
		return nil, err
	}
	addr, err := a.resolve(s.operands[1], s.line)
	if err != nil {
		return nil, err
	}
	return []isa.Inst{
		{Op: isa.OpLUI, Rt: rd, Imm: int32(addr >> 16)},
		{Op: isa.OpORI, Rt: rd, Rs: rd, Imm: int32(addr & 0xffff)},
	}, nil
}

// expandLI assembles "li $rd, imm32" as addi or lui+ori.
func (a *assembler) expandLI(s stmt) ([]isa.Inst, error) {
	rd, err := parseIntReg(s.operands[0], s.line)
	if err != nil {
		return nil, err
	}
	v, err := parseInt(s.operands[1], s.line)
	if err != nil {
		return nil, err
	}
	if v < math.MinInt32 || v > math.MaxUint32 {
		return nil, errf(s.line, "li constant %d out of 32-bit range", v)
	}
	if v >= math.MinInt16 && v <= math.MaxInt16 {
		return []isa.Inst{{Op: isa.OpADDI, Rt: rd, Rs: isa.RegZero, Imm: int32(v)}}, nil
	}
	u := uint32(v)
	return []isa.Inst{
		{Op: isa.OpLUI, Rt: rd, Imm: int32(u >> 16)},
		{Op: isa.OpORI, Rt: rd, Rs: rd, Imm: int32(u & 0xffff)},
	}, nil
}

// expandCmpBranch assembles blt/bge/bgt/ble as slt + conditional branch,
// clobbering $at.
func (a *assembler) expandCmpBranch(s stmt) ([]isa.Inst, error) {
	if len(s.operands) != 3 {
		return nil, errf(s.line, "%s wants 3 operands", s.mnemonic)
	}
	rs, err := parseIntReg(s.operands[0], s.line)
	if err != nil {
		return nil, err
	}
	rt, err := parseIntReg(s.operands[1], s.line)
	if err != nil {
		return nil, err
	}
	tgt, err := a.resolve(s.operands[2], s.line)
	if err != nil {
		return nil, err
	}
	// blt: slt at,rs,rt; bne at,0  — bge: slt at,rs,rt; beq at,0
	// bgt: slt at,rt,rs; bne at,0  — ble: slt at,rt,rs; beq at,0
	sltRs, sltRt := rs, rt
	brOp := isa.OpBNE
	switch s.mnemonic {
	case "bge":
		brOp = isa.OpBEQ
	case "bgt":
		sltRs, sltRt = rt, rs
	case "ble":
		sltRs, sltRt = rt, rs
		brOp = isa.OpBEQ
	}
	branchPC := s.addr + 4 // the branch is the second instruction
	off, err := branchOffset(branchPC, tgt, s.line)
	if err != nil {
		return nil, err
	}
	return []isa.Inst{
		{Op: isa.OpSLT, Rd: atReg, Rs: sltRs, Rt: sltRt},
		{Op: brOp, Rs: atReg, Rt: isa.RegZero, Imm: off},
	}, nil
}

// assembleReal assembles a non-pseudo instruction.
func (a *assembler) assembleReal(op isa.Op, s stmt) (isa.Inst, error) {
	info := op.Info()
	ops := s.operands
	need := func(n int) error {
		if len(ops) != n {
			return errf(s.line, "%s wants %d operands, got %d", info.Name, n, len(ops))
		}
		return nil
	}
	switch op {
	case isa.OpNOP, isa.OpHALT:
		if err := need(0); err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op}, nil

	case isa.OpJ, isa.OpJAL:
		if err := need(1); err != nil {
			return isa.Inst{}, err
		}
		tgt, err := a.resolve(ops[0], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Target: tgt}, nil

	case isa.OpJR:
		if err := need(1); err != nil {
			return isa.Inst{}, err
		}
		rs, err := parseIntReg(ops[0], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rs: rs}, nil

	case isa.OpJALR:
		// jalr $rs  or  jalr $rd, $rs
		switch len(ops) {
		case 1:
			rs, err := parseIntReg(ops[0], s.line)
			if err != nil {
				return isa.Inst{}, err
			}
			return isa.Inst{Op: op, Rd: isa.RegRA, Rs: rs}, nil
		case 2:
			rd, err := parseIntReg(ops[0], s.line)
			if err != nil {
				return isa.Inst{}, err
			}
			rs, err := parseIntReg(ops[1], s.line)
			if err != nil {
				return isa.Inst{}, err
			}
			return isa.Inst{Op: op, Rd: rd, Rs: rs}, nil
		}
		return isa.Inst{}, errf(s.line, "jalr wants 1 or 2 operands")

	case isa.OpLUI:
		if err := need(2); err != nil {
			return isa.Inst{}, err
		}
		rt, err := parseIntReg(ops[0], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, err := parseInt(ops[1], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rt: rt, Imm: int32(imm)}, nil
	}

	switch info.Class {
	case isa.ClassBranch:
		n := 2
		if info.ReadsRt {
			n = 3
		}
		if err := need(n); err != nil {
			return isa.Inst{}, err
		}
		rs, err := parseIntReg(ops[0], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		var rt uint8
		if info.ReadsRt {
			rt, err = parseIntReg(ops[1], s.line)
			if err != nil {
				return isa.Inst{}, err
			}
		}
		tgt, err := a.resolve(ops[n-1], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		off, err := branchOffset(s.addr, tgt, s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rs: rs, Rt: rt, Imm: off}, nil

	case isa.ClassLoad, isa.ClassStore:
		if err := need(2); err != nil {
			return isa.Inst{}, err
		}
		var rt uint8
		var err error
		if info.RtFP || info.DestFP {
			rt, err = parseFPReg(ops[0], s.line)
		} else {
			rt, err = parseIntReg(ops[0], s.line)
		}
		if err != nil {
			return isa.Inst{}, err
		}
		base, off, err := a.parseMem(ops[1], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rs: base, Rt: rt, Imm: off}, nil
	}

	if info.Fmt == isa.FmtF {
		// fd, fs[, ft]; source/dest kinds vary per op.
		n := 2
		if info.ReadsRt {
			n = 3
		}
		if err := need(n); err != nil {
			return isa.Inst{}, err
		}
		var rd, rs, rt uint8
		var err error
		if info.DestFP {
			rd, err = parseFPReg(ops[0], s.line)
		} else {
			rd, err = parseIntReg(ops[0], s.line)
		}
		if err != nil {
			return isa.Inst{}, err
		}
		if info.RsFP {
			rs, err = parseFPReg(ops[1], s.line)
		} else {
			rs, err = parseIntReg(ops[1], s.line)
		}
		if err != nil {
			return isa.Inst{}, err
		}
		if info.ReadsRt {
			rt, err = parseFPReg(ops[2], s.line)
			if err != nil {
				return isa.Inst{}, err
			}
		}
		return isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt}, nil
	}

	if info.UsesShamt {
		if err := need(3); err != nil {
			return isa.Inst{}, err
		}
		rd, err := parseIntReg(ops[0], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		rt, err := parseIntReg(ops[1], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		sh, err := parseInt(ops[2], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rd: rd, Rt: rt, Imm: int32(sh)}, nil
	}

	if info.Fmt == isa.FmtI {
		if err := need(3); err != nil {
			return isa.Inst{}, err
		}
		rt, err := parseIntReg(ops[0], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		rs, err := parseIntReg(ops[1], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, err := parseInt(ops[2], s.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rt: rt, Rs: rs, Imm: int32(imm)}, nil
	}

	// Plain 3-register R-format. Variable shifts take (rd, rt, rs).
	if err := need(3); err != nil {
		return isa.Inst{}, err
	}
	rd, err := parseIntReg(ops[0], s.line)
	if err != nil {
		return isa.Inst{}, err
	}
	second, err := parseIntReg(ops[1], s.line)
	if err != nil {
		return isa.Inst{}, err
	}
	third, err := parseIntReg(ops[2], s.line)
	if err != nil {
		return isa.Inst{}, err
	}
	switch op {
	case isa.OpSLLV, isa.OpSRLV, isa.OpSRAV:
		return isa.Inst{Op: op, Rd: rd, Rt: second, Rs: third}, nil
	}
	return isa.Inst{Op: op, Rd: rd, Rs: second, Rt: third}, nil
}

// resolve turns a label (optionally label+const) or numeric literal into an
// absolute address/value.
func (a *assembler) resolve(sym string, line int) (uint32, error) {
	if v, err := strconv.ParseInt(sym, 0, 64); err == nil {
		return uint32(v), nil
	}
	base, off := sym, int64(0)
	if i := strings.IndexAny(sym, "+-"); i > 0 {
		var err error
		off, err = strconv.ParseInt(sym[i:], 0, 64)
		if err != nil {
			return 0, errf(line, "bad symbol offset in %q", sym)
		}
		base = sym[:i]
	}
	addr, ok := a.symbols[base]
	if !ok {
		return 0, errf(line, "undefined symbol %q", base)
	}
	return uint32(int64(addr) + off), nil
}

// parseMem parses "off(reg)", "(reg)", "symbol(reg)" or a bare symbol/number
// (implying base $zero).
func (a *assembler) parseMem(s string, line int) (base uint8, off int32, err error) {
	open := strings.Index(s, "(")
	if open < 0 {
		addr, err := a.resolve(s, line)
		if err != nil {
			return 0, 0, err
		}
		if addr > math.MaxInt16 {
			return 0, 0, errf(line, "absolute address 0x%x does not fit a 16-bit displacement; use la", addr)
		}
		return isa.RegZero, int32(addr), nil
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, errf(line, "bad memory operand %q", s)
	}
	base, err = parseIntReg(s[open+1:len(s)-1], line)
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return base, 0, nil
	}
	v, err := a.resolve(offStr, line)
	if err != nil {
		return 0, 0, err
	}
	return base, int32(v), nil
}

func branchOffset(branchAddr, target uint32, line int) (int32, error) {
	delta := int64(target) - int64(branchAddr) - 4
	if delta%4 != 0 {
		return 0, errf(line, "unaligned branch target 0x%x", target)
	}
	off := delta / 4
	if off < math.MinInt16 || off > math.MaxInt16 {
		return 0, errf(line, "branch target 0x%x out of range", target)
	}
	return int32(off), nil
}

var intRegAliases = map[string]uint8{
	"zero": 0, "at": 1, "v0": 2, "v1": 3,
	"a0": 4, "a1": 5, "a2": 6, "a3": 7,
	"sp": 29, "fp": 30, "ra": 31,
	"gp": 28, "s8": 30,
}

func parseIntReg(s string, line int) (uint8, error) {
	if !strings.HasPrefix(s, "$") {
		return 0, errf(line, "expected register, got %q", s)
	}
	name := s[1:]
	if n, ok := intRegAliases[name]; ok {
		return n, nil
	}
	if strings.HasPrefix(name, "r") {
		if n, err := strconv.Atoi(name[1:]); err == nil && n >= 0 && n < isa.NumIntRegs {
			return uint8(n), nil
		}
	}
	// Bare numeric form "$5".
	if n, err := strconv.Atoi(name); err == nil && n >= 0 && n < isa.NumIntRegs {
		return uint8(n), nil
	}
	return 0, errf(line, "bad integer register %q", s)
}

func parseFPReg(s string, line int) (uint8, error) {
	if !strings.HasPrefix(s, "$f") {
		return 0, errf(line, "expected FP register, got %q", s)
	}
	if n, err := strconv.Atoi(s[2:]); err == nil && n >= 0 && n < isa.NumFPRegs {
		return uint8(n), nil
	}
	return 0, errf(line, "bad FP register %q", s)
}

package asm

import (
	"fmt"
	"strings"
	"testing"

	"reuseiq/internal/progen"
)

// FuzzAssemble feeds arbitrary source text to the assembler. Malformed input
// must come back as a returned error, never a panic, and anything that does
// assemble must survive the disassemble -> reassemble round trip with
// identical machine words. Run it with:
//
//	go test -fuzz=FuzzAssemble -fuzztime=30s ./internal/asm/
func FuzzAssemble(f *testing.F) {
	f.Add("\t.text\nmain:\taddi $r2, $zero, 7\n\thalt\n")
	f.Add(progen.Generate(3, progen.DefaultConfig()))
	f.Add("\t.data\nbuf:\t.space 64\nx:\t.word 1, -2, 3\n\t.text\n\tla $r2, buf\n\tsw $r3, 4($r2)\n\thalt\n")
	f.Add(".text\n.data\n.text\nl:")
	f.Add("\tlw $r4, -4($r5)\n\tbeq $r1, $r2, nowhere\n")
	f.Add("\tadd $r1\n\taddi $r2, $r3\n\tsll $r2, $r3, 99\n")
	f.Add("\t.word 99999999999999999999\n\t.space -1\n")
	f.Add("label: label:\n\tjal 123garbage\n\tc.le.d $r10, $f11\n")
	f.Add("\tadd.d $f1, $f2, $r3\n\tlui $r2, 65536\n\taddi $r2, $r3, 32768\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		var b strings.Builder
		b.WriteString("\t.text\n")
		for i, in := range p.Text {
			fmt.Fprintf(&b, "\t%s\n", in.Disasm(uint32(0x0040_0000+4*i)))
		}
		p2, err := Assemble(b.String())
		if err != nil {
			t.Fatalf("disassembly does not re-assemble: %v\nsource:\n%s", err, src)
		}
		if len(p2.Words) != len(p.Words) {
			t.Fatalf("%d instructions round-tripped to %d\nsource:\n%s",
				len(p.Words), len(p2.Words), src)
		}
		for i := range p.Words {
			if p.Words[i] != p2.Words[i] {
				t.Fatalf("inst %d: 0x%08x -> %q -> 0x%08x\nsource:\n%s",
					i, p.Words[i], p.Text[i].Disasm(uint32(0x0040_0000+4*i)), p2.Words[i], src)
			}
		}
	})
}

// Package metricnametest seeds violations for the metricname analyzer.
package metricnametest

import (
	"reuseiq/internal/telemetry"
)

const prefix = "riq."

// notARegistry has methods with the watched names but the wrong receiver
// type: the analyzer must leave it alone.
type notARegistry struct{}

func (notARegistry) Counter(name string, fn func() uint64) {}
func (notARegistry) Gauge(name string, fn func() float64)  {}

func register(r *telemetry.Registry, dyn string) {
	c := uint64(0)

	// Legal names: dotted lowercase segments.
	r.Counter("sim.cycles", func() uint64 { return c })
	r.CounterVal("riq.dispatches", c)
	r.Gauge("power.sessions.net", func() float64 { return 0 })
	r.RegisterHistogram("hist.session_cycles", &telemetry.Histogram{})

	// Constant folding: the analyzer sees through concatenation of constants.
	r.Counter(prefix+"wakeups", func() uint64 { return c })

	// Dynamic names are out of scope (obscheck owns them at runtime).
	r.Counter(dyn, func() uint64 { return c })
	r.Counter("fu."+dyn, func() uint64 { return c })

	// Seeded violations.
	r.Counter("Sim.Cycles", func() uint64 { return c })       // want `uppercase`
	r.Counter("", func() uint64 { return c })                 // want `empty`
	r.Gauge("sim..net", func() float64 { return 0 })          // want `empty dotted segment`
	r.CounterVal("9lives", c)                                 // want `starting with a digit`
	r.CounterVal("sim._hidden", c)                            // want `starting with an underscore`
	r.RegisterHistogram("sim-cycles", &telemetry.Histogram{}) // want `not of the form`
	r.Counter(prefix+"Wakeups", func() uint64 { return c })   // want `uppercase`

	// Wrong receiver type: same method names, no diagnostics.
	var n notARegistry
	n.Counter("Sim.Cycles", func() uint64 { return 0 })
	n.Gauge("9lives", func() float64 { return 0 })
}

// Package metricname statically checks metric names registered with
// telemetry.Registry against the shared rule set in internal/obs/lintrules.
// What obscheck verifies on the wire at runtime, this analyzer verifies at
// the registration call site at compile time — for every name that is a
// constant expression. Dynamically built names (loops over FU kinds and the
// like) remain the runtime linter's job.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"

	"reuseiq/internal/analysis"
	"reuseiq/internal/obs/lintrules"
)

// registryMethods are the telemetry.Registry registration entry points
// whose first argument is a metric name.
var registryMethods = map[string]bool{
	"Counter":           true,
	"CounterVal":        true,
	"Gauge":             true,
	"RegisterHistogram": true,
}

const registryType = "reuseiq/internal/telemetry.Registry"

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "metric names passed to telemetry.Registry registration must satisfy " +
		"the lintrules registry grammar (dotted lowercase segments), guaranteeing " +
		"obs.SanitizeMetricName maps them onto promlint-clean exposition names",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !isRegistryMethod(fn) {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic name: covered by obscheck at runtime
			}
			if err := lintrules.CheckRegistryName(constant.StringVal(tv.Value)); err != nil {
				pass.Reportf(call.Args[0].Pos(), "telemetry.Registry.%s: %v", sel.Sel.Name, err)
			}
			return true
		})
	}
	return nil, nil
}

// isRegistryMethod reports whether fn is a method with receiver
// *telemetry.Registry (or telemetry.Registry).
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path()+"."+obj.Name() == registryType
}

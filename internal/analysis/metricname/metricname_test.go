package metricname_test

import (
	"testing"

	"reuseiq/internal/analysis/analysistest"
	"reuseiq/internal/analysis/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, metricname.Analyzer, "metricnametest")
}

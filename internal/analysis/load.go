package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one main-module package, parsed with comments and
// type-checked from source into the module's shared FileSet and Info.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
}

// A Module is the loaded main module: every matched package and its
// dependencies, with one FileSet and one types.Info spanning all of them so
// cross-package analyses can chase objects to syntax.
type Module struct {
	Path string // module path ("reuseiq")
	Dir  string // module root directory
	Fset *token.FileSet
	Info *types.Info

	// Packages holds the main-module packages in dependency order
	// (imported packages precede their importers).
	Packages []*Package

	byPath  map[string]*Package
	exports map[string]string // import path -> compiler export data file
	gc      types.ImporterFrom
}

// Lookup returns the loaded main-module package with the given import path,
// or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Position resolves a token.Pos in the module's FileSet.
func (m *Module) Position(pos token.Pos) token.Position { return m.Fset.Position(pos) }

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// listPkg is the subset of `go list -json` we consume.
type listPkg struct {
	Dir        string
	ImportPath string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
	Module     *struct {
		Path string
		Dir  string
		Main bool
	}
	DepOnly bool
	Error   *struct{ Err string }
}

// LoadModule loads the packages matching patterns (plus their dependency
// closure) from the module rooted at or above dir. Main-module packages are
// parsed and type-checked from source; everything else is imported from
// compiler export data, so no network or GOPATH cache beyond the build
// cache is required. Test files are not loaded (`go vet` semantics for the
// non-test compilation unit).
func LoadModule(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	mod := &Module{
		Fset:    token.NewFileSet(),
		Info:    newInfo(),
		byPath:  make(map[string]*Package),
		exports: make(map[string]string),
	}
	mod.gc = importer.ForCompiler(mod.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := mod.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)

	// First pass over the stream: record export data and pick out the
	// main-module packages, preserving go list's dependency order.
	var srcPkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			mod.exports[lp.ImportPath] = lp.Export
		}
		if lp.Module != nil && lp.Module.Main {
			if mod.Path == "" {
				mod.Path, mod.Dir = lp.Module.Path, lp.Module.Dir
			}
			p := lp
			srcPkgs = append(srcPkgs, &p)
		}
	}
	if mod.Path == "" {
		return nil, fmt.Errorf("analysis: patterns %v matched no main-module packages", patterns)
	}

	// Second pass: parse and type-check main-module packages in dependency
	// order, so every module import resolves to an already-checked package.
	for _, lp := range srcPkgs {
		pkg, err := mod.checkSource(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		mod.byPath[lp.ImportPath] = pkg
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// CheckExtra parses and type-checks one extra package directory (an
// analysistest testdata package) against the loaded module universe: its
// imports may name any main-module package or any dependency whose export
// data was seen during LoadModule. The package is returned but not added to
// Module.Packages.
func (m *Module) CheckExtra(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); filepath.Ext(n) == ".go" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	return m.checkSource(importPath, dir, names)
}

func (m *Module) checkSource(importPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: (*moduleImporter)(m),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, m.Fset, files, m.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg}, nil
}

// moduleImporter resolves imports during source type-checking: main-module
// packages come from the already-checked set, everything else from compiler
// export data.
type moduleImporter Module

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.byPath[path]; ok {
		return p.Types, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return mi.gc.ImportFrom(path, mi.Dir, 0)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

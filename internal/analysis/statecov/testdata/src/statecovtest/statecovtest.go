// Package statecovtest seeds statecov violations: a runtime struct whose
// export/import pair drops fields in every distinct way, the transient
// waiver grammar (justified, unjustified, stale), type-level waivers, an
// unpaired half, and a structural-digest unit with nodigest waivers.
package statecovtest

// nested is reached from Tracker through a covered field; its own fields
// are checked recursively.
type nested struct {
	Kept    int
	Dropped int // want `nested\.Dropped is not covered by ExportState or ImportState`
}

// opaqueCfg carries a justified type-level waiver: recursion must stop at
// it, so its never-referenced Knob field is not a finding.
//
//reuse:transient config; fingerprinted by the host, not snapshotted
type opaqueCfg struct {
	Knob int
}

// badOpaque carries an unjustified type-level waiver.
//
//reuse:transient
type badOpaque struct { // want `//reuse:transient waiver on type badOpaque has no justification`
	Knob int
}

type Tracker struct {
	both   int
	expOne int // want `Tracker\.expOne is not read by ImportState`
	impOne int // want `Tracker\.impOne is not written by ExportState`
	none   int // want `Tracker\.none is not covered by ExportState or ImportState`
	n      nested
	cfg    opaqueCfg
	bcfg   badOpaque
	//reuse:transient per-cycle scratch, rebuilt before first use
	scratch []int
	//reuse:transient
	bad int // want `//reuse:transient waiver on Tracker\.bad has no justification`
	//reuse:transient claims to be scratch
	stale int // want `stale //reuse:transient waiver: Tracker\.stale is referenced by both ExportState and ImportState`
}

type TrackerState struct {
	Both, ExpOne, ImpOne, Kept, Stale int
}

func (t *Tracker) ExportState() *TrackerState {
	t.cfg.Knob++  // validation-style touch: covers cfg on the export side
	t.bcfg.Knob++ // covers bcfg on the export side
	return &TrackerState{
		Both:   t.both,
		ExpOne: t.expOne,
		Kept:   t.n.Kept,
		Stale:  t.stale,
	}
}

func (t *Tracker) ImportState(st *TrackerState) {
	t.cfg.Knob--
	t.bcfg.Knob--
	t.both = st.Both
	t.impOne = st.ImpOne
	t.n.Kept = st.Kept
	t.stale = st.Stale
}

// Half has an export with no import: the round trip can never close.
type Half struct {
	x int
}

func (h *Half) ExportState() int { return h.x } // want `Half has export method ExportState but no matching import method`

// digestImage is the coverage unit of the digestOf function below.
type digestImage struct {
	Hashed int
	Missed int // want `digestImage\.Missed is not referenced by the structural digest digestOf`
	//reuse:nodigest recency stamp; the engine compares LRU deltas separately
	Stamp int
	//reuse:nodigest
	badWaiver int // want `//reuse:nodigest waiver on digestImage\.badWaiver has no justification`
	//reuse:nodigest claims to be excluded
	staleWaiver int // want `stale //reuse:nodigest waiver: digestImage\.staleWaiver is covered by the structural digest digestOf`
}

// digestOf hashes the image, but misses one field and hashes one waived
// field.
//
//reuse:digest
func digestOf(st *digestImage) uint64 {
	return uint64(st.Hashed)*31 + uint64(st.staleWaiver)
}

var _ = digestOf

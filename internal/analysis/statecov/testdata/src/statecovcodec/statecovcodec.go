// Package statecovcodec seeds the codec-marker grammar violations: a
// malformed side marker and an encoder with no decoder.
package statecovcodec

type frame struct {
	A int
}

// sideways has a side that is neither encode nor decode.
//
//reuse:codec sideways
func sideways(f *frame) { _ = f.A } // want `//reuse:codec marker must say encode or decode, got "sideways"`

// encodeFrame has no matching decode in the package.
//
//reuse:codec encode
func encodeFrame(f *frame) int { return f.A } // want `//reuse:codec encode has no matching //reuse:codec decode function in this package`

var (
	_ = sideways
	_ = encodeFrame
)

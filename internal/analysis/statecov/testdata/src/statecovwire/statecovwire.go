// Package statecovwire seeds a codec coverage gap over a real
// cross-package struct: the encoder skips isa.Inst.Target while the decoder
// restores it, so statecov must anchor a finding at the Target field in the
// isa package. Checked by TestCodecCoverage rather than // want comments,
// because the finding lands outside this package.
package statecovwire

import "reuseiq/internal/isa"

//reuse:codec encode
func encodeInst(in *isa.Inst) []int64 {
	return []int64{int64(in.Op), int64(in.Rd), int64(in.Rs), int64(in.Rt), int64(in.Imm)}
}

//reuse:codec decode
func decodeInst(w []int64) isa.Inst {
	return isa.Inst{
		Op:     isa.Op(w[0]),
		Rd:     uint8(w[1]),
		Rs:     uint8(w[2]),
		Rt:     uint8(w[3]),
		Imm:    int32(w[4]),
		Target: uint32(w[5]),
	}
}

var (
	_ = encodeInst
	_ = decodeInst
)

// Package statecov proves, statically, that the machine-state snapshot
// surface is complete: every field a running component carries is either
// round-tripped through its state image or explicitly waived as transient,
// every field of the image structs is written and read by the snapshot wire
// codec, and every field the snapshot serializes is compared or relabeled by
// fast-forward's structural digest or explicitly waived. The invariant this
// enforces is the one PRs 6-9 rest on informally: adding a struct field to a
// snapshot participant without extending ExportState/ImportState, the codec,
// and the digest must fail `make lint`, not silently drift checkpoints,
// flight-recorder seeks and the regression sentinel.
//
// Anchors and markers:
//
//   - A type participates when it has an ExportState/ImportState method
//     pair, or methods marked "//reuse:export" / "//reuse:import" (the
//     pipeline's Snapshot/load, prog's ExportPages/ImportPages).
//   - "//reuse:transient <why>" on a runtime field's declaration waives the
//     round-trip requirement (scratch buffers, pools, re-attached hooks,
//     config the snapshot layer fingerprints separately).
//   - "//reuse:digest" marks the structural-digest function; its named
//     struct parameters root the digest coverage unit.
//   - "//reuse:codec encode" / "//reuse:codec decode" mark the wire codec's
//     entry points; cross-package named structs in their signatures root the
//     codec coverage unit.
//   - "//reuse:nodigest <why>" on an image field's declaration waives the
//     digest requirement (values and counters are extrapolated or
//     delta-checked separately, labels are deliberately erased).
//
// Coverage is reference-based: a field counts as covered by a method when
// the field object is referenced anywhere in the method's static call
// closure (selector reads, assignment targets, keyed composite-literal
// keys). That is necessary, not sufficient — a read does not prove the value
// lands on the wire — but it is exactly the property whose absence is the
// drift accident: a freshly added field is referenced nowhere. See DESIGN.md
// §5k for the soundness sketch. Waivers with no justification, and stale
// waivers on fields that are in fact fully covered, are themselves findings.
//
// Field reachability follows slices, arrays, maps, pointers and embedded
// structs into same-module struct types. Recursion stops at types that own
// their own export pair (their coverage is checked at their own anchor) and
// at types that appear inside the image itself (those are carried wholesale
// by the image struct and their wire coverage is owned by the codec check).
package statecov

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"reuseiq/internal/analysis"
	"reuseiq/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "statecov",
	Doc: "every snapshot participant's fields must round-trip through its " +
		"ExportState/ImportState pair (waiver //reuse:transient <why>), every " +
		"image field must be wired through the //reuse:codec entry points, and " +
		"every serialized field must be hashed by the //reuse:digest function " +
		"(waiver //reuse:nodigest <why>)",
	Run:         run,
	ExportFacts: exportFacts,
}

// Fact is statecov's cross-package fact: the names of types in a package
// that carry an export/import pair, including marker-designated pairs whose
// method names a dependent package cannot recognize without source. Used in
// vettool (single-package) mode to stop field recursion at component
// boundaries exactly where the whole-module view would.
type Fact struct {
	Pairs []string
}

// pair is one snapshot participant: the component type and its two methods.
type pair struct {
	recv     *types.Named
	exp, imp *types.Func
	expDecl  *ast.FuncDecl
	impDecl  *ast.FuncDecl
}

// typeWaiver is a //reuse:transient marker in a type's doc comment: the
// whole type is opaque to the runtime coverage walk (configuration structs
// the snapshot layer fingerprints wholesale instead of round-tripping).
type typeWaiver struct {
	why string
	pos token.Pos
}

// index is everything run needs that is derived from the visible syntax.
type index struct {
	pass      *analysis.Pass
	graph     *callgraph.Graph
	pairs     map[*types.Named]*pair // fully paired participants
	half      map[*types.Named]*pair // one side only (a finding)
	transient *analysis.Waivers
	nodigest  *analysis.Waivers
	opaque    map[*types.Named]typeWaiver // type-level transient markers

	digestDecls []*ast.FuncDecl // //reuse:digest functions in this package
	encodeDecls []*ast.FuncDecl // //reuse:codec encode in this package
	decodeDecls []*ast.FuncDecl // //reuse:codec decode in this package
}

func run(pass *analysis.Pass) (any, error) {
	idx := buildIndex(pass)

	// Unpaired participants: an export with no import (or vice versa) can
	// never round-trip. Reported at the type's anchor in this package only.
	var halves []*pair
	for _, p := range idx.half {
		halves = append(halves, p)
	}
	sort.Slice(halves, func(i, j int) bool { return halves[i].recv.Obj().Pos() < halves[j].recv.Obj().Pos() })
	for _, p := range halves {
		if p.recv.Obj().Pkg() != pass.Pkg {
			continue
		}
		switch {
		case p.exp != nil:
			pass.Reportf(p.exp.Pos(), "%s has export method %s but no matching import method (ImportState or //reuse:import)",
				p.recv.Obj().Name(), p.exp.Name())
		case p.imp != nil:
			pass.Reportf(p.imp.Pos(), "%s has import method %s but no matching export method (ExportState or //reuse:export)",
				p.recv.Obj().Name(), p.imp.Name())
		}
	}

	// Round-trip coverage for every participant anchored in this package.
	var local []*pair
	for _, p := range idx.pairs {
		if p.recv.Obj().Pkg() == pass.Pkg {
			local = append(local, p)
		}
	}
	sort.Slice(local, func(i, j int) bool { return local[i].recv.Obj().Pos() < local[j].recv.Obj().Pos() })
	for _, p := range local {
		idx.checkPair(p)
	}

	// Unjustified type-level waivers, anchored at the type declaration.
	var opaques []*types.Named
	for named := range idx.opaque {
		if named.Obj().Pkg() == pass.Pkg && idx.opaque[named].why == "" {
			opaques = append(opaques, named)
		}
	}
	sort.Slice(opaques, func(i, j int) bool { return opaques[i].Obj().Pos() < opaques[j].Obj().Pos() })
	for _, named := range opaques {
		pass.Reportf(idx.opaque[named].pos, "//reuse:transient waiver on type %s has no justification", named.Obj().Name())
	}

	// Digest and codec cross-checks, anchored at the marked functions.
	idx.checkDigest()
	idx.checkCodec()
	return nil, nil
}

func buildIndex(pass *analysis.Pass) *index {
	files := pass.ModuleFiles()
	idx := &index{
		pass:      pass,
		graph:     callgraph.Build(pass.TypesInfo, files),
		pairs:     make(map[*types.Named]*pair),
		half:      make(map[*types.Named]*pair),
		transient: analysis.NewWaivers(pass.Fset, files, "transient"),
		nodigest:  analysis.NewWaivers(pass.Fset, files, "nodigest"),
		opaque:    make(map[*types.Named]typeWaiver),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				why, ok := analysis.Marker(doc, "transient")
				if !ok {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					if named, ok := tn.Type().(*types.Named); ok {
						idx.opaque[named] = typeWaiver{why: why, pos: ts.Pos()}
					}
				}
			}
		}
	}
	byRecv := make(map[*types.Named]*pair)
	for obj, fd := range idx.graph.Decls {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if fd.Recv == nil {
			if _, isDigest := analysis.Marker(fd.Doc, "digest"); isDigest && inPassFiles(pass, fd) {
				idx.digestDecls = append(idx.digestDecls, fd)
			}
			if side, isCodec := analysis.Marker(fd.Doc, "codec"); isCodec && inPassFiles(pass, fd) {
				switch side {
				case "encode":
					idx.encodeDecls = append(idx.encodeDecls, fd)
				case "decode":
					idx.decodeDecls = append(idx.decodeDecls, fd)
				default:
					pass.Reportf(fd.Pos(), "//reuse:codec marker must say encode or decode, got %q", side)
				}
			}
			continue
		}
		recv := recvNamed(fn)
		if recv == nil {
			continue
		}
		_, expMark := analysis.Marker(fd.Doc, "export")
		_, impMark := analysis.Marker(fd.Doc, "import")
		isExp := fn.Name() == "ExportState" || expMark
		isImp := fn.Name() == "ImportState" || impMark
		if !isExp && !isImp {
			continue
		}
		p := byRecv[recv]
		if p == nil {
			p = &pair{recv: recv}
			byRecv[recv] = p
		}
		if isExp {
			p.exp, p.expDecl = fn, fd
		}
		if isImp {
			p.imp, p.impDecl = fn, fd
		}
	}
	sortDecls(idx.digestDecls)
	sortDecls(idx.encodeDecls)
	sortDecls(idx.decodeDecls)
	for recv, p := range byRecv {
		if p.exp != nil && p.imp != nil {
			idx.pairs[recv] = p
		} else {
			idx.half[recv] = p
		}
	}
	return idx
}

func sortDecls(ds []*ast.FuncDecl) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].Pos() < ds[j].Pos() })
}

// inPassFiles reports whether the declaration belongs to the pass's own
// package (ModuleFiles spans the whole module; marked functions anchor
// checks only in their defining package's pass).
func inPassFiles(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj := pass.TypesInfo.Defs[fd.Name]
	return obj != nil && obj.Pkg() == pass.Pkg
}

// recvNamed resolves a method's receiver to its named type.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// hasPair reports whether named carries an export/import pair: seen in the
// visible syntax, detectable by method name on the type itself (works on
// export-data imports), or declared by a dependency's statecov fact.
func (idx *index) hasPair(named *types.Named) bool {
	if _, ok := idx.pairs[named]; ok {
		return true
	}
	var exp, imp bool
	for i := 0; i < named.NumMethods(); i++ {
		switch named.Method(i).Name() {
		case "ExportState":
			exp = true
		case "ImportState":
			imp = true
		}
	}
	if exp && imp {
		return true
	}
	if pkg := named.Obj().Pkg(); pkg != nil && pkg != idx.pass.Pkg {
		var fact Fact
		if idx.pass.DepFact(pkg.Path(), &fact) {
			for _, name := range fact.Pairs {
				if name == named.Obj().Name() {
					return true
				}
			}
		}
	}
	return false
}

// sourceStruct resolves t (through pointers, slices, arrays and map
// elements) to a named struct whose fields the pass can inspect with waiver
// comments attached: any module package in whole-module mode, the pass's own
// package otherwise. Returns nil for everything else (stdlib types,
// interfaces, scalars, export-data-only packages).
func (idx *index) sourceStruct(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok {
				return nil
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				return nil
			}
			pkg := named.Obj().Pkg()
			if pkg == nil {
				return nil
			}
			if pkg == idx.pass.Pkg {
				return named
			}
			if idx.pass.Module != nil && idx.pass.Module.Lookup(pkg.Path()) != nil {
				return named
			}
			return nil
		}
	}
}

// fieldRefs collects every struct field object referenced anywhere in the
// bodies of the given closure's functions: selector reads and writes, and
// keyed composite-literal keys (go/types resolves both through Uses).
func (idx *index) fieldRefs(closure map[types.Object]bool) map[*types.Var]bool {
	refs := make(map[*types.Var]bool)
	for obj := range closure {
		fd := idx.graph.Decls[obj]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := idx.pass.TypesInfo.Uses[id].(*types.Var); ok && v.IsField() {
				refs[v] = true
			}
			return true
		})
	}
	return refs
}

// imageStructs collects the named structs reachable from the export method's
// result types: the state image. Structs in this set are carried wholesale
// by the image, so the runtime check does not recurse into them — their wire
// coverage belongs to the codec check.
func (idx *index) imageStructs(exp *types.Func) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	sig := exp.Type().(*types.Signature)
	var work []*types.Named
	push := func(t types.Type) {
		if named := idx.sourceStruct(t); named != nil && !out[named] {
			out[named] = true
			work = append(work, named)
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		push(sig.Results().At(i).Type())
	}
	// Marker-based imports take the image as a parameter (load(st
	// *MachineState)); include those roots too so export-via-pointer
	// conventions image the same set.
	for i := 0; i < sig.Params().Len(); i++ {
		push(sig.Params().At(i).Type())
	}
	for len(work) > 0 {
		named := work[len(work)-1]
		work = work[:len(work)-1]
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			push(st.Field(i).Type())
		}
	}
	return out
}

// checkPair enforces the round-trip invariant for one participant.
func (idx *index) checkPair(p *pair) {
	expRefs := idx.fieldRefs(idx.graph.ReachableFrom(p.exp))
	impRefs := idx.fieldRefs(idx.graph.ReachableFrom(p.imp))
	image := idx.imageStructs(p.exp)

	seen := map[*types.Named]bool{p.recv: true}
	work := []*types.Named{p.recv}
	for len(work) > 0 {
		named := work[0]
		work = work[1:]
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if why, waived := idx.transient.At(f.Pos()); waived {
				switch {
				case why == "":
					idx.pass.Reportf(f.Pos(), "//reuse:transient waiver on %s.%s has no justification",
						named.Obj().Name(), f.Name())
				case expRefs[f] && impRefs[f]:
					idx.pass.Reportf(f.Pos(), "stale //reuse:transient waiver: %s.%s is referenced by both %s and %s",
						named.Obj().Name(), f.Name(), p.exp.Name(), p.imp.Name())
				}
				continue
			}
			inner := idx.sourceStruct(f.Type())
			if inner != nil {
				if _, isOpaque := idx.opaque[inner]; isOpaque {
					inner = nil // type-level transient: don't decompose
				}
			}
			recurse := inner != nil && !idx.hasPair(inner) && !image[inner] && !seen[inner]
			if !f.Embedded() || inner == nil {
				if miss := missing(expRefs[f], impRefs[f], p.exp.Name(), p.imp.Name()); miss != "" {
					idx.pass.Reportf(f.Pos(),
						"%s.%s is not %s: the snapshot would silently drop it; cover it or waive with //reuse:transient <why>",
						named.Obj().Name(), f.Name(), miss)
					continue // don't cascade into an uncovered subtree
				}
			}
			if recurse {
				seen[inner] = true
				work = append(work, inner)
			}
		}
	}
}

// missing renders which sides of the round trip do not reference a field.
func missing(exp, imp bool, expName, impName string) string {
	switch {
	case !exp && !imp:
		return fmt.Sprintf("covered by %s or %s", expName, impName)
	case !exp:
		return fmt.Sprintf("written by %s", expName)
	case !imp:
		return fmt.Sprintf("read by %s", impName)
	}
	return ""
}

// signatureRoots collects the named module structs in a function's
// parameters and results, excluding the function's own package when
// crossPkgOnly is set (the codec's writer/reader/dims scaffolding is not
// state).
func (idx *index) signatureRoots(fd *ast.FuncDecl, crossPkgOnly bool) []*types.Named {
	fn := idx.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	sig := fn.Type().(*types.Signature)
	var out []*types.Named
	add := func(t types.Type) {
		named := idx.sourceStruct(t)
		if named == nil {
			return
		}
		if crossPkgOnly && named.Obj().Pkg() == fn.Pkg() {
			return
		}
		out = append(out, named)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		add(sig.Params().At(i).Type())
	}
	for i := 0; i < sig.Results().Len(); i++ {
		add(sig.Results().At(i).Type())
	}
	return out
}

// checkCoverageUnit walks the image unit rooted at roots, requiring every
// non-waived field to be referenced per side. sides maps a side label (for
// the message) to that side's referenced-field set; a field must appear in
// every side. waivers supplies the field-level escape; label names the
// checked surface for messages.
func (idx *index) checkCoverageUnit(roots []*types.Named, sides []refSide, waivers *analysis.Waivers, waiverName, remedy string) {
	seen := make(map[*types.Named]bool)
	var work []*types.Named
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		named := work[0]
		work = work[1:]
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if why, waived := waivers.At(f.Pos()); waived {
				switch {
				case why == "":
					idx.pass.Reportf(f.Pos(), "//reuse:%s waiver on %s.%s has no justification",
						waiverName, named.Obj().Name(), f.Name())
				case coveredByAll(sides, f):
					idx.pass.Reportf(f.Pos(), "stale //reuse:%s waiver: %s.%s is covered by %s",
						waiverName, named.Obj().Name(), f.Name(), sideNames(sides))
				}
				continue
			}
			covered := true
			for _, s := range sides {
				if !s.refs[f] {
					covered = false
					idx.pass.Reportf(f.Pos(), "%s.%s is not referenced by %s: %s",
						named.Obj().Name(), f.Name(), s.name, remedy)
				}
			}
			if covered {
				if inner := idx.sourceStruct(f.Type()); inner != nil && !seen[inner] {
					seen[inner] = true
					work = append(work, inner)
				}
			}
		}
	}
}

type refSide struct {
	name string
	refs map[*types.Var]bool
}

func coveredByAll(sides []refSide, f *types.Var) bool {
	for _, s := range sides {
		if !s.refs[f] {
			return false
		}
	}
	return true
}

func sideNames(sides []refSide) string {
	out := ""
	for i, s := range sides {
		if i > 0 {
			out += " and "
		}
		out += s.name
	}
	return out
}

// checkDigest enforces that every serialized field is compared or relabeled
// by the //reuse:digest function, or waived //reuse:nodigest.
func (idx *index) checkDigest() {
	for _, fd := range idx.digestDecls {
		fn := idx.pass.TypesInfo.Defs[fd.Name]
		refs := idx.fieldRefs(idx.graph.ReachableFrom(fn))
		roots := idx.signatureRoots(fd, false)
		if len(roots) == 0 {
			// Under the vettool protocol the rooted struct usually lives in a
			// dependency and resolves from export data, not source; the
			// standalone gate is the mode of record for this unit.
			if idx.pass.Module != nil {
				idx.pass.Reportf(fd.Pos(), "//reuse:digest function %s has no named struct parameter to root the coverage unit", fd.Name.Name)
			}
			continue
		}
		idx.checkCoverageUnit(roots, []refSide{{name: "the structural digest " + fd.Name.Name, refs: refs}},
			idx.nodigest, "nodigest",
			"fast-forward would treat drift in it as steady state; hash it or waive with //reuse:nodigest <why>")
	}
}

// checkCodec enforces that every image field is wired through both codec
// sides. The two sides share one coverage unit: the union of their
// signature roots.
func (idx *index) checkCodec() {
	if len(idx.encodeDecls) == 0 && len(idx.decodeDecls) == 0 {
		return
	}
	if len(idx.encodeDecls) == 0 || len(idx.decodeDecls) == 0 {
		var fd *ast.FuncDecl
		side, missing := "encode", "decode"
		if len(idx.encodeDecls) == 0 {
			fd, side, missing = idx.decodeDecls[0], "decode", "encode"
		} else {
			fd = idx.encodeDecls[0]
		}
		idx.pass.Reportf(fd.Pos(), "//reuse:codec %s has no matching //reuse:codec %s function in this package", side, missing)
		return
	}
	refsFor := func(decls []*ast.FuncDecl) map[*types.Var]bool {
		closure := make(map[types.Object]bool)
		for _, fd := range decls {
			for obj := range idx.graph.ReachableFrom(idx.pass.TypesInfo.Defs[fd.Name]) {
				closure[obj] = true
			}
		}
		return idx.fieldRefs(closure)
	}
	var roots []*types.Named
	rootSeen := make(map[*types.Named]bool)
	for _, fd := range append(append([]*ast.FuncDecl{}, idx.encodeDecls...), idx.decodeDecls...) {
		for _, r := range idx.signatureRoots(fd, true) {
			if !rootSeen[r] {
				rootSeen[r] = true
				roots = append(roots, r)
			}
		}
	}
	if len(roots) == 0 {
		// Same degradation as checkDigest: package-local type checking can't
		// see the image structs' source, so the unit belongs to standalone mode.
		if idx.pass.Module != nil {
			idx.pass.Reportf(idx.encodeDecls[0].Pos(), "//reuse:codec functions name no cross-package struct to root the coverage unit")
		}
		return
	}
	idx.checkCoverageUnit(roots,
		[]refSide{
			{name: "the wire encoder (//reuse:codec encode)", refs: refsFor(idx.encodeDecls)},
			{name: "the wire decoder (//reuse:codec decode)", refs: refsFor(idx.decodeDecls)},
		},
		// Codec omissions share the nodigest grammar's shape but have their
		// own marker: a field the wire format deliberately reconstructs.
		analysis.NewWaivers(idx.pass.Fset, idx.pass.ModuleFiles(), "nowire"), "nowire",
		"the wire image would not round-trip it; encode and decode it or waive with //reuse:nowire <why>")
}

// exportFacts publishes this package's participant types for dependent
// packages' vettool passes.
func exportFacts(pass *analysis.Pass) any {
	idx := buildIndex(pass)
	var names []string
	for recv := range idx.pairs {
		if recv.Obj().Pkg() == pass.Pkg {
			names = append(names, recv.Obj().Name())
		}
	}
	sort.Strings(names)
	return Fact{Pairs: names}
}

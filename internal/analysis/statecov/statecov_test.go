package statecov_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reuseiq/internal/analysis"
	"reuseiq/internal/analysis/analysistest"
	"reuseiq/internal/analysis/statecov"
)

func TestStatecov(t *testing.T) {
	analysistest.Run(t, statecov.Analyzer, "statecovtest")
}

func TestStatecovCodecGrammar(t *testing.T) {
	analysistest.Run(t, statecov.Analyzer, "statecovcodec")
}

func loadRepoModule(t *testing.T) *analysis.Module {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestCodecCoverage drives the codec cross-check over a real cross-package
// struct: the testdata encoder skips isa.Inst.Target, and the finding must
// anchor at that field and name the encoder side.
func TestCodecCoverage(t *testing.T) {
	mod := loadRepoModule(t)
	extra, err := mod.CheckExtra("statecovwire", "testdata/src/statecovwire")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(mod, []*analysis.Analyzer{statecov.Analyzer}, []*analysis.Package{extra})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		for _, f := range findings {
			t.Logf("finding: %s: %s", mod.Position(f.Diagnostic.Pos), f.Diagnostic.Message)
		}
		t.Fatalf("finding count = %d, want exactly 1", len(findings))
	}
	msg := findings[0].Diagnostic.Message
	if !strings.Contains(msg, "Inst.Target") || !strings.Contains(msg, "wire encoder") {
		t.Fatalf("finding = %q, want Inst.Target missing from the wire encoder", msg)
	}
	pos := mod.Position(findings[0].Diagnostic.Pos)
	if !strings.HasSuffix(pos.Filename, filepath.Join("internal", "isa", "inst.go")) {
		t.Fatalf("finding anchored at %s, want the Target field in internal/isa/inst.go", pos)
	}
}

// mutationCase is one drill from the acceptance checklist: deleting a
// single field write from a real ExportState must make statecov report
// exactly that field.
type mutationCase struct {
	name    string
	file    string // module-relative file to mutate
	line    string // exact line (sans newline) to delete
	pkg     string // package pattern to analyze
	wantSub string // required substring of the single finding
}

func TestMutationDrill(t *testing.T) {
	cases := []mutationCase{
		{
			name:    "core-queue-orderGen",
			file:    "internal/core/state.go",
			line:    "\t\tOrderGen:   q.orderGen,",
			pkg:     "./internal/core",
			wantSub: "Queue.orderGen is not written by ExportState",
		},
		{
			name:    "rename-intFree",
			file:    "internal/rename/state.go",
			line:    "\t\tIntFree:  append([]int(nil), r.intFree...),",
			pkg:     "./internal/rename",
			wantSub: "RegFile.intFree is not written by ExportState",
		},
		{
			name:    "rob-head",
			file:    "internal/rob/state.go",
			line:    "\t\tHead:   r.head,",
			pkg:     "./internal/rob",
			wantSub: "ROB.head is not written by ExportState",
		},
	}

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tmp := t.TempDir()
			copyModule(t, root, tmp)
			path := filepath.Join(tmp, filepath.FromSlash(tc.file))
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mutated := strings.Replace(string(src), tc.line+"\n", "", 1)
			if mutated == string(src) {
				t.Fatalf("mutation line %q not found in %s", tc.line, tc.file)
			}
			if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
				t.Fatal(err)
			}

			mod, err := analysis.LoadModule(tmp, tc.pkg)
			if err != nil {
				t.Fatal(err)
			}
			findings, err := analysis.Run(mod, []*analysis.Analyzer{statecov.Analyzer}, mod.Packages)
			if err != nil {
				t.Fatal(err)
			}
			if len(findings) != 1 {
				for _, f := range findings {
					t.Logf("finding: %s: %s", mod.Position(f.Diagnostic.Pos), f.Diagnostic.Message)
				}
				t.Fatalf("finding count = %d, want exactly 1", len(findings))
			}
			if msg := findings[0].Diagnostic.Message; !strings.Contains(msg, tc.wantSub) {
				t.Fatalf("finding = %q, want substring %q", msg, tc.wantSub)
			}
		})
	}
}

// copyModule copies go.mod and every non-test source file of the module at
// root into dst, preserving layout. testdata trees and dot-directories are
// skipped: the drill analyzes production code only.
func copyModule(t *testing.T, root, dst string) {
	t.Helper()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if rel != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(rel, ".go") && rel != "go.mod" {
			return nil
		}
		if strings.HasSuffix(rel, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Package callgraph builds the module-local static call graph the reuselint
// analyzers share: which FuncDecl objects exist, and which module functions
// each of them statically calls. It was born inside hotalloc (the hot-set
// closure) and is extracted here so statecov (export/import/digest closures)
// and determinism (taint propagation) reuse one implementation.
//
// The graph is deliberately conservative in the same direction for every
// client: only calls that resolve to a *types.Func with a FuncDecl among the
// analyzed files extend the graph. Hook fields, interface methods, function
// values and stdlib calls are not edges — a closure over this graph is a
// subset of the true dynamic call closure, which is the right polarity for
// "everything reached from this root must satisfy X" checks whose unresolved
// calls are governed by separate rules (hotalloc's boxing checks, zerocost's
// nil-guard discipline, statecov's per-component anchoring).
package callgraph

import (
	"go/ast"
	"go/types"
)

// Graph is the static call graph over a set of parsed files.
type Graph struct {
	// Decls maps each function object to its declaration.
	Decls map[types.Object]*ast.FuncDecl
	// Callees maps each function object to the module functions its body
	// statically calls (in syntactic order, duplicates preserved).
	Callees map[types.Object][]types.Object
}

// Build walks files (typically pass.ModuleFiles()) and records every
// FuncDecl and its statically resolvable callees.
func Build(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{
		Decls:   make(map[types.Object]*ast.FuncDecl),
		Callees: make(map[types.Object][]types.Object),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			g.Decls[obj] = fd
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := CalleeObject(info, call); callee != nil {
					g.Callees[obj] = append(g.Callees[obj], callee)
				}
				return true
			})
		}
	}
	return g
}

// CalleeObject resolves a call to the *types.Func it statically invokes
// (plain functions and methods; not builtins, conversions, or func values).
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// A Root seeds a closure: a function object plus the label reported for
// everything it reaches.
type Root struct {
	Obj   types.Object
	Label string
}

// Closure computes the set of declared functions reachable from roots,
// labeling each member with the label of the root that first reached it
// (roots keep their own label; earlier roots win ties, so the result is
// deterministic). A function for which stop returns true joins the closure
// but does not propagate further — hotalloc's waived functions,
// determinism's exempted ones. stop may be nil.
func (g *Graph) Closure(roots []Root, stop func(types.Object) bool) map[types.Object]string {
	out := make(map[types.Object]string)
	var visit func(obj types.Object, label string)
	visit = func(obj types.Object, label string) {
		if _, seen := out[obj]; seen {
			return
		}
		if _, isDecl := g.Decls[obj]; !isDecl {
			return
		}
		out[obj] = label
		if stop != nil && stop(obj) {
			return
		}
		for _, callee := range g.Callees[obj] {
			visit(callee, label)
		}
	}
	for _, r := range roots {
		visit(r.Obj, r.Label)
	}
	return out
}

// ReachableFrom is Closure for a single unlabeled root: the set of declared
// functions reachable from root, including root itself if declared.
func (g *Graph) ReachableFrom(root types.Object) map[types.Object]bool {
	set := g.Closure([]Root{{Obj: root}}, nil)
	out := make(map[types.Object]bool, len(set))
	for obj := range set {
		out[obj] = true
	}
	return out
}

package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const src = `package p

func a() { b(); c() }
func b() { c() }
func c() {}
func d() { a() }
func e() {}

type T struct{}

func (T) M() { e() }
func f() { T{}.M() }
`

func check(t *testing.T) (*types.Info, []*ast.File, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return info, []*ast.File{f}, pkg
}

func obj(t *testing.T, pkg *types.Package, name string) types.Object {
	t.Helper()
	o := pkg.Scope().Lookup(name)
	if o == nil {
		t.Fatalf("no object %q", name)
	}
	return o
}

func TestClosure(t *testing.T) {
	info, files, pkg := check(t)
	g := Build(info, files)

	got := g.Closure([]Root{{Obj: obj(t, pkg, "a"), Label: "a"}}, nil)
	for _, name := range []string{"a", "b", "c"} {
		if got[obj(t, pkg, name)] != "a" {
			t.Errorf("closure(a) missing %s or mislabeled: %v", name, got)
		}
	}
	if _, ok := got[obj(t, pkg, "d")]; ok {
		t.Errorf("closure(a) wrongly contains d (a caller, not a callee)")
	}

	// Earlier roots win ties, so c is labeled by a even when b is also a root.
	got = g.Closure([]Root{
		{Obj: obj(t, pkg, "a"), Label: "a"},
		{Obj: obj(t, pkg, "b"), Label: "b"},
	}, nil)
	if got[obj(t, pkg, "c")] != "a" {
		t.Errorf("c labeled %q, want earlier root a", got[obj(t, pkg, "c")])
	}

	// stop: b joins but does not propagate, so c stays out.
	got = g.Closure([]Root{{Obj: obj(t, pkg, "b"), Label: "b"}},
		func(o types.Object) bool { return o.Name() == "b" })
	if _, ok := got[obj(t, pkg, "b")]; !ok {
		t.Errorf("stopped root b should still join the closure")
	}
	if _, ok := got[obj(t, pkg, "c")]; ok {
		t.Errorf("closure through stopped b should not reach c")
	}
}

func TestMethodEdges(t *testing.T) {
	info, files, pkg := check(t)
	g := Build(info, files)
	reach := g.ReachableFrom(obj(t, pkg, "f"))
	if len(reach) != 3 { // f, T.M, e
		t.Fatalf("reachable from f = %d funcs, want 3 (f, T.M, e)", len(reach))
	}
	if !reach[obj(t, pkg, "e")] {
		t.Errorf("f should reach e through method T.M")
	}
}

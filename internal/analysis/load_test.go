package analysis

import (
	"go/token"
	"os"
	"testing"
)

// ModuleRoot locates the enclosing go.mod from the test's working directory.
func ModuleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestLoadModule(t *testing.T) {
	mod, err := LoadModule(ModuleRoot(t), "./internal/core", "./internal/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "reuseiq" {
		t.Fatalf("module path = %q, want reuseiq", mod.Path)
	}
	core := mod.Lookup("reuseiq/internal/core")
	if core == nil {
		t.Fatal("internal/core not loaded")
	}
	if core.Types.Scope().Lookup("Controller") == nil {
		t.Error("core.Controller not in package scope")
	}
	// telemetry imports core: the import must resolve to the source-checked
	// package object, not a second export-data copy.
	tel := mod.Lookup("reuseiq/internal/telemetry")
	if tel == nil {
		t.Fatal("internal/telemetry not loaded")
	}
	for _, imp := range tel.Types.Imports() {
		if imp.Path() == "reuseiq/internal/core" && imp != core.Types {
			t.Error("telemetry imports a duplicate core package object")
		}
	}
	// Dependency order: core precedes telemetry.
	var iCore, iTel int
	for i, p := range mod.Packages {
		switch p.Path {
		case "reuseiq/internal/core":
			iCore = i
		case "reuseiq/internal/telemetry":
			iTel = i
		}
	}
	if iCore > iTel {
		t.Errorf("dependency order violated: core at %d after telemetry at %d", iCore, iTel)
	}
	if mod.Position(core.Files[0].Pos()).Filename == "" {
		t.Error("positions not resolvable")
	}
	_ = token.NoPos
}

// Package analysistest runs an analyzer over a seeded-violation testdata
// package and checks its diagnostics against "// want" expectations, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// Testdata layout mirrors x/tools: <analyzer pkg>/testdata/src/<pkg>/*.go.
// Each line that should trigger a diagnostic carries a comment of the form
//
//	// want "regexp" "another regexp"
//
// with one quoted (or backquoted) Go string literal per expected diagnostic
// on that line. Testdata packages may import any main-module package and
// any dependency already in the module's build closure; they are
// type-checked against the real module universe, so analyzers that match
// real types (e.g. telemetry.Registry) see the genuine objects.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"reuseiq/internal/analysis"
)

var (
	loadOnce sync.Once
	loadedM  *analysis.Module
	loadErr  error
)

// module loads the enclosing module exactly once per test process.
func module(t testing.TB) *analysis.Module {
	t.Helper()
	loadOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loadErr = err
			return
		}
		root, err := analysis.FindModuleRoot(wd)
		if err != nil {
			loadErr = err
			return
		}
		loadedM, loadErr = analysis.LoadModule(root)
	})
	if loadErr != nil {
		t.Fatalf("loading module: %v", loadErr)
	}
	return loadedM
}

// Run type-checks testdata/src/<pkg> relative to the calling test's
// directory and applies the analyzer, failing the test on any mismatch
// between reported diagnostics and // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	mod := module(t)
	dir := filepath.Join("testdata", "src", pkg)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("testdata package %s: %v", pkg, err)
	}
	extra, err := mod.CheckExtra(pkg, dir)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}
	findings, err := analysis.Run(mod, []*analysis.Analyzer{a}, []*analysis.Package{extra})
	if err != nil {
		t.Fatal(err)
	}

	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, f := range extra.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := mod.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				for _, lit := range stringLits(c.Text[i+len("// want "):]) {
					rx, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
					}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	for _, f := range findings {
		pos := mod.Position(f.Diagnostic.Pos)
		k := lineKey{pos.Filename, pos.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx != nil && rx.MatchString(f.Diagnostic.Message) {
				wants[k][i] = nil // consume
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, f.Diagnostic.Message)
		}
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			if rx != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
			}
		}
	}
}

// stringLits extracts consecutive quoted or backquoted Go string literals.
func stringLits(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit, rest string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return out
			}
			u, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return out
			}
			lit, rest = u, s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			lit, rest = s[1:1+end], s[end+2:]
		default:
			return out
		}
		out = append(out, lit)
		s = strings.TrimSpace(rest)
	}
	return out
}

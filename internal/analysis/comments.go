package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation grammar shared by the reuselint analyzers. Markers are
// magic comments of the form
//
//	//reuse:<verb> [justification...]
//
// attached either to a declaration (doc comment: hotpath roots, nilguard
// fields, exhaustive enums) or to a statement line (waivers: allow-alloc,
// allow-unguarded, allow-nonexhaustive). Waivers require a justification;
// an unjustified waiver is itself reported by the analyzer that honors it.

// Marker extracts the first "//reuse:<name>" comment in the group and
// returns the text following the marker (the justification, may be empty)
// and whether the marker was present.
func Marker(doc *ast.CommentGroup, name string) (justification string, ok bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//reuse:" + name
	for _, c := range doc.List {
		if rest, found := strings.CutPrefix(c.Text, prefix); found {
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// Waivers indexes line-level waiver comments ("//reuse:<name> <why>") for a
// set of files: a waiver on a line suppresses findings on that line and the
// line directly below it (so it can sit above a long statement).
type Waivers struct {
	fset  *token.FileSet
	lines map[string]map[int]string // file -> line -> justification
}

// NewWaivers scans every comment in files for the given marker name.
func NewWaivers(fset *token.FileSet, files []*ast.File, name string) *Waivers {
	w := &Waivers{fset: fset, lines: make(map[string]map[int]string)}
	prefix := "//reuse:" + name
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, found := strings.CutPrefix(c.Text, prefix)
				if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				p := fset.Position(c.Pos())
				m := w.lines[p.Filename]
				if m == nil {
					m = make(map[int]string)
					w.lines[p.Filename] = m
				}
				m[p.Line] = strings.TrimSpace(rest)
			}
		}
	}
	return w
}

// At reports whether a waiver covers pos, and the waiver's justification
// text (empty when the author supplied none).
func (w *Waivers) At(pos token.Pos) (justification string, ok bool) {
	p := w.fset.Position(pos)
	m := w.lines[p.Filename]
	if m == nil {
		return "", false
	}
	if j, found := m[p.Line]; found {
		return j, true
	}
	if j, found := m[p.Line-1]; found {
		return j, true
	}
	return "", false
}

// ChainOf resolves an expression of the form ident.sel1.sel2... to the
// sequence of objects it names, outermost first ([m, Tel] for m.Tel).
// It reports false for anything more complex (calls, indexing, parens are
// unwrapped but their operands must still be plain chains).
func ChainOf(info *types.Info, e ast.Expr) ([]types.Object, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return []types.Object{obj}, true
		}
		return nil, false
	case *ast.SelectorExpr:
		base, ok := ChainOf(info, e.X)
		if !ok {
			return nil, false
		}
		obj := info.Uses[e.Sel]
		if obj == nil {
			return nil, false
		}
		return append(base, obj), true
	case *ast.ParenExpr:
		return ChainOf(info, e.X)
	}
	return nil, false
}

// ChainEqual reports whether two resolved chains name the same path.
func ChainEqual(a, b []types.Object) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ExprChainEqual resolves both expressions and reports whether they are the
// same plain chain.
func ExprChainEqual(info *types.Info, a, b ast.Expr) bool {
	ca, ok := ChainOf(info, a)
	if !ok {
		return false
	}
	cb, ok := ChainOf(info, b)
	if !ok {
		return false
	}
	return ChainEqual(ca, cb)
}

// Package hotalloctest seeds violations for the hotalloc analyzer.
package hotalloctest

import (
	"fmt"
	"strconv"
)

type ring struct {
	buf   []int
	names map[int]string
	sink  func()
}

// step is a per-cycle entry point.
//
//reuse:hotpath
func step(r *ring, n int) {
	r.buf = append(r.buf, n) // self-append: exempt, budget owned at runtime

	other := r.buf
	r.buf = append(other, n) // want `append into a different slice`

	s := []int{1, 2, n} // want `slice literal allocates`
	_ = s
	m := map[int]string{} // want `map literal allocates`
	_ = m
	b := make([]byte, n) // want `make allocates`
	_ = b
	p := new(ring) // want `new allocates`
	_ = p

	helper(r, n) // hot closure: helper is checked too
	waivedHelper(r, n)
	coldHelper(n) // resolves to nothing hot? no: module callee, pulled in
}

// helper is hot because step calls it.
func helper(r *ring, n int) {
	_ = fmt.Sprintf("slot %d", n) // want `fmt\.Sprintf formats and allocates`
	_ = strconv.Itoa(n)           // want `strconv\.Itoa allocates its result`
	_ = strconv.AppendInt(nil, int64(n), 10)
	_, _ = strconv.Atoi("7")
}

// waivedHelper owns its allocation cost: body skipped, call sites unboxed.
//
//reuse:allow-alloc debug formatter, nil-gated by the caller
func waivedHelper(r *ring, args ...any) {
	_ = fmt.Sprintln(args...)
}

// coldHelper is hot via step's call edge.
func coldHelper(n int) string {
	name := "slot-" + strconv.Itoa(n) // want `string concatenation allocates` `strconv\.Itoa allocates`
	return name
}

//reuse:hotpath
func conversions(bs []byte, s string, n int) {
	_ = string(bs) // want `string/slice conversion copies and allocates`
	_ = []byte(s)  // want `string/slice conversion copies and allocates`
	_ = []rune(s)  // want `string/slice conversion copies and allocates`
	_ = int64(n)   // numeric conversion is free
	const tag = "x"
	_ = tag + "y" // constant concat folds at compile time
}

//reuse:hotpath
func closures(r *ring, n int) {
	r.sink = func() { _ = n } // want `function literal captures "n" and allocates a closure`
	r.sink = func() {}        // non-capturing literal is static
}

type observer interface{ observe(v any) }

//reuse:hotpath
func boxing(o observer, r *ring, n int) {
	o.observe(n)  // want `argument boxes int into interface`
	o.observe(42) // constant: static data, no box
	o.observe(r)  // pointer fits the interface word
	o.observe(nil)
}

//reuse:hotpath
func waivedConstructs(r *ring, n int) {
	//reuse:allow-alloc warm-up path, runs once per session not per cycle
	r.names = map[int]string{}

	r.buf = make([]int, n) //reuse:allow-alloc capacity reset on revoke only

	//reuse:allow-alloc
	_ = fmt.Sprint(n) // want `waiver has no justification`
}

//reuse:hotpath
func starAppend(p *[]int, n int) {
	*p = append(*p, n) // self-append through a pointer deref: exempt
	q := *p
	*p = append(q, n) // want `append into a different slice`
}

// notHot is never reached from a hotpath root: anything goes.
func notHot(n int) string {
	return fmt.Sprintf("cold %d", strconv.Itoa(n)[0])
}

//reuse:allow-alloc
func unjustifiedFuncWaiver(n int) { // want `function waiver has no justification`
	_ = fmt.Sprint(n)
}

//reuse:hotpath
func callsUnjustified(n int) {
	unjustifiedFuncWaiver(n)
}

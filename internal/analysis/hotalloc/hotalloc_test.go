package hotalloc_test

import (
	"testing"

	"reuseiq/internal/analysis/analysistest"
	"reuseiq/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "hotalloctest")
}

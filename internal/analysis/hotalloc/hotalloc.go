// Package hotalloc enforces the simulator's steady-state zero-allocation
// budget statically. Functions marked "//reuse:hotpath" are per-cycle
// entry points (Machine.Step, Queue.Dispatch, ...); they and every module
// function they statically call must not contain allocating constructs:
//
//   - escaping composite literals (&T{...}, slice/map literals), make, new
//   - append that grows a different slice than it reads (self-append,
//     x = append(x, ...), is amortized into preallocated capacity and the
//     runtime budget is owned by TestSteadyStateZeroAllocs)
//   - fmt calls and allocating strconv helpers (Itoa, Format*, Quote*)
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - function literals that capture variables (closure allocation)
//   - interface boxing of non-constant call arguments
//
// The closure is static and module-local: calls that cannot be resolved to
// a module FuncDecl (hook fields, interface methods, stdlib) do not extend
// the hot set. A whole function can be waived with "//reuse:allow-alloc
// <why>" in its doc comment — its body is skipped and calls to it from hot
// code carry no boxing checks (the waiver owns the cost, e.g. a trace
// helper that is nil-gated before formatting). Individual constructs are
// waived with the same marker on their line or the line above. Waivers
// without a justification are themselves findings.
package hotalloc

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"reuseiq/internal/analysis"
	"reuseiq/internal/analysis/callgraph"
)

const waiverName = "allow-alloc"

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "//reuse:hotpath functions and their module-local static callees " +
		"must not allocate; waive a construct or whole function with " +
		"//reuse:allow-alloc <why>",
	Run: run,
}

// allocStrconv lists strconv functions that allocate their result (the
// Append* family writes into a caller buffer and Parse*/Atoi return values).
func allocStrconv(name string) bool {
	switch {
	case name == "Itoa":
		return true
	case len(name) >= 6 && name[:6] == "Format":
		return true
	case len(name) >= 5 && name[:5] == "Quote":
		return true
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	idx := buildIndex(pass)
	waivers := analysis.NewWaivers(pass.Fset, pass.Files, waiverName)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			root, hot := idx.hot[obj]
			if !hot {
				continue
			}
			if why, waived := idx.waivedFuncs[obj]; waived {
				if why == "" {
					pass.Reportf(fd.Pos(), "//reuse:%s function waiver has no justification", waiverName)
				}
				continue
			}
			c := &checker{pass: pass, idx: idx, waivers: waivers, root: root}
			c.checkBody(fd.Body)
		}
	}
	return nil, nil
}

// index is the module-wide view: which functions are hot (and via which
// root), and which carry a function-level waiver.
type index struct {
	hot         map[types.Object]string // func object -> root name that reached it
	waivedFuncs map[types.Object]string // func object -> justification
}

// buildIndex walks every module file, finds //reuse:hotpath roots and
// function-level //reuse:allow-alloc waivers, and closes the hot set over
// the shared static call graph. Waived functions join the hot set (so an
// empty justification is reportable) but do not propagate.
func buildIndex(pass *analysis.Pass) *index {
	idx := &index{
		waivedFuncs: make(map[types.Object]string),
	}
	g := callgraph.Build(pass.TypesInfo, pass.ModuleFiles())
	var roots []callgraph.Root
	for obj, fd := range g.Decls {
		if _, ok := analysis.Marker(fd.Doc, "hotpath"); ok {
			roots = append(roots, callgraph.Root{Obj: obj, Label: obj.Name()})
		}
		if why, ok := analysis.Marker(fd.Doc, waiverName); ok {
			idx.waivedFuncs[obj] = why
		}
	}
	// Map iteration above makes the root discovery order arbitrary; sort so
	// the label a multiply-reached function gets is stable run to run.
	sort.Slice(roots, func(i, j int) bool {
		return g.Decls[roots[i].Obj].Pos() < g.Decls[roots[j].Obj].Pos()
	})
	idx.hot = g.Closure(roots, func(obj types.Object) bool {
		_, waived := idx.waivedFuncs[obj]
		return waived
	})
	return idx
}

// calleeObject resolves a call to the *types.Func it statically invokes.
// Kept as a local name for the checker below; the implementation lives in
// the shared callgraph package.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	return callgraph.CalleeObject(info, call)
}

type checker struct {
	pass    *analysis.Pass
	idx     *index
	waivers *analysis.Waivers
	root    string

	// selfAppends are append CallExprs of the form x = append(x, ...),
	// pre-collected per body so the general walk can skip them.
	selfAppends map[*ast.CallExpr]bool
}

func (c *checker) checkBody(body *ast.BlockStmt) {
	c.selfAppends = make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !isBuiltin(c.pass.TypesInfo, call, "append") {
				continue
			}
			if sameLValue(c.pass.TypesInfo, as.Lhs[i], call.Args[0]) {
				c.selfAppends[call] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		case *ast.CallExpr:
			return c.checkCall(n)
		case *ast.BinaryExpr:
			c.checkConcat(n)
		case *ast.FuncLit:
			c.checkFuncLit(n)
			return false // the literal body runs later; it is not hot itself
		}
		return true
	})
}

// report emits a finding unless a line waiver covers pos.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if why, waived := c.waivers.At(pos); waived {
		if why == "" {
			c.pass.Reportf(pos, "//reuse:%s waiver has no justification", waiverName)
		}
		return
	}
	msg := "hot path (via //reuse:hotpath " + c.root + "): " + format
	c.pass.Reportf(pos, msg, args...)
}

func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates")
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
	}
}

// checkCall handles builtins (make/new/append), allocating stdlib calls,
// conversions, &T{} escapes, and interface boxing of arguments. It returns
// false to stop the walk below nodes whose children are already handled.
func (c *checker) checkCall(call *ast.CallExpr) bool {
	info := c.pass.TypesInfo
	switch {
	case isBuiltin(info, call, "make"):
		c.report(call.Pos(), "make allocates")
		return true
	case isBuiltin(info, call, "new"):
		c.report(call.Pos(), "new allocates")
		return true
	case isBuiltin(info, call, "append"):
		if !c.selfAppends[call] {
			c.report(call.Pos(), "append into a different slice may grow and allocate (self-append x = append(x, ...) is exempt)")
		}
		return true
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return true
	}
	callee := calleeObject(info, call)
	if callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "fmt":
			c.report(call.Pos(), "fmt.%s formats and allocates", callee.Name())
			return true
		case "strconv":
			if allocStrconv(callee.Name()) {
				c.report(call.Pos(), "strconv.%s allocates its result", callee.Name())
				return true
			}
		}
	}
	// Calls to function-level-waived module functions own their own cost:
	// skip boxing checks on the arguments (typically ...any trace helpers).
	if callee != nil {
		if _, waived := c.idx.waivedFuncs[callee]; waived {
			return true
		}
	}
	c.checkBoxing(call)
	return true
}

func (c *checker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	// Constant string -> []byte and friends still allocate; only
	// string -> string style identity conversions are free.
	_, toStr := to.Underlying().(*types.Basic)
	_, fromStr := from.Underlying().(*types.Basic)
	_, toSlice := to.Underlying().(*types.Slice)
	_, fromSlice := from.Underlying().(*types.Slice)
	if (toStr && isString(to) && fromSlice) || (toSlice && isString(from) && fromStr) {
		c.report(call.Pos(), "string/slice conversion copies and allocates")
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *checker) checkConcat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[b]
	if !ok || tv.Type == nil || !isString(tv.Type) {
		return
	}
	if tv.Value != nil {
		return // constant folding: no runtime concat
	}
	c.report(b.OpPos, "string concatenation allocates")
}

// checkFuncLit flags literals that capture enclosing variables (the capture
// forces a closure allocation). Non-capturing literals compile to static
// funcs and are free.
func (c *checker) checkFuncLit(lit *ast.FuncLit) {
	info := c.pass.TypesInfo
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
			return true // package-level variable: referenced, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	if captured != "" {
		c.report(lit.Pos(), "function literal captures %q and allocates a closure", captured)
	}
}

// checkBoxing flags non-constant arguments passed to interface-typed
// parameters (the conversion heap-boxes the value). Constants and nil are
// exempt: the compiler materializes them as static data.
func (c *checker) checkBoxing(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return // f(xs...) forwards an existing slice: no per-arg boxing here
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if tv.Value != nil || tv.IsNil() {
			continue
		}
		if _, argIface := tv.Type.Underlying().(*types.Interface); argIface {
			continue // already an interface: no new box
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in the interface word: no box
		}
		c.report(arg.Pos(), "argument boxes %s into interface %s", tv.Type, pt)
	}
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// sameLValue reports whether two expressions statically denote the same
// storage location: matching ident/selector/index paths.
func sameLValue(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bi, ok := b.(*ast.Ident)
		return ok && objOf(info, a) != nil && objOf(info, a) == objOf(info, bi)
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		return ok && info.Uses[a.Sel] == info.Uses[bs.Sel] && sameLValue(info, a.X, bs.X)
	case *ast.StarExpr:
		bs, ok := b.(*ast.StarExpr)
		return ok && sameLValue(info, a.X, bs.X)
	case *ast.IndexExpr:
		bx, ok := b.(*ast.IndexExpr)
		if !ok || !sameLValue(info, a.X, bx.X) {
			return false
		}
		if sameLValue(info, a.Index, bx.Index) {
			return true
		}
		av, aok := info.Types[a.Index]
		bv, bok := info.Types[bx.Index]
		return aok && bok && av.Value != nil && bv.Value != nil &&
			constant.Compare(av.Value, token.EQL, bv.Value)
	}
	return false
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

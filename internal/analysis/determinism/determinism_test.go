package determinism_test

import (
	"os"
	"slices"
	"testing"

	"reuseiq/internal/analysis"
	"reuseiq/internal/analysis/analysistest"
	"reuseiq/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "determinismtest")
}

func TestDeterminismPackageMarker(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "determinismpkg")
}

// TestNondetSourceFacts checks the vettool fact surface: the exported
// functions that transitively reach a wall-clock or PRNG source — and only
// those — are published for dependent packages.
func TestNondetSourceFacts(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := mod.CheckExtra("determinismtest", "testdata/src/determinismtest")
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Analyzer:  determinism.Analyzer,
		Fset:      mod.Fset,
		Files:     extra.Files,
		Pkg:       extra.Types,
		TypesInfo: mod.Info,
	}
	fact, ok := determinism.Analyzer.ExportFacts(pass).(determinism.Fact)
	if !ok {
		t.Fatalf("ExportFacts returned %T, want determinism.Fact", determinism.Analyzer.ExportFacts(pass))
	}
	// Everything in the testdata package is unexported, so nothing may leak
	// into the fact even though many functions reach time.Now.
	if len(fact.NondetSources) != 0 {
		t.Fatalf("NondetSources = %v, want none (all testdata funcs unexported)", fact.NondetSources)
	}
}

// TestNondetSourceFactsExported does the same over a package with exported
// reachers.
func TestNondetSourceFactsExported(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := mod.CheckExtra("detfacts", "testdata/src/detfacts")
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Analyzer:  determinism.Analyzer,
		Fset:      mod.Fset,
		Files:     extra.Files,
		Pkg:       extra.Types,
		TypesInfo: mod.Info,
	}
	fact := determinism.Analyzer.ExportFacts(pass).(determinism.Fact)
	want := []string{"Clock.Stamp", "Stamp"}
	if !slices.Equal(fact.NondetSources, want) {
		t.Fatalf("NondetSources = %v, want %v", fact.NondetSources, want)
	}
}

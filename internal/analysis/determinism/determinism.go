// Package determinism proves, statically, that the module's fingerprints
// are stable: in any function reachable from a "//reuse:deterministic"
// root — the snapshot fingerprints, the wire codec, fast-forward's
// structural digest, the regression sentinel's canonical capture — nothing
// may depend on map iteration order, wall-clock or process identity, or
// bit-lossy float comparison. These are exactly the three accidents that
// make a byte-identical artifact quietly non-reproducible: the bytes differ
// between two runs of the same build, and every downstream comparison
// (golden files, the cross-run sentinel, checkpoint byte-identity) reports
// drift that no code change caused.
//
// Markers and waivers:
//
//   - "//reuse:deterministic" in a function's doc comment roots the taint:
//     the function and everything it transitively calls must be
//     deterministic. The marker in a package comment roots every function
//     in the package.
//   - "//reuse:allow-nondet <why>" on the offending line waives one
//     finding (provenance stamps that deliberately record the wall clock,
//     an entropy draw feeding a diagnostic, a float equality that is
//     genuinely wanted). A waiver with no justification is itself a
//     finding.
//
// The three checks, inside the tainted closure:
//
//  1. Ranging over a map. Allowed only as the collect-then-sort idiom —
//     the range body does nothing but append to (or assign into) local
//     collections, possibly under simple ifs, and every collection is
//     later passed to a sort call in the same function — or as a
//     commutative integer reduction (+=, |=, counters), whose result is
//     order-independent. Anything else is a finding: emitting to output
//     inside the range observes iteration order.
//
//  2. Calling a wall-clock, PRNG or process-identity source: time.Now and
//     friends, anything in math/rand (including methods on rand.Rand),
//     os.Getpid/Hostname/Environ/Getenv. In whole-module mode the closure
//     itself reaches through module-internal helpers; under the vettool
//     protocol, per-package facts list exported functions that transitively
//     reach such a source, so the taint crosses package boundaries in
//     dependency order.
//
//  3. Comparing floats with == or != . Fingerprints must compare the bit
//     pattern (math.Float64bits) — raw comparison conflates 0.0 with -0.0
//     and is false for NaN against itself, so two states that serialize
//     differently can compare "equal" and vice versa.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"reuseiq/internal/analysis"
	"reuseiq/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "functions reachable from a //reuse:deterministic root must not " +
		"range over maps un-sorted, read wall clocks, PRNGs or process " +
		"identity, or compare floats with == (waiver //reuse:allow-nondet <why>)",
	Run:         run,
	ExportFacts: exportFacts,
}

const waiverName = "allow-nondet"

// Fact is determinism's cross-package fact: the exported functions and
// methods of a package that transitively reach a forbidden source. Methods
// are listed as "Recv.Name". Dependent packages treat a call to a listed
// function like a direct forbidden call.
type Fact struct {
	NondetSources []string
}

// forbiddenCall reports whether fn is a wall-clock, PRNG or
// process-identity source, with a short description for the finding.
func forbiddenCall(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name(), true
		}
	case "os":
		switch fn.Name() {
		case "Getpid", "Hostname", "Environ", "Getenv", "LookupEnv":
			return "os." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		return pkg.Path() + "." + fn.Name(), true
	}
	return "", false
}

// factName renders a function the way Fact lists it.
func factName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

type checker struct {
	pass    *analysis.Pass
	graph   *callgraph.Graph
	waivers *analysis.Waivers
	// tainted maps each function in the deterministic closure to the root
	// it was reached from (for the finding message).
	tainted map[types.Object]string
	// depSources caches, per imported package, the set of fact-listed
	// nondet sources.
	depSources map[*types.Package]map[string]bool
}

func run(pass *analysis.Pass) (any, error) {
	files := pass.ModuleFiles()
	c := &checker{
		pass:       pass,
		graph:      callgraph.Build(pass.TypesInfo, files),
		waivers:    analysis.NewWaivers(pass.Fset, files, waiverName),
		depSources: make(map[*types.Package]map[string]bool),
	}

	roots := deterministicRoots(pass, c.graph, files)
	c.tainted = c.graph.Closure(roots, nil)

	// Check each tainted function that the pass owns (module mode walks the
	// whole closure from each package's pass; the driver dedups identical
	// findings, and anchoring to the defining package keeps vettool passes
	// from reporting into files they did not load).
	var fns []types.Object
	for obj := range c.tainted {
		if obj.Pkg() == pass.Pkg || pass.Module != nil {
			fns = append(fns, obj)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, obj := range fns {
		if fd := c.graph.Decls[obj]; fd != nil && fd.Body != nil {
			c.checkFunc(obj, fd)
		}
	}
	return nil, nil
}

// deterministicRoots collects the marked functions, in declaration order.
// A package-comment marker roots every function declared in that package.
func deterministicRoots(pass *analysis.Pass, g *callgraph.Graph, files []*ast.File) []callgraph.Root {
	taintedPkgs := make(map[string]bool)
	for _, f := range files {
		if _, ok := analysis.Marker(f.Doc, "deterministic"); ok {
			taintedPkgs[f.Name.Name] = true
		}
	}
	var roots []callgraph.Root
	for obj, fd := range g.Decls {
		_, marked := analysis.Marker(fd.Doc, "deterministic")
		if !marked && obj.Pkg() != nil {
			marked = taintedPkgs[obj.Pkg().Name()]
		}
		if marked {
			roots = append(roots, callgraph.Root{Obj: obj, Label: obj.Name()})
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Obj.Pos() < roots[j].Obj.Pos() })
	return roots
}

// nondetSource reports whether a call to fn (which has no body in view)
// reaches a forbidden source according to its package's exported fact.
func (c *checker) nondetSource(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || pkg == c.pass.Pkg {
		return false
	}
	set, ok := c.depSources[pkg]
	if !ok {
		set = make(map[string]bool)
		var fact Fact
		if c.pass.DepFact(pkg.Path(), &fact) {
			for _, name := range fact.NondetSources {
				set[name] = true
			}
		}
		c.depSources[pkg] = set
	}
	return set[factName(fn)]
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if why, waived := c.waivers.At(pos); waived {
		if why == "" {
			c.pass.Reportf(pos, "//reuse:%s waiver has no justification", waiverName)
		}
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) checkFunc(obj types.Object, fd *ast.FuncDecl) {
	root := c.tainted[obj]
	info := c.pass.TypesInfo

	// Map ranges not absorbed by the collect-then-sort idiom or a
	// commutative reduction.
	sorted := sortedExprs(info, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if _, isMap := info.TypeOf(n.X).Underlying().(*types.Map); !isMap {
				return true
			}
			if ok, culprit := mapRangeAbsorbed(info, n, sorted); !ok {
				c.report(n.Pos(), "map range in %s (deterministic via %s) %s; "+
					"collect and sort, or waive with //reuse:%s <why>",
					obj.Name(), root, culprit, waiverName)
			}
		case *ast.CallExpr:
			fn, _ := callgraph.CalleeObject(info, n).(*types.Func)
			if fn == nil {
				return true
			}
			if desc, bad := forbiddenCall(fn); bad {
				c.report(n.Pos(), "%s calls %s but must be deterministic (via %s); "+
					"thread the value in, or waive with //reuse:%s <why>",
					obj.Name(), desc, root, waiverName)
			} else if c.nondetSource(fn) {
				c.report(n.Pos(), "%s calls %s.%s, which transitively reaches a wall-clock or PRNG "+
					"source, but must be deterministic (via %s); waive with //reuse:%s <why> if intended",
					obj.Name(), fn.Pkg().Name(), fn.Name(), root, waiverName)
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if isFloat(info.TypeOf(n.X)) || isFloat(info.TypeOf(n.Y)) {
				c.report(n.Pos(), "raw float comparison in %s (deterministic via %s) conflates 0.0 "+
					"with -0.0 and breaks on NaN; compare math.Float64bits, or waive with //reuse:%s <why>",
					obj.Name(), root, waiverName)
			}
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortedExprs collects the objects passed to sort/slices calls anywhere in
// the function body: sort.Slice(x, ...), sort.Ints(x), slices.Sort(x), a
// sort.Sort(byX(x)) conversion, and method forms.
func sortedExprs(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, _ := callgraph.CalleeObject(info, call).(*types.Func)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			markSortTarget(info, arg, out)
		}
		return true
	})
	return out
}

// markSortTarget resolves a sort-call argument to the collected object it
// orders, reaching through conversions like sort.Sort(byAddr(pages)).
func markSortTarget(info *types.Info, arg ast.Expr, out map[types.Object]bool) {
	arg = ast.Unparen(arg)
	if call, ok := arg.(*ast.CallExpr); ok && len(call.Args) == 1 {
		// A conversion to a sortable named type counts as sorting its operand.
		if _, isConv := info.Types[call.Fun].Type.(*types.Signature); !isConv {
			markSortTarget(info, call.Args[0], out)
			return
		}
	}
	if obj := exprObject(info, arg); obj != nil {
		out[obj] = true
	}
}

// exprObject resolves x, x.f, x[i] to the outermost stable object.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			return info.Uses[x.Sel]
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mapRangeAbsorbed decides whether a map range is order-safe: either the
// collect-then-sort idiom (every statement appends to or assigns into a
// collection that is sorted later in the function, possibly under ifs) or a
// commutative integer reduction. Returns a description of the offending
// construct otherwise.
func mapRangeAbsorbed(info *types.Info, rng *ast.RangeStmt, sorted map[types.Object]bool) (bool, string) {
	ok := true
	culprit := ""
	var visit func(stmts []ast.Stmt)
	visit = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			if !ok {
				return
			}
			switch s := s.(type) {
			case *ast.AssignStmt:
				if !assignAbsorbed(info, s, sorted) {
					ok, culprit = false, "escapes the body without a later sort"
				}
			case *ast.IncDecStmt:
				// Counters are commutative.
			case *ast.IfStmt:
				visit(s.Body.List)
				if s.Else != nil {
					switch e := s.Else.(type) {
					case *ast.BlockStmt:
						visit(e.List)
					case *ast.IfStmt:
						visit([]ast.Stmt{e})
					}
				}
			case *ast.BranchStmt:
				// continue/break don't observe order.
			case *ast.DeclStmt:
				// Local declarations feed the assignments already checked.
			default:
				ok, culprit = false, "does more than collect (statements other than append/assign/if)"
			}
		}
	}
	visit(rng.Body.List)
	return ok, culprit
}

// assignAbsorbed accepts, inside a map range:
//   - x = append(x, ...) and x[k] = v where x is later sorted (collect);
//   - integer-typed x += e, x |= e, &=, ^=, and x++ via IncDecStmt
//     (commutative reduction);
//   - := defining locals from the range variables (feeding a collect).
func assignAbsorbed(info *types.Info, as *ast.AssignStmt, sorted map[types.Object]bool) bool {
	switch as.Tok {
	case token.DEFINE:
		return true
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		for _, lhs := range as.Lhs {
			t := info.TypeOf(lhs)
			if t == nil {
				return false
			}
			if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
				return false
			}
		}
		return true
	case token.ASSIGN:
		for i, lhs := range as.Lhs {
			obj := exprObject(info, lhs)
			if obj == nil || !sorted[obj] {
				return false
			}
			// x = append(x, ...) keeps the collect shape; x[k] = v into a
			// sorted-later collection is also a collect (map inversion).
			if i < len(as.Rhs) {
				if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
						continue
					}
				}
			}
			if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); !isIndex {
				return false
			}
		}
		return true
	}
	return false
}

// exportFacts publishes the exported functions of the package that
// transitively reach a forbidden source, so dependent packages' vettool
// passes can carry the taint across the package boundary.
func exportFacts(pass *analysis.Pass) any {
	info := pass.TypesInfo
	g := callgraph.Build(info, pass.Files)

	// Seed: functions whose own body makes a forbidden call or calls a
	// dependency's listed source.
	c := &checker{pass: pass, depSources: make(map[*types.Package]map[string]bool)}
	direct := make(map[types.Object]bool)
	for obj, fd := range g.Decls {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, _ := callgraph.CalleeObject(info, call).(*types.Func); fn != nil {
				if _, bad := forbiddenCall(fn); bad || c.nondetSource(fn) {
					direct[obj] = true
				}
			}
			return true
		})
	}
	// Propagate backwards: a caller of a nondet function is nondet. The
	// callgraph stores forward edges, so invert once.
	callers := make(map[types.Object][]types.Object)
	for from, tos := range g.Callees {
		for _, to := range tos {
			callers[to] = append(callers[to], from)
		}
	}
	work := make([]types.Object, 0, len(direct))
	for obj := range direct {
		work = append(work, obj)
	}
	nondet := make(map[types.Object]bool)
	for _, obj := range work {
		nondet[obj] = true
	}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[cur] {
			if !nondet[caller] {
				nondet[caller] = true
				work = append(work, caller)
			}
		}
	}
	var names []string
	for obj := range nondet {
		fn, ok := obj.(*types.Func)
		if !ok || !fn.Exported() {
			continue
		}
		name := factName(fn)
		// Methods on unexported types are unreachable from outside.
		if r, _, found := strings.Cut(name, "."); found && !token.IsExported(r) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return Fact{NondetSources: names}
}

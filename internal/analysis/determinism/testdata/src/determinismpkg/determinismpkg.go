// Package determinismpkg is marked deterministic as a whole: the package
// comment roots every function, so an unmarked function's violation is
// still caught.
//
//reuse:deterministic
package determinismpkg

import "time"

func anyFunc() int64 {
	return time.Now().UnixNano() // want `anyFunc calls time\.Now but must be deterministic \(via anyFunc\)`
}

var _ = anyFunc

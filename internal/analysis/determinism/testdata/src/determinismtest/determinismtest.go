// Package determinismtest seeds determinism violations inside marked
// closures, plus the idioms and waivers that must NOT trigger: the
// collect-then-sort map range, commutative integer reductions, bit-pattern
// float comparison, and justified/unjustified allow-nondet waivers.
package determinismtest

import (
	"math"
	"math/rand"
	"os"
	"sort"
	"time"
)

// fingerprint is clean: the map range only collects, and the collection is
// sorted before anything observes its order.
//
//reuse:deterministic
func fingerprint(m map[string]uint64) uint64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var h uint64
	for _, k := range keys {
		h = h*31 + m[k]
	}
	return h
}

// count is clean: integer += is commutative, so iteration order cannot
// reach the result.
//
//reuse:deterministic
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// leaky folds map values through a non-commutative update, so the hash
// depends on iteration order.
//
//reuse:deterministic
func leaky(m map[string]uint64) uint64 {
	var h uint64
	for _, v := range m { // want `map range in leaky \(deterministic via leaky\) escapes the body without a later sort`
		h = h*31 + v
	}
	return h
}

// helper is unmarked but reached from stamps below: the taint follows the
// callgraph, and the finding names the root.
func helper() int64 {
	return time.Now().UnixNano() // want `helper calls time\.Now but must be deterministic \(via stamps\)`
}

//reuse:deterministic
func stamps() int64 { return helper() }

//reuse:deterministic
func entropy() uint64 {
	return rand.Uint64() // want `entropy calls math/rand\.Uint64 but must be deterministic \(via entropy\)`
}

//reuse:deterministic
func pid() int {
	return os.Getpid() // want `pid calls os\.Getpid but must be deterministic \(via pid\)`
}

// rawEq compares floats directly; NaN and signed zero make this unstable.
//
//reuse:deterministic
func rawEq(a, b float64) bool {
	return a == b // want `raw float comparison in rawEq \(deterministic via rawEq\)`
}

// bitEq is the approved form: the operands reaching == are uint64.
//
//reuse:deterministic
func bitEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// waived records a provenance stamp on purpose, with a justification.
//
//reuse:deterministic
func waived() int64 {
	//reuse:allow-nondet provenance stamp, recorded alongside the hash, never inside it
	return time.Now().UnixNano()
}

// badWaiver waives without saying why, which is itself a finding.
//
//reuse:deterministic
func badWaiver() int64 {
	//reuse:allow-nondet
	return time.Now().UnixNano() // want `//reuse:allow-nondet waiver has no justification`
}

// unmarked is outside any deterministic closure: nothing here is checked.
func unmarked(m map[string]int) int64 {
	for range m {
		break
	}
	return time.Now().UnixNano()
}

var (
	_ = fingerprint
	_ = count
	_ = leaky
	_ = stamps
	_ = entropy
	_ = pid
	_ = rawEq
	_ = bitEq
	_ = waived
	_ = badWaiver
	_ = unmarked
)

// Package detfacts exercises the nondet-source fact: Stamp and Clock.Stamp
// reach time.Now (directly or through an unexported helper) and are
// exported, so they must be published; Pure must not, and neither must the
// unexported reacher or a method on an unexported type.
package detfacts

import "time"

func now() int64 { return time.Now().UnixNano() }

// Stamp reaches time.Now through the helper.
func Stamp() int64 { return now() }

// Pure is deterministic: it must stay out of the fact.
func Pure(a, b int) int { return a + b }

// Clock is exported; its Stamp method reaches time.Now.
type Clock struct{ last int64 }

func (c *Clock) Stamp() int64 {
	c.last = now()
	return c.last
}

// hidden is unexported: its method reaches time.Now but is unreachable from
// outside the package under its own name.
type hidden struct{}

func (hidden) Tick() int64 { return now() }

var (
	_ = Stamp
	_ = Pure
	_ = hidden{}
)

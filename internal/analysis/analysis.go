// Package analysis is a self-contained static-analysis framework for the
// reuseiq module, modeled on golang.org/x/tools/go/analysis: an Analyzer is
// a named check with a Run function over one type-checked package (a Pass),
// and a driver loads packages and collects Diagnostics.
//
// The x/tools framework itself is not vendored — this container builds
// offline and the module has no external dependencies — so the framework is
// rebuilt here on the standard library alone: `go list -deps -export -json`
// supplies the package graph and compiler export data, go/parser and
// go/types supply syntax and types. The Analyzer/Pass surface is kept
// source-compatible with x/tools for the subset we use, so the analyzers in
// the subpackages would port to a stock multichecker by swapping imports.
//
// One deliberate extension: a Pass carries the whole Module (every package
// of the main module, parsed and type-checked into one shared *types.Info).
// Cross-package analyses — hotalloc's transitive call closure, zerocost's
// annotation index — use it instead of x/tools "facts". When a Pass is
// built without module context (the go vet -vettool protocol type-checks
// one package against export data only), Module is nil and those analyzers
// degrade to package-local coverage.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waiver grammar.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and the
	// waiver annotation, if any.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. The return value is unused (kept for x/tools shape).
	Run func(pass *Pass) (any, error)
	// ExportFacts, when non-nil, computes the analyzer's package-level fact
	// for the pass's package: a JSON-serializable summary of what this
	// package exposes to its importers (determinism's wall-clock sources,
	// statecov's export/import pairs). In vettool mode the driver persists
	// it to the package's facts (.vetx) file and feeds it to dependent
	// packages' passes through Pass.DepFact; in whole-module mode facts are
	// unnecessary (analyzers see all syntax) and this hook is not called.
	ExportFacts func(pass *Pass) any
}

// A Diagnostic is one finding, positioned in the Pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module is the whole-module view (nil in single-package mode; see the
	// package comment). Analyzers that need cross-package syntax must
	// tolerate nil and fall back to Files.
	Module *Module

	// depFacts, when set by the driver (vettool mode), resolves the raw
	// JSON fact a named analyzer exported for a dependency package.
	depFacts func(pkgPath, analyzer string) []byte

	report func(Diagnostic)
}

// DepFact decodes the fact this pass's analyzer exported for the dependency
// package pkgPath into out (a pointer), reporting whether one was present.
// Facts exist only under the vettool protocol; in whole-module mode there
// are none (analyzers read dependency syntax directly from Module).
func (p *Pass) DepFact(pkgPath string, out any) bool {
	if p.depFacts == nil {
		return false
	}
	raw := p.depFacts(pkgPath, p.Analyzer.Name)
	if raw == nil {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// SetDepFacts installs the driver's dependency-fact resolver (vettool mode).
func (p *Pass) SetDepFacts(fn func(pkgPath, analyzer string) []byte) { p.depFacts = fn }

// Report records one finding. A pass built for fact export only (no
// diagnostic collector installed) drops findings silently: the same check
// runs again with a collector when the package is a vet target.
func (p *Pass) Report(d Diagnostic) {
	if p.report != nil {
		p.report(d)
	}
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ModuleFiles returns every parsed file the pass can see: the whole module
// when module context is available, otherwise just the pass's own package.
func (p *Pass) ModuleFiles() []*ast.File {
	if p.Module == nil {
		return p.Files
	}
	var files []*ast.File
	for _, pkg := range p.Module.Packages {
		files = append(files, pkg.Files...)
	}
	// A pass over a package outside the module proper (an analysistest
	// testdata package checked with CheckExtra) contributes its own files.
	if p.Pkg != nil && p.Module.Lookup(p.Pkg.Path()) == nil {
		files = append(files, p.Files...)
	}
	return files
}

// NewPass builds a Pass over one package. mod may be nil (vettool
// single-package mode); diagnostics are collected by RunPass.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, mod *Module) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Module:    mod,
	}
}

// RunPass applies the pass's analyzer and returns its diagnostics sorted by
// position.
func RunPass(pass *Pass) ([]Diagnostic, error) {
	var out []Diagnostic
	pass.report = func(d Diagnostic) { out = append(out, d) }
	if _, err := pass.Analyzer.Run(pass); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// A Finding pairs a Diagnostic with the Analyzer that produced it (the
// driver's output form).
type Finding struct {
	Analyzer   *Analyzer
	Diagnostic Diagnostic
}

// Run applies each analyzer to each target package and returns the combined
// findings, deduplicated (module-scoped analyzers can surface the same
// cross-package finding from several passes) and sorted by position.
func Run(mod *Module, analyzers []*Analyzer, targets []*Package) ([]Finding, error) {
	type key struct {
		name string
		pos  token.Pos
		msg  string
	}
	seen := make(map[key]bool)
	var out []Finding
	for _, pkg := range targets {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      mod.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: mod.Info,
				Module:    mod,
			}
			pass.report = func(d Diagnostic) {
				k := key{a.Name, d.Pos, d.Message}
				if !seen[k] {
					seen[k] = true
					out = append(out, Finding{Analyzer: a, Diagnostic: d})
				}
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Diagnostic.Pos, out[j].Diagnostic.Pos
		if pi != pj {
			return pi < pj
		}
		return out[i].Analyzer.Name < out[j].Analyzer.Name
	})
	return out, nil
}

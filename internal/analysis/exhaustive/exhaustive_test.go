package exhaustive_test

import (
	"testing"

	"reuseiq/internal/analysis/analysistest"
	"reuseiq/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, exhaustive.Analyzer, "exhaustivetest")
}

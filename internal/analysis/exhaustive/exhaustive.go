// Package exhaustive enforces that switch statements over the simulator's
// state-machine enums cover every declared constant or carry an explicit
// default. A missed enum case is how a new RevokeReason or telemetry Kind
// silently falls through and corrupts a power ledger or trace.
//
// Watched types are the built-in list below (the enums whose constants
// drive control flow in core and telemetry) plus any type whose declaration
// carries a "//reuse:exhaustive" marker. A switch can opt out with a
// "//reuse:allow-nonexhaustive <why>" waiver on the switch line or the line
// above; a waiver with no justification is itself a finding.
package exhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"reuseiq/internal/analysis"
)

// watched lists the enum types every switch must cover exhaustively,
// by qualified name.
var watched = map[string]bool{
	"reuseiq/internal/core.State":        true,
	"reuseiq/internal/core.RevokeReason": true,
	"reuseiq/internal/core.CtlEventKind": true,
	"reuseiq/internal/telemetry.Kind":    true,
}

const waiverName = "allow-nonexhaustive"

var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: "switches over core.State, core.RevokeReason, core.CtlEventKind, " +
		"telemetry.Kind and //reuse:exhaustive-marked enums must cover every " +
		"declared constant or have a default; waive with //reuse:allow-nonexhaustive <why>",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	optIn := markedTypes(pass)
	waivers := analysis.NewWaivers(pass.Fset, pass.Files, waiverName)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := enumType(pass, optIn, sw.Tag)
			if named == nil {
				return true
			}
			checkSwitch(pass, waivers, sw, named)
			return true
		})
	}
	return nil, nil
}

// markedTypes collects type-name objects whose declarations carry
// //reuse:exhaustive, across the whole module when available.
func markedTypes(pass *analysis.Pass) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	for _, f := range pass.ModuleFiles() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, found := analysis.Marker(ts.Doc, "exhaustive")
				if !found {
					// A single-spec decl usually carries the comment on the
					// GenDecl, not the TypeSpec.
					_, found = analysis.Marker(gd.Doc, "exhaustive")
				}
				if !found {
					continue
				}
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					marked[obj] = true
				}
			}
		}
	}
	return marked
}

// enumType resolves the switch tag to a watched named enum type, or nil.
func enumType(pass *analysis.Pass, optIn map[types.Object]bool, tag ast.Expr) *types.Named {
	tv, ok := pass.TypesInfo.Types[tag]
	if !ok || tv.Type == nil {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if optIn[obj] {
		return named
	}
	if obj.Pkg() != nil && watched[obj.Pkg().Path()+"."+obj.Name()] {
		return named
	}
	return nil
}

// enumConst is one declared constant of the enum, in source order.
type enumConst struct {
	name string
	val  string // constant.Value.ExactString()
}

// declaredConsts returns every package-level constant of type named in the
// defining package, in declaration (position) order.
func declaredConsts(named *types.Named) []enumConst {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	var objs []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			objs = append(objs, c)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	out := make([]enumConst, len(objs))
	for i, c := range objs {
		out[i] = enumConst{name: c.Name(), val: c.Val().ExactString()}
	}
	return out
}

func checkSwitch(pass *analysis.Pass, waivers *analysis.Waivers, sw *ast.SwitchStmt, named *types.Named) {
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: author chose a catch-all
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil || tv.Value.Kind() == constant.Unknown {
				return // non-constant case: coverage is not statically decidable
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	seen := make(map[string]bool)
	for _, c := range declaredConsts(named) {
		if !covered[c.val] && !seen[c.val] {
			seen[c.val] = true
			missing = append(missing, c.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	if why, ok := waivers.At(sw.Pos()); ok {
		if why == "" {
			pass.Reportf(sw.Pos(), "//reuse:%s waiver has no justification", waiverName)
		}
		return
	}
	obj := named.Obj()
	pass.Reportf(sw.Pos(), "switch over %s.%s is missing cases %s (add them, a default, or //reuse:%s <why>)",
		obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "), waiverName)
}

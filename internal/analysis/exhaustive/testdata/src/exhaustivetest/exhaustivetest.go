// Package exhaustivetest seeds violations for the exhaustive analyzer.
package exhaustivetest

import (
	"reuseiq/internal/core"
)

// Phase is a local enum opted into exhaustiveness checking.
//
//reuse:exhaustive
type Phase uint8

const (
	PhaseIdle Phase = iota
	PhaseWarm
	PhaseHot
)

// Unwatched has no marker: switches over it are never checked.
type Unwatched int

const (
	UnwatchedA Unwatched = iota
	UnwatchedB
)

func builtinEnums(s core.State, r core.RevokeReason, k core.CtlEventKind) int {
	// Full coverage: clean.
	switch s {
	case core.Normal:
		return 0
	case core.Buffering:
		return 1
	case core.Reuse:
		return 2
	}

	// Default clause: clean even with missing cases.
	switch r {
	case core.ReasonInner:
		return 3
	default:
		return 4
	}

	switch r { // want `missing cases ReasonNone, ReasonRecovery, ReasonForced, ReasonReuseExit`
	case core.ReasonInner, core.ReasonExit:
		return 5
	case core.ReasonFull:
		return 6
	}

	switch k { // want `missing cases CtlNBLTHit, CtlNBLTInsert`
	case core.CtlBuffer, core.CtlPromote, core.CtlRevoke:
		return 7
	case core.CtlReuseExit, core.CtlIteration:
		return 8
	}

	// Waived with justification: clean.
	//reuse:allow-nonexhaustive only revoke-family kinds reach this path
	switch k {
	case core.CtlRevoke, core.CtlReuseExit:
		return 9
	}

	// Waiver with no justification is itself a finding.
	//reuse:allow-nonexhaustive
	switch k { // want `waiver has no justification`
	case core.CtlBuffer:
		return 10
	}
	return -1
}

func localEnums(p Phase, u Unwatched, n int) int {
	switch p { // want `missing cases PhaseHot`
	case PhaseIdle, PhaseWarm:
		return 0
	}

	// Non-constant case expression: not statically decidable, skipped.
	dyn := Phase(n)
	switch p {
	case dyn:
		return 1
	}

	// Unwatched type: no marker, no diagnostic.
	switch u {
	case UnwatchedA:
		return 2
	}

	// Tagless switch is out of scope.
	switch {
	case n > 0:
		return 3
	}
	return -1
}

// Package zerocost enforces the "zero cost when disabled" contract of the
// simulator's observability hooks: every call through a struct field marked
// "//reuse:nilguard" (hook funcs like Machine.OnCommit, tap pointers like
// Machine.Rec) must be dominated by a nil check of that same field, so a
// run with no taps attached never pays for one — and never panics.
//
// Dominance is syntactic, the shapes that actually occur in the tree:
//
//	if m.Trace != nil { m.Trace(...) }          // guard in the condition
//	if m.Rec == nil { return }; m.Rec.Cycle()   // early-exit guard
//	if m.Tel == nil { ... } else { m.Tel.Emit() }
//
// Compound conditions split on && (then-branch) and || (after a terminating
// early exit). Reassigning the field or its receiver drops the fact. A call
// site can opt out with "//reuse:allow-unguarded <why>" on its line or the
// line above; a waiver with no justification is itself a finding.
package zerocost

import (
	"go/ast"
	"go/types"
	"strings"

	"reuseiq/internal/analysis"
)

const waiverName = "allow-unguarded"

var Analyzer = &analysis.Analyzer{
	Name: "zerocost",
	Doc: "calls through //reuse:nilguard struct fields must be dominated by " +
		"a nil check of the same field; waive with //reuse:allow-unguarded <why>",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:    pass,
		guarded: guardedFields(pass),
		waivers: analysis.NewWaivers(pass.Fset, pass.Files, waiverName),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				c.walkStmts(fd.Body.List, nil)
			}
		}
	}
	return nil, nil
}

// guardedFields indexes every struct field whose declaration carries
// //reuse:nilguard, module-wide when module context is available.
func guardedFields(pass *analysis.Pass) map[types.Object]bool {
	guarded := make(map[types.Object]bool)
	for _, f := range pass.ModuleFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				_, found := analysis.Marker(field.Doc, "nilguard")
				if !found {
					_, found = analysis.Marker(field.Comment, "nilguard")
				}
				if !found {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = true
					}
				}
			}
			return true
		})
	}
	return guarded
}

// chain is a resolved ident.sel.sel path, outermost object first.
type chain []types.Object

type checker struct {
	pass    *analysis.Pass
	guarded map[types.Object]bool
	waivers *analysis.Waivers
}

// walkStmts flows facts (chains known non-nil) through a statement list.
// facts is treated as immutable: branches extend it by appending to a copy.
func (c *checker) walkStmts(stmts []ast.Stmt, facts []chain) {
	for _, stmt := range stmts {
		facts = c.walkStmt(stmt, facts)
	}
}

// walkStmt checks one statement and returns the facts that hold after it.
func (c *checker) walkStmt(stmt ast.Stmt, facts []chain) []chain {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			facts = c.walkStmt(s.Init, facts)
		}
		c.walkExpr(s.Cond, facts)
		thenFacts := append(copyFacts(facts), c.positiveConjuncts(s.Cond)...)
		c.walkStmts(s.Body.List, thenFacts)
		elseFacts := append(copyFacts(facts), c.negatedDisjuncts(s.Cond)...)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			c.walkStmts(e.List, elseFacts)
		case *ast.IfStmt:
			c.walkStmt(e, elseFacts)
		}
		// An early exit ("if x == nil { return }") establishes x != nil for
		// everything after the if.
		if terminates(s.Body) {
			facts = append(copyFacts(facts), c.negatedDisjuncts(s.Cond)...)
		}
		return facts
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.walkExpr(rhs, facts)
		}
		for _, lhs := range s.Lhs {
			if ch, ok := analysis.ChainOf(c.pass.TypesInfo, lhs); ok {
				facts = dropPrefixed(facts, ch)
			} else {
				c.walkExpr(lhs, facts)
			}
		}
		return facts
	case *ast.BlockStmt:
		c.walkStmts(s.List, facts)
	case *ast.ExprStmt:
		c.walkExpr(s.X, facts)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.walkExpr(r, facts)
		}
	case *ast.DeferStmt:
		c.walkExpr(s.Call, facts)
	case *ast.GoStmt:
		c.walkExpr(s.Call, facts)
	case *ast.ForStmt:
		if s.Init != nil {
			facts = c.walkStmt(s.Init, facts)
		}
		if s.Cond != nil {
			c.walkExpr(s.Cond, facts)
		}
		bodyFacts := append(copyFacts(facts), c.positiveConjuncts(s.Cond)...)
		c.walkStmts(s.Body.List, bodyFacts)
		if s.Post != nil {
			c.walkStmt(s.Post, bodyFacts)
		}
	case *ast.RangeStmt:
		c.walkExpr(s.X, facts)
		c.walkStmts(s.Body.List, facts)
	case *ast.SwitchStmt:
		if s.Init != nil {
			facts = c.walkStmt(s.Init, facts)
		}
		if s.Tag != nil {
			c.walkExpr(s.Tag, facts)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.walkExpr(e, facts)
				}
				c.walkStmts(cc.Body, facts)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			facts = c.walkStmt(s.Init, facts)
		}
		c.walkStmt(s.Assign, facts)
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, facts)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.walkStmt(cc.Comm, facts)
				}
				c.walkStmts(cc.Body, facts)
			}
		}
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, facts)
	case *ast.SendStmt:
		c.walkExpr(s.Chan, facts)
		c.walkExpr(s.Value, facts)
	case *ast.IncDecStmt:
		c.walkExpr(s.X, facts)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.walkExpr(v, facts)
					}
				}
			}
		}
	}
	return facts
}

// walkExpr checks every call inside e against the facts in scope. Function
// literal bodies inherit the enclosing facts: the literals in this codebase
// are invoked where they are built (hook registration sites construct them
// under the same guard they will run under).
func (c *checker) walkExpr(e ast.Expr, facts []chain) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.checkCall(call, facts)
		return true
	})
}

// checkCall reports a call whose selector path crosses a guarded field
// without a dominating nil check of that field.
func (c *checker) checkCall(call *ast.CallExpr, facts []chain) {
	ch, ok := analysis.ChainOf(c.pass.TypesInfo, call.Fun)
	if !ok {
		return
	}
	for i, obj := range ch {
		if !c.guarded[obj] {
			continue
		}
		need := ch[:i+1]
		if hasFact(facts, need) {
			continue
		}
		if why, waived := c.waivers.At(call.Pos()); waived {
			if why == "" {
				c.pass.Reportf(call.Pos(), "//reuse:%s waiver has no justification", waiverName)
			}
			continue
		}
		c.pass.Reportf(call.Pos(),
			"call through nil-able %s is not dominated by a nil check (guard with `if %s != nil`, or //reuse:%s <why>)",
			chainString(need), chainString(need), waiverName)
	}
}

// positiveConjuncts extracts chains proven non-nil when cond is true:
// "x != nil" leaves of an && tree.
func (c *checker) positiveConjuncts(cond ast.Expr) []chain {
	var out []chain
	for _, leaf := range splitBinary(cond, "&&") {
		if ch, ok := c.nilCompare(leaf, "!="); ok {
			out = append(out, ch)
		}
	}
	return out
}

// negatedDisjuncts extracts chains proven non-nil when cond is false:
// "x == nil" leaves of an || tree (¬(a==nil || b==nil) ⇒ a≠nil ∧ b≠nil).
func (c *checker) negatedDisjuncts(cond ast.Expr) []chain {
	var out []chain
	for _, leaf := range splitBinary(cond, "||") {
		if ch, ok := c.nilCompare(leaf, "=="); ok {
			out = append(out, ch)
		}
	}
	return out
}

// nilCompare matches "expr <op> nil" or "nil <op> expr" and resolves expr.
func (c *checker) nilCompare(e ast.Expr, op string) (chain, bool) {
	e = unparen(e)
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op.String() != op {
		return nil, false
	}
	var target ast.Expr
	switch {
	case isNil(c.pass.TypesInfo, b.Y):
		target = b.X
	case isNil(c.pass.TypesInfo, b.X):
		target = b.Y
	default:
		return nil, false
	}
	ch, ok := analysis.ChainOf(c.pass.TypesInfo, target)
	return ch, ok
}

func splitBinary(e ast.Expr, op string) []ast.Expr {
	e = unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op.String() == op {
		return append(splitBinary(b.X, op), splitBinary(b.Y, op)...)
	}
	if e == nil {
		return nil
	}
	return []ast.Expr{e}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj
}

// terminates reports whether the block always transfers control away:
// its last statement is a return, branch, or panic call.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func copyFacts(facts []chain) []chain {
	return append([]chain(nil), facts...)
}

func hasFact(facts []chain, need chain) bool {
	for _, f := range facts {
		if analysis.ChainEqual(f, need) {
			return true
		}
	}
	return false
}

// dropPrefixed removes facts invalidated by an assignment to lhs: any fact
// whose chain starts with the assigned path.
func dropPrefixed(facts []chain, lhs chain) []chain {
	var out []chain
	for _, f := range facts {
		if len(f) >= len(lhs) && analysis.ChainEqual(f[:len(lhs)], lhs) {
			continue
		}
		out = append(out, f)
	}
	return out
}

func chainString(ch chain) string {
	parts := make([]string, len(ch))
	for i, obj := range ch {
		parts[i] = obj.Name()
	}
	return strings.Join(parts, ".")
}

package zerocost_test

import (
	"testing"

	"reuseiq/internal/analysis/analysistest"
	"reuseiq/internal/analysis/zerocost"
)

func TestZerocost(t *testing.T) {
	analysistest.Run(t, zerocost.Analyzer, "zerocosttest")
}

// Package zerocosttest seeds violations for the zerocost analyzer.
package zerocosttest

type recorder struct{ n int }

func (r *recorder) Cycle()         { r.n++ }
func (r *recorder) Commit(seq int) { r.n += seq }
func (r *recorder) Unmarked() int  { return r.n }

type machine struct {
	// OnCommit fires once per committed instruction when a harness is
	// attached; nil in production sweeps.
	//reuse:nilguard
	OnCommit func(seq int) error

	//reuse:nilguard
	Trace func(format string, args ...any)

	// Rec is the audit tap; nil unless recording.
	//reuse:nilguard
	Rec *recorder

	// Always is plain: calls through it need no guard.
	Always func()
}

func guardedOK(m *machine) error {
	if m.OnCommit != nil {
		if err := m.OnCommit(1); err != nil {
			return err
		}
	}
	if m.Trace != nil && m.Rec != nil {
		m.Trace("cycle %d", 1)
		m.Rec.Cycle()
	}
	if m.Rec == nil {
		return nil
	}
	m.Rec.Commit(2) // early-exit guard above dominates
	m.Always()
	return nil
}

func earlyExitOr(m *machine) {
	if m.Trace == nil || m.Rec == nil {
		return
	}
	m.Trace("both taps live")
	m.Rec.Cycle()
}

func elseBranch(m *machine) {
	if m.Rec == nil {
		_ = m
	} else {
		m.Rec.Cycle()
	}
}

func unguarded(m *machine) {
	m.Trace("boom")   // want `call through nil-able m\.Trace is not dominated`
	_ = m.OnCommit(3) // want `call through nil-able m\.OnCommit is not dominated`
	m.Rec.Cycle()     // want `call through nil-able m\.Rec is not dominated`
	m.Always()
}

func guardDropped(m *machine) {
	if m.Rec == nil {
		return
	}
	m.Rec = nil
	m.Rec.Cycle() // want `call through nil-able m\.Rec is not dominated`
}

func receiverDropped(m *machine) {
	if m.Trace == nil {
		return
	}
	m = &machine{}
	m.Trace("stale guard") // want `call through nil-able m\.Trace is not dominated`
}

func wrongFieldGuard(m *machine) {
	if m.OnCommit != nil {
		m.Trace("guarded the wrong field") // want `call through nil-able m\.Trace is not dominated`
	}
}

func guardDoesNotEscapeBranch(m *machine) {
	if m.Rec != nil {
		m.Rec.Cycle()
	}
	m.Rec.Cycle() // want `call through nil-able m\.Rec is not dominated`
}

func waived(m *machine) {
	//reuse:allow-unguarded test fixture constructs m with all taps attached
	m.Trace("waived")

	m.Rec.Cycle() //reuse:allow-unguarded same-line waiver form

	//reuse:allow-unguarded
	_ = m.OnCommit(4) // want `waiver has no justification`
}

func reads(m *machine) int {
	// Reading a guarded field (no call) is fine: nil reads don't panic.
	cb := m.OnCommit
	if cb != nil {
		return 0
	}
	return m.Rec.Unmarked() // want `call through nil-able m\.Rec is not dominated`
}

// Snapshot support: an exported state image of the reorder buffer with a
// validating importer. Ring contents are copied verbatim — slots are stable
// identifiers held by issue-queue entries and the in-flight execution list,
// so the restored ring must be bit-identical, not merely equivalent.
package rob

import "fmt"

// State is the serializable image of a ROB.
type State struct {
	Ring  []Entry
	Used  []bool
	Head  int
	Count int

	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	Allocs, Commits uint64
}

// ExportState returns a deep copy of the buffer's state.
func (r *ROB) ExportState() State {
	return State{
		Ring:   append([]Entry(nil), r.ring...),
		Used:   append([]bool(nil), r.used...),
		Head:   r.head,
		Count:  r.count,
		Allocs: r.Allocs, Commits: r.Commits,
	}
}

// ImportState overwrites the buffer with st after validating its shape.
// Per-entry register fields are validated by the pipeline, which knows the
// physical register file sizes.
func (r *ROB) ImportState(st State) error {
	size := len(r.ring)
	if len(st.Ring) != size || len(st.Used) != size {
		return fmt.Errorf("rob: state sized %d/%d for buffer of size %d",
			len(st.Ring), len(st.Used), size)
	}
	if st.Head < 0 || st.Head >= size {
		return fmt.Errorf("rob: state head %d for buffer of size %d", st.Head, size)
	}
	if st.Count < 0 || st.Count > size {
		return fmt.Errorf("rob: state count %d for buffer of size %d", st.Count, size)
	}
	copy(r.ring, st.Ring)
	copy(r.used, st.Used)
	r.head, r.count = st.Head, st.Count
	r.Allocs, r.Commits = st.Allocs, st.Commits
	return nil
}

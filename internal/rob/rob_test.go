package rob

import (
	"testing"

	"reuseiq/internal/isa"
)

func e(seq uint64) Entry { return Entry{Seq: seq} }

func TestAllocCommitOrder(t *testing.T) {
	r := New(4)
	for i := 1; i <= 4; i++ {
		if _, ok := r.Alloc(e(uint64(i))); !ok {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if !r.Full() {
		t.Fatal("not full")
	}
	if _, ok := r.Alloc(e(5)); ok {
		t.Fatal("alloc into full ROB")
	}
	for i := 1; i <= 4; i++ {
		got := r.PopHead()
		if got.Seq != uint64(i) {
			t.Errorf("pop %d: seq %d", i, got.Seq)
		}
	}
	if !r.Empty() {
		t.Fatal("not empty")
	}
}

func TestSlotsStableAcrossCommit(t *testing.T) {
	r := New(4)
	s1, _ := r.Alloc(e(1))
	s2, _ := r.Alloc(e(2))
	r.PopHead()
	if r.Get(s2).Seq != 2 {
		t.Error("slot moved after commit")
	}
	// Wraparound reuses the committed slot.
	s3, _ := r.Alloc(e(3))
	s4, _ := r.Alloc(e(4))
	s5, _ := r.Alloc(e(5))
	if s5 != s1 {
		t.Errorf("wraparound slot = %d, want %d", s5, s1)
	}
	_ = s3
	_ = s4
}

func TestSquashAfterYoungestFirst(t *testing.T) {
	r := New(8)
	for i := 1; i <= 6; i++ {
		r.Alloc(e(uint64(i)))
	}
	removed := r.SquashAfter(3)
	if len(removed) != 3 {
		t.Fatalf("removed %d", len(removed))
	}
	for i, want := range []uint64{6, 5, 4} {
		if removed[i].Seq != want {
			t.Errorf("removed[%d] = %d, want %d", i, removed[i].Seq, want)
		}
	}
	if r.Len() != 3 {
		t.Errorf("len = %d", r.Len())
	}
	// Squashed slots are invalidated.
	removedAgain := r.SquashAfter(3)
	if len(removedAgain) != 0 {
		t.Error("second squash removed entries")
	}
}

func TestSquashInvalidatesSlotSeq(t *testing.T) {
	r := New(4)
	r.Alloc(e(1))
	slot, _ := r.Alloc(e(2))
	r.SquashAfter(1)
	if r.Get(slot).Seq == 2 {
		t.Error("squashed slot still matches its old sequence number")
	}
}

func TestSquashAfterAll(t *testing.T) {
	r := New(4)
	r.Alloc(e(5))
	r.Alloc(e(6))
	removed := r.SquashAfter(0)
	if len(removed) != 2 || !r.Empty() {
		t.Errorf("removed=%d empty=%v", len(removed), r.Empty())
	}
}

func TestWalkProgramOrder(t *testing.T) {
	r := New(4)
	r.Alloc(e(1))
	r.Alloc(e(2))
	r.PopHead()
	r.Alloc(e(3))
	r.Alloc(e(4)) // wraps
	var seqs []uint64
	r.Walk(func(slot int, en *Entry) { seqs = append(seqs, en.Seq) })
	want := []uint64{2, 3, 4}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("walk = %v", seqs)
		}
	}
}

func TestHeadNilWhenEmpty(t *testing.T) {
	r := New(2)
	if r.Head() != nil {
		t.Error("head of empty ROB")
	}
	defer func() {
		if recover() == nil {
			t.Error("pop of empty ROB did not panic")
		}
	}()
	r.PopHead()
}

func TestEntryFieldsPreserved(t *testing.T) {
	r := New(2)
	in := isa.Inst{Op: isa.OpBNE, Rs: 2, Imm: -4}
	slot, _ := r.Alloc(Entry{Seq: 9, PC: 0x400010, Inst: in, PredTaken: true, PredTarget: 0x400000})
	got := r.Get(slot)
	if got.Inst.Op != isa.OpBNE || !got.PredTaken || got.PredTarget != 0x400000 {
		t.Errorf("entry = %+v", got)
	}
	if r.Allocs != 1 {
		t.Errorf("allocs = %d", r.Allocs)
	}
}

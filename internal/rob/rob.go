// Package rob implements the reorder buffer: a circular buffer of in-flight
// instructions allocated at dispatch in program order, completed out of
// order, and retired in order at commit. Entries are addressed by stable
// ring slots, which never move while an instruction is in flight.
package rob

import (
	"reuseiq/internal/isa"
)

// Entry is one in-flight instruction.
type Entry struct {
	Seq  uint64 // global program-order sequence number
	PC   uint32
	Inst isa.Inst

	// Rename bookkeeping for rollback and release.
	HasDest bool
	Dest    isa.Reg
	NewPhys int
	//reuse:nodigest the pre-rename mapping, a physical label freed at commit; erased by the relabeling
	OldPhys int

	Done bool // executed and written back

	// Control-flow resolution.
	PredTaken  bool
	PredTarget uint32
	ActTaken   bool
	ActTarget  uint32
	Mispred    bool

	IsLoad, IsStore bool
	Halt            bool

	// Reused marks instances dispatched by the issue queue's reuse path
	// rather than the front end (statistics only).
	Reused bool

	// IssueCycle is the cycle the instruction issued (telemetry: the
	// issue-to-commit latency histogram reads it at commit).
	IssueCycle uint64
}

// ROB is the reorder buffer.
type ROB struct {
	ring  []Entry
	used  []bool
	head  int // oldest entry slot
	count int

	Allocs  uint64
	Commits uint64

	//reuse:transient scratch whose contents SquashAfter returns; never live across a cycle boundary
	squashed []Entry // scratch returned by SquashAfter
}

// New creates a reorder buffer with the given capacity.
func New(size int) *ROB {
	return &ROB{ring: make([]Entry, size), used: make([]bool, size)}
}

// Size returns the capacity.
func (r *ROB) Size() int { return len(r.ring) }

// Len returns the number of in-flight entries.
func (r *ROB) Len() int { return r.count }

// Full reports whether no entry can be allocated.
func (r *ROB) Full() bool { return r.count == len(r.ring) }

// Empty reports whether the buffer holds no instructions.
func (r *ROB) Empty() bool { return r.count == 0 }

// Alloc appends e at the tail and returns its stable slot index.
//
//reuse:hotpath
func (r *ROB) Alloc(e Entry) (int, bool) {
	if r.Full() {
		return 0, false
	}
	slot := (r.head + r.count) % len(r.ring)
	r.ring[slot] = e
	r.used[slot] = true
	r.count++
	r.Allocs++
	return slot, true
}

// Get returns the entry in the given slot.
func (r *ROB) Get(slot int) *Entry { return &r.ring[slot] }

// Head returns the oldest entry, or nil when empty.
func (r *ROB) Head() *Entry {
	if r.count == 0 {
		return nil
	}
	return &r.ring[r.head]
}

// PopHead retires the oldest entry.
func (r *ROB) PopHead() Entry {
	if r.count == 0 {
		panic("rob: pop of empty buffer")
	}
	e := r.ring[r.head]
	r.used[r.head] = false
	r.head = (r.head + 1) % len(r.ring)
	r.count--
	r.Commits++
	return e
}

// SquashAfter removes every entry with Seq > seq and returns them youngest
// first (the order required for rename rollback). Squashed slots are
// invalidated so that a stale in-flight completion can never match them.
// The returned slice is reused by the next SquashAfter call.
func (r *ROB) SquashAfter(seq uint64) []Entry {
	removed := r.squashed[:0]
	for r.count > 0 {
		tail := (r.head + r.count - 1) % len(r.ring)
		if r.ring[tail].Seq <= seq {
			break
		}
		removed = append(removed, r.ring[tail])
		r.ring[tail] = Entry{}
		r.used[tail] = false
		r.count--
	}
	r.squashed = removed
	return removed
}

// Walk calls f for each in-flight entry in program order.
func (r *ROB) Walk(f func(slot int, e *Entry)) {
	for i := 0; i < r.count; i++ {
		slot := (r.head + i) % len(r.ring)
		f(slot, &r.ring[slot])
	}
}

package runstore

import (
	"fmt"
	"html/template"
	"io"
	"time"
)

// htmlReport is the template payload for WriteHTML.
type htmlReport struct {
	Title    string
	Now      string
	Runs     []htmlRun
	MaxIPC   float64
	Sentinel *Report
	Diff     *DiffReport
	DiffRows []DiffRow
}

type htmlRun struct {
	ID          string
	Kind        string
	Kernel      string
	IQSize      int
	Reuse       bool
	Fingerprint string
	Cycles      uint64
	IPC         float64
	BarPct      float64 // IPC as a percentage of the page's max IPC
	Wall        string
	Start       string
	Err         string
}

// WriteHTML renders a self-contained HTML report: recent-run history with an
// IPC chart, the sentinel verdict, and (when non-nil) a counter diff table.
// Everything is inlined — one file, no external assets.
func WriteHTML(w io.Writer, title string, recs []Record, sentinel *Report, diff *DiffReport) error {
	data := htmlReport{
		Title:    title,
		Now:      time.Now().UTC().Format(time.RFC3339),
		Sentinel: sentinel,
		Diff:     diff,
	}
	if diff != nil {
		data.DiffRows = diff.Changed()
	}
	for i := range recs {
		r := &recs[i]
		if r.IPC > data.MaxIPC {
			data.MaxIPC = r.IPC
		}
	}
	for i := range recs {
		r := &recs[i]
		hr := htmlRun{
			ID: r.ID, Kind: r.Kind, Kernel: r.Kernel, IQSize: r.IQSize,
			Reuse: r.Reuse, Fingerprint: r.Fingerprint,
			Cycles: r.Cycles, IPC: r.IPC,
			Wall:  r.Host.Wall().Round(time.Millisecond).String(),
			Start: r.Start.UTC().Format("2006-01-02 15:04:05"),
			Err:   r.Err,
		}
		if data.MaxIPC > 0 {
			hr.BarPct = 100 * r.IPC / data.MaxIPC
		}
		data.Runs = append(data.Runs, hr)
	}
	return reportTmpl.Execute(w, data)
}

var reportTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"f3": func(v float64) string { return fmt.Sprintf("%.3f", v) },
	"cell": func(r DiffRow) [2]string {
		return [2]string{cell(r.A, r.AOK, r.Integer), cell(r.B, r.BOK, r.Integer)}
	},
	"delta": deltaCell,
	"pct":   pctCell,
}).Parse(`<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{{.Title}}</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --status-critical: #d03b3b;
  --status-good: #0ca30c;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --series-1: #3987e5;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--surface-1);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; color: var(--text-primary); }
.sub { color: var(--text-muted); font-size: 12px; margin-bottom: 20px; }
table { border-collapse: collapse; font-size: 13px; }
th { text-align: left; color: var(--text-secondary); font-weight: 600;
     border-bottom: 1px solid var(--baseline); padding: 4px 12px 4px 0; }
td { border-bottom: 1px solid var(--gridline); padding: 4px 12px 4px 0;
     font-variant-numeric: tabular-nums; }
td.name { font-variant-numeric: normal; }
.bar-wrap { width: 160px; background: none; }
.bar { height: 10px; background: var(--series-1); border-radius: 0 4px 4px 0; min-width: 2px; }
.ok { color: var(--status-good); font-weight: 600; }
.fail { color: var(--status-critical); font-weight: 600; }
.muted { color: var(--text-muted); }
code { font-size: 12px; }
</style>
</head>
<body class="viz-root">
<h1>{{.Title}}</h1>
<div class="sub">generated {{.Now}} · reuseiq run ledger</div>

{{if .Sentinel}}
<h2>Regression sentinel</h2>
{{if .Sentinel.Pass}}<div class="ok">PASS — every fingerprint-identical repeat is bit-identical in its modeled counters</div>
{{else}}<div class="fail">FAIL — modeled counters drifted between fingerprint-identical runs</div>{{end}}
<table>
<tr><th>fingerprint</th><th>kernel</th><th>runs</th><th>drifts</th><th>wall median</th><th>outliers</th></tr>
{{range .Sentinel.Groups}}
<tr>
<td class="name"><code>{{.Fingerprint}}</code></td>
<td class="name">{{.Kernel}}</td>
<td>{{len .RunIDs}}</td>
<td>{{if .Drifts}}<span class="fail">{{len .Drifts}}</span>{{else}}<span class="ok">0</span>{{end}}</td>
<td>{{.WallMedianNS}} ns</td>
<td>{{len .Outliers}}</td>
</tr>
{{range .Drifts}}
<tr><td class="name muted" colspan="6">drift {{.Name}}: {{.BaseID}}={{.Base}} vs {{.RunID}}={{.Run}}</td></tr>
{{end}}
{{end}}
</table>
{{end}}

<h2>Recent runs</h2>
<table>
<tr><th>start (UTC)</th><th>id</th><th>kind</th><th>kernel</th><th>iq</th><th>reuse</th><th>cycles</th><th>IPC</th><th></th><th>wall</th></tr>
{{range .Runs}}
<tr{{if .Err}} title="error: {{.Err}}"{{end}}>
<td>{{.Start}}</td>
<td class="name"><code>{{.ID}}</code></td>
<td class="name">{{.Kind}}</td>
<td class="name">{{if .Kernel}}{{.Kernel}}{{else}}<span class="muted">asm</span>{{end}}</td>
<td>{{.IQSize}}</td>
<td class="name">{{if .Reuse}}reuse{{else}}base{{end}}</td>
<td>{{.Cycles}}</td>
<td>{{f3 .IPC}}</td>
<td class="bar-wrap"><div class="bar" style="width:{{printf "%.1f" .BarPct}}%"
  title="{{if .Kernel}}{{.Kernel}} {{end}}iq={{.IQSize}} IPC {{f3 .IPC}}"></div></td>
<td>{{.Wall}}</td>
</tr>
{{end}}
</table>

{{if .Diff}}
<h2>Counter diff — changed metrics</h2>
<div class="sub">A: {{.Diff.ALabel}} (n={{.Diff.ACount}}) · B: {{.Diff.BLabel}} (n={{.Diff.BCount}})</div>
<table>
<tr><th>metric</th><th>A</th><th>B</th><th>delta</th><th>%</th></tr>
{{range .DiffRows}}{{$c := cell .}}
<tr><td class="name">{{.Name}}</td><td>{{index $c 0}}</td><td>{{index $c 1}}</td><td>{{delta .}}</td><td>{{pct .}}</td></tr>
{{end}}
</table>
{{end}}
</body>
</html>
`))

package runstore

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// observerPrefixes are the metric namespaces that legitimately vary between
// fingerprint-identical runs: they count the work of observers (telemetry
// tracer, flight recorder, obs sampler, snapshot engine) or of the
// fast-forward engine, whose attachment is a host-side choice deliberately
// excluded from the config fingerprint. Every other namespace is modeled
// state and must be bit-identical between fingerprint-identical runs.
var observerPrefixes = []string{
	"ffwd.",
	"flightrec.",
	"telemetry.",
	"snapshot.",
	"sweep.",
	"obs.",
	"hist.",
}

// Modeled reports whether the named metric is part of the deterministic
// modeled-state contract (as opposed to observer- or host-dependent).
func Modeled(name string) bool {
	for _, p := range observerPrefixes {
		if strings.HasPrefix(name, p) {
			return false
		}
	}
	return true
}

// Drift is one sentinel failure: a modeled value that differs between two
// fingerprint-identical runs. Drift in a modeled counter means the simulator
// is no longer deterministic over its modeled inputs — a correctness bug,
// not a perf regression.
type Drift struct {
	Name string // counter name, or "energy.<component>"
	// BaseID/RunID identify the two records; Base/Run render their values.
	BaseID, RunID string
	Base, Run     string
}

func (d Drift) String() string {
	return fmt.Sprintf("%s: %s=%s vs %s=%s", d.Name, d.BaseID, d.Base, d.RunID, d.Run)
}

// Outlier is one wall-time outlier under the median/MAD test (report-only:
// host timing is allowed to vary, an outlier is a hint, not a failure).
type Outlier struct {
	RunID  string
	WallNS int64
	Z      float64 // robust z-score |x-med| / (1.4826 * MAD)
}

// Group is the sentinel's verdict for one fingerprint: the set of
// fingerprint-identical runs and everything that disagrees between them.
type Group struct {
	Fingerprint string
	Kernel      string
	RunIDs      []string
	Skipped     []string // runs excluded because they recorded an error
	Drifts      []Drift
	// Wall-time statistics over the group (NS). Outliers is non-empty only
	// when the group has at least four runs (MAD needs a real sample).
	WallMedianNS int64
	WallMADNS    int64
	Outliers     []Outlier
}

// Report is a full sentinel pass over a set of records.
type Report struct {
	Groups []Group
	// Singles counts fingerprints with only one run (nothing to compare).
	Singles int
}

// Pass reports whether no group drifted. Wall-time outliers do not fail the
// sentinel.
func (r *Report) Pass() bool {
	for _, g := range r.Groups {
		if len(g.Drifts) > 0 {
			return false
		}
	}
	return true
}

// Drifts returns every drift across all groups.
func (r *Report) Drifts() []Drift {
	var out []Drift
	for _, g := range r.Groups {
		out = append(out, g.Drifts...)
	}
	return out
}

// WriteText renders the report as an aligned terminal table: one row per
// fingerprint group, with drift and wall-outlier detail lines beneath the
// rows that have them.
func (r *Report) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "fingerprint\tkernel\truns\twall median\tverdict")
	for _, g := range r.Groups {
		verdict := "ok"
		switch {
		case len(g.Drifts) > 0:
			verdict = fmt.Sprintf("DRIFT (%d)", len(g.Drifts))
		case len(g.Outliers) > 0:
			verdict = fmt.Sprintf("ok, %d wall outlier(s)", len(g.Outliers))
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\n",
			g.Fingerprint, g.Kernel, len(g.RunIDs),
			time.Duration(g.WallMedianNS).Round(time.Microsecond), verdict)
		for _, d := range g.Drifts {
			fmt.Fprintf(tw, "  drift\t%s\t\t\t\n", d)
		}
		for _, o := range g.Outliers {
			fmt.Fprintf(tw, "  outlier\t%s: wall %s (z=%.1f)\t\t\t\n",
				o.RunID, time.Duration(o.WallNS).Round(time.Microsecond), o.Z)
		}
		if len(g.Skipped) > 0 {
			fmt.Fprintf(tw, "  skipped\t%s (recorded errors)\t\t\t\n", strings.Join(g.Skipped, " "))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "sentinel: %s (%d comparable group(s), %d single run(s))\n",
		verdict, len(r.Groups), r.Singles)
	return err
}

// Sentinel runs the regression sentinel over recs: records are grouped by
// fingerprint, and within each group every modeled counter, modeled gauge,
// energy component and headline result must be bit-identical across runs
// (the chaos seed is part of the config hash, so even fault-injected runs
// repeat exactly). Wall times get a median/MAD robust outlier test instead —
// host timing legitimately varies.
//
//reuse:deterministic
func Sentinel(recs []Record) *Report {
	byFP := make(map[string][]*Record)
	var order []string
	for i := range recs {
		fp := recs[i].Fingerprint
		if _, ok := byFP[fp]; !ok {
			order = append(order, fp)
		}
		byFP[fp] = append(byFP[fp], &recs[i])
	}
	rep := &Report{}
	for _, fp := range order {
		group := byFP[fp]
		g := Group{Fingerprint: fp}
		var runs []*Record
		for _, r := range group {
			if r.Err != "" {
				g.Skipped = append(g.Skipped, r.ID)
				continue
			}
			if g.Kernel == "" {
				g.Kernel = r.Kernel
			}
			g.RunIDs = append(g.RunIDs, r.ID)
			runs = append(runs, r)
		}
		if len(runs) < 2 {
			if len(runs) == 1 {
				rep.Singles++
			}
			continue
		}
		base := runs[0]
		for _, run := range runs[1:] {
			g.Drifts = append(g.Drifts, compareModeled(base, run)...)
		}
		g.WallMedianNS, g.WallMADNS, g.Outliers = wallOutliers(runs)
		rep.Groups = append(rep.Groups, g)
	}
	return rep
}

// compareModeled returns every modeled disagreement between two
// fingerprint-identical runs.
func compareModeled(base, run *Record) []Drift {
	var drifts []Drift
	drift := func(name, b, r string) {
		drifts = append(drifts, Drift{Name: name, BaseID: base.ID, RunID: run.ID, Base: b, Run: r})
	}

	// Headline results first: cheap, and the most readable failure.
	if base.Cycles != run.Cycles {
		drift("sim.cycles", fmt.Sprint(base.Cycles), fmt.Sprint(run.Cycles))
	}
	if base.Commits != run.Commits {
		drift("sim.commits", fmt.Sprint(base.Commits), fmt.Sprint(run.Commits))
	}

	// Modeled counters: equal name sets and bit-identical values. A counter
	// present on one side only is itself drift — a silently vanishing
	// counter must not pass the oracle.
	bc := modeledCounters(&base.Metrics)
	rc := modeledCounters(&run.Metrics)
	names := make([]string, 0, len(bc))
	for n := range bc {
		names = append(names, n)
	}
	for n := range rc {
		if _, ok := bc[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		// sim.cycles/sim.commits already reported via the headline fields.
		if n == "sim.cycles" || n == "sim.commits" {
			continue
		}
		bv, bok := bc[n]
		rv, rok := rc[n]
		switch {
		case !bok:
			drift(n, "(absent)", fmt.Sprint(rv))
		case !rok:
			drift(n, fmt.Sprint(bv), "(absent)")
		case bv != rv:
			drift(n, fmt.Sprint(bv), fmt.Sprint(rv))
		}
	}

	// Modeled gauges and per-component energy: floats, compared by bit
	// pattern — the determinism contract is bit-identical, not "close".
	bg := modeledGauges(&base.Metrics)
	rg := modeledGauges(&run.Metrics)
	for _, n := range sortedKeysF(bg, rg) {
		bv, bok := bg[n]
		rv, rok := rg[n]
		if !bok || !rok || math.Float64bits(bv) != math.Float64bits(rv) {
			drift(n, fmtFloat(bv, bok), fmtFloat(rv, rok))
		}
	}
	for _, n := range sortedKeysF(base.Energy, run.Energy) {
		bv, bok := base.Energy[n]
		rv, rok := run.Energy[n]
		if !bok || !rok || math.Float64bits(bv) != math.Float64bits(rv) {
			drift("energy."+n, fmtFloat(bv, bok), fmtFloat(rv, rok))
		}
	}
	return drifts
}

func modeledCounters(m *Metrics) map[string]uint64 {
	out := make(map[string]uint64, len(m.Counters))
	for _, c := range m.Counters {
		if Modeled(c.Name) {
			out[c.Name] = c.Value
		}
	}
	return out
}

func modeledGauges(m *Metrics) map[string]float64 {
	out := make(map[string]float64, len(m.Gauges))
	for _, g := range m.Gauges {
		if Modeled(g.Name) {
			out[g.Name] = g.Value
		}
	}
	return out
}

func sortedKeysF(a, b map[string]float64) []string {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	for n := range b {
		if _, ok := a[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

func fmtFloat(v float64, ok bool) string {
	if !ok {
		return "(absent)"
	}
	return fmt.Sprintf("%g", v)
}

// wallOutliers runs the median/MAD robust outlier test over the group's wall
// times. With fewer than four runs the statistics are meaningless, so no
// outliers are reported (the median still is).
func wallOutliers(runs []*Record) (median, mad int64, outliers []Outlier) {
	walls := make([]float64, len(runs))
	for i, r := range runs {
		walls[i] = float64(r.Host.WallNS)
	}
	med := medianOf(walls)
	devs := make([]float64, len(walls))
	for i, w := range walls {
		devs[i] = math.Abs(w - med)
	}
	madF := medianOf(devs)
	median, mad = int64(med), int64(madF)
	if len(runs) < 4 {
		return median, mad, nil
	}
	for i, r := range runs {
		var z float64
		if madF > 0 {
			z = devs[i] / (1.4826 * madF)
		} else if devs[i] > 0 {
			z = math.Inf(1)
		}
		// Require both a large robust z and a material relative deviation:
		// on fast runs the MAD can be a few microseconds, where a huge z is
		// still noise.
		if z > 3.5 && med > 0 && devs[i]/med > 0.20 {
			outliers = append(outliers, Outlier{RunID: r.ID, WallNS: r.Host.WallNS, Z: z})
		}
	}
	return median, mad, outliers
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Package runstore is the simulator's run ledger: a durable, append-only,
// schema-versioned warehouse of complete run records, one JSON line per run,
// fsynced at append and tolerant of a torn final line on reopen (the same
// durability discipline as the experiment journal in internal/experiments).
//
// Where the telemetry registry and the obs service expose a run's counters
// live and then throw them away at process exit, the ledger persists every
// run's full metrics snapshot keyed by the configuration and program
// fingerprints from internal/snapshot. That turns the paper's headline
// deltas — power and IPC of the reuse scheme versus a baseline — into
// durable cross-run queries: any two runs (or run sets) can be diffed
// counter by counter, and fingerprint-identical repeats become a correctness
// oracle, because every modeled counter must be bit-identical between them
// (see sentinel.go).
//
// The ledger is off by default and zero-cost when absent: recording happens
// once per finished run, outside the simulation hot path, and a nil *Ledger
// disables every call site.
package runstore

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// SchemaVersion guards the record schema. Replay fails loudly on records
// from a future schema (silently dropping runs would skew cross-run
// statistics); bump it on any incompatible field change.
const SchemaVersion = 1

// Record kinds.
const (
	// KindSim is a standalone reusesim run.
	KindSim = "sim"
	// KindCell is one cell of an experiments.Suite sweep.
	KindCell = "cell"
)

// Counter is one counter in a record's metrics snapshot.
type Counter struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Gauge is one gauge in a record's metrics snapshot.
type Gauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistBucket is one cumulative histogram bucket (LE 0 with Inf set marks the
// +Inf overflow bucket).
type HistBucket struct {
	LE    uint64 `json:"le,omitempty"`
	Inf   bool   `json:"inf,omitempty"`
	Count uint64 `json:"count"`
}

// Hist is one histogram in a record's metrics snapshot.
type Hist struct {
	Name    string       `json:"name"`
	Buckets []HistBucket `json:"buckets"`
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Max     uint64       `json:"max"`
}

// Metrics is the complete typed metrics surface of one run — the ledger's
// copy of a telemetry.MetricsSnapshot, with stable JSON names.
type Metrics struct {
	Counters []Counter `json:"counters"`
	Gauges   []Gauge   `json:"gauges,omitempty"`
	Hists    []Hist    `json:"hists,omitempty"`
}

// Counter returns the named counter's value and whether it is present.
func (m *Metrics) Counter(name string) (uint64, bool) {
	for _, c := range m.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Host is the run's host-side provenance: where and how long it ran. Host
// fields are never part of the deterministic modeled-state contract — the
// sentinel applies robust outlier statistics to them, not bit-equality.
type Host struct {
	Hostname  string `json:"hostname,omitempty"`
	GoOS      string `json:"goos"`
	GoArch    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go"`
	WallNS    int64  `json:"wall_ns"`
}

// Wall returns the run's wall time.
func (h Host) Wall() time.Duration { return time.Duration(h.WallNS) }

// Record is one ledger line: the full provenance-stamped outcome of one run.
type Record struct {
	V    int    `json:"v"`
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Start is when the run began, RFC 3339 with nanoseconds.
	Start time.Time `json:"start"`

	// Workload identity: the human-facing key of what ran.
	Kernel      string `json:"kernel,omitempty"` // empty for ad-hoc -asm runs
	IQSize      int    `json:"iq"`
	Reuse       bool   `json:"reuse"`
	Distributed bool   `json:"dist,omitempty"`
	Strategy    int    `json:"strategy,omitempty"`
	NBLTSize    int    `json:"nblt"`

	// Provenance: the value-hash fingerprints from internal/snapshot, in
	// their "%016x:%016x" string form (strings, not u64s, so JavaScript
	// consumers of /runs never round them), plus every mode flag that can
	// change the run's observable surface.
	Fingerprint string `json:"fingerprint"`
	ChaosSeed   int64  `json:"chaos_seed,omitempty"`
	FastForward bool   `json:"ffwd,omitempty"`
	FlightRec   bool   `json:"flightrec,omitempty"`
	Verified    bool   `json:"verified,omitempty"`

	// Headline results.
	Cycles  uint64  `json:"cycles"`
	Commits uint64  `json:"commits"`
	IPC     float64 `json:"ipc"`
	Gated   float64 `json:"gated"`
	Err     string  `json:"err,omitempty"`
	Retried bool    `json:"retried,omitempty"`

	// Metrics is the complete telemetry registry snapshot at run end.
	Metrics Metrics `json:"metrics"`
	// Energy is the power model's per-component energy attribution
	// (normalized units), keyed by component name, plus "total".
	Energy map[string]float64 `json:"energy,omitempty"`

	Host Host `json:"host"`
}

// ConfigHash returns the config half of the record's fingerprint string.
func (r *Record) ConfigHash() string {
	cfg, _, _ := strings.Cut(r.Fingerprint, ":")
	return cfg
}

// newID returns a fresh 16-hex-digit run id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero id would
		// collide, so degrade to the only entropy left.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Ledger is an open run ledger: an append-only JSONL file plus the in-memory
// view of every record in it. All methods are safe for concurrent use; a nil
// *Ledger is a valid "recording disabled" value for Append.
type Ledger struct {
	mu   sync.Mutex
	f    *os.File
	path string
	recs []Record
	byID map[string]int
}

// Open opens (creating if needed) the ledger at path and replays its
// records. A torn final line — the residue of a crash mid-append — is
// tolerated and truncated away so subsequent appends produce a well-formed
// log again. A record with a future schema version fails the open.
func Open(path string) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	l := &Ledger{f: f, path: path, byID: map[string]int{}}
	good, err := l.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstore: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstore: %w", err)
	}
	return l, nil
}

// replay decodes every complete record and returns the byte offset just past
// the last good line. Mirrors the experiment journal: a torn or corrupt
// final line ends the replay, a future-version record fails it.
func (l *Ledger) replay() (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("runstore: %w", err)
	}
	var good int64
	sc := bufio.NewScanner(l.f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail: everything before it stands
		}
		if rec.V != SchemaVersion {
			return 0, fmt.Errorf("runstore: %s: record version %d, this build reads %d", l.path, rec.V, SchemaVersion)
		}
		good += int64(len(line)) + 1
		l.byID[rec.ID] = len(l.recs)
		l.recs = append(l.recs, rec)
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("runstore: %s: %w", l.path, err)
	}
	return good, nil
}

// Load reads the ledger at path read-only: records replay with the same
// torn-tail tolerance and version check as Open, but the file is never
// created, truncated or held open — the right primitive for query CLIs
// reading beside a live writer.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	defer f.Close()
	l := &Ledger{f: f, path: path, byID: map[string]int{}}
	if _, err := l.replay(); err != nil {
		return nil, err
	}
	return l.recs, nil
}

// Path returns the ledger file's path.
func (l *Ledger) Path() string { return l.path }

// Close closes the ledger file. The in-memory view stays readable.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Append stamps rec (schema version, and a fresh id unless the caller set
// one), appends it to the ledger and fsyncs. Appending to a nil or closed
// ledger is a no-op, so call sites need no recording-enabled checks.
func (l *Ledger) Append(rec *Record) error {
	if l == nil {
		return nil
	}
	rec.V = SchemaVersion
	if rec.ID == "" {
		rec.ID = newID()
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if _, err := l.f.Write(append(data, '\n')); err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
	}
	l.byID[rec.ID] = len(l.recs)
	l.recs = append(l.recs, *rec)
	return nil
}

// Len returns the number of records.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Records returns a copy of every record, in append (chronological) order.
func (l *Ledger) Records() []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.recs...)
}

// Get returns the record with the given id, or the unique record whose id
// has the given prefix (at least 4 hex digits).
func (l *Ledger) Get(id string) (Record, bool) {
	if l == nil {
		return Record{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if i, ok := l.byID[id]; ok {
		return l.recs[i], true
	}
	if len(id) >= 4 {
		found, n := -1, 0
		for i := range l.recs {
			if strings.HasPrefix(l.recs[i].ID, id) {
				found, n = i, n+1
			}
		}
		if n == 1 {
			return l.recs[found], true
		}
	}
	return Record{}, false
}

// Filter selects ledger records. Zero-valued fields match everything.
type Filter struct {
	Kind        string // KindSim or KindCell
	Kernel      string
	Fingerprint string // full "cfg:prog" form, or a config-hash prefix
	IQSize      int
	FastForward *bool
	Reuse       *bool
	// Last keeps only the most recent N matches (0 = all).
	Last int
}

// Match reports whether rec passes the filter.
func (f Filter) Match(rec *Record) bool {
	switch {
	case f.Kind != "" && rec.Kind != f.Kind,
		f.Kernel != "" && rec.Kernel != f.Kernel,
		f.IQSize != 0 && rec.IQSize != f.IQSize,
		f.FastForward != nil && rec.FastForward != *f.FastForward,
		f.Reuse != nil && rec.Reuse != *f.Reuse:
		return false
	}
	if f.Fingerprint != "" {
		if strings.Contains(f.Fingerprint, ":") {
			if rec.Fingerprint != f.Fingerprint {
				return false
			}
		} else if !strings.HasPrefix(rec.Fingerprint, f.Fingerprint) {
			return false
		}
	}
	return true
}

// Select returns the records in recs matching f, in input order. The result
// is always a fresh slice (record values are copied), so callers holding a
// snapshot — like the /runs endpoint — can filter without aliasing.
func (f Filter) Select(recs []Record) []Record {
	var out []Record
	for i := range recs {
		if f.Match(&recs[i]) {
			out = append(out, recs[i])
		}
	}
	if f.Last > 0 && len(out) > f.Last {
		out = out[len(out)-f.Last:]
	}
	return out
}

// Select returns the ledger records matching f, in append order.
func (l *Ledger) Select(f Filter) []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return f.Select(l.recs)
}

package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BenchSchemaVersion guards the machine-readable benchmark summaries
// (BENCH_simcore.json, BENCH_ffwd.json). Like ledger records they are
// versioned so a reader can refuse data it does not understand instead of
// mis-diffing it.
const BenchSchemaVersion = 1

// Bench record kinds.
const (
	// BenchSimcore is the sweep throughput summary reusebench writes.
	BenchSimcore = "simcore"
	// BenchFfwd is the fast-forward on/off comparison.
	BenchFfwd = "ffwd"
)

// BenchThroughput is the simcore headline: whole-sweep simulation throughput.
type BenchThroughput struct {
	SimulatedCycles uint64  `json:"simulated_cycles"`
	WallNS          int64   `json:"wall_ns"`
	Wall            string  `json:"wall"`
	CyclesPerSec    float64 `json:"cycles_per_sec"`
	NSPerCycle      float64 `json:"ns_per_cycle"`
	AllocsPerCycle  float64 `json:"allocs_per_cycle"`
}

// BenchSection is one timed section of a simcore run.
type BenchSection struct {
	Name   string `json:"name"`
	Wall   string `json:"wall"`
	WallNS int64  `json:"wall_ns"`
}

// BenchFfwdSection is one row of the fast-forward comparison: identical work
// simulated with the analytic fast-forward engine off and on.
type BenchFfwdSection struct {
	Name    string  `json:"name"`
	Off     string  `json:"off"`
	On      string  `json:"on"`
	OffNS   int64   `json:"off_ns"`
	OnNS    int64   `json:"on_ns"`
	Speedup float64 `json:"speedup"`
}

// BenchRecord is the unified schema for the repo's machine-readable
// benchmark files: one versioned envelope whose kind selects the payload.
type BenchRecord struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	// Throughput and Sections are the simcore payload.
	Throughput *BenchThroughput `json:"throughput,omitempty"`
	Sections   []BenchSection   `json:"sections,omitempty"`
	// Ffwd is the ffwd payload.
	Ffwd []BenchFfwdSection `json:"ffwd,omitempty"`
}

// Validate checks the envelope and the kind's payload shape.
func (b *BenchRecord) Validate() error {
	if b.V != BenchSchemaVersion {
		return fmt.Errorf("bench record version %d, this build reads %d", b.V, BenchSchemaVersion)
	}
	switch b.Kind {
	case BenchSimcore:
		if b.Throughput == nil {
			return fmt.Errorf("simcore record has no throughput block")
		}
		if b.Throughput.WallNS < 0 {
			return fmt.Errorf("simcore record has negative wall time")
		}
		for i, s := range b.Sections {
			if s.Name == "" {
				return fmt.Errorf("simcore section %d has no name", i)
			}
		}
	case BenchFfwd:
		if len(b.Ffwd) == 0 {
			return fmt.Errorf("ffwd record has no sections")
		}
		for i, s := range b.Ffwd {
			if s.Name == "" {
				return fmt.Errorf("ffwd section %d has no name", i)
			}
			if s.OffNS < 0 || s.OnNS < 0 {
				return fmt.Errorf("ffwd section %q has negative timings", s.Name)
			}
		}
	default:
		return fmt.Errorf("unknown bench record kind %q", b.Kind)
	}
	return nil
}

// ParseBenchRecord decodes and validates one bench record.
func ParseBenchRecord(data []byte) (*BenchRecord, error) {
	var b BenchRecord
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// ReadBenchRecord loads and validates a bench record file.
func ReadBenchRecord(path string) (*BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := ParseBenchRecord(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// WriteBenchRecord writes the record as indented JSON (the checked-in
// BENCH_*.json form).
func WriteBenchRecord(path string, b *BenchRecord) error {
	if err := b.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// MetricValues flattens the record's payload into named values for diffing:
// simcore yields the throughput block plus per-section wall times, ffwd
// yields per-section off/on times and speedups.
func (b *BenchRecord) MetricValues() map[string]float64 {
	out := map[string]float64{}
	switch b.Kind {
	case BenchSimcore:
		t := b.Throughput
		out["simulated_cycles"] = float64(t.SimulatedCycles)
		out["wall_ns"] = float64(t.WallNS)
		out["cycles_per_sec"] = t.CyclesPerSec
		out["ns_per_cycle"] = t.NSPerCycle
		out["allocs_per_cycle"] = t.AllocsPerCycle
		for _, s := range b.Sections {
			out["section."+s.Name+".wall_ns"] = float64(s.WallNS)
		}
	case BenchFfwd:
		for _, s := range b.Ffwd {
			out["ffwd."+s.Name+".off_ns"] = float64(s.OffNS)
			out["ffwd."+s.Name+".on_ns"] = float64(s.OnNS)
			out["ffwd."+s.Name+".speedup"] = s.Speedup
		}
	}
	return out
}

// DiffBench compares two validated bench records of the same kind, returning
// rows in sorted name order.
func DiffBench(a, b *BenchRecord) (*DiffReport, error) {
	if a.Kind != b.Kind {
		return nil, fmt.Errorf("bench records have different kinds: %q vs %q", a.Kind, b.Kind)
	}
	av, bv := a.MetricValues(), b.MetricValues()
	d := &DiffReport{ALabel: a.Kind + " A", BLabel: b.Kind + " B", ACount: 1, BCount: 1}
	names := make([]string, 0, len(av))
	for n := range av {
		names = append(names, n)
	}
	for n := range bv {
		if _, ok := av[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		x, xok := av[n]
		y, yok := bv[n]
		d.Rows = append(d.Rows, DiffRow{Name: n, A: x, B: y, AOK: xok, BOK: yok})
	}
	return d, nil
}

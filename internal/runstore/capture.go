package runstore

import (
	"os"
	"runtime"
	"time"

	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/snapshot"
	"reuseiq/internal/telemetry"
)

// ConvertMetrics copies a telemetry snapshot into the ledger's JSON-tagged
// form.
func ConvertMetrics(ms *telemetry.MetricsSnapshot) Metrics {
	m := Metrics{Counters: make([]Counter, len(ms.Counters))}
	for i, c := range ms.Counters {
		m.Counters[i] = Counter{Name: c.Name, Value: c.Value}
	}
	if len(ms.Gauges) > 0 {
		m.Gauges = make([]Gauge, len(ms.Gauges))
		for i, g := range ms.Gauges {
			m.Gauges[i] = Gauge{Name: g.Name, Value: g.Value}
		}
	}
	if len(ms.Hists) > 0 {
		m.Hists = make([]Hist, len(ms.Hists))
		for i, h := range ms.Hists {
			buckets := make([]HistBucket, len(h.Buckets))
			for j, b := range h.Buckets {
				buckets[j] = HistBucket{LE: b.LE, Inf: b.IsInf, Count: b.Count}
			}
			m.Hists[i] = Hist{Name: h.Name, Buckets: buckets, Count: h.Count, Sum: h.Sum, Max: h.Max}
		}
	}
	return m
}

// EnergyMap converts a power report into the ledger's by-name energy map,
// with the run total under "total".
func EnergyMap(pr power.Report) map[string]float64 {
	e := make(map[string]float64, int(power.NumComponents)+1)
	for c := power.Component(0); c < power.NumComponents; c++ {
		e[c.String()] = pr.Energy[c]
	}
	e["total"] = pr.Total()
	return e
}

// FromMachine captures a finished machine as a ledger record: fingerprint,
// full metrics snapshot, energy attribution, headline results and host
// provenance. The caller fills the workload identity (Kernel, Kind), the mode
// flags the machine can't see (FlightRec, Verified, Retried) and Start/WallNS.
func FromMachine(m *pipeline.Machine) Record {
	reg := &telemetry.Registry{}
	m.RegisterMetrics(reg)
	hostname, _ := os.Hostname()
	rec := Record{
		Start:       time.Now().UTC(),
		IQSize:      m.Cfg.IQSize,
		Reuse:       m.Cfg.Reuse.Enabled,
		Strategy:    int(m.Cfg.Reuse.Strategy),
		NBLTSize:    m.Cfg.Reuse.NBLTSize,
		Fingerprint: snapshot.FingerprintOf(m.Cfg, m.Prog).String(),
		FastForward: m.Cfg.FastForward,
		Cycles:      m.C.Cycles,
		Commits:     m.C.Commits,
		IPC:         m.IPC(),
		Gated:       m.GatedFraction(),
		Metrics:     ConvertMetrics(reg.TypedSnapshot()),
		Energy:      EnergyMap(power.Analyze(m)),
		Host: Host{
			Hostname:  hostname,
			GoOS:      runtime.GOOS,
			GoArch:    runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
			GoVersion: runtime.Version(),
		},
	}
	if m.Cfg.Chaos.Enabled {
		rec.ChaosSeed = m.Cfg.Chaos.Seed
	}
	return rec
}

package runstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func ledgerPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "runs.jsonl")
}

// testRecord builds a minimal modeled record: two fingerprint-identical
// testRecords must pass the sentinel.
func testRecord(id, fp string, wall time.Duration) Record {
	return Record{
		ID:          id,
		Kind:        KindSim,
		Start:       time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC),
		Kernel:      "aps",
		IQSize:      64,
		Reuse:       true,
		NBLTSize:    8,
		Fingerprint: fp,
		Cycles:      1000,
		Commits:     2500,
		IPC:         2.5,
		Metrics: Metrics{
			Counters: []Counter{
				{Name: "commit.loads", Value: 400},
				{Name: "iq.dispatches", Value: 2600},
				{Name: "sim.commits", Value: 2500},
				{Name: "sim.cycles", Value: 1000},
				{Name: "telemetry.events", Value: 7}, // observer-dependent
			},
			Gauges: []Gauge{{Name: "sim.ipc", Value: 2.5}},
		},
		Energy: map[string]float64{"issueq": 123.5, "total": 900.25},
		Host:   Host{GoOS: "linux", GoArch: "amd64", CPUs: 8, GoVersion: "go1.22", WallNS: wall.Nanoseconds()},
	}
}

func TestLedgerAppendReopen(t *testing.T) {
	path := ledgerPath(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a := testRecord("", "aaaa000000000000:bbbb000000000000", time.Second)
	if err := l.Append(&a); err != nil {
		t.Fatal(err)
	}
	if a.ID == "" || len(a.ID) != 16 {
		t.Fatalf("Append assigned id %q, want 16 hex digits", a.ID)
	}
	if a.V != SchemaVersion {
		t.Fatalf("Append stamped version %d, want %d", a.V, SchemaVersion)
	}
	b := testRecord("feedfacecafebeef", "aaaa000000000000:bbbb000000000000", 2*time.Second)
	if err := l.Append(&b); err != nil {
		t.Fatal(err)
	}
	l.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs := r.Records()
	if len(recs) != 2 {
		t.Fatalf("reopened ledger holds %d records, want 2", len(recs))
	}
	if !reflect.DeepEqual(recs[0], a) || !reflect.DeepEqual(recs[1], b) {
		t.Errorf("reopened records differ from appended:\n got %+v\nand %+v", recs[0], recs[1])
	}
	if got, ok := r.Get("feedfacecafebeef"); !ok || got.ID != b.ID {
		t.Errorf("Get by full id failed: %+v %v", got, ok)
	}
	if got, ok := r.Get("feedface"); !ok || got.ID != b.ID {
		t.Errorf("Get by prefix failed: %+v %v", got, ok)
	}
	if _, ok := r.Get("fee"); ok {
		t.Error("3-char prefix resolved; prefixes need at least 4 digits")
	}
}

func TestLedgerTornTailTruncated(t *testing.T) {
	path := ledgerPath(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a := testRecord("", "cccc000000000000:dddd000000000000", time.Second)
	if err := l.Append(&a); err != nil {
		t.Fatal(err)
	}
	l.Close()
	good, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// A kill mid-append leaves a partial JSON line with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"id":"dead`)
	f.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("recovered %d records, want the 1 complete one", r.Len())
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != good.Size() {
		t.Errorf("torn tail not truncated: %d bytes, want %d", st.Size(), good.Size())
	}
	// Appending after truncation must yield a well-formed log again.
	b := testRecord("", "cccc000000000000:dddd000000000000", time.Second)
	if err := r.Append(&b); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 2 {
		t.Fatalf("post-truncation ledger holds %d records, want 2", r2.Len())
	}
}

func TestLedgerVersionMismatch(t *testing.T) {
	path := ledgerPath(t)
	if err := os.WriteFile(path, []byte(`{"v":2,"id":"0123456789abcdef"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("future-version record accepted")
	}
}

func TestLedgerNilIsDisabled(t *testing.T) {
	var l *Ledger
	rec := testRecord("", "eeee000000000000:ffff000000000000", time.Second)
	if err := l.Append(&rec); err != nil {
		t.Fatalf("nil ledger Append: %v", err)
	}
	if l.Len() != 0 || l.Records() != nil || l.Select(Filter{}) != nil {
		t.Error("nil ledger is not empty")
	}
	if _, ok := l.Get("0123456789abcdef"); ok {
		t.Error("nil ledger resolved an id")
	}
}

func TestLedgerSelect(t *testing.T) {
	path := ledgerPath(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mk := func(kernel string, iq int, reuse bool, fp string) {
		r := testRecord("", fp, time.Second)
		r.Kernel, r.IQSize, r.Reuse = kernel, iq, reuse
		if err := l.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	mk("aps", 64, true, "1111000000000000:2222000000000000")
	mk("aps", 128, true, "3333000000000000:2222000000000000")
	mk("adi", 64, false, "4444000000000000:5555000000000000")

	if got := l.Select(Filter{Kernel: "aps"}); len(got) != 2 {
		t.Errorf("Kernel filter: %d records, want 2", len(got))
	}
	if got := l.Select(Filter{IQSize: 128}); len(got) != 1 {
		t.Errorf("IQSize filter: %d records, want 1", len(got))
	}
	f := false
	if got := l.Select(Filter{Reuse: &f}); len(got) != 1 || got[0].Kernel != "adi" {
		t.Errorf("Reuse filter: %+v", got)
	}
	if got := l.Select(Filter{Fingerprint: "3333000000000000:2222000000000000"}); len(got) != 1 {
		t.Errorf("full fingerprint filter: %d records, want 1", len(got))
	}
	if got := l.Select(Filter{Fingerprint: "1111"}); len(got) != 1 {
		t.Errorf("config-hash prefix filter: %d records, want 1", len(got))
	}
	if got := l.Select(Filter{Kernel: "aps", Last: 1}); len(got) != 1 || got[0].IQSize != 128 {
		t.Errorf("Last filter: %+v", got)
	}
}

func TestModeledClassification(t *testing.T) {
	modeled := []string{"sim.cycles", "iq.dispatches", "reuse.detections", "fu.ialu", "nblt.hits", "il1.accesses"}
	observer := []string{"ffwd.engagements", "flightrec.checkpoints_taken", "telemetry.events", "snapshot.saves", "sweep.cells", "obs.scrapes", "hist.session_cycles"}
	for _, n := range modeled {
		if !Modeled(n) {
			t.Errorf("%s classified observer-dependent, want modeled", n)
		}
	}
	for _, n := range observer {
		if Modeled(n) {
			t.Errorf("%s classified modeled, want observer-dependent", n)
		}
	}
}

// TestSentinelCatchesInjectedDrift is the acceptance-criteria oracle test: a
// single modeled counter drifting by one count between fingerprint-identical
// runs must fail the sentinel, naming the counter; observer-dependent
// counters may differ freely.
func TestSentinelCatchesInjectedDrift(t *testing.T) {
	fp := "abcd000000000000:ef01000000000000"
	a := testRecord("aaaaaaaaaaaaaaaa", fp, 100*time.Millisecond)
	b := testRecord("bbbbbbbbbbbbbbbb", fp, 150*time.Millisecond)
	// Observer-side divergence is fine.
	b.Metrics.Counters[4].Value += 99 // telemetry.events

	rep := Sentinel([]Record{a, b})
	if !rep.Pass() {
		t.Fatalf("identical modeled counters failed the sentinel: %+v", rep.Drifts())
	}
	if len(rep.Groups) != 1 || len(rep.Groups[0].RunIDs) != 2 {
		t.Fatalf("grouping wrong: %+v", rep.Groups)
	}

	// Inject a 1-count drift in a modeled activity counter.
	b.Metrics.Counters[1].Value++ // iq.dispatches
	rep = Sentinel([]Record{a, b})
	if rep.Pass() {
		t.Fatal("sentinel missed a 1-count drift in iq.dispatches")
	}
	drifts := rep.Drifts()
	if len(drifts) != 1 {
		t.Fatalf("got %d drifts, want exactly the injected one: %+v", len(drifts), drifts)
	}
	d := drifts[0]
	if d.Name != "iq.dispatches" || d.Base != "2600" || d.Run != "2601" {
		t.Errorf("drift misreported: %+v", d)
	}
	if d.BaseID != a.ID || d.RunID != b.ID {
		t.Errorf("drift ids misreported: %+v", d)
	}
}

func TestSentinelHeadlineAndEnergyDrift(t *testing.T) {
	fp := "abcd000000000000:ef01000000000000"
	a := testRecord("aaaaaaaaaaaaaaaa", fp, time.Second)
	b := testRecord("bbbbbbbbbbbbbbbb", fp, time.Second)
	b.Cycles++
	b.Energy["issueq"] += 0.5
	rep := Sentinel([]Record{a, b})
	if rep.Pass() {
		t.Fatal("cycle/energy drift passed")
	}
	names := map[string]bool{}
	for _, d := range rep.Drifts() {
		names[d.Name] = true
	}
	if !names["sim.cycles"] || !names["energy.issueq"] {
		t.Errorf("drift names %v, want sim.cycles and energy.issueq", names)
	}
}

func TestSentinelMissingCounterIsDrift(t *testing.T) {
	fp := "abcd000000000000:ef01000000000000"
	a := testRecord("aaaaaaaaaaaaaaaa", fp, time.Second)
	b := testRecord("bbbbbbbbbbbbbbbb", fp, time.Second)
	// Drop a modeled counter from b entirely.
	b.Metrics.Counters = append(b.Metrics.Counters[:0], b.Metrics.Counters[1:]...)
	rep := Sentinel([]Record{a, b})
	if rep.Pass() {
		t.Fatal("vanished modeled counter passed the sentinel")
	}
	d := rep.Drifts()[0]
	if d.Name != "commit.loads" || d.Run != "(absent)" {
		t.Errorf("missing counter misreported: %+v", d)
	}
}

func TestSentinelGroupsAndSkips(t *testing.T) {
	a := testRecord("aaaaaaaaaaaaaaaa", "1111000000000000:2222000000000000", time.Second)
	b := testRecord("bbbbbbbbbbbbbbbb", "3333000000000000:2222000000000000", time.Second)
	c := testRecord("cccccccccccccccc", "1111000000000000:2222000000000000", time.Second)
	c.Err = "watchdog"
	rep := Sentinel([]Record{a, b, c})
	if !rep.Pass() {
		t.Fatalf("unexpected drifts: %+v", rep.Drifts())
	}
	// Both fingerprints are singletons once the errored run is skipped.
	if len(rep.Groups) != 0 || rep.Singles != 2 {
		t.Errorf("groups %d singles %d, want 0 groups and 2 singles", len(rep.Groups), rep.Singles)
	}
}

func TestSentinelWallOutlier(t *testing.T) {
	fp := "abcd000000000000:ef01000000000000"
	var recs []Record
	for i, wall := range []time.Duration{100 * time.Millisecond, 101 * time.Millisecond, 99 * time.Millisecond, 102 * time.Millisecond, 2 * time.Second} {
		r := testRecord(strings.Repeat(string(rune('a'+i)), 16), fp, wall)
		recs = append(recs, r)
	}
	rep := Sentinel(recs)
	if !rep.Pass() {
		t.Fatalf("wall-time variance failed the sentinel: %+v", rep.Drifts())
	}
	g := rep.Groups[0]
	if len(g.Outliers) != 1 || g.Outliers[0].WallNS != (2*time.Second).Nanoseconds() {
		t.Fatalf("outliers %+v, want exactly the 2s run", g.Outliers)
	}
	if g.Outliers[0].Z < 3.5 {
		t.Errorf("outlier z=%.1f, want > 3.5", g.Outliers[0].Z)
	}

	// Below four runs the test is statistically meaningless: no outliers.
	rep = Sentinel(recs[:3])
	if len(rep.Groups[0].Outliers) != 0 {
		t.Errorf("outliers reported for a 3-run group: %+v", rep.Groups[0].Outliers)
	}
}

func TestDiffTwoRuns(t *testing.T) {
	a := testRecord("aaaaaaaaaaaaaaaa", "1111000000000000:2222000000000000", time.Second)
	b := testRecord("bbbbbbbbbbbbbbbb", "3333000000000000:2222000000000000", time.Second)
	b.Metrics.Counters[1].Value = 2000 // iq.dispatches 2600 -> 2000
	b.Energy["issueq"] = 100.0

	d := Diff([]Record{a}, []Record{b})
	rows := map[string]DiffRow{}
	for _, r := range d.Rows {
		rows[r.Name] = r
	}
	iq := rows["iq.dispatches"]
	if iq.A != 2600 || iq.B != 2000 || !iq.Changed() || iq.Delta() != -600 {
		t.Errorf("iq.dispatches row wrong: %+v", iq)
	}
	if !rows["energy.issueq"].Changed() || rows["energy.total"].Changed() {
		t.Error("energy rows misclassified")
	}
	if rows["sim.cycles"].Changed() {
		t.Error("identical counter reported changed")
	}

	var buf bytes.Buffer
	if err := d.WriteText(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "iq.dispatches") || !strings.Contains(out, "-600") {
		t.Errorf("rendered diff missing the changed counter:\n%s", out)
	}
	if strings.Contains(out, "commit.loads") {
		t.Errorf("changed-only diff includes an identical counter:\n%s", out)
	}
	if !strings.Contains(out, "-23.08%") {
		t.Errorf("rendered diff missing the percent delta:\n%s", out)
	}
}

func TestDiffRunSetsUseMeans(t *testing.T) {
	mk := func(id string, dispatches uint64) Record {
		r := testRecord(id, "1111000000000000:2222000000000000", time.Second)
		r.Metrics.Counters[1].Value = dispatches
		return r
	}
	d := Diff(
		[]Record{mk("aaaaaaaaaaaaaaaa", 100), mk("bbbbbbbbbbbbbbbb", 200)},
		[]Record{mk("cccccccccccccccc", 400)},
	)
	for _, r := range d.Rows {
		if r.Name == "iq.dispatches" {
			if r.A != 150 || r.B != 400 {
				t.Errorf("set means wrong: %+v", r)
			}
			return
		}
	}
	t.Fatal("iq.dispatches row missing")
}

func TestBenchRecordValidate(t *testing.T) {
	good := &BenchRecord{
		V: BenchSchemaVersion, Kind: BenchSimcore,
		Throughput: &BenchThroughput{SimulatedCycles: 100, WallNS: 5, Wall: "5ns"},
		Sections:   []BenchSection{{Name: "figure5", Wall: "1ms", WallNS: 1e6}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid simcore record rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*BenchRecord)
	}{
		{"future version", func(b *BenchRecord) { b.V = BenchSchemaVersion + 1 }},
		{"unknown kind", func(b *BenchRecord) { b.Kind = "mystery" }},
		{"simcore without throughput", func(b *BenchRecord) { b.Throughput = nil }},
		{"unnamed section", func(b *BenchRecord) { b.Sections[0].Name = "" }},
	}
	for _, tc := range cases {
		b := *good
		b.Sections = append([]BenchSection(nil), good.Sections...)
		tc.mut(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	ffwd := &BenchRecord{V: BenchSchemaVersion, Kind: BenchFfwd}
	if err := ffwd.Validate(); err == nil {
		t.Error("ffwd record with no sections accepted")
	}
	ffwd.Ffwd = []BenchFfwdSection{{Name: "figure5", OffNS: 10, OnNS: 5, Speedup: 2}}
	if err := ffwd.Validate(); err != nil {
		t.Errorf("valid ffwd record rejected: %v", err)
	}
}

func TestBenchRecordRoundTripAndDiff(t *testing.T) {
	dir := t.TempDir()
	a := &BenchRecord{
		V: BenchSchemaVersion, Kind: BenchSimcore,
		Throughput: &BenchThroughput{SimulatedCycles: 1000, WallNS: 100, NSPerCycle: 0.1},
		Sections:   []BenchSection{{Name: "figure5", WallNS: 60}},
	}
	path := filepath.Join(dir, "a.json")
	if err := WriteBenchRecord(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Errorf("round trip differs:\n got %+v\nwant %+v", got, a)
	}

	b := *a
	b.Throughput = &BenchThroughput{SimulatedCycles: 1000, WallNS: 120, NSPerCycle: 0.12}
	d, err := DiffBench(a, &b)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DiffRow{}
	for _, r := range d.Rows {
		byName[r.Name] = r
	}
	if row := byName["ns_per_cycle"]; !row.Changed() || row.B != 0.12 {
		t.Errorf("ns_per_cycle row wrong: %+v", row)
	}
	if _, err := DiffBench(a, &BenchRecord{V: 1, Kind: BenchFfwd, Ffwd: []BenchFfwdSection{{Name: "x"}}}); err == nil {
		t.Error("cross-kind diff accepted")
	}

	if _, err := ParseBenchRecord([]byte(`{"v":1,"kind":`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestWriteHTMLReport(t *testing.T) {
	fp := "abcd000000000000:ef01000000000000"
	a := testRecord("aaaaaaaaaaaaaaaa", fp, 100*time.Millisecond)
	b := testRecord("bbbbbbbbbbbbbbbb", fp, 150*time.Millisecond)
	b.Metrics.Counters[1].Value++
	rep := Sentinel([]Record{a, b})
	d := Diff([]Record{a}, []Record{b})
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "test report", []Record{a, b}, rep, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!doctype html>", "FAIL", "iq.dispatches", a.ID, "prefers-color-scheme: dark"} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}

package runstore

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestLedgerKill9MidAppend is the crash drill: a child process appends
// records in a tight loop, the parent SIGKILLs it mid-stream, then reopens
// the ledger. The reopen must tolerate whatever torn tail the kill left,
// every surviving record must be complete and unique (no double-counted
// runs), and the ledger must accept appends again.
func TestLedgerKill9MidAppend(t *testing.T) {
	if os.Getenv("REUSEIQ_LEDGER_CHILD") == "1" {
		childAppendLoop(t, os.Getenv("REUSEIQ_LEDGER_PATH"))
		return
	}
	if testing.Short() {
		t.Skip("subprocess drill")
	}

	path := filepath.Join(t.TempDir(), "runs.jsonl")
	cmd := exec.Command(os.Args[0], "-test.run=^TestLedgerKill9MidAppend$")
	cmd.Env = append(os.Environ(), "REUSEIQ_LEDGER_CHILD=1", "REUSEIQ_LEDGER_PATH="+path)
	var childOut bytes.Buffer
	cmd.Stdout = &childOut
	cmd.Stderr = &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill as soon as the ledger shows a few records; with the child
	// appending continuously the kill usually lands mid-write.
	deadline := time.Now().Add(60 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		if st, err := os.Stat(path); err == nil && st.Size() > 2048 {
			cmd.Process.Kill()
			killed = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	err := cmd.Wait()
	if !killed {
		t.Fatalf("child produced no ledger to kill over: %v\n%s", err, childOut.String())
	}

	l, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after kill -9: %v", err)
	}
	defer l.Close()
	recs := l.Records()
	if len(recs) == 0 {
		t.Fatal("no records survived the kill")
	}

	// Every surviving record is complete and counted exactly once: the child
	// numbers its runs in the chaos-seed field, so the survivors must be the
	// exact prefix 0..n-1 with no repeats and no holes.
	seen := map[string]bool{}
	for i, rec := range recs {
		if seen[rec.ID] {
			t.Errorf("record %s double-counted after crash reopen", rec.ID)
		}
		seen[rec.ID] = true
		if rec.ChaosSeed != int64(i) {
			t.Fatalf("record %d carries sequence %d: survivors are not the append-order prefix", i, rec.ChaosSeed)
		}
		if rec.Fingerprint == "" || rec.Metrics.Counters == nil {
			t.Errorf("record %d is incomplete: %+v", i, rec)
		}
	}

	// The reopened ledger must accept appends and replay cleanly again.
	next := testRecord("", "9999000000000000:8888000000000000", time.Second)
	next.ChaosSeed = int64(len(recs))
	if err := l.Append(&next); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != len(recs)+1 {
		t.Fatalf("post-crash append lost: %d records, want %d", l2.Len(), len(recs)+1)
	}
}

// childAppendLoop is the subprocess half of the drill: append numbered
// records until killed.
func childAppendLoop(t *testing.T, path string) {
	if path == "" {
		t.Fatal("REUSEIQ_LEDGER_PATH not set")
	}
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 100_000; i++ {
		rec := testRecord("", fmt.Sprintf("%016x:aaaa000000000000", i), time.Millisecond)
		rec.ChaosSeed = int64(i) // sequence number for the parent's prefix check
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
}

package runstore

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// DiffRow is one metric compared across two runs (or two run-sets, where the
// values are per-set means).
type DiffRow struct {
	Name     string
	A, B     float64
	AOK, BOK bool
	Integer  bool // render as integers (counters), not floats
}

// Delta returns B - A.
func (r DiffRow) Delta() float64 { return r.B - r.A }

// Pct returns the relative change in percent (NaN when A is zero).
func (r DiffRow) Pct() float64 {
	if r.A == 0 {
		return math.NaN()
	}
	return 100 * (r.B - r.A) / r.A
}

// Changed reports whether the row differs between the two sides.
func (r DiffRow) Changed() bool {
	return r.AOK != r.BOK || math.Float64bits(r.A) != math.Float64bits(r.B)
}

// DiffReport is a counter-by-counter comparison of two runs or run-sets.
type DiffReport struct {
	ALabel, BLabel string
	// ACount/BCount are the set sizes (1 for single-run diffs; means are
	// reported for larger sets).
	ACount, BCount int
	Rows           []DiffRow
}

// Changed returns only the rows that differ.
func (d *DiffReport) Changed() []DiffRow {
	var out []DiffRow
	for _, r := range d.Rows {
		if r.Changed() {
			out = append(out, r)
		}
	}
	return out
}

// Diff compares two run-sets counter by counter. Each side's counters,
// gauges and energy components are averaged over the set (a single-record
// set is just that record's values), then every name present on either side
// becomes a row. Wall time joins as "host.wall_ns" so host cost shows up in
// the same table, clearly namespaced as non-modeled.
func Diff(a, b []Record) *DiffReport {
	d := &DiffReport{
		ALabel: setLabel(a), BLabel: setLabel(b),
		ACount: len(a), BCount: len(b),
	}
	av, ai := setMeans(a)
	bv, bi := setMeans(b)
	names := make([]string, 0, len(av))
	for n := range av {
		names = append(names, n)
	}
	for n := range bv {
		if _, ok := av[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		x, xok := av[n]
		y, yok := bv[n]
		d.Rows = append(d.Rows, DiffRow{
			Name: n, A: x, B: y, AOK: xok, BOK: yok,
			Integer: ai[n] || bi[n],
		})
	}
	return d
}

func setLabel(recs []Record) string {
	if len(recs) == 0 {
		return "(empty)"
	}
	r := recs[0]
	label := r.ID
	if len(recs) > 1 {
		label = fmt.Sprintf("%s +%d", r.ID, len(recs)-1)
	}
	if r.Kernel != "" {
		label = r.Kernel + " " + label
	}
	return label
}

// setMeans averages every metric over the set, returning values plus an
// is-integer marker per name (true when the name is a counter everywhere it
// appears and the mean is exact).
func setMeans(recs []Record) (map[string]float64, map[string]bool) {
	sums := map[string]float64{}
	counts := map[string]int{}
	isInt := map[string]bool{}
	add := func(name string, v float64, integer bool) {
		sums[name] += v
		counts[name]++
		if counts[name] == 1 {
			isInt[name] = integer
		} else if !integer {
			isInt[name] = false
		}
	}
	for i := range recs {
		r := &recs[i]
		for _, c := range r.Metrics.Counters {
			add(c.Name, float64(c.Value), true)
		}
		for _, g := range r.Metrics.Gauges {
			add(g.Name, g.Value, false)
		}
		for n, v := range r.Energy {
			add("energy."+n, v, false)
		}
		add("host.wall_ns", float64(r.Host.WallNS), true)
	}
	out := make(map[string]float64, len(sums))
	for n, s := range sums {
		out[n] = s / float64(counts[n])
		if counts[n] > 1 && out[n] != math.Trunc(out[n]) {
			isInt[n] = false
		}
	}
	return out, isInt
}

// WriteText renders the diff as an aligned terminal table. With changedOnly,
// identical rows are elided (the summary line still counts them).
func (d *DiffReport) WriteText(w io.Writer, changedOnly bool) error {
	rows := d.Rows
	if changedOnly {
		rows = d.Changed()
	}
	fmt.Fprintf(w, "A: %s (n=%d)   B: %s (n=%d)\n", d.ALabel, d.ACount, d.BLabel, d.BCount)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "metric\tA\tB\tdelta\t%\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t\n",
			r.Name, cell(r.A, r.AOK, r.Integer), cell(r.B, r.BOK, r.Integer),
			deltaCell(r), pctCell(r))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	changed := len(d.Changed())
	fmt.Fprintf(w, "%d metrics, %d changed\n", len(d.Rows), changed)
	return nil
}

func cell(v float64, ok, integer bool) string {
	if !ok {
		return "-"
	}
	if integer {
		return fmt.Sprintf("%.0f", v)
	}
	return trimFloat(v)
}

func deltaCell(r DiffRow) string {
	if !r.AOK || !r.BOK {
		return "-"
	}
	dl := r.Delta()
	if dl == 0 {
		return "0"
	}
	if r.Integer {
		return fmt.Sprintf("%+.0f", dl)
	}
	if dl > 0 {
		return "+" + trimFloat(dl)
	}
	return trimFloat(dl)
}

func pctCell(r DiffRow) string {
	if !r.AOK || !r.BOK || r.Delta() == 0 {
		return ""
	}
	p := r.Pct()
	if math.IsNaN(p) {
		return "new"
	}
	return fmt.Sprintf("%+.2f%%", p)
}

// trimFloat renders a float compactly: fixed 3 decimals with trailing zeros
// trimmed, so tables stay narrow without losing the signal digits.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

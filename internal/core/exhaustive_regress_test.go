package core

import "testing"

// Regression tests for the switches the exhaustive analyzer flagged: every
// State is handled in OnRecovery and every RevokeReason is accounted for in
// revoke's stats bookkeeping.

func TestOnRecoveryInNormalStateIsNoOp(t *testing.T) {
	c, _ := newCtl(32, 8)
	events := 0
	c.Hook = func(CtlEvent) { events++ }
	c.OnRecovery()
	if c.State() != Normal {
		t.Errorf("state = %v, want Normal", c.State())
	}
	if c.S.Revokes != 0 || c.S.ReuseExits != 0 {
		t.Errorf("recovery in Normal touched stats: %+v", c.S)
	}
	if events != 0 {
		t.Errorf("recovery in Normal emitted %d hook events, want 0", events)
	}
}

func TestRevokeStatsCoverEveryReason(t *testing.T) {
	counter := func(c *Controller, r RevokeReason) uint64 {
		switch r {
		case ReasonInner:
			return c.S.RevokesInner
		case ReasonExit:
			return c.S.RevokesExit
		case ReasonFull:
			return c.S.RevokesFull
		case ReasonRecovery:
			return c.S.RevokesRecovery
		case ReasonForced:
			return c.S.RevokesForced
		case ReasonNone, ReasonReuseExit:
			return 0 // no dedicated counter by design
		}
		t.Fatalf("unhandled reason %d", r)
		return 0
	}
	real := []RevokeReason{ReasonInner, ReasonExit, ReasonFull, ReasonRecovery, ReasonForced}
	for _, r := range real {
		c, _ := newCtl(32, 8)
		var got RevokeReason
		c.Hook = func(e CtlEvent) {
			if e.Kind == CtlRevoke {
				got = e.Reason
			}
		}
		c.revoke(r, false)
		if c.S.Revokes != 1 {
			t.Errorf("reason %v: Revokes = %d, want 1", r, c.S.Revokes)
		}
		if counter(c, r) != 1 {
			t.Errorf("reason %v: per-reason counter not incremented: %+v", r, c.S)
		}
		if got != r {
			t.Errorf("reason %v: hook saw reason %v", r, got)
		}
	}
	// The zero value and the reuse-exit reason are not revoke reasons:
	// revoke must tolerate them (total counted, no per-reason counter) —
	// the switch handles them explicitly rather than falling through.
	for _, r := range []RevokeReason{ReasonNone, ReasonReuseExit} {
		c, _ := newCtl(32, 8)
		c.revoke(r, false)
		if c.S.Revokes != 1 {
			t.Errorf("reason %v: Revokes = %d, want 1", r, c.S.Revokes)
		}
		if c.S.RevokesInner+c.S.RevokesExit+c.S.RevokesFull+c.S.RevokesRecovery+c.S.RevokesForced != 0 {
			t.Errorf("reason %v: incremented a per-reason counter: %+v", r, c.S)
		}
	}
	// Hook-less revoke must not panic (the nil guard zerocost enforces).
	c, _ := newCtl(32, 8)
	c.revoke(ReasonExit, true)
}

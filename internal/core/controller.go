package core

import "reuseiq/internal/isa"

// State is the issue queue's operating mode (paper Figure 2; the fourth
// encoding of the 2-bit register is unused).
type State uint8

const (
	// Normal: conventional out-of-order issue queue behaviour.
	Normal State = iota
	// Buffering: a capturable loop was detected; dispatched instructions
	// are classified and kept in the queue after issue.
	Buffering
	// Reuse: the front-end is gated and the queue supplies instructions
	// itself through the reuse pointer.
	Reuse
)

func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case Buffering:
		return "loop-buffering"
	case Reuse:
		return "code-reuse"
	}
	return "?"
}

// RevokeReason identifies why a buffering in progress was abandoned (or,
// for ReasonReuseExit, why an active Code Reuse ended).
type RevokeReason uint8

const (
	ReasonNone      RevokeReason = iota
	ReasonInner                  // inner loop detected (paper Figure 4)
	ReasonExit                   // execution left the loop during buffering
	ReasonFull                   // queue filled before the loop end was met
	ReasonRecovery               // branch misprediction during buffering
	ReasonForced                 // external fault injection (chaos testing)
	ReasonReuseExit              // Code Reuse ended by misprediction recovery
)

var reasonNames = [...]string{
	"none", "inner-loop", "loop-exit", "queue-full", "recovery", "forced", "reuse-exit",
}

func (r RevokeReason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "?"
}

// CtlEventKind enumerates the controller's observable events.
type CtlEventKind uint8

const (
	// CtlBuffer: Normal -> Buffering (a capturable loop was detected).
	CtlBuffer CtlEventKind = iota
	// CtlPromote: Buffering -> Reuse (front end gated).
	CtlPromote
	// CtlRevoke: Buffering -> Normal; Reason says why.
	CtlRevoke
	// CtlReuseExit: Reuse -> Normal (recovery ended the reuse session).
	CtlReuseExit
	// CtlIteration: one complete loop iteration finished buffering.
	CtlIteration
	// CtlNBLTHit: a detection was suppressed by the non-bufferable loop table.
	CtlNBLTHit
	// CtlNBLTInsert: a loop was registered as non-bufferable.
	CtlNBLTInsert
)

// CtlEvent is one observable controller event, delivered to the Hook. The
// struct is passed by value and contains no pointers, so delivery never
// allocates.
type CtlEvent struct {
	Kind CtlEventKind
	// Head and Tail are the current loop's bounds (valid for every kind but
	// NBLT events, whose Tail is the address looked up or inserted).
	Head, Tail uint32
	// Size is the loop's static size in instructions (CtlBuffer) or the
	// iteration's dynamic size (CtlIteration).
	Size   int
	Reason RevokeReason // CtlRevoke and CtlReuseExit only
	// BufferedInsts is the controller's cumulative buffered-instruction
	// count at event time, letting an observer compute per-session deltas.
	BufferedInsts uint64
}

// Strategy selects the buffering termination policy (paper §2.2.1).
type Strategy uint8

const (
	// StrategyMulti buffers additional loop iterations while the predicted
	// next iteration fits in the free entries (the paper's choice: it
	// unrolls the loop into the queue for more ILP).
	StrategyMulti Strategy = iota
	// StrategySingle buffers exactly one iteration and promotes
	// immediately (simpler, gates the front end sooner).
	StrategySingle
)

// Config parameterizes the reuse mechanism.
type Config struct {
	// Enabled turns the whole mechanism on. When false the controller is
	// inert and the queue behaves conventionally (the baseline).
	Enabled bool
	// IQSize bounds the static loop size considered capturable.
	IQSize int
	// NBLTSize is the number of non-bufferable loop table entries
	// (paper: 8; 0 disables the table).
	NBLTSize int
	Strategy Strategy
}

// Stats counts controller events.
type Stats struct {
	Detections         uint64 // capturable loops seen at dispatch
	NBLTFiltered       uint64 // detections suppressed by the NBLT
	Bufferings         uint64 // Loop Buffering entered
	IterationsBuffered uint64
	BufferedInsts      uint64
	Promotions         uint64 // Code Reuse entered
	ReuseRenames       uint64 // instances supplied by the reuse pointer
	ReuseExits         uint64
	Revokes            uint64
	RevokesInner       uint64 // inner loop detected (paper Figure 4)
	RevokesExit        uint64 // execution left the loop during buffering
	RevokesFull        uint64 // queue filled before the loop end was met
	RevokesRecovery    uint64 // branch misprediction during buffering
	RevokesForced      uint64 // external fault injection (chaos testing)
}

// Controller implements the loop detector and state machine. The pipeline
// drives it with dispatch-order events; detection therefore happens when the
// loop-ending instruction reaches rename, one stage after the paper's
// decode-stage detector, which shifts timing by a cycle without changing
// behaviour (dispatch is in order).
type Controller struct {
	//reuse:transient configuration; fixed at construction and fingerprinted by the snapshot layer's ConfigHash
	cfg Config
	//reuse:transient back-reference to the managed queue, wired at construction; the queue restores through its own pair
	q    *Queue
	nblt *NBLT

	state    State
	loopHead uint32
	loopTail uint32
	// callDepth tracks procedure-call nesting inside the loop being
	// buffered, so that callee instructions (outside [head,tail]) are
	// buffered rather than treated as a loop exit (paper §2.2.2).
	callDepth     int
	iterCount     int // instructions buffered in the current iteration
	lastIterSize  int // size of the last complete iteration (the counter)
	firstIterDone bool
	reuseOrd      int    // reuse pointer, as an ordinal over classified entries
	wraps         uint64 // reuse-pointer wrap-arounds (see Wraps)

	//reuse:transient scratch reused by ReusableEntries; never live across a cycle boundary
	reusable []int // scratch for ReusableEntries

	// Hook, when non-nil, observes state transitions, buffered iterations
	// and NBLT activity (the telemetry tracer's tap). Calls are synchronous
	// and must not re-enter the controller.
	//reuse:nilguard
	//reuse:transient observer hook; the host re-attaches it after a restore
	Hook func(CtlEvent)

	S Stats
}

// NewController creates a controller managing q.
func NewController(cfg Config, q *Queue) *Controller {
	if cfg.IQSize == 0 {
		cfg.IQSize = q.Size()
	}
	return &Controller{cfg: cfg, q: q, nblt: NewNBLT(cfg.NBLTSize)}
}

// State returns the current operating mode.
func (c *Controller) State() State { return c.state }

// GateActive reports whether the pipeline front-end is gated.
func (c *Controller) GateActive() bool { return c.state == Reuse }

// NBLT exposes the table for statistics.
func (c *Controller) NBLT() *NBLT { return c.nblt }

// LoopBounds returns the current loop's head and tail addresses (valid
// during Buffering and Reuse).
func (c *Controller) LoopBounds() (head, tail uint32) { return c.loopHead, c.loopTail }

// DispatchInfo tells the pipeline how to dispatch one front-end instruction.
type DispatchInfo struct {
	// Classify: set the entry's classification bit and record its LRL
	// information and static prediction.
	Classify bool
	// Promote: the queue switched to Code Reuse after this instruction;
	// the pipeline must gate the front end and flush fetched-but-not-
	// dispatched instructions (they are re-supplied by the reuse pointer).
	Promote bool
}

// OnDispatch processes one instruction leaving rename on the front-end path,
// with the front end's dynamic prediction for control instructions.
func (c *Controller) OnDispatch(pc uint32, in isa.Inst, predTaken bool, predTarget uint32) DispatchInfo {
	if !c.cfg.Enabled {
		return DispatchInfo{}
	}
	switch c.state {
	case Normal:
		c.maybeDetect(pc, in, predTaken)
		return DispatchInfo{}
	case Reuse:
		// The front end is gated; nothing should arrive here.
		return DispatchInfo{}
	case Buffering:
		// Handled below: the buffering path is the rest of this function.
	}

	// Buffering state.
	inLoop := pc >= c.loopHead && pc <= c.loopTail
	if c.callDepth == 0 && !inLoop {
		// Execution exited the loop during buffering.
		c.revoke(ReasonExit, true)
		c.maybeDetect(pc, in, predTaken)
		return DispatchInfo{}
	}
	if c.callDepth == 0 && pc != c.loopTail && c.isLoopBranch(pc, in, predTaken) {
		// An inner loop ends here: the loop being buffered is an outer
		// loop and cannot be captured (paper Figure 4).
		c.revoke(ReasonInner, true)
		c.maybeDetect(pc, in, predTaken)
		return DispatchInfo{}
	}

	// Buffer this instruction.
	c.iterCount++
	c.S.BufferedInsts++
	switch in.Op.Info().Class {
	case isa.ClassCall:
		c.callDepth++
	case isa.ClassReturn:
		if c.callDepth > 0 {
			c.callDepth--
		}
	}
	info := DispatchInfo{Classify: true}
	if pc == c.loopTail && c.callDepth == 0 {
		// End of one buffered iteration.
		c.S.IterationsBuffered++
		c.lastIterSize = c.iterCount
		c.iterCount = 0
		c.firstIterDone = true
		if c.Hook != nil {
			c.Hook(CtlEvent{Kind: CtlIteration, Head: c.loopHead, Tail: c.loopTail,
				Size: c.lastIterSize, BufferedInsts: c.S.BufferedInsts})
		}
		if !predTaken {
			// The loop is predicted to exit; the out-of-range check
			// will revoke on the next dispatch.
			return info
		}
		// OnDispatch runs before the pipeline inserts this loop-ending
		// instruction into the queue, so one free slot is already spoken
		// for when comparing against the next iteration's predicted size.
		promote := c.cfg.Strategy == StrategySingle || c.q.Free()-1 < c.lastIterSize
		if promote {
			c.promote()
			info.Promote = true
		}
	}
	return info
}

// ForceRevoke aborts a buffering in progress, as if the loop had turned out
// to be non-capturable. It exists for fault injection (chaos testing): the
// revoke machinery is exercised on demand without waiting for a workload to
// trigger it naturally. The loop is not registered in the NBLT — the fault
// is transient, not a property of the loop. It reports whether a buffering
// was actually revoked.
func (c *Controller) ForceRevoke() bool {
	if c.state != Buffering {
		return false
	}
	c.revoke(ReasonForced, false)
	return true
}

// ReuseOrd returns the reuse pointer as an ordinal over classified entries
// (meaningful only during Reuse; exposed for invariant checking).
func (c *Controller) ReuseOrd() int { return c.reuseOrd }

// OnIQFull is called when dispatch stalls because the queue is full. During
// buffering this means the loop (possibly including callee code) cannot be
// captured: revoke and register it as non-bufferable (paper §2.2.2).
func (c *Controller) OnIQFull() {
	if c.state == Buffering {
		c.revoke(ReasonFull, true)
	}
}

// OnRecovery is called at the start of branch-misprediction recovery,
// before the pipeline squashes the queue by sequence number. A buffering in
// progress is revoked; Code Reuse is exited (paper §2.5).
func (c *Controller) OnRecovery() {
	switch c.state {
	case Normal:
		// Nothing buffered and nothing to exit.
	case Buffering:
		c.revoke(ReasonRecovery, false)
	case Reuse:
		c.q.Revoke()
		c.state = Normal
		c.S.ReuseExits++
		if c.Hook != nil {
			c.Hook(CtlEvent{Kind: CtlReuseExit, Head: c.loopHead, Tail: c.loopTail,
				Reason: ReasonReuseExit, BufferedInsts: c.S.BufferedInsts})
		}
	}
}

// ReusableEntries returns up to max queue slots starting at the reuse
// pointer whose issue state bits are set, stopping at the first unissued
// buffered entry (the paper's first-m-of-n check). The scan also stops at
// the end of the buffer: the pointer resets to the first buffered
// instruction only after the last one has been reused (paper §2.3), so a
// supply group never spans the wrap. Valid only during Reuse. The returned
// slice is reused across calls.
func (c *Controller) ReusableEntries(max int) []int {
	if c.state != Reuse {
		return nil
	}
	class := c.q.ClassifiedSlots()
	n := len(class)
	if n == 0 {
		return nil
	}
	out := c.reusable[:0]
	for i := 0; i < max && c.reuseOrd+i < n; i++ {
		slot := int(class[c.reuseOrd+i])
		if !c.q.Entry(slot).Issued {
			break
		}
		out = append(out, slot)
	}
	c.reusable = out
	return out
}

// ConsumeReused advances the reuse pointer by k re-renamed entries. When the
// pointer passes the last buffered instruction it wraps back to the first
// (paper §2.3).
func (c *Controller) ConsumeReused(k int) {
	n := c.q.ClassifiedCount()
	if n == 0 || k == 0 {
		return
	}
	c.wraps += uint64((c.reuseOrd + k) / n)
	c.reuseOrd = (c.reuseOrd + k) % n
	c.S.ReuseRenames += uint64(k)
}

// Wraps counts reuse-pointer wrap-arounds — completed Code Reuse loop
// iterations. ReuseOrd alone cannot expose them: a small loop can wrap
// without the ordinal decreasing when several instances are consumed in one
// cycle. Monotonic within a run; deliberately not part of ControllerState
// (observers only ever difference it, so the wire format stays unchanged).
func (c *Controller) Wraps() uint64 { return c.wraps }

// maybeDetect runs the loop detector on one dispatched instruction in
// Normal state.
func (c *Controller) maybeDetect(pc uint32, in isa.Inst, predTaken bool) {
	if !c.isLoopBranch(pc, in, predTaken) {
		return
	}
	head, _ := in.StaticTarget(pc)
	size := int(pc-head)/4 + 1
	if size > c.cfg.IQSize {
		return
	}
	c.S.Detections++
	if c.nblt.Contains(pc) {
		c.S.NBLTFiltered++
		if c.Hook != nil {
			c.Hook(CtlEvent{Kind: CtlNBLTHit, Head: head, Tail: pc, Size: size})
		}
		return
	}
	c.state = Buffering
	c.loopHead, c.loopTail = head, pc
	c.callDepth = 0
	c.iterCount = 0
	c.lastIterSize = size
	c.firstIterDone = false
	c.S.Bufferings++
	if c.Hook != nil {
		c.Hook(CtlEvent{Kind: CtlBuffer, Head: head, Tail: pc, Size: size,
			BufferedInsts: c.S.BufferedInsts})
	}
}

// isLoopBranch reports whether the instruction at pc is a backward
// conditional branch predicted taken, or a backward direct jump — the
// loop-ending patterns the detector checks for (paper §2.1).
func (c *Controller) isLoopBranch(pc uint32, in isa.Inst, predTaken bool) bool {
	switch in.Op.Info().Class {
	case isa.ClassBranch:
		return predTaken && in.BranchTarget(pc) <= pc
	case isa.ClassJump:
		return in.Target <= pc
	}
	return false
}

func (c *Controller) promote() {
	c.state = Reuse
	c.reuseOrd = 0
	c.callDepth = 0
	c.S.Promotions++
	if c.Hook != nil {
		c.Hook(CtlEvent{Kind: CtlPromote, Head: c.loopHead, Tail: c.loopTail,
			BufferedInsts: c.S.BufferedInsts})
	}
}

func (c *Controller) revoke(reason RevokeReason, registerNBLT bool) {
	if registerNBLT {
		c.nblt.Insert(c.loopTail)
		if c.Hook != nil {
			c.Hook(CtlEvent{Kind: CtlNBLTInsert, Head: c.loopHead, Tail: c.loopTail})
		}
	}
	c.q.Revoke()
	c.state = Normal
	c.S.Revokes++
	switch reason {
	case ReasonInner:
		c.S.RevokesInner++
	case ReasonExit:
		c.S.RevokesExit++
	case ReasonFull:
		c.S.RevokesFull++
	case ReasonRecovery:
		c.S.RevokesRecovery++
	case ReasonForced:
		c.S.RevokesForced++
	case ReasonNone, ReasonReuseExit:
		// Never passed to revoke: ReasonNone is the zero value and
		// ReasonReuseExit is emitted directly by OnRecovery when an active
		// Code Reuse ends (no buffering is being abandoned there).
	}
	if c.Hook != nil {
		c.Hook(CtlEvent{Kind: CtlRevoke, Head: c.loopHead, Tail: c.loopTail,
			Reason: reason, BufferedInsts: c.S.BufferedInsts})
	}
}

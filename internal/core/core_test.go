package core

import (
	"testing"
	"testing/quick"

	"reuseiq/internal/isa"
)

func entry(seq uint64, classified, issued bool) Entry {
	return Entry{Seq: seq, Classified: classified, Issued: issued}
}

func TestQueueDispatchAndCapacity(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 4; i++ {
		if _, ok := q.Dispatch(entry(uint64(i+1), false, false)); !ok {
			t.Fatalf("dispatch %d failed", i)
		}
	}
	if _, ok := q.Dispatch(entry(9, false, false)); ok {
		t.Fatal("dispatch into full queue succeeded")
	}
	if q.Free() != 0 || q.Len() != 4 {
		t.Fatalf("free=%d len=%d", q.Free(), q.Len())
	}
}

func TestQueueIssueRemovesConventional(t *testing.T) {
	q := NewQueue(4)
	s1, _ := q.Dispatch(entry(1, false, false))
	s2, _ := q.Dispatch(entry(2, false, false))
	if removed := q.MarkIssued(s1); !removed {
		t.Fatal("conventional entry not removed at issue")
	}
	if q.Len() != 1 || !q.Valid(s2) || q.Entry(s2).Seq != 2 {
		t.Fatalf("removal failed: len=%d", q.Len())
	}
	if q.Valid(s1) {
		t.Fatal("issued entry's slot still valid")
	}
	// The modeled collapsing queue shifted the one younger entry.
	if q.Collapses != 1 {
		t.Errorf("collapses = %d, want 1", q.Collapses)
	}
}

func TestQueueIssueKeepsClassified(t *testing.T) {
	q := NewQueue(4)
	s, _ := q.Dispatch(entry(1, true, false))
	if removed := q.MarkIssued(s); removed {
		t.Fatal("classified entry removed at issue")
	}
	if !q.Entry(s).Issued {
		t.Fatal("issue state bit not set")
	}
}

func TestQueueSquashAfter(t *testing.T) {
	q := NewQueue(8)
	for i := 1; i <= 5; i++ {
		q.Dispatch(entry(uint64(i), false, false))
	}
	q.SquashAfter(2)
	if q.Len() != 2 {
		t.Fatalf("len after squash = %d", q.Len())
	}
	q.Walk(func(i int, e *Entry) {
		if e.Seq > 2 {
			t.Errorf("entry seq %d survived squash", e.Seq)
		}
	})
}

func TestQueueRevoke(t *testing.T) {
	q := NewQueue(8)
	q.Dispatch(entry(1, false, false)) // conventional, stays
	q.Dispatch(entry(2, true, true))   // classified+issued: removed
	q.Dispatch(entry(3, true, false))  // classified live: declassified
	q.Revoke()
	if q.Len() != 2 {
		t.Fatalf("len after revoke = %d", q.Len())
	}
	var seqs []uint64
	q.Walk(func(i int, e *Entry) {
		if e.Classified {
			t.Errorf("seq %d still classified after revoke", e.Seq)
		}
		seqs = append(seqs, e.Seq)
	})
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
		t.Errorf("wrong survivors after revoke: %v", seqs)
	}
}

func TestQueuePartialUpdate(t *testing.T) {
	q := NewQueue(4)
	e := entry(5, true, true)
	e.Inst = isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}
	e.StaticTaken = true
	e.StaticTarget = 0x400100
	slot, _ := q.Dispatch(e)
	q.PartialUpdate(slot, 9, 3, -1, [2]int{7, 0}, [2]bool{}, 8)
	got := q.Entry(slot)
	if got.Seq != 9 || got.ROBSlot != 3 || got.DestPhys != 8 || got.Issued {
		t.Errorf("partial update result: %+v", got)
	}
	if !got.Classified || !got.StaticTaken || got.StaticTarget != 0x400100 {
		t.Error("partial update must preserve buffered information")
	}
	if q.PartialUpdates != 1 {
		t.Errorf("PartialUpdates = %d", q.PartialUpdates)
	}
}

func TestQueueClassifiedSlots(t *testing.T) {
	q := NewQueue(8)
	q.Dispatch(entry(1, false, false))
	s2, _ := q.Dispatch(entry(2, true, false))
	q.Dispatch(entry(3, false, false))
	s4, _ := q.Dispatch(entry(4, true, false))
	idx := q.ClassifiedSlots()
	if len(idx) != 2 || int(idx[0]) != s2 || int(idx[1]) != s4 {
		t.Errorf("classified slots = %v, want [%d %d]", idx, s2, s4)
	}
	if q.ClassifiedCount() != 2 {
		t.Errorf("count = %d", q.ClassifiedCount())
	}
}

func TestNBLTBasics(t *testing.T) {
	n := NewNBLT(2)
	if n.Contains(0x100) {
		t.Fatal("empty table hit")
	}
	n.Insert(0x100)
	if !n.Contains(0x100) {
		t.Fatal("inserted address missing")
	}
	n.Insert(0x200)
	n.Insert(0x300) // evicts 0x100 (FIFO)
	if n.Contains(0x100) {
		t.Error("FIFO eviction failed")
	}
	if !n.Contains(0x200) || !n.Contains(0x300) {
		t.Error("recent entries missing")
	}
}

func TestNBLTDuplicateInsert(t *testing.T) {
	n := NewNBLT(2)
	n.Insert(0x100)
	n.Insert(0x100)
	n.Insert(0x200)
	// A duplicate insert must not consume a slot.
	if !n.Contains(0x100) || !n.Contains(0x200) {
		t.Error("duplicate insert consumed a slot")
	}
	if n.Inserts != 2 {
		t.Errorf("inserts = %d, want 2", n.Inserts)
	}
}

func TestNBLTZeroSized(t *testing.T) {
	n := NewNBLT(0)
	n.Insert(0x100) // must not panic
	if n.Contains(0x100) {
		t.Error("zero-sized table stored something")
	}
}

// NBLT property: after inserting k distinct addresses into a table of size s,
// the most recent min(k, s) are present.
func TestNBLTFIFOProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		n := NewNBLT(8)
		seen := map[uint32]bool{}
		var order []uint32
		for _, a := range addrs {
			a |= 4 // nonzero, aligned-ish
			if !seen[a] {
				seen[a] = true
				order = append(order, a)
			}
			n.Insert(a)
		}
		start := 0
		if len(order) > 8 {
			start = len(order) - 8
		}
		for _, a := range order[start:] {
			if !n.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- controller state machine tests -------------------------------------

// branchAt builds a conditional backward branch at pc targeting head.
func branchAt(pc, head uint32) isa.Inst {
	off := (int32(head) - int32(pc) - 4) / 4
	return isa.Inst{Op: isa.OpBNE, Rs: 2, Rt: 0, Imm: off}
}

const base = 0x0040_0000

// feedLoop dispatches n instructions of a loop body [head..tail] ending with
// the backward branch, telling the controller the branch is predicted taken.
func feedLoop(c *Controller, head, tail uint32) DispatchInfo {
	var last DispatchInfo
	for pc := head; pc <= tail; pc += 4 {
		in := isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}
		taken := false
		var tgt uint32
		if pc == tail {
			in = branchAt(pc, head)
			taken = true
			tgt = head
		}
		last = c.OnDispatch(pc, in, taken, tgt)
		if last.Promote {
			return last
		}
	}
	return last
}

func newCtl(iqSize, nblt int) (*Controller, *Queue) {
	q := NewQueue(iqSize)
	c := NewController(Config{Enabled: true, NBLTSize: nblt}, q)
	return c, q
}

func TestControllerDetectsLoop(t *testing.T) {
	c, _ := newCtl(32, 8)
	// First encounter of the backward branch (end of iteration 1).
	info := c.OnDispatch(base+4*7, branchAt(base+4*7, base), true, base)
	if info.Classify {
		t.Error("detecting branch itself must not be classified")
	}
	if c.State() != Buffering {
		t.Fatalf("state = %v, want buffering", c.State())
	}
	head, tail := c.LoopBounds()
	if head != base || tail != base+4*7 {
		t.Errorf("bounds = 0x%x..0x%x", head, tail)
	}
	if c.S.Detections != 1 || c.S.Bufferings != 1 {
		t.Errorf("stats: %+v", c.S)
	}
}

func TestControllerIgnoresOversizedLoop(t *testing.T) {
	c, _ := newCtl(8, 8)
	pc := uint32(base + 4*100) // distance 101 > 8
	c.OnDispatch(pc, branchAt(pc, base), true, base)
	if c.State() != Normal {
		t.Fatal("oversized loop entered buffering")
	}
	if c.S.Detections != 0 {
		t.Error("oversized loop counted as detection")
	}
}

func TestControllerIgnoresNotTakenBranch(t *testing.T) {
	c, _ := newCtl(32, 8)
	pc := uint32(base + 4*7)
	c.OnDispatch(pc, branchAt(pc, base), false, 0)
	if c.State() != Normal {
		t.Fatal("predicted-not-taken branch started buffering")
	}
}

func TestControllerDetectsBackwardJump(t *testing.T) {
	c, _ := newCtl(32, 8)
	pc := uint32(base + 4*5)
	c.OnDispatch(pc, isa.Inst{Op: isa.OpJ, Target: base}, true, base)
	if c.State() != Buffering {
		t.Fatal("backward jump not detected as loop")
	}
}

func TestControllerBuffersAndPromotes(t *testing.T) {
	c, q := newCtl(16, 8)
	head := uint32(base)
	tail := uint32(base + 4*4) // 5-instruction loop
	c.OnDispatch(tail, branchAt(tail, head), true, head)

	// Buffer iterations; the queue mirrors the dispatches.
	promoted := false
	for iter := 0; iter < 5 && !promoted; iter++ {
		for pc := head; pc <= tail; pc += 4 {
			in := isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}
			taken := false
			var tgt uint32
			if pc == tail {
				in = branchAt(pc, head)
				taken = true
				tgt = head
			}
			info := c.OnDispatch(pc, in, taken, tgt)
			if !info.Classify {
				t.Fatalf("iter %d pc 0x%x not classified", iter, pc)
			}
			q.Dispatch(Entry{Seq: uint64(q.Len() + 1), PC: pc, Inst: in,
				Classified: info.Classify, StaticTaken: taken, StaticTarget: tgt})
			if info.Promote {
				promoted = true
				break
			}
		}
	}
	if !promoted {
		t.Fatal("never promoted")
	}
	if c.State() != Reuse || !c.GateActive() {
		t.Fatalf("state = %v", c.State())
	}
	// 16-entry queue, 5-instruction body: at the 3rd boundary 15 entries
	// are used and the next iteration does not fit.
	if got := q.ClassifiedCount(); got != 15 {
		t.Errorf("buffered %d instructions, want 15", got)
	}
	if c.S.IterationsBuffered != 3 {
		t.Errorf("iterations = %d, want 3", c.S.IterationsBuffered)
	}
}

func TestControllerReusePointerWraps(t *testing.T) {
	c, q := newCtl(16, 8)
	head := uint32(base)
	tail := uint32(base + 4*4)
	c.OnDispatch(tail, branchAt(tail, head), true, head)
	seq := uint64(0)
	for c.State() == Buffering {
		for pc := head; pc <= tail; pc += 4 {
			in := isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}
			taken := pc == tail
			info := c.OnDispatch(pc, in, taken, head)
			seq++
			q.Dispatch(Entry{Seq: seq, PC: pc, Inst: in, Classified: info.Classify})
			if info.Promote {
				break
			}
		}
	}
	// Nothing issued yet: supply must be empty.
	if got := c.ReusableEntries(4); len(got) != 0 {
		t.Fatalf("unissued entries supplied: %v", got)
	}
	// Issue everything; supply up to width, in order, wrapping.
	q.Walk(func(slot int, e *Entry) {
		if e.Classified {
			q.MarkIssued(slot)
		}
	})
	first := append([]int(nil), c.ReusableEntries(4)...)
	if len(first) != 4 {
		t.Fatalf("supply = %v", first)
	}
	if first[0] != int(q.ClassifiedSlots()[0]) {
		t.Error("reuse pointer does not start at the first buffered entry")
	}
	c.ConsumeReused(4)
	// Consume all 15 and confirm wraparound to the start.
	c.ConsumeReused(11)
	again := c.ReusableEntries(1)
	if len(again) != 1 || again[0] != first[0] {
		t.Errorf("pointer did not wrap: %v vs %v", again, first)
	}
}

func TestControllerInnerLoopRevokes(t *testing.T) {
	c, q := newCtl(64, 8)
	outerHead := uint32(base)
	outerTail := uint32(base + 4*20)
	innerTail := uint32(base + 4*10)
	innerHead := uint32(base + 4*6)
	// Outer loop detected first.
	c.OnDispatch(outerTail, branchAt(outerTail, outerHead), true, outerHead)
	if c.State() != Buffering {
		t.Fatal("outer not buffering")
	}
	// While buffering, the inner loop's backward branch shows up.
	for pc := outerHead; pc < innerTail; pc += 4 {
		info := c.OnDispatch(pc, isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}, false, 0)
		q.Dispatch(Entry{Seq: uint64(pc), PC: pc, Classified: info.Classify})
	}
	c.OnDispatch(innerTail, branchAt(innerTail, innerHead), true, innerHead)
	if c.S.RevokesInner != 1 {
		t.Fatalf("inner-loop revoke missing: %+v", c.S)
	}
	// The outer loop is now registered non-bufferable; the inner loop
	// detection proceeds immediately.
	if !c.NBLT().Contains(outerTail) {
		t.Error("outer tail not in NBLT")
	}
	if c.State() != Buffering {
		t.Fatal("inner loop not re-detected after revoke")
	}
	if h, tl := c.LoopBounds(); h != innerHead || tl != innerTail {
		t.Errorf("bounds now 0x%x..0x%x, want inner loop", h, tl)
	}
	// A later outer-loop detection must be filtered by the NBLT.
	c.OnRecovery() // leave buffering
	c.OnDispatch(outerTail, branchAt(outerTail, outerHead), true, outerHead)
	if c.State() != Normal || c.S.NBLTFiltered != 1 {
		t.Errorf("NBLT did not filter: state=%v stats=%+v", c.State(), c.S)
	}
}

func TestControllerExitDuringBufferingRevokes(t *testing.T) {
	c, q := newCtl(32, 8)
	head := uint32(base)
	tail := uint32(base + 4*4)
	c.OnDispatch(tail, branchAt(tail, head), true, head)
	info := c.OnDispatch(head, isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}, false, 0)
	q.Dispatch(Entry{Seq: 1, Classified: info.Classify})
	// Execution leaves the loop (e.g. an early exit path).
	c.OnDispatch(tail+8, isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}, false, 0)
	if c.State() != Normal || c.S.RevokesExit != 1 {
		t.Fatalf("exit revoke missing: state=%v %+v", c.State(), c.S)
	}
	if !c.NBLT().Contains(tail) {
		t.Error("exited loop not registered in NBLT")
	}
	if q.ClassifiedCount() != 0 {
		t.Error("classification bits survived revoke")
	}
}

func TestControllerCallDepthAllowsExcursion(t *testing.T) {
	c, _ := newCtl(64, 8)
	head := uint32(base)
	tail := uint32(base + 4*6)
	callee := uint32(base + 4*50) // outside the loop bounds
	c.OnDispatch(tail, branchAt(tail, head), true, head)
	// jal inside the loop.
	c.OnDispatch(head, isa.Inst{Op: isa.OpJAL, Target: callee}, true, callee)
	if c.State() != Buffering {
		t.Fatal("call revoked buffering")
	}
	// Callee instructions are outside [head, tail] but must be buffered.
	info := c.OnDispatch(callee, isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}, false, 0)
	if !info.Classify || c.State() != Buffering {
		t.Fatal("callee instruction not buffered")
	}
	// Return re-enters the loop.
	c.OnDispatch(callee+4, isa.Inst{Op: isa.OpJR, Rs: isa.RegRA}, true, head+4)
	info = c.OnDispatch(head+4, isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}, false, 0)
	if !info.Classify || c.State() != Buffering {
		t.Fatal("loop body after return not buffered")
	}
}

func TestControllerIQFullDuringBuffering(t *testing.T) {
	c, _ := newCtl(8, 8)
	tail := uint32(base + 4*6)
	c.OnDispatch(tail, branchAt(tail, base), true, base)
	c.OnIQFull()
	if c.State() != Normal || c.S.RevokesFull != 1 {
		t.Fatalf("full revoke missing: %v %+v", c.State(), c.S)
	}
	if !c.NBLT().Contains(tail) {
		t.Error("overflowing loop not in NBLT")
	}
	// Outside buffering, OnIQFull is a no-op.
	c.OnIQFull()
	if c.S.RevokesFull != 1 {
		t.Error("spurious revoke outside buffering")
	}
}

func TestControllerRecoveryDuringBuffering(t *testing.T) {
	c, _ := newCtl(32, 8)
	tail := uint32(base + 4*4)
	c.OnDispatch(tail, branchAt(tail, base), true, base)
	c.OnRecovery()
	if c.State() != Normal || c.S.RevokesRecovery != 1 {
		t.Fatalf("recovery revoke missing: %v %+v", c.State(), c.S)
	}
	// Mispredict revokes do not register in the NBLT (paper §2.5).
	if c.NBLT().Contains(tail) {
		t.Error("recovery revoke must not insert into NBLT")
	}
}

func TestControllerDisabled(t *testing.T) {
	q := NewQueue(16)
	c := NewController(Config{Enabled: false}, q)
	tail := uint32(base + 4*4)
	info := c.OnDispatch(tail, branchAt(tail, base), true, base)
	if info.Classify || c.State() != Normal || c.S.Detections != 0 {
		t.Error("disabled controller reacted to a loop")
	}
}

func TestControllerSingleIterationStrategy(t *testing.T) {
	q := NewQueue(64)
	c := NewController(Config{Enabled: true, NBLTSize: 8, Strategy: StrategySingle}, q)
	head := uint32(base)
	tail := uint32(base + 4*4)
	c.OnDispatch(tail, branchAt(tail, head), true, head)
	info := feedLoop(c, head, tail)
	if !info.Promote {
		t.Fatal("single-iteration strategy did not promote after one iteration")
	}
	if c.S.IterationsBuffered != 1 {
		t.Errorf("iterations buffered = %d", c.S.IterationsBuffered)
	}
}

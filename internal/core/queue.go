// Package core implements the paper's contribution: an issue queue that can
// detect, buffer and reuse the instructions of tight loops so that the
// pipeline front-end (instruction cache, branch predictor, fetch and decode
// logic) can be gated while the queue supplies instructions by itself.
//
// The package provides:
//
//   - Queue: a collapsing issue queue whose entries carry the paper's two
//     extra bits (classification bit, issue state bit) and the logical
//     register list (LRL) contents needed to re-rename buffered entries.
//   - NBLT: the non-bufferable loop table, a small FIFO CAM of loop-ending
//     addresses that prevents buffering thrash (paper §2.2.3).
//   - Controller: the loop detector and the Normal / Loop Buffering /
//     Code Reuse state machine (paper Figure 2), driven by pipeline events.
package core

import (
	"fmt"

	"reuseiq/internal/isa"
)

// Entry is one issue queue slot. The first group of fields describes the
// current dynamic instance occupying the slot; the second group is the
// buffered (reusable) information recorded while the loop was captured.
type Entry struct {
	// Current instance.
	Seq      uint64
	PC       uint32
	Inst     isa.Inst
	ROBSlot  int
	LSQSlot  int // -1 when not a memory operation
	NumSrc   int
	SrcPhys  [2]int
	SrcKind  [2]isa.RegKind
	HasDest  bool
	DestPhys int
	DestKind isa.RegKind

	// Issued is the paper's issue state bit: the buffered instruction has
	// been issued and may be reused (re-renamed) by the reuse pointer.
	Issued bool
	// Classified is the paper's classification bit: the instruction
	// belongs to a buffered loop and must not be removed at issue.
	Classified bool

	// Recorded static prediction for control instructions: the dynamic
	// prediction observed during Loop Buffering becomes the static
	// prediction used during Code Reuse (paper §2.3).
	StaticTaken  bool
	StaticTarget uint32
}

// Queue is a collapsing issue queue: entries sit in program order; removing
// an issued entry shifts younger entries down. Buffered (classified) entries
// survive issue and are updated in place when reused.
type Queue struct {
	entries []Entry
	size    int

	// Activity counters for the power model.
	Dispatches     uint64 // full entry writes (front-end dispatch path)
	PartialUpdates uint64 // register-info + ROB-pointer updates (reuse path)
	IssueReads     uint64 // payload reads at issue
	Removals       uint64
	Collapses      uint64 // entry positions shifted by collapsing
	SelectScans    uint64 // entries examined by the select logic
}

// NewQueue creates an issue queue with the given capacity.
func NewQueue(size int) *Queue {
	if size <= 0 {
		panic(fmt.Sprintf("core: queue size %d", size))
	}
	return &Queue{entries: make([]Entry, 0, size), size: size}
}

// Size and Len report capacity and occupancy; Free the open slots.
func (q *Queue) Size() int { return q.size }
func (q *Queue) Len() int  { return len(q.entries) }
func (q *Queue) Free() int { return q.size - len(q.entries) }

// Entry returns the entry at position i.
func (q *Queue) Entry(i int) *Entry { return &q.entries[i] }

// Dispatch appends a new entry in program order.
func (q *Queue) Dispatch(e Entry) bool {
	if q.Free() == 0 {
		return false
	}
	q.entries = append(q.entries, e)
	q.Dispatches++
	return true
}

// MarkIssued records that the entry at position i has been selected. A
// conventional entry is removed (and the queue collapses); a classified
// entry stays, with its issue state bit set. It returns whether the entry
// was removed (so callers iterating by position can adjust).
func (q *Queue) MarkIssued(i int) bool {
	q.IssueReads++
	if q.entries[i].Classified {
		q.entries[i].Issued = true
		return false
	}
	q.removeAt(i)
	return true
}

func (q *Queue) removeAt(i int) {
	q.Removals++
	q.Collapses += uint64(len(q.entries) - i - 1)
	q.entries = append(q.entries[:i], q.entries[i+1:]...)
}

// SquashAfter removes all entries with Seq > seq.
func (q *Queue) SquashAfter(seq uint64) {
	kept := q.entries[:0]
	for _, e := range q.entries {
		if e.Seq <= seq {
			kept = append(kept, e)
		}
	}
	q.entries = kept
}

// Revoke clears the buffering state (paper §2.5): classified entries that
// already issued are removed immediately; the classification bits of the
// rest are cleared, turning them back into conventional entries.
func (q *Queue) Revoke() {
	kept := q.entries[:0]
	for _, e := range q.entries {
		if e.Classified && e.Issued {
			q.Removals++
			continue
		}
		e.Classified = false
		kept = append(kept, e)
	}
	q.entries = kept
}

// ClassifiedIndices returns the positions of classified entries in buffered
// program order.
func (q *Queue) ClassifiedIndices() []int {
	var idx []int
	for i := range q.entries {
		if q.entries[i].Classified {
			idx = append(idx, i)
		}
	}
	return idx
}

// ClassifiedCount returns the number of buffered entries.
func (q *Queue) ClassifiedCount() int {
	n := 0
	for i := range q.entries {
		if q.entries[i].Classified {
			n++
		}
	}
	return n
}

// PartialUpdate rewires the entry at position i to a new dynamic instance
// during Code Reuse. Only register information and the ROB/LSQ pointers
// change (the paper's reduced-activity update); opcode, immediates and the
// recorded static prediction stay.
func (q *Queue) PartialUpdate(i int, seq uint64, robSlot, lsqSlot int, srcPhys [2]int, destPhys int) {
	e := &q.entries[i]
	e.Seq = seq
	e.ROBSlot = robSlot
	e.LSQSlot = lsqSlot
	e.SrcPhys = srcPhys
	e.DestPhys = destPhys
	e.Issued = false
	q.PartialUpdates++
}

// Walk calls f for each entry in position order.
func (q *Queue) Walk(f func(i int, e *Entry)) {
	for i := range q.entries {
		f(i, &q.entries[i])
	}
}

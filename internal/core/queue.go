// Package core implements the paper's contribution: an issue queue that can
// detect, buffer and reuse the instructions of tight loops so that the
// pipeline front-end (instruction cache, branch predictor, fetch and decode
// logic) can be gated while the queue supplies instructions by itself.
//
// The package provides:
//
//   - Queue: a reuse-capable issue queue whose entries carry the paper's two
//     extra bits (classification bit, issue state bit) and the logical
//     register list (LRL) contents needed to re-rename buffered entries.
//   - NBLT: the non-bufferable loop table, a small FIFO CAM of loop-ending
//     addresses that prevents buffering thrash (paper §2.2.3).
//   - Controller: the loop detector and the Normal / Loop Buffering /
//     Code Reuse state machine (paper Figure 2), driven by pipeline events.
//
// The Queue models a *collapsing* queue for the power model — the activity
// counters (Removals, Collapses, IssueReads, ...) charge exactly what the
// paper's hardware would do — but is implemented as a fixed-capacity slot
// array with a free list and an intrusive program-order list, so that the
// software cost of a removal is O(1) bookkeeping instead of copying the
// queue tail. Entries are addressed by stable slot ids that never move
// while an instruction is in flight.
//
// The Queue also maintains the simulator's wakeup index: per-physical-
// register waiter lists built at dispatch and torn down at issue, squash and
// revoke, so that a result broadcast (Wake) touches only true dependents and
// the select logic (ReadySlots) never rescans the whole queue. The hardware
// CAM's energy is still charged through WakeupBroadcasts/IssueCycleScans in
// the pipeline; the index only removes the *software* O(entries) scan.
package core

import (
	"fmt"

	"reuseiq/internal/isa"
)

// Entry is one issue queue slot. The first group of fields describes the
// current dynamic instance occupying the slot; the second group is the
// buffered (reusable) information recorded while the loop was captured.
type Entry struct {
	// Current instance.
	Seq     uint64
	PC      uint32
	Inst    isa.Inst
	ROBSlot int
	LSQSlot int // -1 when not a memory operation
	NumSrc  int
	SrcPhys [2]int
	SrcKind [2]isa.RegKind
	HasDest bool
	//reuse:nodigest physical label, erased by the relabeling; readiness and producers are hashed positionally
	DestPhys int
	DestKind isa.RegKind

	// SrcReady is the per-source readiness snapshot taken at dispatch (or
	// partial update) and kept current by Wake. For a live, unissued entry
	// SrcReady[s] always equals the physical register file's ready bit for
	// SrcPhys[s]: a source can only become ready through a writeback, which
	// the pipeline forwards to the queue via Wake.
	SrcReady [2]bool

	// Issued is the paper's issue state bit: the buffered instruction has
	// been issued and may be reused (re-renamed) by the reuse pointer.
	Issued bool
	// Classified is the paper's classification bit: the instruction
	// belongs to a buffered loop and must not be removed at issue.
	Classified bool

	// Recorded static prediction for control instructions: the dynamic
	// prediction observed during Loop Buffering becomes the static
	// prediction used during Code Reuse (paper §2.3).
	StaticTaken  bool
	StaticTarget uint32
}

// slotMeta is the queue's per-slot bookkeeping, kept out of Entry so the
// architectural payload stays exactly what the hardware entry would hold.
type slotMeta struct {
	next, prev   int32  // program-order list links (-1 = none); next doubles as the free-stack link
	sNext, sPrev int32  // pending-store-address list links (-1 = none)
	orderKey     uint64 // monotonic insertion stamp; compares as program-order position
	readyPos     int32  // index into readySlots, -1 when not a candidate
	pending      int8   // number of unready sources
	valid        bool
	inStore      bool
}

// Queue is the reuse-capable issue queue. Entries sit in program order on an
// intrusive list over stable slots; removing an issued entry unlinks it in
// O(1) while the Collapses counter still charges the entry shifts the
// modeled collapsing hardware would perform. Buffered (classified) entries
// survive issue and are updated in place when reused.
type Queue struct {
	size  int
	count int

	slots []Entry
	st    []slotMeta

	head, tail int32 // program-order list bounds (-1 when empty)
	freeTop    int32 // free-slot stack head (-1 when full)
	orderGen   uint64

	// Classified-slot cache: slots of classified entries in program order,
	// rebuilt lazily after squashes/revokes invalidate it.
	classified int
	classSlots []int32
	classDirty bool

	// readySlots is the select logic's candidate set: valid, unissued
	// entries with every source ready. Unordered; the pipeline sorts by
	// sequence number for oldest-first select.
	readySlots []int32

	// Wakeup index: one doubly-linked waiter list per physical register,
	// with intrusive nodes 2*slot+src. Head slices grow on demand to the
	// highest registered physical register number.
	wNext, wPrev    []int32
	wReg            []int32
	intWait, fpWait []int32

	// Pending-store-address list (program order): unissued store entries
	// whose LSQ address has not been published yet.
	storeHead, storeTail int32

	// Activity counters for the power model.
	Dispatches     uint64 // full entry writes (front-end dispatch path)
	PartialUpdates uint64 // register-info + ROB-pointer updates (reuse path)
	IssueReads     uint64 // payload reads at issue
	Removals       uint64
	Collapses      uint64 // entry positions shifted by collapsing
	SelectScans    uint64 // entries examined by the select logic
}

// NewQueue creates an issue queue with the given capacity.
func NewQueue(size int) *Queue {
	if size <= 0 {
		panic(fmt.Sprintf("core: queue size %d", size))
	}
	q := &Queue{
		size:  size,
		slots: make([]Entry, size),
		st:    make([]slotMeta, size),
		head:  -1, tail: -1,
		storeHead: -1, storeTail: -1,
		wNext: make([]int32, 2*size),
		wPrev: make([]int32, 2*size),
		wReg:  make([]int32, 2*size),
	}
	for i := range q.st {
		q.st[i].next = int32(i + 1)
	}
	q.st[size-1].next = -1
	q.freeTop = 0
	for i := range q.wReg {
		q.wReg[i] = -1
	}
	return q
}

// Size and Len report capacity and occupancy; Free the open slots.
func (q *Queue) Size() int { return q.size }
func (q *Queue) Len() int  { return q.count }
func (q *Queue) Free() int { return q.size - q.count }

// Entry returns the entry in the given slot. Slots are stable: they never
// move while the entry is in flight. Callers must not flip the Issued or
// Classified bits directly (use MarkIssued/Revoke), or the queue's candidate
// bookkeeping goes stale.
func (q *Queue) Entry(slot int) *Entry { return &q.slots[slot] }

// Valid reports whether slot currently holds a live entry.
func (q *Queue) Valid(slot int) bool { return q.st[slot].valid }

// Dispatch appends a new entry in program order and returns its slot. The
// entry's NumSrc/SrcKind/SrcPhys/SrcReady fields seed the wakeup index: each
// unready source is registered on its physical register's waiter list.
//
//reuse:hotpath
func (q *Queue) Dispatch(e Entry) (int, bool) {
	if q.count == q.size {
		return -1, false
	}
	slot := q.freeTop
	q.freeTop = q.st[slot].next
	q.slots[slot] = e
	q.orderGen++
	q.st[slot] = slotMeta{
		next: -1, prev: q.tail,
		sNext: -1, sPrev: -1,
		orderKey: q.orderGen,
		readyPos: -1,
		valid:    true,
	}
	if q.tail >= 0 {
		q.st[q.tail].next = slot
	} else {
		q.head = slot
	}
	q.tail = slot
	q.count++
	q.Dispatches++

	en := &q.slots[slot]
	if en.Classified {
		q.classified++
		if !q.classDirty {
			q.classSlots = append(q.classSlots, slot)
		}
	}
	q.indexEntry(slot, en)
	return int(slot), true
}

// indexEntry (re)builds the wakeup and pending-store state of a freshly
// written slot.
func (q *Queue) indexEntry(slot int32, en *Entry) {
	pending := int8(0)
	for s := 0; s < en.NumSrc; s++ {
		if !en.SrcReady[s] {
			pending++
			q.registerWaiter(slot, int32(s), en.SrcKind[s], en.SrcPhys[s])
		}
	}
	q.st[slot].pending = pending
	if pending == 0 && !en.Issued {
		q.addReady(slot)
	}
	if en.LSQSlot >= 0 && !en.Issued && en.Inst.Op.Info().Class == isa.ClassStore {
		q.addStore(slot)
	}
}

// MarkIssued records that the entry in slot has been selected. A
// conventional entry is removed (the modeled queue collapses); a classified
// entry stays, with its issue state bit set. It returns whether the entry
// was removed.
//
//reuse:hotpath
func (q *Queue) MarkIssued(slot int) bool {
	q.IssueReads++
	e := &q.slots[slot]
	if e.Classified {
		e.Issued = true
		q.removeReady(int32(slot))
		q.removeStore(int32(slot))
		return false
	}
	q.Removals++
	q.Collapses += uint64(q.count - 1 - q.olderCount(int32(slot)))
	q.removeSlot(int32(slot))
	return true
}

// olderCount returns the number of live entries ahead of slot in program
// order — the removed entry's position in the modeled collapsing queue.
// Issue removes oldest-first, so the walk is almost always empty.
func (q *Queue) olderCount(slot int32) int {
	n := 0
	for p := q.st[slot].prev; p >= 0; p = q.st[p].prev {
		n++
	}
	return n
}

// SquashAfter removes all entries with Seq > seq.
//
//reuse:hotpath
func (q *Queue) SquashAfter(seq uint64) {
	for slot := q.tail; slot >= 0; {
		p := q.st[slot].prev
		if q.slots[slot].Seq > seq {
			q.removeSlot(slot)
		}
		slot = p
	}
}

// Revoke clears the buffering state (paper §2.5): classified entries that
// already issued are removed immediately; the classification bits of the
// rest are cleared, turning them back into conventional entries.
//
//reuse:hotpath
func (q *Queue) Revoke() {
	for slot := q.head; slot >= 0; {
		n := q.st[slot].next
		e := &q.slots[slot]
		if e.Classified {
			if e.Issued {
				q.Removals++
				q.removeSlot(slot)
			} else {
				e.Classified = false
			}
		}
		slot = n
	}
	q.classified = 0
	q.classSlots = q.classSlots[:0]
	q.classDirty = false
}

// ClassifiedSlots returns the slots of classified entries in buffered
// program order. The returned slice is reused across calls; it is valid
// until the next queue mutation.
func (q *Queue) ClassifiedSlots() []int32 {
	if q.classDirty {
		q.classSlots = q.classSlots[:0]
		for slot := q.head; slot >= 0; slot = q.st[slot].next {
			if q.slots[slot].Classified {
				q.classSlots = append(q.classSlots, slot)
			}
		}
		q.classDirty = false
	}
	return q.classSlots
}

// ClassifiedCount returns the number of buffered entries.
func (q *Queue) ClassifiedCount() int { return q.classified }

// PartialUpdate rewires the entry in slot to a new dynamic instance during
// Code Reuse. Only register information and the ROB/LSQ pointers change (the
// paper's reduced-activity update); opcode, immediates and the recorded
// static prediction stay. srcReady is the readiness snapshot of the new
// physical sources, taken by the caller at re-rename time.
//
//reuse:hotpath
func (q *Queue) PartialUpdate(slot int, seq uint64, robSlot, lsqSlot int, srcPhys [2]int, srcReady [2]bool, destPhys int) {
	e := &q.slots[slot]
	// The entry was issued, so it holds no waiters and is not a candidate;
	// the removals below are no-ops then, but keep direct test drivers that
	// update unissued entries from corrupting the index.
	for s := 0; s < e.NumSrc; s++ {
		q.unregisterWaiter(int32(slot), int32(s), e)
	}
	q.removeReady(int32(slot))
	q.removeStore(int32(slot))

	e.Seq = seq
	e.ROBSlot = robSlot
	e.LSQSlot = lsqSlot
	e.SrcPhys = srcPhys
	e.SrcReady = srcReady
	e.DestPhys = destPhys
	e.Issued = false
	q.PartialUpdates++
	q.indexEntry(int32(slot), e)
}

// Walk calls f for each entry in program order, passing its slot. f must
// not remove the visited entry (squash or issue a conventional entry).
func (q *Queue) Walk(f func(slot int, e *Entry)) {
	for slot := q.head; slot >= 0; slot = q.st[slot].next {
		f(int(slot), &q.slots[slot])
	}
}

// ---------------------------------------------------------- wakeup index --

// Wake marks physical register (kind, phys) ready in every waiting entry —
// the software analogue of a result-tag broadcast, but touching only true
// dependents. Entries whose last outstanding source this was become select
// candidates. The pipeline charges the modeled CAM broadcast separately
// (Counters.WakeupBroadcasts); Wake itself is pure bookkeeping.
//
//reuse:hotpath
func (q *Queue) Wake(kind isa.RegKind, phys int) {
	headp := q.waitHeads(kind)
	if phys >= len(*headp) {
		return // no entry ever waited on this register
	}
	nid := (*headp)[phys]
	(*headp)[phys] = -1
	for nid >= 0 {
		next := q.wNext[nid]
		slot, s := nid>>1, nid&1
		q.wReg[nid] = -1
		e := &q.slots[slot]
		e.SrcReady[s] = true
		q.st[slot].pending--
		if q.st[slot].pending == 0 && !e.Issued {
			q.addReady(int32(slot))
		}
		nid = next
	}
}

// ReadySlots returns the current select candidates: slots of valid, unissued
// entries whose sources are all ready. The slice is unordered (the pipeline
// sorts by sequence number) and reused across cycles; callers must not
// retain or mutate it.
//
//reuse:hotpath
func (q *Queue) ReadySlots() []int32 { return q.readySlots }

func (q *Queue) waitHeads(kind isa.RegKind) *[]int32 {
	if kind == isa.KindFP {
		return &q.fpWait
	}
	return &q.intWait
}

func (q *Queue) registerWaiter(slot, s int32, kind isa.RegKind, phys int) {
	headp := q.waitHeads(kind)
	for phys >= len(*headp) {
		*headp = append(*headp, -1)
	}
	nid := slot*2 + s
	q.wReg[nid] = int32(phys)
	q.wPrev[nid] = -1
	q.wNext[nid] = (*headp)[phys]
	if old := (*headp)[phys]; old >= 0 {
		q.wPrev[old] = nid
	}
	(*headp)[phys] = nid
}

func (q *Queue) unregisterWaiter(slot, s int32, e *Entry) {
	nid := slot*2 + s
	reg := q.wReg[nid]
	if reg < 0 {
		return
	}
	if p := q.wPrev[nid]; p >= 0 {
		q.wNext[p] = q.wNext[nid]
	} else {
		(*q.waitHeads(e.SrcKind[s]))[reg] = q.wNext[nid]
	}
	if n := q.wNext[nid]; n >= 0 {
		q.wPrev[n] = q.wPrev[nid]
	}
	q.wReg[nid] = -1
}

func (q *Queue) addReady(slot int32) {
	if q.st[slot].readyPos >= 0 {
		return
	}
	q.st[slot].readyPos = int32(len(q.readySlots))
	q.readySlots = append(q.readySlots, slot)
}

func (q *Queue) removeReady(slot int32) {
	pos := q.st[slot].readyPos
	if pos < 0 {
		return
	}
	last := int32(len(q.readySlots) - 1)
	moved := q.readySlots[last]
	q.readySlots[pos] = moved
	q.st[moved].readyPos = pos
	q.readySlots = q.readySlots[:last]
	q.st[slot].readyPos = -1
}

// --------------------------------------------------- pending-store index --

// ForEachPendingStore visits the unissued store entries whose LSQ address
// has not been published yet, in program order, until f returns false. f may
// resolve the visited slot (StoreResolved) but must not mutate other slots.
//
//reuse:hotpath
func (q *Queue) ForEachPendingStore(f func(slot int) bool) {
	for slot := q.storeHead; slot >= 0; {
		n := q.st[slot].sNext
		if !f(int(slot)) {
			return
		}
		slot = n
	}
}

// StoreResolved removes slot from the pending-store-address list, after the
// pipeline published its address to the LSQ.
func (q *Queue) StoreResolved(slot int) { q.removeStore(int32(slot)) }

// addStore inserts slot into the pending-store list at its program-order
// position. Front-end dispatches always append (orderKey is monotonic);
// reuse-path partial updates of older slots walk back from the tail.
func (q *Queue) addStore(slot int32) {
	m := &q.st[slot]
	if m.inStore {
		return
	}
	m.inStore = true
	after := q.storeTail
	for after >= 0 && q.st[after].orderKey > m.orderKey {
		after = q.st[after].sPrev
	}
	m.sPrev = after
	if after >= 0 {
		m.sNext = q.st[after].sNext
		q.st[after].sNext = slot
	} else {
		m.sNext = q.storeHead
		q.storeHead = slot
	}
	if m.sNext >= 0 {
		q.st[m.sNext].sPrev = slot
	} else {
		q.storeTail = slot
	}
}

func (q *Queue) removeStore(slot int32) {
	m := &q.st[slot]
	if !m.inStore {
		return
	}
	if m.sPrev >= 0 {
		q.st[m.sPrev].sNext = m.sNext
	} else {
		q.storeHead = m.sNext
	}
	if m.sNext >= 0 {
		q.st[m.sNext].sPrev = m.sPrev
	} else {
		q.storeTail = m.sPrev
	}
	m.sNext, m.sPrev = -1, -1
	m.inStore = false
}

// removeSlot tears a live entry out of every index and frees its slot.
func (q *Queue) removeSlot(slot int32) {
	m := &q.st[slot]
	e := &q.slots[slot]
	if m.prev >= 0 {
		q.st[m.prev].next = m.next
	} else {
		q.head = m.next
	}
	if m.next >= 0 {
		q.st[m.next].prev = m.prev
	} else {
		q.tail = m.prev
	}
	for s := 0; s < e.NumSrc; s++ {
		q.unregisterWaiter(slot, int32(s), e)
	}
	q.removeReady(slot)
	q.removeStore(slot)
	if e.Classified {
		q.classified--
		q.classDirty = true
	}
	m.valid = false
	m.next = q.freeTop
	q.freeTop = slot
	q.count--
}

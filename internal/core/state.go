// Snapshot support: exported state images of the issue queue, the NBLT and
// the controller, with validating importers. The images are plain data (no
// pointers into the live structures), so a snapshot taken between cycles
// stays valid while the machine keeps running. Import methods reject any
// structurally inconsistent image with a descriptive error instead of
// panicking later: slot references, ready-list positions and wakeup-index
// links are all bounds-checked and cross-checked before anything is applied.
package core

import (
	"fmt"

	"reuseiq/internal/isa"
)

// SlotMetaState is the exported image of one slot's internal bookkeeping
// (program-order links, pending-store links, ready-list position).
type SlotMetaState struct {
	Next int32
	//reuse:nodigest dual of Next; the digest hashes the forward order chain only
	Prev  int32
	SNext int32
	//reuse:nodigest dual of SNext; the digest hashes the forward store chain only
	SPrev    int32
	OrderKey uint64
	//reuse:nodigest position in ReadySlots, whose order is hashed directly
	ReadyPos int32
	Pending  int8
	//reuse:nodigest derived: the order walk from Head visits exactly the valid slots
	Valid   bool
	InStore bool
}

// QueueState is the complete serializable image of a Queue. Free-stack order
// (threaded through Next of invalid slots), OrderGen and the wakeup index are
// all part of the image: bit-identical continuation requires that a restored
// queue hand out slots and wake waiters in exactly the order the original
// would have.
type QueueState struct {
	Count int
	Slots []Entry
	Meta  []SlotMetaState

	Head int32
	//reuse:nodigest derived: the tail of the order chain hashed from Head
	Tail int32
	//reuse:nodigest free-stack order is a slot-label permutation, erased by the relabeling
	FreeTop  int32
	OrderGen uint64

	Classified int
	ClassSlots []int32
	ClassDirty bool

	ReadySlots []int32

	WNext []int32
	//reuse:nodigest dual of WNext; the digest hashes the forward wakeup chains only
	WPrev []int32
	//reuse:nodigest physical-register label, erased by the relabeling
	WReg            []int32
	IntWait, FPWait []int32

	StoreHead int32
	//reuse:nodigest derived: the tail of the store chain hashed from StoreHead
	StoreTail int32

	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	Dispatches, PartialUpdates, IssueReads, Removals, Collapses, SelectScans uint64
}

// ExportState returns a deep copy of the queue's state.
func (q *Queue) ExportState() QueueState {
	st := QueueState{
		Count:      q.count,
		Slots:      append([]Entry(nil), q.slots...),
		Meta:       make([]SlotMetaState, q.size),
		Head:       q.head,
		Tail:       q.tail,
		FreeTop:    q.freeTop,
		OrderGen:   q.orderGen,
		Classified: q.classified,
		ClassSlots: append([]int32(nil), q.classSlots...),
		ClassDirty: q.classDirty,
		ReadySlots: append([]int32(nil), q.readySlots...),
		WNext:      append([]int32(nil), q.wNext...),
		WPrev:      append([]int32(nil), q.wPrev...),
		WReg:       append([]int32(nil), q.wReg...),
		IntWait:    append([]int32(nil), q.intWait...),
		FPWait:     append([]int32(nil), q.fpWait...),
		StoreHead:  q.storeHead,
		StoreTail:  q.storeTail,

		Dispatches: q.Dispatches, PartialUpdates: q.PartialUpdates,
		IssueReads: q.IssueReads, Removals: q.Removals,
		Collapses: q.Collapses, SelectScans: q.SelectScans,
	}
	for i, m := range q.st {
		st.Meta[i] = SlotMetaState{
			Next: m.next, Prev: m.prev, SNext: m.sNext, SPrev: m.sPrev,
			OrderKey: m.orderKey, ReadyPos: m.readyPos, Pending: m.pending,
			Valid: m.valid, InStore: m.inStore,
		}
	}
	return st
}

// ImportState overwrites the queue with st after validating it against the
// queue's size. The queue must have been built with the same capacity.
func (q *Queue) ImportState(st QueueState) error {
	if err := q.validateState(&st); err != nil {
		return err
	}
	q.count = st.Count
	copy(q.slots, st.Slots)
	for i, m := range st.Meta {
		q.st[i] = slotMeta{
			next: m.Next, prev: m.Prev, sNext: m.SNext, sPrev: m.SPrev,
			orderKey: m.OrderKey, readyPos: m.ReadyPos, pending: m.Pending,
			valid: m.Valid, inStore: m.InStore,
		}
	}
	q.head, q.tail, q.freeTop = st.Head, st.Tail, st.FreeTop
	q.orderGen = st.OrderGen
	q.classified = st.Classified
	q.classSlots = append(q.classSlots[:0], st.ClassSlots...)
	q.classDirty = st.ClassDirty
	q.readySlots = append(q.readySlots[:0], st.ReadySlots...)
	copy(q.wNext, st.WNext)
	copy(q.wPrev, st.WPrev)
	copy(q.wReg, st.WReg)
	q.intWait = append(q.intWait[:0], st.IntWait...)
	q.fpWait = append(q.fpWait[:0], st.FPWait...)
	q.storeHead, q.storeTail = st.StoreHead, st.StoreTail
	q.Dispatches, q.PartialUpdates = st.Dispatches, st.PartialUpdates
	q.IssueReads, q.Removals = st.IssueReads, st.Removals
	q.Collapses, q.SelectScans = st.Collapses, st.SelectScans
	return nil
}

func (q *Queue) validateState(st *QueueState) error {
	size := q.size
	slotRef := func(name string, v int32) error {
		if v < -1 || v >= int32(size) {
			return fmt.Errorf("core: queue state: %s holds slot %d, want [-1,%d)", name, v, size)
		}
		return nil
	}
	if len(st.Slots) != size || len(st.Meta) != size {
		return fmt.Errorf("core: queue state: %d slots / %d meta for queue of size %d",
			len(st.Slots), len(st.Meta), size)
	}
	if n := 2 * size; len(st.WNext) != n || len(st.WPrev) != n || len(st.WReg) != n {
		return fmt.Errorf("core: queue state: wakeup arrays %d/%d/%d, want %d",
			len(st.WNext), len(st.WPrev), len(st.WReg), n)
	}
	if st.Count < 0 || st.Count > size {
		return fmt.Errorf("core: queue state: count %d for size %d", st.Count, size)
	}
	for _, c := range []struct {
		name string
		v    int32
	}{{"head", st.Head}, {"tail", st.Tail}, {"freeTop", st.FreeTop},
		{"storeHead", st.StoreHead}, {"storeTail", st.StoreTail}} {
		if err := slotRef(c.name, c.v); err != nil {
			return err
		}
	}
	valid := 0
	for i, m := range st.Meta {
		for _, c := range []struct {
			name string
			v    int32
		}{{"meta.next", m.Next}, {"meta.prev", m.Prev},
			{"meta.sNext", m.SNext}, {"meta.sPrev", m.SPrev}} {
			if err := slotRef(c.name, c.v); err != nil {
				return fmt.Errorf("slot %d: %w", i, err)
			}
		}
		// ReadyPos is meaningful only while the slot is valid; free slots
		// carry whatever it last held (the zero value on a never-used slot).
		if m.Valid && (m.ReadyPos < -1 || (m.ReadyPos >= 0 && int(m.ReadyPos) >= len(st.ReadySlots))) {
			return fmt.Errorf("core: queue state: slot %d readyPos %d, ready list has %d",
				i, m.ReadyPos, len(st.ReadySlots))
		}
		if m.Pending < 0 || m.Pending > 2 {
			return fmt.Errorf("core: queue state: slot %d pending %d", i, m.Pending)
		}
		if m.Valid {
			valid++
		}
	}
	if valid != st.Count {
		return fmt.Errorf("core: queue state: count %d but %d valid slots", st.Count, valid)
	}
	if st.Classified < 0 || st.Classified > size {
		return fmt.Errorf("core: queue state: classified %d", st.Classified)
	}
	if len(st.ClassSlots) > size || len(st.ReadySlots) > size {
		return fmt.Errorf("core: queue state: classSlots %d / readySlots %d exceed size %d",
			len(st.ClassSlots), len(st.ReadySlots), size)
	}
	for i, s := range st.ClassSlots {
		if s < 0 || s >= int32(size) {
			return fmt.Errorf("core: queue state: classSlots[%d] = %d", i, s)
		}
	}
	for pos, s := range st.ReadySlots {
		if s < 0 || s >= int32(size) {
			return fmt.Errorf("core: queue state: readySlots[%d] = %d", pos, s)
		}
		if !st.Meta[s].Valid {
			return fmt.Errorf("core: queue state: readySlots[%d] = invalid slot %d", pos, s)
		}
		if st.Meta[s].ReadyPos != int32(pos) {
			return fmt.Errorf("core: queue state: readySlots[%d] = slot %d whose readyPos is %d",
				pos, s, st.Meta[s].ReadyPos)
		}
	}
	for i, e := range st.Slots {
		if e.NumSrc < 0 || e.NumSrc > 2 {
			return fmt.Errorf("core: queue state: slot %d numSrc %d", i, e.NumSrc)
		}
		if e.SrcKind[0] > isa.KindFP || e.SrcKind[1] > isa.KindFP || e.DestKind > isa.KindFP {
			return fmt.Errorf("core: queue state: slot %d has invalid register kind", i)
		}
	}
	// The wakeup index: node links stay inside the node array, and a
	// registered node must belong to a valid entry's in-range source whose
	// kind-specific head array covers the register.
	nodeRef := func(name string, v int32) error {
		if v < -1 || v >= int32(2*size) {
			return fmt.Errorf("core: queue state: %s holds node %d, want [-1,%d)", name, v, 2*size)
		}
		return nil
	}
	if len(st.IntWait) > maxWaitHeads || len(st.FPWait) > maxWaitHeads {
		return fmt.Errorf("core: queue state: wait head arrays %d/%d exceed cap %d",
			len(st.IntWait), len(st.FPWait), maxWaitHeads)
	}
	for nid := range st.WReg {
		if err := nodeRef("wNext", st.WNext[nid]); err != nil {
			return err
		}
		if err := nodeRef("wPrev", st.WPrev[nid]); err != nil {
			return err
		}
		reg := st.WReg[nid]
		if reg == -1 {
			continue
		}
		slot, s := nid>>1, nid&1
		if !st.Meta[slot].Valid {
			return fmt.Errorf("core: queue state: node %d registered on invalid slot %d", nid, slot)
		}
		e := &st.Slots[slot]
		if s >= e.NumSrc {
			return fmt.Errorf("core: queue state: node %d registered for source %d of %d", nid, s, e.NumSrc)
		}
		heads := st.IntWait
		if e.SrcKind[s] == isa.KindFP {
			heads = st.FPWait
		}
		if reg < 0 || int(reg) >= len(heads) {
			return fmt.Errorf("core: queue state: node %d waits on register %d, head array has %d",
				nid, reg, len(heads))
		}
	}
	for i, n := range st.IntWait {
		if err := nodeRef(fmt.Sprintf("intWait[%d]", i), n); err != nil {
			return err
		}
	}
	for i, n := range st.FPWait {
		if err := nodeRef(fmt.Sprintf("fpWait[%d]", i), n); err != nil {
			return err
		}
	}
	return nil
}

// maxWaitHeads bounds the wakeup head arrays in an imported image. They grow
// to the highest physical register number ever waited on, which is far below
// this; the cap exists so a corrupt image cannot demand a huge allocation.
const maxWaitHeads = 1 << 20

// NBLTState is the serializable image of an NBLT.
type NBLTState struct {
	Addrs []uint32
	Valid []bool
	Next  int

	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	Lookups, Hits, Inserts uint64
}

// ExportState returns a deep copy of the table's state.
func (n *NBLT) ExportState() NBLTState {
	return NBLTState{
		Addrs:   append([]uint32(nil), n.addrs...),
		Valid:   append([]bool(nil), n.valid...),
		Next:    n.next,
		Lookups: n.Lookups, Hits: n.Hits, Inserts: n.Inserts,
	}
}

// ImportState overwrites the table with st after validating its shape.
func (n *NBLT) ImportState(st NBLTState) error {
	if len(st.Addrs) != len(n.addrs) || len(st.Valid) != len(n.valid) {
		return fmt.Errorf("core: nblt state: %d addrs / %d valid for table of size %d",
			len(st.Addrs), len(st.Valid), len(n.addrs))
	}
	if len(n.addrs) == 0 {
		if st.Next != 0 {
			return fmt.Errorf("core: nblt state: next %d for empty table", st.Next)
		}
	} else if st.Next < 0 || st.Next >= len(n.addrs) {
		return fmt.Errorf("core: nblt state: next %d for table of size %d", st.Next, len(n.addrs))
	}
	copy(n.addrs, st.Addrs)
	copy(n.valid, st.Valid)
	n.next = st.Next
	n.Lookups, n.Hits, n.Inserts = st.Lookups, st.Hits, st.Inserts
	return nil
}

// ControllerState is the serializable image of a Controller (configuration
// excluded: a restored controller is rebuilt from the machine's Config first
// and must match, which the snapshot layer enforces via the config
// fingerprint).
type ControllerState struct {
	State         State
	LoopHead      uint32
	LoopTail      uint32
	CallDepth     int
	IterCount     int
	LastIterSize  int
	FirstIterDone bool
	ReuseOrd      int
	//reuse:nodigest wrap deltas are probed separately by the engine's wrap veto
	Wraps uint64

	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	S    Stats
	NBLT NBLTState
}

// ExportState returns a copy of the controller's state.
func (c *Controller) ExportState() ControllerState {
	return ControllerState{
		State:         c.state,
		LoopHead:      c.loopHead,
		LoopTail:      c.loopTail,
		CallDepth:     c.callDepth,
		IterCount:     c.iterCount,
		LastIterSize:  c.lastIterSize,
		FirstIterDone: c.firstIterDone,
		ReuseOrd:      c.reuseOrd,
		Wraps:         c.wraps,
		S:             c.S,
		NBLT:          c.nblt.ExportState(),
	}
}

// ImportState overwrites the controller with st. The managed queue must
// already hold its restored image: the reuse pointer is validated against the
// queue's classified-entry count.
func (c *Controller) ImportState(st ControllerState) error {
	if st.State > Reuse {
		return fmt.Errorf("core: controller state: invalid state %d", st.State)
	}
	if st.CallDepth < 0 || st.IterCount < 0 || st.LastIterSize < 0 {
		return fmt.Errorf("core: controller state: negative counter (call %d, iter %d, last %d)",
			st.CallDepth, st.IterCount, st.LastIterSize)
	}
	if st.ReuseOrd < 0 || (st.ReuseOrd > 0 && st.ReuseOrd >= c.q.Size()) {
		return fmt.Errorf("core: controller state: reuse pointer %d for queue of size %d",
			st.ReuseOrd, c.q.Size())
	}
	if st.State == Reuse && c.q.ClassifiedCount() > 0 && st.ReuseOrd >= c.q.ClassifiedCount() {
		return fmt.Errorf("core: controller state: reuse pointer %d with %d classified entries",
			st.ReuseOrd, c.q.ClassifiedCount())
	}
	if err := c.nblt.ImportState(st.NBLT); err != nil {
		return err
	}
	c.state = st.State
	c.loopHead, c.loopTail = st.LoopHead, st.LoopTail
	c.callDepth = st.CallDepth
	c.iterCount = st.IterCount
	c.lastIterSize = st.LastIterSize
	c.firstIterDone = st.FirstIterDone
	c.reuseOrd = st.ReuseOrd
	c.wraps = st.Wraps
	c.S = st.S
	return nil
}

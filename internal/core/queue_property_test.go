package core

import (
	"math/rand"
	"testing"

	"reuseiq/internal/isa"
)

// This file checks the slot-based Queue against a reference copy of the
// original collapse-on-remove implementation, op for op: after every random
// operation the two must agree on occupancy, program-order contents, the
// classified set, the select-candidate set, the pending-store order and —
// critically for the power model — every activity counter.

// refEntry wraps Entry with the reference model's view of the pending-store
// list (the real Queue tracks resolution in slotMeta).
type refEntry struct {
	Entry
	storeResolved bool
}

// refQueue is the original collapsing implementation: entries in a slice in
// program order, removal shifts the tail down.
type refQueue struct {
	entries []refEntry
	size    int

	Dispatches     uint64
	PartialUpdates uint64
	IssueReads     uint64
	Removals       uint64
	Collapses      uint64
}

func newRefQueue(size int) *refQueue {
	return &refQueue{entries: make([]refEntry, 0, size), size: size}
}

func (q *refQueue) Len() int  { return len(q.entries) }
func (q *refQueue) Free() int { return q.size - len(q.entries) }

func (q *refQueue) Dispatch(e Entry) bool {
	if q.Free() == 0 {
		return false
	}
	q.entries = append(q.entries, refEntry{Entry: e})
	q.Dispatches++
	return true
}

func (q *refQueue) MarkIssued(i int) bool {
	q.IssueReads++
	if q.entries[i].Classified {
		q.entries[i].Issued = true
		return false
	}
	q.Removals++
	q.Collapses += uint64(len(q.entries) - i - 1)
	q.entries = append(q.entries[:i], q.entries[i+1:]...)
	return true
}

func (q *refQueue) SquashAfter(seq uint64) {
	kept := q.entries[:0]
	for _, e := range q.entries {
		if e.Seq <= seq {
			kept = append(kept, e)
		}
	}
	q.entries = kept
}

func (q *refQueue) Revoke() {
	kept := q.entries[:0]
	for _, e := range q.entries {
		if e.Classified && e.Issued {
			q.Removals++
			continue
		}
		e.Classified = false
		kept = append(kept, e)
	}
	q.entries = kept
}

func (q *refQueue) PartialUpdate(i int, seq uint64, robSlot, lsqSlot int, srcPhys [2]int, srcReady [2]bool, destPhys int) {
	e := &q.entries[i]
	e.Seq = seq
	e.ROBSlot = robSlot
	e.LSQSlot = lsqSlot
	e.SrcPhys = srcPhys
	e.SrcReady = srcReady
	e.DestPhys = destPhys
	e.Issued = false
	e.storeResolved = false
	q.PartialUpdates++
}

func (q *refQueue) Wake(kind isa.RegKind, phys int) {
	for i := range q.entries {
		e := &q.entries[i]
		for s := 0; s < e.NumSrc; s++ {
			if e.SrcKind[s] == kind && e.SrcPhys[s] == phys {
				e.SrcReady[s] = true
			}
		}
	}
}

func (e *refEntry) isPendingStore() bool {
	return e.LSQSlot >= 0 && !e.Issued && !e.storeResolved &&
		e.Inst.Op.Info().Class == isa.ClassStore
}

// lockstep pairs the two implementations and cross-checks them after every
// operation. Positions index the reference slice; the equivalent slot in the
// real queue is found by walking program order.
type lockstep struct {
	t   *testing.T
	q   *Queue
	ref *refQueue
	seq uint64
}

func (l *lockstep) slotAt(pos int) int {
	i, found := 0, -1
	l.q.Walk(func(slot int, e *Entry) {
		if i == pos {
			found = slot
		}
		i++
	})
	if found < 0 {
		l.t.Fatalf("no slot at position %d (len %d)", pos, l.q.Len())
	}
	return found
}

func (l *lockstep) check() {
	t, q, ref := l.t, l.q, l.ref
	t.Helper()
	if q.Len() != ref.Len() || q.Free() != ref.Free() {
		t.Fatalf("occupancy: got len=%d free=%d, ref len=%d free=%d",
			q.Len(), q.Free(), ref.Len(), ref.Free())
	}
	if q.Dispatches != ref.Dispatches || q.PartialUpdates != ref.PartialUpdates ||
		q.IssueReads != ref.IssueReads || q.Removals != ref.Removals ||
		q.Collapses != ref.Collapses {
		t.Fatalf("counters diverged:\n got  D=%d P=%d I=%d R=%d C=%d\n ref  D=%d P=%d I=%d R=%d C=%d",
			q.Dispatches, q.PartialUpdates, q.IssueReads, q.Removals, q.Collapses,
			ref.Dispatches, ref.PartialUpdates, ref.IssueReads, ref.Removals, ref.Collapses)
	}
	// Program-order contents.
	pos := 0
	q.Walk(func(slot int, e *Entry) {
		if pos >= ref.Len() {
			t.Fatalf("walk visited more entries than reference holds")
		}
		r := &ref.entries[pos].Entry
		if *e != *r {
			t.Fatalf("entry at position %d diverged:\n got %+v\n ref %+v", pos, *e, *r)
		}
		if !q.Valid(slot) {
			t.Fatalf("walk visited invalid slot %d", slot)
		}
		pos++
	})
	if pos != ref.Len() {
		t.Fatalf("walk visited %d entries, reference holds %d", pos, ref.Len())
	}
	// Classified set, in program order.
	var refClass []uint64
	for i := range ref.entries {
		if ref.entries[i].Classified {
			refClass = append(refClass, ref.entries[i].Seq)
		}
	}
	cs := q.ClassifiedSlots()
	if q.ClassifiedCount() != len(refClass) || len(cs) != len(refClass) {
		t.Fatalf("classified count: got %d (%d slots), ref %d", q.ClassifiedCount(), len(cs), len(refClass))
	}
	for i, slot := range cs {
		if q.Entry(int(slot)).Seq != refClass[i] {
			t.Fatalf("classified[%d]: got seq %d, ref %d", i, q.Entry(int(slot)).Seq, refClass[i])
		}
	}
	// Select candidates: valid, unissued, all sources ready.
	refReady := map[uint64]bool{}
	for i := range ref.entries {
		e := &ref.entries[i]
		ready := !e.Issued
		for s := 0; s < e.NumSrc; s++ {
			ready = ready && e.SrcReady[s]
		}
		if ready {
			refReady[e.Seq] = true
		}
	}
	rs := q.ReadySlots()
	if len(rs) != len(refReady) {
		t.Fatalf("ready set size: got %d, ref %d", len(rs), len(refReady))
	}
	for _, slot := range rs {
		if !refReady[q.Entry(int(slot)).Seq] {
			t.Fatalf("ready set holds seq %d which reference says is not ready", q.Entry(int(slot)).Seq)
		}
	}
	// Pending stores, in program order.
	var refStores []uint64
	for i := range ref.entries {
		if ref.entries[i].isPendingStore() {
			refStores = append(refStores, ref.entries[i].Seq)
		}
	}
	var gotStores []uint64
	q.ForEachPendingStore(func(slot int) bool {
		gotStores = append(gotStores, q.Entry(slot).Seq)
		return true
	})
	if len(gotStores) != len(refStores) {
		t.Fatalf("pending stores: got %v, ref %v", gotStores, refStores)
	}
	for i := range gotStores {
		if gotStores[i] != refStores[i] {
			t.Fatalf("pending stores: got %v, ref %v", gotStores, refStores)
		}
	}
}

func (l *lockstep) randomEntry(rng *rand.Rand) Entry {
	l.seq++
	e := Entry{
		Seq:     l.seq,
		PC:      0x0040_0000 + uint32(rng.Intn(64))*4,
		ROBSlot: rng.Intn(64),
		LSQSlot: -1,
		NumSrc:  rng.Intn(3),
	}
	switch rng.Intn(4) {
	case 0: // store: exercises the pending-store list
		e.Inst = isa.Inst{Op: isa.OpSW, Rs: 1, Rt: 2}
		e.LSQSlot = rng.Intn(32)
		e.NumSrc = 2
	case 1:
		e.Inst = isa.Inst{Op: isa.OpADD, Rd: 3, Rs: 1, Rt: 2}
		e.HasDest = true
		e.DestPhys = rng.Intn(16)
	default:
		e.Inst = isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}
	}
	for s := 0; s < e.NumSrc; s++ {
		if rng.Intn(4) == 0 {
			e.SrcKind[s] = isa.KindFP
		}
		e.SrcPhys[s] = rng.Intn(16)
		e.SrcReady[s] = rng.Intn(2) == 0
	}
	e.Classified = rng.Intn(3) == 0
	return e
}

// TestQueueMatchesCollapsingReference drives random operation schedules
// through both implementations and requires bit-identical observable state.
func TestQueueMatchesCollapsingReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		size := 4 + rng.Intn(29)
		l := &lockstep{t: t, q: NewQueue(size), ref: newRefQueue(size)}
		for step := 0; step < 600; step++ {
			switch rng.Intn(12) {
			case 0, 1, 2, 3, 4: // dispatch
				e := l.randomEntry(rng)
				_, ok := l.q.Dispatch(e)
				rok := l.ref.Dispatch(e)
				if ok != rok {
					t.Fatalf("seed %d step %d: Dispatch accepted=%v, ref=%v", seed, step, ok, rok)
				}
			case 5, 6, 7: // issue a random position
				if l.ref.Len() == 0 {
					continue
				}
				pos := rng.Intn(l.ref.Len())
				slot := l.slotAt(pos)
				if l.q.MarkIssued(slot) != l.ref.MarkIssued(pos) {
					t.Fatalf("seed %d step %d: MarkIssued removal mismatch", seed, step)
				}
			case 8: // squash a random suffix
				cut := l.seq - uint64(rng.Intn(6))
				l.q.SquashAfter(cut)
				l.ref.SquashAfter(cut)
			case 9: // revoke buffering
				l.q.Revoke()
				l.ref.Revoke()
			case 10: // partial-update a random classified position
				var classified []int
				for i := range l.ref.entries {
					if l.ref.entries[i].Classified {
						classified = append(classified, i)
					}
				}
				if len(classified) == 0 {
					continue
				}
				pos := classified[rng.Intn(len(classified))]
				slot := l.slotAt(pos)
				l.seq++
				rob, lsqSlot := rng.Intn(64), -1
				if l.ref.entries[pos].Inst.Op.Info().Class == isa.ClassStore {
					lsqSlot = rng.Intn(32)
				}
				srcPhys := [2]int{rng.Intn(16), rng.Intn(16)}
				srcReady := [2]bool{rng.Intn(2) == 0, rng.Intn(2) == 0}
				dest := rng.Intn(16)
				l.q.PartialUpdate(slot, l.seq, rob, lsqSlot, srcPhys, srcReady, dest)
				l.ref.PartialUpdate(pos, l.seq, rob, lsqSlot, srcPhys, srcReady, dest)
			case 11: // broadcast a result tag
				kind := isa.KindInt
				if rng.Intn(4) == 0 {
					kind = isa.KindFP
				}
				phys := rng.Intn(16)
				l.q.Wake(kind, phys)
				l.ref.Wake(kind, phys)
			}
			l.check()
		}
	}
}

// TestQueueStoreResolutionLockstep exercises StoreResolved, which has no
// counterpart in the collapsing reference beyond clearing pending state.
func TestQueueStoreResolutionLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	l := &lockstep{t: t, q: NewQueue(16), ref: newRefQueue(16)}
	for step := 0; step < 300; step++ {
		if rng.Intn(2) == 0 && l.ref.Free() > 0 {
			e := l.randomEntry(rng)
			l.q.Dispatch(e)
			l.ref.Dispatch(e)
		} else {
			// Resolve the oldest pending store, as resolveStoreAddresses does.
			resolved := -1
			l.q.ForEachPendingStore(func(slot int) bool {
				l.q.StoreResolved(slot)
				resolved = slot
				return false
			})
			if resolved >= 0 {
				seq := l.q.Entry(resolved).Seq
				for i := range l.ref.entries {
					if l.ref.entries[i].Seq == seq {
						l.ref.entries[i].storeResolved = true
					}
				}
			} else if l.ref.Len() > 0 { // nothing pending: drain via issue
				pos := rng.Intn(l.ref.Len())
				slot := l.slotAt(pos)
				l.q.MarkIssued(slot)
				l.ref.MarkIssued(pos)
			}
		}
		l.check()
	}
}

package core

import (
	"testing"

	"reuseiq/internal/isa"
)

// TestControllerStateRoundTripsWraps pins a statecov finding: the wrap-around
// counter is live state — fast-forward's wrap veto reads it through Wraps()
// to detect reuse-pointer wraps between probes — but ExportState/ImportState
// silently dropped it, so a controller restored from a checkpoint restarted
// the count at zero. The counter must survive the round trip exactly.
func TestControllerStateRoundTripsWraps(t *testing.T) {
	c, q := newCtl(16, 8)
	head := uint32(base)
	tail := uint32(base + 4*4)
	c.OnDispatch(tail, branchAt(tail, head), true, head)
	seq := uint64(0)
	for c.State() == Buffering {
		for pc := head; pc <= tail; pc += 4 {
			in := isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}
			taken := pc == tail
			info := c.OnDispatch(pc, in, taken, head)
			seq++
			q.Dispatch(Entry{Seq: seq, PC: pc, Inst: in, Classified: info.Classify})
			if info.Promote {
				break
			}
		}
	}
	q.Walk(func(slot int, e *Entry) {
		if e.Classified {
			q.MarkIssued(slot)
		}
	})
	// Consume one full pass over the classified entries so the pointer wraps.
	c.ReusableEntries(4)
	c.ConsumeReused(4)
	c.ConsumeReused(11)
	if c.Wraps() == 0 {
		t.Fatal("driving a full reuse pass did not wrap the pointer")
	}

	st := c.ExportState()
	if st.Wraps != c.Wraps() {
		t.Fatalf("ExportState dropped the wrap counter: image %d, live %d", st.Wraps, c.Wraps())
	}
	fresh := NewController(Config{Enabled: true, NBLTSize: 8}, q)
	if err := fresh.ImportState(st); err != nil {
		t.Fatal(err)
	}
	if fresh.Wraps() != c.Wraps() {
		t.Fatalf("ImportState dropped the wrap counter: restored %d, want %d", fresh.Wraps(), c.Wraps())
	}
}

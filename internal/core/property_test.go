package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reuseiq/internal/isa"
)

// harness drives the controller + queue with a random but well-formed event
// stream (mirroring what the pipeline would send) and checks structural
// invariants after every event.
type harness struct {
	c   *Controller
	q   *Queue
	seq uint64
	t   *testing.T
}

func newHarness(t *testing.T, iq int) *harness {
	q := NewQueue(iq)
	c := NewController(Config{Enabled: true, NBLTSize: 8}, q)
	return &harness{c: c, q: q, t: t}
}

func (h *harness) nextSeq() uint64 {
	h.seq++
	return h.seq
}

// dispatch simulates a front-end dispatch of one instruction.
func (h *harness) dispatch(pc uint32, in isa.Inst, taken bool, target uint32) {
	if h.c.GateActive() {
		return // the pipeline never front-dispatches while gated
	}
	if h.q.Free() == 0 {
		h.c.OnIQFull()
		return
	}
	info := h.c.OnDispatch(pc, in, taken, target)
	h.q.Dispatch(Entry{
		Seq: h.nextSeq(), PC: pc, Inst: in,
		Classified: info.Classify, StaticTaken: taken, StaticTarget: target,
	})
	if info.Promote {
		// Nothing extra to do: entries are already in the queue.
		return
	}
}

// issueSome marks up to n ready-looking entries issued, picking random live
// slots like the select logic would pick ready ones.
func (h *harness) issueSome(rng *rand.Rand, n int) {
	for i := 0; i < n && h.q.Len() > 0; i++ {
		var slots []int
		h.q.Walk(func(slot int, e *Entry) { slots = append(slots, slot) })
		slot := slots[rng.Intn(len(slots))]
		if !h.q.Entry(slot).Issued {
			h.q.MarkIssued(slot)
		}
	}
}

// reuseSome consumes from the reuse pointer like reuseDispatch would.
func (h *harness) reuseSome(width int) {
	idxs := h.c.ReusableEntries(width)
	for _, pos := range idxs {
		h.q.PartialUpdate(pos, h.nextSeq(), 0, -1, [2]int{}, [2]bool{}, -1)
	}
	h.c.ConsumeReused(len(idxs))
}

// invariants that must hold after every event.
func (h *harness) check() {
	// 1. Queue occupancy within capacity.
	if h.q.Len() > h.q.Size() || h.q.Len() < 0 {
		h.t.Fatalf("occupancy %d out of range", h.q.Len())
	}
	// 2. Classification bits exist only in Buffering or Reuse states.
	if h.c.State() == Normal && h.q.ClassifiedCount() != 0 {
		h.t.Fatalf("classified entries in Normal state")
	}
	// 3. In Reuse, at least one classified entry exists.
	if h.c.State() == Reuse && h.q.ClassifiedCount() == 0 {
		h.t.Fatalf("reuse state with empty buffer")
	}
	// 4. ReusableEntries only returns issued classified entries.
	for _, pos := range h.c.ReusableEntries(4) {
		e := h.q.Entry(pos)
		if !e.Classified || !e.Issued {
			h.t.Fatalf("supply returned non-reusable entry %+v", e)
		}
	}
}

// TestControllerInvariantsUnderRandomEvents drives random event schedules.
func TestControllerInvariantsUnderRandomEvents(t *testing.T) {
	const nbase = 0x0040_0000
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newHarness(t, 16+rng.Intn(48))
		loopLen := 2 + rng.Intn(10)
		tail := uint32(nbase + 4*loopLen)
		pc := uint32(nbase)
		for step := 0; step < 400; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // fetch-path dispatch walking the loop
				in := isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}
				taken := false
				var tgt uint32
				if pc == tail {
					off := (int32(nbase) - int32(pc) - 4) / 4
					in = isa.Inst{Op: isa.OpBNE, Rs: 2, Imm: off}
					taken = rng.Intn(8) != 0
					tgt = nbase
				}
				h.dispatch(pc, in, taken, tgt)
				if pc == tail {
					pc = nbase
				} else {
					pc += 4
				}
			case 5, 6:
				h.issueSome(rng, 1+rng.Intn(4))
			case 7:
				h.reuseSome(4)
			case 8:
				h.c.OnRecovery()
				h.q.SquashAfter(h.seq - uint64(rng.Intn(5)))
			case 9:
				h.c.OnIQFull()
			}
			h.check()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reuse pointer visits all buffered entries in order and wraps.
func TestReusePointerCoversAllEntries(t *testing.T) {
	h := newHarness(t, 32)
	tail := uint32(0x0040_0000 + 4*4) // 5-instruction loop
	// Detect + buffer until promoted.
	off := (int32(0x0040_0000) - int32(tail) - 4) / 4
	br := isa.Inst{Op: isa.OpBNE, Rs: 2, Imm: off}
	h.dispatch(tail, br, true, 0x0040_0000)
	for !h.c.GateActive() {
		for pc := uint32(0x0040_0000); pc <= tail && !h.c.GateActive(); pc += 4 {
			in := isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1}
			taken := pc == tail
			h.dispatch(pc, in, taken, 0x0040_0000)
		}
	}
	n := h.q.ClassifiedCount()
	// Issue everything so the whole buffer is reusable.
	h.q.Walk(func(slot int, e *Entry) {
		if e.Classified && !e.Issued {
			h.q.MarkIssued(slot)
		}
	})
	// Supply in groups of 4 until every entry has been re-renamed once;
	// the number of renames to come back to the start must be exactly n.
	seen := 0
	for seen < n {
		idxs := h.c.ReusableEntries(4)
		if len(idxs) == 0 {
			t.Fatal("supply stalled with all entries issued")
		}
		for _, pos := range idxs {
			h.q.PartialUpdate(pos, h.nextSeq(), 0, -1, [2]int{}, [2]bool{}, -1)
			h.q.MarkIssued(pos) // pretend it issued again immediately
			seen++
		}
		h.c.ConsumeReused(len(idxs))
	}
	if got := h.c.S.ReuseRenames; got != uint64(n) {
		t.Errorf("renames = %d, want %d", got, n)
	}
}

package core

// NBLT is the non-bufferable loop table (paper §2.2.3): a small CAM managed
// as a FIFO that holds the loop-ending instruction addresses of the most
// recent loops found to be non-bufferable (outer loops, loops whose bodies
// overflow the queue, loops exited during buffering). A detected loop that
// hits in the NBLT is never buffered, which removes most buffering-revoke
// thrash. A size of zero disables the table (every lookup misses).
type NBLT struct {
	addrs []uint32
	valid []bool
	next  int // FIFO insertion point

	Lookups uint64
	Hits    uint64
	Inserts uint64
}

// NewNBLT creates a table with the given number of entries.
func NewNBLT(size int) *NBLT {
	return &NBLT{addrs: make([]uint32, size), valid: make([]bool, size)}
}

// Size returns the capacity.
func (n *NBLT) Size() int { return len(n.addrs) }

// Len returns the number of valid entries.
func (n *NBLT) Len() int {
	c := 0
	for _, v := range n.valid {
		if v {
			c++
		}
	}
	return c
}

// Contains performs a CAM lookup for the loop ending at addr.
func (n *NBLT) Contains(addr uint32) bool {
	n.Lookups++
	for i, a := range n.addrs {
		if n.valid[i] && a == addr {
			n.Hits++
			return true
		}
	}
	return false
}

// Insert registers addr, replacing the oldest entry when full. Inserting an
// address already present refreshes nothing (the CAM simply holds it once).
func (n *NBLT) Insert(addr uint32) {
	if len(n.addrs) == 0 {
		return
	}
	for i, a := range n.addrs {
		if n.valid[i] && a == addr {
			return
		}
	}
	n.Inserts++
	n.addrs[n.next] = addr
	n.valid[n.next] = true
	n.next = (n.next + 1) % len(n.addrs)
}

package power_test

import (
	"testing"

	"reuseiq/internal/compiler"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/workloads"
)

// The geometry-derived parameter set must reproduce the paper's headline
// qualitative results end to end, proving the conclusions do not depend on
// the hand-calibrated constants.
func TestGeometryParamsReproduceHeadlines(t *testing.T) {
	k, _ := workloads.ByName("aps") // small tight loop: gates everywhere
	mp, _, err := compiler.Compile(k.Prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, iq := range []int{32, 64} {
		params := power.GeometryParams(iq)
		base := pipeline.New(pipeline.BaselineConfig().WithIQSize(iq), mp)
		if err := base.Run(); err != nil {
			t.Fatal(err)
		}
		reuse := pipeline.New(pipeline.DefaultConfig().WithIQSize(iq), mp)
		if err := reuse.Run(); err != nil {
			t.Fatal(err)
		}
		s := power.Compare(power.AnalyzeWith(base, params), power.AnalyzeWith(reuse, params))
		if s.Component[power.ICache] < 0.3 || s.Component[power.ICache] > 0.99 {
			t.Errorf("iq=%d: geometry icache saving = %.2f, outside plausible band",
				iq, s.Component[power.ICache])
		}
		if s.Overall <= 0 {
			t.Errorf("iq=%d: geometry overall saving = %.3f, want positive", iq, s.Overall)
		}
		if s.Component[power.BPred] <= 0 {
			t.Errorf("iq=%d: geometry bpred saving = %.3f, want positive", iq, s.Component[power.BPred])
		}
		if s.OverheadShare <= 0 || s.OverheadShare > 0.05 {
			t.Errorf("iq=%d: geometry overhead share = %.4f", iq, s.OverheadShare)
		}
	}
}

// A kernel that cannot gate (btrix at IQ=64) must show near-zero savings
// under geometry parameters too.
func TestGeometryParamsNoGatingNoSavings(t *testing.T) {
	k, _ := workloads.ByName("btrix")
	mp, _, err := compiler.Compile(k.Prog)
	if err != nil {
		t.Fatal(err)
	}
	params := power.GeometryParams(64)
	base := pipeline.New(pipeline.BaselineConfig(), mp)
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	reuse := pipeline.New(pipeline.DefaultConfig(), mp)
	if err := reuse.Run(); err != nil {
		t.Fatal(err)
	}
	s := power.Compare(power.AnalyzeWith(base, params), power.AnalyzeWith(reuse, params))
	if s.Overall > 0.10 || s.Overall < -0.05 {
		t.Errorf("non-gating kernel shows overall saving %.3f under geometry params", s.Overall)
	}
}

// Regression guard on the calibration: the baseline per-component power
// shares must stay near the Wattch-era breakdowns the model was calibrated
// to, so future parameter edits cannot silently distort every figure.
func TestBaselineComponentShares(t *testing.T) {
	k, _ := workloads.ByName("aps")
	mp, _, err := compiler.Compile(k.Prog)
	if err != nil {
		t.Fatal(err)
	}
	m := pipeline.New(pipeline.BaselineConfig(), mp)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	r := power.Analyze(m)
	total := r.Total()
	share := func(c power.Component) float64 { return r.Energy[c] / total }
	bands := []struct {
		c      power.Component
		lo, hi float64
	}{
		{power.ICache, 0.04, 0.20},
		{power.IssueQueue, 0.08, 0.30},
		{power.Clock, 0.10, 0.35},
		{power.FuncUnits, 0.05, 0.30},
		{power.DCache, 0.03, 0.20},
		{power.RegFile, 0.03, 0.20},
		{power.BPred, 0.002, 0.10},
		{power.Decode, 0.005, 0.10},
	}
	for _, b := range bands {
		if s := share(b.c); s < b.lo || s > b.hi {
			t.Errorf("%v share = %.3f, outside calibration band [%.3f, %.3f]", b.c, s, b.lo, b.hi)
		}
	}
}

package power

import "math"

// This file derives per-access energies from structure geometry the way
// Wattch derives them from CACTI-style array models: an SRAM/CAM access
// charges the row decoder, the selected wordline, the bitlines of every
// column, and the sense amplifiers. The absolute scale is normalized so
// that one access to the baseline 32KB 2-way instruction cache costs 1.0
// units, making geometry-derived parameters directly comparable with
// DefaultParams.

// ArrayGeometry describes one SRAM array.
type ArrayGeometry struct {
	Rows int
	Cols int // bits per row
	// Ports is the number of simultaneously usable ports; energy per
	// access grows roughly linearly with the port count (extra wordlines
	// and bitlines per cell).
	Ports int
}

// accessEnergy returns the relative energy of one array access:
//
//	E = (decode + wordline + bitline + sense) scaled by port count
//
// with decode ~ log2(rows), wordline ~ cols, bitline ~ rows, sense ~ cols.
// Constants reflect the relative capacitance weights used by Wattch's
// simplified model.
func (g ArrayGeometry) accessEnergy() float64 {
	rows := float64(max(g.Rows, 1))
	cols := float64(max(g.Cols, 1))
	ports := float64(max(g.Ports, 1))
	decode := 0.15 * math.Log2(rows+1)
	wordline := 0.0018 * cols
	bitline := 0.0020 * rows * 0.12 // bitline swing is partial (low-swing sensing)
	sense := 0.0011 * cols
	return ports * (decode + wordline + bitline + sense)
}

// camEnergy returns the relative energy of a fully associative match over
// the array: every row's taglines and match line are driven.
func (g ArrayGeometry) camEnergy() float64 {
	rows := float64(max(g.Rows, 1))
	cols := float64(max(g.Cols, 1))
	return 0.0009 * rows * cols
}

// CacheGeometry maps a set-associative cache onto an SRAM array: data plus
// tag bits per way in each row.
func CacheGeometry(sets, ways, lineBytes, ports int) ArrayGeometry {
	tagBits := 32 // generous tag+state estimate
	return ArrayGeometry{
		Rows:  sets,
		Cols:  ways * (lineBytes*8 + tagBits),
		Ports: ports,
	}
}

// GeometryParams derives a Params set from structure geometry for the given
// issue-queue size, normalized to the baseline instruction cache. The
// reuse-overhead, FU and clock terms have no array geometry and keep their
// calibrated defaults.
func GeometryParams(iqSize int) Params {
	p := DefaultParams()

	il1 := CacheGeometry(512, 2, 32, 1).accessEnergy()
	norm := func(e float64) float64 { return e / il1 }

	p.ICacheAccess = 1.0
	p.ITLBAccess = norm(ArrayGeometry{Rows: 64, Cols: 40, Ports: 1}.accessEnergy())
	p.BpredDir = norm(ArrayGeometry{Rows: 2048, Cols: 2, Ports: 1}.accessEnergy())
	p.BpredBTB = norm(CacheGeometry(512, 4, 4, 1).accessEnergy())
	p.BpredRAS = norm(ArrayGeometry{Rows: 8, Cols: 32, Ports: 1}.accessEnergy())
	p.DCacheAccess = norm(CacheGeometry(256, 4, 32, 2).accessEnergy())
	p.DTLBAccess = norm(ArrayGeometry{Rows: 128, Cols: 40, Ports: 1}.accessEnergy())
	p.L2Access = norm(CacheGeometry(1024, 4, 64, 1).accessEnergy())
	p.L0Access = norm(CacheGeometry(32, 1, 16, 1).accessEnergy())

	// Rename map: 32 entries of ~8-bit physical tags, multi-ported.
	p.RenameMapOp = norm(ArrayGeometry{Rows: 32, Cols: 8, Ports: 8}.accessEnergy())
	// Register file: ~96 regs x 64 bits, heavily ported.
	p.RegRead = norm(ArrayGeometry{Rows: 96, Cols: 64, Ports: 8}.accessEnergy()) / 8
	p.RegWrite = p.RegRead * 1.25

	// Issue queue: each entry holds ~80 payload bits; dispatch writes a
	// full entry, issue reads it, and each wakeup drives the source-tag
	// CAM of the whole window (handled per entry by the caller).
	iqArr := ArrayGeometry{Rows: iqSize, Cols: 80, Ports: 4}
	p.IQDispatch = norm(iqArr.accessEnergy()) * 64 / float64(iqSize) // caller rescales by iqScale
	p.IQIssueRead = p.IQDispatch * 0.55
	p.IQPartialUpdate = p.IQDispatch * 0.33 // register info + ROB pointer only
	wakeupCAM := ArrayGeometry{Rows: iqSize, Cols: 2 * 8, Ports: 1}
	p.IQWakeupPerEntry = norm(wakeupCAM.camEnergy()) / float64(iqSize)

	// LSQ: address CAM search + entry write.
	lsqArr := ArrayGeometry{Rows: 32, Cols: 96, Ports: 2}
	p.LSQDispatch = norm(lsqArr.accessEnergy()) / 2
	p.LSQSearch = norm(ArrayGeometry{Rows: 32, Cols: 32, Ports: 1}.camEnergy())

	// ROB: wide entries, sequential ports.
	p.ROBOp = norm(ArrayGeometry{Rows: 64, Cols: 96, Ports: 8}.accessEnergy()) / 6

	// Reuse-mechanism overhead from its actual structure sizes: the LRL
	// (15 bits per entry) and the 8-entry NBLT CAM.
	lrl := ArrayGeometry{Rows: iqSize, Cols: 15, Ports: 4}
	p.LRLWrite = norm(lrl.accessEnergy()) * 8 / float64(iqSize)
	p.LRLRead = p.LRLWrite * 0.8
	nblt := ArrayGeometry{Rows: 8, Cols: 32, Ports: 1}
	p.NBLTLookup = norm(nblt.camEnergy())
	p.NBLTInsert = norm(nblt.accessEnergy())
	p.LoopCacheOp = norm(ArrayGeometry{Rows: 32, Cols: 32, Ports: 1}.accessEnergy())

	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

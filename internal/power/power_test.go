package power

import (
	"strings"
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/pipeline"
)

func runLoop(t *testing.T, reuse bool, iq int) *pipeline.Machine {
	t.Helper()
	p := asm.MustAssemble(`
	li   $r2, 0
	li   $r3, 3000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	cfg := pipeline.DefaultConfig().WithIQSize(iq)
	cfg.Reuse.Enabled = reuse
	m := pipeline.New(cfg, p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReportBasics(t *testing.T) {
	m := runLoop(t, false, 64)
	r := Analyze(m)
	if r.Cycles != m.C.Cycles || r.Commits != m.C.Commits {
		t.Error("report cycle/commit counts wrong")
	}
	if r.Total() <= 0 {
		t.Fatal("zero total energy")
	}
	sum := 0.0
	for c := Component(0); c < NumComponents; c++ {
		if r.Energy[c] < 0 {
			t.Errorf("negative energy for %v", c)
		}
		sum += r.Energy[c]
	}
	if diff := sum - r.Total(); diff > 1e-9 || diff < -1e-9 {
		t.Error("Total does not equal the component sum")
	}
	if r.TotalPerCycle() <= 0 || r.EPI() <= 0 {
		t.Error("per-cycle/EPI not positive")
	}
}

func TestBaselineHasNoOverheadEnergy(t *testing.T) {
	m := runLoop(t, false, 64)
	r := Analyze(m)
	if r.Energy[Overhead] != 0 {
		t.Errorf("baseline overhead energy = %v", r.Energy[Overhead])
	}
	mr := runLoop(t, true, 64)
	rr := Analyze(mr)
	if rr.Energy[Overhead] <= 0 {
		t.Error("reuse run has no overhead energy")
	}
}

func TestGatingSavesFrontEndPower(t *testing.T) {
	base := Analyze(runLoop(t, false, 64))
	reuse := Analyze(runLoop(t, true, 64))
	s := Compare(base, reuse)
	for _, c := range []Component{ICache, FetchLogic, Decode} {
		if s.Component[c] <= 0.3 {
			t.Errorf("%v saving = %.2f, expected large for a fully gated loop", c, s.Component[c])
		}
	}
	if s.Overall <= 0 {
		t.Errorf("overall saving = %.3f", s.Overall)
	}
	if s.OverheadShare <= 0 || s.OverheadShare > 0.05 {
		t.Errorf("overhead share = %.4f, want small positive", s.OverheadShare)
	}
}

// The cc3 floor guarantees gated components never drop below 10% of their
// baseline peak: savings can never reach 100%.
func TestFloorBoundsSavings(t *testing.T) {
	base := Analyze(runLoop(t, false, 64))
	reuse := Analyze(runLoop(t, true, 64))
	s := Compare(base, reuse)
	for c := Component(0); c < NumComponents; c++ {
		if s.Component[c] >= 1.0 {
			t.Errorf("%v saving = %.3f, floor should bound it below 1", c, s.Component[c])
		}
	}
}

// Larger queues must cost more issue-queue energy per access (geometry
// scaling).
func TestIQEnergyScalesWithSize(t *testing.T) {
	small := Analyze(runLoop(t, false, 32))
	big := Analyze(runLoop(t, false, 256))
	if big.PerCycle(IssueQueue) <= small.PerCycle(IssueQueue) {
		t.Errorf("issueq per-cycle power did not grow with size: %.3f vs %.3f",
			small.PerCycle(IssueQueue), big.PerCycle(IssueQueue))
	}
	if big.PerCycle(Clock) <= small.PerCycle(Clock) {
		t.Error("clock power did not grow with window size")
	}
}

func TestCompareAgainstSelfIsZero(t *testing.T) {
	r := Analyze(runLoop(t, false, 64))
	s := Compare(r, r)
	if s.Overall != 0 {
		t.Errorf("self-comparison overall = %v", s.Overall)
	}
	for c := Component(0); c < NumComponents; c++ {
		if s.Component[c] != 0 && c != Overhead {
			t.Errorf("self-comparison %v = %v", c, s.Component[c])
		}
	}
}

func TestReportString(t *testing.T) {
	r := Analyze(runLoop(t, true, 64))
	out := r.String()
	for _, want := range []string{"icache", "issueq", "total energy", "overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestComponentNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Component(0); c < NumComponents; c++ {
		n := c.String()
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate component name %q", n)
		}
		seen[n] = true
	}
	if !ICache.FrontEnd() || !BPred.FrontEnd() || !Decode.FrontEnd() || !FetchLogic.FrontEnd() {
		t.Error("front-end classification wrong")
	}
	if IssueQueue.FrontEnd() || DCache.FrontEnd() {
		t.Error("back-end component classified as front end")
	}
}

func TestEmptyReportSafe(t *testing.T) {
	var r Report
	if r.TotalPerCycle() != 0 || r.EPI() != 0 || r.PerCycle(ICache) != 0 {
		t.Error("zero-cycle report not safe")
	}
}

package power

import (
	"math"
	"testing"
)

func TestAccessEnergyMonotoneInSize(t *testing.T) {
	small := ArrayGeometry{Rows: 32, Cols: 32, Ports: 1}.accessEnergy()
	tallRows := ArrayGeometry{Rows: 256, Cols: 32, Ports: 1}.accessEnergy()
	wideCols := ArrayGeometry{Rows: 32, Cols: 256, Ports: 1}.accessEnergy()
	if tallRows <= small || wideCols <= small {
		t.Errorf("energy not monotone: small=%v rows=%v cols=%v", small, tallRows, wideCols)
	}
	onePort := ArrayGeometry{Rows: 64, Cols: 64, Ports: 1}.accessEnergy()
	fourPort := ArrayGeometry{Rows: 64, Cols: 64, Ports: 4}.accessEnergy()
	if fourPort != 4*onePort {
		t.Errorf("port scaling: %v vs 4x%v", fourPort, onePort)
	}
}

func TestCamEnergyScalesWithEntries(t *testing.T) {
	small := ArrayGeometry{Rows: 16, Cols: 16}.camEnergy()
	big := ArrayGeometry{Rows: 64, Cols: 16}.camEnergy()
	if math.Abs(big/small-4) > 1e-9 {
		t.Errorf("CAM energy should scale linearly with rows: %v vs %v", small, big)
	}
}

func TestGeometryParamsNormalization(t *testing.T) {
	p := GeometryParams(64)
	if p.ICacheAccess != 1.0 {
		t.Errorf("icache access = %v, must be the normalization anchor", p.ICacheAccess)
	}
	// Sanity ordering: at equal port counts a bigger array costs more
	// (the dual-ported L1D legitimately exceeds the single-ported L2, so
	// compare like for like); the tiny filter cache costs less than L1I;
	// the bimodal table costs less than the BTB.
	l1dOnePort := CacheGeometry(256, 4, 32, 1).accessEnergy()
	l2OnePort := CacheGeometry(1024, 4, 64, 1).accessEnergy()
	if !(l2OnePort > l1dOnePort) {
		t.Errorf("L2 (%v) should cost more than L1D (%v) at equal ports", l2OnePort, l1dOnePort)
	}
	if !(p.L0Access < p.ICacheAccess) {
		t.Errorf("filter cache (%v) should cost less than L1I (1.0)", p.L0Access)
	}
	if !(p.BpredDir < p.BpredBTB) {
		t.Errorf("bimod (%v) should cost less than BTB (%v)", p.BpredDir, p.BpredBTB)
	}
	// Partial update must be cheaper than a full dispatch write (the
	// paper's power argument for the reuse state).
	if !(p.IQPartialUpdate < p.IQDispatch) {
		t.Errorf("partial update (%v) not cheaper than dispatch (%v)", p.IQPartialUpdate, p.IQDispatch)
	}
	// Overhead structures are small.
	if p.LRLWrite > 0.2 || p.NBLTLookup > 0.2 {
		t.Errorf("overhead energies too large: lrl=%v nblt=%v", p.LRLWrite, p.NBLTLookup)
	}
}

func TestGeometryParamsCloseToCalibrated(t *testing.T) {
	// The geometry-derived energies should land within an order of
	// magnitude of the hand-calibrated defaults — they model the same
	// structures.
	g := GeometryParams(64)
	d := DefaultParams()
	within := func(name string, got, want float64) {
		ratio := got / want
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("%s: geometry %v vs calibrated %v (ratio %.2f)", name, got, want, ratio)
		}
	}
	within("dcache", g.DCacheAccess, d.DCacheAccess)
	within("l2", g.L2Access, d.L2Access)
	within("bpredDir", g.BpredDir, d.BpredDir)
	within("bpredBTB", g.BpredBTB, d.BpredBTB)
	within("iqDispatch", g.IQDispatch, d.IQDispatch)
	within("regRead", g.RegRead, d.RegRead)
	within("lsqSearch", g.LSQSearch, d.LSQSearch)
}

func TestGeometryParamsScaleWithIQ(t *testing.T) {
	p64 := GeometryParams(64)
	p256 := GeometryParams(256)
	// Per-entry wakeup energy is size-independent (the caller multiplies
	// by window size); dispatch is pre-divided by iqScale so the caller's
	// rescaling reproduces the geometry. Check the raw invariant instead:
	// dispatch * iqScale must grow with the window.
	d64 := p64.IQDispatch * 1
	d256 := p256.IQDispatch * 4
	if d256 <= d64 {
		t.Errorf("issue-queue write energy did not grow with size: %v vs %v", d64, d256)
	}
}

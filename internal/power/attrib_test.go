package power_test

import (
	"math"
	"strings"
	"testing"

	"reuseiq/internal/compiler"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/telemetry"
	"reuseiq/internal/workloads"
)

func runWithTelemetry(t *testing.T, kernel string) (*pipeline.Machine, *telemetry.Tracer) {
	t.Helper()
	k, ok := workloads.ByName(kernel)
	if !ok {
		t.Fatalf("unknown kernel %q", kernel)
	}
	mp, _, err := compiler.Compile(k.Prog)
	if err != nil {
		t.Fatal(err)
	}
	m := pipeline.New(pipeline.DefaultConfig(), mp)
	tel := telemetry.New(telemetry.Config{})
	m.AttachTelemetry(tel)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tel.Finalize(m.Cycle())
	return m, tel
}

// The per-session decomposition must account for the whole run: gated cycles
// partition exactly across sessions, and the summed overhead charges match
// the counters Analyze prices (up to the NBLT terms, which Analyze charges
// globally).
func TestAttributionReconcilesWithAnalyze(t *testing.T) {
	m, tel := runWithTelemetry(t, "aps")
	sessions := tel.Sessions()
	if len(sessions) == 0 {
		t.Fatal("aps produced no reuse sessions")
	}

	attrib := power.AttributeSessions(m, sessions)
	if len(attrib) != len(sessions) {
		t.Fatalf("attribution rows = %d, sessions = %d", len(attrib), len(sessions))
	}

	var gated, buffered, reused uint64
	for _, a := range attrib {
		gated += a.Session.GatedCycles
		buffered += a.Session.BufferedInsts
		reused += a.Session.ReusedInsts
	}
	if gated != m.C.GatedCycles {
		t.Errorf("session gated cycles sum = %d, global counter = %d", gated, m.C.GatedCycles)
	}
	if buffered != m.Ctl.S.BufferedInsts {
		t.Errorf("session buffered insts sum = %d, controller counter = %d",
			buffered, m.Ctl.S.BufferedInsts)
	}
	if reused != m.Ctl.S.ReuseRenames {
		t.Errorf("session reused insts sum = %d, controller counter = %d",
			reused, m.Ctl.S.ReuseRenames)
	}

	// The total front-end energy credited must be positive for a kernel that
	// gates nearly the whole run, and no single session may claim more than
	// the run's total front-end dynamic energy.
	rep := power.Analyze(m)
	var feTotal float64
	for c := power.Component(0); c < power.NumComponents; c++ {
		if c.FrontEnd() {
			feTotal += rep.Energy[c]
		}
	}
	var saved float64
	for _, a := range attrib {
		if a.FrontEndSaved < 0 || a.OverheadSpent < 0 {
			t.Fatalf("negative energy in session %d: saved=%f spent=%f",
				a.Session.ID, a.FrontEndSaved, a.OverheadSpent)
		}
		saved += a.FrontEndSaved
	}
	if saved <= 0 {
		t.Error("total attributed front-end saving is zero for a gating kernel")
	}
	if math.IsNaN(saved) || math.IsInf(saved, 0) {
		t.Errorf("attributed saving is not finite: %f", saved)
	}
}

// A baseline machine (reuse disabled) has no sessions; attribution of an
// empty log must be empty, not panic.
func TestAttributionEmptySessions(t *testing.T) {
	k, _ := workloads.ByName("aps")
	mp, _, err := compiler.Compile(k.Prog)
	if err != nil {
		t.Fatal(err)
	}
	m := pipeline.New(pipeline.BaselineConfig(), mp)
	tel := telemetry.New(telemetry.Config{})
	m.AttachTelemetry(tel)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tel.Finalize(m.Cycle())
	if n := len(tel.Sessions()); n != 0 {
		t.Fatalf("baseline machine logged %d sessions", n)
	}
	if got := power.AttributeSessions(m, tel.Sessions()); len(got) != 0 {
		t.Fatalf("attribution of empty log returned %d rows", len(got))
	}
}

func TestSessionEnergyTable(t *testing.T) {
	m, tel := runWithTelemetry(t, "aps")
	out := power.SessionEnergyString(power.AttributeSessions(m, tel.Sessions()))
	if !strings.Contains(out, "fe-saved") || !strings.Contains(out, "total") {
		t.Errorf("table missing header or totals row:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := len(tel.Sessions()) + 2; len(lines) != want {
		t.Errorf("table has %d lines, want %d (header + sessions + total)", len(lines), want)
	}
}

func TestRegisterSessionMetrics(t *testing.T) {
	attrib := []power.SessionEnergy{
		{FrontEndSaved: 100, OverheadSpent: 30}, // net 70
		{FrontEndSaved: 10, OverheadSpent: 40},  // net -30
		{FrontEndSaved: 50, OverheadSpent: 20},  // net 30
	}
	r := &telemetry.Registry{}
	power.RegisterSessionMetrics(r, attrib)
	s := r.Snapshot()
	if got := s.Get("power.sessions.count"); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if got := s.Get("power.sessions.fe_saved.ppm"); got != 160e6 {
		t.Errorf("fe_saved.ppm = %d, want 160e6", got)
	}
	if got := s.Get("power.sessions.net.ppm"); got != 70e6 {
		t.Errorf("net.ppm = %d, want 70e6", got)
	}
	ts := r.TypedSnapshot()
	vals := map[string]float64{}
	for _, g := range ts.Gauges {
		vals[g.Name] = g.Value
	}
	if vals["power.sessions.best_net"] != 70 || vals["power.sessions.worst_net"] != -30 {
		t.Errorf("best/worst = %g/%g, want 70/-30", vals["power.sessions.best_net"], vals["power.sessions.worst_net"])
	}
}

func TestRegisterSessionMetricsEmpty(t *testing.T) {
	r := &telemetry.Registry{}
	power.RegisterSessionMetrics(r, nil)
	if got := r.Snapshot().Get("power.sessions.count"); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
}

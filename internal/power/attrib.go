package power

import (
	"fmt"
	"io"
	"strings"

	"reuseiq/internal/core"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/telemetry"
)

// Per-session energy attribution: decomposes the reuse mechanism's energy
// effect loop by loop, using the same calibrated constants as Analyze. For
// each audit-log session it charges the overhead energy the session spent
// (LRL writes while buffering, LRL reads and partial updates while reusing,
// one NBLT insert if the revoke registered the loop) and credits the
// front-end energy its gated cycles avoided, priced at the run's own average
// front-end dynamic energy per ungated cycle. The decomposition is exact for
// overhead (the same event counts Analyze charges, partitioned by session)
// and a rate-based estimate for the avoided energy (the front end's activity
// mix is assumed stationary across the run).
type SessionEnergy struct {
	Session telemetry.Session
	// FrontEndSaved is the dynamic front-end energy (icache, fetch, bpred,
	// decode) the session's gated cycles avoided.
	FrontEndSaved float64
	// OverheadSpent is the reuse-hardware energy attributable to the
	// session: LRL writes for buffered instructions, LRL reads and issue
	// queue partial updates for reused instances.
	OverheadSpent float64
}

// Net returns the session's net energy effect (positive = saved).
func (s SessionEnergy) Net() float64 { return s.FrontEndSaved - s.OverheadSpent }

// AttributeSessions computes per-session energy attribution for a finished
// machine and its telemetry session log (call Tracer.Finalize first).
func AttributeSessions(m *pipeline.Machine, sessions []telemetry.Session) []SessionEnergy {
	return AttributeSessionsWith(m, sessions, DefaultParams())
}

// AttributeSessionsWith is AttributeSessions with explicit parameters.
func AttributeSessionsWith(m *pipeline.Machine, sessions []telemetry.Session, p Params) []SessionEnergy {
	rate := frontEndRate(m, p)
	iqScale := float64(m.Cfg.IQSize) / 64

	out := make([]SessionEnergy, 0, len(sessions))
	for _, s := range sessions {
		e := SessionEnergy{Session: s}
		e.FrontEndSaved = float64(s.GatedCycles) * rate
		e.OverheadSpent = float64(s.BufferedInsts)*p.LRLWrite +
			float64(s.ReusedInsts)*(p.LRLRead+p.IQPartialUpdate*iqScale)
		if registersNBLT(s.EndReason) {
			e.OverheadSpent += p.NBLTInsert
		}
		out = append(out, e)
	}
	return out
}

// registersNBLT reports whether a revoke with this reason inserted the loop
// into the non-bufferable loop table (mirrors core.Controller.revoke call
// sites: exit, inner call/branch, and queue-full revokes register; forced and
// recovery revokes do not).
func registersNBLT(r core.RevokeReason) bool {
	return r == core.ReasonInner || r == core.ReasonExit || r == core.ReasonFull
}

// frontEndRate returns the run's average dynamic front-end energy per
// ungated cycle — the price one gated cycle avoids.
func frontEndRate(m *pipeline.Machine, p Params) float64 {
	ungated := m.C.Cycles - m.C.GatedCycles
	if ungated == 0 {
		return 0
	}
	bp := m.BP
	dyn := float64(m.Hier.L1I.Accesses)*p.ICacheAccess +
		float64(m.Hier.ITLB.Accesses())*p.ITLBAccess +
		float64(m.C.Fetches)*p.FetchPerInst +
		float64(bp.Lookups+bp.Updates)*p.BpredDir +
		float64(bp.BTBLookups+bp.BTBUpdates)*p.BpredBTB +
		float64(bp.RASOps)*p.BpredRAS +
		float64(m.C.Decodes)*p.DecodePerInst
	return dyn / float64(ungated)
}

// WriteSessionEnergy renders the attribution as an aligned table, largest
// net saving first kept in session order, with a totals row.
func WriteSessionEnergy(w io.Writer, attrib []SessionEnergy) {
	fmt.Fprintf(w, "%4s %10s %8s %9s %12s %12s %12s\n",
		"id", "head", "gated", "reused", "fe-saved", "overhead", "net")
	var saved, spent float64
	for _, a := range attrib {
		s := a.Session
		fmt.Fprintf(w, "%4d 0x%08x %8d %9d %12.1f %12.1f %12.1f\n",
			s.ID, s.Head, s.GatedCycles, s.ReusedInsts,
			a.FrontEndSaved, a.OverheadSpent, a.Net())
		saved += a.FrontEndSaved
		spent += a.OverheadSpent
	}
	fmt.Fprintf(w, "%4s %10s %8s %9s %12.1f %12.1f %12.1f\n",
		"", "total", "", "", saved, spent, saved-spent)
}

// SessionEnergyString renders the attribution table to a string.
func SessionEnergyString(attrib []SessionEnergy) string {
	var b strings.Builder
	WriteSessionEnergy(&b, attrib)
	return b.String()
}

// RegisterSessionMetrics registers per-session energy attribution aggregates
// as gauges with r, alongside a session count, so the live /metrics surface
// carries the power story of the run: total front-end energy saved, reuse
// overhead spent, the net effect, and the best and worst single-session net
// contributions. attrib must stay unmodified while r can snapshot.
func RegisterSessionMetrics(r *telemetry.Registry, attrib []SessionEnergy) {
	var saved, spent float64
	best, worst := 0.0, 0.0
	for i, a := range attrib {
		saved += a.FrontEndSaved
		spent += a.OverheadSpent
		n := a.Net()
		if i == 0 || n > best {
			best = n
		}
		if i == 0 || n < worst {
			worst = n
		}
	}
	r.CounterVal("power.sessions.count", uint64(len(attrib)))
	r.Gauge("power.sessions.fe_saved", func() float64 { return saved })
	r.Gauge("power.sessions.overhead", func() float64 { return spent })
	r.Gauge("power.sessions.net", func() float64 { return saved - spent })
	r.Gauge("power.sessions.best_net", func() float64 { return best })
	r.Gauge("power.sessions.worst_net", func() float64 { return worst })
}

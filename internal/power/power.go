// Package power implements a Wattch-style architectural power model: every
// microarchitectural structure is charged a per-access dynamic energy scaled
// by its geometry, plus a per-cycle floor of 10% of its peak dynamic power
// (Wattch's cc3 conditional-clocking discipline — idle or gated structures
// still leak and receive a gated clock).
//
// Energies are expressed in normalized units, not watts: the per-access
// constants are calibrated so the baseline per-component shares match the
// breakdowns published for Wattch-era 4-wide out-of-order processors. The
// paper's results are relative (power reduction against the conventional
// baseline), which such a calibration preserves.
package power

import (
	"fmt"
	"sort"
	"strings"

	"reuseiq/internal/pipeline"
)

// Component identifies one power-modeled structure.
type Component int

const (
	ICache Component = iota
	FetchLogic
	BPred
	Decode
	RenameTable
	IssueQueue
	LSQ
	RegFile
	FuncUnits
	ROB
	DCache
	L2Cache
	Clock
	// Overhead is the paper's added hardware: the logical register list,
	// the NBLT, and the classification/issue-state bits.
	Overhead
	// FilterCache and LoopCacheBuf are the prior-art comparators' added
	// hardware (zero unless configured).
	FilterCache
	LoopCacheBuf
	NumComponents
)

var componentNames = [NumComponents]string{
	"icache", "fetch", "bpred", "decode", "rename", "issueq", "lsq",
	"regfile", "fu", "rob", "dcache", "l2", "clock", "overhead",
	"filtercache", "loopcache",
}

func (c Component) String() string { return componentNames[c] }

// FrontEnd reports whether the component belongs to the gated pipeline
// front-end (the stages before register renaming).
func (c Component) FrontEnd() bool {
	switch c {
	case ICache, FetchLogic, BPred, Decode:
		return true
	}
	return false
}

// Params holds the per-event energies (normalized units) and cc3 floors.
// Geometry-dependent terms are scaled at Analyze time from the pipeline
// configuration.
type Params struct {
	// Instruction delivery.
	ICacheAccess  float64
	ITLBAccess    float64
	FetchPerInst  float64
	BpredDir      float64 // bimodal counter read/update
	BpredBTB      float64
	BpredRAS      float64
	DecodePerInst float64

	// Rename and register file.
	RenameMapOp float64 // map table read or write
	RegRead     float64
	RegWrite    float64

	// Issue queue (scaled by IQSize/64 where the paper's CAM/select
	// structures grow with entries).
	IQDispatch       float64 // full entry write
	IQWakeupPerEntry float64 // tag comparison per live entry per broadcast
	IQSelectPerEntry float64 // selection logic per entry per cycle
	IQIssueRead      float64 // payload read at issue
	IQCollapse       float64 // one entry-position shift
	IQPartialUpdate  float64 // reuse-path update (register info + ROB ptr)

	// Memory order and data supply.
	LSQDispatch  float64
	LSQSearch    float64 // associative load search, scaled by LSQSize/32
	DCacheAccess float64
	DTLBAccess   float64
	L2Access     float64

	// Back end.
	ROBOp         float64    // alloc or commit read, scaled by ROBSize/64
	FUOp          [5]float64 // indexed by fu.Kind: IntALU, IntMul, FPALU, FPMul, MemPort
	ClockPerCycle float64

	// Prior-art comparators (charged only when configured).
	L0Access    float64 // 512B filter cache
	LoopCacheOp float64 // loop-cache buffer read/write

	// Reuse-mechanism overhead.
	LRLWrite       float64 // 15 bits per entry (paper §2.2)
	LRLRead        float64
	NBLTLookup     float64 // 8-entry CAM
	NBLTInsert     float64
	ReuseBitsFloor float64 // per-cycle floor for the added bits/logic

	// FloorFrac is the cc3 idle fraction (Wattch: 10% of peak).
	FloorFrac float64
}

// DefaultParams returns the calibrated energy constants.
func DefaultParams() Params {
	return Params{
		ICacheAccess:  1.00,
		ITLBAccess:    0.08,
		FetchPerInst:  0.10,
		BpredDir:      0.35,
		BpredBTB:      0.45,
		BpredRAS:      0.06,
		DecodePerInst: 0.22,

		RenameMapOp: 0.10,
		RegRead:     0.22,
		RegWrite:    0.28,

		IQDispatch:       0.45,
		IQWakeupPerEntry: 0.007,
		IQSelectPerEntry: 0.003,
		IQIssueRead:      0.25,
		IQCollapse:       0.02,
		IQPartialUpdate:  0.15,

		LSQDispatch:  0.22,
		LSQSearch:    0.30,
		DCacheAccess: 2.00,
		DTLBAccess:   0.10,
		L2Access:     3.00,

		ROBOp:         0.26,
		FUOp:          [5]float64{0.80, 1.80, 1.50, 2.40, 0.45},
		ClockPerCycle: 2.60,

		L0Access:    0.14,
		LoopCacheOp: 0.10,

		LRLWrite:       0.05,
		LRLRead:        0.04,
		NBLTLookup:     0.07,
		NBLTInsert:     0.06,
		ReuseBitsFloor: 0.045,

		FloorFrac: 0.10,
	}
}

// Report is the energy accounting of one run.
type Report struct {
	Cycles  uint64
	Commits uint64
	// Energy is total energy per component (normalized units).
	Energy [NumComponents]float64
}

// Total returns the run's total energy.
func (r Report) Total() float64 {
	t := 0.0
	for _, e := range r.Energy {
		t += e
	}
	return t
}

// PerCycle returns component c's average per-cycle power.
func (r Report) PerCycle(c Component) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.Energy[c] / float64(r.Cycles)
}

// TotalPerCycle returns the average per-cycle power of the whole processor.
func (r Report) TotalPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.Total() / float64(r.Cycles)
}

// EPI returns energy per committed instruction.
func (r Report) EPI() float64 {
	if r.Commits == 0 {
		return 0
	}
	return r.Total() / float64(r.Commits)
}

// String renders the per-component breakdown, largest first.
func (r Report) String() string {
	type row struct {
		c Component
		e float64
	}
	rows := make([]row, 0, NumComponents)
	for c := Component(0); c < NumComponents; c++ {
		rows = append(rows, row{c, r.Energy[c]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].e > rows[j].e })
	var b strings.Builder
	total := r.Total()
	fmt.Fprintf(&b, "total energy %.1f units over %d cycles (%.3f/cycle)\n", total, r.Cycles, r.TotalPerCycle())
	for _, rw := range rows {
		fmt.Fprintf(&b, "  %-9s %12.1f  (%5.1f%%)\n", rw.c, rw.e, 100*rw.e/total)
	}
	return b.String()
}

// Analyze computes the energy report for a finished machine.
func Analyze(m *pipeline.Machine) Report {
	return AnalyzeWith(m, DefaultParams())
}

// AnalyzeWith computes the energy report using explicit parameters.
func AnalyzeWith(m *pipeline.Machine, p Params) Report {
	cfg := m.Cfg
	iqScale := float64(cfg.IQSize) / 64
	lsqScale := float64(cfg.LSQSize) / 32
	robScale := float64(cfg.ROBSize) / 64

	var r Report
	r.Cycles = m.C.Cycles
	r.Commits = m.C.Commits
	cyc := float64(m.C.Cycles)
	w := float64(cfg.FetchWidth)

	add := func(c Component, dynamic, peakPerCycle float64) {
		r.Energy[c] += dynamic + p.FloorFrac*peakPerCycle*cyc
	}

	// Instruction cache (+ ITLB folded in).
	add(ICache,
		float64(m.Hier.L1I.Accesses)*p.ICacheAccess+float64(m.Hier.ITLB.Accesses())*p.ITLBAccess,
		p.ICacheAccess+p.ITLBAccess)

	// Fetch logic: next-PC generation and the fetch queue.
	add(FetchLogic, float64(m.C.Fetches)*p.FetchPerInst, w*p.FetchPerInst)

	// Branch predictor: direction counters, BTB, RAS.
	bp := m.BP
	bpDyn := float64(bp.Lookups+bp.Updates)*p.BpredDir +
		float64(bp.BTBLookups+bp.BTBUpdates)*p.BpredBTB +
		float64(bp.RASOps)*p.BpredRAS
	add(BPred, bpDyn, p.BpredDir+p.BpredBTB+p.BpredRAS)

	add(Decode, float64(m.C.Decodes)*p.DecodePerInst, w*p.DecodePerInst)

	add(RenameTable, float64(m.RF.MapReads+m.RF.Renames)*p.RenameMapOp, 3*w*p.RenameMapOp)

	// Issue queue: dispatch writes, wakeup CAM, select, issue reads,
	// collapsing shifts, and the reuse path's partial updates.
	// Wakeup energy follows Wattch: each result broadcast drives the tag
	// lines of the whole window, so it scales with the queue size rather
	// than with instantaneous occupancy.
	iq := m.IQ
	iqDyn := float64(iq.Dispatches)*p.IQDispatch*iqScale +
		float64(m.C.WakeupBroadcasts)*float64(cfg.IQSize)*p.IQWakeupPerEntry +
		float64(m.C.IssueCycleScans)*p.IQSelectPerEntry +
		float64(iq.IssueReads)*p.IQIssueRead*iqScale +
		float64(iq.Collapses)*p.IQCollapse +
		float64(iq.PartialUpdates)*p.IQPartialUpdate*iqScale
	iqPeak := w*p.IQDispatch*iqScale + w*p.IQWakeupPerEntry*float64(cfg.IQSize) +
		p.IQSelectPerEntry*float64(cfg.IQSize) + w*p.IQIssueRead*iqScale
	add(IssueQueue, iqDyn, iqPeak)

	add(LSQ,
		float64(m.LSQ.Allocs)*p.LSQDispatch*lsqScale+float64(m.LSQ.Searches)*p.LSQSearch*lsqScale,
		2*(p.LSQDispatch+p.LSQSearch)*lsqScale)

	add(RegFile, float64(m.RF.Reads)*p.RegRead+float64(m.RF.Writes)*p.RegWrite,
		2*w*p.RegRead+w*p.RegWrite)

	fuDyn := 0.0
	fuPeak := 0.0
	for k := 0; k < len(m.FUs.Ops); k++ {
		fuDyn += float64(m.FUs.Ops[k]) * p.FUOp[k]
		fuPeak += p.FUOp[k]
	}
	add(FuncUnits, fuDyn, fuPeak)

	add(ROB, float64(m.ROB.Allocs+m.ROB.Commits)*p.ROBOp*robScale, 2*w*p.ROBOp*robScale)

	add(DCache,
		float64(m.Hier.L1D.Accesses)*p.DCacheAccess+float64(m.Hier.DTLB.Accesses())*p.DTLBAccess,
		2*(p.DCacheAccess+p.DTLBAccess))

	add(L2Cache,
		float64(m.Hier.L2.Accesses+m.Hier.L2WritebackAccesses)*p.L2Access,
		0.2*p.L2Access)

	// Global clock tree: scaled mildly by window size.
	r.Energy[Clock] += (p.ClockPerCycle * (0.8 + 0.2*iqScale)) * cyc

	// Prior-art comparator hardware.
	if m.Hier.L0I != nil {
		add(FilterCache, float64(m.Hier.L0I.Accesses)*p.L0Access, p.L0Access)
	}
	if m.LC != nil {
		add(LoopCacheBuf, float64(m.LC.Supplies+m.LC.Fills)*p.LoopCacheOp, p.LoopCacheOp)
	}

	// Reuse-mechanism overhead hardware.
	if cfg.Reuse.Enabled {
		ctl := m.Ctl
		ovDyn := float64(ctl.S.BufferedInsts)*p.LRLWrite +
			float64(ctl.S.ReuseRenames)*p.LRLRead +
			float64(ctl.NBLT().Lookups)*p.NBLTLookup +
			float64(ctl.NBLT().Inserts)*p.NBLTInsert
		r.Energy[Overhead] += ovDyn + p.ReuseBitsFloor*cyc
	}

	return r
}

// Saving describes a relative per-cycle power reduction of the reuse design
// against the baseline: positive means the reuse design uses less power.
type Saving struct {
	Component [NumComponents]float64
	Overall   float64
	// OverheadShare is the overhead hardware's share of the reuse run's
	// total power (paper Figure 6 reports it alongside the savings).
	OverheadShare float64
}

// Compare computes per-cycle power savings of reuse vs base.
func Compare(base, reuse Report) Saving {
	var s Saving
	for c := Component(0); c < NumComponents; c++ {
		b := base.PerCycle(c)
		if b > 0 {
			s.Component[c] = 1 - reuse.PerCycle(c)/b
		}
	}
	bt := base.TotalPerCycle()
	if bt > 0 {
		s.Overall = 1 - reuse.TotalPerCycle()/bt
	}
	rt := reuse.TotalPerCycle()
	if rt > 0 {
		s.OverheadShare = reuse.PerCycle(Overhead) / rt
	}
	return s
}

package progen

import (
	"strings"
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/interp"
)

func TestDeterministic(t *testing.T) {
	a := Generate(42, DefaultConfig())
	b := Generate(42, DefaultConfig())
	if a != b {
		t.Fatal("same seed produced different programs")
	}
	c := Generate(43, DefaultConfig())
	if a == c {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsAssemble(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		src := Generate(seed, DefaultConfig())
		if _, err := asm.Assemble(src); err != nil {
			t.Fatalf("seed %d does not assemble: %v\n%s", seed, err, src)
		}
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p, err := asm.Assemble(Generate(seed, DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		m := interp.New(p)
		m.MaxInsts = 5_000_000
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.State.Insts == 0 {
			t.Fatalf("seed %d executed nothing", seed)
		}
	}
}

func TestProgramsContainLoops(t *testing.T) {
	// The generator must regularly produce backward branches (the shape the
	// reuse mechanism targets).
	withLoops := 0
	for seed := int64(0); seed < 20; seed++ {
		src := Generate(seed, DefaultConfig())
		if strings.Contains(src, "gl") && strings.Contains(src, "bne") {
			withLoops++
		}
	}
	if withLoops < 15 {
		t.Errorf("only %d/20 programs contain loops", withLoops)
	}
}

func TestMemoryAccessesStayInArena(t *testing.T) {
	// Execute and verify nothing outside the arena page plus stack is
	// touched: the interpreter would still work, but wild addresses would
	// mean the masking is broken.
	p, err := asm.Assemble(Generate(7, DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The arena occupies one or two pages starting at the data base; the
	// interpreter's memory should have few touched pages (data + nothing
	// wild). Text is not in this memory.
	if pages := m.State.Mem.Pages(); pages > 4 {
		t.Errorf("generated program touched %d pages; address masking broken?", pages)
	}
}

// Package progen generates random, guaranteed-terminating assembly programs
// for differential testing: every program ends in HALT, every loop is
// counter-based with a bounded trip count, every branch except loop
// back-edges jumps forward, and every memory access is masked into a private
// arena. Programs exercise integer and FP arithmetic, loads and stores of
// all sizes, nested loops, forward branches, and procedure calls — the full
// surface the reuse-capable issue queue interacts with.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	// MaxDepth bounds loop nesting.
	MaxDepth int
	// MaxBlock bounds the instructions generated per straight-line block.
	MaxBlock int
	// MaxTrip bounds loop trip counts.
	MaxTrip int
	// Procs is the number of callable leaf procedures.
	Procs int
}

// DefaultConfig returns moderate program sizes (hundreds to a few thousand
// dynamic instructions).
func DefaultConfig() Config {
	return Config{MaxDepth: 3, MaxBlock: 8, MaxTrip: 12, Procs: 2}
}

const (
	arenaBytes = 4096
	arenaMask  = arenaBytes - 8 // keeps any 8-byte access in bounds
)

// Registers the generator plays with. $r16..$r19 are loop counters (one per
// nesting level), $r20 is the arena base, $r21 a scratch address register.
var dataRegs = []string{"$r8", "$r9", "$r10", "$r11", "$r12", "$r13", "$r14", "$r15"}
var fpRegs = []string{"$f2", "$f4", "$f6", "$f8", "$f10"}

type gen struct {
	cfg   Config
	rng   *rand.Rand
	b     strings.Builder
	label int
	depth int
}

// Generate produces one random program from the seed.
func Generate(seed int64, cfg Config) string {
	g := &gen{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	g.emit("\t.data")
	g.emit("arena:\t.space %d", arenaBytes)
	g.emit("\t.text")
	g.emit("main:")
	g.emit("\tla $r20, arena")
	// Seed the data registers deterministically but per-seed.
	for i, r := range dataRegs {
		g.emit("\tli %s, %d", r, g.rng.Int31n(1<<16)-1<<15+int32(i))
	}
	for i, r := range fpRegs {
		g.emit("\tli $r21, %d", g.rng.Int31n(1000)+int32(i))
		g.emit("\tcvt.d.w %s, $r21", r)
	}
	g.block()
	for i := 0; i < 2+g.rng.Intn(3); i++ {
		g.loopOrBlock()
	}
	g.emit("\thalt")
	for p := 0; p < cfg.Procs; p++ {
		g.emit("proc%d:", p)
		n := 1 + g.rng.Intn(5)
		for i := 0; i < n; i++ {
			g.aluOp()
		}
		g.emit("\tjr $ra")
	}
	return g.b.String()
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *gen) newLabel() string {
	g.label++
	return fmt.Sprintf("gl%d", g.label)
}

func (g *gen) reg() string  { return dataRegs[g.rng.Intn(len(dataRegs))] }
func (g *gen) freg() string { return fpRegs[g.rng.Intn(len(fpRegs))] }

// loopOrBlock emits either a counted loop (possibly nested) or a plain block.
func (g *gen) loopOrBlock() {
	if g.depth < g.cfg.MaxDepth && g.rng.Intn(3) != 0 {
		g.loop()
		return
	}
	g.block()
}

// loop emits a counted loop with a decrementing counter and a backward bne —
// exactly the shape the paper's loop detector looks for.
func (g *gen) loop() {
	ctr := fmt.Sprintf("$r%d", 16+g.depth)
	trip := 2 + g.rng.Intn(g.cfg.MaxTrip)
	head := g.newLabel()
	g.emit("\tli %s, %d", ctr, trip)
	g.emit("%s:", head)
	g.depth++
	n := 1 + g.rng.Intn(2)
	for i := 0; i < n; i++ {
		g.loopOrBlock()
	}
	g.depth--
	g.emit("\taddi %s, %s, -1", ctr, ctr)
	g.emit("\tbne %s, $zero, %s", ctr, head)
}

// block emits a straight-line run of random instructions with an optional
// forward branch over part of it.
func (g *gen) block() {
	n := 1 + g.rng.Intn(g.cfg.MaxBlock)
	skip := ""
	if g.rng.Intn(3) == 0 {
		// Forward conditional branch over the rest of the block.
		skip = g.newLabel()
		a, b := g.reg(), g.reg()
		switch g.rng.Intn(4) {
		case 0:
			g.emit("\tbeq %s, %s, %s", a, b, skip)
		case 1:
			g.emit("\tbne %s, %s, %s", a, b, skip)
		case 2:
			g.emit("\tblez %s, %s", a, skip)
		default:
			g.emit("\tbgez %s, %s", a, skip)
		}
	}
	for i := 0; i < n; i++ {
		g.randomOp()
	}
	if skip != "" {
		g.emit("%s:", skip)
	}
}

func (g *gen) randomOp() {
	switch g.rng.Intn(10) {
	case 0, 1, 2, 3:
		g.aluOp()
	case 4, 5:
		g.memOp()
	case 6:
		g.fpOp()
	case 7:
		g.fpMemOp()
	case 8:
		if g.cfg.Procs > 0 && g.depth <= 1 {
			g.emit("\tjal proc%d", g.rng.Intn(g.cfg.Procs))
		} else {
			g.aluOp()
		}
	default:
		g.aluOp()
	}
}

func (g *gen) aluOp() {
	d, a, b := g.reg(), g.reg(), g.reg()
	switch g.rng.Intn(12) {
	case 0:
		g.emit("\tadd %s, %s, %s", d, a, b)
	case 1:
		g.emit("\tsub %s, %s, %s", d, a, b)
	case 2:
		g.emit("\tand %s, %s, %s", d, a, b)
	case 3:
		g.emit("\tor %s, %s, %s", d, a, b)
	case 4:
		g.emit("\txor %s, %s, %s", d, a, b)
	case 5:
		g.emit("\tslt %s, %s, %s", d, a, b)
	case 6:
		g.emit("\tsll %s, %s, %d", d, a, g.rng.Intn(32))
	case 7:
		g.emit("\tsra %s, %s, %d", d, a, g.rng.Intn(32))
	case 8:
		g.emit("\taddi %s, %s, %d", d, a, g.rng.Intn(8192)-4096)
	case 9:
		g.emit("\tmul %s, %s, %s", d, a, b)
	case 10:
		g.emit("\tdivq %s, %s, %s", d, a, b) // division by zero is defined
	default:
		g.emit("\trem %s, %s, %s", d, a, b)
	}
}

// memAddr emits code computing an in-arena address into $r21, aligned to
// align bytes.
func (g *gen) memAddr(align int) {
	r := g.reg()
	g.emit("\tandi $r21, %s, %d", r, arenaMask&^(align-1))
	g.emit("\tadd $r21, $r21, $r20")
}

func (g *gen) memOp() {
	switch g.rng.Intn(7) {
	case 0:
		g.memAddr(4)
		g.emit("\tlw %s, 0($r21)", g.reg())
	case 1:
		g.memAddr(4)
		g.emit("\tsw %s, 0($r21)", g.reg())
	case 2:
		g.memAddr(1)
		g.emit("\tlb %s, 0($r21)", g.reg())
	case 3:
		g.memAddr(1)
		g.emit("\tlbu %s, 0($r21)", g.reg())
	case 4:
		g.memAddr(2)
		g.emit("\tlh %s, 0($r21)", g.reg())
	case 5:
		g.memAddr(2)
		g.emit("\tsh %s, 0($r21)", g.reg())
	default:
		g.memAddr(1)
		g.emit("\tsb %s, 0($r21)", g.reg())
	}
}

func (g *gen) fpOp() {
	d, a, b := g.freg(), g.freg(), g.freg()
	switch g.rng.Intn(6) {
	case 0:
		g.emit("\tadd.d %s, %s, %s", d, a, b)
	case 1:
		g.emit("\tsub.d %s, %s, %s", d, a, b)
	case 2:
		g.emit("\tmul.d %s, %s, %s", d, a, b)
	case 3:
		g.emit("\tneg.d %s, %s", d, a)
	case 4:
		g.emit("\tc.lt.d %s, %s, %s", g.reg(), a, b)
	default:
		g.emit("\tcvt.d.w %s, %s", d, g.reg())
	}
}

func (g *gen) fpMemOp() {
	g.memAddr(8)
	if g.rng.Intn(2) == 0 {
		g.emit("\tl.d %s, 0($r21)", g.freg())
	} else {
		g.emit("\ts.d %s, 0($r21)", g.freg())
	}
}

package workloads

import (
	"math"
	"testing"

	"reuseiq/internal/compiler"
	"reuseiq/internal/interp"
)

func TestAllKernelsValidate(t *testing.T) {
	ks := All()
	if len(ks) != 8 {
		t.Fatalf("got %d kernels", len(ks))
	}
	names := map[string]bool{}
	for _, k := range ks {
		if err := k.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		if names[k.Name] {
			t.Errorf("duplicate kernel %s", k.Name)
		}
		names[k.Name] = true
		if k.Source == "" {
			t.Errorf("%s: missing provenance", k.Name)
		}
	}
	for _, want := range []string{"adi", "aps", "btrix", "eflux", "tomcat", "tsf", "vpenta", "wss"} {
		if !names[want] {
			t.Errorf("paper Table 2 kernel %s missing", want)
		}
	}
}

func TestByName(t *testing.T) {
	if k, ok := ByName("btrix"); !ok || k.Name != "btrix" {
		t.Error("ByName(btrix) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

// Generated code must agree with the IR evaluator bit for bit on every array.
func TestKernelsCompileCorrectly(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			env, err := compiler.Eval(k.Prog)
			if err != nil {
				t.Fatal(err)
			}
			mp, src, err := compiler.Compile(k.Prog)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m := interp.New(mp)
			if err := m.Run(); err != nil {
				t.Fatalf("run: %v\n%s", err, src)
			}
			for _, a := range k.Prog.Arrays {
				base := mp.Symbols[a.Name]
				for i := 0; i < a.Len; i++ {
					want := env.Arrays[a.Name][i]
					got := m.State.Mem.ReadF64(base + uint32(8*i))
					if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
						t.Fatalf("%s[%d] = %v, want %v", a.Name, i, got, want)
					}
				}
			}
		})
	}
}

// The paper's loop-shape characterization must hold: aps/tsf/wss have small
// bodies, the other five have large ones, and distribution shrinks the large
// ones below the 64-entry threshold.
func TestKernelShapes(t *testing.T) {
	small := map[string]bool{"aps": true, "tsf": true, "wss": true}
	for _, k := range All() {
		body := compiler.MaxLoopBody(k.Prog)
		if small[k.Name] {
			if body > 3 {
				t.Errorf("%s: body has %d assigns, expected a tight loop", k.Name, body)
			}
			continue
		}
		if k.Name == "eflux" {
			// Medium body with a procedure call: the call blocks
			// distribution (splitLoop keeps call-containing loops whole).
			d := compiler.Distribute(k.Prog)
			if compiler.CountLoops(d) != compiler.CountLoops(k.Prog) {
				t.Errorf("eflux: call-containing loop was distributed")
			}
			continue
		}
		if body < 7 {
			t.Errorf("%s: body has %d assigns, expected a large loop", k.Name, body)
		}
		d := compiler.Distribute(k.Prog)
		if db := compiler.MaxLoopBody(d); db >= body {
			t.Errorf("%s: distribution did not shrink the body (%d -> %d)", k.Name, body, db)
		}
		// Distribution preserves semantics.
		e1, err := compiler.Eval(k.Prog)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := compiler.Eval(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range k.Prog.Arrays {
			for i := range e1.Arrays[a.Name] {
				if e1.Arrays[a.Name][i] != e2.Arrays[a.Name][i] {
					t.Fatalf("%s: distribution changed %s[%d]", k.Name, a.Name, i)
				}
			}
		}
	}
}

// Kernels must produce finite values (no runaway recurrences that would make
// power/performance numbers meaningless).
func TestKernelsNumericallySane(t *testing.T) {
	for _, k := range All() {
		env, err := compiler.Eval(k.Prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range k.Prog.Arrays {
			for i, v := range env.Arrays[a.Name] {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
					t.Fatalf("%s: %s[%d] = %v", k.Name, a.Name, i, v)
				}
			}
		}
	}
}

// Package workloads defines the eight array-intensive benchmarks of the
// paper's Table 2 as loop-nest kernels in the compiler IR. The original
// SPEC92/SPEC95/Perfect-Club Fortran codes are not redistributable (and no
// MIPS toolchain exists for this ISA), so each kernel is re-expressed with
// the dynamic loop-structure properties the paper reports and relies on:
//
//   - aps, tsf, wss: small tight innermost loops, capturable even by a
//     32-entry issue queue; tsf and wss have short trip counts, so larger
//     queues over-unroll them and delay gating (Figure 5's
//     non-monotonicity).
//   - adi, btrix, eflux, tomcat, vpenta: large innermost loop bodies that
//     only fit large queues; btrix's dominant loop is ~90 instructions
//     (paper §3), under-utilizing 128/256-entry queues in Code Reuse state
//     (Figure 8's outlier).
//   - eflux contains a small procedure call inside its main loop,
//     exercising the call-depth handling of §2.2.2.
//   - The large bodies are built from independent statement groups, so the
//     loop-distribution pass of Section 4 legally splits them into small
//     bufferable loops (Figure 9).
//
// All outer loops are non-bufferable (they contain inner loops) and exercise
// the NBLT.
package workloads

import "reuseiq/internal/compiler"

// Kernel is one benchmark.
type Kernel struct {
	Name   string
	Source string // provenance per the paper's Table 2
	Prog   *compiler.Program
}

// All returns the eight kernels in the paper's Table 2 order.
func All() []Kernel {
	return []Kernel{
		{"adi", "Livermore", ADI()},
		{"aps", "Perfect Club", APS()},
		{"btrix", "Spec92/NASA", BTRIX()},
		{"eflux", "Perfect Club", EFLUX()},
		{"tomcat", "Spec95", TOMCAT()},
		{"tsf", "Perfect Club", TSF()},
		{"vpenta", "Spec92/NASA", VPENTA()},
		{"wss", "Perfect Club", WSS()},
	}
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, bool) {
	for _, k := range All() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// Shorthand IR constructors.
type e = compiler.Expr

func c(v float64) compiler.Expr    { return compiler.Const(v) }
func v(name string) compiler.Expr  { return compiler.ScalarRef(name) }
func iv(name string) compiler.Expr { return compiler.IVar(name) }
func add(l, r e) compiler.Expr     { return compiler.Bin{Op: compiler.Add, L: l, R: r} }
func sub(l, r e) compiler.Expr     { return compiler.Bin{Op: compiler.Sub, L: l, R: r} }
func mul(l, r e) compiler.Expr     { return compiler.Bin{Op: compiler.Mul, L: l, R: r} }
func div(l, r e) compiler.Expr     { return compiler.Bin{Op: compiler.Div, L: l, R: r} }

func at(arr, ix string) compiler.Ref { return compiler.Ref{Array: arr, Index: compiler.IdxVar(ix)} }
func atOff(arr, ix string, off int) compiler.Ref {
	return compiler.Ref{Array: arr, Index: compiler.Idx(off, ix, 1)}
}
func set(dst compiler.Ref, ex e) compiler.Stmt { return compiler.Assign{Dest: &dst, E: ex} }
func sset(name string, ex e) compiler.Stmt     { return compiler.Assign{Scalar: name, E: ex} }
func loop(varName string, lo, hi int, body ...compiler.Stmt) compiler.Stmt {
	return compiler.Loop{Var: varName, Lo: lo, Hi: hi, Body: body}
}

// initRamp fills arr[i] = i*scale + bias over [0,n).
func initRamp(arr string, n int, scale, bias float64) compiler.Stmt {
	return loop("ii_"+arr, 0, n,
		set(at(arr, "ii_"+arr), add(mul(iv("ii_"+arr), c(scale)), c(bias))))
}

// APS — mesoscale hydrodynamics flux update: one small tight loop swept many
// times (~12 dynamic instructions per iteration).
func APS() *compiler.Program {
	const n, sweeps = 400, 40
	return &compiler.Program{
		Name: "aps",
		Arrays: []compiler.ArrayDecl{
			{Name: "u", Len: n}, {Name: "w", Len: n}, {Name: "flx", Len: n},
		},
		Body: []compiler.Stmt{
			initRamp("u", n, 0.01, 1),
			initRamp("w", n, -0.005, 2),
			loop("t", 0, sweeps,
				loop("i", 1, n,
					// First-order recurrence: the flux is smoothed along
					// the sweep direction, which bounds ILP the way the
					// original code's dependences do.
					set(at("flx", "i"), add(mul(at("u", "i"), c(0.3)), mul(atOff("flx", "i", -1), c(0.7)))),
					set(at("u", "i"), mul(at("flx", "i"), c(0.995))),
				),
			),
		},
	}
}

// TSF — turbulence statistics: a short-trip dot-product reduction re-entered
// many times (~8 dynamic instructions per iteration, trip count 45).
func TSF() *compiler.Program {
	const n, entries = 45, 300
	return &compiler.Program{
		Name:    "tsf",
		Scalars: []string{"s"},
		Arrays: []compiler.ArrayDecl{
			{Name: "x", Len: n}, {Name: "y", Len: n}, {Name: "out", Len: entries},
		},
		Body: []compiler.Stmt{
			initRamp("x", n, 0.1, 0.5),
			initRamp("y", n, 0.02, 1),
			loop("t", 0, entries,
				sset("s", c(0)),
				loop("i", 0, n,
					sset("s", add(v("s"), mul(at("x", "i"), at("y", "i")))),
				),
				set(at("out", "t"), v("s")),
			),
		},
	}
}

// WSS — shallow-water statistics: small loop, short trip count (60).
func WSS() *compiler.Program {
	const n, entries = 60, 250
	return &compiler.Program{
		Name: "wss",
		Arrays: []compiler.ArrayDecl{
			{Name: "w", Len: n}, {Name: "z", Len: n},
		},
		Body: []compiler.Stmt{
			initRamp("w", n, 0.03, 1),
			initRamp("z", n, 0.07, 0.25),
			loop("t", 0, entries,
				loop("i", 1, n,
					// Carried recurrence along the water column.
					set(at("w", "i"), add(mul(atOff("w", "i", -1), c(0.5)), at("z", "i"))),
					set(at("z", "i"), mul(at("z", "i"), c(0.999))),
				),
			),
		},
	}
}

// ADI — alternating direction implicit integration: forward and backward
// sweeps whose bodies hold three independent recurrence groups (~65 dynamic
// instructions per iteration; distribution splits them).
func ADI() *compiler.Program {
	const n, sweeps = 300, 12
	groups := func() []compiler.Stmt {
		var body []compiler.Stmt
		for _, g := range []string{"x", "y", "z"} {
			// Three chained statements per direction (recurrences on
			// one array family keep each group together).
			body = append(body,
				set(at(g+"1", "i"), sub(at(g+"1", "i"), mul(atOff(g+"1", "i", -1), c(0.25)))),
				set(at(g+"2", "i"), add(mul(at(g+"2", "i"), c(0.75)), at(g+"1", "i"))),
				set(at(g+"3", "i"), add(at(g+"3", "i"), mul(at(g+"2", "i"), c(0.125)))),
			)
		}
		return body
	}
	p := &compiler.Program{Name: "adi"}
	for _, g := range []string{"x", "y", "z"} {
		for _, s := range []string{"1", "2", "3"} {
			p.Arrays = append(p.Arrays, compiler.ArrayDecl{Name: g + s, Len: n})
		}
	}
	for _, a := range p.Arrays {
		p.Body = append(p.Body, initRamp(a.Name, n, 0.002, 1))
	}
	p.Body = append(p.Body,
		loop("t", 0, sweeps, compiler.Loop{Var: "i", Lo: 1, Hi: n, Body: groups()}))
	return p
}

// BTRIX — block tridiagonal solver, streaming update phase: a dominant
// ~90-instruction loop made of four independent 3-4 statement blocks over
// arrays whose working set (~130KB) overflows the 32KB L1 data cache but
// sits in the 256KB L2. The blocks carry no cross-iteration recurrence, so
// performance is limited by how many L1 misses the instruction window can
// overlap — exactly the under-utilization the paper reports for btrix when
// a ~90-instruction loop occupies a 128/256-entry queue in Code Reuse state
// (Figure 8).
func BTRIX() *compiler.Program {
	const n, outer = 1400, 6
	p := &compiler.Program{Name: "btrix"}
	blocks := []struct {
		a, b, cc string
	}{
		{"ba", "bb", "bc"}, {"bd", "be", "bf"}, {"bg", "bh", "bi"}, {"bj", "bk", "bl"},
	}
	for _, bl := range blocks {
		p.Arrays = append(p.Arrays,
			compiler.ArrayDecl{Name: bl.a, Len: n},
			compiler.ArrayDecl{Name: bl.b, Len: n},
			compiler.ArrayDecl{Name: bl.cc, Len: n})
	}
	for _, a := range p.Arrays {
		p.Body = append(p.Body, initRamp(a.Name, n, 0.0004, 1))
	}
	var body []compiler.Stmt
	for bi, bl := range blocks {
		k := 0.1 * float64(bi+1)
		body = append(body,
			set(at(bl.cc, "i"), add(mul(at(bl.a, "i"), c(k)), at(bl.b, "i"))),
			set(at(bl.a, "i"), add(mul(at(bl.a, "i"), c(1-k)), mul(at(bl.cc, "i"), c(k)))),
			set(at(bl.b, "i"), sub(at(bl.b, "i"), mul(at(bl.cc, "i"), c(k/2)))),
		)
	}
	// One extra statement on the first block makes 13 assignments total.
	body = append(body,
		set(at("ba", "i"), mul(at("ba", "i"), c(0.9999))))
	p.Body = append(p.Body,
		loop("t", 0, outer, compiler.Loop{Var: "i", Lo: 1, Hi: n, Body: body}))
	return p
}

// EFLUX — Euler flux computation: a medium loop (~50 instructions) with a
// small procedure call in the loop body (paper §2.2.2).
func EFLUX() *compiler.Program {
	const n, outer = 80, 40
	return &compiler.Program{
		Name:    "eflux",
		Scalars: []string{"gamma"},
		Arrays: []compiler.ArrayDecl{
			{Name: "p", Len: n + 1}, {Name: "q", Len: n + 1},
			{Name: "r", Len: n + 1}, {Name: "fl", Len: n + 1},
		},
		Procs: []compiler.Proc{{
			Name: "gam",
			Body: []compiler.Stmt{
				sset("gamma", add(mul(v("gamma"), c(0.5)), c(0.7))),
			},
		}},
		Body: []compiler.Stmt{
			initRamp("p", n+1, 0.05, 1),
			initRamp("q", n+1, 0.03, 2),
			initRamp("r", n+1, 0.01, 0.5),
			sset("gamma", c(1.4)),
			loop("t", 0, outer,
				loop("i", 1, n,
					// The pressure term divides by the upstream flux, a
					// carried chain through the unpipelined FP divider.
					set(at("fl", "i"), div(add(mul(at("p", "i"), at("q", "i")), mul(at("r", "i"), v("gamma"))),
						add(atOff("fl", "i", -1), c(2.5)))),
					set(at("p", "i"), add(mul(at("p", "i"), c(0.98)), mul(at("fl", "i"), c(0.02)))),
					set(at("q", "i"), sub(at("q", "i"), mul(atOff("q", "i", 1), c(0.01)))),
					set(at("r", "i"), add(at("r", "i"), mul(at("fl", "i"), c(0.005)))),
					compiler.Call{Proc: "gam"},
				),
			),
		},
	}
}

// TOMCAT — mesh generation: the largest body (~120 instructions), five
// independent coordinate-relaxation groups.
func TOMCAT() *compiler.Program {
	const n, outer = 100, 25
	p := &compiler.Program{Name: "tomcat"}
	groups := []string{"ma", "mb", "mc", "md", "me"}
	for _, g := range groups {
		p.Arrays = append(p.Arrays,
			compiler.ArrayDecl{Name: g + "x", Len: n + 2},
			compiler.ArrayDecl{Name: g + "y", Len: n + 2})
	}
	for _, a := range p.Arrays {
		p.Body = append(p.Body, initRamp(a.Name, n+2, 0.006, 1))
	}
	var body []compiler.Stmt
	for gi, g := range groups {
		k := 0.05 * float64(gi+1)
		body = append(body,
			set(at(g+"x", "i"),
				add(mul(add(atOff(g+"x", "i", -1), atOff(g+"x", "i", 1)), c(0.5)), c(k))),
			set(at(g+"y", "i"),
				add(mul(add(atOff(g+"y", "i", -1), atOff(g+"y", "i", 1)), c(0.5)), mul(at(g+"x", "i"), c(k)))),
			set(at(g+"x", "i"), mul(at(g+"x", "i"), c(1-k/10))),
		)
	}
	p.Body = append(p.Body,
		loop("t", 0, outer, compiler.Loop{Var: "i", Lo: 1, Hi: n + 1, Body: body}))
	return p
}

// VPENTA — pentadiagonal inversion: ~100-instruction body, four independent
// elimination groups with wider stencils.
func VPENTA() *compiler.Program {
	const n, outer = 90, 25
	p := &compiler.Program{Name: "vpenta"}
	groups := []string{"va", "vb", "vc", "vd"}
	for _, g := range groups {
		p.Arrays = append(p.Arrays,
			compiler.ArrayDecl{Name: g + "1", Len: n + 4},
			compiler.ArrayDecl{Name: g + "2", Len: n + 4})
	}
	for _, a := range p.Arrays {
		p.Body = append(p.Body, initRamp(a.Name, n+4, 0.008, 1))
	}
	var body []compiler.Stmt
	for gi, g := range groups {
		k := 0.04 * float64(gi+1)
		body = append(body,
			set(at(g+"1", "i"),
				sub(at(g+"1", "i"), add(mul(atOff(g+"1", "i", -1), c(k)), mul(atOff(g+"1", "i", -2), c(k/2))))),
			set(at(g+"2", "i"),
				add(mul(at(g+"2", "i"), c(1-k)), mul(at(g+"1", "i"), c(k)))),
			set(at(g+"2", "i"),
				add(at(g+"2", "i"), mul(atOff(g+"2", "i", 2), c(0.001)))),
		)
	}
	// Two extra statements on the first group: 14 assignments total.
	body = append(body,
		set(at("va1", "i"), mul(at("va1", "i"), c(0.9995))),
		set(at("va2", "i"), add(at("va2", "i"), c(0.0001))),
	)
	p.Body = append(p.Body,
		loop("t", 0, outer, compiler.Loop{Var: "i", Lo: 2, Hi: n + 2, Body: body}))
	return p
}

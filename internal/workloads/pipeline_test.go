package workloads

import (
	"testing"

	"reuseiq/internal/compiler"
	"reuseiq/internal/interp"
	"reuseiq/internal/pipeline"
)

// Every kernel's generated code must produce identical array contents on the
// out-of-order reuse pipeline and on the functional interpreter — the
// end-to-end correctness statement for the whole experiment stack.
func TestKernelsCorrectOnPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel simulations")
	}
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			mp, _, err := compiler.Compile(k.Prog)
			if err != nil {
				t.Fatal(err)
			}
			g := interp.New(mp)
			g.MaxInsts = 100_000_000
			if err := g.Run(); err != nil {
				t.Fatal(err)
			}
			m := pipeline.New(pipeline.DefaultConfig(), mp)
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if uint64(m.C.Commits) != g.State.Insts {
				t.Errorf("committed %d, interp executed %d", m.C.Commits, g.State.Insts)
			}
			if !g.State.Mem.Equal(m.Mem) {
				t.Fatal("final memory differs between pipeline and interpreter")
			}
		})
	}
}

// The distributed variants must also be pipeline-correct (Figure 9's runs
// depend on it).
func TestDistributedKernelsCorrectOnPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel simulations")
	}
	for _, name := range []string{"btrix", "tomcat", "adi"} {
		k, _ := ByName(name)
		mp, _, err := compiler.Compile(compiler.Distribute(k.Prog))
		if err != nil {
			t.Fatal(err)
		}
		g := interp.New(mp)
		g.MaxInsts = 100_000_000
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		m := pipeline.New(pipeline.DefaultConfig(), mp)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if !g.State.Mem.Equal(m.Mem) {
			t.Fatalf("%s distributed: memory differs", name)
		}
	}
}

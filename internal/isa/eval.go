package isa

import "math"

// Operands carries the dynamic input values of one instruction instance.
// A and B are the integer values of the rs and rt sources; FA and FB the FP
// values when the corresponding source is an FP register. PC is the byte
// address of the instruction itself.
type Operands struct {
	A, B   int32
	FA, FB float64
	PC     uint32
}

// Result is the outcome of evaluating one instruction (excluding the memory
// access itself, which the caller performs using Addr).
type Result struct {
	I int32   // integer destination value
	F float64 // FP destination value

	Addr      uint32 // effective address (loads/stores)
	StoreI    int32  // integer store data (SW/SB)
	StoreF    float64
	Taken     bool   // control transfer taken
	Target    uint32 // control transfer destination when Taken
	Halt      bool   // OpHALT reached
	DivByZero bool   // integer division by zero (result forced to 0)
}

// Eval computes the architectural effect of one instruction given its
// operand values. It is the single source of truth for instruction semantics,
// shared by the functional interpreter and the pipeline's execute stage.
func Eval(in Inst, ops Operands) Result {
	var r Result
	a, b := ops.A, ops.B
	fa, fb := ops.FA, ops.FB
	switch in.Op {
	case OpADD:
		r.I = a + b
	case OpSUB:
		r.I = a - b
	case OpAND:
		r.I = a & b
	case OpOR:
		r.I = a | b
	case OpXOR:
		r.I = a ^ b
	case OpNOR:
		r.I = ^(a | b)
	case OpSLT:
		r.I = boolToInt(a < b)
	case OpSLTU:
		r.I = boolToInt(uint32(a) < uint32(b))
	case OpSLL:
		r.I = b << uint(in.Imm&31)
	case OpSRL:
		r.I = int32(uint32(b) >> uint(in.Imm&31))
	case OpSRA:
		r.I = b >> uint(in.Imm&31)
	case OpSLLV:
		r.I = b << uint(a&31)
	case OpSRLV:
		r.I = int32(uint32(b) >> uint(a&31))
	case OpSRAV:
		r.I = b >> uint(a&31)
	case OpMUL:
		r.I = a * b
	case OpDIVQ:
		if b == 0 {
			r.DivByZero = true
		} else if a == math.MinInt32 && b == -1 {
			r.I = math.MinInt32 // overflow wraps, as on real hardware
		} else {
			r.I = a / b
		}
	case OpREM:
		if b == 0 {
			r.DivByZero = true
		} else if a == math.MinInt32 && b == -1 {
			r.I = 0
		} else {
			r.I = a % b
		}

	case OpADDI:
		r.I = a + in.Imm
	case OpANDI:
		r.I = a & in.Imm
	case OpORI:
		r.I = a | in.Imm
	case OpXORI:
		r.I = a ^ in.Imm
	case OpSLTI:
		r.I = boolToInt(a < in.Imm)
	case OpSLTIU:
		r.I = boolToInt(uint32(a) < uint32(in.Imm))
	case OpLUI:
		r.I = in.Imm << 16

	case OpLW, OpLB, OpLBU, OpLH, OpLHU, OpLD:
		r.Addr = uint32(a + in.Imm)
	case OpSW, OpSB, OpSH:
		r.Addr = uint32(a + in.Imm)
		r.StoreI = b
	case OpSD:
		r.Addr = uint32(a + in.Imm)
		r.StoreF = fb

	case OpBEQ:
		r.Taken = a == b
	case OpBNE:
		r.Taken = a != b
	case OpBLEZ:
		r.Taken = a <= 0
	case OpBGTZ:
		r.Taken = a > 0
	case OpBLTZ:
		r.Taken = a < 0
	case OpBGEZ:
		r.Taken = a >= 0

	case OpJ:
		r.Taken = true
		r.Target = in.Target
	case OpJAL:
		r.Taken = true
		r.Target = in.Target
		r.I = int32(ops.PC + 4)
	case OpJR:
		r.Taken = true
		r.Target = uint32(a)
	case OpJALR:
		r.Taken = true
		r.Target = uint32(a)
		r.I = int32(ops.PC + 4)

	case OpADDD:
		r.F = fa + fb
	case OpSUBD:
		r.F = fa - fb
	case OpMULD:
		r.F = fa * fb
	case OpDIVD:
		r.F = fa / fb
	case OpNEGD:
		r.F = -fa
	case OpABSD:
		r.F = math.Abs(fa)
	case OpMOVD:
		r.F = fa
	case OpCVTIF:
		r.F = float64(a)
	case OpCVTFI:
		r.I = truncToInt32(fa)
	case OpCLTD:
		r.I = boolToInt(fa < fb)
	case OpCLED:
		r.I = boolToInt(fa <= fb)
	case OpCEQD:
		r.I = boolToInt(fa == fb)

	case OpHALT:
		r.Halt = true
	case OpNOP:
	}
	if in.Op.Info().Class == ClassBranch && r.Taken {
		r.Target = in.BranchTarget(ops.PC)
	}
	return r
}

func boolToInt(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// truncToInt32 converts a double to int32 with saturation on overflow and
// zero on NaN, mirroring common hardware behaviour.
func truncToInt32(f float64) int32 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	}
	return int32(f)
}

package isa

import "fmt"

// Inst is one decoded instruction. Rs/Rt/Rd hold architectural register
// numbers whose kind (integer or FP) depends on the operation; Imm holds the
// sign- or zero-extended immediate (or the shift amount for constant shifts);
// Target holds the absolute byte address of a J/JAL target.
type Inst struct {
	Op     Op
	Rd     uint8
	Rs     uint8
	Rt     uint8
	Imm    int32
	Target uint32
}

// Nop is the canonical no-operation instruction.
var Nop = Inst{Op: OpNOP}

// BranchTarget returns the destination of a taken conditional branch located
// at address pc (PC-relative, word-scaled, no delay slot).
func (in Inst) BranchTarget(pc uint32) uint32 {
	return pc + 4 + uint32(in.Imm)*4
}

// StaticTarget returns the statically known control target of in at address
// pc, and whether one exists (true for branches and direct jumps/calls,
// false for register-indirect jumps).
func (in Inst) StaticTarget(pc uint32) (uint32, bool) {
	switch in.Op.Info().Class {
	case ClassBranch:
		return in.BranchTarget(pc), true
	case ClassJump:
		return in.Target, true
	case ClassCall:
		if in.Op == OpJAL {
			return in.Target, true
		}
	}
	return 0, false
}

// String renders in as assembly, using pc to resolve branch targets when
// pc is meaningful; Disasm is the address-aware variant.
func (in Inst) String() string { return in.Disasm(0) }

// Disasm renders the instruction as assembler text assuming it is located at
// address pc (branch targets print as absolute hex addresses).
//
//reuse:allow-alloc debug disassembler; hot callers only invoke it under a nil-guarded tap
func (in Inst) Disasm(pc uint32) string {
	info := in.Op.Info()
	switch in.Op {
	case OpNOP, OpHALT:
		return info.Name
	case OpJ, OpJAL:
		return fmt.Sprintf("%s 0x%x", info.Name, in.Target)
	case OpJR:
		return fmt.Sprintf("jr %s", IntReg(in.Rs))
	case OpJALR:
		return fmt.Sprintf("jalr %s, %s", IntReg(in.Rd), IntReg(in.Rs))
	case OpLUI:
		return fmt.Sprintf("lui %s, %d", IntReg(in.Rt), in.Imm)
	}
	switch info.Class {
	case ClassBranch:
		tgt := in.BranchTarget(pc)
		if info.ReadsRt {
			return fmt.Sprintf("%s %s, %s, 0x%x", info.Name, IntReg(in.Rs), IntReg(in.Rt), tgt)
		}
		return fmt.Sprintf("%s %s, 0x%x", info.Name, IntReg(in.Rs), tgt)
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", info.Name, in.destReg(), in.Imm, IntReg(in.Rs))
	case ClassStore:
		val := Reg{KindInt, in.Rt}
		if info.RtFP {
			val = Reg{KindFP, in.Rt}
		}
		return fmt.Sprintf("%s %s, %d(%s)", info.Name, val, in.Imm, IntReg(in.Rs))
	}
	switch info.Fmt {
	case FmtI:
		return fmt.Sprintf("%s %s, %s, %d", info.Name, in.destReg(), IntReg(in.Rs), in.Imm)
	case FmtF:
		d := in.destReg()
		rs := Reg{KindInt, in.Rs}
		if info.RsFP {
			rs = Reg{KindFP, in.Rs}
		}
		if info.ReadsRt {
			rt := Reg{KindFP, in.Rt}
			return fmt.Sprintf("%s %s, %s, %s", info.Name, d, rs, rt)
		}
		return fmt.Sprintf("%s %s, %s", info.Name, d, rs)
	default: // FmtR
		if info.UsesShamt {
			return fmt.Sprintf("%s %s, %s, %d", info.Name, IntReg(in.Rd), IntReg(in.Rt), in.Imm)
		}
		switch in.Op {
		case OpSLLV, OpSRLV, OpSRAV:
			// Variable shifts use MIPS operand order: rd, rt (value),
			// rs (shift amount) — matching the assembler's parse.
			return fmt.Sprintf("%s %s, %s, %s", info.Name, IntReg(in.Rd), IntReg(in.Rt), IntReg(in.Rs))
		}
		return fmt.Sprintf("%s %s, %s, %s", info.Name, IntReg(in.Rd), IntReg(in.Rs), IntReg(in.Rt))
	}
}

func (in Inst) destReg() Reg {
	if d, ok := in.Dest(); ok {
		return d
	}
	info := in.Op.Info()
	kind := KindInt
	if info.DestFP {
		kind = KindFP
	}
	if info.DestIsRt {
		return Reg{kind, in.Rt}
	}
	return Reg{kind, in.Rd}
}

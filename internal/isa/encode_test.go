package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleInsts covers every op with representative operands.
func sampleInsts() []Inst {
	return []Inst{
		{Op: OpADD, Rd: 3, Rs: 1, Rt: 2},
		{Op: OpSUB, Rd: 31, Rs: 30, Rt: 29},
		{Op: OpAND, Rd: 5, Rs: 6, Rt: 7},
		{Op: OpOR, Rd: 8, Rs: 9, Rt: 10},
		{Op: OpXOR, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpNOR, Rd: 4, Rs: 5, Rt: 6},
		{Op: OpSLT, Rd: 7, Rs: 8, Rt: 9},
		{Op: OpSLTU, Rd: 10, Rs: 11, Rt: 12},
		{Op: OpSLL, Rd: 2, Rt: 3, Imm: 31},
		{Op: OpSRL, Rd: 2, Rt: 3, Imm: 0},
		{Op: OpSRA, Rd: 2, Rt: 3, Imm: 16},
		{Op: OpSLLV, Rd: 2, Rt: 3, Rs: 4},
		{Op: OpSRLV, Rd: 2, Rt: 3, Rs: 4},
		{Op: OpSRAV, Rd: 2, Rt: 3, Rs: 4},
		{Op: OpMUL, Rd: 13, Rs: 14, Rt: 15},
		{Op: OpDIVQ, Rd: 16, Rs: 17, Rt: 18},
		{Op: OpREM, Rd: 19, Rs: 20, Rt: 21},
		{Op: OpADDI, Rt: 1, Rs: 2, Imm: -32768},
		{Op: OpANDI, Rt: 1, Rs: 2, Imm: 65535},
		{Op: OpORI, Rt: 1, Rs: 2, Imm: 4097},
		{Op: OpXORI, Rt: 1, Rs: 2, Imm: 0},
		{Op: OpSLTI, Rt: 1, Rs: 2, Imm: 32767},
		{Op: OpSLTIU, Rt: 1, Rs: 2, Imm: -1},
		{Op: OpLUI, Rt: 1, Imm: 0x1000},
		{Op: OpLW, Rt: 4, Rs: 5, Imm: -4},
		{Op: OpLB, Rt: 4, Rs: 5, Imm: 100},
		{Op: OpLBU, Rt: 4, Rs: 5, Imm: 0},
		{Op: OpLH, Rt: 4, Rs: 5, Imm: 2},
		{Op: OpLHU, Rt: 4, Rs: 5, Imm: -2},
		{Op: OpSW, Rt: 4, Rs: 5, Imm: 8},
		{Op: OpSB, Rt: 4, Rs: 5, Imm: -1},
		{Op: OpSH, Rt: 4, Rs: 5, Imm: 6},
		{Op: OpLD, Rt: 6, Rs: 5, Imm: 16},
		{Op: OpSD, Rt: 6, Rs: 5, Imm: -16},
		{Op: OpBEQ, Rs: 1, Rt: 2, Imm: -10},
		{Op: OpBNE, Rs: 1, Rt: 2, Imm: 10},
		{Op: OpBLEZ, Rs: 1, Imm: 5},
		{Op: OpBGTZ, Rs: 1, Imm: -5},
		{Op: OpBLTZ, Rs: 1, Imm: 0},
		{Op: OpBGEZ, Rs: 1, Imm: 100},
		{Op: OpJ, Target: 0x0040_0000},
		{Op: OpJAL, Target: 0x0040_1ffc},
		{Op: OpJR, Rs: 31},
		{Op: OpJALR, Rd: 31, Rs: 4},
		{Op: OpADDD, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpSUBD, Rd: 4, Rs: 5, Rt: 6},
		{Op: OpMULD, Rd: 7, Rs: 8, Rt: 9},
		{Op: OpDIVD, Rd: 10, Rs: 11, Rt: 12},
		{Op: OpNEGD, Rd: 1, Rs: 2},
		{Op: OpABSD, Rd: 3, Rs: 4},
		{Op: OpMOVD, Rd: 5, Rs: 6},
		{Op: OpCVTIF, Rd: 1, Rs: 9},
		{Op: OpCVTFI, Rd: 9, Rs: 1},
		{Op: OpCLTD, Rd: 2, Rs: 3, Rt: 4},
		{Op: OpCLED, Rd: 2, Rs: 3, Rt: 4},
		{Op: OpCEQD, Rd: 2, Rs: 3, Rt: 4},
		{Op: OpNOP},
		{Op: OpHALT},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, in := range sampleInsts() {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)) = 0x%08x: %v", in, w, err)
		}
		// Canonicalize: encoding drops register fields that the op does
		// not use, so compare through re-encoding.
		w2, err := Encode(got)
		if err != nil {
			t.Fatalf("re-Encode(%v): %v", got, err)
		}
		if w2 != w {
			t.Errorf("round trip of %v: 0x%08x -> %v -> 0x%08x", in, w, got, w2)
		}
		if got.Op != in.Op {
			t.Errorf("op changed: %v -> %v", in.Op, got.Op)
		}
	}
}

func TestSampleCoversAllOps(t *testing.T) {
	seen := map[Op]bool{}
	for _, in := range sampleInsts() {
		seen[in.Op] = true
	}
	for op := OpInvalid + 1; op < numOps; op++ {
		if !seen[op] {
			t.Errorf("op %v missing from encode/decode samples", op)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []Inst{
		{Op: OpInvalid},
		{Op: OpADDI, Imm: 1 << 15},      // signed overflow
		{Op: OpADDI, Imm: -(1<<15 + 1)}, // signed underflow
		{Op: OpANDI, Imm: -1},           // negative for unsigned imm
		{Op: OpANDI, Imm: 1 << 16},      // unsigned overflow
		{Op: OpSLL, Imm: 32},            // shamt range
		{Op: OpSLL, Imm: -1},            //
		{Op: OpJ, Target: 2},            // unaligned
		{Op: OpJ, Target: 1 << 28},      // out of 26-bit word range
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	words := []uint32{
		0x0000_0033,        // R-format, undefined funct 0x33
		0x4400_0033,        // FP, undefined funct
		0xfc00_0000,        // undefined primary opcode 0x3f
		uint32(0x39) << 26, // undefined primary opcode
	}
	for _, w := range words {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(0x%08x) succeeded, want error", w)
		}
	}
}

// TestDecodeTotality: Decode never panics on arbitrary words, and any word it
// accepts re-encodes to itself.
func TestDecodeTotality(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		w2, err := Encode(in)
		if err != nil {
			// Decoding accepted a word that encodes fields the op
			// cannot express (never expected).
			t.Logf("decoded %v from 0x%08x but cannot re-encode: %v", in, w, err)
			return false
		}
		// Re-encoding may canonicalize don't-care bits; decoding again
		// must reach a fixed point.
		in2, err := Decode(w2)
		if err != nil {
			return false
		}
		w3, err := Encode(in2)
		return err == nil && w3 == w2
	}
	cfg := &quick.Config{MaxCount: 20000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOpByName(t *testing.T) {
	for op := OpInvalid + 1; op < numOps; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v", op.String(), got, ok, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName(bogus) succeeded")
	}
}

// Package isa defines the 32-bit MIPS-like instruction set simulated by this
// repository: opcodes, instruction formats, binary encoding, register
// conventions, and the pure evaluation semantics shared by the functional
// interpreter and the out-of-order pipeline model.
//
// The ISA is deliberately close to MIPS-I (the paper models a MIPS
// R10000-style datapath) with two simplifications that do not affect the
// mechanism under study: there are no branch delay slots, and multiply/divide
// write a general-purpose destination register directly instead of HI/LO.
package isa

import "fmt"

// Op identifies one operation of the instruction set.
type Op uint8

// Integer ALU, shift and compare operations (R-format unless noted).
const (
	OpInvalid Op = iota

	OpADD  // rd = rs + rt
	OpSUB  // rd = rs - rt
	OpAND  // rd = rs & rt
	OpOR   // rd = rs | rt
	OpXOR  // rd = rs ^ rt
	OpNOR  // rd = ^(rs | rt)
	OpSLT  // rd = (rs < rt) signed
	OpSLTU // rd = (rs < rt) unsigned
	OpSLL  // rd = rt << shamt
	OpSRL  // rd = rt >> shamt (logical)
	OpSRA  // rd = rt >> shamt (arithmetic)
	OpSLLV // rd = rt << (rs&31)
	OpSRLV // rd = rt >> (rs&31) (logical)
	OpSRAV // rd = rt >> (rs&31) (arithmetic)
	OpMUL  // rd = rs * rt (low 32 bits)
	OpDIVQ // rd = rs / rt (signed quotient; 0 if rt == 0)
	OpREM  // rd = rs % rt (signed remainder; 0 if rt == 0)

	// Immediate forms (I-format).
	OpADDI  // rt = rs + imm
	OpANDI  // rt = rs & uimm
	OpORI   // rt = rs | uimm
	OpXORI  // rt = rs ^ uimm
	OpSLTI  // rt = (rs < imm) signed
	OpSLTIU // rt = (rs < imm) unsigned
	OpLUI   // rt = imm << 16

	// Memory (I-format; address = rs + imm).
	OpLW  // rt = mem32[rs+imm]
	OpLB  // rt = sx8(mem8[rs+imm])
	OpLBU // rt = zx8(mem8[rs+imm])
	OpLH  // rt = sx16(mem16[rs+imm])
	OpLHU // rt = zx16(mem16[rs+imm])
	OpSW  // mem32[rs+imm] = rt
	OpSB  // mem8[rs+imm] = rt
	OpSH  // mem16[rs+imm] = rt
	OpLD  // ft = mem64[rs+imm] (FP double load)
	OpSD  // mem64[rs+imm] = ft (FP double store)

	// Control (I-format branches, J-format jumps, R-format register jumps).
	OpBEQ  // if rs == rt goto PC+4+imm*4
	OpBNE  // if rs != rt goto PC+4+imm*4
	OpBLEZ // if rs <= 0 goto ...
	OpBGTZ // if rs > 0 goto ...
	OpBLTZ // if rs < 0 goto ...
	OpBGEZ // if rs >= 0 goto ...
	OpJ    // goto target
	OpJAL  // r31 = PC+4; goto target
	OpJR   // goto rs
	OpJALR // rd = PC+4; goto rs

	// Floating point, double precision (F-format: fd, fs, ft).
	OpADDD // fd = fs + ft
	OpSUBD // fd = fs - ft
	OpMULD // fd = fs * ft
	OpDIVD // fd = fs / ft
	OpNEGD // fd = -fs
	OpABSD // fd = |fs|
	OpMOVD // fd = fs

	// Int <-> FP conversions and FP compares writing an integer register.
	OpCVTIF // ft(fp dest) = double(rs)   — convert int to double
	OpCVTFI // rd(int dest) = int32(fs)   — truncate double to int
	OpCLTD  // rd = (fs < ft) ? 1 : 0
	OpCLED  // rd = (fs <= ft) ? 1 : 0
	OpCEQD  // rd = (fs == ft) ? 1 : 0

	// Miscellaneous.
	OpNOP  // no operation
	OpHALT // stop simulation when this instruction commits

	numOps
)

// NumOps is the number of defined operations (for table sizing in tests).
const NumOps = int(numOps)

// Class groups operations by the pipeline resources they use.
type Class uint8

const (
	ClassNop    Class = iota
	ClassIntALU       // single-cycle integer ALU / shift / compare
	ClassIntMul       // integer multiply / divide
	ClassFPALU        // FP add/sub/compare/convert/move
	ClassFPMul        // FP multiply
	ClassFPDiv        // FP divide (uses the FP multiplier, long latency)
	ClassLoad
	ClassStore
	ClassBranch // conditional branch
	ClassJump   // unconditional direct jump
	ClassCall   // direct or indirect call (writes link register)
	ClassReturn // indirect jump (JR)
	ClassHalt
)

// Format describes how an instruction's fields map onto the 32-bit encoding.
type Format uint8

const (
	FmtR Format = iota // rd, rs, rt (+shamt)
	FmtI               // rt, rs, imm16
	FmtJ               // target26
	FmtF               // fd, fs, ft (FP register operands)
)

// Info is the static description of one operation.
type Info struct {
	Name  string
	Class Class
	Fmt   Format

	// Register usage. Source and destination register kinds depend on the
	// op (e.g. CVTIF reads an int register and writes an FP register).
	ReadsRs, ReadsRt bool
	RsFP, RtFP       bool // whether the rs/rt source is an FP register
	WritesDest       bool
	DestFP           bool
	// DestIsRt is true for I-format ops whose destination sits in the rt
	// field rather than rd.
	DestIsRt bool

	// UsesShamt is true for constant shifts (imm holds the shift amount).
	UsesShamt bool
	// SignedImm is true when the 16-bit immediate is sign-extended.
	SignedImm bool
}

var infos = [numOps]Info{
	OpInvalid: {Name: "invalid", Class: ClassNop, Fmt: FmtR},

	OpADD:  {Name: "add", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpSUB:  {Name: "sub", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpAND:  {Name: "and", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpOR:   {Name: "or", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpXOR:  {Name: "xor", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpNOR:  {Name: "nor", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpSLT:  {Name: "slt", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpSLTU: {Name: "sltu", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpSLL:  {Name: "sll", Class: ClassIntALU, Fmt: FmtR, ReadsRt: true, WritesDest: true, UsesShamt: true},
	OpSRL:  {Name: "srl", Class: ClassIntALU, Fmt: FmtR, ReadsRt: true, WritesDest: true, UsesShamt: true},
	OpSRA:  {Name: "sra", Class: ClassIntALU, Fmt: FmtR, ReadsRt: true, WritesDest: true, UsesShamt: true},
	OpSLLV: {Name: "sllv", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpSRLV: {Name: "srlv", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpSRAV: {Name: "srav", Class: ClassIntALU, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpMUL:  {Name: "mul", Class: ClassIntMul, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpDIVQ: {Name: "divq", Class: ClassIntMul, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},
	OpREM:  {Name: "rem", Class: ClassIntMul, Fmt: FmtR, ReadsRs: true, ReadsRt: true, WritesDest: true},

	OpADDI:  {Name: "addi", Class: ClassIntALU, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true, SignedImm: true},
	OpANDI:  {Name: "andi", Class: ClassIntALU, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true},
	OpORI:   {Name: "ori", Class: ClassIntALU, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true},
	OpXORI:  {Name: "xori", Class: ClassIntALU, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true},
	OpSLTI:  {Name: "slti", Class: ClassIntALU, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true, SignedImm: true},
	OpSLTIU: {Name: "sltiu", Class: ClassIntALU, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true, SignedImm: true},
	OpLUI:   {Name: "lui", Class: ClassIntALU, Fmt: FmtI, WritesDest: true, DestIsRt: true},

	OpLW:  {Name: "lw", Class: ClassLoad, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true, SignedImm: true},
	OpLB:  {Name: "lb", Class: ClassLoad, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true, SignedImm: true},
	OpLBU: {Name: "lbu", Class: ClassLoad, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true, SignedImm: true},
	OpLH:  {Name: "lh", Class: ClassLoad, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true, SignedImm: true},
	OpLHU: {Name: "lhu", Class: ClassLoad, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true, SignedImm: true},
	OpSW:  {Name: "sw", Class: ClassStore, Fmt: FmtI, ReadsRs: true, ReadsRt: true, SignedImm: true},
	OpSB:  {Name: "sb", Class: ClassStore, Fmt: FmtI, ReadsRs: true, ReadsRt: true, SignedImm: true},
	OpSH:  {Name: "sh", Class: ClassStore, Fmt: FmtI, ReadsRs: true, ReadsRt: true, SignedImm: true},
	OpLD:  {Name: "l.d", Class: ClassLoad, Fmt: FmtI, ReadsRs: true, WritesDest: true, DestIsRt: true, DestFP: true, SignedImm: true},
	OpSD:  {Name: "s.d", Class: ClassStore, Fmt: FmtI, ReadsRs: true, ReadsRt: true, RtFP: true, SignedImm: true},

	OpBEQ:  {Name: "beq", Class: ClassBranch, Fmt: FmtI, ReadsRs: true, ReadsRt: true, SignedImm: true},
	OpBNE:  {Name: "bne", Class: ClassBranch, Fmt: FmtI, ReadsRs: true, ReadsRt: true, SignedImm: true},
	OpBLEZ: {Name: "blez", Class: ClassBranch, Fmt: FmtI, ReadsRs: true, SignedImm: true},
	OpBGTZ: {Name: "bgtz", Class: ClassBranch, Fmt: FmtI, ReadsRs: true, SignedImm: true},
	OpBLTZ: {Name: "bltz", Class: ClassBranch, Fmt: FmtI, ReadsRs: true, SignedImm: true},
	OpBGEZ: {Name: "bgez", Class: ClassBranch, Fmt: FmtI, ReadsRs: true, SignedImm: true},
	OpJ:    {Name: "j", Class: ClassJump, Fmt: FmtJ},
	OpJAL:  {Name: "jal", Class: ClassCall, Fmt: FmtJ, WritesDest: true},
	OpJR:   {Name: "jr", Class: ClassReturn, Fmt: FmtR, ReadsRs: true},
	OpJALR: {Name: "jalr", Class: ClassCall, Fmt: FmtR, ReadsRs: true, WritesDest: true},

	OpADDD: {Name: "add.d", Class: ClassFPALU, Fmt: FmtF, ReadsRs: true, ReadsRt: true, RsFP: true, RtFP: true, WritesDest: true, DestFP: true},
	OpSUBD: {Name: "sub.d", Class: ClassFPALU, Fmt: FmtF, ReadsRs: true, ReadsRt: true, RsFP: true, RtFP: true, WritesDest: true, DestFP: true},
	OpMULD: {Name: "mul.d", Class: ClassFPMul, Fmt: FmtF, ReadsRs: true, ReadsRt: true, RsFP: true, RtFP: true, WritesDest: true, DestFP: true},
	OpDIVD: {Name: "div.d", Class: ClassFPDiv, Fmt: FmtF, ReadsRs: true, ReadsRt: true, RsFP: true, RtFP: true, WritesDest: true, DestFP: true},
	OpNEGD: {Name: "neg.d", Class: ClassFPALU, Fmt: FmtF, ReadsRs: true, RsFP: true, WritesDest: true, DestFP: true},
	OpABSD: {Name: "abs.d", Class: ClassFPALU, Fmt: FmtF, ReadsRs: true, RsFP: true, WritesDest: true, DestFP: true},
	OpMOVD: {Name: "mov.d", Class: ClassFPALU, Fmt: FmtF, ReadsRs: true, RsFP: true, WritesDest: true, DestFP: true},

	OpCVTIF: {Name: "cvt.d.w", Class: ClassFPALU, Fmt: FmtF, ReadsRs: true, WritesDest: true, DestFP: true},
	OpCVTFI: {Name: "cvt.w.d", Class: ClassFPALU, Fmt: FmtF, ReadsRs: true, RsFP: true, WritesDest: true},
	OpCLTD:  {Name: "c.lt.d", Class: ClassFPALU, Fmt: FmtF, ReadsRs: true, ReadsRt: true, RsFP: true, RtFP: true, WritesDest: true},
	OpCLED:  {Name: "c.le.d", Class: ClassFPALU, Fmt: FmtF, ReadsRs: true, ReadsRt: true, RsFP: true, RtFP: true, WritesDest: true},
	OpCEQD:  {Name: "c.eq.d", Class: ClassFPALU, Fmt: FmtF, ReadsRs: true, ReadsRt: true, RsFP: true, RtFP: true, WritesDest: true},

	OpNOP:  {Name: "nop", Class: ClassNop, Fmt: FmtR},
	OpHALT: {Name: "halt", Class: ClassHalt, Fmt: FmtR},
}

// Lookup returns the static description of op.
func (op Op) Info() Info {
	if int(op) >= int(numOps) {
		return infos[OpInvalid]
	}
	return infos[op]
}

// String returns the assembler mnemonic for op.
func (op Op) String() string { return op.Info().Name }

// Valid reports whether op is a defined operation other than OpInvalid.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// IsControl reports whether op can redirect the PC.
func (op Op) IsControl() bool {
	switch op.Info().Class {
	case ClassBranch, ClassJump, ClassCall, ClassReturn:
		return true
	}
	return false
}

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool {
	c := op.Info().Class
	return c == ClassLoad || c == ClassStore
}

// OpByName returns the operation with the given assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := OpInvalid + 1; op < numOps; op++ {
		m[infos[op].Name] = op
	}
	return m
}()

func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "ialu"
	case ClassIntMul:
		return "imul"
	case ClassFPALU:
		return "fpalu"
	case ClassFPMul:
		return "fpmul"
	case ClassFPDiv:
		return "fpdiv"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassCall:
		return "call"
	case ClassReturn:
		return "return"
	case ClassHalt:
		return "halt"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

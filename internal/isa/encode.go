package isa

import "fmt"

// Binary encoding, MIPS-flavoured:
//
//	R-format: opc(6) rs(5) rt(5) rd(5) shamt(5) funct(6), primary opcode 0
//	F-format: opc(6) fs(5) ft(5) fd(5) 0(5)     funct(6), primary opcode 0x11
//	I-format: opc(6) rs(5) rt(5) imm(16)
//	J-format: opc(6) target(26)                  (word-scaled absolute target)
const (
	opcR  = 0x00
	opcFP = 0x11
)

type encoding struct {
	opc   uint32
	funct uint32 // R/F formats only
}

var opEncoding = map[Op]encoding{
	OpADD:  {opcR, 0x20},
	OpSUB:  {opcR, 0x22},
	OpAND:  {opcR, 0x24},
	OpOR:   {opcR, 0x25},
	OpXOR:  {opcR, 0x26},
	OpNOR:  {opcR, 0x27},
	OpSLT:  {opcR, 0x2a},
	OpSLTU: {opcR, 0x2b},
	OpSLL:  {opcR, 0x00},
	OpSRL:  {opcR, 0x02},
	OpSRA:  {opcR, 0x03},
	OpSLLV: {opcR, 0x04},
	OpSRLV: {opcR, 0x06},
	OpSRAV: {opcR, 0x07},
	OpMUL:  {opcR, 0x18},
	OpDIVQ: {opcR, 0x1a},
	OpREM:  {opcR, 0x1b},
	OpJR:   {opcR, 0x08},
	OpJALR: {opcR, 0x09},
	OpNOP:  {opcR, 0x3e},
	OpHALT: {opcR, 0x3f},

	OpJ:   {0x02, 0},
	OpJAL: {0x03, 0},

	OpBEQ:   {0x04, 0},
	OpBNE:   {0x05, 0},
	OpBLEZ:  {0x06, 0},
	OpBGTZ:  {0x07, 0},
	OpBLTZ:  {0x01, 0},
	OpBGEZ:  {0x1d, 0},
	OpADDI:  {0x08, 0},
	OpSLTI:  {0x0a, 0},
	OpSLTIU: {0x0b, 0},
	OpANDI:  {0x0c, 0},
	OpORI:   {0x0d, 0},
	OpXORI:  {0x0e, 0},
	OpLUI:   {0x0f, 0},
	OpLB:    {0x20, 0},
	OpLH:    {0x21, 0},
	OpLW:    {0x23, 0},
	OpLBU:   {0x24, 0},
	OpLHU:   {0x25, 0},
	OpSB:    {0x28, 0},
	OpSH:    {0x29, 0},
	OpSW:    {0x2b, 0},
	OpLD:    {0x35, 0},
	OpSD:    {0x3d, 0},

	OpADDD:  {opcFP, 0x00},
	OpSUBD:  {opcFP, 0x01},
	OpMULD:  {opcFP, 0x02},
	OpDIVD:  {opcFP, 0x03},
	OpNEGD:  {opcFP, 0x07},
	OpABSD:  {opcFP, 0x05},
	OpMOVD:  {opcFP, 0x06},
	OpCVTIF: {opcFP, 0x20},
	OpCVTFI: {opcFP, 0x24},
	OpCLTD:  {opcFP, 0x3c},
	OpCLED:  {opcFP, 0x3e},
	OpCEQD:  {opcFP, 0x32},
}

var decodeR, decodeFP [64]Op
var decodeI [64]Op

func init() {
	for op, e := range opEncoding {
		switch e.opc {
		case opcR:
			decodeR[e.funct] = op
		case opcFP:
			decodeFP[e.funct] = op
		default:
			decodeI[e.opc] = op
		}
	}
}

// Encode packs in into its 32-bit machine representation.
func Encode(in Inst) (uint32, error) {
	e, ok := opEncoding[in.Op]
	if !ok {
		return 0, fmt.Errorf("isa: cannot encode op %v", in.Op)
	}
	info := in.Op.Info()
	switch {
	case e.opc == opcR || e.opc == opcFP:
		w := e.opc<<26 | uint32(in.Rs&31)<<21 | uint32(in.Rt&31)<<16 | uint32(in.Rd&31)<<11 | e.funct
		if info.UsesShamt {
			if in.Imm < 0 || in.Imm > 31 {
				return 0, fmt.Errorf("isa: shift amount %d out of range in %v", in.Imm, in)
			}
			w |= uint32(in.Imm) << 6
		}
		return w, nil
	case info.Fmt == FmtJ:
		if in.Target&3 != 0 {
			return 0, fmt.Errorf("isa: unaligned jump target 0x%x", in.Target)
		}
		word := in.Target >> 2
		if word >= 1<<26 {
			return 0, fmt.Errorf("isa: jump target 0x%x out of 26-bit range", in.Target)
		}
		return e.opc<<26 | word, nil
	default: // I-format
		if info.SignedImm {
			if in.Imm < -(1<<15) || in.Imm >= 1<<15 {
				return 0, fmt.Errorf("isa: immediate %d out of signed 16-bit range in %v", in.Imm, in)
			}
		} else if in.Imm < 0 || in.Imm >= 1<<16 {
			return 0, fmt.Errorf("isa: immediate %d out of unsigned 16-bit range in %v", in.Imm, in)
		}
		return e.opc<<26 | uint32(in.Rs&31)<<21 | uint32(in.Rt&31)<<16 | uint32(uint16(in.Imm)), nil
	}
}

// Decode unpacks a 32-bit machine word into an instruction.
func Decode(w uint32) (Inst, error) {
	opc := w >> 26
	rs := uint8(w >> 21 & 31)
	rt := uint8(w >> 16 & 31)
	rd := uint8(w >> 11 & 31)
	shamt := int32(w >> 6 & 31)
	funct := w & 63

	switch opc {
	case opcR:
		op := decodeR[funct]
		if !op.Valid() {
			return Inst{}, fmt.Errorf("isa: unknown R-format funct 0x%x in word 0x%08x", funct, w)
		}
		in := Inst{Op: op, Rd: rd, Rs: rs, Rt: rt}
		if op.Info().UsesShamt {
			in.Imm = shamt
		}
		return in, nil
	case opcFP:
		op := decodeFP[funct]
		if !op.Valid() {
			return Inst{}, fmt.Errorf("isa: unknown FP funct 0x%x in word 0x%08x", funct, w)
		}
		return Inst{Op: op, Rd: rd, Rs: rs, Rt: rt}, nil
	case 0x02, 0x03:
		op := OpJ
		if opc == 0x03 {
			op = OpJAL
		}
		return Inst{Op: op, Target: (w & (1<<26 - 1)) << 2}, nil
	default:
		op := decodeI[opc]
		if !op.Valid() {
			return Inst{}, fmt.Errorf("isa: unknown opcode 0x%x in word 0x%08x", opc, w)
		}
		imm := int32(uint32(uint16(w)))
		if op.Info().SignedImm {
			imm = int32(int16(w))
		}
		return Inst{Op: op, Rs: rs, Rt: rt, Imm: imm}, nil
	}
}

package isa

import "fmt"

// NumIntRegs and NumFPRegs are the architectural register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// Conventional integer register assignments (MIPS o32-flavoured).
const (
	RegZero = 0  // hardwired zero
	RegV0   = 2  // result
	RegA0   = 4  // first argument
	RegSP   = 29 // stack pointer
	RegFP   = 30 // frame pointer
	RegRA   = 31 // return address / link register
)

// RegKind distinguishes the two architectural register files.
type RegKind uint8

const (
	KindInt RegKind = iota
	KindFP
)

// Reg names one architectural register.
type Reg struct {
	Kind RegKind
	Num  uint8
}

// IntReg and FPReg are convenience constructors.
func IntReg(n uint8) Reg { return Reg{KindInt, n} }
func FPReg(n uint8) Reg  { return Reg{KindFP, n} }

// IsZero reports whether r is the hardwired integer zero register.
func (r Reg) IsZero() bool { return r.Kind == KindInt && r.Num == RegZero }

func (r Reg) String() string {
	if r.Kind == KindFP {
		return fmt.Sprintf("$f%d", r.Num)
	}
	switch r.Num {
	case RegZero:
		return "$zero"
	case RegSP:
		return "$sp"
	case RegRA:
		return "$ra"
	}
	return fmt.Sprintf("$r%d", r.Num)
}

// Sources returns the architectural registers read by in (0 to 2 entries).
func (in Inst) Sources() []Reg {
	var buf [2]Reg
	n := in.SourceRegs(&buf)
	if n == 0 {
		return nil
	}
	return append([]Reg(nil), buf[:n]...)
}

// SourceRegs stores in's source registers into dst and returns how many
// there are. It is the allocation-free form of Sources, for the rename hot
// path (every dispatched and every reused instruction extracts its sources).
func (in Inst) SourceRegs(dst *[2]Reg) int {
	info := in.Op.Info()
	n := 0
	if info.ReadsRs {
		kind := KindInt
		if info.RsFP {
			kind = KindFP
		}
		dst[n] = Reg{kind, in.Rs}
		n++
	}
	if info.ReadsRt {
		kind := KindInt
		if info.RtFP {
			kind = KindFP
		}
		dst[n] = Reg{kind, in.Rt}
		n++
	}
	return n
}

// Dest returns the architectural destination register of in, if any.
// The integer zero register is never reported as a destination.
func (in Inst) Dest() (Reg, bool) {
	info := in.Op.Info()
	if !info.WritesDest {
		return Reg{}, false
	}
	var r Reg
	switch {
	case in.Op == OpJAL:
		r = IntReg(RegRA)
	case info.DestIsRt:
		kind := KindInt
		if info.DestFP {
			kind = KindFP
		}
		r = Reg{kind, in.Rt}
	default:
		kind := KindInt
		if info.DestFP {
			kind = KindFP
		}
		r = Reg{kind, in.Rd}
	}
	if r.IsZero() {
		return Reg{}, false
	}
	return r, true
}

package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func evalII(op Op, a, b int32) int32 {
	return Eval(Inst{Op: op}, Operands{A: a, B: b}).I
}

func TestEvalIntALU(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int32
		want int32
	}{
		{OpADD, 2, 3, 5},
		{OpADD, math.MaxInt32, 1, math.MinInt32}, // wraparound
		{OpSUB, 2, 3, -1},
		{OpAND, 0b1100, 0b1010, 0b1000},
		{OpOR, 0b1100, 0b1010, 0b1110},
		{OpXOR, 0b1100, 0b1010, 0b0110},
		{OpNOR, 0, 0, -1},
		{OpSLT, -1, 0, 1},
		{OpSLT, 0, -1, 0},
		{OpSLTU, -1, 0, 0}, // 0xffffffff < 0 unsigned is false
		{OpSLTU, 0, -1, 1},
		{OpSLLV, 3, 1, 8},
		{OpSRLV, 1, -2, 0x7fffffff},
		{OpSRAV, 1, -2, -1},
		{OpMUL, 7, -3, -21},
		{OpMUL, 1 << 20, 1 << 20, 0}, // low 32 bits
		{OpDIVQ, 7, 2, 3},
		{OpDIVQ, -7, 2, -3},
		{OpREM, 7, 2, 1},
		{OpREM, -7, 2, -1},
	}
	for _, c := range cases {
		if got := evalII(c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalShiftImmediates(t *testing.T) {
	if got := Eval(Inst{Op: OpSLL, Imm: 4}, Operands{B: 3}).I; got != 48 {
		t.Errorf("sll 3<<4 = %d, want 48", got)
	}
	if got := Eval(Inst{Op: OpSRL, Imm: 1}, Operands{B: -2}).I; got != 0x7fffffff {
		t.Errorf("srl -2>>1 = %d", got)
	}
	if got := Eval(Inst{Op: OpSRA, Imm: 1}, Operands{B: -2}).I; got != -1 {
		t.Errorf("sra -2>>1 = %d", got)
	}
}

func TestEvalDivideEdges(t *testing.T) {
	r := Eval(Inst{Op: OpDIVQ}, Operands{A: 5, B: 0})
	if !r.DivByZero || r.I != 0 {
		t.Errorf("div by zero: %+v", r)
	}
	r = Eval(Inst{Op: OpREM}, Operands{A: 5, B: 0})
	if !r.DivByZero || r.I != 0 {
		t.Errorf("rem by zero: %+v", r)
	}
	r = Eval(Inst{Op: OpDIVQ}, Operands{A: math.MinInt32, B: -1})
	if r.I != math.MinInt32 {
		t.Errorf("MinInt32 / -1 = %d, want MinInt32", r.I)
	}
	r = Eval(Inst{Op: OpREM}, Operands{A: math.MinInt32, B: -1})
	if r.I != 0 {
		t.Errorf("MinInt32 %% -1 = %d, want 0", r.I)
	}
}

func TestEvalImmediates(t *testing.T) {
	cases := []struct {
		op   Op
		a    int32
		imm  int32
		want int32
	}{
		{OpADDI, 5, -3, 2},
		{OpANDI, 0xff, 0x0f, 0x0f},
		{OpORI, 0xf0, 0x0f, 0xff},
		{OpXORI, 0xff, 0x0f, 0xf0},
		{OpSLTI, -5, -4, 1},
		{OpSLTIU, 5, -1, 1}, // imm 0xffffffff unsigned
		{OpLUI, 0, 0x1234, 0x12340000},
	}
	for _, c := range cases {
		got := Eval(Inst{Op: c.op, Imm: c.imm}, Operands{A: c.a}).I
		if got != c.want {
			t.Errorf("%v(a=%d, imm=%d) = %d, want %d", c.op, c.a, c.imm, got, c.want)
		}
	}
}

func TestEvalMemory(t *testing.T) {
	r := Eval(Inst{Op: OpLW, Imm: -8}, Operands{A: 0x1000})
	if r.Addr != 0xff8 {
		t.Errorf("lw addr = 0x%x", r.Addr)
	}
	r = Eval(Inst{Op: OpSW, Imm: 4}, Operands{A: 0x1000, B: 42})
	if r.Addr != 0x1004 || r.StoreI != 42 {
		t.Errorf("sw = %+v", r)
	}
	r = Eval(Inst{Op: OpSD, Imm: 0}, Operands{A: 0x2000, FB: 2.5})
	if r.Addr != 0x2000 || r.StoreF != 2.5 {
		t.Errorf("s.d = %+v", r)
	}
}

func TestEvalBranches(t *testing.T) {
	cases := []struct {
		op    Op
		a, b  int32
		taken bool
	}{
		{OpBEQ, 1, 1, true},
		{OpBEQ, 1, 2, false},
		{OpBNE, 1, 2, true},
		{OpBNE, 2, 2, false},
		{OpBLEZ, 0, 0, true},
		{OpBLEZ, 1, 0, false},
		{OpBGTZ, 1, 0, true},
		{OpBGTZ, 0, 0, false},
		{OpBLTZ, -1, 0, true},
		{OpBLTZ, 0, 0, false},
		{OpBGEZ, 0, 0, true},
		{OpBGEZ, -1, 0, false},
	}
	for _, c := range cases {
		in := Inst{Op: c.op, Imm: -2}
		r := Eval(in, Operands{A: c.a, B: c.b, PC: 0x100})
		if r.Taken != c.taken {
			t.Errorf("%v(%d,%d).Taken = %v, want %v", c.op, c.a, c.b, r.Taken, c.taken)
		}
		if c.taken && r.Target != 0x100+4-8 {
			t.Errorf("%v target = 0x%x, want 0x%x", c.op, r.Target, 0x100+4-8)
		}
	}
}

func TestEvalJumps(t *testing.T) {
	r := Eval(Inst{Op: OpJ, Target: 0x400100}, Operands{PC: 0x400000})
	if !r.Taken || r.Target != 0x400100 {
		t.Errorf("j: %+v", r)
	}
	r = Eval(Inst{Op: OpJAL, Target: 0x400100}, Operands{PC: 0x400010})
	if !r.Taken || r.Target != 0x400100 || uint32(r.I) != 0x400014 {
		t.Errorf("jal: %+v", r)
	}
	r = Eval(Inst{Op: OpJR}, Operands{A: 0x400abc})
	if !r.Taken || r.Target != 0x400abc {
		t.Errorf("jr: %+v", r)
	}
	r = Eval(Inst{Op: OpJALR}, Operands{A: 0x400abc, PC: 0x400020})
	if !r.Taken || r.Target != 0x400abc || uint32(r.I) != 0x400024 {
		t.Errorf("jalr: %+v", r)
	}
}

func TestEvalFP(t *testing.T) {
	fp := func(op Op, a, b float64) float64 {
		return Eval(Inst{Op: op}, Operands{FA: a, FB: b}).F
	}
	if got := fp(OpADDD, 1.5, 2.25); got != 3.75 {
		t.Errorf("add.d = %v", got)
	}
	if got := fp(OpSUBD, 1.5, 2.25); got != -0.75 {
		t.Errorf("sub.d = %v", got)
	}
	if got := fp(OpMULD, 1.5, 2.0); got != 3.0 {
		t.Errorf("mul.d = %v", got)
	}
	if got := fp(OpDIVD, 3.0, 2.0); got != 1.5 {
		t.Errorf("div.d = %v", got)
	}
	if got := fp(OpNEGD, 1.5, 0); got != -1.5 {
		t.Errorf("neg.d = %v", got)
	}
	if got := fp(OpABSD, -1.5, 0); got != 1.5 {
		t.Errorf("abs.d = %v", got)
	}
	if got := fp(OpMOVD, 7.5, 0); got != 7.5 {
		t.Errorf("mov.d = %v", got)
	}
	if got := Eval(Inst{Op: OpCVTIF}, Operands{A: -3}).F; got != -3.0 {
		t.Errorf("cvt.d.w = %v", got)
	}
	if got := Eval(Inst{Op: OpCVTFI}, Operands{FA: -3.7}).I; got != -3 {
		t.Errorf("cvt.w.d = %v", got)
	}
	cmp := func(op Op, a, b float64) int32 {
		return Eval(Inst{Op: op}, Operands{FA: a, FB: b}).I
	}
	if cmp(OpCLTD, 1, 2) != 1 || cmp(OpCLTD, 2, 1) != 0 || cmp(OpCLTD, 1, 1) != 0 {
		t.Error("c.lt.d wrong")
	}
	if cmp(OpCLED, 1, 1) != 1 || cmp(OpCLED, 2, 1) != 0 {
		t.Error("c.le.d wrong")
	}
	if cmp(OpCEQD, 1, 1) != 1 || cmp(OpCEQD, 1, 2) != 0 {
		t.Error("c.eq.d wrong")
	}
}

func TestEvalCvtSaturation(t *testing.T) {
	if got := Eval(Inst{Op: OpCVTFI}, Operands{FA: math.NaN()}).I; got != 0 {
		t.Errorf("cvt NaN = %d", got)
	}
	if got := Eval(Inst{Op: OpCVTFI}, Operands{FA: 1e30}).I; got != math.MaxInt32 {
		t.Errorf("cvt +inf-ish = %d", got)
	}
	if got := Eval(Inst{Op: OpCVTFI}, Operands{FA: -1e30}).I; got != math.MinInt32 {
		t.Errorf("cvt -inf-ish = %d", got)
	}
}

func TestEvalHalt(t *testing.T) {
	if !Eval(Inst{Op: OpHALT}, Operands{}).Halt {
		t.Error("halt not flagged")
	}
	if Eval(Inst{Op: OpNOP}, Operands{}).Halt {
		t.Error("nop flagged halt")
	}
}

// Property: SLT agrees with Go's signed comparison for all inputs.
func TestEvalSLTProperty(t *testing.T) {
	f := func(a, b int32) bool {
		want := int32(0)
		if a < b {
			want = 1
		}
		return evalII(OpSLT, a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ADD/SUB are inverses modulo 2^32.
func TestEvalAddSubInverse(t *testing.T) {
	f := func(a, b int32) bool {
		return evalII(OpSUB, evalII(OpADD, a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DIVQ/REM satisfy a = q*b + r with |r| < |b| for b != 0 (except
// the MinInt32/-1 overflow case, which hardware saturates).
func TestEvalDivRemProperty(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 || (a == math.MinInt32 && b == -1) {
			return true
		}
		q := evalII(OpDIVQ, a, b)
		r := evalII(OpREM, a, b)
		return q*b+r == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSourcesAndDest(t *testing.T) {
	in := Inst{Op: OpADD, Rd: 3, Rs: 1, Rt: 2}
	srcs := in.Sources()
	if len(srcs) != 2 || srcs[0] != IntReg(1) || srcs[1] != IntReg(2) {
		t.Errorf("add sources = %v", srcs)
	}
	d, ok := in.Dest()
	if !ok || d != IntReg(3) {
		t.Errorf("add dest = %v, %v", d, ok)
	}

	// Writes to $zero are suppressed.
	in = Inst{Op: OpADD, Rd: 0, Rs: 1, Rt: 2}
	if _, ok := in.Dest(); ok {
		t.Error("write to $zero reported as dest")
	}

	// JAL implicitly writes $ra.
	in = Inst{Op: OpJAL, Target: 0x400000}
	d, ok = in.Dest()
	if !ok || d != IntReg(RegRA) {
		t.Errorf("jal dest = %v, %v", d, ok)
	}

	// Stores have no destination.
	in = Inst{Op: OpSW, Rs: 1, Rt: 2}
	if _, ok := in.Dest(); ok {
		t.Error("sw reported a dest")
	}

	// Mixed-kind ops.
	in = Inst{Op: OpCVTIF, Rd: 2, Rs: 5}
	srcs = in.Sources()
	if len(srcs) != 1 || srcs[0] != IntReg(5) {
		t.Errorf("cvt.d.w sources = %v", srcs)
	}
	d, _ = in.Dest()
	if d != FPReg(2) {
		t.Errorf("cvt.d.w dest = %v", d)
	}

	// FP store reads an FP rt.
	in = Inst{Op: OpSD, Rs: 1, Rt: 4}
	srcs = in.Sources()
	if len(srcs) != 2 || srcs[0] != IntReg(1) || srcs[1] != FPReg(4) {
		t.Errorf("s.d sources = %v", srcs)
	}

	// L.D writes an FP destination held in rt.
	in = Inst{Op: OpLD, Rs: 1, Rt: 4}
	d, ok = in.Dest()
	if !ok || d != FPReg(4) {
		t.Errorf("l.d dest = %v, %v", d, ok)
	}
}

func TestStaticTarget(t *testing.T) {
	br := Inst{Op: OpBNE, Imm: -3}
	if tgt, ok := br.StaticTarget(0x400020); !ok || tgt != 0x400020+4-12 {
		t.Errorf("bne static target = 0x%x, %v", tgt, ok)
	}
	j := Inst{Op: OpJ, Target: 0x400100}
	if tgt, ok := j.StaticTarget(0); !ok || tgt != 0x400100 {
		t.Errorf("j static target = 0x%x, %v", tgt, ok)
	}
	jal := Inst{Op: OpJAL, Target: 0x400200}
	if tgt, ok := jal.StaticTarget(0); !ok || tgt != 0x400200 {
		t.Errorf("jal static target = 0x%x, %v", tgt, ok)
	}
	jr := Inst{Op: OpJR, Rs: 31}
	if _, ok := jr.StaticTarget(0); ok {
		t.Error("jr has a static target")
	}
}

func TestDisasmSmoke(t *testing.T) {
	for _, in := range sampleInsts() {
		s := in.Disasm(0x400000)
		if s == "" {
			t.Errorf("empty disassembly for %+v", in)
		}
	}
	if got := (Inst{Op: OpADD, Rd: 3, Rs: 1, Rt: 2}).Disasm(0); got != "add $r3, $at, $r2" && got != "add $r3, $r1, $r2" {
		t.Logf("add disasm: %q", got)
	}
}

// Property: Eval never panics and produces well-defined results for every
// defined op over arbitrary operand values (total function).
func TestEvalTotality(t *testing.T) {
	f := func(opRaw uint8, a, b int32, fa, fb float64, imm int16, pc uint32) bool {
		op := Op(opRaw % uint8(NumOps))
		if !op.Valid() {
			return true
		}
		in := Inst{Op: op, Imm: int32(imm), Target: pc &^ 3}
		r := Eval(in, Operands{A: a, B: b, FA: fa, FB: fb, PC: pc &^ 3})
		// Branch targets must be PC-relative-consistent when taken.
		if op.Info().Class == ClassBranch && r.Taken {
			if r.Target != in.BranchTarget(pc&^3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

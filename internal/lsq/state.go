// Snapshot support: an exported state image of the load/store queue with a
// validating importer.
package lsq

import "fmt"

// State is the serializable image of an LSQ.
type State struct {
	Ring  []Entry
	Head  int
	Count int

	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	Allocs, Searches, Forwards, ConflictStalls uint64
}

// ExportState returns a deep copy of the queue's state.
func (q *LSQ) ExportState() State {
	return State{
		Ring:   append([]Entry(nil), q.ring...),
		Head:   q.head,
		Count:  q.count,
		Allocs: q.Allocs, Searches: q.Searches,
		Forwards: q.Forwards, ConflictStalls: q.ConflictStalls,
	}
}

// ImportState overwrites the queue with st after validating its shape.
func (q *LSQ) ImportState(st State) error {
	size := len(q.ring)
	if len(st.Ring) != size {
		return fmt.Errorf("lsq: state sized %d for queue of size %d", len(st.Ring), size)
	}
	if st.Head < 0 || st.Head >= size {
		return fmt.Errorf("lsq: state head %d for queue of size %d", st.Head, size)
	}
	if st.Count < 0 || st.Count > size {
		return fmt.Errorf("lsq: state count %d for queue of size %d", st.Count, size)
	}
	copy(q.ring, st.Ring)
	q.head, q.count = st.Head, st.Count
	q.Allocs, q.Searches = st.Allocs, st.Searches
	q.Forwards, q.ConflictStalls = st.Forwards, st.ConflictStalls
	return nil
}

package lsq

import "testing"

func store(seq uint64, addr uint32, size uint8, data int32, resolved bool) Entry {
	return Entry{Seq: seq, IsStore: true, Size: size, Addr: addr,
		AddrReady: resolved, DataReady: resolved, DataI: data}
}

func load(seq uint64, size uint8) Entry {
	return Entry{Seq: seq, Size: size}
}

func TestAllocPopOrder(t *testing.T) {
	q := New(4)
	q.Alloc(load(1, 4))
	q.Alloc(store(2, 0x100, 4, 7, true))
	if q.Len() != 2 || q.Full() {
		t.Fatalf("len=%d", q.Len())
	}
	if q.PopHead().Seq != 1 || q.PopHead().Seq != 2 {
		t.Fatal("pop order wrong")
	}
}

func TestOlderStoreAddrsKnown(t *testing.T) {
	q := New(8)
	q.Alloc(store(1, 0x100, 4, 7, true))
	q.Alloc(store(2, 0, 4, 0, false)) // unresolved
	q.Alloc(load(3, 4))
	if q.OlderStoreAddrsKnown(3) {
		t.Fatal("unresolved older store not detected")
	}
	q.Get(1).AddrReady = true
	if !q.OlderStoreAddrsKnown(3) {
		t.Fatal("resolved stores still block")
	}
	// A younger store must not block an older load.
	q.Alloc(store(5, 0, 4, 0, false))
	if !q.OlderStoreAddrsKnown(3) {
		t.Fatal("younger store blocked older load")
	}
}

func TestForwardExactMatch(t *testing.T) {
	q := New(8)
	q.Alloc(store(1, 0x100, 4, 42, true))
	q.Alloc(load(2, 4))
	res, dI, _ := q.SearchForLoad(2, 0x100, 4)
	if res != Forwarded || dI != 42 {
		t.Fatalf("res=%v dI=%d", res, dI)
	}
	if q.Forwards != 1 {
		t.Errorf("forwards = %d", q.Forwards)
	}
}

func TestForwardYoungestOlderWins(t *testing.T) {
	q := New(8)
	q.Alloc(store(1, 0x100, 4, 1, true))
	q.Alloc(store(2, 0x100, 4, 2, true))
	q.Alloc(load(3, 4))
	res, dI, _ := q.SearchForLoad(3, 0x100, 4)
	if res != Forwarded || dI != 2 {
		t.Fatalf("got %v %d, want the younger store's value 2", res, dI)
	}
}

func TestForwardIgnoresYoungerStores(t *testing.T) {
	q := New(8)
	q.Alloc(load(1, 4))
	q.Alloc(store(2, 0x100, 4, 9, true))
	res, _, _ := q.SearchForLoad(1, 0x100, 4)
	if res != FromMemory {
		t.Fatalf("res = %v, want FromMemory", res)
	}
}

func TestForwardNoOverlapGoesToMemory(t *testing.T) {
	q := New(8)
	q.Alloc(store(1, 0x100, 4, 9, true))
	q.Alloc(load(2, 4))
	res, _, _ := q.SearchForLoad(2, 0x104, 4)
	if res != FromMemory {
		t.Fatalf("res = %v", res)
	}
}

func TestPartialOverlapMustWait(t *testing.T) {
	q := New(8)
	q.Alloc(store(1, 0x100, 1, 0xff, true)) // byte store
	q.Alloc(load(2, 4))
	res, _, _ := q.SearchForLoad(2, 0x100, 4) // word load overlapping the byte
	if res != MustWait {
		t.Fatalf("res = %v, want MustWait on size mismatch", res)
	}
	// Byte load at a different offset within the same word: no overlap.
	res, _, _ = q.SearchForLoad(2, 0x101, 1)
	if res != FromMemory {
		t.Fatalf("res = %v, want FromMemory for disjoint byte", res)
	}
}

func TestUnresolvedOlderStoreMustWait(t *testing.T) {
	q := New(8)
	q.Alloc(store(1, 0, 4, 0, false))
	q.Alloc(load(2, 4))
	res, _, _ := q.SearchForLoad(2, 0x100, 4)
	if res != MustWait {
		t.Fatalf("res = %v", res)
	}
}

func TestFPForwarding(t *testing.T) {
	q := New(8)
	s := Entry{Seq: 1, IsStore: true, IsFP: true, Size: 8, Addr: 0x200,
		AddrReady: true, DataReady: true, DataF: 2.5}
	q.Alloc(s)
	q.Alloc(Entry{Seq: 2, Size: 8, IsFP: true})
	res, _, dF := q.SearchForLoad(2, 0x200, 8)
	if res != Forwarded || dF != 2.5 {
		t.Fatalf("res=%v dF=%v", res, dF)
	}
}

func TestSquashAfter(t *testing.T) {
	q := New(8)
	for i := 1; i <= 5; i++ {
		q.Alloc(load(uint64(i), 4))
	}
	q.SquashAfter(2)
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	q.Walk(func(slot int, e *Entry) {
		if e.Seq > 2 {
			t.Errorf("seq %d survived", e.Seq)
		}
	})
}

func TestRingWraparound(t *testing.T) {
	q := New(3)
	q.Alloc(load(1, 4))
	q.Alloc(load(2, 4))
	q.PopHead()
	q.Alloc(load(3, 4))
	q.Alloc(load(4, 4)) // wraps into slot 0
	if q.Len() != 3 || !q.Full() {
		t.Fatalf("len=%d", q.Len())
	}
	if q.Head().Seq != 2 {
		t.Errorf("head seq = %d", q.Head().Seq)
	}
}

func TestOverlapHelper(t *testing.T) {
	cases := []struct {
		a1, s1, a2, s2 uint32
		want           bool
	}{
		{0x100, 4, 0x100, 4, true},
		{0x100, 4, 0x104, 4, false},
		{0x100, 4, 0x103, 1, true},
		{0x100, 1, 0x100, 4, true},
		{0x100, 8, 0x104, 4, true},
		{0x104, 4, 0x100, 8, true},
		{0x100, 1, 0x101, 1, false},
	}
	for _, c := range cases {
		if got := overlaps(c.a1, c.s1, c.a2, c.s2); got != c.want {
			t.Errorf("overlaps(0x%x,%d, 0x%x,%d) = %v", c.a1, c.s1, c.a2, c.s2, got)
		}
	}
}

// Package lsq implements the load/store queue: memory operations are
// allocated in program order at dispatch, compute their addresses at
// execute, and stores update memory only at commit, so wrong-path execution
// can never corrupt architectural memory state. Loads forward from older
// resolved stores and wait conservatively while any older store address is
// unknown.
package lsq

// Entry is one in-flight memory operation.
type Entry struct {
	Seq     uint64
	IsStore bool
	IsFP    bool  // double-width FP access
	Size    uint8 // access size in bytes (1, 4, or 8)

	AddrReady bool
	Addr      uint32

	// Store data, captured at execute.
	DataReady bool
	//reuse:nodigest architectural value; the digest hashes microarchitectural structure, values are extrapolated
	DataI int32
	//reuse:nodigest architectural value; the digest hashes microarchitectural structure, values are extrapolated
	DataF float64

	Done bool // executed (loads: value obtained; stores: addr+data ready)
}

// LSQ is the load/store queue.
type LSQ struct {
	ring  []Entry
	head  int
	count int

	Allocs         uint64
	Searches       uint64 // associative searches by loads
	Forwards       uint64 // store-to-load forwards
	ConflictStalls uint64 // load issue attempts blocked by unknown store addresses
}

// New creates a queue with the given capacity.
func New(size int) *LSQ {
	return &LSQ{ring: make([]Entry, size)}
}

// Size and Len report capacity and occupancy.
func (q *LSQ) Size() int { return len(q.ring) }
func (q *LSQ) Len() int  { return q.count }

// Full reports whether an allocation would fail.
func (q *LSQ) Full() bool { return q.count == len(q.ring) }

// Alloc appends a memory operation, returning its stable slot.
//
//reuse:hotpath
func (q *LSQ) Alloc(e Entry) (int, bool) {
	if q.Full() {
		return 0, false
	}
	slot := (q.head + q.count) % len(q.ring)
	q.ring[slot] = e
	q.count++
	q.Allocs++
	return slot, true
}

// Get returns the entry in slot.
func (q *LSQ) Get(slot int) *Entry { return &q.ring[slot] }

// Head returns the oldest entry, or nil.
func (q *LSQ) Head() *Entry {
	if q.count == 0 {
		return nil
	}
	return &q.ring[q.head]
}

// PopHead removes the oldest entry (when its instruction commits).
//
//reuse:hotpath
func (q *LSQ) PopHead() Entry {
	if q.count == 0 {
		panic("lsq: pop of empty queue")
	}
	e := q.ring[q.head]
	q.head = (q.head + 1) % len(q.ring)
	q.count--
	return e
}

// SquashAfter drops all entries with Seq > seq.
//
//reuse:hotpath
func (q *LSQ) SquashAfter(seq uint64) {
	for q.count > 0 {
		tail := (q.head + q.count - 1) % len(q.ring)
		if q.ring[tail].Seq <= seq {
			return
		}
		q.count--
	}
}

// OlderStoreAddrsKnown reports whether every store older than seq has a
// resolved address. Loads issue only when this holds (conservative
// disambiguation).
func (q *LSQ) OlderStoreAddrsKnown(seq uint64) bool {
	for i := 0; i < q.count; i++ {
		e := &q.ring[(q.head+i)%len(q.ring)]
		if e.Seq >= seq {
			break
		}
		if e.IsStore && !e.AddrReady {
			q.ConflictStalls++
			return false
		}
	}
	return true
}

// ForwardResult describes the outcome of a load's associative search.
type ForwardResult int

const (
	// FromMemory: no older store overlaps; read the data cache.
	FromMemory ForwardResult = iota
	// Forwarded: the youngest older matching store supplies the data.
	Forwarded
	// MustWait: an older store overlaps with mismatched size/alignment
	// (or unresolved address); the load must retry later.
	MustWait
)

// SearchForLoad performs the load's associative search against older stores.
// On Forwarded, dataI/dataF carry the store's value.
//
//reuse:hotpath
func (q *LSQ) SearchForLoad(seq uint64, addr uint32, size uint8) (ForwardResult, int32, float64) {
	q.Searches++
	// Scan from youngest older entry to oldest; first overlap decides.
	for i := q.count - 1; i >= 0; i-- {
		e := &q.ring[(q.head+i)%len(q.ring)]
		if e.Seq >= seq || !e.IsStore {
			continue
		}
		if !e.AddrReady {
			return MustWait, 0, 0
		}
		if !overlaps(e.Addr, uint32(e.Size), addr, uint32(size)) {
			continue
		}
		if e.Addr == addr && e.Size == size && e.DataReady {
			q.Forwards++
			return Forwarded, e.DataI, e.DataF
		}
		return MustWait, 0, 0
	}
	return FromMemory, 0, 0
}

func overlaps(a1, s1, a2, s2 uint32) bool {
	return a1 < a2+s2 && a2 < a1+s1
}

// Walk calls f over all entries in program order.
func (q *LSQ) Walk(f func(slot int, e *Entry)) {
	for i := 0; i < q.count; i++ {
		slot := (q.head + i) % len(q.ring)
		f(slot, &q.ring[slot])
	}
}

package compiler

import (
	"fmt"
	"sort"
	"strings"

	"reuseiq/internal/asm"
	"reuseiq/internal/prog"
)

// Codegen lowers the IR to assembly text. Array element addresses are
// strength-reduced: references whose index is affine with coefficient 1 in
// the innermost loop variable become pointer registers incremented by 8 each
// iteration, producing the tight loop bodies the paper's benchmarks exhibit.
//
// Register conventions used by generated code:
//
//	$r2          scratch (address arithmetic)
//	$r8..$r27    loop counters and pointer registers
//	$f2..$f19    scalar variables, then floating-point constants
//	$f20..$f31   expression temporaries
type codegen struct {
	p     *Program
	text  strings.Builder
	data  strings.Builder
	label int

	intPool   []int // free integer registers
	scalarReg map[string]int
	constReg  map[float64]int
	consts    []float64
	loopReg   map[string]int
	nextFP    int // next fixed FP register (scalars + constants)
}

const (
	scratchReg = 2
	fpTempBase = 20
)

// Compile lowers p to an assembled program. It returns the loaded program
// and the generated assembly source.
func Compile(p *Program) (*prog.Program, string, error) {
	if err := p.Validate(); err != nil {
		return nil, "", err
	}
	g := &codegen{
		p:         p,
		scalarReg: map[string]int{},
		constReg:  map[float64]int{},
		loopReg:   map[string]int{},
		nextFP:    2,
	}
	for r := 8; r <= 27; r++ {
		g.intPool = append(g.intPool, r)
	}
	if err := g.run(); err != nil {
		return nil, "", err
	}
	src := g.data.String() + "\n" + g.text.String()
	mp, err := asm.Assemble(src)
	if err != nil {
		return nil, src, fmt.Errorf("compiler: generated code failed to assemble: %w", err)
	}
	return mp, src, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(p *Program) (*prog.Program, string) {
	mp, src, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return mp, src
}

func (g *codegen) run() error {
	// Data segment: arrays and the constant pool.
	fmt.Fprintf(&g.data, "# kernel %s (generated)\n\t.data\n\t.align 3\n", g.p.Name)
	for _, a := range g.p.Arrays {
		fmt.Fprintf(&g.data, "%s:\t.space %d\n", a.Name, a.Len*8)
	}
	g.collectConsts(g.p.Body)
	for _, pr := range g.p.Procs {
		g.collectConsts(pr.Body)
	}

	fmt.Fprintf(&g.text, "\t.text\nmain:\n")
	// Scalars: dedicated registers, initialized to zero.
	for _, s := range g.p.Scalars {
		r, err := g.fixedFP()
		if err != nil {
			return err
		}
		g.scalarReg[s] = r
		fmt.Fprintf(&g.text, "\tcvt.d.w $f%d, $zero\n", r)
	}
	// Constants: loaded once into dedicated registers.
	for i, c := range g.consts {
		r, err := g.fixedFP()
		if err != nil {
			return err
		}
		g.constReg[c] = r
		fmt.Fprintf(&g.data, "const%d:\t.double %v\n", i, c)
		fmt.Fprintf(&g.text, "\tla $r%d, const%d\n\tl.d $f%d, 0($r%d)\n", scratchReg, i, r, scratchReg)
	}

	if err := g.stmts(g.p.Body); err != nil {
		return err
	}
	fmt.Fprintf(&g.text, "\thalt\n")

	for _, pr := range g.p.Procs {
		fmt.Fprintf(&g.text, "proc_%s:\n", pr.Name)
		if err := g.stmts(pr.Body); err != nil {
			return err
		}
		fmt.Fprintf(&g.text, "\tjr $ra\n")
	}
	return nil
}

func (g *codegen) fixedFP() (int, error) {
	if g.nextFP >= fpTempBase {
		return 0, fmt.Errorf("compiler: out of fixed FP registers (scalars+constants > %d)", fpTempBase-2)
	}
	r := g.nextFP
	g.nextFP++
	return r, nil
}

func (g *codegen) collectConsts(stmts []Stmt) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case Const:
			v := float64(x)
			if _, ok := g.constReg[v]; !ok {
				g.constReg[v] = -1 // placeholder; assigned in run
				g.consts = append(g.consts, v)
			}
		case Bin:
			walkExpr(x.L)
			walkExpr(x.R)
		}
	}
	for _, st := range stmts {
		switch x := st.(type) {
		case Assign:
			walkExpr(x.E)
		case Loop:
			g.collectConsts(x.Body)
		}
	}
	sort.Float64s(g.consts)
}

func (g *codegen) allocInt() (int, error) {
	if len(g.intPool) == 0 {
		return 0, fmt.Errorf("compiler: out of integer registers")
	}
	r := g.intPool[len(g.intPool)-1]
	g.intPool = g.intPool[:len(g.intPool)-1]
	return r, nil
}

func (g *codegen) freeInt(r int) { g.intPool = append(g.intPool, r) }

func (g *codegen) newLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s%d", prefix, g.label)
}

func (g *codegen) stmts(stmts []Stmt) error {
	for _, st := range stmts {
		switch x := st.(type) {
		case Assign:
			if err := g.assign(x, nil); err != nil {
				return err
			}
		case Loop:
			if err := g.loop(x); err != nil {
				return err
			}
		case Call:
			fmt.Fprintf(&g.text, "\tjal proc_%s\n", x.Proc)
		}
	}
	return nil
}

// ptrPlan describes the pointer register assigned to one array reference of
// an innermost loop body.
type ptrPlan struct {
	reg       int
	increment bool // coefficient 1 in the loop variable: advance by 8
}

// refKey identifies a reference shape for pointer sharing.
func refKey(r Ref) string {
	k := fmt.Sprintf("%s@%d", r.Array, r.Index.Base)
	terms := append([]IndexTerm(nil), r.Index.Terms...)
	sort.Slice(terms, func(i, j int) bool { return terms[i].Var < terms[j].Var })
	for _, t := range terms {
		k += fmt.Sprintf(",%s*%d", t.Var, t.Coef)
	}
	return k
}

// loop emits one counted loop with pointer strength reduction for the array
// references of its directly nested assignments.
func (g *codegen) loop(l Loop) error {
	ctr, err := g.allocInt()
	if err != nil {
		return err
	}
	g.loopReg[l.Var] = ctr
	defer func() {
		delete(g.loopReg, l.Var)
		g.freeInt(ctr)
	}()

	// Plan pointers for direct assignment refs.
	plans := map[string]*ptrPlan{}
	var planned []string // deterministic order
	var visit func(e Expr) error
	addPlan := func(r Ref) error {
		key := refKey(r)
		if _, ok := plans[key]; ok {
			return nil
		}
		coef, ok := coefOf(r.Index, l.Var)
		if !ok || (coef != 0 && coef != 1) {
			return nil // computed inline
		}
		reg, err := g.allocInt()
		if err != nil {
			// Pointer registers exhausted: fall back to inline address
			// computation for this reference (bigger body, still correct).
			return nil
		}
		plans[key] = &ptrPlan{reg: reg, increment: coef == 1}
		planned = append(planned, key)
		// Initialize: base + 8*(Base + coef*Lo + outer terms).
		fmt.Fprintf(&g.text, "\tla $r%d, %s\n", reg, symOff(r.Array, 8*(r.Index.Base+coef*l.Lo)))
		for _, t := range r.Index.Terms {
			if t.Var == l.Var {
				continue
			}
			outer, ok := g.loopReg[t.Var]
			if !ok {
				return fmt.Errorf("compiler: loop var %s not in scope", t.Var)
			}
			g.addScaled(reg, outer, t.Coef*8)
		}
		return nil
	}
	visit = func(e Expr) error {
		switch x := e.(type) {
		case Ref:
			return addPlan(x)
		case Bin:
			if err := visit(x.L); err != nil {
				return err
			}
			return visit(x.R)
		}
		return nil
	}
	for _, st := range l.Body {
		a, ok := st.(Assign)
		if !ok {
			continue
		}
		if a.Dest != nil {
			if err := addPlan(*a.Dest); err != nil {
				return err
			}
		}
		if err := visit(a.E); err != nil {
			return err
		}
	}
	defer func() {
		for _, key := range planned {
			g.freeInt(plans[key].reg)
		}
	}()

	head := g.newLabel("L")
	fmt.Fprintf(&g.text, "\tli $r%d, %d\n", ctr, l.Lo)
	fmt.Fprintf(&g.text, "%s:\n", head)
	for _, st := range l.Body {
		switch x := st.(type) {
		case Assign:
			if err := g.assign(x, plans); err != nil {
				return err
			}
		case Loop:
			if err := g.loop(x); err != nil {
				return err
			}
		case Call:
			fmt.Fprintf(&g.text, "\tjal proc_%s\n", x.Proc)
		}
	}
	// Advance pointers and the counter; loop back.
	for _, key := range planned {
		if plans[key].increment {
			fmt.Fprintf(&g.text, "\taddi $r%d, $r%d, 8\n", plans[key].reg, plans[key].reg)
		}
	}
	fmt.Fprintf(&g.text, "\taddi $r%d, $r%d, 1\n", ctr, ctr)
	fmt.Fprintf(&g.text, "\tslti $at, $r%d, %d\n", ctr, l.Hi)
	fmt.Fprintf(&g.text, "\tbne $at, $zero, %s\n", head)
	return nil
}

// addScaled emits reg += src*scale using the $at scratch register.
func (g *codegen) addScaled(reg, src, scale int) {
	switch {
	case scale == 0:
		return
	case scale == 1:
		fmt.Fprintf(&g.text, "\tadd $r%d, $r%d, $r%d\n", reg, reg, src)
		return
	case scale > 0 && scale&(scale-1) == 0: // power of two
		sh := 0
		for 1<<sh != scale {
			sh++
		}
		fmt.Fprintf(&g.text, "\tsll $at, $r%d, %d\n", src, sh)
	default:
		fmt.Fprintf(&g.text, "\tli $at, %d\n\tmul $at, $r%d, $at\n", scale, src)
	}
	fmt.Fprintf(&g.text, "\tadd $r%d, $r%d, $at\n", reg, reg)
}

func coefOf(ix Index, v string) (int, bool) {
	coef := 0
	for _, t := range ix.Terms {
		if t.Var == v {
			coef += t.Coef
		}
	}
	return coef, true
}

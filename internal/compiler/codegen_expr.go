package compiler

import "fmt"

// exprState tracks FP temporary allocation within one statement.
type exprState struct {
	next int
}

func (g *codegen) newTemp(st *exprState) (int, error) {
	if fpTempBase+st.next > 31 {
		return 0, fmt.Errorf("compiler: expression too deep (out of FP temporaries)")
	}
	r := fpTempBase + st.next
	st.next++
	return r, nil
}

// assign emits one assignment. plans carries the pointer registers of the
// enclosing innermost loop (nil outside loops).
func (g *codegen) assign(a Assign, plans map[string]*ptrPlan) error {
	st := &exprState{}
	reg, err := g.expr(a.E, plans, st)
	if err != nil {
		return err
	}
	if a.Dest == nil {
		dst := g.scalarReg[a.Scalar]
		if dst != reg {
			fmt.Fprintf(&g.text, "\tmov.d $f%d, $f%d\n", dst, reg)
		}
		return nil
	}
	addr, err := g.refAddr(*a.Dest, plans)
	if err != nil {
		return err
	}
	fmt.Fprintf(&g.text, "\ts.d $f%d, %s\n", reg, addr)
	return nil
}

// refAddr returns the assembly memory operand for an array reference, using
// a planned pointer register when available and computing the address into
// the scratch register otherwise.
func (g *codegen) refAddr(r Ref, plans map[string]*ptrPlan) (string, error) {
	if plans != nil {
		if pl, ok := plans[refKey(r)]; ok {
			return fmt.Sprintf("0($r%d)", pl.reg), nil
		}
	}
	// Inline address computation: scratch = &array[index].
	fmt.Fprintf(&g.text, "\tla $r%d, %s\n", scratchReg, symOff(r.Array, 8*r.Index.Base))
	for _, t := range r.Index.Terms {
		ctr, ok := g.loopReg[t.Var]
		if !ok {
			return "", fmt.Errorf("compiler: loop variable %q not in scope for %s", t.Var, r.Array)
		}
		g.addScaled(scratchReg, ctr, t.Coef*8)
	}
	return fmt.Sprintf("0($r%d)", scratchReg), nil
}

// expr evaluates e, returning the FP register holding its value.
func (g *codegen) expr(e Expr, plans map[string]*ptrPlan, st *exprState) (int, error) {
	switch x := e.(type) {
	case Const:
		r, ok := g.constReg[float64(x)]
		if !ok || r < 0 {
			return 0, fmt.Errorf("compiler: constant %v not materialized", float64(x))
		}
		return r, nil
	case ScalarRef:
		return g.scalarReg[string(x)], nil
	case IVar:
		ctr, ok := g.loopReg[string(x)]
		if !ok {
			return 0, fmt.Errorf("compiler: loop variable %q not in scope", string(x))
		}
		t, err := g.newTemp(st)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(&g.text, "\tcvt.d.w $f%d, $r%d\n", t, ctr)
		return t, nil
	case Ref:
		addr, err := g.refAddr(x, plans)
		if err != nil {
			return 0, err
		}
		t, err := g.newTemp(st)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(&g.text, "\tl.d $f%d, %s\n", t, addr)
		return t, nil
	case Bin:
		l, err := g.expr(x.L, plans, st)
		if err != nil {
			return 0, err
		}
		r, err := g.expr(x.R, plans, st)
		if err != nil {
			return 0, err
		}
		t, err := g.newTemp(st)
		if err != nil {
			return 0, err
		}
		mn := [...]string{"add.d", "sub.d", "mul.d", "div.d"}[x.Op]
		fmt.Fprintf(&g.text, "\t%s $f%d, $f%d, $f%d\n", mn, t, l, r)
		return t, nil
	}
	return 0, fmt.Errorf("compiler: cannot generate code for %T", e)
}

// symOff renders a symbol plus byte offset in assembler syntax.
func symOff(name string, off int) string {
	if off == 0 {
		return name
	}
	return fmt.Sprintf("%s%+d", name, off)
}

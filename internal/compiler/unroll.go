package compiler

// Loop unrolling and loop fusion. Unrolling exists mainly as an ablation
// against the paper's *hardware* unrolling (multi-iteration buffering):
// software unrolling enlarges the static loop body, which can push a loop
// past the issue queue's capture threshold — the opposite of loop
// distribution's effect. Fusion is the inverse of distribution and uses the
// same conservative name-based dependence test.

// Unroll returns a copy of p with every innermost all-assign loop whose trip
// count is divisible by factor unrolled by that factor. Loops that do not
// qualify are left untouched. factor must be >= 2.
func Unroll(p *Program, factor int) *Program {
	if factor < 2 {
		return p
	}
	out := *p
	out.Body = unrollStmts(p.Body, factor)
	return &out
}

func unrollStmts(stmts []Stmt, factor int) []Stmt {
	var result []Stmt
	for _, st := range stmts {
		l, ok := st.(Loop)
		if !ok {
			result = append(result, st)
			continue
		}
		l.Body = unrollStmts(l.Body, factor)
		result = append(result, unrollLoop(l, factor))
	}
	return result
}

// unrollLoop rewrites
//
//	for v := Lo; v < Hi; v++ { S(v) }
//
// as
//
//	for u := 0; u < (Hi-Lo)/f; u++ { S(u*f+Lo+0); ... S(u*f+Lo+f-1) }
//
// substituting v := u*f + Lo + k in indices (affine) and expressions.
func unrollLoop(l Loop, factor int) Stmt {
	trip := l.Hi - l.Lo
	if trip <= 0 || trip%factor != 0 {
		return l
	}
	for _, st := range l.Body {
		if _, ok := st.(Assign); !ok {
			return l
		}
	}
	u := l.Var + "_u"
	var body []Stmt
	for k := 0; k < factor; k++ {
		for _, st := range l.Body {
			a := st.(Assign)
			na := Assign{Scalar: a.Scalar, E: substExpr(a.E, l.Var, u, factor, l.Lo+k)}
			if a.Dest != nil {
				d := Ref{Array: a.Dest.Array, Index: substIndex(a.Dest.Index, l.Var, u, factor, l.Lo+k)}
				na.Dest = &d
			}
			body = append(body, na)
		}
	}
	return Loop{Var: u, Lo: 0, Hi: trip / factor, Body: body}
}

// substIndex replaces occurrences of variable v in an affine index with
// u*factor + off.
func substIndex(ix Index, v, u string, factor, off int) Index {
	out := Index{Base: ix.Base}
	for _, t := range ix.Terms {
		if t.Var == v {
			out.Base += t.Coef * off
			out.Terms = append(out.Terms, IndexTerm{Var: u, Coef: t.Coef * factor})
		} else {
			out.Terms = append(out.Terms, t)
		}
	}
	return out
}

// substExpr replaces IVar(v) with u*factor + off and rewrites array indices.
func substExpr(e Expr, v, u string, factor, off int) Expr {
	switch x := e.(type) {
	case IVar:
		if string(x) == v {
			return Bin{Op: Add,
				L: Bin{Op: Mul, L: IVar(u), R: Const(float64(factor))},
				R: Const(float64(off))}
		}
		return x
	case Ref:
		return Ref{Array: x.Array, Index: substIndex(x.Index, v, u, factor, off)}
	case Bin:
		return Bin{Op: x.Op, L: substExpr(x.L, v, u, factor, off), R: substExpr(x.R, v, u, factor, off)}
	}
	return e
}

// Fuse returns a copy of p in which adjacent loops with identical bounds are
// merged when the conservative name-based dependence test proves them
// independent (no array or scalar written by one and touched by the other).
// It is the inverse of Distribute for independent statement groups.
func Fuse(p *Program) *Program {
	out := *p
	out.Body = fuseStmts(p.Body)
	return &out
}

func fuseStmts(stmts []Stmt) []Stmt {
	var result []Stmt
	for _, st := range stmts {
		l, ok := st.(Loop)
		if !ok {
			result = append(result, st)
			continue
		}
		l.Body = fuseStmts(l.Body)
		if len(result) > 0 {
			if prev, ok := result[len(result)-1].(Loop); ok && canFuse(prev, l) {
				merged := Loop{Var: prev.Var, Lo: prev.Lo, Hi: prev.Hi,
					Body: append(append([]Stmt{}, prev.Body...), renameLoopVar(l.Body, l.Var, prev.Var)...)}
				result[len(result)-1] = merged
				continue
			}
		}
		result = append(result, l)
	}
	return result
}

// canFuse checks bounds equality, all-assign bodies, and independence.
func canFuse(a, b Loop) bool {
	if a.Lo != b.Lo || a.Hi != b.Hi {
		return false
	}
	allAssign := func(body []Stmt) bool {
		for _, st := range body {
			if _, ok := st.(Assign); !ok {
				return false
			}
		}
		return true
	}
	if !allAssign(a.Body) || !allAssign(b.Body) {
		return false
	}
	for _, sa := range a.Body {
		for _, sb := range b.Body {
			if conflict(sa.(Assign), sb.(Assign)) {
				return false
			}
		}
	}
	return true
}

// renameLoopVar rewrites loop-variable references in assigns from old to new.
func renameLoopVar(body []Stmt, old, new string) []Stmt {
	out := make([]Stmt, 0, len(body))
	for _, st := range body {
		a := st.(Assign)
		na := Assign{Scalar: a.Scalar, E: renameExpr(a.E, old, new)}
		if a.Dest != nil {
			d := Ref{Array: a.Dest.Array, Index: renameIndex(a.Dest.Index, old, new)}
			na.Dest = &d
		}
		out = append(out, na)
	}
	return out
}

func renameIndex(ix Index, old, new string) Index {
	out := Index{Base: ix.Base}
	for _, t := range ix.Terms {
		if t.Var == old {
			t.Var = new
		}
		out.Terms = append(out.Terms, t)
	}
	return out
}

func renameExpr(e Expr, old, new string) Expr {
	switch x := e.(type) {
	case IVar:
		if string(x) == old {
			return IVar(new)
		}
		return x
	case Ref:
		return Ref{Array: x.Array, Index: renameIndex(x.Index, old, new)}
	case Bin:
		return Bin{Op: x.Op, L: renameExpr(x.L, old, new), R: renameExpr(x.R, old, new)}
	}
	return e
}

package compiler

import "fmt"

// Env is the evaluated state of a program: array contents and scalar values.
type Env struct {
	Arrays  map[string][]float64
	Scalars map[string]float64
	// DynamicStmts counts executed assignments (a rough work measure).
	DynamicStmts uint64
}

// Eval runs the program's IR directly in Go. It is the golden model against
// which generated machine code is differentially tested.
func Eval(p *Program) (*Env, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	env := &Env{
		Arrays:  make(map[string][]float64, len(p.Arrays)),
		Scalars: make(map[string]float64, len(p.Scalars)),
	}
	for _, a := range p.Arrays {
		env.Arrays[a.Name] = make([]float64, a.Len)
	}
	for _, s := range p.Scalars {
		env.Scalars[s] = 0
	}
	ivars := map[string]int{}
	if err := evalStmts(p, env, p.Body, ivars); err != nil {
		return nil, err
	}
	return env, nil
}

func evalStmts(p *Program, env *Env, stmts []Stmt, ivars map[string]int) error {
	for _, st := range stmts {
		switch x := st.(type) {
		case Assign:
			v, err := evalExpr(env, x.E, ivars)
			if err != nil {
				return err
			}
			env.DynamicStmts++
			if x.Dest == nil {
				env.Scalars[x.Scalar] = v
				continue
			}
			idx := evalIndex(x.Dest.Index, ivars)
			arr := env.Arrays[x.Dest.Array]
			if idx < 0 || idx >= len(arr) {
				return fmt.Errorf("compiler: store %s[%d] out of bounds (len %d)", x.Dest.Array, idx, len(arr))
			}
			arr[idx] = v
		case Loop:
			for i := x.Lo; i < x.Hi; i++ {
				ivars[x.Var] = i
				if err := evalStmts(p, env, x.Body, ivars); err != nil {
					return err
				}
			}
			delete(ivars, x.Var)
		case Call:
			pr := p.proc(x.Proc)
			if err := evalStmts(p, env, pr.Body, ivars); err != nil {
				return err
			}
		}
	}
	return nil
}

func evalExpr(env *Env, e Expr, ivars map[string]int) (float64, error) {
	switch x := e.(type) {
	case Const:
		return float64(x), nil
	case ScalarRef:
		return env.Scalars[string(x)], nil
	case IVar:
		return float64(ivars[string(x)]), nil
	case Ref:
		idx := evalIndex(x.Index, ivars)
		arr := env.Arrays[x.Array]
		if idx < 0 || idx >= len(arr) {
			return 0, fmt.Errorf("compiler: load %s[%d] out of bounds (len %d)", x.Array, idx, len(arr))
		}
		return arr[idx], nil
	case Bin:
		l, err := evalExpr(env, x.L, ivars)
		if err != nil {
			return 0, err
		}
		r, err := evalExpr(env, x.R, ivars)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case Add:
			return l + r, nil
		case Sub:
			return l - r, nil
		case Mul:
			return l * r, nil
		case Div:
			return l / r, nil
		}
	}
	return 0, fmt.Errorf("compiler: cannot evaluate %T", e)
}

func evalIndex(ix Index, ivars map[string]int) int {
	v := ix.Base
	for _, t := range ix.Terms {
		v += t.Coef * ivars[t.Var]
	}
	return v
}

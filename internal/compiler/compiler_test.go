package compiler

import (
	"math"
	"testing"

	"reuseiq/internal/interp"
)

// vecAdd builds: for i in [0,n): c[i] = a[i] + b[i], with a/b initialized by
// preceding loops.
func vecAdd(n int) *Program {
	return &Program{
		Name: "vecadd",
		Arrays: []ArrayDecl{
			{Name: "a", Len: n}, {Name: "b", Len: n}, {Name: "c", Len: n},
		},
		Body: []Stmt{
			Loop{Var: "i", Lo: 0, Hi: n, Body: []Stmt{
				Assign{Dest: &Ref{Array: "a", Index: IdxVar("i")},
					E: Bin{Add, Bin{Mul, IVar("i"), Const(0.5)}, Const(1)}},
				Assign{Dest: &Ref{Array: "b", Index: IdxVar("i")},
					E: Bin{Mul, IVar("i"), Const(2)}},
			}},
			Loop{Var: "i", Lo: 0, Hi: n, Body: []Stmt{
				Assign{Dest: &Ref{Array: "c", Index: IdxVar("i")},
					E: Bin{Add, Ref{Array: "a", Index: IdxVar("i")}, Ref{Array: "b", Index: IdxVar("i")}}},
			}},
		},
	}
}

func TestEvalVecAdd(t *testing.T) {
	env, err := Eval(vecAdd(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := (float64(i)*0.5 + 1) + float64(i)*2
		if got := env.Arrays["c"][i]; got != want {
			t.Errorf("c[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []*Program{
		{Name: "badarr", Body: []Stmt{Assign{Dest: &Ref{Array: "x", Index: IdxVar("i")}, E: Const(1)}}},
		{Name: "badvar", Arrays: []ArrayDecl{{Name: "a", Len: 4}},
			Body: []Stmt{Assign{Dest: &Ref{Array: "a", Index: IdxVar("i")}, E: Const(1)}}},
		{Name: "badscalar", Body: []Stmt{Assign{Scalar: "s", E: Const(1)}}},
		{Name: "dup", Arrays: []ArrayDecl{{Name: "a", Len: 4}, {Name: "a", Len: 4}}},
		{Name: "negloop", Body: []Stmt{Loop{Var: "i", Lo: 5, Hi: 0}}},
		{Name: "shadow", Arrays: []ArrayDecl{{Name: "a", Len: 4}},
			Body: []Stmt{Loop{Var: "i", Lo: 0, Hi: 2, Body: []Stmt{Loop{Var: "i", Lo: 0, Hi: 2}}}}},
		{Name: "badcall", Body: []Stmt{Call{Proc: "nope"}}},
		{Name: "loopyproc", Procs: []Proc{{Name: "p", Body: []Stmt{Loop{Var: "i", Lo: 0, Hi: 1}}}},
			Body: []Stmt{Call{Proc: "p"}}},
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("program %s validated", p.Name)
		}
	}
	if err := vecAdd(4).Validate(); err != nil {
		t.Errorf("good program rejected: %v", err)
	}
}

func TestEvalBoundsChecked(t *testing.T) {
	p := &Program{
		Name:   "oob",
		Arrays: []ArrayDecl{{Name: "a", Len: 4}},
		Body: []Stmt{Loop{Var: "i", Lo: 0, Hi: 10, Body: []Stmt{
			Assign{Dest: &Ref{Array: "a", Index: IdxVar("i")}, E: Const(1)},
		}}},
	}
	if _, err := Eval(p); err == nil {
		t.Fatal("out-of-bounds store not caught")
	}
}

// runCompiled compiles p, runs the generated code on the functional
// interpreter, and returns the final memory view of each array.
func runCompiled(t *testing.T, p *Program) map[string][]float64 {
	t.Helper()
	mp, src, err := Compile(p)
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	m := interp.New(mp)
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	out := map[string][]float64{}
	for _, a := range p.Arrays {
		base := mp.Symbols[a.Name]
		vals := make([]float64, a.Len)
		for i := range vals {
			vals[i] = m.State.Mem.ReadF64(base + uint32(8*i))
		}
		out[a.Name] = vals
	}
	return out
}

// checkAgainstEval compiles and runs p, comparing every array element with
// the IR evaluator bit for bit (identical operation order must give
// identical doubles).
func checkAgainstEval(t *testing.T, p *Program) {
	t.Helper()
	env, err := Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	got := runCompiled(t, p)
	for _, a := range p.Arrays {
		for i, want := range env.Arrays[a.Name] {
			if g := got[a.Name][i]; g != want && !(math.IsNaN(g) && math.IsNaN(want)) {
				t.Fatalf("%s[%d] = %v, evaluator %v", a.Name, i, g, want)
			}
		}
	}
}

func TestCompileVecAdd(t *testing.T) { checkAgainstEval(t, vecAdd(50)) }

func TestCompileStrided(t *testing.T) {
	// Non-unit coefficient forces inline address computation.
	p := &Program{
		Name:   "strided",
		Arrays: []ArrayDecl{{Name: "a", Len: 64}},
		Body: []Stmt{Loop{Var: "i", Lo: 0, Hi: 16, Body: []Stmt{
			Assign{Dest: &Ref{Array: "a", Index: Idx(1, "i", 3)},
				E: Bin{Add, IVar("i"), Const(0.25)}},
		}}},
	}
	checkAgainstEval(t, p)
}

func TestCompile2D(t *testing.T) {
	const n, m = 8, 12
	p := &Program{
		Name:    "mat",
		Arrays:  []ArrayDecl{{Name: "a", Len: n * m}, {Name: "rowsum", Len: n}},
		Scalars: []string{"acc"},
		Body: []Stmt{
			Loop{Var: "i", Lo: 0, Hi: n, Body: []Stmt{
				Loop{Var: "j", Lo: 0, Hi: m, Body: []Stmt{
					Assign{Dest: &Ref{Array: "a", Index: Idx(0, "i", m, "j", 1)},
						E: Bin{Add, Bin{Mul, IVar("i"), Const(10)}, IVar("j")}},
				}},
			}},
			Loop{Var: "i", Lo: 0, Hi: n, Body: []Stmt{
				Assign{Scalar: "acc", E: Const(0)},
				Assign{Scalar: "acc", E: Bin{Add, ScalarRef("acc"), Ref{Array: "a", Index: Idx(0, "i", m)}}},
				Assign{Dest: &Ref{Array: "rowsum", Index: IdxVar("i")}, E: ScalarRef("acc")},
			}},
		},
	}
	checkAgainstEval(t, p)
}

func TestCompileReduction(t *testing.T) {
	const n = 40
	p := &Program{
		Name:    "dot",
		Arrays:  []ArrayDecl{{Name: "x", Len: n}, {Name: "y", Len: n}, {Name: "out", Len: 1}},
		Scalars: []string{"s"},
		Body: []Stmt{
			Loop{Var: "i", Lo: 0, Hi: n, Body: []Stmt{
				Assign{Dest: &Ref{Array: "x", Index: IdxVar("i")}, E: Bin{Add, IVar("i"), Const(1)}},
				Assign{Dest: &Ref{Array: "y", Index: IdxVar("i")}, E: Bin{Sub, Const(100), IVar("i")}},
			}},
			Loop{Var: "i", Lo: 0, Hi: n, Body: []Stmt{
				Assign{Scalar: "s", E: Bin{Add, ScalarRef("s"),
					Bin{Mul, Ref{Array: "x", Index: IdxVar("i")}, Ref{Array: "y", Index: IdxVar("i")}}}},
			}},
			Assign{Dest: &Ref{Array: "out", Index: Idx(0)}, E: ScalarRef("s")},
		},
	}
	checkAgainstEval(t, p)
}

func TestCompileProcedureCall(t *testing.T) {
	p := &Program{
		Name:    "withcall",
		Arrays:  []ArrayDecl{{Name: "a", Len: 8}, {Name: "cnt", Len: 1}},
		Scalars: []string{"t"},
		Procs: []Proc{{Name: "bump", Body: []Stmt{
			Assign{Scalar: "t", E: Bin{Add, ScalarRef("t"), Const(1)}},
		}}},
		Body: []Stmt{
			Loop{Var: "i", Lo: 0, Hi: 8, Body: []Stmt{
				Assign{Dest: &Ref{Array: "a", Index: IdxVar("i")}, E: ScalarRef("t")},
				Call{Proc: "bump"},
			}},
			Assign{Dest: &Ref{Array: "cnt", Index: Idx(0)}, E: ScalarRef("t")},
		},
	}
	checkAgainstEval(t, p)
	env, _ := Eval(p)
	if env.Scalars["t"] != 8 {
		t.Errorf("t = %v", env.Scalars["t"])
	}
}

func TestCompileDivision(t *testing.T) {
	p := &Program{
		Name:   "div",
		Arrays: []ArrayDecl{{Name: "a", Len: 16}},
		Body: []Stmt{Loop{Var: "i", Lo: 0, Hi: 16, Body: []Stmt{
			Assign{Dest: &Ref{Array: "a", Index: IdxVar("i")},
				E: Bin{Div, Const(1), Bin{Add, IVar("i"), Const(2)}}},
		}}},
	}
	checkAgainstEval(t, p)
}

// --- loop distribution ---------------------------------------------------

func TestDistributeSplitsIndependent(t *testing.T) {
	p := vecAdd(16)
	d := Distribute(p)
	// The first loop writes a and b (independent): splits in two.
	if CountLoops(p) != 2 || CountLoops(d) != 3 {
		t.Fatalf("loops: orig %d, dist %d", CountLoops(p), CountLoops(d))
	}
	if MaxLoopBody(d) != 1 {
		t.Errorf("max body after distribution = %d", MaxLoopBody(d))
	}
	// Semantics preserved.
	e1, err := Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1.Arrays["c"] {
		if e1.Arrays["c"][i] != e2.Arrays["c"][i] {
			t.Fatalf("c[%d] differs after distribution", i)
		}
	}
}

func TestDistributeKeepsDependent(t *testing.T) {
	// s2 reads what s1 writes: must stay together.
	p := &Program{
		Name:   "dep",
		Arrays: []ArrayDecl{{Name: "a", Len: 16}, {Name: "b", Len: 16}},
		Body: []Stmt{Loop{Var: "i", Lo: 0, Hi: 16, Body: []Stmt{
			Assign{Dest: &Ref{Array: "a", Index: IdxVar("i")}, E: IVar("i")},
			Assign{Dest: &Ref{Array: "b", Index: IdxVar("i")}, E: Ref{Array: "a", Index: IdxVar("i")}},
		}}},
	}
	d := Distribute(p)
	if CountLoops(d) != 1 {
		t.Fatalf("dependent statements were split: %d loops", CountLoops(d))
	}
}

func TestDistributeScalarDependence(t *testing.T) {
	// A scalar written by one statement and read by another chains them.
	p := &Program{
		Name:    "sdep",
		Arrays:  []ArrayDecl{{Name: "a", Len: 8}, {Name: "b", Len: 8}},
		Scalars: []string{"s"},
		Body: []Stmt{Loop{Var: "i", Lo: 0, Hi: 8, Body: []Stmt{
			Assign{Scalar: "s", E: Bin{Add, ScalarRef("s"), IVar("i")}},
			Assign{Dest: &Ref{Array: "a", Index: IdxVar("i")}, E: ScalarRef("s")},
			Assign{Dest: &Ref{Array: "b", Index: IdxVar("i")}, E: IVar("i")},
		}}},
	}
	d := Distribute(p)
	// s-chain stays together; b's statement splits off.
	if CountLoops(d) != 2 {
		t.Fatalf("loops after distribution = %d, want 2", CountLoops(d))
	}
}

func TestDistributeLeavesNestedLoops(t *testing.T) {
	p := &Program{
		Name:   "nest",
		Arrays: []ArrayDecl{{Name: "a", Len: 64}, {Name: "b", Len: 8}},
		Body: []Stmt{Loop{Var: "i", Lo: 0, Hi: 8, Body: []Stmt{
			Assign{Dest: &Ref{Array: "b", Index: IdxVar("i")}, E: IVar("i")},
			Loop{Var: "j", Lo: 0, Hi: 8, Body: []Stmt{
				Assign{Dest: &Ref{Array: "a", Index: Idx(0, "i", 8, "j", 1)}, E: IVar("j")},
				Assign{Dest: &Ref{Array: "b", Index: IdxVar("i")}, E: IVar("i")},
			}},
		}}},
	}
	d := Distribute(p)
	// The outer loop mixes an Assign and a Loop: left intact. The inner
	// loop's two assigns are independent... except both touch b? The
	// inner writes a and b; independent of each other: splits.
	if CountLoops(d) != 3 {
		t.Fatalf("loops = %d, want 3", CountLoops(d))
	}
	// Distribution preserves semantics even in the nested case.
	e1, _ := Eval(p)
	e2, _ := Eval(d)
	for i := range e1.Arrays["a"] {
		if e1.Arrays["a"][i] != e2.Arrays["a"][i] {
			t.Fatal("nested distribution changed semantics")
		}
	}
}

func TestDistributedCodeStillCorrect(t *testing.T) {
	checkAgainstEval(t, Distribute(vecAdd(30)))
}

package compiler

import "testing"

func arraysEqual(t *testing.T, p1, p2 *Program) {
	t.Helper()
	e1, err := Eval(p1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Eval(p2)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p1.Arrays {
		for i := range e1.Arrays[a.Name] {
			if e1.Arrays[a.Name][i] != e2.Arrays[a.Name][i] {
				t.Fatalf("%s[%d]: %v vs %v", a.Name, i, e1.Arrays[a.Name][i], e2.Arrays[a.Name][i])
			}
		}
	}
}

func rampKernel(n int) *Program {
	return &Program{
		Name:   "ramp",
		Arrays: []ArrayDecl{{Name: "a", Len: n}, {Name: "b", Len: n}},
		Body: []Stmt{
			Loop{Var: "i", Lo: 0, Hi: n, Body: []Stmt{
				Assign{Dest: &Ref{Array: "a", Index: IdxVar("i")},
					E: Bin{Add, Bin{Mul, IVar("i"), Const(2)}, Const(1)}},
			}},
			Loop{Var: "i", Lo: 0, Hi: n, Body: []Stmt{
				Assign{Dest: &Ref{Array: "b", Index: IdxVar("i")},
					E: Bin{Mul, Ref{Array: "a", Index: IdxVar("i")}, Const(3)}},
			}},
		},
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	p := rampKernel(24)
	for _, f := range []int{2, 3, 4, 6} {
		u := Unroll(p, f)
		if err := u.Validate(); err != nil {
			t.Fatalf("factor %d: %v", f, err)
		}
		arraysEqual(t, p, u)
	}
}

func TestUnrollEnlargesBody(t *testing.T) {
	p := rampKernel(24)
	u := Unroll(p, 4)
	if MaxLoopBody(u) != 4*MaxLoopBody(p) {
		t.Errorf("body %d -> %d, want 4x", MaxLoopBody(p), MaxLoopBody(u))
	}
	if CountLoops(u) != CountLoops(p) {
		t.Error("unroll changed the loop count")
	}
}

func TestUnrollSkipsNonDivisibleTrips(t *testing.T) {
	p := rampKernel(25) // 25 % 4 != 0
	u := Unroll(p, 4)
	if MaxLoopBody(u) != MaxLoopBody(p) {
		t.Error("non-divisible loop was unrolled")
	}
	arraysEqual(t, p, u)
}

func TestUnrollSkipsNestedLoops(t *testing.T) {
	p := &Program{
		Name:   "nest",
		Arrays: []ArrayDecl{{Name: "a", Len: 64}},
		Body: []Stmt{
			Loop{Var: "i", Lo: 0, Hi: 8, Body: []Stmt{
				Loop{Var: "j", Lo: 0, Hi: 8, Body: []Stmt{
					Assign{Dest: &Ref{Array: "a", Index: Idx(0, "i", 8, "j", 1)}, E: IVar("j")},
				}},
			}},
		},
	}
	u := Unroll(p, 2)
	// The inner loop unrolls (all assigns); the outer (contains a loop)
	// must not.
	arraysEqual(t, p, u)
	if CountLoops(u) != 2 {
		t.Errorf("loops = %d", CountLoops(u))
	}
}

func TestUnrolledCodeCompilesAndRuns(t *testing.T) {
	p := rampKernel(32)
	checkAgainstEval(t, Unroll(p, 4))
}

func TestFuseIndependentLoops(t *testing.T) {
	p := rampKernel(16)
	// The two loops conflict (loop 2 reads a, loop 1 writes it): no fusion.
	f := Fuse(p)
	if CountLoops(f) != 2 {
		t.Fatalf("dependent loops fused: %d", CountLoops(f))
	}
	// Distribute-then-fuse on an independent pair round-trips.
	ind := &Program{
		Name:   "ind",
		Arrays: []ArrayDecl{{Name: "x", Len: 8}, {Name: "y", Len: 8}},
		Body: []Stmt{
			Loop{Var: "i", Lo: 0, Hi: 8, Body: []Stmt{
				Assign{Dest: &Ref{Array: "x", Index: IdxVar("i")}, E: IVar("i")},
			}},
			Loop{Var: "j", Lo: 0, Hi: 8, Body: []Stmt{
				Assign{Dest: &Ref{Array: "y", Index: IdxVar("j")}, E: Bin{Mul, IVar("j"), Const(2)}},
			}},
		},
	}
	fused := Fuse(ind)
	if CountLoops(fused) != 1 {
		t.Fatalf("independent loops not fused: %d", CountLoops(fused))
	}
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
	arraysEqual(t, ind, fused)
}

func TestFuseIsInverseOfDistribute(t *testing.T) {
	ind := &Program{
		Name:   "pair",
		Arrays: []ArrayDecl{{Name: "x", Len: 8}, {Name: "y", Len: 8}},
		Body: []Stmt{
			Loop{Var: "i", Lo: 0, Hi: 8, Body: []Stmt{
				Assign{Dest: &Ref{Array: "x", Index: IdxVar("i")}, E: IVar("i")},
				Assign{Dest: &Ref{Array: "y", Index: IdxVar("i")}, E: IVar("i")},
			}},
		},
	}
	d := Distribute(ind)
	if CountLoops(d) != 2 {
		t.Fatal("distribution did not split")
	}
	f := Fuse(d)
	if CountLoops(f) != 1 {
		t.Fatal("fusion did not rejoin the distributed loops")
	}
	arraysEqual(t, ind, f)
}

func TestFuseRespectsBounds(t *testing.T) {
	p := &Program{
		Name:   "bounds",
		Arrays: []ArrayDecl{{Name: "x", Len: 16}, {Name: "y", Len: 16}},
		Body: []Stmt{
			Loop{Var: "i", Lo: 0, Hi: 8, Body: []Stmt{
				Assign{Dest: &Ref{Array: "x", Index: IdxVar("i")}, E: IVar("i")},
			}},
			Loop{Var: "j", Lo: 0, Hi: 16, Body: []Stmt{
				Assign{Dest: &Ref{Array: "y", Index: IdxVar("j")}, E: IVar("j")},
			}},
		},
	}
	if CountLoops(Fuse(p)) != 2 {
		t.Fatal("loops with different bounds fused")
	}
}

// Package compiler implements a small loop-nest compiler used to express the
// paper's array-intensive workloads: a loop IR over float64 arrays, an IR
// evaluator (the golden model for generated code), the loop *distribution*
// transformation studied in the paper's Section 4 (Kennedy–McKinley style,
// with a conservative name-based dependence test), and a code generator that
// lowers the IR to the repository's assembly language with pointer
// strength-reduction, producing the tight loop bodies the reuse-capable
// issue queue captures.
package compiler

import "fmt"

// Expr is an arithmetic expression over float64 values.
type Expr interface{ exprNode() }

// Const is a floating-point literal.
type Const float64

// ScalarRef reads a named scalar variable.
type ScalarRef string

// IVar reads a loop induction variable, converted to float64.
type IVar string

// Ref reads an array element. Index is affine in the enclosing loop
// variables.
type Ref struct {
	Array string
	Index Index
}

// BinOp is an arithmetic operator.
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
)

func (op BinOp) String() string { return [...]string{"+", "-", "*", "/"}[op] }

// Bin applies an operator to two subexpressions.
type Bin struct {
	Op   BinOp
	L, R Expr
}

func (Const) exprNode()     {}
func (ScalarRef) exprNode() {}
func (IVar) exprNode()      {}
func (Ref) exprNode()       {}
func (Bin) exprNode()       {}

// Index is an affine index expression: Base + sum(Coef_i * Var_i).
// Multi-dimensional arrays are expressed in flattened form (row major).
type Index struct {
	Base  int
	Terms []IndexTerm
}

// IndexTerm is one linear term of an affine index.
type IndexTerm struct {
	Var  string
	Coef int
}

// Idx builds an affine index: Idx(base, "i", ci, "j", cj, ...).
func Idx(base int, pairs ...any) Index {
	ix := Index{Base: base}
	for i := 0; i+1 < len(pairs); i += 2 {
		ix.Terms = append(ix.Terms, IndexTerm{Var: pairs[i].(string), Coef: pairs[i+1].(int)})
	}
	return ix
}

// IdxVar is the common [v] index.
func IdxVar(v string) Index { return Idx(0, v, 1) }

// Stmt is a statement.
type Stmt interface{ stmtNode() }

// Assign stores an expression either into an array element (Dest != nil) or
// into a scalar variable (Scalar != "").
type Assign struct {
	Dest   *Ref   // array destination, or nil
	Scalar string // scalar destination when Dest is nil
	E      Expr
}

// Loop is a counted loop: for Var := Lo; Var < Hi; Var++ { Body }.
type Loop struct {
	Var  string
	Lo   int
	Hi   int
	Body []Stmt
}

// Call invokes a named procedure (a straight-line statement list).
type Call struct{ Proc string }

func (Assign) stmtNode() {}
func (Loop) stmtNode()   {}
func (Call) stmtNode()   {}

// ArrayDecl declares a float64 array (flattened length Len).
type ArrayDecl struct {
	Name string
	Len  int
}

// Proc is a named straight-line procedure (no nested calls or loops),
// used to model procedure calls inside loops (paper §2.2.2).
type Proc struct {
	Name string
	Body []Stmt
}

// Program is one kernel: declarations plus a statement list.
type Program struct {
	Name    string
	Arrays  []ArrayDecl
	Scalars []string // scalar float64 variables, initialized to 0
	Procs   []Proc
	Body    []Stmt
}

// Validate checks naming and structural constraints.
func (p *Program) Validate() error {
	arrays := map[string]int{}
	for _, a := range p.Arrays {
		if a.Len <= 0 {
			return fmt.Errorf("compiler: array %s has length %d", a.Name, a.Len)
		}
		if _, dup := arrays[a.Name]; dup {
			return fmt.Errorf("compiler: duplicate array %s", a.Name)
		}
		arrays[a.Name] = a.Len
	}
	scalars := map[string]bool{}
	for _, s := range p.Scalars {
		if scalars[s] {
			return fmt.Errorf("compiler: duplicate scalar %s", s)
		}
		scalars[s] = true
	}
	procs := map[string]bool{}
	for _, pr := range p.Procs {
		if procs[pr.Name] {
			return fmt.Errorf("compiler: duplicate proc %s", pr.Name)
		}
		procs[pr.Name] = true
		for _, st := range pr.Body {
			switch st.(type) {
			case Loop, Call:
				return fmt.Errorf("compiler: proc %s must be straight-line", pr.Name)
			}
		}
	}
	var checkStmts func(stmts []Stmt, vars map[string]bool) error
	var checkExpr func(e Expr, vars map[string]bool) error
	checkExpr = func(e Expr, vars map[string]bool) error {
		switch x := e.(type) {
		case Const:
		case ScalarRef:
			if !scalars[string(x)] {
				return fmt.Errorf("compiler: undeclared scalar %q", string(x))
			}
		case IVar:
			if !vars[string(x)] {
				return fmt.Errorf("compiler: loop variable %q not in scope", string(x))
			}
		case Ref:
			if _, ok := arrays[x.Array]; !ok {
				return fmt.Errorf("compiler: undeclared array %q", x.Array)
			}
			for _, t := range x.Index.Terms {
				if !vars[t.Var] {
					return fmt.Errorf("compiler: index variable %q not in scope", t.Var)
				}
			}
		case Bin:
			if err := checkExpr(x.L, vars); err != nil {
				return err
			}
			return checkExpr(x.R, vars)
		default:
			return fmt.Errorf("compiler: unknown expression %T", e)
		}
		return nil
	}
	checkStmts = func(stmts []Stmt, vars map[string]bool) error {
		for _, st := range stmts {
			switch x := st.(type) {
			case Assign:
				if x.Dest == nil && !scalars[x.Scalar] {
					return fmt.Errorf("compiler: assign to undeclared scalar %q", x.Scalar)
				}
				if x.Dest != nil {
					if err := checkExpr(*x.Dest, vars); err != nil {
						return err
					}
				}
				if err := checkExpr(x.E, vars); err != nil {
					return err
				}
			case Loop:
				if vars[x.Var] {
					return fmt.Errorf("compiler: loop variable %q shadows an outer loop", x.Var)
				}
				if x.Hi < x.Lo {
					return fmt.Errorf("compiler: loop %q has empty/negative range [%d,%d)", x.Var, x.Lo, x.Hi)
				}
				inner := map[string]bool{}
				for k := range vars {
					inner[k] = true
				}
				inner[x.Var] = true
				if err := checkStmts(x.Body, inner); err != nil {
					return err
				}
			case Call:
				if !procs[x.Proc] {
					return fmt.Errorf("compiler: call to undeclared proc %q", x.Proc)
				}
			default:
				return fmt.Errorf("compiler: unknown statement %T", st)
			}
		}
		return nil
	}
	if err := checkStmts(p.Body, map[string]bool{}); err != nil {
		return err
	}
	for _, pr := range p.Procs {
		if err := checkStmts(pr.Body, map[string]bool{}); err != nil {
			return fmt.Errorf("proc %s: %w", pr.Name, err)
		}
	}
	return nil
}

// ArrayLen returns the declared length of array name.
func (p *Program) ArrayLen(name string) int {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a.Len
		}
	}
	return 0
}

func (p *Program) proc(name string) *Proc {
	for i := range p.Procs {
		if p.Procs[i].Name == name {
			return &p.Procs[i]
		}
	}
	return nil
}

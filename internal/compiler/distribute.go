package compiler

// Loop distribution (paper §4, citing Kennedy & McKinley): split a loop whose
// body contains several statements into several loops, each with a smaller
// body, so that large loop bodies fit a small issue queue. Distribution is
// legal when the statements placed in different result loops carry no
// dependence between each other across iterations.
//
// The dependence test here is conservative and name-based: two statements
// conflict when they touch a common array or scalar with at least one write
// (flow, anti and output dependences are all treated alike, without
// subscript analysis). Conflicting statements stay in the same result loop,
// preserving all original orderings; non-conflicting statement groups become
// separate loops in original textual order. This is always legal — it can
// only miss distribution opportunities, never create an illegal one.

// Distribute returns a copy of the program with loop distribution applied to
// every loop (innermost first). Loops containing nested loops or calls are
// not split across those constructs: only maximal runs of Assign statements
// are considered.
func Distribute(p *Program) *Program {
	out := *p
	out.Body = distributeStmts(p.Body)
	return &out
}

func distributeStmts(stmts []Stmt) []Stmt {
	var result []Stmt
	for _, st := range stmts {
		l, ok := st.(Loop)
		if !ok {
			result = append(result, st)
			continue
		}
		l.Body = distributeStmts(l.Body)
		result = append(result, splitLoop(l)...)
	}
	return result
}

// splitLoop partitions the loop's Assign statements into dependence clusters
// and emits one loop per cluster. A loop whose body contains anything other
// than Assign statements is left intact (distribution across nested loops or
// calls would require interchange analysis the paper does not rely on).
func splitLoop(l Loop) []Stmt {
	if len(l.Body) < 2 {
		return []Stmt{l}
	}
	assigns := make([]Assign, 0, len(l.Body))
	for _, st := range l.Body {
		a, ok := st.(Assign)
		if !ok {
			return []Stmt{l}
		}
		assigns = append(assigns, a)
	}

	// Union-find over statements, joined on conflicting accesses.
	parent := make([]int, len(assigns))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for i := 0; i < len(assigns); i++ {
		for j := i + 1; j < len(assigns); j++ {
			if conflict(assigns[i], assigns[j]) {
				union(i, j)
			}
		}
	}

	// Emit clusters in order of first appearance.
	order := []int{}
	members := map[int][]Stmt{}
	for i, a := range assigns {
		root := find(i)
		if _, seen := members[root]; !seen {
			order = append(order, root)
		}
		members[root] = append(members[root], a)
	}
	if len(order) == 1 {
		return []Stmt{l}
	}
	out := make([]Stmt, 0, len(order))
	for _, root := range order {
		out = append(out, Loop{Var: l.Var, Lo: l.Lo, Hi: l.Hi, Body: members[root]})
	}
	return out
}

// conflict reports whether two assignments share a storage location name
// with at least one write.
func conflict(a, b Assign) bool {
	aw, ar := accessSets(a)
	bw, br := accessSets(b)
	return intersects(aw, bw) || intersects(aw, br) || intersects(bw, ar)
}

// accessSets returns the written and read location names of an assignment.
// Array and scalar namespaces are kept distinct by prefixing.
func accessSets(a Assign) (writes, reads map[string]bool) {
	writes = map[string]bool{}
	reads = map[string]bool{}
	if a.Dest != nil {
		writes["a:"+a.Dest.Array] = true
	} else {
		writes["s:"+a.Scalar] = true
	}
	collectReads(a.E, reads)
	return writes, reads
}

func collectReads(e Expr, into map[string]bool) {
	switch x := e.(type) {
	case Ref:
		into["a:"+x.Array] = true
	case ScalarRef:
		into["s:"+string(x)] = true
	case Bin:
		collectReads(x.L, into)
		collectReads(x.R, into)
	}
}

func intersects(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// MaxLoopBody returns the largest number of Assign statements in any loop of
// the program (a proxy for generated loop-body size, used in tests and
// reporting).
func MaxLoopBody(p *Program) int {
	var walk func(stmts []Stmt) int
	walk = func(stmts []Stmt) int {
		max := 0
		for _, st := range stmts {
			if l, ok := st.(Loop); ok {
				n := 0
				for _, s := range l.Body {
					if _, isAssign := s.(Assign); isAssign {
						n++
					}
				}
				if n > max {
					max = n
				}
				if m := walk(l.Body); m > max {
					max = m
				}
			}
		}
		return max
	}
	return walk(p.Body)
}

// CountLoops returns the number of loops in the program.
func CountLoops(p *Program) int {
	var walk func(stmts []Stmt) int
	walk = func(stmts []Stmt) int {
		n := 0
		for _, st := range stmts {
			if l, ok := st.(Loop); ok {
				n += 1 + walk(l.Body)
			}
		}
		return n
	}
	return walk(p.Body)
}

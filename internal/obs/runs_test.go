package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"reuseiq/internal/runstore"
)

func ledgerFixture() []runstore.Record {
	return []runstore.Record{
		{
			V: runstore.SchemaVersion, ID: "aaaa1111bbbb2222", Kind: runstore.KindSim,
			Start: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC), Kernel: "aps",
			IQSize: 64, Reuse: true, Fingerprint: "0011223344556677:8899aabbccddeeff",
			Cycles: 1000, Commits: 1700, IPC: 1.7,
			Metrics: runstore.Metrics{Counters: []runstore.Counter{{Name: "commit.loads", Value: 42}}},
			Energy:  map[string]float64{"total": 9.5},
			Host:    runstore.Host{WallNS: 5_000_000},
		},
		{
			V: runstore.SchemaVersion, ID: "cccc3333dddd4444", Kind: runstore.KindCell,
			Kernel: "adi", IQSize: 128, Reuse: false,
			Fingerprint: "ffeeddccbbaa9988:8899aabbccddeeff",
			Cycles:      2000, Commits: 1500, IPC: 0.75,
		},
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("%s: %v\n%s", path, err, body)
		}
	}
	return resp
}

// TestRunsEndpointsNoLedger pins the unattached behavior: both endpoints
// answer 404 with a hint, not an empty listing a dashboard would mistake for
// "no runs yet".
func TestRunsEndpointsNoLedger(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	for _, path := range []string{"/runs", "/runs/aaaa1111bbbb2222"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s with no ledger = %d, want 404", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "-ledger") {
			t.Errorf("%s 404 body does not mention -ledger: %s", path, body)
		}
	}
}

// runsListing is the /runs wire shape the dashboard consumes; the test
// decodes into it so a field rename breaks loudly here, not in a browser.
type runsListing struct {
	Total int `json:"total"`
	Runs  []struct {
		ID          string  `json:"id"`
		Kind        string  `json:"kind"`
		Kernel      string  `json:"kernel"`
		IQ          int     `json:"iq"`
		Reuse       bool    `json:"reuse"`
		Fingerprint string  `json:"fingerprint"`
		Cycles      uint64  `json:"cycles"`
		IPC         float64 `json:"ipc"`
		WallNS      int64   `json:"wall_ns"`
	} `json:"runs"`
}

func TestRunsListingAndFilters(t *testing.T) {
	srv := NewServer()
	recs := ledgerFixture()
	srv.SetRunSource(func() []runstore.Record { return recs })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var all runsListing
	if resp := getJSON(t, ts, "/runs", &all); resp.StatusCode != http.StatusOK {
		t.Fatalf("/runs = %d", resp.StatusCode)
	}
	if all.Total != 2 || len(all.Runs) != 2 {
		t.Fatalf("total = %d, runs = %d, want 2/2", all.Total, len(all.Runs))
	}
	r0 := all.Runs[0]
	if r0.ID != "aaaa1111bbbb2222" || r0.Kernel != "aps" || r0.IQ != 64 || !r0.Reuse ||
		r0.Cycles != 1000 || r0.IPC != 1.7 || r0.WallNS != 5_000_000 {
		t.Errorf("summary fields wrong: %+v", r0)
	}

	var filtered runsListing
	getJSON(t, ts, "/runs?kernel=adi", &filtered)
	if filtered.Total != 1 || filtered.Runs[0].Kind != runstore.KindCell {
		t.Errorf("kernel filter: %+v", filtered)
	}
	getJSON(t, ts, "/runs?kind=sim", &filtered)
	if filtered.Total != 1 || filtered.Runs[0].ID != "aaaa1111bbbb2222" {
		t.Errorf("kind filter: %+v", filtered)
	}
	// A bare config-half fingerprint matches on configuration alone.
	getJSON(t, ts, "/runs?fingerprint=ffeeddccbbaa9988", &filtered)
	if filtered.Total != 1 || filtered.Runs[0].Kernel != "adi" {
		t.Errorf("fingerprint filter: %+v", filtered)
	}
	getJSON(t, ts, "/runs?last=1", &filtered)
	if filtered.Total != 1 || filtered.Runs[0].ID != "cccc3333dddd4444" {
		t.Errorf("last filter: %+v", filtered)
	}

	if resp := getJSON(t, ts, "/runs?last=x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/runs?last=x = %d, want 400", resp.StatusCode)
	}
}

func TestRunByIDFullRecord(t *testing.T) {
	srv := NewServer()
	recs := ledgerFixture()
	srv.SetRunSource(func() []runstore.Record { return recs })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The full record carries the metrics payload the summary elides.
	var rec runstore.Record
	if resp := getJSON(t, ts, "/runs/aaaa1111bbbb2222", &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("/runs/{id} = %d", resp.StatusCode)
	}
	if len(rec.Metrics.Counters) != 1 || rec.Metrics.Counters[0].Name != "commit.loads" {
		t.Errorf("full record lost its metrics: %+v", rec.Metrics)
	}
	if rec.Energy["total"] != 9.5 {
		t.Errorf("full record lost its energy map: %+v", rec.Energy)
	}

	// Unique prefix resolves; a short or unknown id is 404.
	var byPrefix runstore.Record
	if resp := getJSON(t, ts, "/runs/aaaa", &byPrefix); resp.StatusCode != http.StatusOK || byPrefix.ID != rec.ID {
		t.Errorf("prefix lookup: status %d, id %q", resp.StatusCode, byPrefix.ID)
	}
	for _, path := range []string{"/runs/aa", "/runs/eeee5555"} {
		if resp := getJSON(t, ts, path, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestDashboardServes pins the page's load-bearing structure: it references
// the /events stream and /runs endpoint it charts from, and ships the
// progress elements the SSE handler updates.
func TestDashboardServes(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dashboard = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"EventSource(\"/events\")", "/runs?last=25", "addEventListener(\"progress\"",
		"id=\"bar\"", "id=\"done\"", "id=\"eta\"", "prefers-color-scheme: dark",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/dashboard missing %q", want)
		}
	}
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"reuseiq/internal/obs/lintrules"
)

// Promlint-style validation of the /metrics and /events wire formats. The
// cmd/obscheck gate and the package tests share these so the checker can
// never drift from what the server actually emits. The name and label
// charsets live in internal/obs/lintrules, shared with the compile-time
// metricname analyzer.

// ExpoMetric is one metric family parsed from an exposition: its declared
// type and every sample keyed by the full sample name including labels.
type ExpoMetric struct {
	Type    string // "counter", "gauge" or "histogram"
	Samples map[string]float64
}

// LintExposition parses and validates a Prometheus text exposition: legal
// metric and label names, a TYPE declaration preceding every sample, numeric
// values, no duplicate sample lines, and cumulative histogram buckets ending
// in le="+Inf" equal to _count. It returns the parsed families keyed by base
// metric name.
func LintExposition(data []byte) (map[string]ExpoMetric, error) {
	metrics := map[string]ExpoMetric{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, lineNo, metrics); err != nil {
				return nil, err
			}
			continue
		}
		if err := lintSample(line, lineNo, metrics); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, m := range metrics {
		if m.Type == "histogram" {
			if err := lintHistogram(name, m); err != nil {
				return nil, err
			}
		}
	}
	return metrics, nil
}

func lintComment(line string, lineNo int, metrics map[string]ExpoMetric) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[1] != "TYPE" {
		return nil // HELP or free comment: ignored
	}
	if len(fields) != 4 {
		return fmt.Errorf("obs: line %d: malformed TYPE comment %q", lineNo, line)
	}
	name, typ := fields[2], fields[3]
	if !lintrules.ValidExpositionMetricName(name) {
		return fmt.Errorf("obs: line %d: illegal metric name %q", lineNo, name)
	}
	switch typ {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, typ)
	}
	if m, ok := metrics[name]; ok && m.Type != typ {
		return fmt.Errorf("obs: line %d: metric %q redeclared as %s (was %s)",
			lineNo, name, typ, m.Type)
	}
	if _, ok := metrics[name]; !ok {
		metrics[name] = ExpoMetric{Type: typ, Samples: map[string]float64{}}
	}
	return nil
}

func lintSample(line string, lineNo int, metrics map[string]ExpoMetric) error {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return fmt.Errorf("obs: line %d: sample %q has no value", lineNo, line)
	}
	key, valStr := line[:sp], line[sp+1:]
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return fmt.Errorf("obs: line %d: bad sample value %q: %v", lineNo, valStr, err)
	}
	name := key
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if !strings.HasSuffix(key, "}") {
			return fmt.Errorf("obs: line %d: unterminated label set in %q", lineNo, key)
		}
		name = key[:i]
		if err := lintLabels(key[i+1:len(key)-1], lineNo); err != nil {
			return err
		}
	}
	if !lintrules.ValidExpositionMetricName(name) {
		return fmt.Errorf("obs: line %d: illegal metric name %q", lineNo, name)
	}
	fam := baseFamily(name, metrics)
	m, ok := metrics[fam]
	if !ok {
		return fmt.Errorf("obs: line %d: sample %q has no preceding TYPE declaration", lineNo, name)
	}
	if _, dup := m.Samples[key]; dup {
		return fmt.Errorf("obs: line %d: duplicate sample %q", lineNo, key)
	}
	m.Samples[key] = val
	return nil
}

// baseFamily maps a sample name to its declared family: exact match, or the
// histogram family for _bucket/_sum/_count suffixes.
func baseFamily(name string, metrics map[string]ExpoMetric) string {
	if _, ok := metrics[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, found := strings.CutSuffix(name, suf); found {
			if m, ok := metrics[base]; ok && m.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

func lintLabels(labels string, lineNo int) error {
	for _, pair := range splitLabels(labels) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("obs: line %d: malformed label %q", lineNo, pair)
		}
		name, val := pair[:eq], pair[eq+1:]
		if !lintrules.ValidLabelName(name) {
			return fmt.Errorf("obs: line %d: illegal label name %q", lineNo, name)
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return fmt.Errorf("obs: line %d: unquoted label value %q", lineNo, val)
		}
	}
	return nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func lintHistogram(name string, m ExpoMetric) error {
	type bucket struct {
		le  float64
		val float64
	}
	var buckets []bucket
	hasInf := false
	var infVal, count float64
	hasCount := false
	for key, val := range m.Samples {
		switch {
		case strings.HasPrefix(key, name+"_bucket{"):
			le := extractLE(key)
			if le == "" {
				return fmt.Errorf("obs: histogram %s bucket %q has no le label", name, key)
			}
			if le == "+Inf" {
				hasInf, infVal = true, val
				continue
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("obs: histogram %s: bad le %q", name, le)
			}
			buckets = append(buckets, bucket{f, val})
		case key == name+"_count":
			hasCount, count = true, val
		}
	}
	if !hasInf {
		return fmt.Errorf("obs: histogram %s has no le=\"+Inf\" bucket", name)
	}
	if hasCount && infVal != count {
		return fmt.Errorf("obs: histogram %s: +Inf bucket %g != _count %g", name, infVal, count)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	prev := 0.0
	for _, b := range buckets {
		if b.val < prev {
			return fmt.Errorf("obs: histogram %s buckets not cumulative at le=%g", name, b.le)
		}
		prev = b.val
	}
	if len(buckets) > 0 && infVal < prev {
		return fmt.Errorf("obs: histogram %s: +Inf bucket below le=%g bucket", name, buckets[len(buckets)-1].le)
	}
	return nil
}

func extractLE(key string) string {
	i := strings.Index(key, `le="`)
	if i < 0 {
		return ""
	}
	rest := key[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// CheckMonotone verifies that every metric declared counter in both
// expositions did not decrease between them (sample by sample).
func CheckMonotone(prev, cur map[string]ExpoMetric) error {
	for name, pm := range prev {
		if pm.Type != "counter" {
			continue
		}
		cm, ok := cur[name]
		if !ok {
			continue // metric disappeared between scrapes: not a monotonicity bug
		}
		for key, pv := range pm.Samples {
			if cv, ok := cm.Samples[key]; ok && cv < pv {
				return fmt.Errorf("obs: counter %s went backwards: %g -> %g", key, pv, cv)
			}
		}
	}
	return nil
}

// SSEFrame is one parsed Server-Sent-Events frame.
type SSEFrame struct {
	ID    string
	Event string
	Data  []byte
}

// ReadSSE reads frames from r until limit frames have been parsed (limit <=
// 0 means until EOF), validating as it goes: only id/event/data fields and
// comments appear, data payloads are valid JSON, and every frame carries
// data. A read error after at least one complete frame is not fatal when
// the limit was already met.
func ReadSSE(r io.Reader, limit int) ([]SSEFrame, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var frames []SSEFrame
	var cur SSEFrame
	seen := false
	flush := func() error {
		if !seen {
			return nil
		}
		if len(cur.Data) == 0 {
			return fmt.Errorf("obs: SSE frame %d has no data line", len(frames))
		}
		if !json.Valid(cur.Data) {
			return fmt.Errorf("obs: SSE frame %d data is not JSON: %q", len(frames), cur.Data)
		}
		frames = append(frames, cur)
		cur, seen = SSEFrame{}, false
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return frames, err
			}
			if limit > 0 && len(frames) >= limit {
				return frames, nil
			}
		case strings.HasPrefix(line, ":"): // comment / keepalive
		case strings.HasPrefix(line, "id: "):
			cur.ID, seen = line[len("id: "):], true
		case strings.HasPrefix(line, "event: "):
			cur.Event, seen = line[len("event: "):], true
		case strings.HasPrefix(line, "data: "):
			cur.Data, seen = []byte(line[len("data: "):]), true
		default:
			return frames, fmt.Errorf("obs: unexpected SSE line %q", line)
		}
	}
	if err := flush(); err != nil {
		return frames, err
	}
	if err := sc.Err(); err != nil && (limit <= 0 || len(frames) < limit) {
		return frames, err
	}
	return frames, nil
}

package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"reuseiq/internal/asm"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/telemetry"
)

// liveMachine builds a long-running reuse-gating loop machine wired to srv:
// sampler tap publishing typed snapshots every `every` cycles, event sink
// fanning telemetry into /events.
func liveMachine(t *testing.T, srv *Server, every uint64) *pipeline.Machine {
	t.Helper()
	p := asm.MustAssemble(`
	li   $r2, 0
	li   $r3, 150000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	m := pipeline.New(pipeline.DefaultConfig(), p)
	tel := telemetry.New(telemetry.Config{})
	tel.Sink = srv.EventSink()
	m.AttachTelemetry(tel)
	m.AttachSampler(every, func() {
		r := &telemetry.Registry{}
		m.RegisterMetrics(r)
		srv.Publish(Sample{
			Cycle:   m.Cycle(),
			Metrics: r.TypedSnapshot(),
			Status:  map[string]any{"cycle": m.Cycle(), "state": m.Ctl.State().String()},
		})
	})
	return m
}

// TestLiveScrapeUnderRun is the snapshot-under-mutation test: a machine
// steps on one goroutine while /metrics is scraped and /events is consumed
// by two subscribers. Run under -race (part of `make check`), it proves the
// sampler-publish/scrape handoff has no data races, scrapes always lint,
// and counters are monotone scrape over scrape.
func TestLiveScrapeUnderRun(t *testing.T) {
	srv := NewServer()
	m := liveMachine(t, srv, 64)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	runDone := make(chan error, 1)
	go func() {
		err := m.Run()
		// Final snapshot after halt so late scrapes see the end state.
		m.Tel.Finalize(m.Cycle())
		m.OnSample()
		runDone <- err
	}()

	var wg sync.WaitGroup
	scrapeErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev map[string]ExpoMetric
			for j := 0; j < 20; j++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					scrapeErr <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					scrapeErr <- err
					return
				}
				cur, err := LintExposition(body)
				if err != nil {
					scrapeErr <- err
					return
				}
				if prev != nil {
					if err := CheckMonotone(prev, cur); err != nil {
						scrapeErr <- err
						return
					}
				}
				prev = cur
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Two concurrent SSE subscribers, reading whatever streams by while the
	// machine runs (replay covers the case where the run ends first).
	frameCount := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events?replay=64", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				frameCount <- 0
				return
			}
			defer resp.Body.Close()
			frames, _ := ReadSSE(resp.Body, 8) // read error after limit is fine (ctx cancel)
			frameCount <- len(frames)
		}()
	}

	wg.Wait()
	if err := <-runDone; err != nil {
		t.Fatalf("machine run failed: %v", err)
	}
	select {
	case err := <-scrapeErr:
		t.Fatalf("scrape failed: %v", err)
	default:
	}
	for i := 0; i < 2; i++ {
		if n := <-frameCount; n == 0 {
			t.Errorf("subscriber %d received no frames", i)
		}
	}
}

func TestHealthReadyStatusEndpoints(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before first sample = %d, want 503", code)
	}
	// /metrics before any sample still lints.
	if code, body := get("/metrics"); code != 200 {
		t.Errorf("/metrics = %d, want 200", code)
	} else if _, err := LintExposition([]byte(body)); err != nil {
		t.Errorf("pre-sample exposition fails lint: %v", err)
	}

	r := &telemetry.Registry{}
	r.CounterVal("sim.cycles", 42)
	srv.Publish(Sample{Cycle: 42, Metrics: r.TypedSnapshot(), Status: map[string]any{"state": "normal"}})

	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz after sample = %d, want 200", code)
	}
	code, body := get("/status")
	if code != 200 {
		t.Fatalf("/status = %d, want 200", code)
	}
	var p struct {
		SampleCycle uint64          `json:"sample_cycle"`
		Status      json.RawMessage `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, body)
	}
	if p.SampleCycle != 42 || !strings.Contains(string(p.Status), "normal") {
		t.Errorf("/status payload wrong: %s", body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d, want 200 with content", code)
	}

	// /debug/timetravel: 404 without a provider, JSON with one.
	if code, _ := get("/debug/timetravel"); code != http.StatusNotFound {
		t.Errorf("/debug/timetravel without recorder = %d, want 404", code)
	}
	srv.SetTimeTravel(func() any {
		return map[string]any{"seekable_from": 0, "seekable_to": 8192, "checkpoints": 3}
	})
	code, body = get("/debug/timetravel")
	if code != 200 {
		t.Fatalf("/debug/timetravel = %d, want 200", code)
	}
	var tt map[string]any
	if err := json.Unmarshal([]byte(body), &tt); err != nil {
		t.Fatalf("/debug/timetravel is not JSON: %v\n%s", err, body)
	}
	if tt["seekable_to"] != float64(8192) || tt["checkpoints"] != float64(3) {
		t.Errorf("/debug/timetravel payload wrong: %s", body)
	}
	srv.SetTimeTravel(nil)
	if code, _ := get("/debug/timetravel"); code != http.StatusNotFound {
		t.Errorf("/debug/timetravel after uninstall = %d, want 404", code)
	}
}

func TestStartServesAndCloses(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

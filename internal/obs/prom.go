package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) rendered from typed
// telemetry snapshots. Dotted registry names map onto the Prometheus
// charset under a common prefix: "sim.cycles" -> "reuseiq_sim_cycles".

// MetricPrefix namespaces every exposed metric.
const MetricPrefix = "reuseiq_"

// SanitizeMetricName maps an arbitrary registry name onto the legal
// Prometheus metric-name charset [a-zA-Z_:][a-zA-Z0-9_:]* and applies
// MetricPrefix. Dots and any other illegal runes become underscores.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(MetricPrefix) + len(name))
	b.WriteString(MetricPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteExposition renders cur as a Prometheus text exposition: counters,
// derived per-second rate gauges (when prev is present and older), gauges,
// then histograms. A nil cur renders only an explanatory comment, so an
// early scrape is well-formed.
//
//reuse:deterministic
func WriteExposition(w io.Writer, cur, prev *Sample) error {
	if cur == nil || cur.Metrics == nil {
		_, err := fmt.Fprintln(w, "# no sample published yet")
		return err
	}
	for _, c := range cur.Metrics.Counters {
		name := SanitizeMetricName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	writeRates(w, cur, prev)
	for _, g := range cur.Metrics.Gauges {
		name := SanitizeMetricName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
			name, name, formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range cur.Metrics.Hists {
		name := SanitizeMetricName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if !b.IsInf {
				le = strconv.FormatUint(b.LE, 10)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n",
			name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// writeRates derives per-second rate gauges for every counter present in
// both samples. A counter that went backwards (producer restarted between
// samples) is skipped rather than rendered negative.
func writeRates(w io.Writer, cur, prev *Sample) {
	if prev == nil || prev.Metrics == nil {
		return
	}
	dt := cur.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return
	}
	old := make(map[string]uint64, len(prev.Metrics.Counters))
	for _, c := range prev.Metrics.Counters {
		old[c.Name] = c.Value
	}
	for _, c := range cur.Metrics.Counters {
		pv, ok := old[c.Name]
		if !ok || c.Value < pv {
			continue
		}
		name := SanitizeMetricName(c.Name) + "_per_second"
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
			name, name, formatFloat(float64(c.Value-pv)/dt))
	}
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, no exponent for typical magnitudes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

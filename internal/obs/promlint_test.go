package obs

import (
	"strings"
	"testing"
)

func TestLintRejectsMalformedExpositions(t *testing.T) {
	cases := []struct {
		name, expo, wantErr string
	}{
		{"no-type", "x 1\n", "no preceding TYPE"},
		{"bad-name", "# TYPE a.b counter\n", "illegal metric name"},
		{"bad-type", "# TYPE x frobnicator\n", "unknown metric type"},
		{"bad-value", "# TYPE x counter\nx one\n", "bad sample value"},
		{"dup-sample", "# TYPE x counter\nx 1\nx 2\n", "duplicate sample"},
		{"redeclared", "# TYPE x counter\n# TYPE x gauge\n", "redeclared"},
		{"bad-label", "# TYPE x counter\nx{1le=\"2\"} 1\n", "illegal label name"},
		{"unquoted-label", "# TYPE x counter\nx{le=2} 1\n", "unquoted label value"},
		{"no-inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n", "+Inf"},
		{"not-cumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"not cumulative"},
		{"inf-mismatch",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 5\n",
			"!= _count"},
	}
	for _, c := range cases {
		_, err := LintExposition([]byte(c.expo))
		if err == nil {
			t.Errorf("%s: lint accepted malformed exposition:\n%s", c.name, c.expo)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestLintAcceptsWellFormed(t *testing.T) {
	expo := `# HELP x a counter
# TYPE x counter
x 12
# TYPE g gauge
g 0.5
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 4
h_sum 9
h_count 4
`
	m, err := LintExposition([]byte(expo))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d families, want 3", len(m))
	}
	if m["h"].Samples[`h_bucket{le="2"}`] != 3 {
		t.Errorf("histogram bucket parse wrong: %+v", m["h"])
	}
}

func TestCheckMonotone(t *testing.T) {
	prev, err := LintExposition([]byte("# TYPE x counter\nx 10\n# TYPE g gauge\ng 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := LintExposition([]byte("# TYPE x counter\nx 10\n# TYPE g gauge\ng 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMonotone(prev, ok); err != nil {
		t.Errorf("equal counter + falling gauge flagged: %v", err)
	}
	bad, err := LintExposition([]byte("# TYPE x counter\nx 9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMonotone(prev, bad); err == nil {
		t.Error("falling counter not flagged")
	}
}

func TestReadSSERejectsGarbage(t *testing.T) {
	if _, err := ReadSSE(strings.NewReader("data: {\"a\":1}\nbogus line\n\n"), 0); err == nil {
		t.Error("unexpected field line accepted")
	}
	if _, err := ReadSSE(strings.NewReader("data: not json\n\n"), 0); err == nil {
		t.Error("non-JSON data accepted")
	}
	if _, err := ReadSSE(strings.NewReader("event: telemetry\n\n"), 0); err == nil {
		t.Error("frame without data accepted")
	}
}

func TestReadSSEHonorsLimitAndComments(t *testing.T) {
	stream := ": keepalive\n\nid: 0\nevent: e\ndata: {}\n\nid: 1\nevent: e\ndata: {}\n\nid: 2\nevent: e\ndata: {}\n\n"
	frames, err := ReadSSE(strings.NewReader(stream), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || frames[1].ID != "1" {
		t.Errorf("frames = %+v, want first two", frames)
	}
}

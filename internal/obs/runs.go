package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"reuseiq/internal/runstore"
)

// runSource provides the /runs data — typically a runstore.Ledger's Records
// method. It is installed after NewServer (the ledger is optional), so access
// goes through a mutex like the time-travel provider.
type runSource struct {
	mu sync.Mutex
	fn func() []runstore.Record
}

func (rs *runSource) get() func() []runstore.Record {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.fn
}

// SetRunSource installs the /runs and /runs/{id} data provider — typically
// the Records method of an attached runstore.Ledger, which returns an
// immutable copy safe to read from the HTTP goroutine. nil uninstalls the
// endpoints (they answer 404).
func (s *Server) SetRunSource(fn func() []runstore.Record) {
	s.runs.mu.Lock()
	s.runs.fn = fn
	s.runs.mu.Unlock()
}

// runSummary is one row of the /runs listing: the record's identity and
// headline numbers without the full metrics payload, which can run to
// hundreds of counters per run. /runs/{id} serves the complete record.
type runSummary struct {
	ID          string    `json:"id"`
	Kind        string    `json:"kind"`
	Start       time.Time `json:"start"`
	Kernel      string    `json:"kernel,omitempty"`
	IQSize      int       `json:"iq"`
	Reuse       bool      `json:"reuse"`
	Fingerprint string    `json:"fingerprint"`
	Cycles      uint64    `json:"cycles"`
	Commits     uint64    `json:"commits"`
	IPC         float64   `json:"ipc"`
	WallNS      int64     `json:"wall_ns"`
	Err         string    `json:"err,omitempty"`
}

func summarize(r runstore.Record) runSummary {
	return runSummary{
		ID:          r.ID,
		Kind:        r.Kind,
		Start:       r.Start,
		Kernel:      r.Kernel,
		IQSize:      r.IQSize,
		Reuse:       r.Reuse,
		Fingerprint: r.Fingerprint,
		Cycles:      r.Cycles,
		Commits:     r.Commits,
		IPC:         r.IPC,
		WallNS:      r.Host.WallNS,
		Err:         r.Err,
	}
}

// handleRuns lists ledger records as summaries, newest last (ledger append
// order). Query parameters filter: kernel, fingerprint (full or bare config
// half), kind (sim|cell), last (only the final N matches).
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	fn := s.runs.get()
	if fn == nil {
		http.Error(w, "no run ledger attached (run with -ledger)", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	f := runstore.Filter{
		Kind:        q.Get("kind"),
		Kernel:      q.Get("kernel"),
		Fingerprint: q.Get("fingerprint"),
	}
	if v := q.Get("last"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad last parameter", http.StatusBadRequest)
			return
		}
		f.Last = n
	}
	recs := f.Select(fn())
	out := struct {
		Total int          `json:"total"`
		Runs  []runSummary `json:"runs"`
	}{Total: len(recs), Runs: make([]runSummary, 0, len(recs))}
	for _, rec := range recs {
		out.Runs = append(out.Runs, summarize(rec))
	}
	writeJSON(w, out)
}

// handleRun serves one complete ledger record (full metrics and energy
// payload) by id or unique id prefix.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	fn := s.runs.get()
	if fn == nil {
		http.Error(w, "no run ledger attached (run with -ledger)", http.StatusNotFound)
		return
	}
	id := r.PathValue("id")
	recs := fn()
	rec, ok := findRun(recs, id)
	if !ok {
		http.Error(w, "no run "+id, http.StatusNotFound)
		return
	}
	writeJSON(w, rec)
}

// findRun resolves a full id or unique prefix (>= 4 chars) against a record
// slice, mirroring Ledger.Get for sources that are plain snapshots.
func findRun(recs []runstore.Record, id string) (runstore.Record, bool) {
	if len(id) < 4 {
		return runstore.Record{}, false
	}
	var hit *runstore.Record
	for i := range recs {
		if recs[i].ID == id {
			return recs[i], true
		}
		if len(id) < len(recs[i].ID) && recs[i].ID[:len(id)] == id {
			if hit != nil {
				return runstore.Record{}, false // ambiguous prefix
			}
			hit = &recs[i]
		}
	}
	if hit == nil {
		return runstore.Record{}, false
	}
	return *hit, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

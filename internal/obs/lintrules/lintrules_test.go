package lintrules

import "testing"

func TestValidRegistryName(t *testing.T) {
	good := []string{
		"sim", "sim.cycles", "hist.session_cycles", "power.sessions.fe_saved",
		"a.b.c.d", "x9", "riq.wakeup_broadcasts",
	}
	for _, n := range good {
		if err := CheckRegistryName(n); err != nil {
			t.Errorf("CheckRegistryName(%q) = %v, want nil", n, err)
		}
		if !ValidRegistryName(n) {
			t.Errorf("ValidRegistryName(%q) = false, want true", n)
		}
	}
	bad := []string{
		"", "Sim.cycles", "sim..cycles", ".cycles", "cycles.", "9lives",
		"sim.9lives", "_x", "sim._x", "sim cycles", "sim-cycles", "sim.Cycles",
		"sim.cy cles", "café",
	}
	for _, n := range bad {
		if err := CheckRegistryName(n); err == nil {
			t.Errorf("CheckRegistryName(%q) = nil, want error", n)
		}
		if ValidRegistryName(n) {
			t.Errorf("ValidRegistryName(%q) = true, want false", n)
		}
	}
}

// CheckRegistryName's prose messages and the regexp must agree exactly.
func TestCheckMatchesRegexp(t *testing.T) {
	cases := []string{
		"", "a", "a.b", "A.b", "a.B", "a..b", "a_", "_a", "a.1", "a1.b2",
		"le_inf", "x.y.z", "x:y", "with space", "trailing.", ".leading",
	}
	for _, n := range cases {
		if (CheckRegistryName(n) == nil) != ValidRegistryName(n) {
			t.Errorf("CheckRegistryName and ValidRegistryName disagree on %q", n)
		}
	}
}

// Package lintrules holds the metric- and label-name rules shared by the
// runtime exposition linter (internal/obs, exercised end to end by
// cmd/obscheck) and the compile-time metricname analyzer
// (internal/analysis/metricname). It is pure: no HTTP, no I/O, no
// simulator imports — both consumers must agree on exactly this rule set,
// which TestConsumersAgree in internal/obs pins against a shared table of
// good and bad names.
package lintrules

import (
	"fmt"
	"regexp"
	"strings"
)

// Prometheus exposition-format charsets (the same expressions previously
// compiled privately inside internal/obs/promlint.go).
var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidExpositionMetricName reports whether s is a legal Prometheus metric
// name as it appears on the wire.
func ValidExpositionMetricName(s string) bool { return metricNameRe.MatchString(s) }

// ValidLabelName reports whether s is a legal Prometheus label name.
func ValidLabelName(s string) bool { return labelNameRe.MatchString(s) }

// Registry names are the dotted lowercase identifiers used with
// telemetry.Registry ("riq.dispatches", "hist.session_cycles"). The grammar
// is stricter than the wire charset so that obs.SanitizeMetricName maps
// every valid registry name onto a valid, lossless exposition name: dots
// become underscores and nothing else needs rewriting.
var registryNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// ValidRegistryName reports whether s is a legal telemetry registry metric
// name.
func ValidRegistryName(s string) bool { return registryNameRe.MatchString(s) }

// CheckRegistryName explains why s is not a legal registry metric name, or
// returns nil. The messages are what the metricname analyzer prints, so
// they name the specific violation rather than just the grammar.
func CheckRegistryName(s string) error {
	if s == "" {
		return fmt.Errorf("metric name is empty")
	}
	if strings.ToLower(s) != s {
		return fmt.Errorf("metric name %q contains uppercase letters (registry names are lowercase)", s)
	}
	for _, seg := range strings.Split(s, ".") {
		switch {
		case seg == "":
			return fmt.Errorf("metric name %q has an empty dotted segment", s)
		case seg[0] >= '0' && seg[0] <= '9':
			return fmt.Errorf("metric name %q has a segment starting with a digit", s)
		case seg[0] == '_':
			return fmt.Errorf("metric name %q has a segment starting with an underscore", s)
		}
	}
	if !registryNameRe.MatchString(s) {
		return fmt.Errorf("metric name %q is not of the form seg.seg.seg with segments [a-z][a-z0-9_]*", s)
	}
	return nil
}

package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"reuseiq/internal/obs/lintrules"
	"reuseiq/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenSamples builds a deterministic pair of samples exercising every
// exposition feature: counters, derived rates, float gauges, and a
// histogram with elided trailing buckets.
func goldenSamples() (cur, prev *Sample) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	mk := func(cycles, commits uint64) *telemetry.MetricsSnapshot {
		r := &telemetry.Registry{}
		r.CounterVal("sim.cycles", cycles)
		r.CounterVal("sim.commits", commits)
		// The fast-forward veto tally, snapshot image traffic and flight
		// recorder progress ride the same exposition; pinning one of each
		// family here keeps their rendering contract golden.
		r.CounterVal("ffwd.vetoes.exact_state", cycles/1000)
		r.CounterVal("snapshot.saves", 7)
		r.CounterVal("snapshot.restores", 2)
		r.CounterVal("flightrec.checkpoints_taken", 5)
		r.Gauge("sweep.workers_busy", func() float64 { return 3 })
		r.Gauge("sim.ipc", func() float64 { return 1.75 })
		var h telemetry.Histogram
		for _, v := range []uint64{1, 2, 3, 40} {
			h.Observe(v)
		}
		r.RegisterHistogram("hist.session_cycles", &h)
		return r.TypedSnapshot()
	}
	prev = &Sample{At: base, Cycle: 1000, Metrics: mk(1000, 800)}
	cur = &Sample{At: base.Add(2 * time.Second), Cycle: 3000, Metrics: mk(3000, 2400)}
	return cur, prev
}

func TestExpositionGolden(t *testing.T) {
	cur, prev := goldenSamples()
	var buf bytes.Buffer
	if err := WriteExposition(&buf, cur, prev); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from %s (rerun with -update if intentional)\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
}

// The golden exposition must itself pass the linter — the formats the server
// emits and the checker accepts are one contract.
func TestExpositionGoldenLints(t *testing.T) {
	cur, prev := goldenSamples()
	var bPrev, bCur bytes.Buffer
	if err := WriteExposition(&bPrev, prev, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteExposition(&bCur, cur, prev); err != nil {
		t.Fatal(err)
	}
	mPrev, err := LintExposition(bPrev.Bytes())
	if err != nil {
		t.Fatalf("previous exposition fails lint: %v", err)
	}
	mCur, err := LintExposition(bCur.Bytes())
	if err != nil {
		t.Fatalf("current exposition fails lint: %v", err)
	}
	if err := CheckMonotone(mPrev, mCur); err != nil {
		t.Errorf("monotone check failed: %v", err)
	}

	c, ok := mCur["reuseiq_sim_cycles"]
	if !ok || c.Type != "counter" {
		t.Fatalf("reuseiq_sim_cycles missing or mistyped: %+v", mCur)
	}
	if got := c.Samples["reuseiq_sim_cycles"]; got != 3000 {
		t.Errorf("sim.cycles = %g, want 3000", got)
	}
	rate, ok := mCur["reuseiq_sim_cycles_per_second"]
	if !ok || rate.Type != "gauge" {
		t.Fatal("derived rate gauge missing")
	}
	if got := rate.Samples["reuseiq_sim_cycles_per_second"]; got != 1000 {
		t.Errorf("cycles/sec = %g, want 1000 (2000 cycles over 2s)", got)
	}
	h, ok := mCur["reuseiq_hist_session_cycles"]
	if !ok || h.Type != "histogram" {
		t.Fatal("histogram family missing")
	}
}

func TestExpositionNilSample(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExposition(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LintExposition(buf.Bytes()); err != nil {
		t.Errorf("empty exposition fails lint: %v", err)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"sim.cycles":          "reuseiq_sim_cycles",
		"dispatch.stall.rob":  "reuseiq_dispatch_stall_rob",
		"fu.ialu":             "reuseiq_fu_ialu",
		"weird-name 1":        "reuseiq_weird_name_1",
		"hist.session_cycles": "reuseiq_hist_session_cycles",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
		if !lintrules.ValidExpositionMetricName(SanitizeMetricName(in)) {
			t.Errorf("sanitized %q still illegal", in)
		}
	}
}

package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"reuseiq/internal/telemetry"
)

func TestSSEFrameGolden(t *testing.T) {
	var buf bytes.Buffer
	events := []telemetry.Event{
		{Cycle: 100, Kind: telemetry.EvBuffer, PC: 0x400010, A: 0x400020, B: 4},
		{Cycle: 104, Kind: telemetry.EvIteration, PC: 0x400010, A: 4},
		{Cycle: 108, Kind: telemetry.EvPromote, PC: 0x400010, A: 0x400020},
		{Cycle: 150, Kind: telemetry.EvReuseExit, PC: 0x400010},
	}
	for i, e := range events {
		if err := WriteSSEFrame(&buf, uint64(i), "telemetry", telemetry.MarshalEvent(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteSSEFrame(&buf, 4, "progress",
		[]byte(`{"done":3,"total":64,"kernel":"adi","iq":64}`)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "sse.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SSE frames drifted from %s (rerun with -update if intentional)\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}

	// And the emitted bytes parse back as valid frames.
	frames, err := ReadSSE(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("parsed %d frames, want 5", len(frames))
	}
	if frames[2].Event != "telemetry" || frames[4].Event != "progress" {
		t.Errorf("frame events wrong: %+v", frames)
	}
	if frames[3].ID != "3" {
		t.Errorf("frame 3 id = %q, want 3", frames[3].ID)
	}
}

// Slow consumers lose frames; the publisher never blocks and the losses are
// counted.
func TestHubSlowConsumerDropsNotStalls(t *testing.T) {
	h := newHub()
	sub, _ := h.subscribe(0)
	defer h.unsubscribe(sub)

	total := subBuffer + 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			h.publish("telemetry", []byte(fmt.Sprintf(`{"i":%d}`, i)))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a slow consumer")
	}
	pub, dropped, subs := h.stats()
	if subs != 1 {
		t.Fatalf("subscribers = %d, want 1", subs)
	}
	if pub != uint64(total) {
		t.Errorf("published = %d, want %d", pub, total)
	}
	if want := uint64(total - subBuffer); dropped != want {
		t.Errorf("dropped = %d, want %d (buffer holds %d)", dropped, want, subBuffer)
	}
	if got := sub.dropped.Load(); got != dropped {
		t.Errorf("per-subscriber drops = %d, hub total = %d", got, dropped)
	}
	// The frames that did arrive are the oldest, in order.
	f := <-sub.ch
	if f.id != 0 {
		t.Errorf("first delivered frame id = %d, want 0", f.id)
	}
}

func TestHubReplayReturnsNewestFrames(t *testing.T) {
	h := newHub()
	for i := 0; i < replayCap+10; i++ {
		h.publish("telemetry", []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	sub, back := h.subscribe(16)
	defer h.unsubscribe(sub)
	if len(back) != 16 {
		t.Fatalf("replay returned %d frames, want 16", len(back))
	}
	if first, last := back[0].id, back[15].id; first != uint64(replayCap+10-16) || last != uint64(replayCap+9) {
		t.Errorf("replay ids %d..%d, want the newest 16", first, last)
	}
	// Asking for more than retained clamps to the ring.
	sub2, back2 := h.subscribe(10 * replayCap)
	defer h.unsubscribe(sub2)
	if len(back2) != replayCap {
		t.Errorf("oversized replay returned %d frames, want %d", len(back2), replayCap)
	}
}

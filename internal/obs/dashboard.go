package obs

import (
	"html/template"
	"net/http"
)

// handleDashboard serves the live HTML dashboard. The page is a static
// template — all data arrives client-side: sweep "progress" events over the
// existing /events SSE stream, run history by polling /runs. It works with
// or without a ledger attached (the history panel explains itself when /runs
// answers 404), so it is always mounted.
func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashboardTmpl.Execute(w, struct{ Title string }{Title: "reuseiq live dashboard"})
}

// The palette mirrors internal/runstore/html.go (series-1 blue, neutral
// surfaces, light/dark via prefers-color-scheme) so the static report and
// the live dashboard read as one system.
var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{{.Title}}</title>
<style>
:root {
  --surface: #fcfcfb; --ink: #1a1a19; --ink-2: #5c5c58; --ink-3: #8a8a85;
  --line: #e4e4e0; --series-1: #2a78d6; --track: #eceae6; --good: #1f7a33;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #f0efed; --ink-2: #b0afaa; --ink-3: #807f7a;
    --line: #3a3a37; --series-1: #3987e5; --track: #2c2b29; --good: #5fbf77;
  }
}
html { background: var(--surface); }
body {
  font-family: system-ui, sans-serif; color: var(--ink); margin: 0 auto;
  max-width: 64rem; padding: 1.5rem 1rem 3rem;
}
h1 { font-size: 1.25rem; margin: 0 0 .25rem; }
h2 { font-size: .95rem; margin: 2rem 0 .75rem; color: var(--ink-2); font-weight: 600; }
.sub { color: var(--ink-3); font-size: .8rem; margin-bottom: 1.5rem; }
.bar-track {
  background: var(--track); border-radius: 4px; height: 14px; overflow: hidden;
}
.bar-fill {
  background: var(--series-1); height: 100%; width: 0%;
  border-radius: 0 4px 4px 0; transition: width .3s;
}
.progress-line {
  display: flex; gap: 1rem; font-variant-numeric: tabular-nums;
  font-size: .85rem; color: var(--ink-2); margin-top: .5rem;
}
.progress-line b { color: var(--ink); font-weight: 600; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td {
  text-align: left; padding: .3rem .6rem .3rem 0;
  border-bottom: 1px solid var(--line); font-variant-numeric: tabular-nums;
}
th { color: var(--ink-3); font-weight: 500; font-size: .75rem; }
td.num, th.num { text-align: right; }
.ipc-cell { display: flex; align-items: center; gap: .5rem; min-width: 9rem; }
.ipc-bar { background: var(--series-1); height: 8px; border-radius: 0 4px 4px 0; }
.mono { font-family: ui-monospace, monospace; font-size: .8rem; color: var(--ink-2); }
.empty { color: var(--ink-3); font-size: .85rem; padding: 1rem 0; }
.ok { color: var(--good); }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<div class="sub">sweep progress over the <span class="mono">/events</span> SSE stream;
run history from the <span class="mono">/runs</span> ledger endpoint</div>

<h2>Sweep progress</h2>
<div class="bar-track"><div class="bar-fill" id="bar"></div></div>
<div class="progress-line">
  <span><b id="done">0</b>/<b id="total">?</b> points</span>
  <span>eta <b id="eta">?</b></span>
  <span id="cur"></span>
  <span id="sse" class="mono">connecting…</span>
</div>

<h2>Recent runs</h2>
<div id="runs"><div class="empty">loading…</div></div>

<script>
"use strict";
function fmtEta(ms) {
  if (ms < 0) return "?";
  var s = Math.round(ms / 1000);
  return s >= 60 ? Math.floor(s / 60) + "m" + (s % 60) + "s" : s + "s";
}
function fmtWall(ns) {
  if (!ns) return "";
  var ms = ns / 1e6;
  return ms >= 1000 ? (ms / 1000).toFixed(2) + "s" : ms.toFixed(1) + "ms";
}
var es = new EventSource("/events");
es.onopen = function () {
  var el = document.getElementById("sse");
  el.textContent = "live"; el.className = "mono ok";
};
es.onerror = function () {
  document.getElementById("sse").textContent = "stream closed";
  document.getElementById("sse").className = "mono";
};
es.addEventListener("progress", function (ev) {
  var p = JSON.parse(ev.data);
  document.getElementById("done").textContent = p.done;
  document.getElementById("total").textContent = p.total;
  document.getElementById("eta").textContent = fmtEta(p.eta_ms);
  document.getElementById("cur").textContent =
    p.kernel ? p.kernel + " iq=" + p.iq + (p.reuse ? " reuse" : " base") : "";
  document.getElementById("bar").style.width =
    p.total > 0 ? (100 * p.done / p.total) + "%" : "0%";
  loadRuns();
});
var esc = function (s) {
  return String(s).replace(/[&<>"]/g, function (c) {
    return { "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;" }[c];
  });
};
function loadRuns() {
  fetch("/runs?last=25").then(function (r) {
    if (r.status === 404) throw new Error("no ledger attached (run with -ledger)");
    if (!r.ok) throw new Error("/runs: " + r.status);
    return r.json();
  }).then(function (data) {
    var runs = data.runs || [];
    if (!runs.length) {
      document.getElementById("runs").innerHTML =
        '<div class="empty">ledger attached, no runs recorded yet</div>';
      return;
    }
    runs.reverse(); // newest first
    var maxIPC = 0;
    runs.forEach(function (r) { if (r.ipc > maxIPC) maxIPC = r.ipc; });
    var h = "<table><thead><tr><th>run</th><th>kind</th><th>kernel</th>" +
      '<th class="num">iq</th><th>reuse</th><th>IPC</th>' +
      '<th class="num">cycles</th><th class="num">wall</th></tr></thead><tbody>';
    runs.forEach(function (r) {
      var w = maxIPC > 0 ? Math.max(2, 100 * r.ipc / maxIPC) : 0;
      h += "<tr><td class=mono>" + esc(r.id.slice(0, 8)) + "</td>" +
        "<td>" + esc(r.kind) + (r.err ? " (err)" : "") + "</td>" +
        "<td>" + esc(r.kernel || "") + "</td>" +
        '<td class="num">' + r.iq + "</td>" +
        "<td>" + (r.reuse ? "on" : "off") + "</td>" +
        '<td><span class="ipc-cell"><span class="ipc-bar" style="width:' + w +
        'px"></span>' + r.ipc.toFixed(3) + "</span></td>" +
        '<td class="num">' + r.cycles.toLocaleString() + "</td>" +
        '<td class="num">' + fmtWall(r.wall_ns) + "</td></tr>";
    });
    document.getElementById("runs").innerHTML = h + "</tbody></table>";
  }).catch(function (err) {
    document.getElementById("runs").innerHTML =
      '<div class="empty">' + esc(err.message) + "</div>";
  });
}
loadRuns();
setInterval(loadRuns, 5000);
</script>
</body>
</html>
`))

package obs

import (
	"fmt"
	"testing"

	"reuseiq/internal/obs/lintrules"
)

// TestConsumersAgree pins the contract between the two consumers of the
// shared rule set: a name the compile-time metricname analyzer accepts
// (lintrules.CheckRegistryName == nil) must, after obs.SanitizeMetricName,
// be accepted by the runtime exposition linter — and the exposition linter
// must agree with lintrules.ValidExpositionMetricName on the wire charset.
func TestConsumersAgree(t *testing.T) {
	table := []struct {
		name     string
		registry bool // legal registry name (analyzer side)
		wire     bool // legal exposition name as-is (obscheck side)
	}{
		{"sim.cycles", true, false}, // dots are registry-only; sanitizer maps them
		{"sim_cycles", true, true},  // plain lowercase is legal everywhere
		{"hist.session_cycles", true, false},
		{"power.sessions.net", true, false},
		{"reuseiq_sim_cycles", true, true},
		{"Sim.Cycles", false, false}, // registry names are lowercase; wire name bans dots too
		{"9lives", false, false},     // leading digit illegal in both grammars
		{"sim..cycles", false, false},
		{"sim:cycles", false, true}, // colons are wire-legal but not registry style
		{"_private", false, true},   // leading underscore: wire-legal, registry-banned
		{"", false, false},
	}
	for _, tc := range table {
		if got := lintrules.CheckRegistryName(tc.name) == nil; got != tc.registry {
			t.Errorf("CheckRegistryName(%q) legal = %v, want %v", tc.name, got, tc.registry)
		}
		if got := lintrules.ValidExpositionMetricName(tc.name); got != tc.wire {
			t.Errorf("ValidExpositionMetricName(%q) = %v, want %v", tc.name, got, tc.wire)
		}
		// The exposition linter and the shared charset must agree: a
		// one-sample exposition using the raw name parses iff the charset
		// accepts the name.
		if tc.name != "" {
			expo := []byte(fmt.Sprintf("# TYPE %s counter\n%s 1\n", tc.name, tc.name))
			_, err := LintExposition(expo)
			if (err == nil) != tc.wire {
				t.Errorf("LintExposition of %q: err=%v, want legal=%v", tc.name, err, tc.wire)
			}
		}
		// Every legal registry name sanitizes to a legal wire name.
		if tc.registry {
			s := SanitizeMetricName(tc.name)
			if !lintrules.ValidExpositionMetricName(s) {
				t.Errorf("SanitizeMetricName(%q) = %q is not wire-legal", tc.name, s)
			}
			expo := []byte(fmt.Sprintf("# TYPE %s counter\n%s 1\n", s, s))
			if _, err := LintExposition(expo); err != nil {
				t.Errorf("sanitized %q -> %q rejected by LintExposition: %v", tc.name, s, err)
			}
		}
	}
}

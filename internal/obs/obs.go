// Package obs is the simulator's live observability server: the operational
// surface a long sweep or soak run exposes while it executes, as opposed to
// the post-hoc exporters in internal/telemetry.
//
// One Server embeds in a CLI and serves:
//
//	/metrics       Prometheus text exposition rendered from the latest
//	               published telemetry.MetricsSnapshot, with derived
//	               per-second rates from the previous snapshot
//	/events        Server-Sent-Events fan-out of the telemetry event stream
//	               (bounded per-client buffers; slow consumers drop frames,
//	               they never stall the simulation)
//	/status        JSON: the latest published status payload plus server
//	               internals (sample cycle/age, subscribers, drops)
//	/healthz       liveness (always 200 while the process serves)
//	/readyz        readiness (200 once the first sample is published)
//	/debug/pprof   the standard net/http/pprof handlers
//	/debug/timetravel  JSON flight-recorder status (ring occupancy and the
//	               seekable cycle range) when a recorder is attached via
//	               SetTimeTravel; 404 otherwise
//	/runs          JSON run-ledger summaries (filter with ?kernel= &kind=
//	               &fingerprint= &last=) when a ledger is attached via
//	               SetRunSource; 404 otherwise
//	/runs/{id}     one complete ledger record by id or unique prefix
//	/dashboard     HTML dashboard charting live sweep progress (over the
//	               /events SSE stream) and recent run history (over /runs)
//
// The contract with the simulation is one-directional and allocation-bounded:
// the sim goroutine calls Publish with an immutable Sample it built itself
// (via pipeline.Machine's sampler tap or a sweep harness ticker), and the
// event sink performs at most one JSON encode plus non-blocking channel
// sends. HTTP handlers never touch live simulator state.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"reuseiq/internal/telemetry"
)

// Sample is one published observation: a typed metrics snapshot plus an
// arbitrary JSON-marshalable status payload, both built on the goroutine
// that owns the underlying counters and immutable afterwards.
type Sample struct {
	At      time.Time
	Cycle   uint64
	Metrics *telemetry.MetricsSnapshot
	Status  any
}

// Server serves the observability endpoints for one run. Create with
// NewServer, feed it with Publish and EventSink, serve with Start.
type Server struct {
	mux *http.ServeMux
	hub *hub

	mu        sync.Mutex // guards cur/prev
	cur, prev *Sample

	ready   atomic.Bool
	scrapes atomic.Uint64

	ttMu       sync.Mutex // guards timeTravel
	timeTravel func() any

	runs runSource // /runs and /runs/{id} provider (see SetRunSource)

	ln  net.Listener
	srv *http.Server
}

// NewServer creates a server with all endpoints mounted.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux(), hub: newHub()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			http.Error(w, "no sample published yet", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("/runs", s.handleRuns)
	s.mux.HandleFunc("/runs/{id}", s.handleRun)
	s.mux.HandleFunc("/dashboard", s.handleDashboard)
	s.mux.HandleFunc("/debug/timetravel", s.handleTimeTravel)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Publish installs sm as the latest sample; the previous one is retained for
// rate derivation. The first Publish marks the server ready. Safe to call
// from any single producer goroutine concurrently with scrapes.
func (s *Server) Publish(sm Sample) {
	if sm.At.IsZero() {
		sm.At = time.Now()
	}
	s.mu.Lock()
	s.prev = s.cur
	s.cur = &sm
	s.mu.Unlock()
	s.ready.Store(true)
}

// EventSink returns a telemetry sink that fans each event out to /events
// subscribers as an SSE frame (event type "telemetry", data in the JSONL
// encoding). Chainable with other sinks.
func (s *Server) EventSink() func(telemetry.Event) {
	return func(e telemetry.Event) {
		s.hub.publish("telemetry", telemetry.MarshalEvent(e))
	}
}

// PublishEvent fans an arbitrary pre-encoded JSON payload out to /events
// subscribers under the given SSE event type (e.g. sweep "progress"
// records).
func (s *Server) PublishEvent(event string, data []byte) {
	s.hub.publish(event, data)
}

// Handler returns the root handler (useful for tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (port 0 picks an ephemeral port) and serves in a
// background goroutine until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener and force-closes active connections (including
// long-lived SSE streams).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// samples returns the current and previous sample under the lock.
func (s *Server) samples() (cur, prev *Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur, s.prev
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.scrapes.Add(1)
	cur, prev := s.samples()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteExposition(w, cur, prev)
	s.writeSelfMetrics(w, cur)
}

// writeSelfMetrics appends the server's own meta-metrics to an exposition.
// They live outside WriteExposition so the golden test of the sample
// rendering stays independent of wall-clock and scrape state.
func (s *Server) writeSelfMetrics(w http.ResponseWriter, cur *Sample) {
	pub, dropped, subs := s.hub.stats()
	fmt.Fprintf(w, "# TYPE %sobs_scrapes_total counter\n%sobs_scrapes_total %d\n",
		MetricPrefix, MetricPrefix, s.scrapes.Load())
	fmt.Fprintf(w, "# TYPE %sobs_events_published_total counter\n%sobs_events_published_total %d\n",
		MetricPrefix, MetricPrefix, pub)
	fmt.Fprintf(w, "# TYPE %sobs_events_dropped_total counter\n%sobs_events_dropped_total %d\n",
		MetricPrefix, MetricPrefix, dropped)
	fmt.Fprintf(w, "# TYPE %sobs_subscribers gauge\n%sobs_subscribers %d\n",
		MetricPrefix, MetricPrefix, subs)
	if cur != nil {
		fmt.Fprintf(w, "# TYPE %sobs_sample_cycle gauge\n%sobs_sample_cycle %d\n",
			MetricPrefix, MetricPrefix, cur.Cycle)
		fmt.Fprintf(w, "# TYPE %sobs_sample_age_seconds gauge\n%sobs_sample_age_seconds %g\n",
			MetricPrefix, MetricPrefix, time.Since(cur.At).Seconds())
	}
}

// statusPayload is the /status response shape.
type statusPayload struct {
	SampleCycle     uint64 `json:"sample_cycle"`
	SampleAgeMS     int64  `json:"sample_age_ms"`
	Subscribers     int    `json:"subscribers"`
	EventsPublished uint64 `json:"events_published"`
	EventsDropped   uint64 `json:"events_dropped"`
	Status          any    `json:"status,omitempty"`
}

// SetTimeTravel installs the /debug/timetravel payload provider — typically
// the flight recorder's Status method, which is safe to call from the HTTP
// goroutine while the simulation records. nil uninstalls the endpoint.
func (s *Server) SetTimeTravel(fn func() any) {
	s.ttMu.Lock()
	s.timeTravel = fn
	s.ttMu.Unlock()
}

func (s *Server) handleTimeTravel(w http.ResponseWriter, _ *http.Request) {
	s.ttMu.Lock()
	fn := s.timeTravel
	s.ttMu.Unlock()
	if fn == nil {
		http.Error(w, "no flight recorder attached (run with -flightrec)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(fn())
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	cur, _ := s.samples()
	pub, dropped, subs := s.hub.stats()
	p := statusPayload{
		Subscribers:     subs,
		EventsPublished: pub,
		EventsDropped:   dropped,
	}
	if cur != nil {
		p.SampleCycle = cur.Cycle
		p.SampleAgeMS = time.Since(cur.At).Milliseconds()
		p.Status = cur.Status
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}

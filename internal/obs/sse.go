package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SSE fan-out. The publisher is the simulation (or sweep) goroutine, so the
// cardinal rule is that publishing never blocks: each subscriber owns a
// bounded frame buffer, and a subscriber that cannot keep up loses frames —
// counted, never waited for. A small replay ring lets a late subscriber (or
// one arriving after a short run finished) see the recent stream via
// /events?replay=N.

// subBuffer is the per-subscriber frame buffer depth. A scrape-rate consumer
// needs single digits; 1024 rides out multi-millisecond network stalls at
// typical telemetry event rates.
const subBuffer = 1024

// replayCap bounds the hub's replay ring.
const replayCap = 256

// frame is one SSE frame: an id (publication sequence number), an event
// type, and a single JSON data line.
type frame struct {
	id    uint64
	event string
	data  []byte
}

type subscriber struct {
	ch      chan frame
	dropped atomic.Uint64
}

type hub struct {
	mu        sync.Mutex
	subs      map[*subscriber]struct{}
	replay    []frame // ring, newest at (next-1+cap)%cap once full
	next      uint64  // frames ever published (also the next frame id)
	dropTotal atomic.Uint64
}

func newHub() *hub {
	return &hub{subs: map[*subscriber]struct{}{}}
}

// publish fans one frame out to every subscriber, non-blocking, and retains
// it in the replay ring.
func (h *hub) publish(event string, data []byte) {
	h.mu.Lock()
	f := frame{id: h.next, event: event, data: data}
	h.next++
	if len(h.replay) < replayCap {
		h.replay = append(h.replay, f)
	} else {
		h.replay[f.id%replayCap] = f
	}
	for s := range h.subs {
		select {
		case s.ch <- f:
		default:
			// Slow consumer: drop this frame for this subscriber. The
			// simulation never waits on a network peer.
			s.dropped.Add(1)
			h.dropTotal.Add(1)
		}
	}
	h.mu.Unlock()
}

// subscribe registers a new subscriber and returns up to replayN retained
// frames (oldest first) to send before the live stream.
func (h *hub) subscribe(replayN int) (*subscriber, []frame) {
	s := &subscriber{ch: make(chan frame, subBuffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	var back []frame
	if replayN > 0 {
		n := len(h.replay)
		if replayN > n {
			replayN = n
		}
		back = make([]frame, 0, replayN)
		// Oldest retained frame id is next-len(replay); walk forward from
		// the requested depth.
		start := h.next - uint64(replayN)
		for id := start; id < h.next; id++ {
			back = append(back, h.replay[id%replayCap])
		}
	}
	h.subs[s] = struct{}{}
	return s, back
}

func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

// stats returns (frames published, frames dropped across all subscribers,
// current subscriber count).
func (h *hub) stats() (published, dropped uint64, subs int) {
	h.mu.Lock()
	subs = len(h.subs)
	published = h.next
	h.mu.Unlock()
	return published, h.dropTotal.Load(), subs
}

// WriteSSEFrame writes one Server-Sent-Events frame: id, event type, one
// data line, blank-line terminator.
func WriteSSEFrame(w io.Writer, id uint64, event string, data []byte) error {
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data)
	return err
}

// keepaliveInterval paces SSE comment frames so idle streams keep proxies
// and dead-connection detection alive.
const keepaliveInterval = 15 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	replayN := 0
	if v := r.URL.Query().Get("replay"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad replay parameter", http.StatusBadRequest)
			return
		}
		replayN = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	sub, backlog := s.hub.subscribe(replayN)
	defer s.hub.unsubscribe(sub)
	for _, f := range backlog {
		if err := WriteSSEFrame(w, f.id, f.event, f.data); err != nil {
			return
		}
	}
	fl.Flush()

	tick := time.NewTicker(keepaliveInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case f := <-sub.ch:
			if err := WriteSSEFrame(w, f.id, f.event, f.data); err != nil {
				return
			}
			fl.Flush()
		case <-tick.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

package snapshot

import (
	"reuseiq/internal/bpred"
	"reuseiq/internal/chaos"
	"reuseiq/internal/core"
	"reuseiq/internal/fu"
	"reuseiq/internal/isa"
	"reuseiq/internal/lsq"
	"reuseiq/internal/mem"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/prog"
	"reuseiq/internal/rename"
	"reuseiq/internal/rob"
)

// Section tags, one per component image, so a decode failure names the
// section it died in and a shifted stream is caught at the next boundary.
const (
	secMachine uint32 = 0x5351_0001 + iota
	secMemory
	secRF
	secROB
	secLSQ
	secIQ
	secCtl
	secHier
	secBP
	secFU
	secChaos
	secLC
	secEnd
)

// counterPtrs returns the pipeline counters in wire order. Encode and decode
// share it, so the order cannot drift between the two.
func counterPtrs(c *pipeline.Counters) []*uint64 {
	return []*uint64{
		&c.Cycles, &c.Commits, &c.GatedCycles,
		&c.Fetches, &c.FetchCycles, &c.Decodes, &c.FrontRenames, &c.ReuseRenames,
		&c.BranchesCommitted, &c.TakenCommitted, &c.Mispredicts,
		&c.LoadsCommitted, &c.StoresCommitted, &c.ReusedCommitted, &c.LoopCacheSupplies,
		&c.WakeupBroadcasts, &c.WakeupOccupancySum, &c.IssueCycleScans,
		&c.DispatchStallIQ, &c.DispatchStallROB, &c.DispatchStallLSQ, &c.DispatchStallRegs,
		&c.StoreCommitAccesses,
	}
}

// statPtrs returns the controller stats in wire order.
func statPtrs(s *core.Stats) []*uint64 {
	return []*uint64{
		&s.Detections, &s.NBLTFiltered, &s.Bufferings, &s.IterationsBuffered,
		&s.BufferedInsts, &s.Promotions, &s.ReuseRenames, &s.ReuseExits,
		&s.Revokes, &s.RevokesInner, &s.RevokesExit, &s.RevokesFull,
		&s.RevokesRecovery, &s.RevokesForced,
	}
}

// chaosCounterPtrs returns the chaos counters in wire order.
func chaosCounterPtrs(c *chaos.Counters) []*uint64 {
	return []*uint64{&c.ForcedRevokes, &c.FlippedPredictions, &c.FetchStalls, &c.JitteredIssues}
}

// ---------------------------------------------------------------- encode --

//reuse:codec encode
func encodeState(w *writer, st *pipeline.MachineState) {
	w.u32(secMachine)
	w.u64(st.Cycle)
	w.u64(st.NextSeq)
	w.u32(st.FetchPC)
	w.u64(st.FetchStallUntil)
	w.bool(st.FetchHalted)
	w.bool(st.Halted)
	w.u64(st.LastCommit)
	for _, p := range counterPtrs(&st.C) {
		w.u64(*p)
	}
	encodeFetchedList(w, st.FetchQ)
	encodeFetchedList(w, st.DecodeLat)
	w.length(len(st.ExecQ))
	for _, e := range st.ExecQ {
		w.vInt(e.ROBSlot)
		w.u64(e.Seq)
		w.u64(e.Done)
		w.i32(e.ValI)
		w.f64(e.ValF)
	}

	w.u32(secMemory)
	w.length(len(st.Pages))
	for i := range st.Pages {
		w.u32(st.Pages[i].Num)
		w.write(st.Pages[i].Data[:])
	}

	w.u32(secRF)
	encodeRF(w, &st.RF)
	w.u32(secROB)
	encodeROB(w, &st.ROB)
	w.u32(secLSQ)
	encodeLSQ(w, &st.LSQ)
	w.u32(secIQ)
	encodeIQ(w, &st.IQ)
	w.u32(secCtl)
	encodeCtl(w, &st.Ctl)
	w.u32(secHier)
	encodeHier(w, &st.Hier)
	w.u32(secBP)
	encodeBP(w, &st.BP)
	w.u32(secFU)
	encodeFU(w, &st.FUs)

	w.u32(secChaos)
	w.u64(st.Chaos.Draws)
	for _, p := range chaosCounterPtrs(&st.Chaos.C) {
		w.u64(*p)
	}

	w.u32(secLC)
	w.bool(st.HasLC)
	if st.HasLC {
		w.u8(st.LC.State)
		w.u32(st.LC.Head)
		w.u32(st.LC.Tail)
		w.length(len(st.LC.ValidPCs))
		for _, pc := range st.LC.ValidPCs {
			w.u32(pc)
		}
		w.u64(st.LC.Supplies)
		w.u64(st.LC.Fills)
		w.u64(st.LC.Detects)
		w.u64(st.LC.Exits)
	}

	w.u32(secEnd)
}

func encodeInst(w *writer, in isa.Inst) {
	w.u8(uint8(in.Op))
	w.u8(in.Rd)
	w.u8(in.Rs)
	w.u8(in.Rt)
	w.i32(in.Imm)
	w.u32(in.Target)
}

func encodeFetchedList(w *writer, fs []pipeline.FetchedState) {
	w.length(len(fs))
	for _, f := range fs {
		w.u32(f.PC)
		encodeInst(w, f.Inst)
		w.bool(f.IsControl)
		w.bool(f.PredTaken)
		w.u32(f.PredTarget)
	}
}

func encodeRF(w *writer, st *rename.State) {
	encodeI32s := func(vs []int32) {
		w.length(len(vs))
		for _, v := range vs {
			w.i32(v)
		}
	}
	encodeF64s := func(vs []float64) {
		w.length(len(vs))
		for _, v := range vs {
			w.f64(v)
		}
	}
	encodeBools := func(vs []bool) {
		w.length(len(vs))
		for _, v := range vs {
			w.bool(v)
		}
	}
	encodeInts := func(vs []int) {
		w.length(len(vs))
		for _, v := range vs {
			w.vInt(v)
		}
	}
	encodeI32s(st.IntVals)
	encodeF64s(st.FPVals)
	encodeBools(st.IntReady)
	encodeBools(st.FPReady)
	encodeInts(st.IntMap)
	encodeInts(st.FPMap)
	encodeInts(st.IntFree)
	encodeInts(st.FPFree)
	w.u64(st.Renames)
	w.u64(st.MapReads)
	w.u64(st.Reads)
	w.u64(st.Writes)
}

func encodeROB(w *writer, st *rob.State) {
	w.length(len(st.Ring))
	for i := range st.Ring {
		e := &st.Ring[i]
		w.u64(e.Seq)
		w.u32(e.PC)
		encodeInst(w, e.Inst)
		w.bool(e.HasDest)
		w.u8(uint8(e.Dest.Kind))
		w.u8(e.Dest.Num)
		w.vInt(e.NewPhys)
		w.vInt(e.OldPhys)
		w.bool(e.Done)
		w.bool(e.PredTaken)
		w.u32(e.PredTarget)
		w.bool(e.ActTaken)
		w.u32(e.ActTarget)
		w.bool(e.Mispred)
		w.bool(e.IsLoad)
		w.bool(e.IsStore)
		w.bool(e.Halt)
		w.bool(e.Reused)
		w.u64(e.IssueCycle)
	}
	w.length(len(st.Used))
	for _, u := range st.Used {
		w.bool(u)
	}
	w.vInt(st.Head)
	w.vInt(st.Count)
	w.u64(st.Allocs)
	w.u64(st.Commits)
}

func encodeLSQ(w *writer, st *lsq.State) {
	w.length(len(st.Ring))
	for i := range st.Ring {
		e := &st.Ring[i]
		w.u64(e.Seq)
		w.bool(e.IsStore)
		w.bool(e.IsFP)
		w.u8(e.Size)
		w.bool(e.AddrReady)
		w.u32(e.Addr)
		w.bool(e.DataReady)
		w.i32(e.DataI)
		w.f64(e.DataF)
		w.bool(e.Done)
	}
	w.vInt(st.Head)
	w.vInt(st.Count)
	w.u64(st.Allocs)
	w.u64(st.Searches)
	w.u64(st.Forwards)
	w.u64(st.ConflictStalls)
}

func encodeI32List(w *writer, vs []int32) {
	w.length(len(vs))
	for _, v := range vs {
		w.i32(v)
	}
}

func encodeIQ(w *writer, st *core.QueueState) {
	w.vInt(st.Count)
	w.length(len(st.Slots))
	for i := range st.Slots {
		e := &st.Slots[i]
		w.u64(e.Seq)
		w.u32(e.PC)
		encodeInst(w, e.Inst)
		w.vInt(e.ROBSlot)
		w.vInt(e.LSQSlot)
		w.vInt(e.NumSrc)
		w.vInt(e.SrcPhys[0])
		w.vInt(e.SrcPhys[1])
		w.u8(uint8(e.SrcKind[0]))
		w.u8(uint8(e.SrcKind[1]))
		w.bool(e.HasDest)
		w.vInt(e.DestPhys)
		w.u8(uint8(e.DestKind))
		w.bool(e.SrcReady[0])
		w.bool(e.SrcReady[1])
		w.bool(e.Issued)
		w.bool(e.Classified)
		w.bool(e.StaticTaken)
		w.u32(e.StaticTarget)
	}
	w.length(len(st.Meta))
	for _, m := range st.Meta {
		w.i32(m.Next)
		w.i32(m.Prev)
		w.i32(m.SNext)
		w.i32(m.SPrev)
		w.u64(m.OrderKey)
		w.i32(m.ReadyPos)
		w.u8(uint8(m.Pending))
		w.bool(m.Valid)
		w.bool(m.InStore)
	}
	w.i32(st.Head)
	w.i32(st.Tail)
	w.i32(st.FreeTop)
	w.u64(st.OrderGen)
	w.vInt(st.Classified)
	encodeI32List(w, st.ClassSlots)
	w.bool(st.ClassDirty)
	encodeI32List(w, st.ReadySlots)
	encodeI32List(w, st.WNext)
	encodeI32List(w, st.WPrev)
	encodeI32List(w, st.WReg)
	encodeI32List(w, st.IntWait)
	encodeI32List(w, st.FPWait)
	w.i32(st.StoreHead)
	w.i32(st.StoreTail)
	w.u64(st.Dispatches)
	w.u64(st.PartialUpdates)
	w.u64(st.IssueReads)
	w.u64(st.Removals)
	w.u64(st.Collapses)
	w.u64(st.SelectScans)
}

func encodeCtl(w *writer, st *core.ControllerState) {
	w.u8(uint8(st.State))
	w.u32(st.LoopHead)
	w.u32(st.LoopTail)
	w.vInt(st.CallDepth)
	w.vInt(st.IterCount)
	w.vInt(st.LastIterSize)
	w.bool(st.FirstIterDone)
	w.vInt(st.ReuseOrd)
	w.u64(st.Wraps)
	for _, p := range statPtrs(&st.S) {
		w.u64(*p)
	}
	w.length(len(st.NBLT.Addrs))
	for _, a := range st.NBLT.Addrs {
		w.u32(a)
	}
	w.length(len(st.NBLT.Valid))
	for _, v := range st.NBLT.Valid {
		w.bool(v)
	}
	w.vInt(st.NBLT.Next)
	w.u64(st.NBLT.Lookups)
	w.u64(st.NBLT.Hits)
	w.u64(st.NBLT.Inserts)
}

func encodeCache(w *writer, st *mem.CacheState) {
	w.length(len(st.Lines))
	for _, l := range st.Lines {
		w.bool(l.Valid)
		w.bool(l.Dirty)
		w.u32(l.Tag)
		w.u64(l.LRU)
	}
	w.u64(st.Stamp)
	w.u64(st.Accesses)
	w.u64(st.Misses)
	w.u64(st.Writebacks)
}

func encodeHier(w *writer, st *mem.HierarchyState) {
	encodeCache(w, &st.L1I)
	encodeCache(w, &st.L1D)
	encodeCache(w, &st.L2)
	w.bool(st.HasL0I)
	if st.HasL0I {
		encodeCache(w, &st.L0I)
	}
	encodeCache(w, &st.ITLB)
	encodeCache(w, &st.DTLB)
	w.u64(st.L2WritebackAccesses)
}

func encodeBP(w *writer, st *bpred.State) {
	w.length(len(st.Bimod))
	w.write(st.Bimod)
	w.length(len(st.BTB))
	for _, e := range st.BTB {
		w.bool(e.Valid)
		w.u32(e.Tag)
		w.u32(e.Target)
		w.u64(e.LRU)
	}
	w.length(len(st.RAS))
	for _, a := range st.RAS {
		w.u32(a)
	}
	w.vInt(st.RASTop)
	w.vInt(st.RASCnt)
	w.u64(st.Stamp)
	w.u64(st.Lookups)
	w.u64(st.Updates)
	w.u64(st.BTBLookups)
	w.u64(st.BTBUpdates)
	w.u64(st.RASOps)
}

func encodeFU(w *writer, st *fu.State) {
	for k := 0; k < fu.NumKinds; k++ {
		w.length(len(st.NextFree[k]))
		for _, v := range st.NextFree[k] {
			w.u64(v)
		}
	}
	for k := 0; k < fu.NumKinds; k++ {
		w.u64(st.Ops[k])
	}
}

// ---------------------------------------------------------------- decode --

// dims carries the configuration-derived size caps the decoder validates
// lengths against before allocating.
type dims struct {
	cfg pipeline.Config // normalized
}

func (d *dims) iqSize() int    { return d.cfg.IQSize }
func (d *dims) robSize() int   { return d.cfg.ROBSize }
func (d *dims) lsqSize() int   { return d.cfg.LSQSize }
func (d *dims) intPhys() int   { return d.cfg.IntPhysRegs }
func (d *dims) fpPhys() int    { return d.cfg.FPPhysRegs }
func (d *dims) fetchQ() int    { return d.cfg.FetchQueueSize + d.cfg.FetchWidth }
func (d *dims) decodeLat() int { return d.cfg.DecodeWidth }

func cacheLines(c mem.CacheConfig) int { return c.Sets * c.Ways }
func tlbLines(c mem.TLBConfig) int     { return c.Sets * c.Ways }

//reuse:codec decode
func decodeState(r *reader, d *dims) *pipeline.MachineState {
	st := &pipeline.MachineState{}
	r.tag(secMachine, "machine")
	st.Cycle = r.u64()
	st.NextSeq = r.u64()
	st.FetchPC = r.u32()
	st.FetchStallUntil = r.u64()
	st.FetchHalted = r.boolean()
	st.Halted = r.boolean()
	st.LastCommit = r.u64()
	for _, p := range counterPtrs(&st.C) {
		*p = r.u64()
	}
	st.FetchQ = decodeFetchedList(r, "fetch queue", d.fetchQ())
	st.DecodeLat = decodeFetchedList(r, "decode latch", d.decodeLat())
	n := r.length("execution list", pipeline.MaxExecQ)
	st.ExecQ = make([]pipeline.ExecState, n)
	for i := 0; i < n && r.err == nil; i++ {
		e := &st.ExecQ[i]
		e.ROBSlot = r.vInt()
		e.Seq = r.u64()
		e.Done = r.u64()
		e.ValI = r.i32()
		e.ValF = r.f64()
	}

	r.tag(secMemory, "memory")
	n = r.length("memory pages", prog.MaxPages)
	st.Pages = make([]prog.PageImage, 0, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		var pg prog.PageImage
		pg.Num = r.u32()
		r.read(pg.Data[:])
		st.Pages = append(st.Pages, pg)
	}

	r.tag(secRF, "rename")
	decodeRF(r, d, &st.RF)
	r.tag(secROB, "rob")
	decodeROB(r, d, &st.ROB)
	r.tag(secLSQ, "lsq")
	decodeLSQ(r, d, &st.LSQ)
	r.tag(secIQ, "issue queue")
	decodeIQ(r, d, &st.IQ)
	r.tag(secCtl, "controller")
	decodeCtl(r, d, &st.Ctl)
	r.tag(secHier, "memory hierarchy")
	decodeHier(r, d, &st.Hier)
	r.tag(secBP, "branch predictor")
	decodeBP(r, d, &st.BP)
	r.tag(secFU, "function units")
	decodeFU(r, d, &st.FUs)

	r.tag(secChaos, "chaos")
	st.Chaos.Draws = r.u64()
	for _, p := range chaosCounterPtrs(&st.Chaos.C) {
		*p = r.u64()
	}

	r.tag(secLC, "loop cache")
	st.HasLC = r.boolean()
	if st.HasLC && r.err == nil {
		st.LC.State = r.u8()
		st.LC.Head = r.u32()
		st.LC.Tail = r.u32()
		n = r.length("loop cache valid set", 1<<16)
		st.LC.ValidPCs = make([]uint32, n)
		for i := range st.LC.ValidPCs {
			st.LC.ValidPCs[i] = r.u32()
		}
		st.LC.Supplies = r.u64()
		st.LC.Fills = r.u64()
		st.LC.Detects = r.u64()
		st.LC.Exits = r.u64()
	}

	r.tag(secEnd, "end")
	return st
}

func decodeInst(r *reader) isa.Inst {
	return isa.Inst{
		Op: isa.Op(r.u8()), Rd: r.u8(), Rs: r.u8(), Rt: r.u8(),
		Imm: r.i32(), Target: r.u32(),
	}
}

func decodeFetchedList(r *reader, name string, max int) []pipeline.FetchedState {
	n := r.length(name, max)
	fs := make([]pipeline.FetchedState, n)
	for i := 0; i < n && r.err == nil; i++ {
		f := &fs[i]
		f.PC = r.u32()
		f.Inst = decodeInst(r)
		f.IsControl = r.boolean()
		f.PredTaken = r.boolean()
		f.PredTarget = r.u32()
	}
	return fs
}

func decodeRF(r *reader, d *dims, st *rename.State) {
	decodeI32s := func(name string, max int) []int32 {
		n := r.length(name, max)
		vs := make([]int32, n)
		for i := range vs {
			vs[i] = r.i32()
		}
		return vs
	}
	decodeF64s := func(name string, max int) []float64 {
		n := r.length(name, max)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = r.f64()
		}
		return vs
	}
	decodeBools := func(name string, max int) []bool {
		n := r.length(name, max)
		vs := make([]bool, n)
		for i := range vs {
			vs[i] = r.boolean()
		}
		return vs
	}
	decodeInts := func(name string, max int) []int {
		n := r.length(name, max)
		vs := make([]int, n)
		for i := range vs {
			vs[i] = r.vInt()
		}
		return vs
	}
	st.IntVals = decodeI32s("int registers", d.intPhys())
	st.FPVals = decodeF64s("fp registers", d.fpPhys())
	st.IntReady = decodeBools("int ready bits", d.intPhys())
	st.FPReady = decodeBools("fp ready bits", d.fpPhys())
	st.IntMap = decodeInts("int map", isa.NumIntRegs)
	st.FPMap = decodeInts("fp map", isa.NumFPRegs)
	st.IntFree = decodeInts("int free list", d.intPhys())
	st.FPFree = decodeInts("fp free list", d.fpPhys())
	st.Renames = r.u64()
	st.MapReads = r.u64()
	st.Reads = r.u64()
	st.Writes = r.u64()
}

func decodeROB(r *reader, d *dims, st *rob.State) {
	n := r.length("rob ring", d.robSize())
	st.Ring = make([]rob.Entry, n)
	for i := 0; i < n && r.err == nil; i++ {
		e := &st.Ring[i]
		e.Seq = r.u64()
		e.PC = r.u32()
		e.Inst = decodeInst(r)
		e.HasDest = r.boolean()
		e.Dest.Kind = isa.RegKind(r.u8())
		e.Dest.Num = r.u8()
		e.NewPhys = r.vInt()
		e.OldPhys = r.vInt()
		e.Done = r.boolean()
		e.PredTaken = r.boolean()
		e.PredTarget = r.u32()
		e.ActTaken = r.boolean()
		e.ActTarget = r.u32()
		e.Mispred = r.boolean()
		e.IsLoad = r.boolean()
		e.IsStore = r.boolean()
		e.Halt = r.boolean()
		e.Reused = r.boolean()
		e.IssueCycle = r.u64()
	}
	n = r.length("rob used bits", d.robSize())
	st.Used = make([]bool, n)
	for i := range st.Used {
		st.Used[i] = r.boolean()
	}
	st.Head = r.vInt()
	st.Count = r.vInt()
	st.Allocs = r.u64()
	st.Commits = r.u64()
}

func decodeLSQ(r *reader, d *dims, st *lsq.State) {
	n := r.length("lsq ring", d.lsqSize())
	st.Ring = make([]lsq.Entry, n)
	for i := 0; i < n && r.err == nil; i++ {
		e := &st.Ring[i]
		e.Seq = r.u64()
		e.IsStore = r.boolean()
		e.IsFP = r.boolean()
		e.Size = r.u8()
		e.AddrReady = r.boolean()
		e.Addr = r.u32()
		e.DataReady = r.boolean()
		e.DataI = r.i32()
		e.DataF = r.f64()
		e.Done = r.boolean()
	}
	st.Head = r.vInt()
	st.Count = r.vInt()
	st.Allocs = r.u64()
	st.Searches = r.u64()
	st.Forwards = r.u64()
	st.ConflictStalls = r.u64()
}

func decodeI32List(r *reader, name string, max int) []int32 {
	n := r.length(name, max)
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = r.i32()
	}
	return vs
}

func decodeIQ(r *reader, d *dims, st *core.QueueState) {
	size := d.iqSize()
	st.Count = r.vInt()
	n := r.length("iq slots", size)
	st.Slots = make([]core.Entry, n)
	for i := 0; i < n && r.err == nil; i++ {
		e := &st.Slots[i]
		e.Seq = r.u64()
		e.PC = r.u32()
		e.Inst = decodeInst(r)
		e.ROBSlot = r.vInt()
		e.LSQSlot = r.vInt()
		e.NumSrc = r.vInt()
		e.SrcPhys[0] = r.vInt()
		e.SrcPhys[1] = r.vInt()
		e.SrcKind[0] = isa.RegKind(r.u8())
		e.SrcKind[1] = isa.RegKind(r.u8())
		e.HasDest = r.boolean()
		e.DestPhys = r.vInt()
		e.DestKind = isa.RegKind(r.u8())
		e.SrcReady[0] = r.boolean()
		e.SrcReady[1] = r.boolean()
		e.Issued = r.boolean()
		e.Classified = r.boolean()
		e.StaticTaken = r.boolean()
		e.StaticTarget = r.u32()
	}
	n = r.length("iq meta", size)
	st.Meta = make([]core.SlotMetaState, n)
	for i := 0; i < n && r.err == nil; i++ {
		m := &st.Meta[i]
		m.Next = r.i32()
		m.Prev = r.i32()
		m.SNext = r.i32()
		m.SPrev = r.i32()
		m.OrderKey = r.u64()
		m.ReadyPos = r.i32()
		m.Pending = int8(r.u8())
		m.Valid = r.boolean()
		m.InStore = r.boolean()
	}
	st.Head = r.i32()
	st.Tail = r.i32()
	st.FreeTop = r.i32()
	st.OrderGen = r.u64()
	st.Classified = r.vInt()
	st.ClassSlots = decodeI32List(r, "iq classified slots", size)
	st.ClassDirty = r.boolean()
	st.ReadySlots = decodeI32List(r, "iq ready slots", size)
	st.WNext = decodeI32List(r, "iq wakeup next", 2*size)
	st.WPrev = decodeI32List(r, "iq wakeup prev", 2*size)
	st.WReg = decodeI32List(r, "iq wakeup reg", 2*size)
	st.IntWait = decodeI32List(r, "iq int wait heads", d.intPhys())
	st.FPWait = decodeI32List(r, "iq fp wait heads", d.fpPhys())
	st.StoreHead = r.i32()
	st.StoreTail = r.i32()
	st.Dispatches = r.u64()
	st.PartialUpdates = r.u64()
	st.IssueReads = r.u64()
	st.Removals = r.u64()
	st.Collapses = r.u64()
	st.SelectScans = r.u64()
}

func decodeCtl(r *reader, d *dims, st *core.ControllerState) {
	st.State = core.State(r.u8())
	st.LoopHead = r.u32()
	st.LoopTail = r.u32()
	st.CallDepth = r.vInt()
	st.IterCount = r.vInt()
	st.LastIterSize = r.vInt()
	st.FirstIterDone = r.boolean()
	st.ReuseOrd = r.vInt()
	st.Wraps = r.u64()
	for _, p := range statPtrs(&st.S) {
		*p = r.u64()
	}
	nbltMax := d.cfg.Reuse.NBLTSize
	n := r.length("nblt addrs", nbltMax)
	st.NBLT.Addrs = make([]uint32, n)
	for i := range st.NBLT.Addrs {
		st.NBLT.Addrs[i] = r.u32()
	}
	n = r.length("nblt valid bits", nbltMax)
	st.NBLT.Valid = make([]bool, n)
	for i := range st.NBLT.Valid {
		st.NBLT.Valid[i] = r.boolean()
	}
	st.NBLT.Next = r.vInt()
	st.NBLT.Lookups = r.u64()
	st.NBLT.Hits = r.u64()
	st.NBLT.Inserts = r.u64()
}

func decodeCache(r *reader, name string, lines int, st *mem.CacheState) {
	n := r.length(name, lines)
	st.Lines = make([]mem.LineState, n)
	for i := 0; i < n && r.err == nil; i++ {
		l := &st.Lines[i]
		l.Valid = r.boolean()
		l.Dirty = r.boolean()
		l.Tag = r.u32()
		l.LRU = r.u64()
	}
	st.Stamp = r.u64()
	st.Accesses = r.u64()
	st.Misses = r.u64()
	st.Writebacks = r.u64()
}

func decodeHier(r *reader, d *dims, st *mem.HierarchyState) {
	mc := d.cfg.Mem
	decodeCache(r, "l1i", cacheLines(mc.L1I), &st.L1I)
	decodeCache(r, "l1d", cacheLines(mc.L1D), &st.L1D)
	decodeCache(r, "l2", cacheLines(mc.L2), &st.L2)
	st.HasL0I = r.boolean()
	if st.HasL0I && r.err == nil {
		decodeCache(r, "l0i", cacheLines(mc.L0I), &st.L0I)
	}
	decodeCache(r, "itlb", tlbLines(mc.ITLB), &st.ITLB)
	decodeCache(r, "dtlb", tlbLines(mc.DTLB), &st.DTLB)
	st.L2WritebackAccesses = r.u64()
}

func decodeBP(r *reader, d *dims, st *bpred.State) {
	bc := d.cfg.Bpred
	n := r.length("bimod", bc.BimodEntries)
	st.Bimod = make([]uint8, n)
	r.read(st.Bimod)
	n = r.length("btb", bc.BTBSets*bc.BTBWays)
	st.BTB = make([]bpred.BTBLineState, n)
	for i := 0; i < n && r.err == nil; i++ {
		e := &st.BTB[i]
		e.Valid = r.boolean()
		e.Tag = r.u32()
		e.Target = r.u32()
		e.LRU = r.u64()
	}
	n = r.length("ras", bc.RASEntries)
	st.RAS = make([]uint32, n)
	for i := range st.RAS {
		st.RAS[i] = r.u32()
	}
	st.RASTop = r.vInt()
	st.RASCnt = r.vInt()
	st.Stamp = r.u64()
	st.Lookups = r.u64()
	st.Updates = r.u64()
	st.BTBLookups = r.u64()
	st.BTBUpdates = r.u64()
	st.RASOps = r.u64()
}

func decodeFU(r *reader, d *dims, st *fu.State) {
	fc := d.cfg.FU
	caps := [fu.NumKinds]int{fc.NumIntALU, fc.NumIntMul, fc.NumFPALU, fc.NumFPMul, fc.NumMemPort}
	for k := 0; k < fu.NumKinds; k++ {
		n := r.length("fu units", caps[k])
		st.NextFree[k] = make([]uint64, n)
		for i := range st.NextFree[k] {
			st.NextFree[k][i] = r.u64()
		}
	}
	for k := 0; k < fu.NumKinds; k++ {
		st.Ops[k] = r.u64()
	}
}

package snapshot

import (
	"fmt"
	"strings"

	"reuseiq/internal/pipeline"
	"reuseiq/internal/prog"
)

// Fingerprint is the pair of value-hashes that identifies what a run
// simulated: the machine configuration and the program image. Two runs with
// equal fingerprints are simulations of exactly the same modeled system, so
// every modeled counter must come out bit-identical between them — the
// property the run ledger's regression sentinel (internal/runstore) checks.
//
// The hashes are the same ones embedded in snapshot images: ConfigHash pins
// the normalized configuration (including the chaos spec and seed), and
// ProgramHash pins the program text and entry point. Both are value-hashes,
// so fingerprints are process- and machine-portable.
type Fingerprint struct {
	Config  uint64 `json:"config,string"`
	Program uint64 `json:"program,string"`
}

// FingerprintOf fingerprints a configuration/program pair.
//
//reuse:deterministic
func FingerprintOf(cfg pipeline.Config, p *prog.Program) Fingerprint {
	return Fingerprint{Config: ConfigHash(cfg), Program: ProgramHash(p)}
}

// String renders the fingerprint as two fixed-width hex halves joined by a
// colon: "0123456789abcdef:fedcba9876543210".
func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x:%016x", f.Config, f.Program)
}

// ParseFingerprint parses the String form back. It accepts a bare config
// half ("%016x") with the program half left zero, which lets CLI filters
// match on either hash alone.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	cfgPart, progPart, ok := strings.Cut(s, ":")
	if _, err := fmt.Sscanf(cfgPart, "%x", &f.Config); err != nil {
		return Fingerprint{}, fmt.Errorf("snapshot: bad fingerprint %q: %w", s, err)
	}
	if ok {
		if _, err := fmt.Sscanf(progPart, "%x", &f.Program); err != nil {
			return Fingerprint{}, fmt.Errorf("snapshot: bad fingerprint %q: %w", s, err)
		}
	}
	return f, nil
}

// Process-wide snapshot activity counters. Snapshots are encoded and decoded
// from many layers (reusesim checkpoints, the experiment journal, the
// fast-forward engine's ring is state-only and does NOT count, the flight
// recorder) — a single pair of process-wide counters is what an operator
// watching /status or /metrics wants: "is this run snapshotting, and how
// often". Atomics, because sweeps encode from many goroutines at once.
package snapshot

import (
	"sync/atomic"

	"reuseiq/internal/telemetry"
)

var (
	saves    atomic.Uint64
	restores atomic.Uint64
)

// Counters returns the number of snapshot images successfully encoded
// (Write/Save) and successfully decoded (Decode/Restore) by this process.
func Counters() (savesN, restoresN uint64) {
	return saves.Load(), restores.Load()
}

// RegisterMetrics registers the process-wide save/restore counters with r.
func RegisterMetrics(r *telemetry.Registry) {
	r.Counter("snapshot.saves", saves.Load)
	r.Counter("snapshot.restores", restores.Load)
}

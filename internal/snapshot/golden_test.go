package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"reuseiq/internal/snapshot"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSnapshotGoldenWireFormat pins the version-2 wire format byte for byte:
// a deterministic tiny machine snapshotted at a fixed cycle must serialize
// to exactly the bytes in testdata/snapshot_v2.golden. Any codec change —
// field order, width, a new section — fails this test; if the change is
// intentional, the format Version must be bumped and the golden regenerated
// with -update.
func TestSnapshotGoldenWireFormat(t *testing.T) {
	img, _, _ := tinySnapshot(t)
	golden := filepath.Join("testdata", "snapshot_v2.golden")

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, img, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/snapshot -run Golden -update`)", err)
	}
	if !bytes.Equal(img, want) {
		i := 0
		for i < len(img) && i < len(want) && img[i] == want[i] {
			i++
		}
		t.Fatalf("snapshot wire format changed: %d vs %d bytes, first difference at offset %d; "+
			"bump snapshot.Version and regenerate with -update if intentional", len(img), len(want), i)
	}

	// Pin the header layout explicitly, independent of the full-image
	// comparison: magic, version, flags, and the two fingerprint slots.
	if len(want) < 32 {
		t.Fatalf("golden image only %d bytes, header alone is 32", len(want))
	}
	if string(want[0:8]) != snapshot.Magic {
		t.Errorf("bytes 0..8 = %q, want magic %q", want[0:8], snapshot.Magic)
	}
	if v := binary.LittleEndian.Uint32(want[8:12]); v != snapshot.Version {
		t.Errorf("version field = %d, want %d", v, snapshot.Version)
	}
	if f := binary.LittleEndian.Uint32(want[12:16]); f != 0 {
		t.Errorf("flags field = %#x, want 0", f)
	}
	if h := binary.LittleEndian.Uint64(want[16:24]); h == 0 {
		t.Error("config fingerprint slot is zero")
	}
	if h := binary.LittleEndian.Uint64(want[24:32]); h == 0 {
		t.Error("program fingerprint slot is zero")
	}
}

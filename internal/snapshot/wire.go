package snapshot

import (
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// Wire primitives: little-endian fixed-width encoding with a CRC32 (IEEE)
// over every byte of the image body. The writer encodes into an internal
// buffer and computes the checksum in one pass at sum() time: feeding a
// hash.Hash32 per 4- or 8-byte field costs two interface calls and the
// byte-at-a-time CRC fallback for every field, which dominated snapshot
// encode time (the flight recorder encodes an image per checkpoint on the
// simulation's critical path). Nothing reaches the underlying io.Writer
// until flush(), so the only I/O error surfaces there. The reader still
// hashes incrementally — decode is off the hot path — and latches its first
// error, turning the rest of the decode into no-ops, so the per-field codec
// never needs inline error handling. The reader's length method is the
// allocation guard: every variable-length field passes an explicit cap
// derived from the machine configuration, so a corrupt or adversarial image
// can never demand more memory than a valid snapshot of that configuration
// would.

type writer struct {
	w   io.Writer
	buf []byte
	err error
}

// encBufs recycles encode buffers: the flight recorder encodes an image per
// checkpoint interval, and a fresh buffer per image is a quarter-megabyte of
// garbage (plus growth copies) on the simulation's critical path.
var encBufs = sync.Pool{
	New: func() any { b := make([]byte, 0, 1<<18); return &b },
}

func newWriter(w io.Writer) *writer {
	bp := encBufs.Get().(*[]byte)
	return &writer{w: w, buf: (*bp)[:0]}
}

// release returns the writer's buffer to the pool. The writer must not be
// used afterwards.
func (w *writer) release() {
	buf := w.buf
	w.buf = nil
	encBufs.Put(&buf)
}

func (w *writer) write(b []byte) {
	w.buf = append(w.buf, b...)
}

func (w *writer) u8(v uint8) {
	w.buf = append(w.buf, v)
}

func (w *writer) u32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (w *writer) u64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (w *writer) i32(v int32)   { w.u32(uint32(v)) }
func (w *writer) vInt(v int)    { w.u64(uint64(int64(v))) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) length(n int) { w.u32(uint32(n)) }

// sum returns the CRC of everything written so far, in one pass over the
// buffered image (crc32's fast path needs runs longer than the per-field
// writes ever are).
func (w *writer) sum() uint32 { return crc32.ChecksumIEEE(w.buf) }

// rawU32 appends v without feeding the CRC (the checksum trailer itself).
// Call it only after sum(): anything appended later would silently join the
// next sum's coverage.
func (w *writer) rawU32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// flush writes the buffered image to the underlying writer. The encode
// itself cannot fail, so this is where the writer's only error surfaces.
func (w *writer) flush() error {
	if w.err == nil {
		_, w.err = w.w.Write(w.buf)
	}
	return w.err
}

type reader struct {
	r   io.Reader
	crc hash.Hash32
	err error
	buf [8]byte
}

func newReader(r io.Reader) *reader {
	return &reader{r: r, crc: crc32.NewIEEE()}
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (r *reader) read(b []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("snapshot: truncated: %w", err)
		return
	}
	r.crc.Write(b)
}

func (r *reader) u8() uint8 {
	r.read(r.buf[:1])
	if r.err != nil {
		return 0
	}
	return r.buf[0]
}

func (r *reader) u32() uint32 {
	r.read(r.buf[:4])
	if r.err != nil {
		return 0
	}
	return uint32(r.buf[0]) | uint32(r.buf[1])<<8 | uint32(r.buf[2])<<16 | uint32(r.buf[3])<<24
}

func (r *reader) u64() uint64 {
	r.read(r.buf[:8])
	if r.err != nil {
		return 0
	}
	return uint64(r.buf[0]) | uint64(r.buf[1])<<8 | uint64(r.buf[2])<<16 | uint64(r.buf[3])<<24 |
		uint64(r.buf[4])<<32 | uint64(r.buf[5])<<40 | uint64(r.buf[6])<<48 | uint64(r.buf[7])<<56
}

func (r *reader) i32() int32    { return int32(r.u32()) }
func (r *reader) vInt() int     { return int(int64(r.u64())) }
func (r *reader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *reader) boolean() bool { return r.u8() != 0 }

// length reads a u32 count and rejects anything above max, bounding every
// allocation the decoder makes.
func (r *reader) length(name string, max int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if max < 0 {
		max = 0
	}
	if n > uint32(max) {
		r.fail("%s count %d exceeds cap %d", name, n, max)
		return 0
	}
	return int(n)
}

// tag reads a section tag and checks it.
func (r *reader) tag(want uint32, name string) {
	got := r.u32()
	if r.err == nil && got != want {
		r.fail("section %s: tag 0x%08x, want 0x%08x", name, got, want)
	}
}

// sum returns the CRC of everything read so far.
func (r *reader) sum() uint32 { return r.crc.Sum32() }

// rawU32 reads v without feeding the CRC (the checksum trailer itself).
func (r *reader) rawU32() uint32 {
	if r.err != nil {
		return 0
	}
	if _, err := io.ReadFull(r.r, r.buf[:4]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("snapshot: truncated: %w", err)
		return 0
	}
	return uint32(r.buf[0]) | uint32(r.buf[1])<<8 | uint32(r.buf[2])<<16 | uint32(r.buf[3])<<24
}

package snapshot_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"reuseiq/internal/altfe"
	"reuseiq/internal/asm"
	"reuseiq/internal/bpred"
	"reuseiq/internal/chaos"
	"reuseiq/internal/compiler"
	"reuseiq/internal/core"
	"reuseiq/internal/lockstep"
	"reuseiq/internal/mem"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/prog"
	"reuseiq/internal/snapshot"
	"reuseiq/internal/workloads"
)

// commitRec is the commit-stream fingerprint the lockstep tests compare:
// if two machines commit the same instructions at the same cycles with the
// same results, their executions are identical in every way that matters.
type commitRec struct {
	Cycle, Seq uint64
	PC         uint32
	Reused     bool
	HasDest    bool
	DestI      int32
	DestF      float64
}

func recordCommits(m *pipeline.Machine, into *[]commitRec) {
	m.OnCommit = func(c pipeline.Commit) error {
		*into = append(*into, commitRec{
			Cycle: c.Cycle, Seq: c.Seq, PC: c.PC, Reused: c.Reused,
			HasDest: c.HasDest, DestI: c.DestI, DestF: c.DestF,
		})
		return nil
	}
}

// microloop is a small reuse-friendly program: a tight capturable loop long
// enough to survive a few thousand cycles of hopping.
func microloop() *prog.Program {
	return asm.MustAssemble(`
	li   $r2, 0
	li   $r3, 3000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
}

func kernelProg(t *testing.T, name string) *prog.Program {
	t.Helper()
	k, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("no kernel %q", name)
	}
	mp, _, err := compiler.Compile(k.Prog)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

// straightRun executes p under cfg without interruption and returns its
// commit stream and final snapshot image.
func straightRun(t *testing.T, cfg pipeline.Config, p *prog.Program) ([]commitRec, []byte) {
	t.Helper()
	m := pipeline.New(cfg, p)
	var commits []commitRec
	recordCommits(m, &commits)
	if err := m.Run(); err != nil {
		t.Fatalf("straight run: %v", err)
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, m); err != nil {
		t.Fatalf("straight run final save: %v", err)
	}
	return commits, buf.Bytes()
}

// chainRun executes p under cfg while repeatedly stopping at pseudo-random
// cycles, saving a snapshot, restoring it into a brand-new machine (with the
// per-cycle invariant checker attached), and continuing there. It returns
// the stitched commit stream, the final snapshot image, the number of
// save/restore hops performed, and the set of controller states observed at
// snapshot instants.
func chainRun(t *testing.T, cfg pipeline.Config, p *prog.Program, seed int64) ([]commitRec, []byte, int, map[core.State]bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	states := map[core.State]bool{}
	var commits []commitRec
	hops := 0

	m := pipeline.New(cfg, p)
	recordCommits(m, &commits)
	for {
		interval := uint64(1 + rng.Intn(997))
		err := m.RunBreakable(interval, func() bool { return true })
		if err == nil {
			break // halted
		}
		if !errors.Is(err, pipeline.ErrStopped) {
			t.Fatalf("chain run: %v", err)
		}
		states[m.Ctl.ExportState().State] = true

		var buf bytes.Buffer
		if err := snapshot.Save(&buf, m); err != nil {
			t.Fatalf("hop %d save: %v", hops, err)
		}
		m2, err := snapshot.Restore(bytes.NewReader(buf.Bytes()), cfg, p)
		if err != nil {
			t.Fatalf("hop %d restore: %v", hops, err)
		}
		// A restored machine must re-serialize to the identical image.
		var buf2 bytes.Buffer
		if err := snapshot.Save(&buf2, m2); err != nil {
			t.Fatalf("hop %d re-save: %v", hops, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("hop %d: restored machine re-serializes differently (%d vs %d bytes)",
				hops, buf.Len(), buf2.Len())
		}
		recordCommits(m2, &commits)
		lockstep.AttachChecker(m2)
		m = m2
		hops++
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, m); err != nil {
		t.Fatalf("chain final save: %v", err)
	}
	return commits, buf.Bytes(), hops, states
}

// TestSaveRestoreLockstep is the tentpole correctness statement: execution
// that hops across an arbitrary number of save/restore boundaries at
// pseudo-random cycles is bit-identical — same commit stream, same final
// snapshot image — to execution that never stopped. Runs cover reuse on/off,
// chaos injection on/off, the loop-cache alternative front end, and both a
// tight microloop and real kernels; across all of them well over 100
// randomized snapshot cycles are exercised, and snapshots are verified to
// land mid-Buffering and mid-Reuse, not just in the Normal state.
func TestSaveRestoreLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("full lockstep simulations")
	}
	chaosCfg := func(seed int64) chaos.Config {
		c := chaos.DefaultConfig(seed)
		return c
	}
	lcCfg := pipeline.BaselineConfig()
	lcCfg.LoopCache = &altfe.LoopCacheConfig{Entries: 32}

	cases := []struct {
		name string
		cfg  pipeline.Config
		prog func(*testing.T) *prog.Program
		seed int64
	}{
		{"microloop/reuse", pipeline.DefaultConfig(), func(*testing.T) *prog.Program { return microloop() }, 1},
		{"microloop/baseline", pipeline.BaselineConfig(), func(*testing.T) *prog.Program { return microloop() }, 2},
		{"microloop/chaos", func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.Chaos = chaosCfg(7)
			return c
		}(), func(*testing.T) *prog.Program { return microloop() }, 3},
		{"microloop/loopcache", lcCfg, func(*testing.T) *prog.Program { return microloop() }, 4},
		{"aps/reuse", pipeline.DefaultConfig(), func(t *testing.T) *prog.Program { return kernelProg(t, "aps") }, 5},
		{"aps/chaos", func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.Chaos = chaosCfg(11)
			return c
		}(), func(t *testing.T) *prog.Program { return kernelProg(t, "aps") }, 6},
		{"tsf/reuse", pipeline.DefaultConfig(), func(t *testing.T) *prog.Program { return kernelProg(t, "tsf") }, 7},
		{"eflux/chaos", func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.Chaos = chaosCfg(13)
			return c
		}(), func(t *testing.T) *prog.Program { return kernelProg(t, "eflux") }, 8},
	}

	totalHops := 0
	statesSeen := map[core.State]bool{}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := tc.prog(t)
			want, wantFinal := straightRun(t, tc.cfg, p)
			got, gotFinal, hops, states := chainRun(t, tc.cfg, p, tc.seed)

			if len(got) != len(want) {
				t.Fatalf("chain committed %d instructions, straight run %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("commit %d diverges:\nchain:    %+v\nstraight: %+v", i, got[i], want[i])
				}
			}
			if !bytes.Equal(gotFinal, wantFinal) {
				t.Fatalf("final snapshot images differ (%d vs %d bytes)", len(gotFinal), len(wantFinal))
			}
			if hops == 0 {
				t.Fatalf("run finished before any snapshot hop; shorten the hop interval")
			}
			totalHops += hops
			for s := range states {
				statesSeen[s] = true
			}
		})
	}
	if t.Failed() {
		return
	}
	if totalHops < 100 {
		t.Errorf("only %d randomized snapshot cycles exercised, want >= 100", totalHops)
	}
	for _, s := range []core.State{core.Normal, core.Buffering, core.Reuse} {
		if !statesSeen[s] {
			t.Errorf("no snapshot was taken in controller state %v; coverage hole", s)
		}
	}
}

// tinyConfig keeps structures small so fault-injection sweeps and golden
// files stay fast and compact.
func tinyConfig() pipeline.Config {
	c := pipeline.DefaultConfig()
	c.IQSize = 16
	c.ROBSize = 16
	c.LSQSize = 8
	c.Mem = mem.HierarchyConfig{
		L1I:         mem.CacheConfig{Name: "il1", Sets: 8, Ways: 1, LineBytes: 32, HitLat: 1},
		L1D:         mem.CacheConfig{Name: "dl1", Sets: 8, Ways: 1, LineBytes: 32, HitLat: 1},
		L2:          mem.CacheConfig{Name: "ul2", Sets: 16, Ways: 1, LineBytes: 64, HitLat: 8},
		ITLB:        mem.TLBConfig{Name: "itlb", Sets: 2, Ways: 2, PageBytes: 4096, MissLat: 3},
		DTLB:        mem.TLBConfig{Name: "dtlb", Sets: 2, Ways: 2, PageBytes: 4096, MissLat: 3},
		MemLatFirst: 80, MemLatRest: 8,
	}
	c.Bpred = bpred.Config{BimodEntries: 16, BTBSets: 8, BTBWays: 1, RASEntries: 4}
	return c
}

// tinySnapshot runs the microloop for a fixed number of cycles under
// tinyConfig and returns the snapshot image (deterministic across runs).
func tinySnapshot(t *testing.T) ([]byte, pipeline.Config, *prog.Program) {
	t.Helper()
	cfg := tinyConfig()
	p := microloop()
	m := pipeline.New(cfg, p)
	err := m.RunBreakable(300, func() bool { return true })
	if !errors.Is(err, pipeline.ErrStopped) {
		t.Fatalf("expected break, got %v", err)
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), cfg, p
}

// TestRestoreRejectsMismatch pins the header checks: wrong magic, wrong
// version, unknown flags, and fingerprint mismatches each fail with their
// sentinel error.
func TestRestoreRejectsMismatch(t *testing.T) {
	img, cfg, p := tinySnapshot(t)

	restore := func(b []byte, cfg pipeline.Config, p *prog.Program) error {
		_, err := snapshot.Restore(bytes.NewReader(b), cfg, p)
		return err
	}

	bad := append([]byte(nil), img...)
	copy(bad, "NOTASNAP")
	if err := restore(bad, cfg, p); !errors.Is(err, snapshot.ErrFormat) {
		t.Errorf("bad magic: got %v, want ErrFormat", err)
	}

	bad = append([]byte(nil), img...)
	bad[8] = 99 // version field
	if err := restore(bad, cfg, p); !errors.Is(err, snapshot.ErrVersion) {
		t.Errorf("future version: got %v, want ErrVersion", err)
	}

	bad = append([]byte(nil), img...)
	bad[12] = 1 // flags field
	if err := restore(bad, cfg, p); !errors.Is(err, snapshot.ErrVersion) {
		t.Errorf("unknown flags: got %v, want ErrVersion", err)
	}

	otherCfg := cfg
	otherCfg.IQSize = 32
	if err := restore(img, otherCfg, p); !errors.Is(err, snapshot.ErrFingerprint) {
		t.Errorf("config mismatch: got %v, want ErrFingerprint", err)
	}

	otherProg := asm.MustAssemble("li $r2, 1\nhalt\n")
	if err := restore(img, cfg, otherProg); !errors.Is(err, snapshot.ErrFingerprint) {
		t.Errorf("program mismatch: got %v, want ErrFingerprint", err)
	}

	// An undamaged image must still restore after all that copying.
	if err := restore(img, cfg, p); err != nil {
		t.Fatalf("pristine image failed to restore: %v", err)
	}
}

// TestRestoreRejectsCorruption sweeps single-byte corruption across the
// whole image and truncation at every prefix length: every damaged stream
// must produce an error — CRC mismatch, structural failure, or truncation —
// and never a panic or a silently-wrong machine.
func TestRestoreRejectsCorruption(t *testing.T) {
	img, cfg, p := tinySnapshot(t)

	for pos := 0; pos < len(img); pos += 7 {
		bad := append([]byte(nil), img...)
		bad[pos] ^= 0x40
		if _, err := snapshot.Restore(bytes.NewReader(bad), cfg, p); err == nil {
			t.Fatalf("flip at byte %d of %d: restore accepted a corrupt image", pos, len(img))
		}
	}
	for n := 0; n < len(img); n += 13 {
		if _, err := snapshot.Restore(bytes.NewReader(img[:n]), cfg, p); err == nil {
			t.Fatalf("truncation to %d of %d bytes: restore accepted it", n, len(img))
		}
	}
	// The last byte (inside the CRC trailer) and one-byte-short are the
	// classic off-by-one spots; hit them explicitly.
	if _, err := snapshot.Restore(bytes.NewReader(img[:len(img)-1]), cfg, p); err == nil {
		t.Fatal("one-byte-short image accepted")
	}
	bad := append([]byte(nil), img...)
	bad[len(bad)-1] ^= 0xff
	if _, err := snapshot.Restore(bytes.NewReader(bad), cfg, p); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("corrupt CRC trailer: got %v, want ErrChecksum", err)
	}
}

// TestChaosStreamPositionBound pins the decoder's replay bound: an image
// claiming an absurd PRNG position for its cycle count is rejected rather
// than replayed (which would be an effective infinite loop).
func TestChaosStreamPositionBound(t *testing.T) {
	cfg := tinyConfig()
	cfg.Chaos = chaos.DefaultConfig(42)
	p := microloop()
	m := pipeline.New(cfg, p)
	err := m.RunBreakable(100, func() bool { return true })
	if !errors.Is(err, pipeline.ErrStopped) {
		t.Fatalf("expected break, got %v", err)
	}
	st := m.Snapshot()
	st.Chaos.Draws = 1 << 62
	if _, err := pipeline.Resume(cfg, p, st); err == nil {
		t.Fatal("resume accepted an absurd chaos stream position")
	} else if want := "chaos stream position"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("got %v, want error mentioning %q", err, want)
	}
}

// TestSnapshotDeterminism double-checks that saving the same machine twice
// yields identical bytes (map iteration anywhere in the export path would
// break this, and with it the lockstep byte comparisons).
func TestSnapshotDeterminism(t *testing.T) {
	img1, _, _ := tinySnapshot(t)
	img2, _, _ := tinySnapshot(t)
	if !bytes.Equal(img1, img2) {
		t.Fatal("two identical runs produced different snapshot images")
	}
}

// TestResumeIsolation verifies a restored machine does not alias state with
// the image or a sibling restore: two machines restored from the same bytes
// and run further must not perturb each other.
func TestResumeIsolation(t *testing.T) {
	img, cfg, p := tinySnapshot(t)
	m1, err := snapshot.Restore(bytes.NewReader(img), cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := snapshot.Restore(bytes.NewReader(img), cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Run(); err != nil {
		t.Fatal(err)
	}
	// m2 untouched by m1's run: it must still serialize to the original image.
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), img) {
		t.Fatal("running one restored machine perturbed a sibling restored from the same image")
	}
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if m1.C.Cycles != m2.C.Cycles || m1.C.Commits != m2.C.Commits {
		t.Fatalf("sibling restores diverged: %d/%d cycles, %d/%d commits",
			m1.C.Cycles, m2.C.Cycles, m1.C.Commits, m2.C.Commits)
	}
}

// TestHashesDiscriminate sanity-checks the fingerprint functions actually
// move when the inputs move (a constant hash would make ErrFingerprint
// vacuous).
func TestHashesDiscriminate(t *testing.T) {
	base := pipeline.DefaultConfig()
	variants := []pipeline.Config{
		func() pipeline.Config { c := base; c.IQSize = 128; return c }(),
		func() pipeline.Config { c := base; c.Reuse.Enabled = false; return c }(),
		func() pipeline.Config { c := base; c.Chaos = chaos.DefaultConfig(1); return c }(),
		func() pipeline.Config { c := base; c.LoopCache = &altfe.LoopCacheConfig{Entries: 32}; return c }(),
	}
	h0 := snapshot.ConfigHash(base)
	for i, v := range variants {
		if snapshot.ConfigHash(v) == h0 {
			t.Errorf("config variant %d hashes like the base", i)
		}
	}
	// Two heap copies of an identical LoopCache config must hash identically
	// (the pointer is flattened, not printed).
	a, b := base, base
	a.LoopCache = &altfe.LoopCacheConfig{Entries: 32}
	b.LoopCache = &altfe.LoopCacheConfig{Entries: 32}
	if snapshot.ConfigHash(a) != snapshot.ConfigHash(b) {
		t.Error("identical configs with distinct LoopCache pointers hash differently")
	}

	p1 := microloop()
	p2 := asm.MustAssemble("li $r2, 1\nhalt\n")
	if snapshot.ProgramHash(p1) == snapshot.ProgramHash(p2) {
		t.Error("different programs hash identically")
	}
	if snapshot.ProgramHash(p1) != snapshot.ProgramHash(microloop()) {
		t.Error("identical programs hash differently")
	}
}

// TestSaveToFailingWriter pins error propagation on the save side.
func TestSaveToFailingWriter(t *testing.T) {
	cfg := tinyConfig()
	p := microloop()
	m := pipeline.New(cfg, p)
	if err := snapshot.Save(failingWriter{}, m); err == nil {
		t.Fatal("save to a failing writer reported success")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

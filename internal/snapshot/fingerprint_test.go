package snapshot

import (
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/prog"
)

func fingerprintProgram(t *testing.T) *prog.Program {
	t.Helper()
	return asm.MustAssemble(`
	li   $r2, 0
	li   $r3, 10
loop:	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
}

func TestFingerprintKeysConfigAndProgram(t *testing.T) {
	p := fingerprintProgram(t)
	cfg := pipeline.DefaultConfig()
	fp := FingerprintOf(cfg, p)
	if fp != FingerprintOf(cfg, p) {
		t.Error("fingerprint not deterministic")
	}
	if got := FingerprintOf(cfg.WithIQSize(cfg.IQSize*2), p); got.Config == fp.Config {
		t.Error("config change did not move the config hash")
	} else if got.Program != fp.Program {
		t.Error("config change moved the program hash")
	}
}

func TestFingerprintStringRoundTrip(t *testing.T) {
	fp := Fingerprint{Config: 0x0123456789abcdef, Program: 0xfedcba9876543210}
	s := fp.String()
	if s != "0123456789abcdef:fedcba9876543210" {
		t.Fatalf("String() = %q", s)
	}
	got, err := ParseFingerprint(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Errorf("round trip: %+v != %+v", got, fp)
	}

	// A bare config half parses with the program hash left zero, for CLI
	// filters that match on configuration alone.
	half, err := ParseFingerprint("0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	if half.Config != fp.Config || half.Program != 0 {
		t.Errorf("bare config half: %+v", half)
	}

	for _, bad := range []string{"", "xyz:123", ":abc"} {
		if _, err := ParseFingerprint(bad); err == nil {
			t.Errorf("ParseFingerprint(%q) accepted", bad)
		}
	}
}

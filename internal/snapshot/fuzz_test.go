package snapshot_test

import (
	"bytes"
	"errors"
	"testing"

	"reuseiq/internal/pipeline"
	"reuseiq/internal/snapshot"
)

// FuzzSnapshotDecode feeds arbitrary bytes through snapshot.Restore. The
// contract under fuzzing: any input either restores into a machine that
// re-serializes to a checksum-valid image, or fails with an error — never a
// panic, never an unbounded allocation (every variable-length field is
// capped by the configuration before the decoder allocates). Run offline
// via `make fuzz`.
func FuzzSnapshotDecode(f *testing.F) {
	cfg := tinyConfig()
	p := microloop()

	m := pipeline.New(cfg, p)
	var valid bytes.Buffer
	if err := m.RunBreakable(200, func() bool { return true }); !errors.Is(err, pipeline.ErrStopped) {
		f.Fatalf("seed machine: %v", err)
	}
	if err := snapshot.Save(&valid, m); err != nil {
		f.Fatal(err)
	}
	img := valid.Bytes()

	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add(img[:33])
	f.Add([]byte(snapshot.Magic))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := snapshot.Restore(bytes.NewReader(data), cfg, p)
		if err != nil {
			return // rejection is the expected outcome for almost all inputs
		}
		// The rare accepted input must be a genuine snapshot: it has to
		// round-trip back to an image Restore accepts again.
		var buf bytes.Buffer
		if err := snapshot.Save(&buf, m); err != nil {
			t.Fatalf("accepted image failed to re-serialize: %v", err)
		}
		if _, err := snapshot.Restore(bytes.NewReader(buf.Bytes()), cfg, p); err != nil {
			t.Fatalf("re-serialized accepted image rejected: %v", err)
		}
	})
}

// Package snapshot serializes a running pipeline.Machine to a compact,
// versioned, checksummed binary image and restores it to a machine whose
// subsequent execution is bit-identical to one that never stopped.
//
// The wire format is little-endian fixed-width with a fixed section order:
//
//	magic "REUSEIQS" | version u32 | flags u32 | cfgHash u64 | progHash u64
//	| tagged sections (machine, memory, rename, rob, lsq, iq, controller,
//	  hierarchy, bpred, fu, chaos, loop cache) | end tag | crc32(IEEE)
//
// The trailing CRC covers every byte from the magic through the end tag and
// is itself excluded from the sum. Restore validates structure as it decodes
// — every variable-length field is bounded by the machine configuration the
// caller supplies, so corrupt or adversarial images fail with an error (never
// a panic or an unbounded allocation) — and pipeline.Resume then re-validates
// cross-component invariants before the machine is handed back.
//
// Snapshots embed fingerprints of the configuration and program they were
// taken under; Restore refuses (ErrFingerprint) to load an image into a
// mismatched machine, because the image stores only sized state, not the
// configuration itself.
package snapshot

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"reuseiq/internal/altfe"
	"reuseiq/internal/bpred"
	"reuseiq/internal/chaos"
	"reuseiq/internal/core"
	"reuseiq/internal/fu"
	"reuseiq/internal/mem"

	"reuseiq/internal/pipeline"
	"reuseiq/internal/prog"
)

// Magic identifies a snapshot stream.
const Magic = "REUSEIQS"

// Version is the wire format version. Bump on any incompatible layout
// change; Restore rejects other versions with ErrVersion.
const Version uint32 = 2

// Sentinel errors, matchable with errors.Is through the wrapped chain.
var (
	// ErrFormat marks a stream that is not a snapshot at all (bad magic).
	ErrFormat = errors.New("snapshot: bad magic (not a snapshot stream)")
	// ErrVersion marks a snapshot from an incompatible format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrChecksum marks a snapshot whose body fails CRC verification.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrFingerprint marks a snapshot taken under a different machine
	// configuration or program than the one supplied to Restore.
	ErrFingerprint = errors.New("snapshot: config/program fingerprint mismatch")
)

// configFingerprint is the view of pipeline.Config that ConfigHash prints.
// It pins the original field set and order so the hash stays stable when
// Config grows fields that cannot affect modeled state (FastForward is a
// simulation-speed toggle: a snapshot taken with it on restores bit-identical
// under a config with it off, so it must not perturb the fingerprint).
// Extend this struct only for fields that change simulated behavior.
type configFingerprint struct {
	FetchWidth, DecodeWidth, IssueWidth, CommitWidth, FetchQueueSize int
	IQSize, ROBSize, LSQSize                                         int
	IntPhysRegs, FPPhysRegs                                          int
	MispredictPenalty                                                int
	Mem                                                              mem.HierarchyConfig
	Bpred                                                            bpred.Config
	FU                                                               fu.Config
	Reuse                                                            core.Config
	LoopCache                                                        *altfe.LoopCacheConfig
	Chaos                                                            chaos.Config
	MaxCycles, WatchdogCycles                                        uint64
}

// ConfigHash fingerprints a machine configuration. It normalizes first, so
// a config and its defaulted form hash identically, and flattens the
// LoopCache pointer (hashing presence plus pointee) so the hash depends only
// on values, never addresses.
//
//reuse:deterministic
func ConfigHash(cfg pipeline.Config) uint64 {
	c := cfg.Normalized()
	v := configFingerprint{
		FetchWidth: c.FetchWidth, DecodeWidth: c.DecodeWidth,
		IssueWidth: c.IssueWidth, CommitWidth: c.CommitWidth,
		FetchQueueSize: c.FetchQueueSize,
		IQSize:         c.IQSize, ROBSize: c.ROBSize, LSQSize: c.LSQSize,
		IntPhysRegs: c.IntPhysRegs, FPPhysRegs: c.FPPhysRegs,
		MispredictPenalty: c.MispredictPenalty,
		Mem:               c.Mem, Bpred: c.Bpred, FU: c.FU, Reuse: c.Reuse,
		Chaos:     c.Chaos,
		MaxCycles: c.MaxCycles, WatchdogCycles: c.WatchdogCycles,
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%v|lc=%v", v, c.LoopCache != nil)
	if c.LoopCache != nil {
		fmt.Fprintf(h, "|%v", *c.LoopCache)
	}
	return h.Sum64()
}

// ProgramHash fingerprints a program's text and entry point. The initial
// data image is deliberately excluded: the snapshot carries the full
// architectural memory, so initial data never influences a restored run.
//
//reuse:deterministic
func ProgramHash(p *prog.Program) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	put := func(v uint32) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	put(p.Entry)
	put(uint32(len(p.Words)))
	for _, w := range p.Words {
		put(w)
	}
	return h.Sum64()
}

// Save writes a snapshot of m. The machine must be between cycles (Save is
// called from outside Run, or from a sampler/breaker hook, both of which run
// on cycle boundaries).
func Save(w io.Writer, m *pipeline.Machine) error {
	return Write(w, m.Snapshot(), m.Cfg, m.Prog)
}

// Write serializes an already-captured machine state. Split from Save so
// callers that captured a state earlier (e.g. a checkpoint taken mid-run and
// written after) can encode it against the config it was taken under.
//
//reuse:deterministic
func Write(w io.Writer, st *pipeline.MachineState, cfg pipeline.Config, p *prog.Program) error {
	ww := newWriter(w)
	defer ww.release()
	ww.write([]byte(Magic))
	ww.u32(Version)
	ww.u32(0) // flags: none defined in version 1
	ww.u64(ConfigHash(cfg))
	ww.u64(ProgramHash(p))
	encodeState(ww, st)
	ww.rawU32(ww.sum())
	if err := ww.flush(); err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	saves.Add(1)
	return nil
}

// Restore reads a snapshot and resumes it into a new machine built from cfg
// and p, which must match the configuration and program the snapshot was
// taken under (ErrFingerprint otherwise). The returned machine's subsequent
// execution is bit-identical to the original machine had it never stopped.
func Restore(r io.Reader, cfg pipeline.Config, p *prog.Program) (*pipeline.Machine, error) {
	st, err := Decode(r, cfg, p)
	if err != nil {
		return nil, err
	}
	return pipeline.Resume(cfg, p, st)
}

// Decode reads and validates a snapshot stream without building a machine.
// Most callers want Restore; Decode exists for tools that inspect images.
func Decode(r io.Reader, cfg pipeline.Config, p *prog.Program) (*pipeline.MachineState, error) {
	rr := newReader(r)

	var magic [8]byte
	rr.read(magic[:])
	if rr.err != nil {
		return nil, rr.err
	}
	if string(magic[:]) != Magic {
		return nil, ErrFormat
	}
	if v := rr.u32(); rr.err == nil && v != Version {
		return nil, fmt.Errorf("%w: image version %d, this build reads %d", ErrVersion, v, Version)
	}
	if f := rr.u32(); rr.err == nil && f != 0 {
		return nil, fmt.Errorf("%w: unknown flags 0x%08x", ErrVersion, f)
	}
	cfgHash, progHash := rr.u64(), rr.u64()
	if rr.err != nil {
		return nil, rr.err
	}
	if want := ConfigHash(cfg); cfgHash != want {
		return nil, fmt.Errorf("%w: config hash %016x, want %016x", ErrFingerprint, cfgHash, want)
	}
	if want := ProgramHash(p); progHash != want {
		return nil, fmt.Errorf("%w: program hash %016x, want %016x", ErrFingerprint, progHash, want)
	}

	d := &dims{cfg: cfg.Normalized()}
	st := decodeState(rr, d)
	if rr.err != nil {
		return nil, rr.err
	}
	sum := rr.sum() // CRC over everything read so far, before the trailer
	if got := rr.rawU32(); rr.err == nil && got != sum {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, sum)
	}
	if rr.err != nil {
		return nil, rr.err
	}
	restores.Add(1)
	return st, nil
}

// Snapshot support: an exported state image of the branch predictor with a
// validating importer.
package bpred

import "fmt"

// BTBLineState is the serializable image of one BTB entry.
type BTBLineState struct {
	Valid  bool
	Tag    uint32
	Target uint32
	//reuse:nodigest recency stamp; the engine checks LRU recency deltas separately before engaging
	LRU uint64
}

// State is the serializable image of a Predictor.
type State struct {
	Bimod  []uint8
	BTB    []BTBLineState // sets*ways, set-major
	RAS    []uint32
	RASTop int
	RASCnt int
	//reuse:nodigest recency stamp; the engine checks LRU recency deltas separately before engaging
	Stamp uint64

	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	Lookups, Updates, BTBLookups, BTBUpdates, RASOps uint64
}

// ExportState returns a deep copy of the predictor's state.
func (p *Predictor) ExportState() State {
	st := State{
		Bimod:   append([]uint8(nil), p.bimod...),
		BTB:     make([]BTBLineState, 0, p.cfg.BTBSets*p.cfg.BTBWays),
		RAS:     append([]uint32(nil), p.ras...),
		RASTop:  p.rasTop,
		RASCnt:  p.rasCnt,
		Stamp:   p.stamp,
		Lookups: p.Lookups, Updates: p.Updates,
		BTBLookups: p.BTBLookups, BTBUpdates: p.BTBUpdates, RASOps: p.RASOps,
	}
	for _, set := range p.btb {
		for _, e := range set {
			st.BTB = append(st.BTB, BTBLineState{Valid: e.valid, Tag: e.tag, Target: e.target, LRU: e.lru})
		}
	}
	return st
}

// ImportState overwrites the predictor with st after validating its shape
// against the predictor's configuration.
func (p *Predictor) ImportState(st State) error {
	if len(st.Bimod) != len(p.bimod) {
		return fmt.Errorf("bpred: state bimod sized %d, predictor has %d", len(st.Bimod), len(p.bimod))
	}
	if want := p.cfg.BTBSets * p.cfg.BTBWays; len(st.BTB) != want {
		return fmt.Errorf("bpred: state BTB holds %d entries, predictor has %d", len(st.BTB), want)
	}
	if len(st.RAS) != len(p.ras) {
		return fmt.Errorf("bpred: state RAS sized %d, predictor has %d", len(st.RAS), len(p.ras))
	}
	if st.RASTop < 0 || (st.RASTop >= len(p.ras) && !(st.RASTop == 0 && len(p.ras) == 0)) {
		return fmt.Errorf("bpred: state RAS top %d for stack of size %d", st.RASTop, len(p.ras))
	}
	if st.RASCnt < 0 || st.RASCnt > len(p.ras) {
		return fmt.Errorf("bpred: state RAS count %d for stack of size %d", st.RASCnt, len(p.ras))
	}
	copy(p.bimod, st.Bimod)
	i := 0
	for _, set := range p.btb {
		for w := range set {
			e := st.BTB[i]
			set[w] = btbEntry{valid: e.Valid, tag: e.Tag, target: e.Target, lru: e.LRU}
			i++
		}
	}
	copy(p.ras, st.RAS)
	p.rasTop, p.rasCnt, p.stamp = st.RASTop, st.RASCnt, st.Stamp
	p.Lookups, p.Updates = st.Lookups, st.Updates
	p.BTBLookups, p.BTBUpdates, p.RASOps = st.BTBLookups, st.BTBUpdates, st.RASOps
	return nil
}

// Package bpred implements the paper's baseline branch prediction hardware:
// a bimodal table of 2-bit saturating counters, a set-associative branch
// target buffer, and a return address stack (Table 1: bimod 2048 entries,
// BTB 512 sets x 4 ways, RAS 8 entries).
package bpred

import "reuseiq/internal/isa"

// Config sizes the predictor structures.
//
//reuse:transient configuration; fixed at construction and fingerprinted wholesale by the snapshot layer's ConfigHash
type Config struct {
	BimodEntries int // power of two
	BTBSets      int
	BTBWays      int
	RASEntries   int
}

// DefaultConfig returns the paper's Table 1 predictor.
func DefaultConfig() Config {
	return Config{BimodEntries: 2048, BTBSets: 512, BTBWays: 4, RASEntries: 8}
}

type btbEntry struct {
	valid  bool
	tag    uint32
	target uint32
	lru    uint64
}

// Predictor is the front-end prediction unit.
type Predictor struct {
	cfg    Config
	bimod  []uint8 // 2-bit counters, initialized weakly taken
	btb    [][]btbEntry
	ras    []uint32
	rasTop int // next push slot
	rasCnt int
	stamp  uint64

	Lookups    uint64 // direction predictions made
	Updates    uint64 // direction counter updates
	BTBLookups uint64
	BTBUpdates uint64
	RASOps     uint64 // pushes + pops
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{cfg: cfg}
	p.bimod = make([]uint8, cfg.BimodEntries)
	for i := range p.bimod {
		p.bimod[i] = 2 // weakly taken
	}
	p.btb = make([][]btbEntry, cfg.BTBSets)
	for i := range p.btb {
		p.btb[i] = make([]btbEntry, cfg.BTBWays)
	}
	p.ras = make([]uint32, cfg.RASEntries)
	return p
}

// Prediction is the front end's guess for one control instruction.
type Prediction struct {
	Taken  bool
	Target uint32 // valid when Taken
}

// Predict returns the prediction for the control instruction in at pc and
// performs the speculative RAS operations of calls and returns. It must be
// called only for control instructions.
func (p *Predictor) Predict(pc uint32, in isa.Inst) Prediction {
	info := in.Op.Info()
	switch info.Class {
	case isa.ClassBranch:
		p.Lookups++
		p.BTBLookups++ // the BTB is probed in parallel with the counters
		taken := p.bimod[p.bimodIdx(pc)] >= 2
		return Prediction{Taken: taken, Target: in.BranchTarget(pc)}
	case isa.ClassJump:
		return Prediction{Taken: true, Target: in.Target}
	case isa.ClassCall:
		p.push(pc + 4)
		if in.Op == isa.OpJAL {
			return Prediction{Taken: true, Target: in.Target}
		}
		// JALR: indirect call, target from BTB.
		tgt, ok := p.btbLookup(pc)
		if !ok {
			tgt = pc + 4 // no prediction available; will mispredict
		}
		return Prediction{Taken: true, Target: tgt}
	case isa.ClassReturn:
		if in.Rs == isa.RegRA {
			if tgt, ok := p.pop(); ok {
				return Prediction{Taken: true, Target: tgt}
			}
		}
		tgt, ok := p.btbLookup(pc)
		if !ok {
			tgt = pc + 4
		}
		return Prediction{Taken: true, Target: tgt}
	}
	return Prediction{}
}

// Update trains the predictor with the resolved outcome of the control
// instruction in at pc (called at commit, so only correct-path outcomes
// train the tables).
func (p *Predictor) Update(pc uint32, in isa.Inst, taken bool, target uint32) {
	switch in.Op.Info().Class {
	case isa.ClassBranch:
		p.Updates++
		i := p.bimodIdx(pc)
		if taken {
			if p.bimod[i] < 3 {
				p.bimod[i]++
			}
		} else if p.bimod[i] > 0 {
			p.bimod[i]--
		}
		if taken {
			p.btbInsert(pc, target)
		}
	case isa.ClassCall, isa.ClassReturn:
		if in.Op == isa.OpJALR || in.Op == isa.OpJR {
			p.btbInsert(pc, target)
		}
	}
}

func (p *Predictor) bimodIdx(pc uint32) uint32 {
	return (pc >> 2) & uint32(p.cfg.BimodEntries-1)
}

func (p *Predictor) btbLookup(pc uint32) (uint32, bool) {
	p.BTBLookups++
	set := (pc >> 2) & uint32(p.cfg.BTBSets-1)
	for i := range p.btb[set] {
		e := &p.btb[set][i]
		if e.valid && e.tag == pc {
			p.stamp++
			e.lru = p.stamp
			return e.target, true
		}
	}
	return 0, false
}

func (p *Predictor) btbInsert(pc, target uint32) {
	p.BTBUpdates++
	p.stamp++
	set := (pc >> 2) & uint32(p.cfg.BTBSets-1)
	lines := p.btb[set]
	victim := 0
	for i := range lines {
		if lines[i].valid && lines[i].tag == pc {
			lines[i].target = target
			lines[i].lru = p.stamp
			return
		}
		if !lines[i].valid {
			victim = i
		} else if lines[victim].valid && lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	lines[victim] = btbEntry{valid: true, tag: pc, target: target, lru: p.stamp}
}

func (p *Predictor) push(addr uint32) {
	p.RASOps++
	p.ras[p.rasTop] = addr
	p.rasTop = (p.rasTop + 1) % len(p.ras)
	if p.rasCnt < len(p.ras) {
		p.rasCnt++
	}
}

func (p *Predictor) pop() (uint32, bool) {
	p.RASOps++
	if p.rasCnt == 0 {
		return 0, false
	}
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	p.rasCnt--
	return p.ras[p.rasTop], true
}

// RASDepth returns the current stack depth (for tests).
func (p *Predictor) RASDepth() int { return p.rasCnt }

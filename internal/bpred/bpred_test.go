package bpred

import (
	"testing"

	"reuseiq/internal/isa"
)

func branch() isa.Inst { return isa.Inst{Op: isa.OpBNE, Rs: 2, Imm: -4} }

func TestBimodLearnsTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint32(0x400010)
	in := branch()
	tgt := in.BranchTarget(pc)
	// Initial state is weakly taken.
	if pred := p.Predict(pc, in); !pred.Taken || pred.Target != tgt {
		t.Fatalf("initial prediction = %+v", pred)
	}
	// Train not-taken twice: prediction flips.
	p.Update(pc, in, false, pc+4)
	p.Update(pc, in, false, pc+4)
	if pred := p.Predict(pc, in); pred.Taken {
		t.Fatal("did not learn not-taken")
	}
	// Saturation: many taken updates, then one not-taken keeps taken.
	for i := 0; i < 5; i++ {
		p.Update(pc, in, true, tgt)
	}
	p.Update(pc, in, false, pc+4)
	if pred := p.Predict(pc, in); !pred.Taken {
		t.Fatal("2-bit hysteresis broken")
	}
}

func TestBimodAliasing(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	pcA := uint32(0x400000)
	pcB := pcA + uint32(cfg.BimodEntries)*4 // same counter index
	in := branch()
	p.Update(pcA, in, false, pcA+4)
	p.Update(pcA, in, false, pcA+4)
	if pred := p.Predict(pcB, in); pred.Taken {
		t.Error("aliased counters behave independently; indexing wrong")
	}
}

func TestDirectJumpAndCall(t *testing.T) {
	p := New(DefaultConfig())
	j := isa.Inst{Op: isa.OpJ, Target: 0x400100}
	if pred := p.Predict(0x400000, j); !pred.Taken || pred.Target != 0x400100 {
		t.Errorf("j prediction = %+v", pred)
	}
	jal := isa.Inst{Op: isa.OpJAL, Target: 0x400200}
	if pred := p.Predict(0x400020, jal); !pred.Taken || pred.Target != 0x400200 {
		t.Errorf("jal prediction = %+v", pred)
	}
	if p.RASDepth() != 1 {
		t.Errorf("RAS depth after call = %d", p.RASDepth())
	}
}

func TestRASPredictsReturn(t *testing.T) {
	p := New(DefaultConfig())
	jal := isa.Inst{Op: isa.OpJAL, Target: 0x400200}
	p.Predict(0x400020, jal) // pushes 0x400024
	jr := isa.Inst{Op: isa.OpJR, Rs: isa.RegRA}
	pred := p.Predict(0x400230, jr)
	if !pred.Taken || pred.Target != 0x400024 {
		t.Errorf("return prediction = %+v", pred)
	}
	if p.RASDepth() != 0 {
		t.Errorf("RAS depth after return = %d", p.RASDepth())
	}
}

func TestRASNesting(t *testing.T) {
	p := New(DefaultConfig())
	jr := isa.Inst{Op: isa.OpJR, Rs: isa.RegRA}
	for i := 0; i < 3; i++ {
		p.Predict(uint32(0x400000+16*i), isa.Inst{Op: isa.OpJAL, Target: 0x400800})
	}
	// Pops in LIFO order.
	want := []uint32{0x400024, 0x400014, 0x400004}
	for _, w := range want {
		pred := p.Predict(0x400800, jr)
		if pred.Target != w {
			t.Errorf("return = 0x%x, want 0x%x", pred.Target, w)
		}
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	// Push more than capacity; the oldest entries are lost.
	for i := 0; i < cfg.RASEntries+2; i++ {
		p.Predict(uint32(0x400000+16*i), isa.Inst{Op: isa.OpJAL, Target: 0x400800})
	}
	if p.RASDepth() != cfg.RASEntries {
		t.Errorf("depth = %d, want %d", p.RASDepth(), cfg.RASEntries)
	}
	jr := isa.Inst{Op: isa.OpJR, Rs: isa.RegRA}
	// Top of stack is the most recent push.
	pred := p.Predict(0x400800, jr)
	if pred.Target != uint32(0x400000+16*(cfg.RASEntries+1))+4 {
		t.Errorf("top after overflow = 0x%x", pred.Target)
	}
}

func TestIndirectJumpUsesBTB(t *testing.T) {
	p := New(DefaultConfig())
	jr := isa.Inst{Op: isa.OpJR, Rs: 5} // not $ra: no RAS
	pc := uint32(0x400050)
	// Cold: falls back to pc+4.
	if pred := p.Predict(pc, jr); pred.Target != pc+4 {
		t.Errorf("cold indirect = 0x%x", pred.Target)
	}
	// Train and re-predict.
	p.Update(pc, jr, true, 0x400abc)
	if pred := p.Predict(pc, jr); pred.Target != 0x400abc {
		t.Errorf("trained indirect = 0x%x", pred.Target)
	}
}

func TestJALRUsesBTBAndPushesRAS(t *testing.T) {
	p := New(DefaultConfig())
	jalr := isa.Inst{Op: isa.OpJALR, Rd: isa.RegRA, Rs: 5}
	pc := uint32(0x400060)
	p.Update(pc, jalr, true, 0x400f00)
	pred := p.Predict(pc, jalr)
	if pred.Target != 0x400f00 {
		t.Errorf("jalr target = 0x%x", pred.Target)
	}
	if p.RASDepth() != 1 {
		t.Error("jalr did not push the RAS")
	}
}

func TestBTBReplacement(t *testing.T) {
	cfg := Config{BimodEntries: 64, BTBSets: 1, BTBWays: 2, RASEntries: 4}
	p := New(cfg)
	jr := isa.Inst{Op: isa.OpJR, Rs: 5}
	p.Update(0x400000, jr, true, 0x1111_0000&^3|0)
	p.Update(0x400004, jr, true, 0x2222_0000)
	p.Predict(0x400000, jr) // refresh first entry
	p.Update(0x400008, jr, true, 0x3333_0000)
	// 0x400004 was LRU and must be gone.
	if pred := p.Predict(0x400004, jr); pred.Target == 0x2222_0000 {
		t.Error("LRU BTB entry survived")
	}
	if pred := p.Predict(0x400000, jr); pred.Target != 0x1111_0000 {
		t.Error("refreshed BTB entry evicted")
	}
}

func TestActivityCounters(t *testing.T) {
	p := New(DefaultConfig())
	in := branch()
	p.Predict(0x400000, in)
	p.Predict(0x400004, in)
	p.Update(0x400000, in, true, 0x400000)
	if p.Lookups != 2 || p.Updates != 1 {
		t.Errorf("lookups=%d updates=%d", p.Lookups, p.Updates)
	}
	if p.BTBLookups == 0 || p.BTBUpdates == 0 {
		t.Error("BTB activity not counted")
	}
}

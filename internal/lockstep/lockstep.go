// Package lockstep is the simulator's first-class verification layer. It
// cross-checks the out-of-order pipeline against the in-order functional
// interpreter *as execution proceeds*, instead of only comparing end states:
//
//   - Oracle steps interp.Machine in sync with every pipeline commit and
//     compares PC, destination-register writes and store address/value per
//     instruction. A divergence is reported at the first mismatching commit
//     with its cycle, sequence number, disassembly and the reuse issue
//     queue (RIQ) state — which localizes a bug to the instruction that
//     introduced it, where end-state differential fuzzing can only say
//     "registers differ after 2M instructions".
//
//   - Checker validates per-cycle microarchitectural invariants: ROB
//     sequence monotonicity, rename-map/free-list disjointness, LSQ age
//     order, reuse-pointer unidirectionality (paper §2.3), the NBLT size
//     bound, and classification-bit consistency.
//
// Both attach to a pipeline.Machine through its OnCommit/OnCycle hooks and
// stop the run at the first violation.
package lockstep

import (
	"fmt"
	"math"

	"reuseiq/internal/core"
	"reuseiq/internal/interp"
	"reuseiq/internal/isa"
	"reuseiq/internal/lsq"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/prog"
	"reuseiq/internal/rob"
)

// Oracle steps the functional interpreter in lockstep with pipeline commits.
type Oracle struct {
	m *pipeline.Machine
	g *interp.Machine

	// Commits counts cross-checked instructions.
	Commits uint64
}

// Attach installs both the commit-time oracle and the per-cycle invariant
// checker on m, which must have been built for p and not yet run. It
// returns the oracle (the checker needs no further interaction).
func Attach(m *pipeline.Machine, p *prog.Program) *Oracle {
	o := AttachOracle(m, p)
	AttachChecker(m)
	return o
}

// AttachOracle installs only the commit-time oracle on m.
func AttachOracle(m *pipeline.Machine, p *prog.Program) *Oracle {
	o := &Oracle{m: m, g: interp.New(p)}
	m.OnCommit = o.onCommit
	return o
}

// AttachChecker installs only the per-cycle invariant checker on m.
func AttachChecker(m *pipeline.Machine) *Checker {
	k := NewChecker(m)
	m.OnCycle = k.Check
	return k
}

// NewChecker builds a checker without installing it on the machine's OnCycle
// hook. Callers that validate at specific boundaries — the fast-forward
// engine checks invariants at engage and disengage without paying a per-cycle
// hook — invoke Check directly.
func NewChecker(m *pipeline.Machine) *Checker {
	return &Checker{m: m}
}

// onCommit advances the golden model by one instruction and cross-checks
// the pipeline's commit record against its architectural effects.
func (o *Oracle) onCommit(c pipeline.Commit) error {
	ef, err := o.g.Step()
	if err != nil {
		return o.divergef(c, "golden model failed: %v", err)
	}
	o.Commits++
	if c.PC != ef.PC {
		return o.divergef(c, "committed PC 0x%08x, oracle expects 0x%08x (%s)",
			c.PC, ef.PC, ef.Inst.Disasm(ef.PC))
	}
	if c.Halted != ef.Halted {
		return o.divergef(c, "halted=%v, oracle halted=%v", c.Halted, ef.Halted)
	}
	if c.Halted {
		return nil
	}
	if c.HasDest != ef.HasDest || (c.HasDest && c.Dest != ef.Dest) {
		return o.divergef(c, "dest %v (has=%v), oracle %v (has=%v)",
			c.Dest, c.HasDest, ef.Dest, ef.HasDest)
	}
	if c.HasDest {
		if c.Dest.Kind == isa.KindInt && c.DestI != ef.DestI {
			return o.divergef(c, "wrote %v=%d, oracle %d", c.Dest, c.DestI, ef.DestI)
		}
		if c.Dest.Kind == isa.KindFP && math.Float64bits(c.DestF) != math.Float64bits(ef.DestF) {
			return o.divergef(c, "wrote %v=%v, oracle %v", c.Dest, c.DestF, ef.DestF)
		}
	}
	if c.IsStore != ef.IsStore {
		return o.divergef(c, "store=%v, oracle store=%v", c.IsStore, ef.IsStore)
	}
	if c.IsStore {
		if c.StoreAddr != ef.StoreAddr {
			return o.divergef(c, "store to 0x%08x, oracle 0x%08x", c.StoreAddr, ef.StoreAddr)
		}
		if c.StoreI != ef.StoreI || math.Float64bits(c.StoreF) != math.Float64bits(ef.StoreF) {
			return o.divergef(c, "stored (%d, %v), oracle (%d, %v)",
				c.StoreI, c.StoreF, ef.StoreI, ef.StoreF)
		}
	}
	if c.Inst.Op.IsControl() && c.Target != ef.NextPC {
		return o.divergef(c, "control to 0x%08x, oracle 0x%08x", c.Target, ef.NextPC)
	}
	return nil
}

// divergef formats a first-divergence report carrying everything needed to
// localize the bug: cycle, seq, disassembly, and the RIQ state machine's
// mode at the moment of the divergence.
func (o *Oracle) divergef(c pipeline.Commit, format string, args ...any) error {
	return fmt.Errorf("lockstep: first divergence at cycle %d seq %d (commit #%d) pc 0x%08x %s [riq=%v]: %s",
		c.Cycle, c.Seq, o.Commits, c.PC, c.Inst.Disasm(c.PC), o.m.Ctl.State(),
		fmt.Sprintf(format, args...))
}

// Checker validates per-cycle structural invariants of the machine.
type Checker struct {
	m *pipeline.Machine

	// Cycles counts checked cycles.
	Cycles uint64

	// Previous-cycle reuse-pointer observation, for the unidirectionality
	// check (valid when prevReuse).
	prevReuse   bool
	prevOrd     int
	prevN       int
	prevRenames uint64
}

// Check runs every invariant once; the pipeline calls it after each cycle.
func (k *Checker) Check() error {
	k.Cycles++
	m := k.m

	// ROB sequence monotonicity: program order must be strictly increasing
	// from head to tail.
	var prevSeq uint64
	var robErr error
	m.ROB.Walk(func(slot int, e *rob.Entry) {
		if robErr != nil {
			return
		}
		if e.Seq <= prevSeq {
			robErr = k.violatef(e.Seq, e.Inst.Disasm(e.PC),
				"ROB seq not monotonic: %d after %d (slot %d)", e.Seq, prevSeq, slot)
		}
		prevSeq = e.Seq
	})
	if robErr != nil {
		return robErr
	}

	// Rename-map/free-list disjointness (and free-list uniqueness).
	if err := m.RF.CheckInvariants(); err != nil {
		return k.violateHead("%v", err)
	}

	// LSQ age order: memory operations sit in program order.
	prevSeq = 0
	var lsqErr error
	m.LSQ.Walk(func(slot int, e *lsq.Entry) {
		if lsqErr != nil {
			return
		}
		if e.Seq <= prevSeq {
			lsqErr = k.violateHead("LSQ age order broken: seq %d after %d (slot %d)",
				e.Seq, prevSeq, slot)
		}
		prevSeq = e.Seq
	})
	if lsqErr != nil {
		return lsqErr
	}

	// NBLT size bound: the CAM can never hold more than its capacity.
	if t := m.Ctl.NBLT(); t.Len() > t.Size() {
		return k.violateHead("NBLT holds %d entries, capacity %d", t.Len(), t.Size())
	}

	// Classification-bit consistency: the issue state bit is meaningful
	// only for classified (buffered) entries — a conventional entry is
	// removed at issue, so one still present must be unissued — and a
	// controller in Normal state implies no classified entries remain.
	state := m.Ctl.State()
	var iqErr error
	classified := 0
	m.IQ.Walk(func(i int, e *core.Entry) {
		if iqErr != nil {
			return
		}
		if e.Classified {
			classified++
		}
		if !e.Classified && e.Issued {
			iqErr = k.violatef(e.Seq, e.Inst.Disasm(e.PC),
				"unclassified entry %d has its issue state bit set", i)
		}
	})
	if iqErr != nil {
		return iqErr
	}
	if state == core.Normal && classified > 0 {
		return k.violateHead("controller is Normal but %d classified entries remain", classified)
	}

	// Reuse-pointer unidirectionality (paper §2.3): during Code Reuse the
	// pointer only advances, by exactly the number of re-renamed entries,
	// wrapping to the first buffered instruction after passing the last.
	// Cross-checking the ordinal against the controller's re-rename count
	// catches both backwards movement and phantom advances.
	if state == core.Reuse {
		ord := m.Ctl.ReuseOrd()
		n := classified
		renames := m.Ctl.S.ReuseRenames
		if n > 0 && (ord < 0 || ord >= n) {
			return k.violateHead("reuse pointer ordinal %d outside [0,%d)", ord, n)
		}
		if k.prevReuse && n == k.prevN && n > 0 {
			consumed := renames - k.prevRenames
			if consumed > uint64(m.Cfg.DecodeWidth) {
				return k.violateHead("reuse pointer consumed %d entries in one cycle (decode width %d)",
					consumed, m.Cfg.DecodeWidth)
			}
			want := (k.prevOrd + int(consumed)) % n
			if ord != want {
				return k.violateHead("reuse pointer moved %d -> %d with %d consumed (want %d): not unidirectional",
					k.prevOrd, ord, consumed, want)
			}
		}
		k.prevReuse, k.prevOrd, k.prevN, k.prevRenames = true, ord, n, renames
	} else {
		k.prevReuse = false
	}
	return nil
}

// violatef formats an invariant-violation report for a specific instruction.
func (k *Checker) violatef(seq uint64, disasm, format string, args ...any) error {
	return fmt.Errorf("lockstep: invariant violated at cycle %d seq %d %s [riq=%v]: %s",
		k.m.Cycle(), seq, disasm, k.m.Ctl.State(), fmt.Sprintf(format, args...))
}

// violateHead formats an invariant-violation report anchored at the ROB head
// (the oldest in-flight instruction) when no better anchor exists.
func (k *Checker) violateHead(format string, args ...any) error {
	seq, disasm := uint64(0), "(empty ROB)"
	if h := k.m.ROB.Head(); h != nil {
		seq, disasm = h.Seq, h.Inst.Disasm(h.PC)
	}
	return k.violatef(seq, disasm, format, args...)
}

package lockstep

import (
	"strings"
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/isa"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/progen"
	"reuseiq/internal/rob"
)

// A clean run must pass the oracle and the invariant checker, with every
// commit cross-checked.
func TestCleanRunVerifies(t *testing.T) {
	p, err := asm.Assemble(progen.Generate(1, progen.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	m := pipeline.New(pipeline.DefaultConfig(), p)
	o := Attach(m, p)
	if err := m.Run(); err != nil {
		t.Fatalf("verified run failed: %v", err)
	}
	// The oracle also checks the final HALT, which the pipeline's commit
	// counter excludes.
	if o.Commits != m.C.Commits+1 {
		t.Fatalf("oracle checked %d commits, pipeline made %d", o.Commits, m.C.Commits)
	}
}

// Running the pipeline against a golden model for a *different* program must
// be caught at the first divergent commit, with cycle, seq, disassembly and
// RIQ state in the report.
func TestDivergenceIsLocalized(t *testing.T) {
	run := `
	.text
main:	addi $r2, $zero, 7
	addi $r3, $zero, 1
	halt
	`
	golden := `
	.text
main:	addi $r2, $zero, 7
	addi $r3, $zero, 2
	halt
	`
	pRun := asm.MustAssemble(run)
	pGold := asm.MustAssemble(golden)
	m := pipeline.New(pipeline.DefaultConfig(), pRun)
	AttachOracle(m, pGold)
	err := m.Run()
	if err == nil {
		t.Fatal("divergent programs verified clean")
	}
	msg := err.Error()
	for _, want := range []string{"first divergence", "seq 2", "addi", "riq=", "oracle 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("divergence report %q missing %q", msg, want)
		}
	}
}

// The oracle must also catch a wrong store (address and value travel through
// the LSQ, a separate path from register writes).
func TestStoreDivergence(t *testing.T) {
	run := `
	.data
buf:	.space 64
	.text
main:	la   $r2, buf
	addi $r3, $zero, 5
	sw   $r3, 4($r2)
	halt
	`
	golden := strings.Replace(run, "sw   $r3, 4($r2)", "sw   $r3, 8($r2)", 1)
	pRun := asm.MustAssemble(run)
	pGold := asm.MustAssemble(golden)
	m := pipeline.New(pipeline.DefaultConfig(), pRun)
	AttachOracle(m, pGold)
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "store to") {
		t.Fatalf("store divergence not caught: %v", err)
	}
}

// Corrupting the ROB must trip the sequence-monotonicity invariant.
func TestCheckerCatchesROBCorruption(t *testing.T) {
	p := asm.MustAssemble("\t.text\nmain:\thalt\n")
	m := pipeline.New(pipeline.DefaultConfig(), p)
	k := AttachChecker(m)
	in := isa.Inst{Op: isa.OpADD, Rd: 2}
	m.ROB.Alloc(rob.Entry{Seq: 5, Inst: in})
	m.ROB.Alloc(rob.Entry{Seq: 3, Inst: in})
	err := k.Check()
	if err == nil || !strings.Contains(err.Error(), "ROB seq not monotonic") {
		t.Fatalf("ROB corruption not caught: %v", err)
	}
}

// The full paper workloads must verify clean under oracle + checker.
func TestWorkloadsVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("long verification run")
	}
	for _, cfg := range []pipeline.Config{pipeline.BaselineConfig(), pipeline.DefaultConfig()} {
		for seed := int64(10); seed < 14; seed++ {
			p, err := asm.Assemble(progen.Generate(seed, progen.Config{
				MaxDepth: 3, MaxBlock: 10, MaxTrip: 15, Procs: 2,
			}))
			if err != nil {
				t.Fatal(err)
			}
			m := pipeline.New(cfg, p)
			Attach(m, p)
			if err := m.Run(); err != nil {
				t.Fatalf("seed %d reuse=%v: %v", seed, cfg.Reuse.Enabled, err)
			}
		}
	}
}

// Engage: the authoritative convergence checks and the analytic skip.
//
// The soundness argument, in full. Let C_k be the committed architectural
// state (registers + memory) when the commit frontier passes the mark
// position for the k-th time, and let s be the number of instructions
// committed per period. The per-period transition C_{k+1} = F(C_k) is the
// composition of the s template instructions. The scan proves that every
// template instruction is, over Z_2^32:
//
//   - affine in its integer inputs with constant coefficients (ADD, SUB,
//     ADDI, LUI, constant shifts, NOP), or
//   - input-frozen: every input's per-period delta is zero, so its output is
//     constant (everything else — logical ops, compares, multiplies, variable
//     shifts, all FP arithmetic — plus loads from frozen memory and
//     register-indirect jumps), or
//   - a conditional branch whose outcome is provably constant over the
//     skipped range (sign branches on frozen operands; BEQ/BNE via the exact
//     modular flip solve below).
//
// Under those rules F restricted to the register state is affine:
// x_{k+1} = A.x_k + c exactly, with wraparound. The three captured snapshots
// give two observed deltas d1 = x_1 - x_0 and d2 = x_2 - x_1, and
// d2 = A.d1; the engage condition d1 = d2 makes d1 a fixed point of A, so by
// induction every future delta equals d1 and x_k = x_2 + (k-2).d1 exactly,
// for as long as the control path does not change. Memory is frozen (no
// store commits per period — and a store in flight would have to commit once
// per period, so the zero store-delta check also excludes in-flight stores),
// and the structural digest plus per-line recency deltas prove the
// microarchitectural configuration is period-invariant, so per-period cycle
// and counter deltas are constant too: the machine after n more periods is
// the current snapshot with every counter advanced by n deltas, every
// sequence number by n.s, every timestamp by n.dCycle, and every live
// integer value by n times its per-period delta. That state is computed in
// O(1) per machine component and restored through the validating snapshot
// importer, with the lockstep invariant checker run on both sides.
//
// Control: a BEQ/BNE on affine operands compares d(k) = d2 + (k-2).dd to
// zero, where dd is the operand-delta difference. Its first outcome change
// is the smallest kRel >= 1 with d2 + kRel.dd = 0 (mod 2^32) — solvable
// exactly: with t = trailing zeros of dd, a solution exists iff 2^t divides
// d2, and then kRel = (-d2/2^t).(dd/2^t)^-1 mod 2^(32-t). The skip is
// clamped so that every instruction the machine will have fetched at the
// landing point (the in-flight window W past the commit frontier) still
// precedes the first flip.
package ffwd

import (
	"fmt"
	"math"
	"math/bits"

	"reuseiq/internal/interp"
	"reuseiq/internal/isa"
	"reuseiq/internal/lockstep"
	"reuseiq/internal/mem"
	"reuseiq/internal/pipeline"
)

// noFlip marks a branch whose outcome never changes.
const noFlip = ^uint64(0)

// counterPtrs visits every monotonic counter and clock in st — the complete
// set advanced by n.delta on a skip, and the set whose per-period deltas
// must be constant to engage. Single source of truth for both uses. The
// chaos counters are deliberately absent: fast-forward refuses to run with
// fault injection enabled, so they are identically zero.
func counterPtrs(st *pipeline.MachineState, f func(*uint64)) {
	f(&st.Cycle)
	f(&st.NextSeq)
	f(&st.LastCommit)

	c := &st.C
	f(&c.Cycles)
	f(&c.Commits)
	f(&c.GatedCycles)
	f(&c.Fetches)
	f(&c.FetchCycles)
	f(&c.Decodes)
	f(&c.FrontRenames)
	f(&c.ReuseRenames)
	f(&c.BranchesCommitted)
	f(&c.TakenCommitted)
	f(&c.Mispredicts)
	f(&c.LoadsCommitted)
	f(&c.StoresCommitted)
	f(&c.ReusedCommitted)
	f(&c.LoopCacheSupplies)
	f(&c.WakeupBroadcasts)
	f(&c.WakeupOccupancySum)
	f(&c.IssueCycleScans)
	f(&c.DispatchStallIQ)
	f(&c.DispatchStallROB)
	f(&c.DispatchStallLSQ)
	f(&c.DispatchStallRegs)
	f(&c.StoreCommitAccesses)

	f(&st.RF.Renames)
	f(&st.RF.MapReads)
	f(&st.RF.Reads)
	f(&st.RF.Writes)

	f(&st.ROB.Allocs)
	f(&st.ROB.Commits)

	f(&st.LSQ.Allocs)
	f(&st.LSQ.Searches)
	f(&st.LSQ.Forwards)
	f(&st.LSQ.ConflictStalls)

	q := &st.IQ
	f(&q.OrderGen)
	f(&q.Dispatches)
	f(&q.PartialUpdates)
	f(&q.IssueReads)
	f(&q.Removals)
	f(&q.Collapses)
	f(&q.SelectScans)

	s := &st.Ctl.S
	f(&s.Detections)
	f(&s.NBLTFiltered)
	f(&s.Bufferings)
	f(&s.IterationsBuffered)
	f(&s.BufferedInsts)
	f(&s.Promotions)
	f(&s.ReuseRenames)
	f(&s.ReuseExits)
	f(&s.Revokes)
	f(&s.RevokesInner)
	f(&s.RevokesExit)
	f(&s.RevokesFull)
	f(&s.RevokesRecovery)
	f(&s.RevokesForced)

	t := &st.Ctl.NBLT
	f(&t.Lookups)
	f(&t.Hits)
	f(&t.Inserts)

	cache := func(cs *mem.CacheState) {
		f(&cs.Stamp)
		f(&cs.Accesses)
		f(&cs.Misses)
		f(&cs.Writebacks)
	}
	cache(&st.Hier.L1I)
	cache(&st.Hier.L1D)
	cache(&st.Hier.L2)
	if st.Hier.HasL0I {
		cache(&st.Hier.L0I)
	}
	cache(&st.Hier.ITLB)
	cache(&st.Hier.DTLB)
	f(&st.Hier.L2WritebackAccesses)

	b := &st.BP
	f(&b.Stamp)
	f(&b.Lookups)
	f(&b.Updates)
	f(&b.BTBLookups)
	f(&b.BTBUpdates)
	f(&b.RASOps)

	for k := range st.FUs.Ops {
		f(&st.FUs.Ops[k])
	}

	if st.HasLC {
		f(&st.LC.Supplies)
		f(&st.LC.Fills)
		f(&st.LC.Detects)
		f(&st.LC.Exits)
	}
}

// committedMaps reconstructs the architectural (committed) rename maps from
// a snapshot by rolling the current maps back across the in-flight ROB
// entries, newest to oldest: the oldest in-flight writer of a register holds
// the committed physical register in OldPhys.
func committedMaps(st *pipeline.MachineState) (ci [isa.NumIntRegs]int, cf [isa.NumFPRegs]int) {
	copy(ci[:], st.RF.IntMap)
	copy(cf[:], st.RF.FPMap)
	size := len(st.ROB.Ring)
	for i := st.ROB.Count - 1; i >= 0; i-- {
		slot := (st.ROB.Head + i) % size
		if !st.ROB.Used[slot] {
			continue
		}
		en := &st.ROB.Ring[slot]
		if !en.HasDest {
			continue
		}
		if en.Dest.Kind == isa.KindFP {
			cf[en.Dest.Num] = en.OldPhys
		} else {
			ci[en.Dest.Num] = en.OldPhys
		}
	}
	return ci, cf
}

// stepRec is one template instruction with its operand and result values
// recorded over the three scanned periods.
type stepRec struct {
	pc uint32
	in isa.Inst

	a, b     [3]int32   // integer rs/rt operand per period
	fa, fb   [3]float64 // FP rs/rt operand per period
	destI    [3]int32
	destF    [3]float64
	loadAddr [3]uint32
	taken    [3]bool

	hasDest bool
	dest    isa.Reg
	dI      int32 // per-period delta of the integer destination
}

// scanTemplate seeds the functional interpreter with the snapshot's
// committed state and replays three full periods of the commit stream,
// recording every operand and result, then statically classifies each
// template instruction per the affine/frozen/branch rules. It returns the
// verified template and the landing bound imposed by branch-exit solves
// (noFlip when no branch ever flips), or ok=false when any rule fails.
//
//reuse:allow-alloc cold engage path: 3s interpreter steps per attempt, amortized over the skipped run
func (e *Engine) scanTemplate(S2 *pipeline.MachineState, s uint64, dMark *[isa.NumIntRegs]uint32) ([]stepRec, uint64, bool) {
	m := e.m
	head := &S2.ROB.Ring[S2.ROB.Head]
	gmem := m.Prog.Data.Clone()
	if err := gmem.ImportPages(S2.Pages); err != nil {
		return nil, 0, false
	}
	g := &interp.Machine{Prog: m.Prog, MaxInsts: 3*s + 8}
	g.State.PC = head.PC
	g.State.Mem = gmem
	ci, cf := committedMaps(S2)
	for r := 0; r < isa.NumIntRegs; r++ {
		g.State.Int[r] = S2.RF.IntVals[ci[r]]
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		g.State.FP[r] = S2.RF.FPVals[cf[r]]
	}

	// Replay and record 3 periods.
	tmpl := make([]stepRec, s)
	for step := uint64(0); step < 3*s; step++ {
		j, p := step%s, step/s
		pc := g.State.PC
		in, ok := m.Prog.InstAt(pc)
		if !ok {
			return nil, 0, false
		}
		r := &tmpl[j]
		if p == 0 {
			r.pc, r.in = pc, in
			if d, ok := in.Dest(); ok {
				r.hasDest, r.dest = true, d
			}
		} else if r.pc != pc || r.in != in {
			// The committed path is not periodic with period s.
			return nil, 0, false
		}
		info := in.Op.Info()
		if info.ReadsRs {
			if info.RsFP {
				r.fa[p] = g.State.FP[in.Rs]
			} else {
				r.a[p] = g.State.Int[in.Rs]
			}
		}
		if info.ReadsRt {
			if info.RtFP {
				r.fb[p] = g.State.FP[in.Rt]
			} else {
				r.b[p] = g.State.Int[in.Rt]
			}
		}
		ef, err := g.Step()
		if err != nil || ef.Halted || ef.IsStore {
			return nil, 0, false
		}
		r.taken[p] = ef.Taken
		if ef.IsLoad {
			r.loadAddr[p] = ef.LoadAddr
		}
		if ef.HasDest {
			if ef.Dest.Kind == isa.KindFP {
				r.destF[p] = ef.DestF
			} else {
				r.destI[p] = ef.DestI
			}
		}
	}

	// Static classification with exact per-register delta dataflow. dInt[r]
	// is the per-period delta of r's current value at this point of the
	// template; it starts as the committed mark delta (the last write of the
	// previous period) and is updated at each destination write. The
	// recorded three-period values are cross-checked against every derived
	// delta, so a modeling error here cannot survive into an engagement.
	var dInt [isa.NumIntRegs]uint32
	dInt = *dMark
	affine := func(v *[3]int32, d uint32) bool {
		return uint32(v[1])-uint32(v[0]) == d && uint32(v[2])-uint32(v[1]) == d
	}
	frozenF := func(v *[3]float64) bool {
		return math.Float64bits(v[0]) == math.Float64bits(v[1]) &&
			math.Float64bits(v[1]) == math.Float64bits(v[2])
	}
	headSeq := head.Seq
	w := S2.NextSeq - headSeq // in-flight window past the commit frontier
	landing := uint64(noFlip)
	for j := range tmpl {
		r := &tmpl[j]
		op := r.in.Op
		info := op.Info()
		var da, db uint32
		if info.ReadsRs && !info.RsFP {
			da = dInt[r.in.Rs]
			if !affine(&r.a, da) {
				return nil, 0, false
			}
		}
		if info.ReadsRt && !info.RtFP {
			db = dInt[r.in.Rt]
			if !affine(&r.b, db) {
				return nil, 0, false
			}
		}
		if info.ReadsRs && info.RsFP && !frozenF(&r.fa) {
			return nil, 0, false
		}
		if info.ReadsRt && info.RtFP && !frozenF(&r.fb) {
			return nil, 0, false
		}

		dd := uint32(0)     // destination delta
		affineOp := false   // op is in the affine whitelist
		switch op {
		case isa.OpADD:
			dd, affineOp = da+db, true
		case isa.OpSUB:
			dd, affineOp = da-db, true
		case isa.OpADDI:
			dd, affineOp = da, true
		case isa.OpLUI:
			dd, affineOp = 0, true
		case isa.OpSLL:
			// rd = rt << shamt: multiplication by 2^shamt, linear over Z_2^32.
			dd, affineOp = db<<(uint(r.in.Imm)&31), true
		case isa.OpNOP, isa.OpJ:
			// No dataflow.
		case isa.OpLW, isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLD:
			// Load from frozen memory: sound only when the address is frozen
			// too (the base register's delta is zero).
			if da != 0 || r.loadAddr[0] != r.loadAddr[1] || r.loadAddr[1] != r.loadAddr[2] {
				return nil, 0, false
			}
		case isa.OpBEQ, isa.OpBNE:
			if r.taken[0] != r.taken[1] || r.taken[1] != r.taken[2] {
				return nil, 0, false
			}
			if flip := flipPeriod(uint32(r.a[2])-uint32(r.b[2]), da-db); flip != noFlip {
				// First divergent instruction: step j of period flip. Clamp
				// so the landing in-flight window [n.s, n.s+w) stays before
				// it; conservatively drop the +j slack.
				d := flip * s
				var bound uint64
				if d > w {
					bound = (d - w) / s
				}
				if bound < landing {
					landing = bound
				}
			}
		case isa.OpBLEZ, isa.OpBGTZ, isa.OpBLTZ, isa.OpBGEZ:
			// Sign tests are not affine-solvable without monotonicity
			// assumptions that wraparound breaks; require a frozen operand,
			// which makes the outcome constant forever.
			if da != 0 {
				return nil, 0, false
			}
			if r.taken[0] != r.taken[1] || r.taken[1] != r.taken[2] {
				return nil, 0, false
			}
		case isa.OpJAL, isa.OpJALR:
			// Link value is PC+4, constant. JALR additionally needs a frozen
			// target register.
			if op == isa.OpJALR && da != 0 {
				return nil, 0, false
			}
		case isa.OpJR:
			if da != 0 {
				return nil, 0, false
			}
		case isa.OpSW, isa.OpSB, isa.OpSH, isa.OpSD, isa.OpHALT:
			// Unreachable: the replay vetoed stores and HALT already.
			return nil, 0, false
		default:
			// Frozen class: constant output needs every input frozen. The
			// FP inputs were checked above; the integer deltas must be zero.
			if (info.ReadsRs && !info.RsFP && da != 0) || (info.ReadsRt && !info.RtFP && db != 0) {
				return nil, 0, false
			}
		}
		if r.hasDest {
			if r.dest.Kind == isa.KindFP {
				if !frozenF(&r.destF) {
					return nil, 0, false
				}
			} else {
				if !affineOp {
					dd = 0
				}
				if !affine(&r.destI, dd) {
					return nil, 0, false
				}
				dInt[r.dest.Num] = dd
				r.dI = int32(dd)
			}
		}
	}
	// Close the loop: the per-period register deltas computed through the
	// template must reproduce the observed mark deltas — this is the fixed
	// point d = A.d + 0 that makes the extrapolation exact forever.
	if dInt != *dMark {
		return nil, 0, false
	}
	return tmpl, landing, true
}

// flipPeriod returns the scan-period index of the first outcome change of a
// BEQ/BNE whose operand difference is d2 at period 2 and advances by dd per
// period, or noFlip. Exact over Z_2^32.
func flipPeriod(d2, dd uint32) uint64 {
	if dd == 0 {
		return noFlip // difference constant forever
	}
	if d2 == 0 {
		return 3 // currently equal, unequal next period
	}
	t := bits.TrailingZeros32(dd)
	if d2&(1<<uint(t)-1) != 0 {
		return noFlip // -d2 not divisible by 2^t: no solution
	}
	mod := uint64(1) << (32 - uint(t))
	kRel := (uint64((-d2)>>uint(t)) * uint64(modInverseOdd(dd>>uint(t)))) & (mod - 1)
	if kRel == 0 {
		kRel = mod
	}
	return 2 + kRel
}

// modInverseOdd returns the multiplicative inverse of odd a modulo 2^32 by
// Newton iteration (each round doubles the number of correct low bits).
func modInverseOdd(a uint32) uint32 {
	x := uint64(a) // correct to 3 bits: a*a = 1 (mod 8) for odd a
	for i := 0; i < 5; i++ {
		x *= 2 - uint64(a)*x
	}
	return uint32(x)
}

// tryEngage runs the full check sequence on the captured snapshot ring and,
// if every check passes, performs the analytic skip. It returns whether the
// machine was fast-forwarded; an error means a verification boundary failed
// after mutation began and the run must stop.
//
//reuse:allow-alloc cold engage path, reached only after the cheap per-mark gates pass
func (e *Engine) tryEngage() (bool, error) {
	e.S.Attempts++
	m := e.m
	S0, S1, S2 := e.ring[0], e.ring[1], e.ring[2]

	// Every counter in the machine must advance identically across the two
	// intervals, and the loop must make forward progress.
	var v0, v1 []uint64
	counterPtrs(S0, func(p *uint64) { v0 = append(v0, *p) })
	counterPtrs(S1, func(p *uint64) { v1 = append(v1, *p) })
	i := 0
	stable := true
	counterPtrs(S2, func(p *uint64) {
		if v1[i]-v0[i] != *p-v1[i] {
			stable = false
		}
		i++
	})
	dCycle := S2.Cycle - S1.Cycle
	s := S2.C.Commits - S1.C.Commits
	if !stable || dCycle == 0 || s == 0 {
		e.veto(VetoCounters)
		return false, nil
	}
	// No squash: no misprediction recoveries, and sequence numbers advanced
	// exactly as fast as commits (wrong-path dispatch would outrun them).
	if S2.C.Mispredicts != S1.C.Mispredicts || S2.NextSeq-S1.NextSeq != s {
		e.veto(VetoSquash)
		return false, nil
	}
	// Frozen memory: no store commits. This also excludes in-flight stores —
	// a periodic in-flight store would have to commit once per period.
	if S2.C.StoresCommitted != S1.C.StoresCommitted ||
		S2.C.StoreCommitAccesses != S1.C.StoreCommitAccesses {
		e.veto(VetoMemory)
		return false, nil
	}
	// Canonical structure identical at all three marks.
	d0 := digest(S0)
	if d0 != digest(S1) || d0 != digest(S2) {
		e.veto(VetoStructure)
		return false, nil
	}
	// Replacement state advancing uniformly: per-line recency deltas equal.
	if !recencyConst(S0, S1, S2) {
		e.veto(VetoRecency)
		return false, nil
	}
	// The commit frontier anchors the committed state; an empty ROB has none.
	if S2.ROB.Count == 0 || !S2.ROB.Used[S2.ROB.Head] {
		e.veto(VetoEmptyROB)
		return false, nil
	}

	// Committed architectural registers: constant integer deltas, frozen FP.
	ci0, cf0 := committedMaps(S0)
	ci1, cf1 := committedMaps(S1)
	ci2, cf2 := committedMaps(S2)
	var dMark [isa.NumIntRegs]uint32
	for r := 0; r < isa.NumIntRegs; r++ {
		x0 := uint32(S0.RF.IntVals[ci0[r]])
		x1 := uint32(S1.RF.IntVals[ci1[r]])
		x2 := uint32(S2.RF.IntVals[ci2[r]])
		if x1-x0 != x2-x1 {
			e.veto(VetoTemplate)
			return false, nil
		}
		dMark[r] = x2 - x1
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		f0 := math.Float64bits(S0.RF.FPVals[cf0[r]])
		f1 := math.Float64bits(S1.RF.FPVals[cf1[r]])
		f2 := math.Float64bits(S2.RF.FPVals[cf2[r]])
		if f0 != f1 || f1 != f2 {
			e.veto(VetoTemplate)
			return false, nil
		}
	}

	// The functional replay: template periodicity, affine/frozen
	// classification, and branch-exit solves.
	tmpl, landing, ok := e.scanTemplate(S2, s, &dMark)
	if !ok {
		e.veto(VetoTemplate)
		return false, nil
	}

	// Horizon: branch-exit bound and cycle-budget clamp. Landing exactly at
	// MaxCycles-1 keeps a budget abort byte-identical with the slow path.
	n := landing
	if budget := m.Cfg.MaxCycles; budget > S2.Cycle+1 {
		if b := (budget - 1 - S2.Cycle) / dCycle; b < n {
			n = b
		}
	} else {
		n = 0
	}
	if n < minIterations {
		e.veto(VetoHorizon)
		return false, nil
	}

	// Cross-check every in-flight value against the closed form BEFORE any
	// mutation: apply cannot abort halfway.
	headSeq := S2.ROB.Ring[S2.ROB.Head].Seq
	if !e.verifyInFlight(S2, tmpl, s, headSeq) {
		e.veto(VetoTemplate)
		return false, nil
	}

	// Engage boundary: the live machine (== S2) must satisfy every
	// microarchitectural invariant before we extrapolate from it.
	if err := lockstep.NewChecker(m).Check(); err != nil {
		return false, fmt.Errorf("ffwd: engage boundary: %w", err)
	}

	e.apply(S1, S2, tmpl, n, s, headSeq, &dMark, ci2)

	if err := m.Restore(S2); err != nil {
		return false, fmt.Errorf("ffwd: restore at landing: %w", err)
	}
	// Disengage boundary: the landed state must satisfy the same invariants.
	if err := lockstep.NewChecker(m).Check(); err != nil {
		return false, fmt.Errorf("ffwd: landing boundary: %w", err)
	}

	e.S.Engagements++
	e.S.SkippedIterations += n
	e.S.SkippedCycles += n * dCycle
	e.S.SkippedInsts += n * s
	if m.Tel != nil {
		m.Tel.BeginCycle(m.Cycle())
		m.Tel.FastForward(e.markPC(), n, n*dCycle, n*e.dGated, n*e.dReused)
	}
	return true, nil
}

// recencyConst verifies that every cache and BTB line's recency stamp
// advanced by the same amount in both intervals. Lines whose stamps drift
// non-uniformly would age differently across the skip and change a future
// eviction.
func recencyConst(S0, S1, S2 *pipeline.MachineState) bool {
	caches := func(st *pipeline.MachineState) []*mem.CacheState {
		out := []*mem.CacheState{&st.Hier.L1I, &st.Hier.L1D, &st.Hier.L2, &st.Hier.ITLB, &st.Hier.DTLB}
		if st.Hier.HasL0I {
			out = append(out, &st.Hier.L0I)
		}
		return out
	}
	c0, c1, c2 := caches(S0), caches(S1), caches(S2)
	for ci := range c0 {
		l0, l1, l2 := c0[ci].Lines, c1[ci].Lines, c2[ci].Lines
		for i := range l0 {
			if l1[i].LRU-l0[i].LRU != l2[i].LRU-l1[i].LRU {
				return false
			}
		}
	}
	for i := range S0.BP.BTB {
		if S1.BP.BTB[i].LRU-S0.BP.BTB[i].LRU != S2.BP.BTB[i].LRU-S1.BP.BTB[i].LRU {
			return false
		}
	}
	return true
}

// verifyInFlight checks every in-flight destination value and PC in S2
// against the template's closed form: the instruction at sequence offset t
// is template step t mod s of period t/s, and an integer destination's value
// is destI[2] + (period-2).dI exactly.
func (e *Engine) verifyInFlight(S2 *pipeline.MachineState, tmpl []stepRec, s, headSeq uint64) bool {
	robSize := len(S2.ROB.Ring)
	closed := func(r *stepRec, it uint64) int32 {
		return r.destI[2] + (int32(it)-2)*r.dI
	}
	for i := 0; i < S2.ROB.Count; i++ {
		slot := (S2.ROB.Head + i) % robSize
		if !S2.ROB.Used[slot] {
			return false
		}
		en := &S2.ROB.Ring[slot]
		t := en.Seq - headSeq
		r := &tmpl[t%s]
		if en.PC != r.pc || en.Inst != r.in || en.HasDest != r.hasDest {
			return false
		}
		if en.HasDest && en.Dest != r.dest {
			return false
		}
		if en.Done && en.HasDest {
			if en.Dest.Kind == isa.KindFP {
				if math.Float64bits(S2.RF.FPVals[en.NewPhys]) != math.Float64bits(r.destF[2]) {
					return false
				}
			} else if S2.RF.IntVals[en.NewPhys] != closed(r, t/s) {
				return false
			}
		}
	}
	for i := range S2.ExecQ {
		en := &S2.ExecQ[i]
		t := en.Seq - headSeq
		if en.Seq < headSeq {
			return false
		}
		r := &tmpl[t%s]
		if !r.hasDest {
			continue
		}
		if r.dest.Kind == isa.KindFP {
			if math.Float64bits(en.ValF) != math.Float64bits(r.destF[2]) {
				return false
			}
		} else if en.ValI != closed(r, t/s) {
			return false
		}
	}
	return true
}

// apply advances S2 by n periods in place: values first (their closed forms
// index off the original sequence numbers), then counters, then sequence
// numbers, order keys and timestamps. All verification happened beforehand;
// this function cannot fail.
func (e *Engine) apply(S1, S2 *pipeline.MachineState, tmpl []stepRec, n, s, headSeq uint64, dMark *[isa.NumIntRegs]uint32, ci2 [isa.NumIntRegs]int) {
	oldCycle := S2.Cycle
	dCycle := S2.Cycle - S1.Cycle
	dOrder := S2.IQ.OrderGen - S1.IQ.OrderGen
	e.dGated = S2.C.GatedCycles - S1.C.GatedCycles
	e.dReused = S2.C.ReuseRenames - S1.C.ReuseRenames
	nn := uint32(n)

	// Committed integer registers advance by n mark deltas. (FP and memory
	// are frozen; $zero's delta is zero by construction.)
	for r := 0; r < isa.NumIntRegs; r++ {
		S2.RF.IntVals[ci2[r]] += int32(nn * dMark[r])
	}

	// In-flight instructions: the landing entry at offset t stands for the
	// original entry n periods later, so completed integer destinations
	// advance by n.dI of their template step.
	robSize := len(S2.ROB.Ring)
	for i := 0; i < S2.ROB.Count; i++ {
		slot := (S2.ROB.Head + i) % robSize
		en := &S2.ROB.Ring[slot]
		r := &tmpl[(en.Seq-headSeq)%s]
		if en.Done && en.HasDest && en.Dest.Kind != isa.KindFP {
			S2.RF.IntVals[en.NewPhys] += int32(nn * uint32(r.dI))
		}
		en.Seq += n * s
		if en.IssueCycle != 0 {
			en.IssueCycle += n * dCycle
		}
	}
	for i := range S2.ExecQ {
		en := &S2.ExecQ[i]
		r := &tmpl[(en.Seq-headSeq)%s]
		if r.hasDest && r.dest.Kind != isa.KindFP {
			en.ValI += int32(nn * uint32(r.dI))
		}
		en.Seq += n * s
		en.Done += n * dCycle
	}

	// Counters: every one advances by n times its own per-period delta.
	// This moves Cycle, NextSeq and LastCommit along with the rest.
	var prev []uint64
	counterPtrs(S1, func(p *uint64) { prev = append(prev, *p) })
	i := 0
	counterPtrs(S2, func(p *uint64) { *p += n * (*p - prev[i]); i++ })

	// Remaining sequence numbers, timestamps and recency stamps.
	if S2.FetchStallUntil > oldCycle {
		S2.FetchStallUntil += n * dCycle
	}
	lsqSize := len(S2.LSQ.Ring)
	for i := 0; i < S2.LSQ.Count; i++ {
		S2.LSQ.Ring[(S2.LSQ.Head+i)%lsqSize].Seq += n * s
	}
	for i := range S2.IQ.Slots {
		if !S2.IQ.Meta[i].Valid {
			continue
		}
		S2.IQ.Slots[i].Seq += n * s
		S2.IQ.Meta[i].OrderKey += n * dOrder
	}
	for k := range S2.FUs.NextFree {
		for u := range S2.FUs.NextFree[k] {
			if S2.FUs.NextFree[k][u] > oldCycle {
				S2.FUs.NextFree[k][u] += n * dCycle
			}
		}
	}
	shiftLines := func(l1, l2 []mem.LineState) {
		for i := range l2 {
			l2[i].LRU += n * (l2[i].LRU - l1[i].LRU)
		}
	}
	shiftLines(S1.Hier.L1I.Lines, S2.Hier.L1I.Lines)
	shiftLines(S1.Hier.L1D.Lines, S2.Hier.L1D.Lines)
	shiftLines(S1.Hier.L2.Lines, S2.Hier.L2.Lines)
	if S2.Hier.HasL0I {
		shiftLines(S1.Hier.L0I.Lines, S2.Hier.L0I.Lines)
	}
	shiftLines(S1.Hier.ITLB.Lines, S2.Hier.ITLB.Lines)
	shiftLines(S1.Hier.DTLB.Lines, S2.Hier.DTLB.Lines)
	for i := range S2.BP.BTB {
		S2.BP.BTB[i].LRU += n * (S2.BP.BTB[i].LRU - S1.BP.BTB[i].LRU)
	}
}

package ffwd

import (
	"math/bits"
	"reflect"
	"testing"

	"reuseiq/internal/chaos"
	"reuseiq/internal/interp"
	"reuseiq/internal/isa"
	"reuseiq/internal/pipeline"
)

// runLoopmark simulates the loopmark kernel with the engine on or off and
// returns the machine and engine.
func runLoopmark(t *testing.T, iters int32, on bool) (*pipeline.Machine, *Engine) {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.FastForward = on
	m := pipeline.New(cfg, LoopmarkProgram(iters))
	e := Attach(m)
	if on != (e != nil) {
		t.Fatalf("Attach with FastForward=%v returned %v", on, e)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m, e
}

// TestLoopmarkByteIdentity is the engine's core contract: the fast-forwarded
// run finishes in exactly the state the cycle-accurate run does — every
// counter, the reuse statistics, the committed registers and all of memory.
func TestLoopmarkByteIdentity(t *testing.T) {
	m0, _ := runLoopmark(t, 300_000, false)
	m1, e := runLoopmark(t, 300_000, true)
	if e.S.Engagements == 0 {
		t.Fatalf("engine never engaged on the loopmark kernel: %+v", e.S)
	}
	if m0.Cycle() != m1.Cycle() {
		t.Fatalf("cycle count differs: off %d, on %d", m0.Cycle(), m1.Cycle())
	}
	if m0.C != m1.C {
		t.Fatalf("pipeline counters differ:\noff %+v\non  %+v", m0.C, m1.C)
	}
	if m0.Ctl.S != m1.Ctl.S {
		t.Fatalf("reuse stats differ:\noff %+v\non  %+v", m0.Ctl.S, m1.Ctl.S)
	}
	s0, s1 := m0.Snapshot(), m1.Snapshot()
	ci0, cf0 := committedMaps(s0)
	ci1, cf1 := committedMaps(s1)
	for r := 0; r < isa.NumIntRegs; r++ {
		if s0.RF.IntVals[ci0[r]] != s1.RF.IntVals[ci1[r]] {
			t.Errorf("$r%d differs: off %d, on %d", r, s0.RF.IntVals[ci0[r]], s1.RF.IntVals[ci1[r]])
		}
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		if s0.RF.FPVals[cf0[r]] != s1.RF.FPVals[cf1[r]] {
			t.Errorf("$f%d differs: off %v, on %v", r, s0.RF.FPVals[cf0[r]], s1.RF.FPVals[cf1[r]])
		}
	}
	if !reflect.DeepEqual(s0.Pages, s1.Pages) {
		t.Error("memory pages differ between engine off and on")
	}
}

// TestLockstepChain validates the engage -> extrapolate -> disengage chain
// against the functional golden model: the fast-forwarded machine's final
// committed registers must equal a full interpreter run of the same program.
// (The engine additionally runs the lockstep invariant checker at both skip
// boundaries internally; an error there fails m.Run.)
func TestLockstepChain(t *testing.T) {
	const iters = 200_000
	m, e := runLoopmark(t, iters, true)
	if e.S.Engagements == 0 {
		t.Fatalf("engine never engaged: %+v", e.S)
	}
	g := interp.New(LoopmarkProgram(iters))
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	ci, _ := committedMaps(st)
	for r := 0; r < isa.NumIntRegs; r++ {
		if got, want := st.RF.IntVals[ci[r]], g.State.Int[r]; got != want {
			t.Errorf("$r%d: pipeline committed %d, golden model %d", r, got, want)
		}
	}
	if m.C.Commits != g.State.Insts {
		t.Errorf("commits %d, golden model executed %d", m.C.Commits, g.State.Insts)
	}
}

// TestChaosVeto: under fault injection the engine must refuse to engage, no
// matter how periodic the loop looks, because injections are per-cycle
// events that a skip would elide.
func TestChaosVeto(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.FastForward = true
	cfg.Chaos = chaos.DefaultConfig(42)
	m := pipeline.New(cfg, LoopmarkProgram(100_000))
	e := Attach(m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if e.S.Engagements != 0 {
		t.Fatalf("engine engaged %d times under fault injection", e.S.Engagements)
	}
	if e.S.Vetoes[VetoChaos] == 0 {
		t.Fatalf("expected at least one chaos veto, stats %+v", e.S)
	}
}

// TestObserverVeto: a per-cycle observer must keep the engine disengaged —
// it would miss every skipped cycle.
func TestObserverVeto(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.FastForward = true
	m := pipeline.New(cfg, LoopmarkProgram(100_000))
	e := Attach(m)
	cycles := 0
	m.OnCycle = func() error { cycles++; return nil }
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if e.S.Engagements != 0 {
		t.Fatalf("engine engaged %d times with an OnCycle observer", e.S.Engagements)
	}
	if e.S.Vetoes[VetoObserver] == 0 {
		t.Fatalf("expected observer vetoes, stats %+v", e.S)
	}
	// The observer must see exactly what it sees on a plain machine: with an
	// observer attached, even the idle-cycle skip must stand down.
	ref := pipeline.New(pipeline.DefaultConfig(), LoopmarkProgram(100_000))
	refCycles := 0
	ref.OnCycle = func() error { refCycles++; return nil }
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	if cycles != refCycles || m.Cycle() != ref.Cycle() {
		t.Fatalf("observer saw %d cycles (reference %d), machine at %d (reference %d)",
			cycles, refCycles, m.Cycle(), ref.Cycle())
	}
}

// TestBudgetClampByteIdentity: when the cycle budget truncates the run, the
// engine must land short of the budget so the abort happens on exactly the
// same cycle, with the same counters, as the slow path.
func TestBudgetClampByteIdentity(t *testing.T) {
	run := func(on bool) (*pipeline.Machine, error) {
		cfg := pipeline.DefaultConfig()
		cfg.FastForward = on
		cfg.MaxCycles = 50_000 // far below the ~2.1M cycles the loop needs
		m := pipeline.New(cfg, LoopmarkProgram(100_000))
		Attach(m)
		return m, m.Run()
	}
	m0, err0 := run(false)
	m1, err1 := run(true)
	if err0 == nil || err1 == nil {
		t.Fatalf("expected budget aborts, got off=%v on=%v", err0, err1)
	}
	if err0.Error() != err1.Error() {
		t.Fatalf("abort messages differ:\noff: %v\non:  %v", err0, err1)
	}
	if m0.Cycle() != m1.Cycle() || m0.C != m1.C {
		t.Fatalf("budget abort state differs: off cycle %d, on cycle %d", m0.Cycle(), m1.Cycle())
	}
}

func TestModInverseOdd(t *testing.T) {
	for _, a := range []uint32{1, 3, 5, 7, 0x12345, 0xffffffff, 0x80000001, 2863311531} {
		if got := a * modInverseOdd(a); got != 1 {
			t.Errorf("a=%#x: a*inv = %#x, want 1", a, got)
		}
	}
}

// TestFlipPeriod cross-checks the closed-form branch-flip solve against a
// bounded linear search.
func TestFlipPeriod(t *testing.T) {
	naive := func(d2, dd uint32, limit uint64) uint64 {
		d := d2
		for k := uint64(1); k <= limit; k++ {
			d += dd
			if (d == 0) != (d2 == 0) {
				// first period whose zero-ness differs from period 2
				return 2 + k
			}
		}
		return noFlip
	}
	cases := []struct{ d2, dd uint32 }{
		{5, ^uint32(0)},          // counting down by 1: flips at kRel=5
		{100, ^uint32(0) - 2},    // down by 3
		{0, 4},                   // currently equal, diverges next period
		{6, ^uint32(0) - 1},      // down by 2, even: 6/2=3
		{7, 2},                   // odd distance, even step: never
		{1 << 20, ^uint32(0)},    // large but reachable
		{12, 4294967290}, {40, 8}, {1024, ^uint32(0) - 7},
	}
	for _, c := range cases {
		got := flipPeriod(c.d2, c.dd)
		want := naive(c.d2, c.dd, 1<<22)
		// The naive search only sees flips within its bound; the closed form
		// may legitimately report a farther one.
		if want == noFlip && got != noFlip && got-2 <= 1<<22 {
			t.Errorf("flipPeriod(%d,%d) = %d, naive found none in range", c.d2, c.dd, got)
		} else if want != noFlip && got != want {
			t.Errorf("flipPeriod(%d,%d) = %d, want %d", c.d2, c.dd, got, want)
		}
		// Verify algebraically when a flip is reported: the operand
		// difference is zero (d2!=0) or nonzero (d2==0) at the flip period.
		if got != noFlip {
			k := got - 2
			d := c.d2 + uint32(k)*c.dd
			if (d == 0) == (c.d2 == 0) {
				t.Errorf("flipPeriod(%d,%d) = %d: difference %d does not flip", c.d2, c.dd, got, d)
			}
		}
	}
	if bits.UintSize < 64 {
		t.Skip("solver assumes 64-bit uint64 arithmetic helpers")
	}
}

// TestMetrics: the engine's counters surface through the machine registry
// with the ffwd.* prefix.
func TestMetrics(t *testing.T) {
	m, e := runLoopmark(t, 300_000, true)
	set := m.StatsSet()
	if got := set.Get("ffwd.engagements"); got != e.S.Engagements {
		t.Errorf("ffwd.engagements = %d, engine says %d", got, e.S.Engagements)
	}
	if got := set.Get("ffwd.skipped_cycles"); got != e.S.SkippedCycles || got == 0 {
		t.Errorf("ffwd.skipped_cycles = %d, engine says %d", got, e.S.SkippedCycles)
	}
	for v := VetoReason(0); v < numVetoReasons; v++ {
		if got := set.Get("ffwd.vetoes." + v.String()); got != e.S.Vetoes[v] {
			t.Errorf("ffwd.vetoes.%v = %d, engine says %d", v, got, e.S.Vetoes[v])
		}
	}
}

// TestVetoNamesComplete guards the name table against new reasons.
func TestVetoNamesComplete(t *testing.T) {
	if len(vetoNames) != NumVetoReasons {
		t.Fatalf("vetoNames has %d entries for %d reasons", len(vetoNames), NumVetoReasons)
	}
	for v := VetoReason(0); v < numVetoReasons; v++ {
		if v.String() == "?" {
			t.Errorf("veto reason %d has no name", v)
		}
	}
}

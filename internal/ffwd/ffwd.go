// Package ffwd is the fast-forward engine: it detects when the simulated
// machine has converged to a provably periodic steady state — one loop
// iteration of the captured (or anchored) loop leaves every structural
// component of the pipeline in exactly the state it started in, advancing
// only counters, sequence numbers and affine register values — and then
// skips whole iterations analytically in O(1) instead of simulating them
// cycle by cycle.
//
// # Detection
//
// Detection is staged so the common case stays nearly free:
//
//  1. A *mark* fires once per loop iteration: during Code Reuse, when the
//     reuse pointer wraps (Controller.Wraps); in conventional mode, when
//     fetch jumps backward to a remembered anchor PC.
//  2. At each mark a small fixed vector of live counters is sampled. Two
//     consecutive equal counter *deltas* are the cheap heuristic gate.
//  3. Only then does the engine capture full machine snapshots at three
//     consecutive marks and run the authoritative checks: every counter in
//     the machine must advance by the same delta across both intervals, a
//     canonical structural digest (relabeled to erase physical-register and
//     queue-slot names) must be identical at all three marks, no squash may
//     have occurred, per-line cache/BTB recency deltas must be constant, and
//     the functional interpreter — seeded from the committed state — must
//     confirm the committed path is template-periodic and every operation is
//     either affine over Z_2^32 or has bit-frozen operands (see engage.go
//     for the soundness argument).
//
// # Skip
//
// On engage the engine solves the loop-closing branch's exit iteration in
// closed form (modular arithmetic on the affine operand sequence), clamps
// the skip to the cycle budget, advances every counter, sequence number,
// timestamp and affine value in the last snapshot by n deltas, and restores
// it into the machine. The lockstep invariant checker validates the machine
// at both the engage and disengage boundaries. The loop tail past the
// provable horizon runs cycle-accurate as usual, so end-of-run output is
// byte-identical with the engine on or off.
//
// Fault injection (chaos) and any per-cycle/per-commit observer veto the
// engine entirely: those consumers see individual cycles, which a skip
// would elide. The telemetry tracer is the exception — skips are reported
// to it in bulk (Tracer.FastForward) so session audits stay reconciled.
package ffwd

import (
	"reuseiq/internal/core"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/telemetry"
)

// minIterations is the smallest analytic skip worth taking: below this the
// snapshot and scan overhead exceeds the saved simulation time, and the
// cycle-accurate tail absorbs the loop anyway.
const minIterations = 8

// probeLen is the size of the stage-1 live counter vector.
const probeLen = 14

// Probe vector slots consulted by name (see Engine.probe for the full
// layout).
const (
	probeMispredicts = 3
	probeStores      = 7
)

// Phase is the engine's observation state, exported for tests and
// diagnostics.
//
//reuse:exhaustive
type Phase uint8

const (
	// PhaseIdle: watching for iteration marks.
	PhaseIdle Phase = iota
	// PhaseMeasuring: marks seen, building a stable counter-delta streak.
	PhaseMeasuring
	// PhaseArmed: streak established, full snapshots being captured.
	PhaseArmed
	// PhaseCooldown: a failed engage attempt; marks are ignored for an
	// exponentially growing interval before re-arming.
	PhaseCooldown
)

var phaseNames = [...]string{"idle", "measuring", "armed", "cooldown"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "?"
}

// VetoReason says why an engage attempt was rejected.
//
//reuse:exhaustive
type VetoReason uint8

const (
	// VetoChaos: fault injection is active; injections are per-cycle events
	// a skip would elide (and they break periodicity anyway).
	VetoChaos VetoReason = iota
	// VetoObserver: a per-cycle or per-commit observer (hooks, recorder,
	// sampler, debug taps) is attached and would miss skipped events.
	VetoObserver
	// VetoCounters: some counter's delta differed between the two observed
	// intervals, or no cycles/commits elapsed between marks.
	VetoCounters
	// VetoSquash: a misprediction recovery occurred in the interval, or
	// sequence numbers advanced faster than commits (wrong-path dispatch).
	VetoSquash
	// VetoStructure: the canonical structural digests of the three marks
	// differ — the pipeline shape is not period-invariant.
	VetoStructure
	// VetoRecency: a cache or BTB line's recency stamp delta was not
	// constant across the intervals (replacement state still drifting).
	VetoRecency
	// VetoEmptyROB: no in-flight instruction to anchor the committed state.
	VetoEmptyROB
	// VetoMemory: the loop commits stores; memory would not be frozen and
	// load values could drift.
	VetoMemory
	// VetoTemplate: the functional interpreter's scan refused the loop —
	// non-periodic committed path, a non-affine operation with drifting
	// operands, a drifting load address, or a value that failed the
	// closed-form cross-check.
	VetoTemplate
	// VetoHorizon: the provable skip (branch-exit solve and cycle-budget
	// clamp) is too short to be worth taking.
	VetoHorizon
	// VetoExactState: a consumer that checkpoints or diffs intermediate
	// machine states (the flight recorder) is attached. Analytic skips
	// reproduce architectural state and counters exactly but re-derive the
	// in-flight microarchitectural arrangement, so a post-skip state is not
	// bit-identical to the stepped one — useless to a byte-level debugger.
	VetoExactState

	numVetoReasons
)

// NumVetoReasons is the number of veto reasons (for table sizing).
const NumVetoReasons = int(numVetoReasons)

var vetoNames = [...]string{
	"chaos", "observer", "counters", "squash", "structure",
	"recency", "empty_rob", "memory", "template", "horizon",
	"exact_state",
}

func (v VetoReason) String() string {
	if int(v) < len(vetoNames) {
		return vetoNames[v]
	}
	return "?"
}

// Stats counts the engine's activity. All fields advance monotonically.
type Stats struct {
	Engagements       uint64 // analytic skips taken
	SkippedCycles     uint64 // cycles elided by analytic skips
	SkippedIterations uint64 // loop iterations elided
	SkippedInsts      uint64 // committed instructions elided
	Attempts          uint64 // full engage attempts (snapshot ring complete)
	IdleSkips         uint64 // event-driven idle skips taken
	IdleSkippedCycles uint64 // cycles elided by idle skips

	Vetoes [NumVetoReasons]uint64
}

// Engine watches a machine for convergence and fast-forwards it. Create
// with Attach; the pipeline then calls Tick between cycles.
type Engine struct {
	m *pipeline.Machine

	// S is the engine's activity counters, readable at any time.
	S Stats

	phase Phase

	// Mark detection. During Code Reuse a mark is a reuse-pointer wrap;
	// in conventional mode it is fetch returning to the anchor PC.
	lastWraps  uint64
	anchorPC   uint32
	haveAnchor bool
	prevFetch  uint32
	havePrev   bool

	// Stage 1: cheap per-mark counter vector and its delta streak.
	vecValid  bool
	diffValid bool
	prevVec   [probeLen]uint64
	prevDiff  [probeLen]uint64
	streak    int

	// Stage 2: snapshot ring over three consecutive marks.
	ring  [3]*pipeline.MachineState
	nring int

	// Exponential backoff after failed attempts: marks to ignore.
	failStreak uint
	cooldown   uint64

	// blocked latches while chaos or an observer is attached, so the
	// corresponding veto is counted once per contiguous blocked span rather
	// than every cycle.
	blocked bool

	// Per-period gating/reuse deltas of the last engagement, captured by
	// apply before the counters are advanced, for the telemetry bulk report.
	dGated  uint64
	dReused uint64
}

// Attach builds an engine for m and installs it as the machine's
// FastForwarder when the configuration opts in. It returns nil (and
// installs nothing) when cfg.FastForward is false, so call sites can attach
// unconditionally.
func Attach(m *pipeline.Machine) *Engine {
	if !m.Cfg.FastForward {
		return nil
	}
	e := &Engine{m: m}
	m.FF = e
	return e
}

// Phase returns the engine's current observation phase.
func (e *Engine) Phase() Phase { return e.phase }

// Tick runs between cycles (pipeline.FastForwarder). The fast path — no
// mark this cycle — is a handful of loads and compares.
//
//reuse:hotpath
func (e *Engine) Tick() error {
	m := e.m
	// Chaos and per-cycle/per-commit observers disable the engine outright —
	// both skip flavors elide cycles those consumers must see. Checked every
	// cycle (a handful of pointer compares) because hooks can attach mid-run.
	if m.Chaos != nil {
		e.block(VetoChaos)
		return nil
	}
	if m.OnCommit != nil || m.OnCycle != nil || m.OnSample != nil ||
		m.Rec != nil || m.DebugIssue != nil || m.Trace != nil {
		e.block(VetoObserver)
		return nil
	}
	if n := m.SkipIdle(); n > 0 {
		e.S.IdleSkips++
		e.S.IdleSkippedCycles += n
		// A cycle-indexed timeline (the flight recorder) must not show an
		// unexplained hole where no cycle was simulated, so the skip leaves
		// a synthetic annotation stamped at the post-skip cycle.
		if m.Tel != nil {
			m.Tel.BeginCycle(m.Cycle())
			m.Tel.IdleSkip(n)
		}
		return nil
	}
	// Checked after the idle skip: an inert cycle changes nothing but the
	// cycle counter and the occupancy scans, so idle skips stay bit-exact
	// and may run under an exact-state consumer; analytic skips may not.
	if m.ExactState {
		e.block(VetoExactState)
		return nil
	}
	e.blocked = false
	mark := false
	if m.Ctl.State() == core.Reuse {
		if w := m.Ctl.Wraps(); w != e.lastWraps {
			e.lastWraps = w
			mark = true
		}
		e.haveAnchor = false
		e.havePrev = false
	} else {
		e.lastWraps = m.Ctl.Wraps()
		pc := m.FetchPC()
		if e.havePrev && pc < e.prevFetch {
			// Backward fetch movement: a loop edge was taken.
			if e.haveAnchor && pc == e.anchorPC {
				mark = true
			} else {
				// New (or inner) loop head: re-anchor and restart
				// measurement — deltas against the old anchor are
				// meaningless.
				e.anchorPC, e.haveAnchor = pc, true
				e.resetMeasure()
			}
		}
		e.prevFetch, e.havePrev = pc, true
	}
	if !mark {
		return nil
	}
	return e.onMark()
}

// onMark samples the stage-1 vector and, once the delta streak and cooldown
// allow, drives snapshot capture and the engage attempt.
func (e *Engine) onMark() error {
	var vec [probeLen]uint64
	e.probe(&vec)
	if !e.vecValid {
		e.prevVec, e.vecValid = vec, true
		e.phase = PhaseMeasuring
		return nil
	}
	var diff [probeLen]uint64
	for i := range vec {
		diff[i] = vec[i] - e.prevVec[i]
	}
	e.prevVec = vec
	if !e.diffValid || diff != e.prevDiff {
		e.prevDiff, e.diffValid = diff, true
		e.streak = 0
		e.dropRing()
		e.phase = PhaseMeasuring
		return nil
	}
	e.streak++
	if e.cooldown > 0 {
		e.cooldown--
		return nil
	}
	if e.streak < 2 {
		return nil
	}
	// The stable delta vector already reveals two certain rejections; veto
	// now (entering backoff) rather than paying for three full snapshots a
	// doomed attempt would take.
	if e.prevDiff[probeMispredicts] != 0 {
		e.veto(VetoSquash)
		return nil
	}
	if e.prevDiff[probeStores] != 0 {
		e.veto(VetoMemory)
		return nil
	}
	e.phase = PhaseArmed
	e.capture()
	if e.nring < 3 {
		return nil
	}
	engaged, err := e.tryEngage()
	if err != nil {
		return err
	}
	if engaged {
		e.reset()
	}
	return nil
}

// probe fills the stage-1 live counter vector. The selection spans every
// pipeline phase (front end, window, memory, reuse machinery) so that any
// behavioral change breaks delta equality.
func (e *Engine) probe(vec *[probeLen]uint64) {
	m := e.m
	vec[0] = m.Cycle()
	vec[1] = m.NextSeq()
	vec[2] = m.C.Commits
	vec[probeMispredicts] = m.C.Mispredicts
	vec[4] = m.C.GatedCycles
	vec[5] = m.C.Fetches
	vec[6] = m.C.ReuseRenames
	vec[probeStores] = m.C.StoresCommitted
	vec[8] = m.Hier.L1D.Accesses
	vec[9] = m.Hier.L1D.Misses
	vec[10] = m.Hier.L2.Misses
	vec[11] = m.RF.Writes
	vec[12] = m.IQ.Dispatches
	vec[13] = m.Ctl.S.ReuseRenames
}

// capture appends a full snapshot at the current mark to the ring.
//
//reuse:allow-alloc snapshot capture is the rare armed path, entered at most once per loop iteration after the cheap gates pass
func (e *Engine) capture() {
	if e.nring == 3 {
		e.ring[0], e.ring[1], e.ring[2] = e.ring[1], e.ring[2], nil
		e.nring = 2
	}
	e.ring[e.nring] = e.m.Snapshot()
	e.nring++
}

// dropRing discards captured snapshots (the streak broke).
func (e *Engine) dropRing() {
	e.ring[0], e.ring[1], e.ring[2] = nil, nil, nil
	e.nring = 0
}

// veto records a rejected attempt and enters exponential backoff: the next
// 2^k marks are ignored before re-arming, so a loop that repeatedly fails
// the full checks costs asymptotically nothing.
func (e *Engine) veto(r VetoReason) {
	e.S.Vetoes[r]++
	e.dropRing()
	if e.failStreak < 10 {
		e.failStreak++
	}
	e.cooldown = uint64(1) << e.failStreak
	e.phase = PhaseCooldown
}

// block disables the engine while a vetoing consumer (chaos, observer) is
// attached, counting one veto per contiguous blocked span.
func (e *Engine) block(r VetoReason) {
	if e.blocked {
		return
	}
	e.blocked = true
	e.S.Vetoes[r]++
	e.resetMeasure()
}

// resetMeasure clears stage-1 measurement state (marks remain armed).
func (e *Engine) resetMeasure() {
	e.vecValid, e.diffValid = false, false
	e.streak = 0
	e.dropRing()
	e.phase = PhaseIdle
}

// reset returns the engine to idle after a successful engagement.
func (e *Engine) reset() {
	e.resetMeasure()
	e.failStreak = 0
	e.cooldown = 0
	e.lastWraps = e.m.Ctl.Wraps()
	e.haveAnchor = false
	e.havePrev = false
}

// markPC is the PC reported in telemetry for a skip: the captured loop head
// during reuse, the fetch anchor otherwise.
func (e *Engine) markPC() uint32 {
	if e.m.Ctl.State() == core.Reuse {
		head, _ := e.m.Ctl.LoopBounds()
		return head
	}
	return e.anchorPC
}

// RegisterMetrics registers the engine's counters. The pipeline's
// RegisterMetrics calls this when an engine is attached, so the metrics
// appear in StatsSet and /metrics only for fast-forwarding machines.
func (e *Engine) RegisterMetrics(r *telemetry.Registry) {
	r.Counter("ffwd.engagements", func() uint64 { return e.S.Engagements })
	r.Counter("ffwd.skipped_cycles", func() uint64 { return e.S.SkippedCycles })
	r.Counter("ffwd.skipped_iterations", func() uint64 { return e.S.SkippedIterations })
	r.Counter("ffwd.skipped_insts", func() uint64 { return e.S.SkippedInsts })
	r.Counter("ffwd.attempts", func() uint64 { return e.S.Attempts })
	r.Counter("ffwd.idle_skips", func() uint64 { return e.S.IdleSkips })
	r.Counter("ffwd.idle_skipped_cycles", func() uint64 { return e.S.IdleSkippedCycles })
	for v := VetoReason(0); v < numVetoReasons; v++ {
		v := v
		r.Counter("ffwd.vetoes."+v.String(), func() uint64 { return e.S.Vetoes[v] })
	}
}

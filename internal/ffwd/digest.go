// Structural digest: a canonical hash of everything about a machine snapshot
// that must be period-invariant for fast-forward to be sound, with every
// per-period label erased. Sequence numbers are hashed relative to NextSeq,
// timestamps relative to the cycle, physical registers are replaced by their
// dataflow role (which in-flight producer feeds which consumer, whether an
// architectural register is ready through the map), and ROB/LSQ ring slots by
// their position from the head. Two snapshots one loop iteration apart in a
// converged steady state digest identically even though every concrete label
// differs; any structural drift — an extra in-flight instruction, a changed
// store-set link, a cache line in a different state — changes the hash.
//
// Deliberately excluded: all values (registers, memory, in-flight results) —
// those evolve affinely and are handled by the extrapolator — and all
// counters, which are checked separately for constant deltas.
package ffwd

import (
	"reuseiq/internal/isa"
	"reuseiq/internal/mem"
	"reuseiq/internal/pipeline"
)

// hasher is FNV-1a over fixed-width words. Cold path: it runs only on the
// armed path, at most a few times per engage attempt.
type hasher struct{ h uint64 }

func newHasher() hasher { return hasher{h: 14695981039346656037} }

func (d *hasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= v & 0xff
		d.h *= 1099511628211
		v >>= 8
	}
}

func (d *hasher) u32(v uint32) { d.u64(uint64(v)) }
func (d *hasher) i(v int)      { d.u64(uint64(int64(v))) }
func (d *hasher) i32(v int32)  { d.u64(uint64(int64(v))) }

func (d *hasher) b(v bool) {
	if v {
		d.u64(1)
	} else {
		d.u64(0)
	}
}

// sep delimits variable-length sections so adjacent lists cannot alias.
func (d *hasher) sep(tag uint64) { d.u64(^tag) }

func (d *hasher) inst(in isa.Inst) {
	d.u64(uint64(in.Op))
	d.u64(uint64(in.Rd))
	d.u64(uint64(in.Rs))
	d.u64(uint64(in.Rt))
	d.i32(in.Imm)
	d.u32(in.Target)
}

// relu is a saturating a-b for relative timestamps: deadlines in the past
// all canonicalize to zero (their exact age no longer matters).
func relu(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return 0
}

// digest computes the canonical structural hash of st.
//
//reuse:digest
//reuse:deterministic
//reuse:allow-alloc cold armed-path helper; runs at most a few times per engage attempt
func digest(st *pipeline.MachineState) uint64 {
	d := newHasher()
	cyc := st.Cycle

	// Front end and global flags.
	d.u32(st.FetchPC)
	d.b(st.FetchHalted)
	d.b(st.Halted)
	d.u64(relu(st.FetchStallUntil, cyc))

	// Controller scalars. IterCount only changes during Loop Buffering, so
	// during Code Reuse it is frozen and safe to require invariant.
	d.sep(1)
	d.u64(uint64(st.Ctl.State))
	d.u32(st.Ctl.LoopHead)
	d.u32(st.Ctl.LoopTail)
	d.i(st.Ctl.CallDepth)
	d.i(st.Ctl.IterCount)
	d.i(st.Ctl.LastIterSize)
	d.b(st.Ctl.FirstIterDone)
	d.i(st.Ctl.ReuseOrd)
	for i := range st.Ctl.NBLT.Addrs {
		d.u32(st.Ctl.NBLT.Addrs[i])
		d.b(st.Ctl.NBLT.Valid[i])
	}
	d.i(st.Ctl.NBLT.Next)

	// Fetch queue and decode latch.
	d.sep(2)
	for _, q := range [][]pipeline.FetchedState{st.FetchQ, st.DecodeLat} {
		d.i(len(q))
		for i := range q {
			f := &q[i]
			d.u32(f.PC)
			d.inst(f.Inst)
			d.b(f.IsControl)
			d.b(f.PredTaken)
			d.u32(f.PredTarget)
		}
	}

	// ROB, in position-from-head order with sequence numbers relative to
	// NextSeq and slots erased. NewPhys/OldPhys are labels: excluded (their
	// dataflow role is captured through the IQ producer encoding and the
	// committed-map check in engage.go).
	d.sep(3)
	robSize := len(st.ROB.Ring)
	d.i(st.ROB.Count)
	for i := 0; i < st.ROB.Count; i++ {
		slot := (st.ROB.Head + i) % robSize
		if !st.ROB.Used[slot] {
			d.u64(0xdead)
			continue
		}
		en := &st.ROB.Ring[slot]
		d.u64(st.NextSeq - en.Seq)
		d.u32(en.PC)
		d.inst(en.Inst)
		d.b(en.HasDest)
		d.u64(uint64(en.Dest.Kind))
		d.u64(uint64(en.Dest.Num))
		d.b(en.Done)
		d.b(en.PredTaken)
		d.u32(en.PredTarget)
		d.b(en.ActTaken)
		d.u32(en.ActTarget)
		d.b(en.Mispred)
		d.b(en.IsLoad)
		d.b(en.IsStore)
		d.b(en.Halt)
		d.b(en.Reused)
		if en.IssueCycle == 0 {
			d.u64(^uint64(0))
		} else {
			d.u64(relu(cyc, en.IssueCycle))
		}
	}

	// LSQ, in position-from-head order. Addr is included: fast-forward
	// requires frozen memory traffic, so a drifting address must break the
	// digest. Data values are excluded (they are values, not structure).
	d.sep(4)
	lsqSize := len(st.LSQ.Ring)
	d.i(st.LSQ.Count)
	for i := 0; i < st.LSQ.Count; i++ {
		en := &st.LSQ.Ring[(st.LSQ.Head+i)%lsqSize]
		d.u64(st.NextSeq - en.Seq)
		d.b(en.IsStore)
		d.b(en.IsFP)
		d.u64(uint64(en.Size))
		d.b(en.AddrReady)
		d.u32(en.Addr)
		d.b(en.DataReady)
		d.b(en.Done)
	}

	// In-flight execution list, in slice order, ROB slots relabeled to
	// position-from-head and completion cycles made relative. Values excluded.
	d.sep(5)
	d.i(len(st.ExecQ))
	for i := range st.ExecQ {
		en := &st.ExecQ[i]
		d.i((en.ROBSlot - st.ROB.Head + robSize) % robSize)
		d.u64(st.NextSeq - en.Seq)
		d.u64(relu(en.Done, cyc))
	}

	// Issue queue, relabeled by program order: slots are renamed to their
	// index along the Head->Next chain, physical source registers to the
	// position-from-head of the in-flight producer (or -1 for a committed,
	// i.e. architecturally visible, source). This erases both slot and
	// physical-register labels while preserving the exact dataflow topology.
	d.sep(6)
	iqSize := len(st.IQ.Slots)
	progIdx := make([]int32, iqSize)
	for i := range progIdx {
		progIdx[i] = -1
	}
	order := make([]int32, 0, st.IQ.Count)
	for slot := st.IQ.Head; slot >= 0 && len(order) <= iqSize; slot = st.IQ.Meta[slot].Next {
		progIdx[slot] = int32(len(order))
		order = append(order, slot)
	}
	d.i(len(order))
	producerPos := func(kind isa.RegKind, phys int) int {
		for i := 0; i < st.ROB.Count; i++ {
			slot := (st.ROB.Head + i) % robSize
			if !st.ROB.Used[slot] {
				continue
			}
			en := &st.ROB.Ring[slot]
			if en.HasDest && en.Dest.Kind == kind && en.NewPhys == phys {
				return i
			}
		}
		return -1
	}
	for _, slot := range order {
		en := &st.IQ.Slots[slot]
		mt := &st.IQ.Meta[slot]
		d.u64(st.NextSeq - en.Seq)
		d.u32(en.PC)
		d.inst(en.Inst)
		d.i((en.ROBSlot - st.ROB.Head + robSize) % robSize)
		if en.LSQSlot < 0 {
			d.i(-1)
		} else {
			d.i((en.LSQSlot - st.LSQ.Head + lsqSize) % lsqSize)
		}
		d.i(en.NumSrc)
		for s := 0; s < en.NumSrc; s++ {
			d.u64(uint64(en.SrcKind[s]))
			d.b(en.SrcReady[s])
			d.i(producerPos(en.SrcKind[s], en.SrcPhys[s]))
		}
		d.b(en.HasDest)
		d.u64(uint64(en.DestKind))
		d.b(en.Issued)
		d.b(en.Classified)
		d.b(en.StaticTaken)
		d.u32(en.StaticTarget)
		d.u64(st.IQ.OrderGen - mt.OrderKey)
		d.u64(uint64(mt.Pending))
		d.b(mt.InStore)
	}
	d.i(st.IQ.Classified)
	d.b(st.IQ.ClassDirty)
	d.sep(7)
	for _, slot := range st.IQ.ClassSlots {
		d.i32(progIdx[slot])
	}
	d.sep(8)
	for _, slot := range st.IQ.ReadySlots {
		d.i32(progIdx[slot])
	}
	// Pending-store program-order chain.
	d.sep(9)
	for slot, hops := st.IQ.StoreHead, 0; slot >= 0 && hops <= iqSize; slot, hops = st.IQ.Meta[slot].SNext, hops+1 {
		d.i32(progIdx[slot])
	}
	// Wakeup chains, one per in-flight producer in ROB order: each waiting
	// (entry, source) pair as (program index, source number). The physical
	// register keying the chain is erased; the wait topology is kept.
	d.sep(10)
	for i := 0; i < st.ROB.Count; i++ {
		slot := (st.ROB.Head + i) % robSize
		if !st.ROB.Used[slot] {
			continue
		}
		en := &st.ROB.Ring[slot]
		if !en.HasDest {
			continue
		}
		heads := st.IQ.IntWait
		if en.Dest.Kind == isa.KindFP {
			heads = st.IQ.FPWait
		}
		if en.NewPhys >= len(heads) {
			d.i(-2)
			continue
		}
		for node, hops := heads[en.NewPhys], 0; node >= 0 && hops <= 2*iqSize; node, hops = st.IQ.WNext[node], hops+1 {
			d.i32(progIdx[node/2])
			d.i32(node & 1)
		}
		d.i(-1)
	}

	// Rename: per-architectural-register readiness through the map, plus
	// free-list depth. Physical labels, map contents, free-list order and all
	// values are excluded — they are labels or values, not structure.
	d.sep(11)
	for r := 0; r < isa.NumIntRegs; r++ {
		d.b(st.RF.IntReady[st.RF.IntMap[r]])
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		d.b(st.RF.FPReady[st.RF.FPMap[r]])
	}
	d.i(len(st.RF.IntFree))
	d.i(len(st.RF.FPFree))

	// Caches: per-line valid/dirty/tag. LRU stamps drift by a constant per
	// period in steady state; engage.go checks their deltas separately.
	d.sep(12)
	hashCache := func(c *mem.CacheState) {
		for i := range c.Lines {
			l := &c.Lines[i]
			d.b(l.Valid)
			d.b(l.Dirty)
			d.u32(l.Tag)
		}
	}
	hashCache(&st.Hier.L1I)
	hashCache(&st.Hier.L1D)
	hashCache(&st.Hier.L2)
	if st.Hier.HasL0I {
		hashCache(&st.Hier.L0I)
	}
	hashCache(&st.Hier.ITLB)
	hashCache(&st.Hier.DTLB)

	// Branch predictor: direction table, BTB contents (recency separate, as
	// for caches), and the full return-address stack.
	d.sep(13)
	for _, v := range st.BP.Bimod {
		d.u64(uint64(v))
	}
	for i := range st.BP.BTB {
		l := &st.BP.BTB[i]
		d.b(l.Valid)
		d.u32(l.Tag)
		d.u32(l.Target)
	}
	for _, v := range st.BP.RAS {
		d.u32(v)
	}
	d.i(st.BP.RASTop)
	d.i(st.BP.RASCnt)

	// Function units: busy horizon relative to the cycle.
	d.sep(14)
	for k := range st.FUs.NextFree {
		for _, nf := range st.FUs.NextFree[k] {
			d.u64(relu(nf, cyc))
		}
	}

	// Loop cache.
	if st.HasLC {
		d.sep(15)
		d.u64(uint64(st.LC.State))
		d.u32(st.LC.Head)
		d.u32(st.LC.Tail)
		for _, pc := range st.LC.ValidPCs {
			d.u32(pc)
		}
	}
	return d.h
}

package ffwd

import (
	"fmt"

	"reuseiq/internal/asm"
	"reuseiq/internal/prog"
)

// LoopmarkProgram builds the canonical fast-forward stress kernel: a tight
// counted loop with an affine accumulator, iterated iters times. Its steady
// state is provably periodic (every instruction affine, no memory traffic),
// so the engine can skip essentially the whole run — which makes it the
// benchmark and byte-identity workload for ffwd on/off comparisons.
func LoopmarkProgram(iters int32) *prog.Program {
	return asm.MustAssemble(fmt.Sprintf(`
		li   $r3, %d
	loop:
		addi $r4, $r4, 3
		addi $r3, $r3, -1
		bne  $r3, $zero, loop
		halt
	`, iters))
}

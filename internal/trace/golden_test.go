package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenRecorder builds a deterministic scenario exercising every Render
// feature: a normal instruction, a long-latency one, a reused instance, a
// squashed instruction, a never-issued one, and a disassembly long enough to
// be truncated.
func goldenRecorder() *Recorder {
	r := New(8)
	r.OnDispatch(10, 0x400000, "li $r2, 7", false, 100)
	r.OnIssue(10, 101)
	r.OnComplete(10, 102)
	r.OnCommit(10, 103)

	r.OnDispatch(11, 0x400004, "mul $r6, $r2, $r3", false, 100)
	r.OnIssue(11, 103)
	r.OnComplete(11, 110)
	r.OnCommit(11, 111)

	r.OnDispatch(12, 0x400008, "add $r4, $r2, $r3", true, 101)
	r.OnIssue(12, 102)
	r.OnComplete(12, 103)
	r.OnCommit(12, 112)

	r.OnDispatch(13, 0x40000c, "bne $r3, $zero, loop", false, 101)
	r.OnIssue(13, 104)
	r.OnSquash(13)

	r.OnDispatch(14, 0x400010, "this disassembly is much too long to fit", false, 102)

	return r
}

func TestRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenRecorder().Render(&buf)

	path := filepath.Join("testdata", "render.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Render output drifted from %s (rerun with -update if intentional)\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
}

func TestRenderGoldenStats(t *testing.T) {
	// Pin the Stats contract for the same scenario: 3 committed (squashed and
	// never-committed excluded), waits 1+3+1 = 5, lifetimes 3+11+11 = 25.
	wait, life, n := goldenRecorder().Stats()
	if n != 3 {
		t.Fatalf("committed = %d, want 3", n)
	}
	if want := 5.0 / 3; wait != want {
		t.Errorf("avg wait = %f, want %f", wait, want)
	}
	if want := 25.0 / 3; life != want {
		t.Errorf("avg lifetime = %f, want %f", life, want)
	}
}

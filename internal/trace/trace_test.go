package trace_test

import (
	"strings"
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/trace"
)

func TestRecorderLifecycle(t *testing.T) {
	r := trace.New(4)
	r.OnDispatch(1, 0x400000, "addi $r2, $zero, 1", false, 10)
	r.OnIssue(1, 11)
	r.OnComplete(1, 12)
	r.OnCommit(1, 13)
	recs := r.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	got := recs[0]
	if got.Dispatch != 10 || got.Issue != 11 || got.Complete != 12 || got.Commit != 13 {
		t.Errorf("record = %+v", got)
	}
}

func TestRecorderCapacity(t *testing.T) {
	r := trace.New(2)
	for seq := uint64(1); seq <= 5; seq++ {
		r.OnDispatch(seq, 0, "nop", false, seq)
	}
	if len(r.Records()) != 2 {
		t.Errorf("kept %d records, want 2", len(r.Records()))
	}
	// Events for untracked instructions must be ignored safely.
	r.OnIssue(99, 5)
	r.OnSquash(98)
}

func TestRecorderSquash(t *testing.T) {
	r := trace.New(4)
	r.OnDispatch(1, 0, "bne ...", false, 5)
	r.OnSquash(1)
	if !r.Records()[0].Squashed {
		t.Error("squash not recorded")
	}
}

func TestStatsIgnoreSquashed(t *testing.T) {
	r := trace.New(4)
	r.OnDispatch(1, 0, "a", false, 10)
	r.OnIssue(1, 12)
	r.OnCommit(1, 20)
	r.OnDispatch(2, 0, "b", false, 11)
	r.OnSquash(2)
	wait, life, n := r.Stats()
	if n != 1 || wait != 2 || life != 10 {
		t.Errorf("stats = %v %v %v", wait, life, n)
	}
}

func TestRenderEndToEnd(t *testing.T) {
	p := asm.MustAssemble(`
	li   $r3, 200
loop:	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	m := pipeline.New(pipeline.DefaultConfig(), p)
	m.Rec = trace.New(150)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	m.Rec.Render(&b)
	out := b.String()
	for _, want := range []string{"pipeline trace", "D", "T", "addi"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// The reused instances of this tight loop must appear with the R flag.
	if !strings.Contains(out, " R ") {
		t.Error("no reused instance marked in the trace")
	}
	wait, life, n := m.Rec.Stats()
	if n == 0 || life < wait {
		t.Errorf("stats wait=%v life=%v n=%d", wait, life, n)
	}
}

func TestRenderEmpty(t *testing.T) {
	var b strings.Builder
	trace.New(4).Render(&b)
	if !strings.Contains(b.String(), "no instructions") {
		t.Error("empty render message missing")
	}
}

// Package trace records per-instruction pipeline timing (dispatch, issue,
// completion, commit cycles) and renders a textual pipeline diagram, in the
// spirit of SimpleScalar's ptrace. It is used for debugging the simulator
// and for teaching how the reuse mechanism changes instruction flow: reused
// instances appear with an 'R' marker and no fetch/decode occupancy.
package trace

import (
	"fmt"
	"io"
	"sort"
)

// InstRecord is the lifetime of one dynamic instruction.
type InstRecord struct {
	Seq      uint64
	PC       uint32
	Disasm   string
	Reused   bool
	Dispatch uint64 // cycle the instruction entered the window
	Issue    uint64 // 0 until issued
	Complete uint64 // 0 until written back
	Commit   uint64 // 0 until committed
	Squashed bool
}

// Recorder collects the first Max instruction records of a run. Sequence
// numbers are allocated contiguously at dispatch, so records live in a
// slice indexed by seq minus the first recorded seq — a map would cost a
// hash and an allocation per lifecycle event. The zero value is unusable;
// use New.
type Recorder struct {
	Max     int
	base    uint64 // seq of records[0]; valid once len(records) > 0
	records []InstRecord
}

// New creates a recorder keeping at most max instructions.
func New(max int) *Recorder {
	return &Recorder{Max: max}
}

// OnDispatch starts a record. Extra calls beyond Max are ignored.
func (r *Recorder) OnDispatch(seq uint64, pc uint32, disasm string, reused bool, cycle uint64) {
	if len(r.records) >= r.Max {
		return
	}
	if len(r.records) == 0 {
		r.base = seq
		//reuse:allow-alloc lazy one-time buffer init, capacity capped at Max
		r.records = make([]InstRecord, 0, r.Max)
	}
	r.records = append(r.records, InstRecord{Seq: seq, PC: pc, Disasm: disasm, Reused: reused, Dispatch: cycle})
}

// at returns the record for seq, or nil if it was never recorded.
func (r *Recorder) at(seq uint64) *InstRecord {
	if seq < r.base || seq-r.base >= uint64(len(r.records)) {
		return nil
	}
	rec := &r.records[seq-r.base]
	if rec.Seq != seq { // defensive: seq allocation stopped being contiguous
		return nil
	}
	return rec
}

// OnIssue, OnComplete, OnCommit and OnSquash stamp lifecycle events.
func (r *Recorder) OnIssue(seq, cycle uint64) {
	if rec := r.at(seq); rec != nil {
		rec.Issue = cycle
	}
}

func (r *Recorder) OnComplete(seq, cycle uint64) {
	if rec := r.at(seq); rec != nil {
		rec.Complete = cycle
	}
}

func (r *Recorder) OnCommit(seq, cycle uint64) {
	if rec := r.at(seq); rec != nil {
		rec.Commit = cycle
	}
}

func (r *Recorder) OnSquash(seq uint64) {
	if rec := r.at(seq); rec != nil {
		rec.Squashed = true
	}
}

// Records returns a copy of the collected records in dispatch order.
func (r *Recorder) Records() []InstRecord {
	return append([]InstRecord(nil), r.records...)
}

// Render writes a pipeline diagram: one row per instruction, one column per
// cycle, with D=dispatch, I=issue, C=complete, T=commit (retire), '=' while
// in flight, 'x' for squashed instructions, and 'R' prefixing reused
// instances.
//
//reuse:deterministic
func (r *Recorder) Render(w io.Writer) {
	recs := r.Records()
	if len(recs) == 0 {
		fmt.Fprintln(w, "trace: no instructions recorded")
		return
	}
	lo := recs[0].Dispatch
	hi := lo
	for _, rec := range recs {
		for _, c := range []uint64{rec.Dispatch, rec.Issue, rec.Complete, rec.Commit} {
			if c > hi {
				hi = c
			}
		}
	}
	if hi-lo > 200 {
		hi = lo + 200 // keep rows printable
	}
	fmt.Fprintf(w, "pipeline trace, cycles %d..%d (D=dispatch I=issue C=complete T=retire)\n", lo, hi)
	for _, rec := range recs {
		row := make([]byte, hi-lo+1)
		for i := range row {
			row[i] = ' '
		}
		mark := func(cycle uint64, ch byte) {
			if cycle >= lo && cycle <= hi {
				row[cycle-lo] = ch
			}
		}
		// In-flight shading between dispatch and the last known event.
		last := rec.Dispatch
		for _, c := range []uint64{rec.Issue, rec.Complete, rec.Commit} {
			if c > last {
				last = c
			}
		}
		for c := rec.Dispatch; c <= last && c <= hi; c++ {
			row[c-lo] = '='
		}
		mark(rec.Dispatch, 'D')
		if rec.Issue > 0 {
			mark(rec.Issue, 'I')
		}
		if rec.Complete > 0 {
			mark(rec.Complete, 'C')
		}
		if rec.Commit > 0 {
			mark(rec.Commit, 'T')
		}
		flag := ' '
		if rec.Reused {
			flag = 'R'
		}
		if rec.Squashed {
			flag = 'x'
		}
		fmt.Fprintf(w, "%5d %c %-26s |%s|\n", rec.Seq, flag, truncate(rec.Disasm, 26), row)
	}
}

// Stats summarizes recorded latencies: average dispatch-to-issue and
// dispatch-to-commit cycles over committed instructions.
func (r *Recorder) Stats() (avgWait, avgLifetime float64, committed int) {
	var wait, life uint64
	for _, rec := range r.Records() {
		if rec.Commit == 0 || rec.Squashed {
			continue
		}
		committed++
		if rec.Issue >= rec.Dispatch {
			wait += rec.Issue - rec.Dispatch
		}
		life += rec.Commit - rec.Dispatch
	}
	if committed == 0 {
		return 0, 0, 0
	}
	return float64(wait) / float64(committed), float64(life) / float64(committed), committed
}

// SortBySeq normalizes record order (helper for tests).
func SortBySeq(recs []InstRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Snapshot support: export and import of a Memory's touched pages. Pages are
// sorted by page number so the image is deterministic regardless of map
// iteration order.
package prog

import (
	"fmt"
	"sort"
)

// PageBytes is the size of one memory page.
const PageBytes = pageSize

// MaxPages is the number of addressable pages (32-bit addresses, 4 KiB
// pages); importers use it to bound allocation before reading page data.
const MaxPages = 1 << (32 - pageShift)

// PageImage is one touched page of a Memory.
type PageImage struct {
	Num  uint32 // page number (address >> 12)
	Data [PageBytes]byte
}

// ExportPages returns the touched pages sorted by page number.
//
//reuse:export
func (m *Memory) ExportPages() []PageImage {
	pages := make([]PageImage, 0, len(m.pages))
	for pn, pg := range m.pages {
		pages = append(pages, PageImage{Num: pn, Data: *pg})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].Num < pages[j].Num })
	return pages
}

// ImportPages replaces the memory's contents with the given pages, which
// must be strictly ascending by page number.
//
//reuse:import
func (m *Memory) ImportPages(pages []PageImage) error {
	for i := range pages {
		if pages[i].Num >= MaxPages {
			return fmt.Errorf("prog: page image %d has number 0x%x, max 0x%x", i, pages[i].Num, MaxPages-1)
		}
		if i > 0 && pages[i].Num <= pages[i-1].Num {
			return fmt.Errorf("prog: page images not strictly ascending at %d", i)
		}
	}
	m.pages = make(map[uint32]*[pageSize]byte, len(pages))
	for i := range pages {
		pg := pages[i].Data
		m.pages[pages[i].Num] = &pg
	}
	return nil
}

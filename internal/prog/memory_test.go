package prog

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMemoryBasic(t *testing.T) {
	m := NewMemory()
	if got := m.Read32(0x1000); got != 0 {
		t.Errorf("untouched read = %d", got)
	}
	m.Write32(0x1000, 0xdeadbeef)
	if got := m.Read32(0x1000); got != 0xdeadbeef {
		t.Errorf("read back = 0x%x", got)
	}
	// Little-endian byte order.
	if got := m.Read8(0x1000); got != 0xef {
		t.Errorf("low byte = 0x%x", got)
	}
	if got := m.Read8(0x1003); got != 0xde {
		t.Errorf("high byte = 0x%x", got)
	}
}

func TestMemoryPageCrossing(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2) // word spans two pages
	m.Write32(addr, 0x11223344)
	if got := m.Read32(addr); got != 0x11223344 {
		t.Errorf("cross-page read = 0x%x", got)
	}
	if m.Pages() != 2 {
		t.Errorf("pages = %d, want 2", m.Pages())
	}
}

func TestMemoryF64(t *testing.T) {
	m := NewMemory()
	vals := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	for i, v := range vals {
		a := uint32(0x2000 + 8*i)
		m.WriteF64(a, v)
		if got := m.ReadF64(a); got != v {
			t.Errorf("f64 at 0x%x = %v, want %v", a, got, v)
		}
	}
	m.WriteF64(0x3000, math.NaN())
	if !math.IsNaN(m.ReadF64(0x3000)) {
		t.Error("NaN did not round-trip")
	}
}

func TestMemoryCloneIsolation(t *testing.T) {
	m := NewMemory()
	m.Write32(0x100, 7)
	c := m.Clone()
	c.Write32(0x100, 9)
	c.Write32(0x9000, 1)
	if m.Read32(0x100) != 7 {
		t.Error("clone write leaked into original")
	}
	if m.Read32(0x9000) != 0 {
		t.Error("clone page leaked into original")
	}
	if c.Read32(0x100) != 9 {
		t.Error("clone lost its own write")
	}
}

func TestMemoryEqual(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	if !a.Equal(b) {
		t.Error("empty memories differ")
	}
	a.Write32(0x50, 1)
	if a.Equal(b) {
		t.Error("differing memories compare equal")
	}
	b.Write32(0x50, 1)
	if !a.Equal(b) {
		t.Error("identical memories differ")
	}
	// A zero write materializes a page but must not affect equality.
	b.Write32(0x7000, 0)
	if !a.Equal(b) {
		t.Error("zero-filled page broke equality")
	}
}

// Property: Write32 then Read32 round-trips at arbitrary addresses.
func TestMemoryRoundTripProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr, v uint32) bool {
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: byte writes compose into the same word little-endian.
func TestMemoryByteComposition(t *testing.T) {
	f := func(addr, v uint32) bool {
		m := NewMemory()
		for i := uint32(0); i < 4; i++ {
			m.Write8(addr+i, byte(v>>(8*i)))
		}
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package prog defines the loaded-program representation shared by the
// functional interpreter and the pipeline simulator: a decoded text segment,
// a sparse byte-addressable data memory image, and the standard address-space
// layout (MIPS-flavoured).
package prog

import (
	"fmt"

	"reuseiq/internal/isa"
)

// Standard address-space layout.
const (
	TextBase  = 0x0040_0000 // first instruction
	DataBase  = 0x1000_0000 // static data segment
	StackTop  = 0x7fff_0000 // initial stack pointer (grows down)
	StackSize = 1 << 20     // reserved stack region, for bounds sanity checks
)

// Program is a loaded executable image.
type Program struct {
	// Text holds the decoded instructions, laid out contiguously from
	// TextBase. Words holds the corresponding encoded machine words.
	Text  []isa.Inst
	Words []uint32
	// Entry is the address of the first instruction to execute.
	Entry uint32
	// Data is the initial data memory image (copied before each run).
	Data *Memory
	// Symbols maps label names to addresses (text or data), for tooling.
	Symbols map[string]uint32
}

// New creates a program from decoded instructions, encoding each one.
func New(text []isa.Inst) (*Program, error) {
	p := &Program{
		Text:    text,
		Words:   make([]uint32, len(text)),
		Entry:   TextBase,
		Data:    NewMemory(),
		Symbols: map[string]uint32{},
	}
	for i, in := range text {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, fmt.Errorf("prog: instruction %d (%v): %w", i, in, err)
		}
		p.Words[i] = w
	}
	return p, nil
}

// InstAt returns the instruction at byte address addr, or false when addr is
// outside the text segment or unaligned.
func (p *Program) InstAt(addr uint32) (isa.Inst, bool) {
	if addr < TextBase || addr&3 != 0 {
		return isa.Inst{}, false
	}
	idx := (addr - TextBase) / 4
	if int(idx) >= len(p.Text) {
		return isa.Inst{}, false
	}
	return p.Text[idx], true
}

// TextEnd returns the address one past the last instruction.
func (p *Program) TextEnd() uint32 { return TextBase + uint32(len(p.Text))*4 }

// Addr returns the address of instruction index idx.
func Addr(idx int) uint32 { return TextBase + uint32(idx)*4 }

// Index returns the text-segment index of address addr.
func Index(addr uint32) int { return int(addr-TextBase) / 4 }

// Disasm renders the whole text segment, one instruction per line.
func (p *Program) Disasm() string {
	s := ""
	for i, in := range p.Text {
		pc := Addr(i)
		s += fmt.Sprintf("0x%08x: %s\n", pc, in.Disasm(pc))
	}
	return s
}

package prog

import "math"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse little-endian byte-addressable memory. Reads of
// untouched locations return zero, so speculative wrong-path loads are
// always safe.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

// Clone returns a deep copy of m, used to give each simulation run a private
// copy of the initial image.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, pg := range m.pages {
		np := *pg
		c.pages[pn] = &np
	}
	return c
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	pn := addr >> pageShift
	pg := m.pages[pn]
	if pg == nil && create {
		//reuse:allow-alloc demand paging: one allocation per touched page; steady state touches no new pages
		pg = new([pageSize]byte)
		m.pages[pn] = pg
	}
	return pg
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint32) byte {
	if pg := m.page(addr, false); pg != nil {
		return pg[addr&pageMask]
	}
	return 0
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint32, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read32 returns the little-endian 32-bit word at addr (no alignment
// requirement; crossing pages is handled).
func (m *Memory) Read32(addr uint32) uint32 {
	// Fast path: whole word within one page.
	if addr&pageMask <= pageSize-4 {
		if pg := m.page(addr, false); pg != nil {
			o := addr & pageMask
			return uint32(pg[o]) | uint32(pg[o+1])<<8 | uint32(pg[o+2])<<16 | uint32(pg[o+3])<<24
		}
		return 0
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write32 stores a little-endian 32-bit word at addr.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		pg := m.page(addr, true)
		o := addr & pageMask
		pg[o] = byte(v)
		pg[o+1] = byte(v >> 8)
		pg[o+2] = byte(v >> 16)
		pg[o+3] = byte(v >> 24)
		return
	}
	for i := uint32(0); i < 4; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// Read16 returns the little-endian 16-bit value at addr.
func (m *Memory) Read16(addr uint32) uint16 {
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores a little-endian 16-bit value at addr.
func (m *Memory) Write16(addr uint32, v uint16) {
	m.Write8(addr, byte(v))
	m.Write8(addr+1, byte(v>>8))
}

// Read64 returns the little-endian 64-bit value at addr.
func (m *Memory) Read64(addr uint32) uint64 {
	return uint64(m.Read32(addr)) | uint64(m.Read32(addr+4))<<32
}

// Write64 stores a little-endian 64-bit value at addr.
func (m *Memory) Write64(addr uint32, v uint64) {
	m.Write32(addr, uint32(v))
	m.Write32(addr+4, uint32(v>>32))
}

// ReadF64 returns the float64 stored at addr.
func (m *Memory) ReadF64(addr uint32) float64 {
	return math.Float64frombits(m.Read64(addr))
}

// WriteF64 stores a float64 at addr.
func (m *Memory) WriteF64(addr uint32, v float64) {
	m.Write64(addr, math.Float64bits(v))
}

// ReadI32 and WriteI32 are signed conveniences.
func (m *Memory) ReadI32(addr uint32) int32     { return int32(m.Read32(addr)) }
func (m *Memory) WriteI32(addr uint32, v int32) { m.Write32(addr, uint32(v)) }

// Pages returns the number of touched pages (for tests and diffing).
func (m *Memory) Pages() int { return len(m.pages) }

// Equal reports whether two memories have identical contents.
func (m *Memory) Equal(o *Memory) bool {
	return m.subset(o) && o.subset(m)
}

// subset reports whether every nonzero byte of m matches o.
func (m *Memory) subset(o *Memory) bool {
	for pn, pg := range m.pages {
		og := o.pages[pn]
		for i, b := range pg {
			var ob byte
			if og != nil {
				ob = og[i]
			}
			if b != ob {
				return false
			}
		}
	}
	return true
}

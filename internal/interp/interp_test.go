package interp

import (
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/isa"
	"reuseiq/internal/prog"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArithmeticLoop(t *testing.T) {
	m := run(t, `
	li   $r2, 0       # sum
	li   $r3, 10      # i
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	if got := m.State.Int[2]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if m.State.Branches != 10 || m.State.Taken != 9 {
		t.Errorf("branches = %d taken = %d", m.State.Branches, m.State.Taken)
	}
}

func TestMemoryOps(t *testing.T) {
	m := run(t, `
	.data
arr:	.word 10, 20, 30
out:	.space 4
bout:	.space 4
	.text
	la  $r5, arr
	lw  $r2, 0($r5)
	lw  $r3, 4($r5)
	add $r4, $r2, $r3
	la  $r6, out
	sw  $r4, 0($r6)
	lb  $r7, 0($r5)
	sb  $r7, 6($r6)
	halt
	`)
	out := m.Prog.Symbols["out"]
	if got := m.State.Mem.ReadI32(out); got != 30 {
		t.Errorf("out = %d", got)
	}
	if got := m.State.Mem.Read8(m.Prog.Symbols["bout"] + 2); got != 10 {
		t.Errorf("out byte = %d", got)
	}
}

func TestFPKernel(t *testing.T) {
	m := run(t, `
	.data
a:	.double 1.5, 2.5, 3.5
s:	.space 8
	.text
	la   $r5, a
	li   $r3, 3
	la   $r6, s
	cvt.d.w $f0, $zero     # sum = 0.0
loop:	l.d  $f2, 0($r5)
	add.d $f0, $f0, $f2
	addi $r5, $r5, 8
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	s.d  $f0, 0($r6)
	halt
	`)
	if got := m.State.Mem.ReadF64(m.Prog.Symbols["s"]); got != 7.5 {
		t.Errorf("sum = %v, want 7.5", got)
	}
}

func TestProcedureCall(t *testing.T) {
	m := run(t, `
main:	li   $a0, 6
	jal  fact
	move $r9, $v0
	halt

# fact(n): iterative factorial, result in $v0.
fact:	li   $v0, 1
floop:	blez $a0, fdone
	mul  $v0, $v0, $a0
	addi $a0, $a0, -1
	j    floop
fdone:	jr   $ra
	`)
	if got := m.State.Int[9]; got != 720 {
		t.Errorf("fact(6) = %d, want 720", got)
	}
}

func TestRecursionWithStack(t *testing.T) {
	m := run(t, `
main:	li   $a0, 10
	jal  fib
	move $r9, $v0
	halt

# fib(n) recursive, callee saves $ra/$a0 on the stack.
fib:	slti $at, $a0, 2
	beq  $at, $zero, frec
	move $v0, $a0
	jr   $ra
frec:	addi $sp, $sp, -12
	sw   $ra, 0($sp)
	sw   $a0, 4($sp)
	addi $a0, $a0, -1
	jal  fib
	sw   $v0, 8($sp)
	lw   $a0, 4($sp)
	addi $a0, $a0, -2
	jal  fib
	lw   $r8, 8($sp)
	add  $v0, $v0, $r8
	lw   $ra, 0($sp)
	addi $sp, $sp, 12
	jr   $ra
	`)
	if got := m.State.Int[9]; got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := run(t, `
	addi $zero, $zero, 42
	li   $r2, 7
	add  $r3, $zero, $r2
	halt
	`)
	if m.State.Int[0] != 0 {
		t.Errorf("$zero = %d", m.State.Int[0])
	}
	if m.State.Int[3] != 7 {
		t.Errorf("r3 = %d", m.State.Int[3])
	}
}

func TestHaltStopsExecution(t *testing.T) {
	m := run(t, `
	li $r2, 1
	halt
	li $r2, 2
	halt
	`)
	if m.State.Int[2] != 1 {
		t.Errorf("executed past halt: r2 = %d", m.State.Int[2])
	}
	// Instruction count excludes the halt itself.
	if m.State.Insts != 1 {
		t.Errorf("insts = %d, want 1", m.State.Insts)
	}
}

func TestInstructionBudget(t *testing.T) {
	p, err := asm.Assemble("spin: j spin\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.MaxInsts = 1000
	if err := m.Run(); err == nil {
		t.Fatal("infinite loop terminated without error")
	}
}

func TestPCOutsideText(t *testing.T) {
	p, err := asm.Assemble("jr $r2\nhalt") // r2 = 0 -> jump to address 0
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if err := m.Run(); err == nil {
		t.Fatal("jump outside text did not error")
	}
}

func TestInitialState(t *testing.T) {
	p, _ := asm.Assemble("halt")
	m := New(p)
	if m.State.Int[isa.RegSP] != int32(prog.StackTop) {
		t.Errorf("sp = 0x%x", uint32(m.State.Int[isa.RegSP]))
	}
	if m.State.PC != prog.TextBase {
		t.Errorf("pc = 0x%x", m.State.PC)
	}
}

func TestRunsDoNotShareMemory(t *testing.T) {
	p := asm.MustAssemble(`
	.data
x:	.word 5
	.text
	la $r5, x
	lw $r2, 0($r5)
	addi $r2, $r2, 1
	sw $r2, 0($r5)
	halt
	`)
	m1 := New(p)
	if err := m1.Run(); err != nil {
		t.Fatal(err)
	}
	m2 := New(p)
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	x := p.Symbols["x"]
	if got := m2.State.Mem.ReadI32(x); got != 6 {
		t.Errorf("second run saw x = %d, runs share memory", got)
	}
	if p.Data.ReadI32(x) != 5 {
		t.Error("program image mutated")
	}
}

func TestHalfwordOps(t *testing.T) {
	m := run(t, `
	.data
buf:	.space 16
	.text
	la   $r5, buf
	li   $r2, -2
	sh   $r2, 0($r5)
	li   $r3, 40000
	sh   $r3, 4($r5)
	lh   $r6, 0($r5)
	lhu  $r7, 0($r5)
	lh   $r8, 4($r5)
	lhu  $r9, 4($r5)
	halt
	`)
	if m.State.Int[6] != -2 {
		t.Errorf("lh = %d, want -2", m.State.Int[6])
	}
	if m.State.Int[7] != 65534 {
		t.Errorf("lhu = %d, want 65534", m.State.Int[7])
	}
	if m.State.Int[8] != 40000-65536 {
		t.Errorf("lh(40000) = %d, want %d", m.State.Int[8], 40000-65536)
	}
	if m.State.Int[9] != 40000 {
		t.Errorf("lhu(40000) = %d", m.State.Int[9])
	}
}

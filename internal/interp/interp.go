// Package interp is a simple in-order functional interpreter for the ISA.
// It serves as the golden model for differential testing of the out-of-order
// pipeline: both must produce identical architectural register and memory
// state for every program.
package interp

import (
	"fmt"

	"reuseiq/internal/isa"
	"reuseiq/internal/prog"
)

// State is the architectural machine state.
type State struct {
	PC  uint32
	Int [isa.NumIntRegs]int32
	FP  [isa.NumFPRegs]float64
	Mem *prog.Memory
	// Insts counts dynamically executed instructions (including NOPs,
	// excluding the final HALT).
	Insts uint64
	// Branches and Taken count executed conditional branches.
	Branches, Taken uint64
}

// Machine executes programs one instruction at a time.
type Machine struct {
	Prog  *prog.Program
	State State
	// MaxInsts bounds execution; 0 means DefaultMaxInsts.
	MaxInsts uint64
}

// Effect is the structured record of one executed instruction's
// architectural effects. The lockstep oracle compares it field by field
// against what the pipeline commits.
type Effect struct {
	PC   uint32
	Inst isa.Inst

	// Halted is set when the instruction was HALT; no other field besides
	// PC and Inst is meaningful then.
	Halted bool

	// Destination register write, when the instruction has one.
	HasDest bool
	Dest    isa.Reg
	DestI   int32   // written value (integer destinations)
	DestF   float64 // written value (FP destinations)

	// Store effect, when the instruction is a store.
	IsStore   bool
	StoreAddr uint32
	StoreI    int32
	StoreF    float64

	// Load effect, when the instruction is a load.
	IsLoad   bool
	LoadAddr uint32

	// Control flow.
	Taken  bool
	NextPC uint32
}

// DefaultMaxInsts bounds runaway programs in tests.
const DefaultMaxInsts = 200_000_000

// New creates a machine with a private copy of the program's data image and
// the conventional initial register state (SP at the stack top).
func New(p *prog.Program) *Machine {
	m := &Machine{Prog: p}
	m.State.PC = p.Entry
	m.State.Mem = p.Data.Clone()
	m.State.Int[isa.RegSP] = int32(prog.StackTop)
	return m
}

// Step executes one instruction and returns its architectural effects.
// Effect.Halted reports HALT; machine state is unchanged in that case.
func (m *Machine) Step() (Effect, error) {
	s := &m.State
	in, ok := m.Prog.InstAt(s.PC)
	if !ok {
		return Effect{}, fmt.Errorf("interp: PC 0x%08x outside text segment", s.PC)
	}
	ef := Effect{PC: s.PC, Inst: in}
	ops := isa.Operands{PC: s.PC}
	info := in.Op.Info()
	if info.ReadsRs {
		if info.RsFP {
			ops.FA = s.FP[in.Rs]
		} else {
			ops.A = s.Int[in.Rs]
		}
	}
	if info.ReadsRt {
		if info.RtFP {
			ops.FB = s.FP[in.Rt]
		} else {
			ops.B = s.Int[in.Rt]
		}
	}
	r := isa.Eval(in, ops)
	if r.Halt {
		ef.Halted = true
		return ef, nil
	}

	// Memory access.
	switch info.Class {
	case isa.ClassLoad:
		ef.IsLoad = true
		ef.LoadAddr = r.Addr
	case isa.ClassStore:
		ef.IsStore = true
		ef.StoreAddr = r.Addr
		ef.StoreI = r.StoreI
		ef.StoreF = r.StoreF
	}
	switch in.Op {
	case isa.OpLW:
		r.I = s.Mem.ReadI32(r.Addr)
	case isa.OpLB:
		r.I = int32(int8(s.Mem.Read8(r.Addr)))
	case isa.OpLBU:
		r.I = int32(s.Mem.Read8(r.Addr))
	case isa.OpLH:
		r.I = int32(int16(s.Mem.Read16(r.Addr)))
	case isa.OpLHU:
		r.I = int32(s.Mem.Read16(r.Addr))
	case isa.OpLD:
		r.F = s.Mem.ReadF64(r.Addr)
	case isa.OpSW:
		s.Mem.WriteI32(r.Addr, r.StoreI)
	case isa.OpSB:
		s.Mem.Write8(r.Addr, byte(r.StoreI))
	case isa.OpSH:
		s.Mem.Write16(r.Addr, uint16(r.StoreI))
	case isa.OpSD:
		s.Mem.WriteF64(r.Addr, r.StoreF)
	}

	// Register writeback.
	if d, ok := in.Dest(); ok {
		ef.HasDest = true
		ef.Dest = d
		if d.Kind == isa.KindFP {
			s.FP[d.Num] = r.F
			ef.DestF = r.F
		} else {
			s.Int[d.Num] = r.I
			ef.DestI = r.I
		}
	}

	// Next PC.
	ef.Taken = r.Taken
	if r.Taken {
		s.PC = r.Target
	} else {
		s.PC += 4
	}
	ef.NextPC = s.PC
	s.Insts++
	if info.Class == isa.ClassBranch {
		s.Branches++
		if r.Taken {
			s.Taken++
		}
	}
	return ef, nil
}

// Run executes until HALT, the instruction budget, or an error.
func (m *Machine) Run() error {
	max := m.MaxInsts
	if max == 0 {
		max = DefaultMaxInsts
	}
	for m.State.Insts < max {
		ef, err := m.Step()
		if err != nil {
			return err
		}
		if ef.Halted {
			return nil
		}
	}
	return fmt.Errorf("interp: instruction budget of %d exhausted at PC 0x%08x", max, m.State.PC)
}

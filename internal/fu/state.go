// Snapshot support: an exported state image of the function unit pool with a
// validating importer. The nextFree cycles are absolute, so a restored pool
// continues issuing at exactly the cycles the original would have.
package fu

import "fmt"

// NumKinds is the number of function unit kinds, exported for serializers.
const NumKinds = int(numKinds)

// State is the serializable image of a Pool.
type State struct {
	NextFree [NumKinds][]uint64
	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	Ops [NumKinds]uint64
}

// ExportState returns a deep copy of the pool's state.
func (p *Pool) ExportState() State {
	var st State
	for k := range p.nextFree {
		st.NextFree[k] = append([]uint64(nil), p.nextFree[k]...)
	}
	st.Ops = p.Ops
	return st
}

// ImportState overwrites the pool with st after validating unit counts.
func (p *Pool) ImportState(st State) error {
	for k := range p.nextFree {
		if len(st.NextFree[k]) != len(p.nextFree[k]) {
			return fmt.Errorf("fu: state has %d %v units, pool has %d",
				len(st.NextFree[k]), Kind(k), len(p.nextFree[k]))
		}
	}
	for k := range p.nextFree {
		copy(p.nextFree[k], st.NextFree[k])
	}
	p.Ops = st.Ops
	return nil
}

// Package fu models the function units of the paper's Table 1 configuration
// (4 integer ALUs, 1 integer multiplier/divider, 4 FP ALUs, 1 FP
// multiplier/divider) plus the data cache ports used by loads and stores.
// ALUs and the multipliers' multiply paths are pipelined; divides occupy
// their unit for the full latency.
package fu

import "reuseiq/internal/isa"

// Kind identifies a pool of identical units.
type Kind uint8

const (
	IntALU Kind = iota
	IntMul
	FPALU
	FPMul
	MemPort
	numKinds
)

func (k Kind) String() string {
	switch k {
	case IntALU:
		return "ialu"
	case IntMul:
		return "imul"
	case FPALU:
		return "fpalu"
	case FPMul:
		return "fpmul"
	case MemPort:
		return "memport"
	}
	return "?"
}

// Config gives the number of units per kind.
type Config struct {
	NumIntALU, NumIntMul, NumFPALU, NumFPMul, NumMemPort int
}

// DefaultConfig returns the paper's Table 1 function unit mix with two data
// cache ports.
func DefaultConfig() Config {
	return Config{NumIntALU: 4, NumIntMul: 1, NumFPALU: 4, NumFPMul: 1, NumMemPort: 2}
}

// OpTiming describes where an op executes and for how long.
type OpTiming struct {
	Kind      Kind
	Latency   int  // result latency in cycles
	Pipelined bool // whether the unit accepts a new op next cycle
}

// Timing returns the execution timing of op. Memory-op latency here covers
// address generation only; cache latency is added by the pipeline.
func Timing(op isa.Op) OpTiming {
	switch op.Info().Class {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump, isa.ClassCall, isa.ClassReturn,
		isa.ClassNop, isa.ClassHalt:
		return OpTiming{Kind: IntALU, Latency: 1, Pipelined: true}
	case isa.ClassIntMul:
		if op == isa.OpMUL {
			return OpTiming{Kind: IntMul, Latency: 3, Pipelined: true}
		}
		return OpTiming{Kind: IntMul, Latency: 20, Pipelined: false} // divq/rem
	case isa.ClassFPALU:
		return OpTiming{Kind: FPALU, Latency: 2, Pipelined: true}
	case isa.ClassFPMul:
		return OpTiming{Kind: FPMul, Latency: 4, Pipelined: true}
	case isa.ClassFPDiv:
		return OpTiming{Kind: FPMul, Latency: 12, Pipelined: false}
	case isa.ClassLoad, isa.ClassStore:
		return OpTiming{Kind: MemPort, Latency: 1, Pipelined: true}
	}
	return OpTiming{Kind: IntALU, Latency: 1, Pipelined: true}
}

// Pool tracks unit occupancy cycle by cycle.
type Pool struct {
	nextFree [numKinds][]uint64
	// Ops counts operations issued per kind (power model activity).
	Ops [numKinds]uint64
}

// NewPool builds a pool from cfg.
func NewPool(cfg Config) *Pool {
	p := &Pool{}
	p.nextFree[IntALU] = make([]uint64, cfg.NumIntALU)
	p.nextFree[IntMul] = make([]uint64, cfg.NumIntMul)
	p.nextFree[FPALU] = make([]uint64, cfg.NumFPALU)
	p.nextFree[FPMul] = make([]uint64, cfg.NumFPMul)
	p.nextFree[MemPort] = make([]uint64, cfg.NumMemPort)
	return p
}

// TryIssue attempts to start op at cycle now. On success it books the unit
// and returns the op's result latency.
func (p *Pool) TryIssue(op isa.Op, now uint64) (int, bool) {
	t := Timing(op)
	units := p.nextFree[t.Kind]
	for i := range units {
		if units[i] <= now {
			if t.Pipelined {
				units[i] = now + 1
			} else {
				units[i] = now + uint64(t.Latency)
			}
			p.Ops[t.Kind]++
			return t.Latency, true
		}
	}
	return 0, false
}

// Available reports whether a unit of op's kind is free at cycle now,
// without booking it.
func (p *Pool) Available(op isa.Op, now uint64) bool {
	t := Timing(op)
	for _, free := range p.nextFree[t.Kind] {
		if free <= now {
			return true
		}
	}
	return false
}

package fu

import (
	"testing"

	"reuseiq/internal/isa"
)

func TestTimingTable(t *testing.T) {
	cases := []struct {
		op   isa.Op
		kind Kind
		lat  int
		pipe bool
	}{
		{isa.OpADD, IntALU, 1, true},
		{isa.OpBNE, IntALU, 1, true},
		{isa.OpMUL, IntMul, 3, true},
		{isa.OpDIVQ, IntMul, 20, false},
		{isa.OpREM, IntMul, 20, false},
		{isa.OpADDD, FPALU, 2, true},
		{isa.OpCVTIF, FPALU, 2, true},
		{isa.OpMULD, FPMul, 4, true},
		{isa.OpDIVD, FPMul, 12, false},
		{isa.OpLW, MemPort, 1, true},
		{isa.OpSW, MemPort, 1, true},
	}
	for _, c := range cases {
		got := Timing(c.op)
		if got.Kind != c.kind || got.Latency != c.lat || got.Pipelined != c.pipe {
			t.Errorf("Timing(%v) = %+v, want {%v %d %v}", c.op, got, c.kind, c.lat, c.pipe)
		}
	}
}

func TestPipelinedThroughput(t *testing.T) {
	p := NewPool(Config{NumIntALU: 1, NumIntMul: 1, NumFPALU: 1, NumFPMul: 1, NumMemPort: 1})
	// One ALU accepts one op per cycle.
	if _, ok := p.TryIssue(isa.OpADD, 10); !ok {
		t.Fatal("first issue failed")
	}
	if _, ok := p.TryIssue(isa.OpADD, 10); ok {
		t.Fatal("second issue in the same cycle succeeded with one unit")
	}
	if _, ok := p.TryIssue(isa.OpADD, 11); !ok {
		t.Fatal("pipelined unit did not accept next cycle")
	}
}

func TestUnpipelinedOccupancy(t *testing.T) {
	p := NewPool(Config{NumIntALU: 1, NumIntMul: 1, NumFPALU: 1, NumFPMul: 1, NumMemPort: 1})
	lat, ok := p.TryIssue(isa.OpDIVQ, 5)
	if !ok || lat != 20 {
		t.Fatalf("divq issue: lat=%d ok=%v", lat, ok)
	}
	// Occupied until cycle 25.
	if _, ok := p.TryIssue(isa.OpMUL, 24); ok {
		t.Fatal("multiplier free during divide")
	}
	if _, ok := p.TryIssue(isa.OpMUL, 25); !ok {
		t.Fatal("multiplier not free after divide")
	}
}

func TestMultipleUnits(t *testing.T) {
	p := NewPool(DefaultConfig()) // 4 IALUs
	n := 0
	for i := 0; i < 6; i++ {
		if _, ok := p.TryIssue(isa.OpADD, 1); ok {
			n++
		}
	}
	if n != 4 {
		t.Errorf("issued %d ALU ops in one cycle, want 4", n)
	}
}

func TestFPDivSharesFPMul(t *testing.T) {
	p := NewPool(DefaultConfig()) // 1 FPMul
	if _, ok := p.TryIssue(isa.OpDIVD, 0); !ok {
		t.Fatal("div.d issue failed")
	}
	if _, ok := p.TryIssue(isa.OpMULD, 3); ok {
		t.Fatal("mul.d issued while div.d occupies the unit")
	}
}

func TestAvailableDoesNotBook(t *testing.T) {
	p := NewPool(Config{NumIntALU: 1, NumIntMul: 1, NumFPALU: 1, NumFPMul: 1, NumMemPort: 1})
	if !p.Available(isa.OpADD, 0) || !p.Available(isa.OpADD, 0) {
		t.Fatal("Available changed state")
	}
	p.TryIssue(isa.OpADD, 0)
	if p.Available(isa.OpADD, 0) {
		t.Fatal("Available ignores booking")
	}
}

func TestOpsCounter(t *testing.T) {
	p := NewPool(DefaultConfig())
	p.TryIssue(isa.OpADD, 0)
	p.TryIssue(isa.OpMULD, 0)
	p.TryIssue(isa.OpLW, 0)
	if p.Ops[IntALU] != 1 || p.Ops[FPMul] != 1 || p.Ops[MemPort] != 1 {
		t.Errorf("ops = %v", p.Ops)
	}
}

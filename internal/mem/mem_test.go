package mem

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return NewCache(CacheConfig{Name: "t", Sets: 4, Ways: 2, LineBytes: 16, HitLat: 1})
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := smallCache()
	if hit, _ := c.Access(0x100, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _ := c.Access(0x100, false); !hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if hit, _ := c.Access(0x10f, false); !hit {
		t.Fatal("same-line access missed")
	}
	// Next line misses.
	if hit, _ := c.Access(0x110, false); hit {
		t.Fatal("next-line access hit")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	c := smallCache() // 4 sets x 2 ways, 16B lines: set = (addr>>4)&3
	// Three addresses mapping to set 0: 0x000, 0x040, 0x080.
	c.Access(0x000, false)
	c.Access(0x040, false)
	c.Access(0x000, false) // refresh 0x000
	c.Access(0x080, false) // evicts 0x040 (LRU)
	if !c.Probe(0x000) {
		t.Error("0x000 evicted despite being MRU")
	}
	if c.Probe(0x040) {
		t.Error("0x040 survived; LRU broken")
	}
	if !c.Probe(0x080) {
		t.Error("0x080 missing")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := smallCache()
	c.Access(0x000, true) // dirty
	c.Access(0x040, false)
	_, wb := c.Access(0x080, false) // evicts dirty 0x000
	if !wb {
		t.Fatal("dirty eviction did not report writeback")
	}
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Writebacks)
	}
	// Clean eviction: no writeback.
	c.Access(0x0c0, false) // evicts clean 0x040
	if c.Writebacks != 1 {
		t.Errorf("clean eviction wrote back")
	}
}

func TestCacheFlush(t *testing.T) {
	c := smallCache()
	c.Access(0x000, true)
	c.Access(0x040, false)
	if dirty := c.Flush(); dirty != 1 {
		t.Errorf("flush dropped %d dirty lines, want 1", dirty)
	}
	if c.Probe(0x000) || c.Probe(0x040) {
		t.Error("lines survived flush")
	}
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "a", Sets: 3, Ways: 1, LineBytes: 16, HitLat: 1},
		{Name: "b", Sets: 4, Ways: 0, LineBytes: 16, HitLat: 1},
		{Name: "c", Sets: 4, Ways: 1, LineBytes: 3, HitLat: 1},
		{Name: "d", Sets: 4, Ways: 1, LineBytes: 16, HitLat: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated", cfg)
		}
	}
	if err := (CacheConfig{Name: "ok", Sets: 512, Ways: 2, LineBytes: 32, HitLat: 1}).Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestCacheSizeBytes(t *testing.T) {
	cfg := CacheConfig{Name: "il1", Sets: 512, Ways: 2, LineBytes: 32, HitLat: 1}
	if cfg.SizeBytes() != 32*1024 {
		t.Errorf("size = %d, want 32KB", cfg.SizeBytes())
	}
}

// Property: a second access to any address always hits (no pathological
// aliasing within a single access pair).
func TestCacheSecondAccessHits(t *testing.T) {
	c := NewCache(CacheConfig{Name: "p", Sets: 64, Ways: 4, LineBytes: 32, HitLat: 1})
	f := func(addr uint32) bool {
		c.Access(addr, false)
		hit, _ := c.Access(addr, false)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "t", Sets: 4, Ways: 2, PageBytes: 4096, MissLat: 3})
	if lat := tlb.Access(0x1000); lat != 3 {
		t.Errorf("cold TLB access latency = %d", lat)
	}
	if lat := tlb.Access(0x1abc); lat != 0 {
		t.Errorf("same-page access latency = %d", lat)
	}
	if lat := tlb.Access(0x2000); lat != 3 {
		t.Errorf("new page latency = %d", lat)
	}
	if tlb.Accesses() != 3 || tlb.Misses() != 2 {
		t.Errorf("accesses=%d misses=%d", tlb.Accesses(), tlb.Misses())
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	addr := uint32(0x0040_0000)

	// Cold: ITLB miss + L1 miss + L2 miss + memory.
	cold := h.FetchInst(addr)
	wantMem := 80 + 7*8 // 64B L2 line in 8B chunks
	if cold != 1+3+8+wantMem {
		t.Errorf("cold fetch latency = %d, want %d", cold, 1+3+8+wantMem)
	}
	// Warm: everything hits.
	if warm := h.FetchInst(addr); warm != 1 {
		t.Errorf("warm fetch latency = %d", warm)
	}
	// Same line, adjacent instruction: hits.
	if lat := h.FetchInst(addr + 4); lat != 1 {
		t.Errorf("adjacent fetch latency = %d", lat)
	}

	// Data access path.
	dcold := h.AccessData(0x1000_0000, false)
	if dcold != 1+3+8+wantMem {
		t.Errorf("cold data latency = %d", dcold)
	}
	if dwarm := h.AccessData(0x1000_0000, true); dwarm != 1 {
		t.Errorf("warm data latency = %d", dwarm)
	}
}

func TestHierarchyL2SharedBetweenIAndD(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	addr := uint32(0x0040_0000)
	h.FetchInst(addr) // fills L2 line
	// A data access to the same line: L1D misses, L2 hits.
	lat := h.AccessData(addr, false)
	want := 1 + 3 + 8 // L1D hitlat + DTLB miss + L2 hit
	if lat != want {
		t.Errorf("data access after fetch = %d, want %d (L2 hit)", lat, want)
	}
}

func TestHierarchyWritebackCounter(t *testing.T) {
	cfg := DefaultHierarchy()
	cfg.L1D = CacheConfig{Name: "dl1", Sets: 1, Ways: 1, LineBytes: 32, HitLat: 1}
	h := NewHierarchy(cfg)
	h.AccessData(0x0000, true)  // dirty line
	h.AccessData(0x1000, false) // evicts dirty line
	if h.L2WritebackAccesses != 1 {
		t.Errorf("writeback accesses = %d", h.L2WritebackAccesses)
	}
}

func TestDefaultHierarchyMatchesPaperTable1(t *testing.T) {
	cfg := DefaultHierarchy()
	if cfg.L1I.SizeBytes() != 32*1024 || cfg.L1I.Ways != 2 || cfg.L1I.HitLat != 1 {
		t.Errorf("L1I = %+v", cfg.L1I)
	}
	if cfg.L1D.SizeBytes() != 32*1024 || cfg.L1D.Ways != 4 || cfg.L1D.HitLat != 1 {
		t.Errorf("L1D = %+v", cfg.L1D)
	}
	if cfg.L2.SizeBytes() != 256*1024 || cfg.L2.Ways != 4 || cfg.L2.HitLat != 8 {
		t.Errorf("L2 = %+v", cfg.L2)
	}
	if cfg.ITLB.Sets != 16 || cfg.DTLB.Sets != 32 || cfg.ITLB.MissLat != 3 {
		t.Errorf("TLBs = %+v %+v", cfg.ITLB, cfg.DTLB)
	}
	if cfg.MemLatFirst != 80 || cfg.MemLatRest != 8 {
		t.Errorf("memory latency = %d/%d", cfg.MemLatFirst, cfg.MemLatRest)
	}
}

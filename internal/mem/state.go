// Snapshot support: exported state images of the caches, TLBs and the whole
// hierarchy, with validating importers. LRU stamps are copied verbatim so a
// restored cache evicts exactly the lines the original would have.
package mem

import "fmt"

// LineState is the serializable image of one cache line.
type LineState struct {
	Valid bool
	Dirty bool
	Tag   uint32
	//reuse:nodigest recency stamp; the engine checks LRU recency deltas separately before engaging
	LRU uint64
}

// CacheState is the serializable image of a Cache: all lines flattened
// row-major (set-major, way-minor) plus the LRU stamp and activity counters.
type CacheState struct {
	Lines []LineState
	//reuse:nodigest recency stamp; the engine checks LRU recency deltas separately before engaging
	Stamp uint64

	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	Accesses, Misses, Writebacks uint64
}

// ExportState returns a deep copy of the cache's state.
func (c *Cache) ExportState() CacheState {
	st := CacheState{
		Lines:    make([]LineState, 0, c.cfg.Sets*c.cfg.Ways),
		Stamp:    c.stamp,
		Accesses: c.Accesses, Misses: c.Misses, Writebacks: c.Writebacks,
	}
	for _, set := range c.sets {
		for _, l := range set {
			st.Lines = append(st.Lines, LineState{Valid: l.valid, Dirty: l.dirty, Tag: l.tag, LRU: l.lru})
		}
	}
	return st
}

// ImportState overwrites the cache with st after validating its shape
// against the cache's geometry.
func (c *Cache) ImportState(st CacheState) error {
	want := c.cfg.Sets * c.cfg.Ways
	if len(st.Lines) != want {
		return fmt.Errorf("mem: %s state holds %d lines, cache has %d", c.cfg.Name, len(st.Lines), want)
	}
	i := 0
	for _, set := range c.sets {
		for w := range set {
			l := st.Lines[i]
			set[w] = line{valid: l.Valid, dirty: l.Dirty, tag: l.Tag, lru: l.LRU}
			i++
		}
	}
	c.stamp = st.Stamp
	c.Accesses, c.Misses, c.Writebacks = st.Accesses, st.Misses, st.Writebacks
	return nil
}

// ExportState returns the TLB's state (its inner tag cache).
func (t *TLB) ExportState() CacheState { return t.cache.ExportState() }

// ImportState restores the TLB's state.
func (t *TLB) ImportState(st CacheState) error { return t.cache.ImportState(st) }

// HierarchyState is the serializable image of the whole memory hierarchy.
type HierarchyState struct {
	L1I, L1D, L2 CacheState
	HasL0I       bool
	L0I          CacheState
	ITLB, DTLB   CacheState

	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	L2WritebackAccesses uint64
}

// ExportState returns a deep copy of the hierarchy's state.
func (h *Hierarchy) ExportState() HierarchyState {
	st := HierarchyState{
		L1I:  h.L1I.ExportState(),
		L1D:  h.L1D.ExportState(),
		L2:   h.L2.ExportState(),
		ITLB: h.ITLB.ExportState(),
		DTLB: h.DTLB.ExportState(),

		L2WritebackAccesses: h.L2WritebackAccesses,
	}
	if h.L0I != nil {
		st.HasL0I = true
		st.L0I = h.L0I.ExportState()
	}
	return st
}

// ImportState overwrites the hierarchy with st. The filter-cache presence
// must match the configuration the hierarchy was built with.
func (h *Hierarchy) ImportState(st HierarchyState) error {
	if st.HasL0I != (h.L0I != nil) {
		return fmt.Errorf("mem: state filter cache presence %v, hierarchy has %v", st.HasL0I, h.L0I != nil)
	}
	if err := h.L1I.ImportState(st.L1I); err != nil {
		return err
	}
	if err := h.L1D.ImportState(st.L1D); err != nil {
		return err
	}
	if err := h.L2.ImportState(st.L2); err != nil {
		return err
	}
	if h.L0I != nil {
		if err := h.L0I.ImportState(st.L0I); err != nil {
			return err
		}
	}
	if err := h.ITLB.ImportState(st.ITLB); err != nil {
		return err
	}
	if err := h.DTLB.ImportState(st.DTLB); err != nil {
		return err
	}
	h.L2WritebackAccesses = st.L2WritebackAccesses
	return nil
}

// Package mem models the timing and activity of the memory hierarchy: set
// associative caches with LRU replacement and write-back/write-allocate
// policy, translation lookaside buffers, and a simple DRAM latency model.
// Data values live in prog.Memory; this package tracks tags only.
package mem

import "fmt"

// CacheConfig describes one cache.
//
//reuse:transient configuration; fixed at construction and fingerprinted wholesale by the snapshot layer's ConfigHash
type CacheConfig struct {
	Name      string
	Sets      int // number of sets (power of two)
	Ways      int
	LineBytes int // line size (power of two)
	HitLat    int // access latency in cycles
}

// SizeBytes returns the total data capacity.
func (c CacheConfig) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("mem: %s: sets %d not a positive power of two", c.Name, c.Sets)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: %s: line size %d not a positive power of two", c.Name, c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("mem: %s: ways %d", c.Name, c.Ways)
	}
	if c.HitLat <= 0 {
		return fmt.Errorf("mem: %s: hit latency %d", c.Name, c.HitLat)
	}
	return nil
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
	lru   uint64 // last-use stamp
}

// Cache is a set-associative tag array with LRU replacement.
type Cache struct {
	cfg   CacheConfig
	sets  [][]line
	stamp uint64
	//reuse:transient derived geometry, recomputed from cfg at construction
	offBits, setBits uint

	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// NewCache builds a cache; invalid configurations panic (they are programmer
// errors in fixed experiment tables).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg}
	c.sets = make([][]line, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for c.cfg.LineBytes>>(c.offBits+1) > 0 {
		c.offBits++
	}
	for c.cfg.Sets>>(c.setBits+1) > 0 {
		c.setBits++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access touches addr. write marks the line dirty. It returns whether the
// access hit and whether a dirty line was evicted (write-back traffic).
func (c *Cache) Access(addr uint32, write bool) (hit, writeback bool) {
	c.Accesses++
	c.stamp++
	set := (addr >> c.offBits) & (uint32(c.cfg.Sets) - 1)
	tag := addr >> (c.offBits + c.setBits)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.stamp
			if write {
				lines[i].dirty = true
			}
			return true, false
		}
	}
	c.Misses++
	// Choose victim: invalid first, else least recently used.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	writeback = lines[victim].valid && lines[victim].dirty
	if writeback {
		c.Writebacks++
	}
	lines[victim] = line{valid: true, dirty: write, tag: tag, lru: c.stamp}
	return false, writeback
}

// Probe reports whether addr currently hits, without updating any state.
func (c *Cache) Probe(addr uint32) bool {
	set := (addr >> c.offBits) & (uint32(c.cfg.Sets) - 1)
	tag := addr >> (c.offBits + c.setBits)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines and returns the number of dirty lines dropped.
func (c *Cache) Flush() int {
	dirty := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				dirty++
			}
			set[i] = line{}
		}
	}
	return dirty
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

package mem

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	Name      string
	Sets      int
	Ways      int
	PageBytes int
	MissLat   int // software/hardware walk penalty in cycles
}

// TLB is a small cache of page numbers.
type TLB struct {
	cache *Cache
	//reuse:transient access latency, fixed at construction from config
	missLat int
}

// NewTLB builds a TLB.
func NewTLB(cfg TLBConfig) *TLB {
	return &TLB{
		cache: NewCache(CacheConfig{
			Name: cfg.Name, Sets: cfg.Sets, Ways: cfg.Ways,
			LineBytes: cfg.PageBytes, HitLat: 1,
		}),
		missLat: cfg.MissLat,
	}
}

// Access translates addr, returning the added latency (0 on hit).
func (t *TLB) Access(addr uint32) int {
	if hit, _ := t.cache.Access(addr, false); hit {
		return 0
	}
	return t.missLat
}

// Accesses and Misses expose activity counts for the power model.
func (t *TLB) Accesses() uint64 { return t.cache.Accesses }
func (t *TLB) Misses() uint64   { return t.cache.Misses }

// HierarchyConfig describes the full memory system (paper Table 1 defaults
// via DefaultHierarchy).
type HierarchyConfig struct {
	L1I, L1D, L2 CacheConfig
	// L0I, when Sets > 0, enables a filter cache (Kin et al.) in front of
	// the L1 instruction cache: hits avoid the L1I access; misses pay one
	// extra cycle.
	L0I        CacheConfig
	ITLB, DTLB TLBConfig
	// MemLatFirst is the latency of the first chunk from DRAM; MemLatRest
	// of each following chunk (the paper uses 80 and 8).
	MemLatFirst, MemLatRest int
}

// DefaultHierarchy returns the paper's Table 1 memory configuration.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:         CacheConfig{Name: "il1", Sets: 512, Ways: 2, LineBytes: 32, HitLat: 1},
		L1D:         CacheConfig{Name: "dl1", Sets: 256, Ways: 4, LineBytes: 32, HitLat: 1},
		L2:          CacheConfig{Name: "ul2", Sets: 1024, Ways: 4, LineBytes: 64, HitLat: 8},
		ITLB:        TLBConfig{Name: "itlb", Sets: 16, Ways: 4, PageBytes: 4096, MissLat: 3},
		DTLB:        TLBConfig{Name: "dtlb", Sets: 32, Ways: 4, PageBytes: 4096, MissLat: 3},
		MemLatFirst: 80,
		MemLatRest:  8,
	}
}

// Hierarchy ties the caches together and computes access latencies.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	L0I          *Cache // nil unless the filter cache is configured
	ITLB, DTLB   *TLB
	//reuse:transient configuration; fixed at construction and fingerprinted by the snapshot layer's ConfigHash
	cfg HierarchyConfig

	// L2WritebackAccesses counts L2 writes caused by dirty L1D evictions.
	// They occur off the critical path and are tracked for the power model
	// only (the victim's address is no longer known exactly, so the L2 tag
	// state is left untouched).
	L2WritebackAccesses uint64
}

// NewHierarchy instantiates the configured memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{
		L1I:  NewCache(cfg.L1I),
		L1D:  NewCache(cfg.L1D),
		L2:   NewCache(cfg.L2),
		ITLB: NewTLB(cfg.ITLB),
		DTLB: NewTLB(cfg.DTLB),
		cfg:  cfg,
	}
	if cfg.L0I.Sets > 0 {
		h.L0I = NewCache(cfg.L0I)
	}
	return h
}

// DefaultFilterCache returns a 512B direct-mapped L0 instruction cache, the
// size class the filter-cache papers evaluate.
func DefaultFilterCache() CacheConfig {
	return CacheConfig{Name: "il0", Sets: 32, Ways: 1, LineBytes: 16, HitLat: 1}
}

// memLat returns the DRAM latency for filling a cache line of lineBytes,
// fetched in 8-byte chunks.
func (h *Hierarchy) memLat(lineBytes int) int {
	chunks := lineBytes / 8
	if chunks < 1 {
		chunks = 1
	}
	return h.cfg.MemLatFirst + (chunks-1)*h.cfg.MemLatRest
}

// FetchInst returns the latency of an instruction fetch at addr.
func (h *Hierarchy) FetchInst(addr uint32) int {
	lat := h.cfg.L1I.HitLat + h.ITLB.Access(addr)
	if h.L0I != nil {
		if hit, _ := h.L0I.Access(addr, false); hit {
			return lat // filter-cache hit: the L1I stays idle
		}
		lat++ // filter-cache miss penalty before probing L1I
	}
	if hit, _ := h.L1I.Access(addr, false); hit {
		return lat
	}
	lat += h.cfg.L2.HitLat
	if hit, _ := h.L2.Access(addr, false); hit {
		return lat
	}
	return lat + h.memLat(h.cfg.L2.LineBytes)
}

// AccessData returns the latency of a data access at addr.
func (h *Hierarchy) AccessData(addr uint32, write bool) int {
	lat := h.cfg.L1D.HitLat + h.DTLB.Access(addr)
	hit, wb := h.L1D.Access(addr, write)
	if wb {
		h.L2WritebackAccesses++
	}
	if hit {
		return lat
	}
	lat += h.cfg.L2.HitLat
	if hit, _ := h.L2.Access(addr, false); hit {
		return lat
	}
	return lat + h.memLat(h.cfg.L2.LineBytes)
}

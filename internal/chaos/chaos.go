// Package chaos implements deterministic, seeded fault injection for the
// pipeline simulator. Its purpose is to exercise the recovery-sensitive
// machinery — buffering revokes, misprediction recovery inside the Loop
// Buffering and Code Reuse states, fetch restart, late writebacks — far more
// often than real workloads trigger it, while keeping architectural
// correctness intact: every injected fault is either a performance event
// (stalls, latency jitter) or one the pipeline already knows how to recover
// from (a misprediction, a revoked buffering).
//
// All injection decisions come from a single seeded PRNG, so a failing run
// is reproducible from its seed alone. The PRNG is wrapped in a draw counter:
// the injector's serializable state is just (seed, draws, counters), and a
// restore replays the recorded number of draws to put the stream back at the
// exact position, keeping checkpointed chaos runs bit-identical.
package chaos

import (
	"fmt"
	"math/rand"
)

// Config parameterizes the injector. Probabilities are per opportunity
// (per cycle, per predicted branch, per issued instruction); zero disables
// that fault class.
type Config struct {
	// Enabled turns injection on. When false the pipeline creates no
	// injector at all.
	Enabled bool
	// Seed makes every injection decision reproducible.
	Seed int64

	// RevokeProb is the per-cycle probability of forcing a buffering
	// revoke while the controller is in the Loop Buffering state.
	RevokeProb float64
	// FlipProb is the probability of inverting the predicted direction of
	// a conditional branch at fetch (a guaranteed misprediction or a
	// guaranteed correct prediction, depending on the true outcome).
	FlipProb float64
	// StallProb is the per-fetch-cycle probability of injecting a fetch
	// stall storm of StallCycles cycles.
	StallProb   float64
	StallCycles int
	// JitterProb is the probability of inflating an issued instruction's
	// result latency by 1..JitterMax extra cycles.
	JitterProb float64
	JitterMax  int
}

// DefaultConfig returns a configuration that injects faults frequently
// enough to hammer the recovery machinery on short programs without
// drowning forward progress.
func DefaultConfig(seed int64) Config {
	return Config{
		Enabled:     true,
		Seed:        seed,
		RevokeProb:  0.02,
		FlipProb:    0.05,
		StallProb:   0.01,
		StallCycles: 8,
		JitterProb:  0.05,
		JitterMax:   3,
	}
}

// Counters records how many faults of each class were actually injected.
// Tests assert these are nonzero to prove the paths were exercised.
type Counters struct {
	ForcedRevokes      uint64 // bufferings revoked by injection
	FlippedPredictions uint64 // branch directions inverted at fetch
	FetchStalls        uint64 // stall storms injected
	JitteredIssues     uint64 // issued instructions with inflated latency
}

// countingSource wraps a rand.Source and counts Int63 calls. It deliberately
// does NOT implement rand.Source64: rand.Rand then routes every draw the
// injector makes (Float64, Intn) through Int63, so the counted stream is
// identical to the unwrapped source's and the count fully determines the
// stream position.
type countingSource struct {
	//reuse:transient a live rand.Source cannot be serialized; import reseeds from cfg.Seed and replays Draws draws
	src   rand.Source
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) { s.src.Seed(seed) }

// Injector rolls the dice. All methods are safe on a nil receiver (no-op),
// so the pipeline's fast paths need no nil checks at each call site.
type Injector struct {
	//reuse:transient configuration; fixed at construction and fingerprinted by the snapshot layer's ConfigHash
	cfg Config
	src countingSource
	//reuse:transient fixed wrapper over src, wired at construction; restored by reseeding and replaying src
	rng *rand.Rand

	C Counters
}

// New creates an injector from cfg, or nil when cfg.Enabled is false.
func New(cfg Config) *Injector {
	if !cfg.Enabled {
		return nil
	}
	j := &Injector{cfg: cfg}
	j.src.src = rand.NewSource(cfg.Seed)
	j.rng = rand.New(&j.src)
	return j
}

// State is the serializable image of an Injector: the PRNG stream position
// (number of Int63 draws since seeding) and the injection counters. The seed
// itself lives in Config, which the snapshot layer fingerprints separately.
type State struct {
	Draws uint64
	C     Counters
}

// ExportState returns the injector's state; the zero State on a nil
// injector (injection disabled).
func (j *Injector) ExportState() State {
	if j == nil {
		return State{}
	}
	return State{Draws: j.src.draws, C: j.C}
}

// ImportState restores the injector to st by reseeding the PRNG and
// replaying the recorded number of draws. On a nil injector (injection
// disabled) a nonzero state is an error: the snapshot was taken with
// injection on. Callers should bound st.Draws before calling (the pipeline
// derives a bound from the snapshot's cycle count) — replay is linear in it.
func (j *Injector) ImportState(st State) error {
	if j == nil {
		if st.Draws != 0 || st.C != (Counters{}) {
			return fmt.Errorf("chaos: snapshot carries injector state but injection is disabled")
		}
		return nil
	}
	j.src.src = rand.NewSource(j.cfg.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		j.src.src.Int63()
	}
	j.src.draws = st.Draws
	j.C = st.C
	return nil
}

// RollRevoke reports whether a forced buffering revoke should be attempted
// this cycle. The caller increments C.ForcedRevokes only when the controller
// actually was in a revocable state.
func (j *Injector) RollRevoke() bool {
	if j == nil || j.cfg.RevokeProb <= 0 {
		return false
	}
	return j.rng.Float64() < j.cfg.RevokeProb
}

// CountRevoke records a forced revoke that actually happened.
func (j *Injector) CountRevoke() { j.C.ForcedRevokes++ }

// FlipPrediction reports whether to invert the predicted direction of the
// conditional branch being fetched, counting the flips it orders.
func (j *Injector) FlipPrediction() bool {
	if j == nil || j.cfg.FlipProb <= 0 {
		return false
	}
	if j.rng.Float64() < j.cfg.FlipProb {
		j.C.FlippedPredictions++
		return true
	}
	return false
}

// FetchStall returns the length of an injected fetch stall storm, or zero.
func (j *Injector) FetchStall() int {
	if j == nil || j.cfg.StallProb <= 0 || j.cfg.StallCycles <= 0 {
		return 0
	}
	if j.rng.Float64() < j.cfg.StallProb {
		j.C.FetchStalls++
		return j.cfg.StallCycles
	}
	return 0
}

// Jitter returns extra result-latency cycles for the instruction being
// issued, or zero.
func (j *Injector) Jitter() int {
	if j == nil || j.cfg.JitterProb <= 0 || j.cfg.JitterMax <= 0 {
		return 0
	}
	if j.rng.Float64() < j.cfg.JitterProb {
		j.C.JitteredIssues++
		return 1 + j.rng.Intn(j.cfg.JitterMax)
	}
	return 0
}

package chaos

import "testing"

// A nil injector (injection disabled) must be inert and safe.
func TestNilInjectorIsSafe(t *testing.T) {
	var j *Injector
	if j.RollRevoke() || j.FlipPrediction() {
		t.Error("nil injector rolled true")
	}
	if j.FetchStall() != 0 || j.Jitter() != 0 {
		t.Error("nil injector injected")
	}
	if New(Config{Enabled: false}) != nil {
		t.Error("New with Enabled=false should return nil")
	}
}

// The same seed must produce the same decision stream.
func TestDeterminism(t *testing.T) {
	run := func() (flips, stalls, jitters uint64, sum int) {
		j := New(DefaultConfig(42))
		for i := 0; i < 10_000; i++ {
			j.FlipPrediction()
			sum += j.FetchStall()
			sum += j.Jitter()
		}
		return j.C.FlippedPredictions, j.C.FetchStalls, j.C.JitteredIssues, sum
	}
	f1, s1, g1, sum1 := run()
	f2, s2, g2, sum2 := run()
	if f1 != f2 || s1 != s2 || g1 != g2 || sum1 != sum2 {
		t.Fatalf("same seed diverged: (%d %d %d %d) vs (%d %d %d %d)",
			f1, s1, g1, sum1, f2, s2, g2, sum2)
	}
	if f1 == 0 || s1 == 0 || g1 == 0 {
		t.Fatalf("default config injected nothing: flips=%d stalls=%d jitters=%d", f1, s1, g1)
	}
}

// Jitter must stay within its configured bound.
func TestJitterBound(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.JitterProb = 1
	cfg.JitterMax = 3
	j := New(cfg)
	for i := 0; i < 1000; i++ {
		if v := j.Jitter(); v < 1 || v > 3 {
			t.Fatalf("jitter %d outside [1,3]", v)
		}
	}
}

package flightrec

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/chaos"
	"reuseiq/internal/ffwd"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/prog"
	"reuseiq/internal/snapshot"
	"reuseiq/internal/telemetry"
)

// loopSource is a small reuse-heavy loop: long enough to cross many
// checkpoint intervals at test-sized intervals, busy enough that most cycles
// sit inside a reuse session.
const loopSource = `
	li   $r2, 0
	li   $r3, 20000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
`

func loopProgram(t *testing.T) *prog.Program {
	t.Helper()
	p, err := asm.Assemble(loopSource)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// record runs p to completion under cfg with a recorder attached (checkpoint
// cadence via RunBreakable) and returns the archive.
func record(t *testing.T, cfg pipeline.Config, p *prog.Program, rc Config) *Archive {
	t.Helper()
	m := pipeline.New(cfg, p)
	ffwd.Attach(m)
	rec, err := Attach(m, rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunBreakable(64, rec.Break); err != nil {
		t.Fatal(err)
	}
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	return rec.Archive()
}

// referenceImages runs a fresh machine cycle-accurately (no recorder, no
// fast-forward) and captures a snapshot image at each target cycle. This is
// the uninterrupted-run oracle every seek must match byte for byte.
func referenceImages(t *testing.T, cfg pipeline.Config, p *prog.Program, targets []uint64) map[uint64][]byte {
	t.Helper()
	sorted := append([]uint64(nil), targets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make(map[uint64][]byte, len(sorted))
	m := pipeline.New(cfg, p)
	for _, n := range sorted {
		if _, ok := out[n]; ok {
			continue
		}
		if m.Cycle() < n {
			err := m.RunBreakable(1, func() bool { return m.Cycle() >= n })
			if err != nil && err != pipeline.ErrStopped {
				t.Fatalf("reference run to cycle %d: %v", n, err)
			}
		}
		if m.Cycle() != n {
			t.Fatalf("reference run stopped at cycle %d, want %d", m.Cycle(), n)
		}
		var buf bytes.Buffer
		if err := snapshot.Save(&buf, m); err != nil {
			t.Fatal(err)
		}
		out[n] = buf.Bytes()
	}
	return out
}

// seekTargets picks n cycles spread over the archive's seekable range, half
// uniform, half adversarial (checkpoint boundaries and their neighbors).
func seekTargets(a *Archive, n int, rng *rand.Rand) []uint64 {
	from, end := a.Ckpts[0].Cycle, a.End
	targets := make([]uint64, 0, n)
	for _, ck := range a.Ckpts {
		for _, d := range []uint64{0, 1} {
			if c := ck.Cycle + d; c <= end {
				targets = append(targets, c)
			}
		}
		if len(targets) >= n/2 {
			break
		}
	}
	for len(targets) < n {
		targets = append(targets, from+uint64(rng.Int63n(int64(end-from+1))))
	}
	return targets[:n]
}

// TestSeekDeterminism is the recorder's headline property: seeking to ANY
// covered cycle — from the nearest checkpoint, from any older checkpoint,
// or twice in a row — lands on a machine whose snapshot image is
// byte-identical to an uninterrupted cycle-accurate run stopped at that
// cycle. Exercised under fault injection (chaos), so the replays also prove
// the injector's PRNG stream survives restore.
func TestSeekDeterminism(t *testing.T) {
	p := loopProgram(t)
	cfg := pipeline.DefaultConfig()
	cfg.Chaos = chaos.DefaultConfig(42)

	a := record(t, cfg, p, Config{Interval: 3000, Depth: 64})
	if len(a.Ckpts) < 5 {
		t.Fatalf("recording kept only %d checkpoints; want several for cross-checkpoint seeks", len(a.Ckpts))
	}

	rng := rand.New(rand.NewSource(1))
	targets := seekTargets(a, 25, rng)
	want := referenceImages(t, cfg, p, targets)

	s := NewSession(a)
	defer s.Close()
	for _, n := range targets {
		if err := s.Seek(n); err != nil {
			t.Fatalf("seek %d: %v", n, err)
		}
		img, err := s.Image()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, want[n]) {
			t.Fatalf("seek %d: image differs from uninterrupted run (len %d vs %d)", n, len(img), len(want[n]))
		}
		// Same seek again must be idempotent at the byte level.
		if err := s.Seek(n); err != nil {
			t.Fatalf("re-seek %d: %v", n, err)
		}
		img2, err := s.Image()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, img2) {
			t.Fatalf("seek %d twice produced different images", n)
		}
	}

	// Cross-checkpoint independence: replaying to one target from every
	// viable ring entry must converge on the same bytes.
	n := targets[len(targets)-1]
	for ci, ck := range a.Ckpts {
		if ck.Cycle > n {
			break
		}
		if err := s.SeekFrom(ci, n); err != nil {
			t.Fatalf("seek %d from checkpoint %d (cycle %d): %v", n, ci, ck.Cycle, err)
		}
		img, err := s.Image()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, want[n]) {
			t.Fatalf("seek %d from checkpoint %d (cycle %d): image differs from uninterrupted run", n, ci, ck.Cycle)
		}
	}
}

// TestSeekDeterminismFastForward re-states the property on a run with the
// fast-forward engine attached. The recorder's exact-state contract makes
// the engine's analytic loop skip stand down (its post-skip states are
// architecturally exact but not bit-identical, so they cannot back a
// byte-level debugger), while the bit-exact idle skip keeps running and
// stamps synthetic annotations — the timeline shows why gaps have no
// events, and every seek still matches plain cycle-accurate execution.
func TestSeekDeterminismFastForward(t *testing.T) {
	p := ffwd.LoopmarkProgram(50_000)
	cfg := pipeline.DefaultConfig()
	cfg.FastForward = true

	m := pipeline.New(cfg, p)
	e := ffwd.Attach(m)
	rec, err := Attach(m, Config{Interval: 20_000, Depth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunBreakable(64, rec.Break); err != nil {
		t.Fatal(err)
	}
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	a := rec.Archive()

	if e.S.Engagements != 0 {
		t.Fatalf("analytic engine engaged %d times under the flight recorder", e.S.Engagements)
	}
	if e.S.Vetoes[ffwd.VetoExactState] == 0 {
		t.Fatalf("expected an exact-state veto, stats %+v", e.S)
	}
	var annotated uint64
	for _, ev := range a.Events {
		if ev.Kind == telemetry.EvIdleSkip {
			annotated += ev.A
		}
	}
	if annotated != e.S.IdleSkippedCycles {
		t.Fatalf("idle-skip annotations cover %d cycles, engine skipped %d", annotated, e.S.IdleSkippedCycles)
	}
	if e.S.IdleSkips > 0 && annotated == 0 {
		t.Fatal("idle skips happened but left no timeline annotation")
	}

	refCfg := cfg
	refCfg.FastForward = false
	rng := rand.New(rand.NewSource(2))
	targets := seekTargets(a, 8, rng)
	want := referenceImages(t, refCfg, p, targets)

	s := NewSession(a)
	defer s.Close()
	for _, n := range targets {
		if err := s.Seek(n); err != nil {
			t.Fatalf("seek %d: %v", n, err)
		}
		img, err := s.Image()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, want[n]) {
			t.Fatalf("seek %d (inside a fast-forwarded span): image differs from cycle-accurate run", n)
		}
	}
}

// TestRingEviction: a bounded ring must evict oldest-first, refuse seeks
// before the retained range, and report honest occupancy.
func TestRingEviction(t *testing.T) {
	p := loopProgram(t)
	cfg := pipeline.DefaultConfig()

	m := pipeline.New(cfg, p)
	rec, err := Attach(m, Config{Interval: 2000, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunBreakable(64, rec.Break); err != nil {
		t.Fatal(err)
	}
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	st := rec.Status()
	if st.Checkpoints > 3 {
		t.Fatalf("ring holds %d checkpoints, depth is 3", st.Checkpoints)
	}
	if st.CheckpointsEvicted == 0 {
		t.Fatalf("expected evictions on a long run with depth 3: %+v", st)
	}
	if st.CheckpointsTaken != st.CheckpointsEvicted+uint64(st.Checkpoints) {
		t.Fatalf("taken (%d) != evicted (%d) + retained (%d)", st.CheckpointsTaken, st.CheckpointsEvicted, st.Checkpoints)
	}
	if st.SeekableFrom == 0 {
		t.Fatalf("oldest retained checkpoint should be post-eviction (cycle > 0): %+v", st)
	}

	a := rec.Archive()
	s := NewSession(a)
	defer s.Close()
	if err := s.Seek(0); err == nil {
		t.Fatal("seek before the retained ring succeeded; want an error naming the oldest checkpoint")
	}
	if err := s.Seek(a.End + 1); err == nil {
		t.Fatal("seek past the recording end succeeded")
	}
	if err := s.Seek(st.SeekableFrom); err != nil {
		t.Fatalf("seek to the oldest retained checkpoint: %v", err)
	}
}

// TestDiskRoundtrip: persist a recording, load it cold (config and program
// rebuilt from the manifest alone), and prove the loaded archive seeks to
// the same bytes as the live one. Also checks artifact hygiene: bounded
// file count and evicted images actually deleted.
func TestDiskRoundtrip(t *testing.T) {
	dir := t.TempDir()
	p := loopProgram(t)
	cfg := pipeline.DefaultConfig()
	cfg.Chaos = chaos.DefaultConfig(7)

	live := record(t, cfg, p, Config{
		Interval: 3000,
		Depth:    4,
		Dir:      dir,
		Manifest: Manifest{AsmSource: loopSource, ChaosSeed: 7},
	})

	imgs, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.img"))
	if len(imgs) == 0 || len(imgs) > 4 {
		t.Fatalf("persisted %d checkpoint images, want 1..4 (depth)", len(imgs))
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "events-*.jsonl"))
	if len(segs) == 0 || len(segs) > 5 {
		t.Fatalf("persisted %d event segments, want 1..depth+1", len(segs))
	}

	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.End != live.End || loaded.Halted != live.Halted {
		t.Fatalf("loaded end=%d halted=%v, live end=%d halted=%v", loaded.End, loaded.Halted, live.End, live.Halted)
	}
	if len(loaded.Ckpts) != len(live.Ckpts) {
		t.Fatalf("loaded %d checkpoints, live kept %d", len(loaded.Ckpts), len(live.Ckpts))
	}

	ls, vs := NewSession(loaded), NewSession(live)
	defer ls.Close()
	defer vs.Close()
	for _, n := range []uint64{loaded.Ckpts[0].Cycle, loaded.Ckpts[0].Cycle + 1234, loaded.End} {
		if err := ls.Seek(n); err != nil {
			t.Fatalf("loaded seek %d: %v", n, err)
		}
		if err := vs.Seek(n); err != nil {
			t.Fatalf("live seek %d: %v", n, err)
		}
		li, err := ls.Image()
		if err != nil {
			t.Fatal(err)
		}
		vi, err := vs.Image()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(li, vi) {
			t.Fatalf("cycle %d: loaded archive and live archive disagree", n)
		}
	}
}

// TestCrashArtifact: a recording directory abandoned without Finish (the
// crash case) must still load — torn event tail tolerated, end derived from
// the newest surviving checkpoint.
func TestCrashArtifact(t *testing.T) {
	dir := t.TempDir()
	p := loopProgram(t)
	cfg := pipeline.DefaultConfig()

	m := pipeline.New(cfg, p)
	rec, err := Attach(m, Config{Interval: 3000, Depth: 4, Dir: dir, Manifest: Manifest{AsmSource: loopSource}})
	if err != nil {
		t.Fatal(err)
	}
	stopAt := uint64(10_000)
	err = m.RunBreakable(64, func() bool { rec.Poll(); return m.Cycle() >= stopAt })
	if err != pipeline.ErrStopped {
		t.Fatalf("run: %v", err)
	}
	// No Finish: simulate a crash, including a torn trailing event line.
	segs, _ := filepath.Glob(filepath.Join(dir, "events-*.jsonl"))
	if len(segs) == 0 {
		t.Fatal("no event segments on disk")
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"cycle":99999,"kind":"comm`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	a, err := Load(dir)
	if err != nil {
		t.Fatalf("loading a crash artifact: %v", err)
	}
	newest := a.Ckpts[len(a.Ckpts)-1].Cycle
	if a.End < newest {
		t.Fatalf("end %d precedes newest checkpoint %d", a.End, newest)
	}
	s := NewSession(a)
	defer s.Close()
	if err := s.Seek(newest); err != nil {
		t.Fatalf("seek newest checkpoint of crash artifact: %v", err)
	}
}

// TestStepAndRStep: forward stepping replays in place (no restore); reverse
// stepping restores and lands on the identical image the forward pass saw.
func TestStepAndRStep(t *testing.T) {
	p := loopProgram(t)
	cfg := pipeline.DefaultConfig()
	a := record(t, cfg, p, Config{Interval: 3000, Depth: 64})

	s := NewSession(a)
	defer s.Close()
	start := a.Ckpts[1].Cycle + 100
	if err := s.Seek(start); err != nil {
		t.Fatal(err)
	}
	restores := s.Restores
	if err := s.Step(10); err != nil {
		t.Fatal(err)
	}
	if s.Cycle() != start+10 {
		t.Fatalf("step landed at %d, want %d", s.Cycle(), start+10)
	}
	if s.Restores != restores {
		t.Fatalf("forward step restored a checkpoint (%d -> %d restores)", restores, s.Restores)
	}
	after, err := s.Image()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RStep(10); err != nil {
		t.Fatal(err)
	}
	if s.Cycle() != start {
		t.Fatalf("rstep landed at %d, want %d", s.Cycle(), start)
	}
	if err := s.Step(10); err != nil {
		t.Fatal(err)
	}
	again, err := s.Image()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, again) {
		t.Fatal("step -> rstep -> step did not reproduce the same image")
	}
}

// TestEventsBetween: the event timeline is cycle-ordered and sliceable.
func TestEventsBetween(t *testing.T) {
	p := loopProgram(t)
	cfg := pipeline.DefaultConfig()
	cfg.Chaos = chaos.DefaultConfig(3)
	a := record(t, cfg, p, Config{Interval: 3000, Depth: 64})
	if len(a.Events) == 0 {
		t.Fatal("chaos run recorded no events")
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].Cycle < a.Events[i-1].Cycle {
			t.Fatalf("events out of order at %d: %d after %d", i, a.Events[i].Cycle, a.Events[i-1].Cycle)
		}
	}
	mid := a.End / 2
	for _, e := range a.EventsBetween(0, mid) {
		if e.Cycle > mid {
			t.Fatalf("EventsBetween(0,%d) leaked cycle %d", mid, e.Cycle)
		}
	}
	lo, hi := a.EventsBetween(0, mid), a.EventsBetween(mid+1, a.End)
	if len(lo)+len(hi) != len(a.Events) {
		t.Fatalf("window split %d+%d != %d", len(lo), len(hi), len(a.Events))
	}
}

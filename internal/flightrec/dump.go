package flightrec

import (
	"fmt"
	"hash/crc32"
	"reflect"
	"sort"
	"strings"

	"reuseiq/internal/pipeline"
)

// Component dump renderers. Each renders one microarchitectural structure
// from a MachineState as stable, line-oriented text: one line per entry or
// fact, so two dumps diff line-by-line (the debugger's diff command is
// exactly that). Renderers read only the state image — they never need a
// live machine, so they work identically on a seeked cursor, a raw
// checkpoint, or a crash artifact.

// DumpNames lists the valid arguments to Dump, in display order.
var DumpNames = []string{"machine", "counters", "riq", "iq", "rob", "rename", "lsq", "mem"}

// Dump renders one named component of st. Unknown names return an error
// listing the valid ones.
func Dump(st *pipeline.MachineState, what string) (string, error) {
	var b strings.Builder
	switch what {
	case "machine":
		dumpMachine(&b, st)
	case "counters":
		dumpCounters(&b, st)
	case "riq":
		dumpRIQ(&b, st)
	case "iq":
		dumpIQ(&b, st)
	case "rob":
		dumpROB(&b, st)
	case "rename":
		dumpRename(&b, st)
	case "lsq":
		dumpLSQ(&b, st)
	case "mem":
		dumpMem(&b, st)
	default:
		return "", fmt.Errorf("flightrec: no component %q (have %s)", what, strings.Join(DumpNames, ", "))
	}
	return b.String(), nil
}

// DumpAll renders every component (the diff command's canvas).
func DumpAll(st *pipeline.MachineState) string {
	var b strings.Builder
	for _, name := range DumpNames {
		s, _ := Dump(st, name)
		b.WriteString(s)
	}
	return b.String()
}

func dumpMachine(b *strings.Builder, st *pipeline.MachineState) {
	fmt.Fprintf(b, "[machine]\n")
	fmt.Fprintf(b, "cycle %d  next-seq %d  last-commit-cycle %d\n", st.Cycle, st.NextSeq, st.LastCommit)
	fmt.Fprintf(b, "fetch pc=0x%x stall-until=%d halted=%v\n", st.FetchPC, st.FetchStallUntil, st.FetchHalted)
	fmt.Fprintf(b, "halted=%v\n", st.Halted)
	for i, f := range st.FetchQ {
		fmt.Fprintf(b, "fetchq[%d] pc=0x%x %s pred=%v:0x%x\n", i, f.PC, f.Inst.Disasm(f.PC), f.PredTaken, f.PredTarget)
	}
	for i, f := range st.DecodeLat {
		fmt.Fprintf(b, "decode[%d] pc=0x%x %s\n", i, f.PC, f.Inst.Disasm(f.PC))
	}
	for _, e := range st.ExecQ {
		fmt.Fprintf(b, "exec seq=%d rob=%d done-at=%d\n", e.Seq, e.ROBSlot, e.Done)
	}
}

// dumpCounters walks the uint64 fields of the counter structs by reflection
// — a new counter shows up in dumps (and therefore diffs) without anyone
// remembering to add it here.
func dumpCounters(b *strings.Builder, st *pipeline.MachineState) {
	fmt.Fprintf(b, "[counters]\n")
	walkU64(b, "", reflect.ValueOf(st.C))
	walkU64(b, "reuse.", reflect.ValueOf(st.Ctl.S))
	walkU64(b, "nblt.", reflect.ValueOf(st.Ctl.NBLT))
	walkU64(b, "chaos.", reflect.ValueOf(st.Chaos.C))
}

func walkU64(b *strings.Builder, prefix string, v reflect.Value) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if f := v.Field(i); f.Kind() == reflect.Uint64 {
			fmt.Fprintf(b, "%s%s %d\n", prefix, t.Field(i).Name, f.Uint())
		}
	}
}

func dumpRIQ(b *strings.Builder, st *pipeline.MachineState) {
	c := &st.Ctl
	fmt.Fprintf(b, "[riq]\n")
	fmt.Fprintf(b, "state %s\n", c.State)
	fmt.Fprintf(b, "loop head=0x%x tail=0x%x call-depth=%d\n", c.LoopHead, c.LoopTail, c.CallDepth)
	fmt.Fprintf(b, "iters=%d last-iter-size=%d first-iter-done=%v reuse-ord=%d\n",
		c.IterCount, c.LastIterSize, c.FirstIterDone, c.ReuseOrd)
	for i := range c.NBLT.Addrs {
		if c.NBLT.Valid[i] {
			fmt.Fprintf(b, "nblt[%d] tail=0x%x\n", i, c.NBLT.Addrs[i])
		}
	}
}

func dumpIQ(b *strings.Builder, st *pipeline.MachineState) {
	q := &st.IQ
	fmt.Fprintf(b, "[iq]\n")
	fmt.Fprintf(b, "count=%d classified=%d\n", q.Count, q.Classified)
	for i, m := range q.Meta {
		if !m.Valid {
			continue
		}
		e := q.Slots[i]
		flags := ""
		if e.Issued {
			flags += "I"
		}
		if e.Classified {
			flags += "C"
		}
		src := ""
		for s := 0; s < e.NumSrc; s++ {
			r := "w"
			if e.SrcReady[s] {
				r = "r"
			}
			src += fmt.Sprintf(" p%d:%s", e.SrcPhys[s], r)
		}
		dst := ""
		if e.HasDest {
			dst = fmt.Sprintf(" ->p%d", e.DestPhys)
		}
		fmt.Fprintf(b, "iq[%d] seq=%d pc=0x%x %s [%s]%s%s\n", i, e.Seq, e.PC, e.Inst.Disasm(e.PC), flags, src, dst)
	}
}

func dumpROB(b *strings.Builder, st *pipeline.MachineState) {
	r := &st.ROB
	fmt.Fprintf(b, "[rob]\n")
	fmt.Fprintf(b, "count=%d head-slot=%d\n", r.Count, r.Head)
	for i := 0; i < r.Count; i++ {
		slot := (r.Head + i) % len(r.Ring)
		e := r.Ring[slot]
		flags := ""
		if e.Done {
			flags += "D"
		}
		if e.Mispred {
			flags += "M"
		}
		if e.Reused {
			flags += "R"
		}
		if e.Halt {
			flags += "H"
		}
		dst := ""
		if e.HasDest {
			dst = fmt.Sprintf(" %v:p%d(old p%d)", e.Dest, e.NewPhys, e.OldPhys)
		}
		fmt.Fprintf(b, "rob+%d seq=%d pc=0x%x %s [%s]%s\n", i, e.Seq, e.PC, e.Inst.Disasm(e.PC), flags, dst)
	}
}

func dumpRename(b *strings.Builder, st *pipeline.MachineState) {
	rf := &st.RF
	fmt.Fprintf(b, "[rename]\n")
	for r, p := range rf.IntMap {
		fmt.Fprintf(b, "$r%d -> p%d = %d (ready=%v)\n", r, p, rf.IntVals[p], rf.IntReady[p])
	}
	for r, p := range rf.FPMap {
		fmt.Fprintf(b, "$f%d -> p%d = %g (ready=%v)\n", r, p, rf.FPVals[p], rf.FPReady[p])
	}
	fmt.Fprintf(b, "free int=%d fp=%d\n", len(rf.IntFree), len(rf.FPFree))
}

func dumpLSQ(b *strings.Builder, st *pipeline.MachineState) {
	q := &st.LSQ
	fmt.Fprintf(b, "[lsq]\n")
	fmt.Fprintf(b, "count=%d head-slot=%d\n", q.Count, q.Head)
	for i := 0; i < q.Count; i++ {
		slot := (q.Head + i) % len(q.Ring)
		e := q.Ring[slot]
		kind := "load"
		if e.IsStore {
			kind = "store"
		}
		addr := "addr=?"
		if e.AddrReady {
			addr = fmt.Sprintf("addr=0x%x", e.Addr)
		}
		data := ""
		if e.IsStore {
			if e.DataReady {
				if e.IsFP {
					data = fmt.Sprintf(" data=%g", e.DataF)
				} else {
					data = fmt.Sprintf(" data=%d", e.DataI)
				}
			} else {
				data = " data=?"
			}
		}
		fmt.Fprintf(b, "lsq+%d seq=%d %s/%d %s%s done=%v\n", i, e.Seq, kind, e.Size, addr, data, e.Done)
	}
}

// dumpMem summarizes architectural memory one line per touched page — a
// checksum, not contents, so diffs say WHICH page changed without drowning
// the output.
func dumpMem(b *strings.Builder, st *pipeline.MachineState) {
	fmt.Fprintf(b, "[mem]\n")
	for _, pg := range st.Pages {
		fmt.Fprintf(b, "page 0x%05x crc32=%08x\n", pg.Num, crc32.ChecksumIEEE(pg.Data[:]))
	}
}

// DiffStates renders both states and returns a unified line diff ("-" lines
// from a, "+" from b), with section headers and unchanged lines elided. An
// empty result means the dumps are textually identical.
func DiffStates(a, b *pipeline.MachineState) string {
	return diffLines(strings.Split(DumpAll(a), "\n"), strings.Split(DumpAll(b), "\n"))
}

// diffLines is a plain LCS diff over lines. Dumps are bounded by the queue
// sizes (a few hundred lines), so the quadratic table is nothing.
func diffLines(a, b []string) string {
	n, m := len(a), len(b)
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var out strings.Builder
	section := ""
	emitted := map[string]bool{}
	emit := func(mark, line string) {
		if line == "" {
			return
		}
		if strings.HasPrefix(line, "[") {
			section = line
			return
		}
		if section != "" && !emitted[section] {
			fmt.Fprintf(&out, "%s\n", section)
			emitted[section] = true
		}
		fmt.Fprintf(&out, "%s %s\n", mark, line)
	}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			if strings.HasPrefix(a[i], "[") {
				section = a[i]
			}
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			emit("-", a[i])
			i++
		default:
			emit("+", b[j])
			j++
		}
	}
	for ; i < n; i++ {
		emit("-", a[i])
	}
	for ; j < m; j++ {
		emit("+", b[j])
	}
	return out.String()
}

// counterNames lists the predicates the watch command accepts as counters,
// mapped over a machine state. Sorted for help text.
func counterNames() []string {
	names := make([]string, 0, len(counterAccessors))
	for name := range counterAccessors {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// counterAccessors read live machines (watch polls one every replayed
// cycle, so no state export happens per poll).
var counterAccessors = map[string]func(*pipeline.Machine) uint64{
	"cycles":        func(m *pipeline.Machine) uint64 { return m.C.Cycles },
	"commits":       func(m *pipeline.Machine) uint64 { return m.C.Commits },
	"gated":         func(m *pipeline.Machine) uint64 { return m.C.GatedCycles },
	"fetches":       func(m *pipeline.Machine) uint64 { return m.C.Fetches },
	"mispredicts":   func(m *pipeline.Machine) uint64 { return m.C.Mispredicts },
	"reuse_renames": func(m *pipeline.Machine) uint64 { return m.C.ReuseRenames },
	"reused":        func(m *pipeline.Machine) uint64 { return m.C.ReusedCommitted },
	"detections":    func(m *pipeline.Machine) uint64 { return m.Ctl.S.Detections },
	"bufferings":    func(m *pipeline.Machine) uint64 { return m.Ctl.S.Bufferings },
	"promotions":    func(m *pipeline.Machine) uint64 { return m.Ctl.S.Promotions },
	"revokes":       func(m *pipeline.Machine) uint64 { return m.Ctl.S.Revokes },
	"reuse_exits":   func(m *pipeline.Machine) uint64 { return m.Ctl.S.ReuseExits },
	"nblt_hits":     func(m *pipeline.Machine) uint64 { return m.Ctl.S.NBLTFiltered },
	"iterations":    func(m *pipeline.Machine) uint64 { return m.Ctl.S.IterationsBuffered },
}

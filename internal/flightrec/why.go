package flightrec

import (
	"fmt"
	"strings"

	"reuseiq/internal/core"
	"reuseiq/internal/telemetry"
)

// Causal explanation: the why command walks the recorded event timeline
// backward from a cycle and reconstructs the chain of events that produced
// the machine's condition there — why the fetch gate is closed, why a
// buffering attempt was revoked, why the pipeline squashed. The chain is
// assembled from the controller's own event vocabulary (buffer, promote,
// revoke, reuse-exit) plus the incident kinds that trigger transitions
// (mispredicts, chaos injections, NBLT activity, fast-forward annotations).

// timelineAt is the event-derived controller context at a cycle: the
// current RIQ episode and the most recent incidents, gathered in one
// forward pass over the (cycle-ordered) events.
type timelineAt struct {
	state      core.State
	stateSince uint64 // cycle the current state began (0 = recording start)
	head       uint32 // loop head of the current episode, if any
	iters      int    // iterations buffered in the current/last episode
	sessionEv  *telemetry.Event

	incident *telemetry.Event // last transition/incident event at or before the cycle
	// Most recent occurrences by kind, for chain links.
	lastMispredict *telemetry.Event
	lastChaosFlip  *telemetry.Event
	lastChaosStall *telemetry.Event
	lastRevoke     *telemetry.Event
	lastNBLTInsert *telemetry.Event
}

// incidentKind reports whether k can anchor an explanation.
func incidentKind(k telemetry.Kind) bool {
	switch k {
	case telemetry.EvBuffer, telemetry.EvPromote, telemetry.EvRevoke,
		telemetry.EvReuseExit, telemetry.EvMispredict, telemetry.EvChaosFlip,
		telemetry.EvChaosStall, telemetry.EvChaosJitter, telemetry.EvChaosRevoke,
		telemetry.EvNBLTHit, telemetry.EvNBLTInsert,
		telemetry.EvFastForward, telemetry.EvIdleSkip:
		return true
	default:
		// Per-instruction lifecycle events and iteration ticks are volume,
		// not incidents.
		return false
	}
}

func scanTimeline(a *Archive, cycle uint64) timelineAt {
	var t timelineAt
	t.state = core.Normal
	for i := range a.Events {
		e := &a.Events[i]
		if e.Cycle > cycle {
			break
		}
		switch e.Kind {
		case telemetry.EvBuffer:
			t.state, t.stateSince, t.head, t.iters, t.sessionEv = core.Buffering, e.Cycle, e.PC, 0, e
		case telemetry.EvIteration:
			t.iters++
		case telemetry.EvPromote:
			t.state, t.stateSince, t.head = core.Reuse, e.Cycle, e.PC
		case telemetry.EvRevoke:
			t.state, t.stateSince = core.Normal, e.Cycle
			t.lastRevoke = e
		case telemetry.EvReuseExit:
			t.state, t.stateSince = core.Normal, e.Cycle
		case telemetry.EvMispredict:
			t.lastMispredict = e
		case telemetry.EvChaosFlip:
			t.lastChaosFlip = e
		case telemetry.EvChaosStall:
			t.lastChaosStall = e
		case telemetry.EvNBLTInsert:
			t.lastNBLTInsert = e
		default:
			// Remaining kinds (lifecycle, jitter, NBLT hits, ffwd
			// annotations) don't move the timeline state; they only anchor
			// incidents, handled below.
		}
		if incidentKind(e.Kind) {
			t.incident = e
		}
	}
	return t
}

// Explain reconstructs the causal chain for the machine's condition at a
// cycle. It is pure text over the archive's events — no replay needed — so
// it answers instantly even for cycles far from any checkpoint.
func Explain(a *Archive, cycle uint64) string {
	var b strings.Builder
	t := scanTimeline(a, cycle)

	// Context line: what mode the RIQ is in and since when.
	switch t.state {
	case core.Reuse:
		fmt.Fprintf(&b, "cycle %d: RIQ in %s — fetch gate CLOSED since cycle %d (loop 0x%x)\n",
			cycle, t.state, t.stateSince, t.head)
	case core.Buffering:
		fmt.Fprintf(&b, "cycle %d: RIQ in %s since cycle %d (loop 0x%x, %d iterations so far)\n",
			cycle, t.state, t.stateSince, t.head, t.iters)
	default:
		fmt.Fprintf(&b, "cycle %d: RIQ in %s (fetch gate open)\n", cycle, t.state)
	}

	if t.incident == nil {
		b.WriteString("  no recorded events at or before this cycle (ring drop or quiet span)\n")
		return b.String()
	}
	explainEvent(&b, a, t, t.incident, "  ")
	return b.String()
}

// explainEvent writes one "because" line for e and recurses into its cause.
func explainEvent(b *strings.Builder, a *Archive, t timelineAt, e *telemetry.Event, indent string) {
	next := indent + "  "
	switch e.Kind {
	case telemetry.EvBuffer:
		fmt.Fprintf(b, "%scycle %d: loop 0x%x..0x%x (size %d) detected; Loop Buffering entered\n",
			indent, e.Cycle, e.PC, e.A, e.B)
	case telemetry.EvIteration:
		fmt.Fprintf(b, "%scycle %d: buffered one iteration of 0x%x (%d insts)\n", indent, e.Cycle, e.PC, e.A)
	case telemetry.EvPromote:
		fmt.Fprintf(b, "%scycle %d: loop 0x%x promoted to Code Reuse — fetch gate closed\n", indent, e.Cycle, e.PC)
		if s := findBefore(a, e.Cycle, telemetry.EvBuffer, e.PC); s != nil {
			fmt.Fprintf(b, "%sbecause:\n", indent)
			explainEvent(b, a, t, s, next)
			fmt.Fprintf(b, "%s(%d iterations buffered between cycles %d and %d)\n",
				next, countBetween(a, s.Cycle, e.Cycle, telemetry.EvIteration), s.Cycle, e.Cycle)
		}
	case telemetry.EvReuseExit:
		fmt.Fprintf(b, "%scycle %d: Code Reuse of loop 0x%x ended — fetch gate reopened\n", indent, e.Cycle, e.PC)
		if p := findBefore(a, e.Cycle, telemetry.EvPromote, e.PC); p != nil {
			fmt.Fprintf(b, "%s(gated for %d cycles)\n", indent, e.Cycle-p.Cycle)
			fmt.Fprintf(b, "%sbecause:\n", indent)
			explainEvent(b, a, t, p, next)
		}
	case telemetry.EvRevoke:
		reason := core.RevokeReason(e.A)
		fmt.Fprintf(b, "%scycle %d: buffering of loop 0x%x REVOKED (%s)\n", indent, e.Cycle, e.PC, reason)
		if s := findBefore(a, e.Cycle, telemetry.EvBuffer, e.PC); s != nil {
			fmt.Fprintf(b, "%sbecause:\n", indent)
			explainEvent(b, a, t, s, next)
		}
		if reason == core.ReasonRecovery && t.lastMispredict != nil && t.lastMispredict.Cycle <= e.Cycle {
			fmt.Fprintf(b, "%striggered by:\n", indent)
			explainEvent(b, a, t, t.lastMispredict, next)
		}
		if reason == core.ReasonForced {
			fmt.Fprintf(b, "%striggered by: fault injection (chaos-revoke)\n", indent)
		}
		if t.lastNBLTInsert != nil && t.lastNBLTInsert.Cycle == e.Cycle {
			fmt.Fprintf(b, "%sfollow-up: loop tail 0x%x inserted into the NBLT — future detections suppressed\n",
				indent, t.lastNBLTInsert.PC)
		}
	case telemetry.EvMispredict:
		fmt.Fprintf(b, "%scycle %d: branch 0x%x mispredicted (seq %d) — pipeline squashed, redirect to 0x%x\n",
			indent, e.Cycle, e.PC, e.B, e.A)
		if t.lastChaosFlip != nil && t.lastChaosFlip.PC == e.PC && t.lastChaosFlip.Cycle <= e.Cycle {
			fmt.Fprintf(b, "%striggered by:\n", indent)
			explainEvent(b, a, t, t.lastChaosFlip, next)
		}
	case telemetry.EvChaosFlip:
		fmt.Fprintf(b, "%scycle %d: fault injection flipped the prediction of branch 0x%x\n", indent, e.Cycle, e.PC)
	case telemetry.EvChaosStall:
		fmt.Fprintf(b, "%scycle %d: fault injection stalled fetch for %d cycles\n", indent, e.Cycle, e.A)
	case telemetry.EvChaosJitter:
		fmt.Fprintf(b, "%scycle %d: fault injection inflated the latency of seq %d by %d cycles\n", indent, e.Cycle, e.B, e.A)
	case telemetry.EvChaosRevoke:
		fmt.Fprintf(b, "%scycle %d: fault injection forced a buffering revoke\n", indent, e.Cycle)
	case telemetry.EvNBLTHit:
		fmt.Fprintf(b, "%scycle %d: detection of loop tail 0x%x suppressed by the NBLT\n", indent, e.Cycle, e.PC)
		if i := findBefore(a, e.Cycle, telemetry.EvNBLTInsert, e.PC); i != nil {
			fmt.Fprintf(b, "%sbecause:\n", indent)
			explainEvent(b, a, t, i, next)
		}
	case telemetry.EvNBLTInsert:
		fmt.Fprintf(b, "%scycle %d: loop tail 0x%x registered as non-bufferable\n", indent, e.Cycle, e.PC)
		if r := findBefore(a, e.Cycle, telemetry.EvRevoke, 0); r != nil && r.Cycle == e.Cycle {
			fmt.Fprintf(b, "%s(recorded by the revoke at the same cycle)\n", indent)
		}
	case telemetry.EvFastForward:
		fmt.Fprintf(b, "%scycle %d: fast-forward skipped %d iterations (%d cycles) of loop 0x%x analytically\n",
			indent, e.Cycle, e.A, e.B, e.PC)
	case telemetry.EvIdleSkip:
		fmt.Fprintf(b, "%scycle %d: %d provably inert cycles skipped (no events elided)\n", indent, e.Cycle, e.A)
	default:
		fmt.Fprintf(b, "%scycle %d: %s pc=0x%x a=%d b=%d\n", indent, e.Cycle, e.Kind, e.PC, e.A, e.B)
	}
}

// findBefore returns the last event of kind k at or before cycle, matching
// pc when pc != 0.
func findBefore(a *Archive, cycle uint64, k telemetry.Kind, pc uint32) *telemetry.Event {
	for i := len(a.Events) - 1; i >= 0; i-- {
		e := &a.Events[i]
		if e.Cycle > cycle {
			continue
		}
		if e.Kind == k && (pc == 0 || e.PC == pc) {
			return e
		}
	}
	return nil
}

func countBetween(a *Archive, from, to uint64, k telemetry.Kind) int {
	n := 0
	for i := range a.Events {
		e := &a.Events[i]
		if e.Cycle < from || e.Cycle > to {
			continue
		}
		if e.Kind == k {
			n++
		}
	}
	return n
}

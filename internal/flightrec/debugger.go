package flightrec

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"reuseiq/internal/core"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/telemetry"
)

// Debugger is the scriptable command interpreter shared by the reusedbg
// REPL, its -e one-shot mode, and the dbgcheck smoke gate. Every command is
// a line of text; output goes to Out, errors come back from Exec so the
// caller decides whether to keep the loop alive (REPL) or exit nonzero
// (script mode).
type Debugger struct {
	S   *Session
	Out io.Writer
}

// NewDebugger opens a session over a and positions the cursor at the
// oldest seekable cycle, so every command works immediately.
func NewDebugger(a *Archive, out io.Writer) (*Debugger, error) {
	s := NewSession(a)
	if err := s.Seek(a.Ckpts[0].Cycle); err != nil {
		s.Close()
		return nil, err
	}
	return &Debugger{S: s, Out: out}, nil
}

// Close releases the session's machine.
func (d *Debugger) Close() { d.S.Close() }

// Exec runs one command line. Blank lines and #-comments are no-ops.
func (d *Debugger) Exec(line string) error {
	f := strings.Fields(line)
	if len(f) == 0 || strings.HasPrefix(f[0], "#") {
		return nil
	}
	cmd, args := f[0], f[1:]
	switch cmd {
	case "help", "?":
		d.help()
		return nil
	case "info":
		return d.info()
	case "seek":
		return d.seek(args)
	case "step":
		return d.step(args, false)
	case "rstep":
		return d.step(args, true)
	case "dump":
		return d.dump(args)
	case "diff":
		return d.diff(args)
	case "watch":
		return d.watch(args)
	case "why":
		return d.why(args)
	case "events":
		return d.events(args)
	case "export":
		return d.export(args)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (d *Debugger) help() {
	fmt.Fprint(d.Out, `commands:
  info                      recording bounds, checkpoints, manifest
  seek <cycle>              position the cursor (accepts Perfetto ts values)
  step [k]                  advance k cycles (default 1)
  rstep [k]                 go back k cycles (default 1; restore + replay)
  dump <what>               `+strings.Join(DumpNames, "|")+`|all
  diff <c1> <c2>            unified diff of full dumps at two cycles
  watch riq                 run until the RIQ controller changes state
  watch pc <addr>           run until an instruction at addr commits
  watch <ctr> <op> <n>      run until counter op n (ops: < <= == != >= >)
                            counters: `+strings.Join(counterNames(), " ")+`
  why [cycle]               causal chain for the condition at a cycle
  events [from [to]]        list recorded telemetry events in a window
  export <file> [from to]   write a Perfetto trace window (ts == cycle)
  help                      this text
`)
}

func (d *Debugger) info() error {
	a := d.S.A
	from, to := d.S.Bounds()
	fmt.Fprintf(d.Out, "cursor   cycle %d\n", d.S.Cycle())
	fmt.Fprintf(d.Out, "seekable [%d, %d] (%d cycles)\n", from, to, to-from+1)
	fmt.Fprintf(d.Out, "halted   %v\n", a.Halted)
	fmt.Fprintf(d.Out, "events   %d retained", len(a.Events))
	if len(a.Events) > 0 {
		fmt.Fprintf(d.Out, " (cycles %d..%d)", a.Events[0].Cycle, a.Events[len(a.Events)-1].Cycle)
	}
	fmt.Fprintln(d.Out)
	fmt.Fprintf(d.Out, "ckpts    %d:", len(a.Ckpts))
	for _, ck := range a.Ckpts {
		fmt.Fprintf(d.Out, " %d", ck.Cycle)
	}
	fmt.Fprintln(d.Out)
	man := a.Man
	src := man.Kernel
	if src == "" && man.AsmSource != "" {
		src = "(inline asm)"
	}
	fmt.Fprintf(d.Out, "run      kernel=%s baseline=%v iq=%d chaos-seed=%d ffwd=%v\n",
		src, man.Baseline, man.IQSize, man.ChaosSeed, man.FastForward)
	fmt.Fprintf(d.Out, "session  %d restores, %d cycles replayed\n", d.S.Restores, d.S.Replayed)
	return nil
}

func (d *Debugger) seek(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: seek <cycle>")
	}
	n, err := parseNum(args[0])
	if err != nil {
		return err
	}
	if err := d.S.Seek(n); err != nil {
		return err
	}
	fmt.Fprintf(d.Out, "at cycle %d\n", d.S.Cycle())
	return nil
}

func (d *Debugger) step(args []string, back bool) error {
	k := uint64(1)
	if len(args) == 1 {
		n, err := parseNum(args[0])
		if err != nil {
			return err
		}
		k = n
	} else if len(args) > 1 {
		return fmt.Errorf("usage: %s [k]", map[bool]string{false: "step", true: "rstep"}[back])
	}
	var err error
	if back {
		err = d.S.RStep(k)
	} else {
		_, to := d.S.Bounds()
		if d.S.Cycle()+k > to {
			return fmt.Errorf("step lands beyond the recording's end (cycle %d)", to)
		}
		err = d.S.Step(k)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(d.Out, "at cycle %d\n", d.S.Cycle())
	return nil
}

func (d *Debugger) dump(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dump %s|all", strings.Join(DumpNames, "|"))
	}
	st, err := d.S.State()
	if err != nil {
		return err
	}
	if args[0] == "all" {
		fmt.Fprint(d.Out, DumpAll(st))
		return nil
	}
	s, err := Dump(st, args[0])
	if err != nil {
		return err
	}
	fmt.Fprint(d.Out, s)
	return nil
}

func (d *Debugger) diff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: diff <cycle1> <cycle2>")
	}
	c1, err := parseNum(args[0])
	if err != nil {
		return err
	}
	c2, err := parseNum(args[1])
	if err != nil {
		return err
	}
	if err := d.S.Seek(c1); err != nil {
		return err
	}
	a, err := d.S.State()
	if err != nil {
		return err
	}
	if err := d.S.Seek(c2); err != nil {
		return err
	}
	b, err := d.S.State()
	if err != nil {
		return err
	}
	diff := DiffStates(a, b)
	if diff == "" {
		fmt.Fprintf(d.Out, "cycles %d and %d: no differences\n", c1, c2)
		return nil
	}
	fmt.Fprintf(d.Out, "--- cycle %d\n+++ cycle %d\n%s", c1, c2, diff)
	return nil
}

func (d *Debugger) watch(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: watch riq | watch pc <addr> | watch <counter> <op> <n>")
	}
	switch {
	case args[0] == "riq" && len(args) == 1:
		return d.watchRIQ()
	case args[0] == "pc" && len(args) == 2:
		pc, err := parseNum(args[1])
		if err != nil {
			return err
		}
		return d.watchPC(uint32(pc))
	case len(args) == 3:
		return d.watchCounter(args[0], args[1], args[2])
	}
	return fmt.Errorf("usage: watch riq | watch pc <addr> | watch <counter> <op> <n>")
}

// watchRIQ replays until the reuse controller leaves its current state.
func (d *Debugger) watchRIQ() error {
	m := d.S.Machine()
	start := m.Ctl.State()
	hit, err := d.S.RunUntil(func(m *pipeline.Machine) bool {
		return m.Ctl.State() != start
	})
	if err != nil {
		return err
	}
	if !hit {
		fmt.Fprintf(d.Out, "RIQ stayed in %s through the end of the recording (cycle %d)\n",
			start, d.S.Cycle())
		return nil
	}
	now := d.S.Machine().Ctl.State()
	fmt.Fprintf(d.Out, "cycle %d: RIQ %s -> %s\n", d.S.Cycle(), start, now)
	if now == core.Reuse || start == core.Reuse {
		fmt.Fprint(d.Out, Explain(d.S.A, d.S.Cycle()))
	}
	return nil
}

// watchPC replays until an instruction at pc commits. The hook only sets a
// flag — an OnCommit error would latch into the machine permanently.
func (d *Debugger) watchPC(pc uint32) error {
	m := d.S.Machine()
	hit := false
	prev := m.OnCommit
	m.OnCommit = func(c pipeline.Commit) error {
		if prev != nil {
			if err := prev(c); err != nil {
				return err
			}
		}
		if c.PC == pc {
			hit = true
		}
		return nil
	}
	fired, err := d.S.RunUntil(func(*pipeline.Machine) bool { return hit })
	// The session may have restored a fresh machine; only unhook the one we
	// hooked.
	if cur := d.S.Machine(); cur == m {
		cur.OnCommit = prev
	}
	if err != nil {
		return err
	}
	if !fired {
		fmt.Fprintf(d.Out, "pc 0x%x never committed before the recording's end (cycle %d)\n", pc, d.S.Cycle())
		return nil
	}
	fmt.Fprintf(d.Out, "cycle %d: committed instruction at pc 0x%x\n", d.S.Cycle(), pc)
	return nil
}

func (d *Debugger) watchCounter(name, op, val string) error {
	get, ok := counterAccessors[name]
	if !ok {
		return fmt.Errorf("no counter %q (have %s)", name, strings.Join(counterNames(), ", "))
	}
	n, err := parseNum(val)
	if err != nil {
		return err
	}
	var cmp func(uint64) bool
	switch op {
	case "<":
		cmp = func(v uint64) bool { return v < n }
	case "<=":
		cmp = func(v uint64) bool { return v <= n }
	case "==", "=":
		cmp = func(v uint64) bool { return v == n }
	case "!=":
		cmp = func(v uint64) bool { return v != n }
	case ">=":
		cmp = func(v uint64) bool { return v >= n }
	case ">":
		cmp = func(v uint64) bool { return v > n }
	default:
		return fmt.Errorf("no operator %q (have < <= == != >= >)", op)
	}
	if cmp(get(d.S.Machine())) {
		fmt.Fprintf(d.Out, "cycle %d: %s = %d already satisfies %s %s %s\n",
			d.S.Cycle(), name, get(d.S.Machine()), name, op, val)
		return nil
	}
	hit, err := d.S.RunUntil(func(m *pipeline.Machine) bool { return cmp(get(m)) })
	if err != nil {
		return err
	}
	if !hit {
		fmt.Fprintf(d.Out, "%s %s %s never held before the recording's end (cycle %d, %s = %d)\n",
			name, op, val, d.S.Cycle(), name, get(d.S.Machine()))
		return nil
	}
	fmt.Fprintf(d.Out, "cycle %d: %s = %d (%s %s %s)\n",
		d.S.Cycle(), name, get(d.S.Machine()), name, op, val)
	return nil
}

func (d *Debugger) why(args []string) error {
	cycle := d.S.Cycle()
	if len(args) == 1 {
		n, err := parseNum(args[0])
		if err != nil {
			return err
		}
		cycle = n
	} else if len(args) > 1 {
		return fmt.Errorf("usage: why [cycle]")
	}
	fmt.Fprint(d.Out, Explain(d.S.A, cycle))
	return nil
}

// eventsCap bounds the events listing so a fat window cannot flood a REPL.
const eventsCap = 200

func (d *Debugger) events(args []string) error {
	from, to := d.S.Bounds()
	var err error
	switch len(args) {
	case 0:
	case 1:
		if from, err = parseNum(args[0]); err != nil {
			return err
		}
	case 2:
		if from, err = parseNum(args[0]); err != nil {
			return err
		}
		if to, err = parseNum(args[1]); err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: events [from [to]]")
	}
	evs := d.S.A.EventsBetween(from, to)
	shown := evs
	if len(shown) > eventsCap {
		shown = shown[:eventsCap]
	}
	for _, e := range shown {
		fmt.Fprintf(d.Out, "%s\n", telemetry.MarshalEvent(e))
	}
	if len(evs) > len(shown) {
		fmt.Fprintf(d.Out, "... %d more (narrow the window)\n", len(evs)-len(shown))
	}
	fmt.Fprintf(d.Out, "%d events in [%d, %d]\n", len(evs), from, to)
	return nil
}

func (d *Debugger) export(args []string) error {
	if len(args) != 1 && len(args) != 3 {
		return fmt.Errorf("usage: export <file> [from to]")
	}
	path := args[0]
	from, to := d.S.Bounds()
	if len(args) == 3 {
		var err error
		if from, err = parseNum(args[1]); err != nil {
			return err
		}
		if to, err = parseNum(args[2]); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteTraceWindow(f, d.S.A.Events, from, to); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	n := len(d.S.A.EventsBetween(from, to))
	fmt.Fprintf(d.Out, "wrote %s: cycles [%d, %d], %d events (Perfetto ts == cycle; seek any ts to return here)\n",
		path, from, to, n)
	return nil
}

// parseNum accepts decimal and 0x-prefixed hex (Perfetto shows both).
func parseNum(s string) (uint64, error) {
	n, err := strconv.ParseUint(strings.TrimSuffix(s, "ns"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("not a number: %q", s)
	}
	return n, nil
}

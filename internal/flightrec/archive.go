package flightrec

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"reuseiq/internal/asm"
	"reuseiq/internal/chaos"
	"reuseiq/internal/compiler"
	"reuseiq/internal/core"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/prog"
	"reuseiq/internal/snapshot"
	"reuseiq/internal/telemetry"
	"reuseiq/internal/workloads"
)

// Manifest is the persisted description of a recording: enough workload
// identity to rebuild the exact machine configuration and program cold, plus
// the recorder's parameters and final outcome. The config/program hashes let
// Load verify the reconstruction before trusting any checkpoint image (the
// images re-verify their own embedded fingerprints on decode).
//
// The workload fields mirror the knobs reusesim and the experiment suite
// actually vary; a manifest built elsewhere can instead be ignored by loading
// with LoadWith and an explicit config/program.
type Manifest struct {
	// Workload identity: either a named kernel (optionally distributed) or
	// inline assembly source.
	Kernel     string `json:"kernel,omitempty"`
	AsmSource  string `json:"asm_source,omitempty"`
	Distribute bool   `json:"distribute,omitempty"`

	// Config knobs (zero values mean "default").
	IQSize      int    `json:"iq_size,omitempty"`
	Baseline    bool   `json:"baseline,omitempty"`
	Strategy    int    `json:"strategy,omitempty"`
	NBLTSize    int    `json:"nblt_size,omitempty"`
	NBLTSet     bool   `json:"nblt_set,omitempty"` // NBLTSize is explicit even when 0 (NBLT disabled)
	MaxCycles   uint64 `json:"max_cycles,omitempty"`
	ChaosSeed   int64  `json:"chaos_seed,omitempty"`
	FastForward bool   `json:"fast_forward,omitempty"`

	// Recorder parameters and outcome.
	Interval   uint64 `json:"interval"`
	Depth      int    `json:"depth"`
	FinalCycle uint64 `json:"final_cycle"`
	Halted     bool   `json:"halted"`

	// Fingerprints of the config/program the recording ran under, printed
	// as %016x. Load cross-checks them against the reconstruction.
	ConfigHash  string `json:"config_hash,omitempty"`
	ProgramHash string `json:"program_hash,omitempty"`
}

// Config rebuilds the pipeline configuration the manifest describes. The
// knob-to-config mapping matches cmd/reusesim's run() and the experiment
// suite's Run() — the two producers of recordings.
func (m Manifest) Config() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	if m.IQSize > 0 {
		cfg = pipeline.DefaultConfig().WithIQSize(m.IQSize)
	}
	cfg.Reuse.Enabled = !m.Baseline
	cfg.Reuse.Strategy = core.Strategy(m.Strategy)
	if m.NBLTSet || m.NBLTSize > 0 {
		cfg.Reuse.NBLTSize = m.NBLTSize
	}
	if m.MaxCycles > 0 {
		cfg.MaxCycles = m.MaxCycles
	}
	cfg.FastForward = m.FastForward
	if m.ChaosSeed != 0 {
		cfg.Chaos = chaos.DefaultConfig(m.ChaosSeed)
	}
	return cfg
}

// Program rebuilds the program the manifest describes.
func (m Manifest) Program() (*prog.Program, error) {
	switch {
	case m.Kernel != "":
		k, ok := workloads.ByName(m.Kernel)
		if !ok {
			return nil, fmt.Errorf("flightrec: manifest names unknown kernel %q", m.Kernel)
		}
		ir := k.Prog
		if m.Distribute {
			ir = compiler.Distribute(ir)
		}
		p, _, err := compiler.Compile(ir)
		return p, err
	case m.AsmSource != "":
		return asm.Assemble(m.AsmSource)
	}
	return nil, fmt.Errorf("flightrec: manifest names no workload (neither kernel nor asm_source)")
}

// Archive is a frozen recording: everything a debugger session needs to seek.
// Build one from a live Recorder (Recorder.Archive) or from a persisted
// directory (Load).
type Archive struct {
	Man    Manifest
	Cfg    pipeline.Config
	Prog   *prog.Program
	Ckpts  []Checkpoint      // ascending by cycle, at least one
	Events []telemetry.Event // ascending by cycle (ring order)
	// End is the last cycle the recording covers: the final simulated cycle
	// for a completed run, the newest checkpoint/event cycle for a recording
	// recovered from a crash.
	End    uint64
	Halted bool
}

// EventsBetween returns the retained events with from <= cycle <= to.
func (a *Archive) EventsBetween(from, to uint64) []telemetry.Event {
	lo := sort.Search(len(a.Events), func(i int) bool { return a.Events[i].Cycle >= from })
	hi := sort.Search(len(a.Events), func(i int) bool { return a.Events[i].Cycle > to })
	if lo >= hi {
		return nil
	}
	return a.Events[lo:hi]
}

// writeManifest persists a manifest atomically.
func writeManifest(dir string, man Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, ManifestName))
}

// Load opens a persisted recording, rebuilding the machine configuration and
// program from the manifest. It is deliberately forgiving about the data
// files — a recording left by a crashed process may have a torn event tail
// or a half-evicted checkpoint — but strict about identity: fingerprint
// mismatches are errors, and at least one checkpoint must decode.
func Load(dir string) (*Archive, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	cfg := man.Config()
	p, err := man.Program()
	if err != nil {
		return nil, err
	}
	if man.ConfigHash != "" {
		if got := fmt.Sprintf("%016x", snapshot.ConfigHash(cfg)); got != man.ConfigHash {
			return nil, fmt.Errorf("flightrec: %s: rebuilt config hash %s, manifest says %s (incompatible build?)", dir, got, man.ConfigHash)
		}
	}
	if man.ProgramHash != "" {
		if got := fmt.Sprintf("%016x", snapshot.ProgramHash(p)); got != man.ProgramHash {
			return nil, fmt.Errorf("flightrec: %s: rebuilt program hash %s, manifest says %s", dir, got, man.ProgramHash)
		}
	}
	return loadData(dir, man, cfg, p)
}

// LoadWith opens a persisted recording against an explicit config and
// program, bypassing manifest reconstruction (for recordings of workloads
// the manifest vocabulary cannot describe). The checkpoint images still
// verify their embedded fingerprints against cfg/p.
func LoadWith(dir string, cfg pipeline.Config, p *prog.Program) (*Archive, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	return loadData(dir, man, cfg, p)
}

func readManifest(dir string) (Manifest, error) {
	var man Manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return man, fmt.Errorf("flightrec: %w", err)
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("flightrec: %s: %w", filepath.Join(dir, ManifestName), err)
	}
	return man, nil
}

func loadData(dir string, man Manifest, cfg pipeline.Config, p *prog.Program) (*Archive, error) {
	a := &Archive{Man: man, Cfg: cfg, Prog: p}

	imgs, err := filepath.Glob(filepath.Join(dir, "ckpt-*.img"))
	if err != nil {
		return nil, fmt.Errorf("flightrec: %w", err)
	}
	sort.Strings(imgs) // zero-padded cycle in the name → lexical == numeric
	var firstErr error
	for _, path := range imgs {
		st, err := decodeImage(path, cfg, p)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("flightrec: %s: %w", path, err)
			}
			continue
		}
		a.Ckpts = append(a.Ckpts, Checkpoint{Cycle: st.Cycle, State: st})
	}
	if len(a.Ckpts) == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("flightrec: %s holds no checkpoint images", dir)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "events-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("flightrec: %w", err)
	}
	sort.Strings(segs)
	for _, path := range segs {
		evs, err := readSegment(path)
		if err != nil {
			return nil, err
		}
		a.Events = append(a.Events, evs...)
	}
	// Drop events that predate the oldest checkpoint (their segments may be
	// partially pruned) and enforce the ascending order EventsBetween needs.
	oldest := a.Ckpts[0].Cycle
	kept := a.Events[:0]
	for _, e := range a.Events {
		if e.Cycle >= oldest {
			kept = append(kept, e)
		}
	}
	a.Events = kept
	sort.SliceStable(a.Events, func(i, j int) bool { return a.Events[i].Cycle < a.Events[j].Cycle })

	a.End = man.FinalCycle
	a.Halted = man.Halted
	if newest := a.Ckpts[len(a.Ckpts)-1].Cycle; a.End < newest {
		// Crashed before Finish: the manifest still says 0. The archive
		// covers at least the newest checkpoint and any events past it.
		a.End = newest
		if n := len(a.Events); n > 0 && a.Events[n-1].Cycle > a.End {
			a.End = a.Events[n-1].Cycle
		}
		a.Halted = a.Ckpts[len(a.Ckpts)-1].State.Halted
	}
	return a, nil
}

func decodeImage(path string, cfg pipeline.Config, p *prog.Program) (*pipeline.MachineState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return snapshot.Decode(bufio.NewReader(f), cfg, p)
}

// readSegment parses one JSONL event segment. A torn trailing line (crash
// mid-write) is tolerated; garbage anywhere else is an error.
func readSegment(path string) ([]telemetry.Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("flightrec: %w", err)
	}
	var out []telemetry.Event
	lines := bytes.Split(data, []byte{'\n'})
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		e, err := telemetry.UnmarshalEvent(line)
		if err != nil {
			if i >= len(lines)-2 { // torn tail
				break
			}
			return nil, fmt.Errorf("flightrec: %s:%d: %w", path, i+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}

package flightrec

import (
	"bytes"
	"errors"
	"fmt"

	"reuseiq/internal/lockstep"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/snapshot"
)

// Session is a seekable cursor over an Archive. Seek(n) restores the newest
// checkpoint at or below n and silently replays forward — O(interval)
// deterministic work — leaving a live machine positioned exactly at cycle n.
// Replays run with the lockstep invariant checker attached (Verify, default
// on), so a corrupted image or a non-deterministic replay fails loudly
// instead of presenting fabricated state.
type Session struct {
	A *Archive
	// Verify attaches the per-cycle invariant checker to every replay
	// machine. On by default (NewSession); turn off only for timing
	// measurements.
	Verify bool

	m *pipeline.Machine
	// Replayed counts cycles stepped across all seeks (diagnostics).
	Replayed uint64
	// Restores counts checkpoint restores across all seeks (diagnostics).
	Restores uint64
}

// NewSession opens a verifying session over a. The cursor is unpositioned
// until the first Seek.
func NewSession(a *Archive) *Session {
	return &Session{A: a, Verify: true}
}

// Machine returns the live machine at the cursor (nil before the first
// Seek). Callers may inspect it freely; stepping it directly desynchronizes
// Cycle bookkeeping — use Step instead.
func (s *Session) Machine() *pipeline.Machine { return s.m }

// Cycle returns the cursor position (0 before the first Seek).
func (s *Session) Cycle() uint64 {
	if s.m == nil {
		return 0
	}
	return s.m.Cycle()
}

// Bounds returns the seekable cycle range [from, to].
func (s *Session) Bounds() (from, to uint64) {
	return s.A.Ckpts[0].Cycle, s.A.End
}

// Seek positions the cursor at cycle n: restore the newest checkpoint at or
// below n, replay forward to n. Seeking to the current cycle is a no-op;
// seeking forward replays from the cursor when that is cheaper than a
// restore.
func (s *Session) Seek(n uint64) error {
	from, to := s.Bounds()
	if n < from {
		return fmt.Errorf("flightrec: cycle %d predates the checkpoint ring (oldest retained checkpoint is cycle %d)", n, from)
	}
	if n > to {
		return fmt.Errorf("flightrec: cycle %d is beyond the recording's end (cycle %d)", n, to)
	}
	ci := s.checkpointFor(n)
	// Forward micro-seek: if the cursor is already between the chosen
	// checkpoint and n, replaying from here reaches n strictly cheaper.
	if s.m != nil && s.m.Cycle() <= n && s.m.Cycle() >= s.A.Ckpts[ci].Cycle {
		return s.advance(n)
	}
	return s.SeekFrom(ci, n)
}

// checkpointFor returns the index of the newest checkpoint at or below n.
func (s *Session) checkpointFor(n uint64) int {
	ci := 0
	for i, ck := range s.A.Ckpts {
		if ck.Cycle <= n {
			ci = i
		}
	}
	return ci
}

// SeekFrom restores checkpoint index ci and replays to cycle n, even when a
// nearer checkpoint exists. Seek is the normal path; SeekFrom exists so
// tests can prove the destination state is independent of the starting
// checkpoint.
func (s *Session) SeekFrom(ci int, n uint64) error {
	if ci < 0 || ci >= len(s.A.Ckpts) {
		return fmt.Errorf("flightrec: checkpoint index %d out of range [0,%d)", ci, len(s.A.Ckpts))
	}
	ck := s.A.Ckpts[ci]
	if ck.Cycle > n {
		return fmt.Errorf("flightrec: checkpoint %d is at cycle %d, after target %d", ci, ck.Cycle, n)
	}
	// Resume copies every slice out of the state (pages included), so the
	// archive's checkpoint stays pristine for the next restore.
	m, err := pipeline.Resume(s.A.Cfg, s.A.Prog, ck.State)
	if err != nil {
		return fmt.Errorf("flightrec: restore checkpoint at cycle %d: %w", ck.Cycle, err)
	}
	if s.Verify {
		lockstep.AttachChecker(m)
	}
	if s.m != nil {
		s.m.Release()
	}
	s.m = m
	s.Restores++
	return s.advance(n)
}

// Step advances the cursor k cycles by plain replay (no restore).
func (s *Session) Step(k uint64) error {
	if s.m == nil {
		return errors.New("flightrec: session is unpositioned (seek first)")
	}
	return s.advance(s.m.Cycle() + k)
}

// RStep moves the cursor k cycles backward (restore + replay under the
// hood — reverse stepping is a seek).
func (s *Session) RStep(k uint64) error {
	cur := s.Cycle()
	if s.m == nil {
		return errors.New("flightrec: session is unpositioned (seek first)")
	}
	if k > cur {
		k = cur
	}
	return s.Seek(cur - k)
}

// advance replays the live machine to cycle n, cycle-accurately (the
// fast-forward engine stays detached: a debugger replay must visit every
// cycle so watchpoints and dumps see true microarchitectural state).
func (s *Session) advance(n uint64) error {
	start := s.m.Cycle()
	if start >= n {
		return nil
	}
	err := s.m.RunBreakable(1, func() bool { return s.m.Cycle() >= n })
	s.Replayed += s.m.Cycle() - start
	switch {
	case errors.Is(err, pipeline.ErrStopped):
		return nil
	case errors.Is(err, pipeline.ErrCycleBudget) && s.m.Cycle() >= n:
		// The original run ended on this same budget; arriving at it is
		// the expected end of the recording, not a failure.
		return nil
	case err != nil:
		return fmt.Errorf("flightrec: replay diverged at cycle %d (seeking %d): %w", s.m.Cycle(), n, err)
	}
	// Run ended without the breaker firing: the machine halted (or hit its
	// cycle budget) before the target.
	if s.m.Cycle() < n && !s.m.Halted() {
		return fmt.Errorf("flightrec: replay stopped at cycle %d before target %d", s.m.Cycle(), n)
	}
	return nil
}

// RunUntil replays forward one cycle at a time until pred reports true
// (evaluated after every completed cycle) or the recording's end is
// reached, and reports whether the predicate fired. Watchpoints are built
// on it; pred must only inspect the machine, never mutate it.
func (s *Session) RunUntil(pred func(m *pipeline.Machine) bool) (bool, error) {
	if s.m == nil {
		return false, errors.New("flightrec: session is unpositioned (seek first)")
	}
	_, to := s.Bounds()
	start := s.m.Cycle()
	if start >= to {
		return false, nil
	}
	hit := false
	err := s.m.RunBreakable(1, func() bool {
		if pred(s.m) {
			hit = true
			return true
		}
		return s.m.Cycle() >= to
	})
	s.Replayed += s.m.Cycle() - start
	switch {
	case errors.Is(err, pipeline.ErrStopped):
		return hit, nil
	case errors.Is(err, pipeline.ErrCycleBudget) && s.m.Cycle() >= to:
		return hit, nil
	case err != nil:
		return false, fmt.Errorf("flightrec: replay diverged at cycle %d: %w", s.m.Cycle(), err)
	}
	return hit, nil
}

// Image encodes the cursor's machine state as a snapshot image — the
// byte-identical currency the seek-determinism property is stated in.
func (s *Session) Image() ([]byte, error) {
	if s.m == nil {
		return nil, errors.New("flightrec: session is unpositioned (seek first)")
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, s.m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// State captures the cursor's full machine state (for dumps and diffs).
func (s *Session) State() (*pipeline.MachineState, error) {
	if s.m == nil {
		return nil, errors.New("flightrec: session is unpositioned (seek first)")
	}
	return s.m.Snapshot(), nil
}

// Close releases the live machine back to the workspace pool.
func (s *Session) Close() {
	if s.m != nil {
		s.m.Release()
		s.m = nil
	}
}
